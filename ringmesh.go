// Package ringmesh is a flit-level, cycle-accurate simulator of
// hierarchical ring- and mesh-connected shared-memory multiprocessor
// networks, reproducing Ravindran & Stumm, "A Performance Comparison
// of Hierarchical Ring- and Mesh-connected Multiprocessor Networks"
// (HPCA 1997).
//
// The package is the stable public facade over the internal simulator
// packages. Interconnects are selected by name through a topology
// registry, so one configuration type drives every model:
//
//	res, err := ringmesh.Run(ringmesh.Config{
//	    Network:   "ring",
//	    Topology:  "3:3:8",      // 1 global, 3 intermediate, 3 local rings of 8 PMs
//	    LineBytes: 32,
//	    Workload:  ringmesh.PaperWorkload(),
//	}, ringmesh.DefaultRunOptions())
//
// or, for a mesh:
//
//	res, err := ringmesh.Run(ringmesh.Config{
//	    Network:     "mesh",
//	    Nodes:       64,         // 8x8
//	    LineBytes:   32,
//	    BufferFlits: 4,
//	    Workload:    ringmesh.PaperWorkload(),
//	}, ringmesh.DefaultRunOptions())
//
// Topologies lists the registered network names. The earlier
// per-topology entry points (RunRing, RunMesh, NewRingSystem,
// NewMeshSystem, SweepRingSizes, SweepMeshSizes) remain as thin
// deprecated wrappers over the generic API.
//
// Results report the paper's metrics: average round-trip access
// latency in processor clock cycles (with a 95% confidence interval
// from the batch-means method) and network utilization.
package ringmesh

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"ringmesh/internal/core"
	"ringmesh/internal/fault"
	"ringmesh/internal/fidelity"
	"ringmesh/internal/metrics"
	"ringmesh/internal/network"
	"ringmesh/internal/obs"
	"ringmesh/internal/sim"
	"ringmesh/internal/topo"
	"ringmesh/internal/trace"
	"ringmesh/internal/workload"
)

// Workload is the paper's M-MRP synthetic workload: every processor
// issues cache misses over an access region of its R·(P−1) closest
// PMs, at rate C misses per cycle, blocking after T outstanding
// transactions.
//
// The JSON field names (here and on Config, RunOptions, Result and
// SweepPoint) are the ringmeshd serving API's wire format; see the
// README's Serving section.
type Workload struct {
	// R is the access-region fraction in (0, 1]; 1.0 means no
	// locality (uniform over the machine).
	R float64 `json:"r"`
	// C is the per-cycle cache miss probability (paper: 0.04).
	C float64 `json:"c"`
	// T is the number of outstanding transactions a processor may
	// have before blocking (paper: 1, 2 or 4).
	T int `json:"t"`
	// ReadProb is the probability a miss is a read (paper: 0.7).
	ReadProb float64 `json:"read_prob"`
	// Deterministic spaces misses exactly 1/C cycles apart instead of
	// geometrically (an ablation option; the paper's generator is
	// stochastic).
	Deterministic bool `json:"deterministic,omitempty"`
	// OpenLoop keeps generating misses while the processor is blocked
	// on its T-window, queueing them at the processor; latency then
	// counts from generation time. See the workload package for why
	// the closed-loop default matches the paper's reported behaviour.
	OpenLoop bool `json:"open_loop,omitempty"`
}

// PaperWorkload returns the paper's baseline workload: R=1.0, C=0.04,
// T=4, 70% reads.
func PaperWorkload() Workload {
	return Workload{R: 1.0, C: 0.04, T: 4, ReadProb: 0.7}
}

func (w Workload) internal() workload.MMRP {
	return workload.MMRP{R: w.R, C: w.C, T: w.T, ReadProb: w.ReadProb,
		Deterministic: w.Deterministic, OpenLoop: w.OpenLoop}
}

// Config describes a system over any registered interconnect. Network
// selects the model by registry name; the topology-specific fields
// (Topology, BufferFlits, DoubleSpeedGlobal, ...) are interpreted by
// the model that understands them and ignored by the others, the same
// contract as a shared command-line flag set.
type Config struct {
	// Network is the registered interconnect name; see Topologies().
	// Built-ins: "ring" (hierarchical rings) and "mesh" (square 2D
	// bi-directional mesh).
	Network string `json:"network"`
	// Topology names the geometry in the model's own notation — the
	// paper's colon notation for rings ("2:3:4", "12"), "KxK" for
	// meshes. Leave empty and set Nodes to derive it from the
	// processor count.
	Topology string `json:"topology,omitempty"`
	// Nodes is the processor count, used when Topology is empty (and
	// cross-checked against it otherwise). Ring hierarchies derive
	// via the paper's Table 2 methodology; meshes must be square.
	Nodes int `json:"nodes,omitempty"`
	// LineBytes is the cache line size: 16, 32, 64 or 128.
	LineBytes int `json:"line_bytes"`
	// BufferFlits is the router input buffer depth in flits (mesh
	// only); the paper evaluates 1, 4 and cache-line-sized (0
	// selects cl).
	BufferFlits int `json:"buffer_flits,omitempty"`
	// DoubleSpeedGlobal clocks the global ring at twice the PM clock
	// (ring only; paper Section 6).
	DoubleSpeedGlobal bool `json:"double_speed_global,omitempty"`
	// SlottedSwitching selects the Hector/NUMAchine slotted-ring
	// technique instead of the paper's wormhole switching (ring only;
	// see internal/ring/slotted.go).
	SlottedSwitching bool `json:"slotted_switching,omitempty"`
	// Workload is the M-MRP attribute set.
	Workload Workload `json:"workload"`
	// MemLatencyCycles is the memory service time (0 = default 10).
	MemLatencyCycles int `json:"mem_latency_cycles,omitempty"`
	// Seed makes the run reproducible (same seed, same result).
	Seed uint64 `json:"seed,omitempty"`
	// Histogram also collects the latency distribution so the result
	// can report percentiles (small extra memory cost).
	Histogram bool `json:"histogram,omitempty"`
	// Trace records per-packet lifecycle events (issue, hops, exits,
	// delivery), retrievable via System.TraceEvents. Tracing large
	// runs is memory-hungry; see TraceOnlyPacket to narrow it.
	Trace bool `json:"trace,omitempty"`
	// TraceOnlyPacket restricts tracing to one packet id (0 = all).
	TraceOnlyPacket uint64 `json:"trace_only_packet,omitempty"`
	// Metrics enables the instrument registry: per-link utilization,
	// queue occupancy and stall counters, sampled every
	// MetricsIntervalCycles and exportable via System.WriteMetricsCSV,
	// WriteMetricsJSONL and WriteMetricsSnapshot. Disabled (the
	// default), instrumentation costs nothing: the models hold nil
	// counters whose methods no-op.
	Metrics bool `json:"metrics,omitempty"`
	// MetricsIntervalCycles is the sampling period in PM clock cycles
	// (0 = default 100). Only meaningful with Metrics set.
	MetricsIntervalCycles int64 `json:"metrics_interval_cycles,omitempty"`
	// FaultPlan schedules deterministic hardware faults, in the fault
	// DSL: semicolon-separated events of the form
	// "kind@start+duration:node=N[,port=P][,factor=F]" with kinds
	// link-stutter, node-slowdown and port-degrade, or
	// "rand:events=E,seed=S,horizon=H" for a seeded random plan, or
	// "none" to enable the subsystem with an empty schedule. Times are
	// PM cycles; node indices are model-specific (ring: station build
	// order, mesh: router ids). Empty string disables fault injection
	// entirely; an empty plan ("none") is bit-identical to disabled.
	FaultPlan string `json:"fault_plan,omitempty"`
	// UnsafeNoVC disables the ring model's virtual channels and bubble
	// flow control (wormhole only), restoring the paper-era hierarchy
	// deadlock. For forensics demonstrations and ablations — never for
	// measurement runs.
	UnsafeNoVC bool `json:"unsafe_no_vc,omitempty"`
	// Workers, when > 1, runs the tick loop across that many worker
	// goroutines, sharded by the model's ownership partition (per ring
	// for hierarchies, per router row for meshes). Execution-only:
	// results are bit-identical at any worker count, so Workers does
	// not enter result cache keys (see CacheKey). Falls back to the
	// serial engine for models or configurations that cannot shard, and
	// whenever Trace is set.
	Workers int `json:"workers,omitempty"`
	// PhaseStats, when true together with Workers > 1, times every
	// shard's compute/commit phases and every worker's barrier waits
	// (see System.PhaseStats) — the shard-imbalance evidence for the
	// parallel engine. Observation-only like Metrics: results are
	// bit-identical with it on or off, and it never enters result
	// cache keys (see CacheKey). Ignored on the serial path.
	PhaseStats bool `json:"phase_stats,omitempty"`
	// Fidelity selects the answer tier: "" or "simulate" runs the
	// exact flit-level engine (the default, byte-identical cache keys
	// with pre-fidelity versions), "analytic" answers from the
	// closed-form models of internal/analytic in microseconds with a
	// recorded error bound (see Estimate and Result.ErrorBound).
	// Fidelity joins the cache key, so analytic and exact results can
	// never collide. The serving daemon additionally accepts "auto"
	// (cache hit → analytic now → exact upgrade job), resolved at
	// admission; "auto" is invalid here and in CacheKey.
	Fidelity string `json:"fidelity,omitempty"`
}

// RingConfig describes a hierarchical-ring system.
//
// Deprecated: use Config with Network "ring".
type RingConfig struct {
	// Topology in the paper's colon notation, e.g. "2:3:4" (one
	// global ring of 2 intermediate rings, each with 3 local rings of
	// 4 PMs) or "12" (a single 12-PM ring). Leave empty and set Nodes
	// to pick the paper's Table 2 topology automatically.
	Topology string `json:"topology,omitempty"`
	// Nodes is used when Topology is empty: the number of PMs for
	// which to derive the best hierarchy.
	Nodes int `json:"nodes,omitempty"`
	// LineBytes is the cache line size: 16, 32, 64 or 128.
	LineBytes int `json:"line_bytes"`
	// DoubleSpeedGlobal clocks the global ring at twice the PM clock
	// (paper Section 6).
	DoubleSpeedGlobal bool `json:"double_speed_global,omitempty"`
	// SlottedSwitching selects the Hector/NUMAchine slotted-ring
	// technique instead of the paper's wormhole switching (extension;
	// see internal/ring/slotted.go).
	SlottedSwitching bool `json:"slotted_switching,omitempty"`
	// Workload is the M-MRP attribute set.
	Workload Workload `json:"workload"`
	// MemLatencyCycles is the memory service time (0 = default 10).
	MemLatencyCycles int `json:"mem_latency_cycles,omitempty"`
	// Seed makes the run reproducible (same seed, same result).
	Seed uint64 `json:"seed,omitempty"`
	// Histogram also collects the latency distribution so the result
	// can report percentiles (small extra memory cost).
	Histogram bool `json:"histogram,omitempty"`
	// Trace records per-packet lifecycle events (issue, hops, exits,
	// delivery), retrievable via System.TraceEvents. Tracing large
	// runs is memory-hungry; see TraceOnlyPacket to narrow it.
	Trace bool `json:"trace,omitempty"`
	// TraceOnlyPacket restricts tracing to one packet id (0 = all).
	TraceOnlyPacket uint64 `json:"trace_only_packet,omitempty"`
}

// generic converts to the topology-agnostic configuration.
func (cfg RingConfig) generic() Config {
	return Config{
		Network:           "ring",
		Topology:          cfg.Topology,
		Nodes:             cfg.Nodes,
		LineBytes:         cfg.LineBytes,
		DoubleSpeedGlobal: cfg.DoubleSpeedGlobal,
		SlottedSwitching:  cfg.SlottedSwitching,
		Workload:          cfg.Workload,
		MemLatencyCycles:  cfg.MemLatencyCycles,
		Seed:              cfg.Seed,
		Histogram:         cfg.Histogram,
		Trace:             cfg.Trace,
		TraceOnlyPacket:   cfg.TraceOnlyPacket,
	}
}

// MeshConfig describes a square 2D bi-directional mesh system.
//
// Deprecated: use Config with Network "mesh".
type MeshConfig struct {
	// Nodes is the processor count; it must be a perfect square.
	Nodes int `json:"nodes,omitempty"`
	// LineBytes is the cache line size: 16, 32, 64 or 128.
	LineBytes int `json:"line_bytes"`
	// BufferFlits is the router input buffer depth in flits; the
	// paper evaluates 1, 4 and cache-line-sized (0 selects cl).
	BufferFlits int `json:"buffer_flits,omitempty"`
	// Workload is the M-MRP attribute set.
	Workload Workload `json:"workload"`
	// MemLatencyCycles is the memory service time (0 = default 10).
	MemLatencyCycles int `json:"mem_latency_cycles,omitempty"`
	// Seed makes the run reproducible.
	Seed uint64 `json:"seed,omitempty"`
	// Histogram also collects the latency distribution so the result
	// can report percentiles (small extra memory cost).
	Histogram bool `json:"histogram,omitempty"`
	// Trace records per-packet lifecycle events (issue, hops, exits,
	// delivery), retrievable via System.TraceEvents.
	Trace bool `json:"trace,omitempty"`
	// TraceOnlyPacket restricts tracing to one packet id (0 = all).
	TraceOnlyPacket uint64 `json:"trace_only_packet,omitempty"`
}

// generic converts to the topology-agnostic configuration.
func (cfg MeshConfig) generic() Config {
	return Config{
		Network:          "mesh",
		Nodes:            cfg.Nodes,
		LineBytes:        cfg.LineBytes,
		BufferFlits:      cfg.BufferFlits,
		Workload:         cfg.Workload,
		MemLatencyCycles: cfg.MemLatencyCycles,
		Seed:             cfg.Seed,
		Histogram:        cfg.Histogram,
		Trace:            cfg.Trace,
		TraceOnlyPacket:  cfg.TraceOnlyPacket,
	}
}

// RunOptions controls the batch-means measurement schedule.
type RunOptions struct {
	// WarmupCycles is the discarded first batch.
	WarmupCycles int64 `json:"warmup_cycles"`
	// BatchCycles is the length of each retained batch.
	BatchCycles int64 `json:"batch_cycles"`
	// Batches is the number of retained batches.
	Batches int `json:"batches"`
	// WatchdogCycles overrides the stall-detection horizon in PM
	// cycles (0 = default 20000): the run aborts after this many
	// cycles without a single flit movement while packets are in
	// flight.
	WatchdogCycles int64 `json:"watchdog_cycles,omitempty"`
	// Timeout bounds the run's wall-clock time; exceeding it returns
	// an error wrapping ErrTimeout (0 = no limit).
	Timeout time.Duration `json:"timeout_ns,omitempty"`
	// FailOnStall turns a watchdog trip into a returned error — which
	// unwraps to ErrStalled and carries the diagnosis (see
	// DiagnoseStall) — instead of the default Result.Stalled marker
	// that lets sweeps plot saturation points.
	FailOnStall bool `json:"fail_on_stall,omitempty"`
}

// DefaultRunOptions returns the schedule used for the paper
// reproduction: 4000-cycle warmup plus eight 4000-cycle batches.
func DefaultRunOptions() RunOptions {
	return RunOptions{WarmupCycles: 4000, BatchCycles: 4000, Batches: 8}
}

// QuickRunOptions returns a shortened schedule for smoke tests.
func QuickRunOptions() RunOptions {
	return RunOptions{WarmupCycles: 1000, BatchCycles: 1000, Batches: 4}
}

func (o RunOptions) internal() core.RunConfig {
	return core.RunConfig{
		WarmupCycles:   o.WarmupCycles,
		BatchCycles:    o.BatchCycles,
		Batches:        o.Batches,
		WatchdogCycles: o.WatchdogCycles,
		Timeout:        o.Timeout,
		FailOnStall:    o.FailOnStall,
	}
}

// Result reports one simulation run's measurements.
type Result struct {
	// LatencyCycles is the average round-trip access latency in PM
	// clock cycles — the paper's primary metric.
	LatencyCycles float64 `json:"latency_cycles"`
	// LatencyCI95 is the 95% confidence half-width on LatencyCycles.
	LatencyCI95 float64 `json:"latency_ci95"`
	// Observations is the number of completed transactions measured
	// (after warmup).
	Observations int64 `json:"observations"`
	// RingUtilization is the per-level link utilization in [0,1]
	// (index 0 = global ring, last = local rings); nil for meshes.
	RingUtilization []float64 `json:"ring_utilization,omitempty"`
	// MeshUtilization is the aggregate inter-router link utilization
	// in [0,1]; zero for rings.
	MeshUtilization float64 `json:"mesh_utilization,omitempty"`
	// Throughput is completed transactions per cycle over the whole
	// system.
	Throughput float64 `json:"throughput"`
	// Issued, Completed and Local count transactions over the run.
	Issued    int64 `json:"issued"`
	Completed int64 `json:"completed"`
	Local     int64 `json:"local"`
	// LatencyP50, LatencyP95, LatencyP99 and LatencyMax describe the
	// latency distribution when Histogram was requested (zero
	// otherwise).
	LatencyP50 float64 `json:"latency_p50,omitempty"`
	LatencyP95 float64 `json:"latency_p95,omitempty"`
	LatencyP99 float64 `json:"latency_p99,omitempty"`
	LatencyMax float64 `json:"latency_max,omitempty"`
	// BatchesCorrelated flags strong autocorrelation among batch
	// means: lengthen BatchCycles before trusting LatencyCI95.
	BatchesCorrelated bool `json:"batches_correlated,omitempty"`
	// Saturated marks runs past the network's saturation point
	// (processors spent most of their time blocked); the latency is
	// then a lower bound on open-loop delay.
	Saturated bool `json:"saturated,omitempty"`
	// Stalled marks runs aborted by the no-progress watchdog.
	Stalled bool `json:"stalled,omitempty"`
	// Stall carries the model's forensic snapshot when Stalled is set
	// and the model can diagnose itself; nil otherwise.
	Stall *StallDiagnosis `json:"stall,omitempty"`
	// Fidelity labels non-exact answers with the backend that produced
	// them ("analytic"); empty for exact simulation results, so
	// pre-fidelity result documents are byte-identical.
	Fidelity string `json:"fidelity,omitempty"`
	// ErrorBound carries the recorded validation envelope when
	// Fidelity is "analytic" and the configuration's family has one;
	// nil on exact results.
	ErrorBound *ErrorBound `json:"error_bound,omitempty"`
}

// ErrorBound is the recorded analytic-vs-simulate validation envelope
// attached to analytic-fidelity results: the worst relative latency
// error observed (plus margin) when both backends ran the golden
// configs at low load. See internal/fidelity and
// results/analytic-bounds.csv.
type ErrorBound struct {
	// MaxRelErr is the admitted relative latency error at low load
	// (0.03 = within 3% of the simulator).
	MaxRelErr float64 `json:"max_rel_err"`
	// Basis states what the bound was recorded against.
	Basis string `json:"basis"`
}

// StallDiagnosis is the structured snapshot a model builds when the
// no-progress watchdog trips: what was buffered where, which senders
// were waiting on which, and whether those waits close into cycles (a
// true deadlock) or not (livelock or starvation).
type StallDiagnosis struct {
	// Tick is the engine tick the watchdog tripped at.
	Tick int64 `json:"tick"`
	// BufferedFlits is the network's total buffered load at the stall.
	BufferedFlits int `json:"buffered_flits"`
	// Cycles lists the wait-for cycles found, each as the node names
	// around the loop; a non-empty list names a deadlock's culprits.
	Cycles [][]string `json:"cycles,omitempty"`
	// ActiveFaults describes the injected faults active at the stall.
	ActiveFaults []string `json:"active_faults,omitempty"`
	// Summary is a compact human-readable rendering of the full
	// report (buffers, wait-for edges, oldest stuck packets).
	Summary string `json:"summary"`
}

// ErrStalled matches (via errors.Is) any run error caused by the
// no-progress watchdog: a routing deadlock or flow-control livelock.
var ErrStalled = sim.ErrStalled

// ErrTimeout matches (via errors.Is) any run error caused by
// exceeding RunOptions.Timeout or SweepOptions.PointTimeout.
var ErrTimeout = core.ErrTimeout

// DiagnoseStall extracts the stall diagnosis from an error returned
// by a run with FailOnStall set (nil when err carries none).
func DiagnoseStall(err error) *StallDiagnosis {
	var se *sim.StallError
	if !errors.As(err, &se) {
		return nil
	}
	return diagnosisFrom(se.Report)
}

func diagnosisFrom(rep *sim.StallReport) *StallDiagnosis {
	if rep == nil {
		return nil
	}
	return &StallDiagnosis{
		Tick:          rep.Tick,
		BufferedFlits: rep.BufferedFlits,
		Cycles:        rep.Cycles,
		ActiveFaults:  rep.ActiveFaults,
		Summary:       rep.Summary(),
	}
}

func fromCore(r core.Result) Result {
	return Result{
		LatencyCycles:     r.Latency,
		LatencyCI95:       r.LatencyCI,
		Observations:      r.Observations,
		RingUtilization:   r.RingUtil,
		MeshUtilization:   r.MeshUtil,
		Throughput:        r.Throughput,
		Issued:            r.Issued,
		Completed:         r.Completed,
		Local:             r.Local,
		LatencyP50:        r.LatencyP50,
		LatencyP95:        r.LatencyP95,
		LatencyP99:        r.LatencyP99,
		LatencyMax:        r.LatencyMax,
		BatchesCorrelated: r.BatchesCorrelated,
		Saturated:         r.Saturated,
		Stalled:           r.Stalled,
		Stall:             diagnosisFrom(r.Stall),
	}
}

// TraceEvent is one recorded packet lifecycle step (see Config.Trace).
type TraceEvent struct {
	// Tick is the engine tick of the event.
	Tick int64 `json:"tick"`
	// Kind is "issue", "inject", "hop", "exit" or "deliver".
	Kind string
	// Packet is the packet id; Type its transaction kind.
	Packet uint64
	Type   string
	// Src, Dst are the packet's endpoint PMs.
	Src, Dst int
	// Where locates the event (a NIC, IRI or router port).
	Where string
}

// System is a constructed simulation that can be advanced manually;
// most callers use Run instead.
type System struct {
	inner *core.System
	rec   *trace.Recorder
}

// TraceEvents returns the packet lifecycle events recorded so far
// (nil unless the system was built with Trace set).
func (s *System) TraceEvents() []TraceEvent {
	evts := s.rec.Events()
	if evts == nil {
		return nil
	}
	out := make([]TraceEvent, len(evts))
	for i, e := range evts {
		out[i] = TraceEvent{
			Tick: e.Tick, Kind: e.Kind.String(), Packet: e.Packet,
			Type: e.Type.String(), Src: e.Src, Dst: e.Dst, Where: e.Where,
		}
	}
	return out
}

// PacketTimeline returns the recorded events of one packet.
func (s *System) PacketTimeline(id uint64) []TraceEvent {
	var out []TraceEvent
	for _, e := range s.TraceEvents() {
		if e.Packet == id {
			out = append(out, e)
		}
	}
	return out
}

func recorderFor(on bool, only uint64) *trace.Recorder {
	if !on {
		return nil
	}
	return &trace.Recorder{OnlyPacket: only}
}

// NewSystem builds a multiprocessor over the interconnect named by
// cfg.Network, resolved through the topology registry. Only exact
// (simulate-fidelity) systems can be built and stepped; analytic
// configurations are answered by Estimate or Run instead.
func NewSystem(cfg Config) (*System, error) {
	if name, err := fidelity.Normalize(cfg.Fidelity); err != nil {
		return nil, err
	} else if name != fidelity.Simulate {
		return nil, fmt.Errorf("ringmesh: fidelity %q cannot build a steppable system; use Run or Estimate", cfg.Fidelity)
	}
	rec := recorderFor(cfg.Trace, cfg.TraceOnlyPacket)
	var reg *metrics.Registry
	interval := cfg.MetricsIntervalCycles
	if cfg.Metrics {
		reg = &metrics.Registry{}
		if interval <= 0 {
			interval = 100
		}
	}
	var plan *fault.Plan
	if cfg.FaultPlan != "" {
		var err error
		plan, err = fault.Parse(cfg.FaultPlan)
		if err != nil {
			return nil, err
		}
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Network: cfg.Network,
		Net: network.Config{
			Topology:          cfg.Topology,
			Nodes:             cfg.Nodes,
			LineBytes:         cfg.LineBytes,
			BufferFlits:       cfg.BufferFlits,
			DoubleSpeedGlobal: cfg.DoubleSpeedGlobal,
			SlottedSwitching:  cfg.SlottedSwitching,
			UnsafeNoVC:        cfg.UnsafeNoVC,
		},
		Workload:        cfg.Workload.internal(),
		MemLatency:      cfg.MemLatencyCycles,
		Seed:            cfg.Seed,
		Histogram:       cfg.Histogram,
		Tracer:          rec,
		Metrics:         reg,
		MetricsInterval: interval,
		FaultPlan:       plan,
		Workers:         cfg.Workers,
		PhaseStats:      cfg.PhaseStats,
	})
	if err != nil {
		return nil, err
	}
	return &System{inner: sys, rec: rec}, nil
}

// NewRingSystem builds a hierarchical-ring multiprocessor.
//
// Deprecated: thin wrapper over NewSystem with Network "ring".
func NewRingSystem(cfg RingConfig) (*System, error) {
	return NewSystem(cfg.generic())
}

// NewMeshSystem builds a mesh multiprocessor.
//
// Deprecated: thin wrapper over NewSystem with Network "mesh".
func NewMeshSystem(cfg MeshConfig) (*System, error) {
	return NewSystem(cfg.generic())
}

// Run executes the batch-means schedule and returns the measurements.
func (s *System) Run(opt RunOptions) (Result, error) {
	return s.RunContext(context.Background(), opt)
}

// RunContext is Run with cancellation: ctx aborts the run between
// cycle chunks (returning ctx.Err() wrapped), opt.Timeout bounds its
// wall-clock time, and an internal model panic is recovered into an
// error instead of crashing the caller.
func (s *System) RunContext(ctx context.Context, opt RunOptions) (Result, error) {
	r, err := s.inner.RunCtx(ctx, opt.internal())
	if err != nil {
		return Result{}, err
	}
	return fromCore(r), nil
}

// StepCycles advances the simulation by n PM clock cycles without
// collecting batch statistics (useful for warm-starting or tracing).
func (s *System) StepCycles(n int64) error { return s.inner.StepCycles(n) }

// Parallel reports whether ticks execute on the parallel worker engine
// (Config.Workers > 1 and the model produced an ownership partition);
// false means the exact serial path runs.
func (s *System) Parallel() bool { return s.inner.Engine().Parallel() }

// PhaseStats returns the parallel engine's phase-timing accumulator:
// per-shard compute/commit durations and per-worker barrier-wait
// distributions. Nil unless the system was built with Workers > 1 and
// Config.PhaseStats and the model partitioned itself. Read it only
// after a run has completed (the accumulator is unsynchronized by
// design).
func (s *System) PhaseStats() *obs.PhaseStats { return s.inner.PhaseStats() }

// Close releases the engine's worker goroutines (parallel mode; no-op
// otherwise). Run and RunContext already release them on return, so
// Close only matters for callers driving the system via StepCycles.
func (s *System) Close() { s.inner.Close() }

// OnCycle registers f to be called once at the end of every engine
// tick with the tick just completed and the number of flit movements
// it produced — the per-cycle observability hook for instantaneous
// load traces. Pass nil to detach. The hook composes with the metrics
// sampler, so both can observe every tick. Note that ticks run faster
// than PM cycles on double-speed-global configurations.
func (s *System) OnCycle(f func(tick int64, flitsMoved uint64)) {
	s.inner.OnCycle(f)
}

// MetricSample is one sampled metrics row (see Config.Metrics).
type MetricSample struct {
	// Cycle is the PM clock cycle of the sample (ticks divided by the
	// ticks-per-cycle factor, so values are comparable across
	// double-speed-global configurations).
	Cycle int64
	// Values holds one value per MetricNames entry, index-aligned:
	// windowed utilization in [0,1] for ratio series, windowed deltas
	// for counters, instantaneous readings for gauges.
	Values []float64
}

// MetricNames returns the sampled series keys, e.g.
// "ring_link_util{link=L0}", in registration order (nil unless the
// system was built with Metrics).
func (s *System) MetricNames() []string {
	return s.inner.Sampler().Keys()
}

// MetricSamples returns the time series collected so far, one row per
// sampling interval (nil unless the system was built with Metrics).
// Rows recorded before a Run's warmup are discarded together with the
// warmup batch.
func (s *System) MetricSamples() []MetricSample {
	raw := s.inner.Sampler().Samples()
	if raw == nil {
		return nil
	}
	tpc := s.inner.TicksPerCycle()
	out := make([]MetricSample, len(raw))
	for i, r := range raw {
		out[i] = MetricSample{Cycle: (r.Tick + 1) / tpc, Values: r.Values}
	}
	return out
}

// WriteMetricsCSV writes the sampled time series as CSV (tick column
// plus one column per series key). It errors unless the system was
// built with Metrics.
func (s *System) WriteMetricsCSV(w io.Writer) error {
	if samp := s.inner.Sampler(); samp != nil {
		return samp.WriteCSV(w)
	}
	return fmt.Errorf("ringmesh: metrics disabled (set Config.Metrics)")
}

// WriteMetricsJSONL writes the sampled time series as JSON Lines, one
// object per sampling interval. It errors unless the system was built
// with Metrics.
func (s *System) WriteMetricsJSONL(w io.Writer) error {
	if samp := s.inner.Sampler(); samp != nil {
		return samp.WriteJSONL(w)
	}
	return fmt.Errorf("ringmesh: metrics disabled (set Config.Metrics)")
}

// WriteMetricsSnapshot writes a one-shot Prometheus-style text
// snapshot of every instrument's cumulative value. It errors unless
// the system was built with Metrics.
func (s *System) WriteMetricsSnapshot(w io.Writer) error {
	if reg := s.inner.Metrics(); reg != nil {
		return reg.WriteText(w)
	}
	return fmt.Errorf("ringmesh: metrics disabled (set Config.Metrics)")
}

// PMs returns the number of processing modules.
func (s *System) PMs() int { return s.inner.PMs() }

// TicksPerCycle returns engine ticks per PM clock cycle (2 on
// double-speed-global configurations, else 1) — the factor for
// converting OnCycle tick counts into PM cycles, e.g. when feeding a
// progress gauge.
func (s *System) TicksPerCycle() int64 { return s.inner.TicksPerCycle() }

// Describe returns a one-line summary of the system.
func (s *System) Describe() string { return s.inner.Describe() }

// Topology returns the canonical resolved geometry — colon notation
// for rings ("3:3:8"), "KxK" for meshes — even when the system was
// configured by node count alone.
func (s *System) Topology() string { return s.inner.Topology() }

// Run builds and measures a system over any registered interconnect
// in one call, routed by Config.Fidelity: exact simulation by
// default, the analytic estimator (see Estimate) when the config asks
// for it.
func Run(cfg Config, opt RunOptions) (Result, error) {
	name, err := fidelity.Normalize(cfg.Fidelity)
	if err != nil {
		return Result{}, err
	}
	if name != fidelity.Simulate {
		return Estimate(cfg, opt)
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		return Result{}, err
	}
	return sys.Run(opt)
}

// Estimate answers the configuration through the fidelity registry
// without building the engine: Config.Fidelity selects the backend
// ("" or "simulate" runs the exact engine; "analytic" evaluates the
// closed-form models in microseconds). Analytic results are labeled
// (Result.Fidelity) and carry the recorded validation envelope
// (Result.ErrorBound) when their network family has one. Analytic
// estimation fails for configurations outside the validated envelope
// — slotted switching, double-speed global rings, fault plans,
// open-loop or deterministic workloads — rather than returning an
// unlabeled guess; callers fall back to exact simulation.
func Estimate(cfg Config, opt RunOptions) (Result, error) {
	name, err := fidelity.Normalize(cfg.Fidelity)
	if err != nil {
		return Result{}, err
	}
	est, err := fidelity.Get(name)
	if err != nil {
		return Result{}, err
	}
	netCfg := network.Config{
		Topology:          cfg.Topology,
		Nodes:             cfg.Nodes,
		LineBytes:         cfg.LineBytes,
		BufferFlits:       cfg.BufferFlits,
		DoubleSpeedGlobal: cfg.DoubleSpeedGlobal,
		SlottedSwitching:  cfg.SlottedSwitching,
		UnsafeNoVC:        cfg.UnsafeNoVC,
	}
	var plan *fault.Plan
	if cfg.FaultPlan != "" {
		if plan, err = fault.Parse(cfg.FaultPlan); err != nil {
			return Result{}, err
		}
	}
	r, err := est.Estimate(context.Background(), core.SystemConfig{
		Network:    cfg.Network,
		Net:        netCfg,
		Workload:   cfg.Workload.internal(),
		MemLatency: cfg.MemLatencyCycles,
		Seed:       cfg.Seed,
		Histogram:  cfg.Histogram,
		FaultPlan:  plan,
		Workers:    cfg.Workers,
		Fidelity:   name,
	}, opt.internal())
	if err != nil {
		return Result{}, err
	}
	res := fromCore(r)
	if name != fidelity.Simulate {
		res.Fidelity = name
		if b, ok := fidelity.BoundFor(cfg.Network, netCfg); ok {
			res.ErrorBound = &ErrorBound{MaxRelErr: b.MaxRelErr, Basis: b.Basis}
		}
	}
	return res, nil
}

// Fidelities returns the registered estimator backend names, sorted;
// valid values for Config.Fidelity (the serving daemon additionally
// accepts "auto").
func Fidelities() []string { return fidelity.Names() }

// RunRing builds and measures a hierarchical-ring system in one call.
//
// Deprecated: thin wrapper over Run with Network "ring".
func RunRing(cfg RingConfig, opt RunOptions) (Result, error) {
	return Run(cfg.generic(), opt)
}

// RunMesh builds and measures a mesh system in one call.
//
// Deprecated: thin wrapper over Run with Network "mesh".
func RunMesh(cfg MeshConfig, opt RunOptions) (Result, error) {
	return Run(cfg.generic(), opt)
}

// Topologies returns the names of all registered interconnect models,
// sorted; valid values for Config.Network.
func Topologies() []string { return network.Names() }

// OptimalRingTopology returns the best hierarchy (paper Table 2
// methodology) for the given processor count and cache line size, in
// colon notation.
func OptimalRingTopology(nodes, lineBytes int) (string, error) {
	spec, err := network.RingTopologyFor(nodes, lineBytes)
	if err != nil {
		return "", err
	}
	return spec.String(), nil
}

// EnumerateRingTopologies lists every admissible hierarchy for the
// given node count: at most maxLevels levels, internal branching of
// 2..maxBranch, and leaf rings of at most maxLeaf PMs.
func EnumerateRingTopologies(nodes, maxLevels, maxBranch, maxLeaf int) []string {
	specs := topo.EnumerateRingSpecs(nodes, maxLevels, maxBranch, maxLeaf)
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.String()
	}
	return out
}

// SingleRingCapacity returns the paper's conservative single-ring
// node limit for a cache line size (12/8/6/4 for 16/32/64/128 bytes),
// or 0 for unsupported sizes.
func SingleRingCapacity(lineBytes int) int {
	return network.SingleRingCapacity[lineBytes]
}
