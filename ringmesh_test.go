package ringmesh

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestPaperWorkloadDefaults(t *testing.T) {
	w := PaperWorkload()
	if w.R != 1.0 || w.C != 0.04 || w.T != 4 || w.ReadProb != 0.7 {
		t.Fatalf("paper workload = %+v", w)
	}
}

func TestRunRingByTopology(t *testing.T) {
	res, err := RunRing(RingConfig{
		Topology:  "2:4",
		LineBytes: 32,
		Workload:  PaperWorkload(),
		Seed:      1,
	}, QuickRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyCycles <= 0 || res.Observations == 0 {
		t.Fatalf("bad result %+v", res)
	}
	if len(res.RingUtilization) != 2 {
		t.Fatalf("ring levels = %d", len(res.RingUtilization))
	}
}

func TestRunRingByNodes(t *testing.T) {
	sys, err := NewRingSystem(RingConfig{
		Nodes:     24,
		LineBytes: 32,
		Workload:  PaperWorkload(),
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.PMs() != 24 {
		t.Fatalf("PMs = %d", sys.PMs())
	}
	if sys.Describe() == "" {
		t.Fatal("empty description")
	}
}

func TestRunRingNeedsTopologyOrNodes(t *testing.T) {
	_, err := NewRingSystem(RingConfig{LineBytes: 32, Workload: PaperWorkload()})
	if err == nil {
		t.Fatal("config without topology or nodes accepted")
	}
}

func TestRunMesh(t *testing.T) {
	res, err := RunMesh(MeshConfig{
		Nodes:       16,
		LineBytes:   64,
		BufferFlits: 4,
		Workload:    PaperWorkload(),
		Seed:        1,
	}, QuickRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyCycles <= 0 || res.MeshUtilization <= 0 {
		t.Fatalf("bad result %+v", res)
	}
}

func TestRunMeshRejectsNonSquare(t *testing.T) {
	_, err := NewMeshSystem(MeshConfig{Nodes: 15, LineBytes: 32, Workload: PaperWorkload()})
	if err == nil {
		t.Fatal("non-square mesh accepted")
	}
}

func TestStepCycles(t *testing.T) {
	sys, err := NewRingSystem(RingConfig{Topology: "4", LineBytes: 32,
		Workload: PaperWorkload(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StepCycles(100); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalRingTopology(t *testing.T) {
	s, err := OptimalRingTopology(72, 32)
	if err != nil {
		t.Fatal(err)
	}
	if s != "3:3:8" {
		t.Fatalf("topology for 72@32B = %s, want 3:3:8 (paper Table 2)", s)
	}
	if _, err := OptimalRingTopology(7, 128); err == nil {
		t.Fatal("impossible size accepted")
	}
}

func TestEnumerateRingTopologies(t *testing.T) {
	all := EnumerateRingTopologies(24, 3, 3, 12)
	if len(all) == 0 {
		t.Fatal("no topologies for 24")
	}
	seen := map[string]bool{}
	for _, s := range all {
		seen[s] = true
	}
	if !seen["2:12"] {
		t.Fatalf("2:12 missing: %v", all)
	}
}

func TestSingleRingCapacity(t *testing.T) {
	want := map[int]int{16: 12, 32: 8, 64: 6, 128: 4}
	for line, cap := range want {
		if got := SingleRingCapacity(line); got != cap {
			t.Fatalf("capacity(%d) = %d, want %d", line, got, cap)
		}
	}
	if SingleRingCapacity(48) != 0 {
		t.Fatal("unsupported line size should return 0")
	}
}

func TestSweepRingSizes(t *testing.T) {
	pts, err := SweepRingSizes(RingConfig{
		LineBytes: 32,
		Workload:  PaperWorkload(),
		Seed:      1,
	}, []int{8, 16, 24}, SweepOptions{Run: QuickRunOptions(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	for i, p := range pts {
		if p.Topology == "" || p.Result.LatencyCycles <= 0 {
			t.Fatalf("bad point %+v", p)
		}
		if i > 0 && pts[i-1].Nodes >= p.Nodes {
			t.Fatal("points not sorted")
		}
	}
}

func TestSweepMeshSizes(t *testing.T) {
	pts, err := SweepMeshSizes(MeshConfig{
		LineBytes:   32,
		BufferFlits: 4,
		Workload:    PaperWorkload(),
		Seed:        1,
	}, []int{4, 16}, SweepOptions{Run: QuickRunOptions(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Nodes != 4 || pts[1].Nodes != 16 {
		t.Fatalf("points = %+v", pts)
	}
}

// TestSweepWorkersZeroIsSerial pins the documented SweepOptions
// contract: Workers 0 (the zero value) means 1, a serial sweep — not
// DefaultSweepOptions' parallel default — and produces exactly the
// points a parallel sweep does. (The serial-scheduling guarantee
// itself is pinned at the shared pool: internal/pool's
// TestForEachZeroWorkersIsSerial.)
func TestSweepWorkersZeroIsSerial(t *testing.T) {
	base := Config{
		Network:   "mesh",
		LineBytes: 32,
		Workload:  PaperWorkload(),
		Seed:      7,
	}
	sizes := []int{4, 9, 16}
	serial, err := SweepSizes(base, sizes, SweepOptions{Run: QuickRunOptions(), Workers: 0})
	if err != nil {
		t.Fatalf("Workers:0 sweep: %v", err)
	}
	parallel, err := SweepSizes(base, sizes, SweepOptions{Run: QuickRunOptions(), Workers: 3})
	if err != nil {
		t.Fatalf("Workers:3 sweep: %v", err)
	}
	if len(serial) != len(sizes) {
		t.Fatalf("serial sweep returned %d points, want %d", len(serial), len(sizes))
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("serial points differ from parallel points:\n%+v\nvs\n%+v", serial, parallel)
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	_, err := SweepMeshSizes(MeshConfig{
		LineBytes: 32,
		Workload:  PaperWorkload(),
	}, []int{5}, SweepOptions{Run: QuickRunOptions()})
	if err == nil {
		t.Fatal("non-square sweep size accepted")
	}
}

func TestDeterministicAcrossAPIs(t *testing.T) {
	cfg := RingConfig{Topology: "2:3:4", LineBytes: 64, Workload: PaperWorkload(), Seed: 9}
	a, err := RunRing(cfg, QuickRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRing(cfg, QuickRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.LatencyCycles != b.LatencyCycles || a.Issued != b.Issued {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	res, err := RunRing(RingConfig{
		Topology:  "2:4",
		LineBytes: 32,
		Workload:  PaperWorkload(),
		Seed:      1,
		Histogram: true,
	}, QuickRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyP50 <= 0 || res.LatencyP95 < res.LatencyP50 || res.LatencyMax < res.LatencyP95 {
		t.Fatalf("percentile ordering wrong: %+v", res)
	}
	// The mean must sit within the distribution's range.
	if res.LatencyCycles > res.LatencyMax {
		t.Fatalf("mean %v above max %v", res.LatencyCycles, res.LatencyMax)
	}
}

func TestOpenLoopWorkload(t *testing.T) {
	wl := PaperWorkload()
	wl.OpenLoop = true
	closed, err := RunRing(RingConfig{Topology: "3:8", LineBytes: 32,
		Workload: PaperWorkload(), Seed: 1}, QuickRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	open, err := RunRing(RingConfig{Topology: "3:8", LineBytes: 32,
		Workload: wl, Seed: 1}, QuickRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Open-loop generation can only add processor-side queueing to the
	// measured round trip (misses wait for a window slot but their
	// latency clock starts at generation).
	if open.LatencyCycles < closed.LatencyCycles {
		t.Fatalf("open-loop latency %v below closed-loop %v",
			open.LatencyCycles, closed.LatencyCycles)
	}
	if open.Observations == 0 {
		t.Fatal("open-loop run produced no observations")
	}
}

func TestSlottedSwitchingAPI(t *testing.T) {
	res, err := RunRing(RingConfig{
		Topology:         "2:3:4",
		LineBytes:        32,
		SlottedSwitching: true,
		Workload:         PaperWorkload(),
		Seed:             1,
	}, QuickRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled || res.Observations == 0 {
		t.Fatalf("slotted run failed: %+v", res)
	}
	if len(res.RingUtilization) != 3 {
		t.Fatalf("slotted ring levels = %d", len(res.RingUtilization))
	}
}

func TestTraceAPI(t *testing.T) {
	sys, err := NewRingSystem(RingConfig{
		Topology: "2:3", LineBytes: 32,
		Workload: PaperWorkload(), Seed: 1, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StepCycles(1500); err != nil {
		t.Fatal(err)
	}
	evts := sys.TraceEvents()
	if len(evts) == 0 {
		t.Fatal("no trace events")
	}
	// Find a delivered packet and check its timeline shape.
	var delivered uint64
	for _, e := range evts {
		if e.Kind == "deliver" {
			delivered = e.Packet
			break
		}
	}
	if delivered == 0 {
		t.Fatal("no delivery traced")
	}
	tl := sys.PacketTimeline(delivered)
	if len(tl) < 2 || tl[len(tl)-1].Kind != "deliver" {
		t.Fatalf("odd timeline: %+v", tl)
	}
	// Untraced systems return nil.
	sys2, _ := NewRingSystem(RingConfig{Topology: "4", LineBytes: 32,
		Workload: PaperWorkload(), Seed: 1})
	if sys2.TraceEvents() != nil {
		t.Fatal("untraced system returned events")
	}
}

func TestTopologyNodesConsistency(t *testing.T) {
	_, err := NewRingSystem(RingConfig{
		Topology: "3:3:8", Nodes: 24, LineBytes: 32,
		Workload: PaperWorkload(),
	})
	if err == nil {
		t.Fatal("contradictory Topology/Nodes accepted")
	}
	// Matching values are fine.
	if _, err := NewRingSystem(RingConfig{
		Topology: "3:8", Nodes: 24, LineBytes: 32,
		Workload: PaperWorkload(),
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTopologiesListsBuiltins(t *testing.T) {
	names := Topologies()
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found["ring"] || !found["mesh"] {
		t.Fatalf("Topologies() = %v, want ring and mesh", names)
	}
}

func TestGenericNewSystemResolvesTopology(t *testing.T) {
	ringSys, err := NewSystem(Config{Network: "ring", Nodes: 72, LineBytes: 32,
		Workload: PaperWorkload(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := ringSys.Topology(); got != "3:3:8" {
		t.Errorf("ring Topology() = %q, want 3:3:8", got)
	}
	meshSys, err := NewSystem(Config{Network: "mesh", Nodes: 64, LineBytes: 32,
		BufferFlits: 4, Workload: PaperWorkload(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := meshSys.Topology(); got != "8x8" {
		t.Errorf("mesh Topology() = %q, want 8x8", got)
	}
}

func TestGenericRunUnknownNetwork(t *testing.T) {
	_, err := Run(Config{Network: "torus", Nodes: 64, LineBytes: 32,
		Workload: PaperWorkload()}, QuickRunOptions())
	if err == nil {
		t.Fatal("expected an error for an unregistered network")
	}
	if !strings.Contains(err.Error(), "torus") {
		t.Errorf("error %q does not name the unknown topology", err)
	}
}

func TestGenericSweepRecordsMeshTopology(t *testing.T) {
	pts, err := SweepSizes(Config{Network: "mesh", LineBytes: 32, BufferFlits: 4,
		Workload: PaperWorkload(), Seed: 3}, []int{4, 9}, SweepOptions{Run: QuickRunOptions(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]string{4: "2x2", 9: "3x3"}
	if len(pts) != 2 {
		t.Fatalf("got %d points, want 2", len(pts))
	}
	for _, p := range pts {
		if p.Topology != want[p.Nodes] {
			t.Errorf("size %d Topology = %q, want %q", p.Nodes, p.Topology, want[p.Nodes])
		}
	}
}

func TestSweepReportsAllErrors(t *testing.T) {
	// Every point fails (non-square mesh sizes). Scheduling stops once
	// a failure has been recorded, so between one and all of the
	// errors surface — every one that does must be in the joined
	// message, each labelled with its size.
	_, err := SweepSizes(Config{Network: "mesh", LineBytes: 32,
		Workload: PaperWorkload()}, []int{5, 7}, SweepOptions{Run: QuickRunOptions(), Workers: 2})
	if err == nil {
		t.Fatal("expected errors for non-square mesh sizes")
	}
	msg := err.Error()
	if !strings.Contains(msg, "size 5") && !strings.Contains(msg, "size 7") {
		t.Errorf("joined error %q names no failing point", msg)
	}
	if !strings.Contains(msg, "square") {
		t.Errorf("joined error %q lost the underlying cause", msg)
	}
}

// TestSweepTelemetry checks the per-point JSONL stream: one valid
// line per completed point carrying the summary measurements.
func TestSweepTelemetry(t *testing.T) {
	var buf bytes.Buffer
	pts, err := SweepSizes(Config{
		Network:   "ring",
		LineBytes: 32,
		Workload:  PaperWorkload(),
		Seed:      3,
	}, []int{8, 16}, SweepOptions{Run: QuickRunOptions(), Workers: 2, Telemetry: &buf})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(pts) {
		t.Fatalf("%d telemetry lines for %d points:\n%s", len(lines), len(pts), buf.String())
	}
	byNodes := map[int]SweepPoint{}
	for _, p := range pts {
		byNodes[p.Nodes] = p
	}
	for _, line := range lines {
		var tele struct {
			Nodes      int     `json:"nodes"`
			Topology   string  `json:"topology"`
			Latency    float64 `json:"latency_cycles"`
			Throughput float64 `json:"throughput"`
		}
		if err := json.Unmarshal([]byte(line), &tele); err != nil {
			t.Fatalf("bad telemetry line %q: %v", line, err)
		}
		p, ok := byNodes[tele.Nodes]
		if !ok {
			t.Fatalf("telemetry for unknown point %d", tele.Nodes)
		}
		if tele.Topology != p.Topology || tele.Latency != p.Result.LatencyCycles ||
			tele.Throughput != p.Result.Throughput {
			t.Fatalf("telemetry %+v disagrees with point %+v", tele, p)
		}
	}
}

// TestMetricsDisabledAccessors checks the facade's behaviour without
// Config.Metrics: empty series, and exporters that error rather than
// writing empty files.
func TestMetricsDisabledAccessors(t *testing.T) {
	sys, err := NewSystem(Config{
		Network: "ring", Topology: "4", LineBytes: 32,
		Workload: PaperWorkload(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if names := sys.MetricNames(); names != nil {
		t.Fatalf("MetricNames without metrics = %v", names)
	}
	if samples := sys.MetricSamples(); samples != nil {
		t.Fatalf("MetricSamples without metrics = %v", samples)
	}
	var buf bytes.Buffer
	if err := sys.WriteMetricsCSV(&buf); err == nil {
		t.Fatal("WriteMetricsCSV should error when metrics are disabled")
	}
	if err := sys.WriteMetricsJSONL(&buf); err == nil {
		t.Fatal("WriteMetricsJSONL should error when metrics are disabled")
	}
	if err := sys.WriteMetricsSnapshot(&buf); err == nil {
		t.Fatal("WriteMetricsSnapshot should error when metrics are disabled")
	}
}

// TestMetricsExportAndUserHookCompose runs a metrics-enabled system
// with a user OnCycle hook attached and checks both observe the run:
// the sampler and the hook share the engine's single hook slot via
// composition, not replacement.
func TestMetricsExportAndUserHookCompose(t *testing.T) {
	sys, err := NewSystem(Config{
		Network: "ring", Topology: "2:3:4", LineBytes: 32,
		Workload: PaperWorkload(), Seed: 9,
		Metrics: true, MetricsIntervalCycles: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	hookCalls := 0
	sys.OnCycle(func(tick int64, moved uint64) { hookCalls++ })
	if err := sys.StepCycles(200); err != nil {
		t.Fatal(err)
	}
	if hookCalls != 200 {
		t.Fatalf("user hook fired %d times, want 200", hookCalls)
	}
	if n := len(sys.MetricSamples()); n != 4 {
		t.Fatalf("sampler rows = %d, want 4", n)
	}
	var csv, jsonl, snap bytes.Buffer
	if err := sys.WriteMetricsCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteMetricsJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	if err := sys.WriteMetricsSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "tick,") {
		t.Fatalf("csv header missing:\n%s", csv.String())
	}
	if lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n"); len(lines) != 4 {
		t.Fatalf("jsonl rows = %d, want 4", len(lines))
	}
	if !strings.Contains(snap.String(), "# TYPE ring_link_util gauge") {
		t.Fatalf("snapshot missing TYPE line:\n%s", snap.String())
	}
}
