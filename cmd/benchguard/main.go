// Command benchguard runs benchmarks and compares their ns/op against
// checked-in baselines, failing when any measurement regresses past a
// threshold. It guards the engine's hot loop — in particular that the
// metrics instrumentation stays free when disabled.
//
// Usage:
//
//	go run ./cmd/benchguard                # compare against the baseline
//	go run ./cmd/benchguard -bench A,B,C   # guard several benchmarks in one run
//	go run ./cmd/benchguard -update        # re-record the baselines
//	go run ./cmd/benchguard -threshold 25  # loosen the gate (percent)
//
// Each benchmark runs -count times and the fastest run is compared:
// minimum-of-N is robust to scheduler noise, which only ever slows a
// run down. Every guarded benchmark is measured even after one fails,
// so a regression report names everything that regressed and by how
// much, not just the first offender.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

func main() {
	var (
		bench     = flag.String("bench", "BenchmarkEngineStepUniform", "benchmarks to guard (comma-separated exact names)")
		pkg       = flag.String("pkg", ".", "package holding the benchmarks")
		baseline  = flag.String("baseline", "ci/bench-baseline.txt", "baseline file path")
		count     = flag.Int("count", 5, "benchmark repetitions (fastest wins)")
		benchtime = flag.String("benchtime", "2000x", "go test -benchtime value")
		threshold = flag.Float64("threshold", 15, "allowed regression in percent")
		update    = flag.Bool("update", false, "record the measurements as the new baselines")
	)
	flag.Parse()

	benches := strings.Split(*bench, ",")
	for i := range benches {
		benches[i] = strings.TrimSpace(benches[i])
	}

	var regressions []string
	for _, b := range benches {
		if b == "" {
			continue
		}
		got, err := measure(b, *pkg, *count, *benchtime)
		if err != nil {
			fail(err)
		}
		fmt.Printf("benchguard: %s = %.1f ns/op (best of %d)\n", b, got, *count)

		if *update {
			if err := writeBaseline(*baseline, b, got); err != nil {
				fail(err)
			}
			continue
		}

		want, err := readBaseline(*baseline, b)
		if err != nil {
			fail(err)
		}
		change := 100 * (got - want) / want
		fmt.Printf("benchguard: %s baseline %.1f ns/op, change %+.1f%% (limit +%.0f%%)\n",
			b, want, change, *threshold)
		if change > *threshold {
			regressions = append(regressions,
				fmt.Sprintf("%s regressed %+.1f%% (got %.1f ns/op, baseline %.1f)", b, change, got, want))
		}
	}
	if *update {
		fmt.Printf("benchguard: baselines written to %s\n", *baseline)
		return
	}
	if len(regressions) > 0 {
		fail(fmt.Errorf("%d of %d benchmarks past the +%.0f%% limit:\n  %s\nif intentional, re-record with -update",
			len(regressions), len(benches), *threshold, strings.Join(regressions, "\n  ")))
	}
	fmt.Println("benchguard: ok")
}

// measure runs the benchmark and returns the fastest observed ns/op.
func measure(bench, pkg string, count int, benchtime string) (float64, error) {
	cmd := exec.Command("go", "test", "-run=NONE",
		"-bench=^"+bench+"$", "-benchtime="+benchtime,
		"-count="+strconv.Itoa(count), pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return 0, fmt.Errorf("benchmark run failed: %w\n%s", err, out)
	}
	best := 0.0
	for _, line := range strings.Split(string(out), "\n") {
		v, ok := parseNsPerOp(line, bench)
		if !ok {
			continue
		}
		if best == 0 || v < best {
			best = v
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("no %q results in output:\n%s", bench, out)
	}
	return best, nil
}

// parseNsPerOp extracts ns/op from one `go test -bench` output line,
// e.g. "BenchmarkEngineStepUniform-8   2000   845.2 ns/op".
func parseNsPerOp(line, bench string) (float64, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || (f[0] != bench && !strings.HasPrefix(f[0], bench+"-")) {
		return 0, false
	}
	for i := 2; i+1 < len(f); i++ {
		if f[i+1] == "ns/op" {
			v, err := strconv.ParseFloat(f[i], 64)
			return v, err == nil && v > 0
		}
	}
	return 0, false
}

// writeBaseline records one benchmark's measurement, merging with any
// baselines already in the file: the file holds one "name value" line
// per guarded benchmark, so re-recording one never drops the others.
func writeBaseline(path, bench string, got float64) error {
	var lines []string
	if body, err := os.ReadFile(path); err == nil {
		replaced := false
		for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
			if f := strings.Fields(strings.TrimSpace(line)); len(f) == 2 && f[0] == bench {
				line = fmt.Sprintf("%s %.1f", bench, got)
				replaced = true
			}
			lines = append(lines, line)
		}
		if !replaced {
			lines = append(lines, fmt.Sprintf("%s %.1f", bench, got))
		}
	} else {
		lines = []string{
			"# Baseline ns/op recorded by cmd/benchguard -update.",
			"# Regenerate on the machine that runs the guard.",
			fmt.Sprintf("%s %.1f", bench, got),
		}
	}
	return os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644)
}

// readBaseline finds the benchmark's recorded ns/op in the baseline
// file ("name value" lines; # starts a comment).
func readBaseline(path, bench string) (float64, error) {
	body, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("no baseline (run with -update to record one): %w", err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) == 2 && f[0] == bench {
			v, err := strconv.ParseFloat(f[1], 64)
			if err != nil || v <= 0 {
				return 0, fmt.Errorf("bad baseline line %q", line)
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("benchmark %q not in %s (run with -update)", bench, path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
