// Command ringmesh runs a single interconnect simulation from flags
// and prints the measured metrics. The network is selected by its
// registry name, so the command needs no per-topology code: any model
// registered with the network package is runnable from here.
//
// Examples:
//
//	ringmesh -net ring -topo 3:3:8 -line 32
//	ringmesh -net ring -topo 5:3:4 -line 128 -double-global
//	ringmesh -net mesh -nodes 64 -line 64 -buf 4 -R 0.3 -T 2
//	ringmesh -net mesh -topo 8x8 -line 32
//	ringmesh -net ring -topo 2:4 -fault-plan 'stutter@2000+1000:node=3'
//	ringmesh -net mesh -topo 8x8 -timeout 30s
//	ringmesh -net ring -topo 3:3:8 -fidelity analytic
//
// -fidelity selects the answer tier: "simulate" (default) runs the
// exact engine; "analytic" evaluates the closed-form models in
// microseconds and prints the estimate with its recorded error bound
// (see internal/fidelity).
//
// Exit codes: 0 success, 1 runtime failure, 2 configuration error,
// 3 stall (watchdog tripped; forensic summary goes to stderr).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"ringmesh/internal/core"
	"ringmesh/internal/fault"
	"ringmesh/internal/fidelity"
	"ringmesh/internal/metrics"
	"ringmesh/internal/network"
	"ringmesh/internal/sim"
	"ringmesh/internal/trace"
	"ringmesh/internal/workload"
)

// Exit codes. Scripts sweeping parameter spaces branch on these to
// tell "this configuration is invalid" from "this configuration
// deadlocked" without parsing stderr.
const (
	exitRuntime = 1
	exitConfig  = 2
	exitStall   = 3
)

func main() {
	var (
		netKind = flag.String("net", "ring",
			"network type: "+strings.Join(network.Names(), " or "))
		topoStr = flag.String("topo", "", "geometry in the model's notation, e.g. 2:3:4 or 8x8 (default: derived from -nodes)")
		nodes   = flag.Int("nodes", 16, "number of processors, used when -topo is empty (mesh: must be a square; ring: picks the optimal hierarchy)")
		line    = flag.Int("line", 32, "cache line size in bytes (16/32/64/128)")
		buf     = flag.Int("buf", 4, "mesh input buffer depth in flits (0 = cache-line sized)")
		dbl     = flag.Bool("double-global", false, "clock the global ring at 2x (ring only)")
		slotted = flag.Bool("slotted", false, "slotted instead of wormhole ring switching (ring only)")
		rFlag   = flag.Float64("R", 1.0, "access region fraction (locality)")
		cFlag   = flag.Float64("C", 0.04, "cache miss rate per cycle")
		tFlag   = flag.Int("T", 4, "outstanding transactions before blocking")
		readP   = flag.Float64("read-prob", 0.7, "probability a miss is a read")
		memLat  = flag.Int("mem", 0, "memory service latency in cycles (0 = default)")
		seed    = flag.Uint64("seed", 1, "random seed")
		warmup  = flag.Int64("warmup", 4000, "warmup cycles (discarded batch)")
		batch   = flag.Int64("batch", 4000, "cycles per batch")
		batches = flag.Int("batches", 8, "retained batches")
		tracePk = flag.Uint64("trace-packet", 0, "print the lifecycle of this packet id (0 = off)")

		faultPlan = flag.String("fault-plan", "", `fault plan DSL: ";"-separated events "kind@start+dur:node=N[,port=P][,factor=F]" (kinds stutter/slowdown/degrade), or "rand:events=E,seed=S,horizon=H"`)
		timeout   = flag.Duration("timeout", 0, "wall-clock bound for the run, e.g. 30s (0 = none)")
		noVC      = flag.Bool("unsafe-no-vc", false, "disable the ring's deadlock-avoidance virtual channels (forensics demos; wormhole ring only)")
		workersF  = flag.Int("workers", 1, "parallel tick workers (1 = serial engine; results are bit-identical at any count)")
		fidelityF = flag.String("fidelity", "simulate", `answer tier: "simulate" (exact engine) or "analytic" (closed-form estimate with its recorded error bound)`)

		verbose    = flag.Bool("v", false, "collect the full latency distribution and print a p50/p95/p99 summary line")
		metricsOn  = flag.Bool("metrics", false, "collect link/queue/stall instruments and print a snapshot after the run")
		metricsInt = flag.Int64("metrics-interval", 100, "metrics sampling period in PM cycles (with -metrics)")
		metricsOut = flag.String("metrics-out", "", "write the sampled metrics time series to this file; .jsonl suffix selects JSON Lines, anything else CSV (with -metrics)")
	)
	flag.Parse()

	// Validate what the flag layer owns before constructing anything,
	// so a typo fails in microseconds with a message naming the flag.
	plan, err := validateFlags(*faultPlan, *timeout, *rFlag, *cFlag, *tFlag, *readP,
		*warmup, *batch, *batches, *metricsInt, *workersF)
	if err != nil {
		fail(exitConfig, err)
	}

	wl := workload.MMRP{R: *rFlag, C: *cFlag, T: *tFlag, ReadProb: *readP}
	rc := core.RunConfig{WarmupCycles: *warmup, BatchCycles: *batch, Batches: *batches,
		Timeout: *timeout}
	var rec *trace.Recorder
	if *tracePk != 0 {
		rec = &trace.Recorder{OnlyPacket: *tracePk}
	}
	var reg *metrics.Registry
	if *metricsOn || *metricsOut != "" {
		reg = &metrics.Registry{}
	}

	fid, err := fidelity.Normalize(*fidelityF)
	if err != nil {
		fail(exitConfig, fmt.Errorf("-fidelity: %w", err))
	}

	n := *nodes
	if *topoStr != "" {
		// The geometry is fully named; don't cross-check the -nodes
		// default against it.
		n = 0
	}
	sysCfg := core.SystemConfig{
		Network: *netKind,
		Net: network.Config{
			Topology:          *topoStr,
			Nodes:             n,
			LineBytes:         *line,
			BufferFlits:       *buf,
			DoubleSpeedGlobal: *dbl,
			SlottedSwitching:  *slotted,
			UnsafeNoVC:        *noVC,
		},
		Workload:        wl,
		MemLatency:      *memLat,
		Seed:            *seed,
		Histogram:       *verbose,
		Workers:         *workersF,
		Tracer:          rec,
		Metrics:         reg,
		MetricsInterval: *metricsInt,
		FaultPlan:       plan,
		Fidelity:        fid,
	}

	if fid != fidelity.Simulate {
		// Estimator tiers never build the engine, so the instruments
		// that ride on it have nothing to observe.
		if *tracePk != 0 || *metricsOn || *metricsOut != "" || *verbose {
			fail(exitConfig, fmt.Errorf("-fidelity %s is engine-free; -trace-packet, -metrics, -metrics-out and -v need the simulator", fid))
		}
		runEstimate(fid, sysCfg, rc, wl)
		return
	}

	sys, err := core.NewSystem(sysCfg)
	if err != nil {
		fail(exitConfig, err)
	}

	res, err := sys.Run(rc)
	if err != nil {
		var se *sim.StallError
		if errors.As(err, &se) {
			fmt.Fprintln(os.Stderr, "ringmesh:", se.Report.Summary())
			fail(exitStall, err)
		}
		fail(exitRuntime, err)
	}
	fmt.Printf("system:       %s (%d PMs)\n", sys.Describe(), sys.PMs())
	fmt.Printf("workload:     R=%.2f C=%.3f T=%d read-prob=%.2f\n", wl.R, wl.C, wl.T, wl.ReadProb)
	fmt.Printf("latency:      %.1f cycles (95%% CI ±%.1f, %d observations)\n",
		res.Latency, res.LatencyCI, res.Observations)
	fmt.Printf("throughput:   %.3f transactions/cycle (%d issued, %d completed, %d local)\n",
		res.Throughput, res.Issued, res.Completed, res.Local)
	if *verbose {
		fmt.Printf("latency dist: p50=%.0f p95=%.0f p99=%.0f max=%.0f cycles\n",
			res.LatencyP50, res.LatencyP95, res.LatencyP99, res.LatencyMax)
	}
	if res.RingUtil != nil {
		fmt.Printf("ring util:    ")
		for lvl, u := range res.RingUtil {
			name := fmt.Sprintf("L%d", lvl)
			if lvl == 0 {
				name = "global"
			}
			if lvl == len(res.RingUtil)-1 && lvl > 0 {
				name = "local"
			}
			fmt.Printf("%s=%.1f%% ", name, 100*u)
		}
		fmt.Println()
	} else {
		fmt.Printf("mesh util:    %.1f%%\n", 100*res.MeshUtil)
	}
	if res.Saturated {
		fmt.Println("note:         network past saturation (processors mostly blocked)")
	}
	if rec != nil {
		fmt.Printf("\ntrace of packet #%d:\n", *tracePk)
		if err := rec.Write(os.Stdout); err != nil {
			fail(exitRuntime, err)
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fail(exitRuntime, err)
		}
		samp := sys.Sampler()
		if strings.HasSuffix(*metricsOut, ".jsonl") {
			err = samp.WriteJSONL(f)
		} else {
			err = samp.WriteCSV(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(exitRuntime, err)
		}
		fmt.Printf("\nmetrics:      %d samples x %d series -> %s\n",
			len(samp.Samples()), len(samp.Keys()), *metricsOut)
	}
	if *metricsOn {
		fmt.Println("\nmetrics snapshot (measured interval):")
		if err := reg.WriteText(os.Stdout); err != nil {
			fail(exitRuntime, err)
		}
	}
	if res.Stalled {
		fmt.Println("note:         watchdog tripped (no forward progress)")
		fmt.Fprintln(os.Stderr, "ringmesh:", res.Stall.Summary())
		os.Exit(exitStall)
	}
}

// runEstimate answers the configuration through the fidelity registry
// instead of the engine and prints the estimate with its recorded
// validation bound. Estimator refusals (features outside the validated
// envelope) are configuration errors: rerun without -fidelity for the
// exact answer.
func runEstimate(fid string, sysCfg core.SystemConfig, rc core.RunConfig, wl workload.MMRP) {
	est, err := fidelity.Get(fid)
	if err != nil {
		fail(exitConfig, err)
	}
	res, err := est.Estimate(context.Background(), sysCfg, rc)
	if err != nil {
		fail(exitConfig, err)
	}
	// The geometry resolved through the registry, for the header the
	// engine path gets from sys.Describe().
	plan, err := network.New(sysCfg.Network, sysCfg.Net)
	if err != nil {
		fail(exitConfig, err)
	}
	fmt.Printf("system:       %s %s (%d PMs), %s estimate\n",
		sysCfg.Network, plan.Topology, plan.PMs, fid)
	fmt.Printf("workload:     R=%.2f C=%.3f T=%d read-prob=%.2f\n", wl.R, wl.C, wl.T, wl.ReadProb)
	fmt.Printf("latency:      %.1f cycles (closed-form, zero-load)\n", res.Latency)
	fmt.Printf("throughput:   %.3f transactions/cycle (estimated)\n", res.Throughput)
	if b, ok := fidelity.BoundFor(sysCfg.Network, sysCfg.Net); ok {
		fmt.Printf("error bound:  max rel err %.1f%% (%s)\n", 100*b.MaxRelErr, b.Basis)
	}
	if res.RingUtil != nil {
		fmt.Printf("ring util:    global=%.1f%% (bisection bound)\n", 100*res.RingUtil[0])
	} else {
		fmt.Printf("mesh util:    %.1f%% (bisection bound)\n", 100*res.MeshUtil)
	}
	if res.Saturated {
		fmt.Println("note:         estimated past saturation (offered load exceeds the bisection bound)")
	}
}

// validateFlags checks everything the flag layer owns — value ranges
// and the fault-plan syntax — before a system is built. Topology and
// line-size checks stay with the models, which own those rules.
func validateFlags(faultPlan string, timeout time.Duration, r, c float64, t int,
	readP float64, warmup, batch int64, batches int, metricsInt int64, workers int) (*fault.Plan, error) {
	switch {
	case workers < 1:
		return nil, fmt.Errorf("-workers %d < 1", workers)
	case r < 0 || r > 1:
		return nil, fmt.Errorf("-R %g outside [0,1]", r)
	case c <= 0 || c > 1:
		return nil, fmt.Errorf("-C %g outside (0,1]", c)
	case t < 1:
		return nil, fmt.Errorf("-T %d < 1", t)
	case readP < 0 || readP > 1:
		return nil, fmt.Errorf("-read-prob %g outside [0,1]", readP)
	case warmup < 0:
		return nil, fmt.Errorf("-warmup %d < 0", warmup)
	case batch < 1:
		return nil, fmt.Errorf("-batch %d < 1", batch)
	case batches < 1:
		return nil, fmt.Errorf("-batches %d < 1", batches)
	case timeout < 0:
		return nil, fmt.Errorf("-timeout %s < 0", timeout)
	case metricsInt < 1:
		return nil, fmt.Errorf("-metrics-interval %d < 1", metricsInt)
	}
	if faultPlan == "" {
		return nil, nil
	}
	plan, err := fault.Parse(faultPlan)
	if err != nil {
		return nil, fmt.Errorf("-fault-plan: %w", err)
	}
	return plan, nil
}

func fail(code int, err error) {
	fmt.Fprintln(os.Stderr, "ringmesh:", err)
	os.Exit(code)
}
