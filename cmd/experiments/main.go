// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -id fig14              # one experiment, text to stdout
//	experiments -all -out results/     # everything, text + CSV files
//	experiments -id fig6 -quick        # shortened runs (smoke)
//
// Every experiment is a deterministic simulation sweep; see DESIGN.md
// for the experiment index and EXPERIMENTS.md for measured-vs-paper
// discussion.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"ringmesh/internal/exp"
	"ringmesh/internal/plot"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiment ids and exit")
		id      = flag.String("id", "", "run a single experiment by id")
		all     = flag.Bool("all", false, "run every experiment")
		quick   = flag.Bool("quick", false, "shortened simulation runs")
		outDir  = flag.String("out", "", "also write <id>.txt and <id>.csv under this directory")
		plotIt  = flag.Bool("plot", false, "draw ASCII charts after each experiment")
		seed    = flag.Uint64("seed", 42, "simulation seed")
		workers = flag.Int("workers", runtime.NumCPU(), "concurrent simulations (>= 1)")
		engineW = flag.Int("engine-workers", 1, "parallel tick workers per simulation (>= 1; capped so workers x engine-workers <= NumCPU)")
	)
	flag.Parse()

	// Reject rather than silently clamp: a script that computed 0 or a
	// negative worker count has a bug it should hear about.
	if *workers < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -workers %d < 1\n", *workers)
		os.Exit(2)
	}
	if *engineW < 1 {
		fmt.Fprintf(os.Stderr, "experiments: -engine-workers %d < 1\n", *engineW)
		os.Exit(2)
	}

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	spec := exp.DefaultSpec()
	if *quick {
		spec = exp.QuickSpec()
	}
	spec.Seed = *seed
	spec.Workers = *workers
	spec.EngineWorkers = *engineW

	var todo []exp.Experiment
	switch {
	case *all:
		todo = exp.All()
	case *id != "":
		e, ok := exp.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *id)
			os.Exit(2)
		}
		todo = []exp.Experiment{e}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, e := range todo {
		start := time.Now()
		out, err := e.Run(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := exp.WriteText(os.Stdout, out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *plotIt && len(out.Series) > 0 {
			if err := drawChart(out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *outDir != "" {
			if err := writeFiles(*outDir, out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

func writeFiles(dir string, out exp.Output) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	txt, err := os.Create(filepath.Join(dir, out.ID+".txt"))
	if err != nil {
		return err
	}
	defer txt.Close()
	if err := exp.WriteText(txt, out); err != nil {
		return err
	}
	if len(out.Series) == 0 {
		return nil
	}
	csvf, err := os.Create(filepath.Join(dir, out.ID+".csv"))
	if err != nil {
		return err
	}
	defer csvf.Close()
	return exp.WriteCSV(csvf, out)
}

// drawChart renders an experiment's series as one ASCII chart.
func drawChart(out exp.Output) error {
	series := make([]plot.Series, 0, len(out.Series))
	for _, s := range out.Series {
		ps := plot.Series{Label: s.Label}
		for _, p := range s.Points {
			ps.X = append(ps.X, p.X)
			ps.Y = append(ps.Y, p.Y)
		}
		series = append(series, ps)
	}
	return plot.Render(os.Stdout, series, plot.Options{
		Title:  out.ID + ": " + out.Title,
		XLabel: out.XLabel,
		YLabel: out.YLabel,
		Width:  72,
		Height: 22,
	})
}
