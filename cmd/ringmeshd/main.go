// Command ringmeshd serves simulations over HTTP/JSON: clients POST
// run and sweep jobs against any registered network model, poll (or
// SSE-watch) job documents, and identical jobs are answered from a
// content-addressed result cache — sound because simulations are
// deterministic (see DESIGN.md §7).
//
//	ringmeshd -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/runs -d '{"config":{"network":"mesh","nodes":64,"line_bytes":32,"buffer_flits":4,"workload":{"r":1,"c":0.04,"t":4,"read_prob":0.7},"seed":42}}'
//	curl -s localhost:8080/v1/jobs/j000001
//
// Endpoints: POST /v1/runs, POST /v1/sweeps, POST /v1/batch,
// GET /v1/jobs/{id} (?watch=1 for SSE), GET /healthz (liveness),
// GET /readyz (readiness with per-class queue depths), GET /metrics.
//
// Admission control: every submission carries a priority class
// (interactive, batch, background; default interactive, /v1/batch
// defaults to batch) drained by a weighted scheduler so interactive
// runs preempt bulk work, and an optional end-to-end deadline
// (X-Ringmeshd-Deadline header or deadline_ms field) that flows from
// the queue through the engine to coordinator dispatches. Under
// saturation the lowest class is shed first, with Retry-After and a
// structured {"error","class","retry_after_ms"} body.
//
// Multi-fidelity serving: submissions may carry a fidelity field —
// "simulate" (default), "analytic" (inline closed-form estimate,
// labeled with its recorded error bound, never queued), or "auto"
// (cache hit if available, else an analytic answer plus a background
// "upgrade to exact" job whose ID rides in the response). Estimates
// and exact results live under distinct cache keys; under admission
// pressure, background runs that named no tier degrade to
// analytic-with-upgrade instead of 503. ringmeshd_fidelity_* counters
// and per-fidelity latency histograms appear on /metrics.
//
// Durability: -cache-dir adds a disk tier under the in-memory result
// cache (checksummed files, atomic renames), so results survive
// restarts — even kill -9 — and N replicas can share one mounted
// directory. -journal-dir additionally journals every job state
// transition to an fsync'd write-ahead log, so accepted-but-unfinished
// jobs survive kill -9 too: on restart the journal replays and
// re-enqueues them under their original IDs and classes.
//
// Coordinator mode: -coordinator -worker-addrs=h1:8080,h2:8080 fans
// jobs out to worker daemons over the same HTTP API instead of
// simulating locally, with bounded retries, hedged dispatches for
// slow points, per-worker circuit breakers re-admitted via health
// probes, and degraded sweep responses (completed points plus a
// structured per-point error report) when replicas die mid-sweep.
//
// SIGINT/SIGTERM drain gracefully: new submissions get 503 while
// queued and in-flight jobs finish (bounded by -drain-timeout), then
// the listener closes. Exit codes: 0 clean shutdown, 1 runtime
// failure, 2 configuration error.
//
// Observability: every job's lifecycle spans are served at
// GET /v1/jobs/{id}/trace as Chrome trace-event JSON, queue-wait and
// run-duration histograms appear on /metrics, structured logs with
// job IDs go to stderr (-log-level to tune), and -pprof mounts the Go
// profiling endpoints under /debug/pprof.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ringmesh/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "total engine goroutine budget across jobs (0 = GOMAXPROCS)")
		engineW      = flag.Int("engine-workers", 1, "parallel tick workers per job (1 = serial engine; the job pool shrinks to workers/engine-workers)")
		queue        = flag.Int("queue", 64, "pending job bound across all classes; at the bound lower classes are shed first")
		classDepth   = flag.Int("class-depth", 0, "per-class pending job bound (0 = only the shared -queue bound applies)")
		journalDir   = flag.String("journal-dir", "", "crash-safe job journal directory; accepted jobs survive kill -9 and replay on restart (empty = off)")
		cacheEntries = flag.Int("cache-entries", 256, "result cache bound (LRU)")
		cacheDir     = flag.String("cache-dir", "", "durable disk cache directory; results survive restarts and may be shared by replicas (empty = memory only)")
		coord        = flag.Bool("coordinator", false, "coordinator mode: fan jobs out to -worker-addrs instead of simulating locally")
		workerAddrs  = flag.String("worker-addrs", "", "comma-separated worker base URLs for -coordinator, e.g. http://h1:8080,http://h2:8080")
		rate         = flag.Float64("rate", 0, "per-client request rate limit in req/s (0 = off)")
		burst        = flag.Int("burst", 0, "per-client burst size (0 = 2x rate)")
		maxBody      = flag.Int64("max-body", 1<<20, "request body bound in bytes")
		jobTimeout   = flag.Duration("job-timeout", 0, "wall-clock bound per job, e.g. 5m (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
		pprofOn      = flag.Bool("pprof", false, "mount Go profiling endpoints under /debug/pprof (exposes stacks and heap contents)")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	)
	flag.Parse()

	if err := validateFlags(*workers, *engineW, *queue, *classDepth, *cacheEntries, *rate, *burst, *maxBody,
		*jobTimeout, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "ringmeshd:", err)
		os.Exit(2)
	}
	addrsList, err := parseWorkerAddrs(*coord, *workerAddrs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringmeshd:", err)
		os.Exit(2)
	}
	level, err := parseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringmeshd:", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	srv, err := serve.New(serve.Options{
		Workers:       *workers,
		EngineWorkers: *engineW,
		QueueDepth:    *queue,
		ClassDepth:    *classDepth,
		JournalDir:    *journalDir,
		CacheEntries:  *cacheEntries,
		CacheDir:      *cacheDir,
		WorkerAddrs:   addrsList,
		Rate:          *rate,
		Burst:         *burst,
		MaxBody:       *maxBody,
		JobTimeout:    *jobTimeout,
		Logger:        logger,
		EnablePprof:   *pprofOn,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringmeshd:", err)
		os.Exit(2)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ringmeshd:", err)
		os.Exit(1)
	}
	logger.Info("listening", "addr", ln.Addr().String(), "pprof", *pprofOn,
		"cache_dir", *cacheDir, "journal_dir", *journalDir,
		"coordinator", *coord, "workers", len(addrsList))

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "ringmeshd:", err)
		os.Exit(1)
	case <-sigCtx.Done():
	}

	// Drain first so job polling stays available while in-flight work
	// finishes; only then close the listener.
	logger.Info("draining", "timeout", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	if err := srv.Drain(dctx); err != nil {
		logger.Warn("drain incomplete", "err", err)
		code = 1
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("shutdown", "err", err)
		code = 1
	}
	logger.Info("stopped")
	os.Exit(code)
}

// parseWorkerAddrs validates the coordinator flag pair and splits the
// worker list, defaulting bare host:port entries to http://.
func parseWorkerAddrs(coordinator bool, addrs string) ([]string, error) {
	if !coordinator && addrs == "" {
		return nil, nil
	}
	if coordinator != (addrs != "") {
		return nil, fmt.Errorf("-coordinator and -worker-addrs must be used together")
	}
	var out []string
	for _, a := range strings.Split(addrs, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		if !strings.HasPrefix(a, "http://") && !strings.HasPrefix(a, "https://") {
			a = "http://" + a
		}
		out = append(out, strings.TrimRight(a, "/"))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-worker-addrs %q names no workers", addrs)
	}
	return out, nil
}

// parseLevel maps the -log-level flag onto slog levels.
func parseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("-log-level %q: want debug, info, warn, or error", s)
	}
}

// validateFlags rejects nonsense values with messages naming the flag.
func validateFlags(workers, engineWorkers, queue, classDepth, cacheEntries int, rate float64, burst int,
	maxBody int64, jobTimeout, drainTimeout time.Duration) error {
	switch {
	case workers < 0:
		return fmt.Errorf("-workers %d < 0", workers)
	case engineWorkers < 1:
		return fmt.Errorf("-engine-workers %d < 1", engineWorkers)
	case queue < 1:
		return fmt.Errorf("-queue %d < 1", queue)
	case classDepth < 0:
		return fmt.Errorf("-class-depth %d < 0", classDepth)
	case cacheEntries < 1:
		return fmt.Errorf("-cache-entries %d < 1", cacheEntries)
	case rate < 0:
		return fmt.Errorf("-rate %g < 0", rate)
	case burst < 0:
		return fmt.Errorf("-burst %d < 0", burst)
	case maxBody < 1:
		return fmt.Errorf("-max-body %d < 1", maxBody)
	case jobTimeout < 0:
		return fmt.Errorf("-job-timeout %s < 0", jobTimeout)
	case drainTimeout < 1*time.Second:
		return fmt.Errorf("-drain-timeout %s < 1s", drainTimeout)
	default:
		return nil
	}
}
