// Command topofind searches for the best hierarchical ring topology
// for a given processor count and cache line size — the procedure
// behind the paper's Table 2 — either analytically (depth + average
// hop distance, instant) or by scoring every admissible hierarchy
// with a simulation run.
//
// Examples:
//
//	topofind -nodes 72 -line 32
//	topofind -nodes 72 -line 32 -simulate
//	topofind -nodes 108 -line 128 -max-branch 3 -simulate
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ringmesh/internal/core"
	"ringmesh/internal/network"
	"ringmesh/internal/topo"
	"ringmesh/internal/workload"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 24, "number of processors")
		line      = flag.Int("line", 32, "cache line size in bytes")
		maxLevels = flag.Int("max-levels", 4, "maximum hierarchy depth")
		maxBranch = flag.Int("max-branch", 3, "maximum internal branching")
		simulate  = flag.Bool("simulate", false, "score candidates by simulation, not analytically")
		seed      = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	cap, ok := network.SingleRingCapacity[*line]
	if !ok {
		fmt.Fprintf(os.Stderr, "topofind: unsupported line size %dB (use 16/32/64/128)\n", *line)
		os.Exit(2)
	}
	specs := topo.EnumerateRingSpecs(*nodes, *maxLevels, *maxBranch, cap)
	if len(specs) == 0 {
		fmt.Fprintf(os.Stderr, "topofind: no admissible hierarchy for %d PMs at %dB lines\n", *nodes, *line)
		os.Exit(1)
	}

	type scored struct {
		spec topo.RingSpec
		hops float64
		lat  float64
		sat  bool
	}
	results := make([]scored, 0, len(specs))
	for _, s := range specs {
		sc := scored{spec: s, hops: s.AverageRingHops()}
		if *simulate {
			sys, err := core.NewSystem(core.SystemConfig{
				Network:  "ring",
				Net:      network.Config{Topology: s.String(), LineBytes: *line},
				Workload: workload.PaperDefaults(),
				Seed:     *seed,
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "topofind:", err)
				os.Exit(1)
			}
			res, err := sys.Run(core.DefaultRunConfig())
			if err != nil {
				fmt.Fprintln(os.Stderr, "topofind:", err)
				os.Exit(1)
			}
			sc.lat, sc.sat = res.Latency, res.Saturated
		}
		results = append(results, sc)
	}
	sort.Slice(results, func(i, j int) bool {
		if *simulate {
			return results[i].lat < results[j].lat
		}
		a, b := results[i], results[j]
		if a.spec.NumLevels() != b.spec.NumLevels() {
			return a.spec.NumLevels() < b.spec.NumLevels()
		}
		return a.hops < b.hops
	})

	fmt.Printf("candidate hierarchies for %d processors, %dB cache lines "+
		"(leaf <= %d, branch <= %d):\n\n", *nodes, *line, cap, *maxBranch)
	fmt.Printf("   %-12s %-7s %-10s", "topology", "levels", "avg hops")
	if *simulate {
		fmt.Printf(" %-12s", "latency")
	}
	fmt.Println()
	for i, r := range results {
		marker := "  "
		if i == 0 {
			marker = "* "
		}
		fmt.Printf(" %s %-12s %-7d %-10.2f", marker, r.spec, r.spec.NumLevels(), r.hops)
		if *simulate {
			note := ""
			if r.sat {
				note = " (saturated)"
			}
			fmt.Printf(" %-8.1f%s", r.lat, note)
		}
		fmt.Println()
	}
	if want, ok := paperEntry(*nodes, *line); ok {
		fmt.Printf("\npaper Table 2 entry: %s\n", want)
	}
}

// paperEntry returns the published Table 2 topology when the paper
// lists this (nodes, line) combination.
func paperEntry(nodes, line int) (string, bool) {
	table := map[[2]int]string{
		{4, 16}: "4", {6, 16}: "6", {8, 16}: "8", {12, 16}: "12",
		{18, 16}: "2:9", {24, 16}: "2:12", {36, 16}: "3:12",
		{54, 16}: "2:3:9", {72, 16}: "2:3:12", {108, 16}: "3:3:12",
		{4, 32}: "4", {6, 32}: "6", {8, 32}: "8", {12, 32}: "2:6",
		{18, 32}: "3:6", {24, 32}: "3:8", {36, 32}: "2:3:6",
		{54, 32}: "3:3:6", {72, 32}: "3:3:8", {108, 32}: "2:3:3:6",
		{4, 64}: "4", {6, 64}: "6", {8, 64}: "2:4", {12, 64}: "2:6",
		{18, 64}: "3:6", {24, 64}: "2:2:6", {36, 64}: "2:3:6",
		{54, 64}: "3:3:6", {72, 64}: "2:2:3:6", {108, 64}: "2:3:3:6",
		{4, 128}: "4", {6, 128}: "2:3", {8, 128}: "2:4", {12, 128}: "3:4",
		{18, 128}: "3:2:3", {24, 128}: "2:3:4", {36, 128}: "3:3:4",
		{54, 128}: "3:3:2:3", {72, 128}: "2:3:3:4", {108, 128}: "3:3:3:4",
	}
	s, ok := table[[2]int{nodes, line}]
	return s, ok
}
