// Command topofind searches for the best hierarchical ring topology
// for a given processor count and cache line size — the procedure
// behind the paper's Table 2 — at three fidelities:
//
//	(default)   analytic: score every admissible hierarchy with the
//	            closed-form estimator, instantly
//	-simulate   exact: simulate every admissible hierarchy, fanned out
//	            over -workers parallel workers
//	-pareto     multi-fidelity: triage every hierarchy analytically,
//	            then simulate only the latency/cost Pareto frontier
//	            (cost = inter-ring interfaces, the paper's hardware
//	            currency)
//
// Simulation progress checkpoints to -state after every completed
// run; -resume picks a search back up, skipping finished topologies.
//
// Examples:
//
//	topofind -nodes 72 -line 32
//	topofind -nodes 72 -line 32 -simulate -workers 8
//	topofind -nodes 108 -line 128 -pareto -state table2.json
//	topofind -nodes 108 -line 128 -pareto -state table2.json -resume
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"ringmesh"
	"ringmesh/internal/network"
	"ringmesh/internal/pool"
	"ringmesh/internal/topo"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 24, "number of processors")
		line      = flag.Int("line", 32, "cache line size in bytes")
		maxLevels = flag.Int("max-levels", 4, "maximum hierarchy depth")
		maxBranch = flag.Int("max-branch", 3, "maximum internal branching")
		simulate  = flag.Bool("simulate", false, "score every candidate by exact simulation")
		pareto    = flag.Bool("pareto", false, "triage analytically, simulate only the latency/cost frontier")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		workers   = flag.Int("workers", runtime.NumCPU(), "parallel simulation workers")
		statePath = flag.String("state", "", "checkpoint completed simulations to this file")
		resume    = flag.Bool("resume", false, "resume from -state, skipping completed topologies")
	)
	flag.Parse()
	if *simulate && *pareto {
		fail(2, fmt.Errorf("-simulate and -pareto are different search modes; pick one"))
	}
	if *resume && *statePath == "" {
		fail(2, fmt.Errorf("-resume needs -state"))
	}

	ringCap, ok := network.SingleRingCapacity[*line]
	if !ok {
		fail(2, fmt.Errorf("unsupported line size %dB (use 16/32/64/128)", *line))
	}
	specs := topo.EnumerateRingSpecs(*nodes, *maxLevels, *maxBranch, ringCap)
	if len(specs) == 0 {
		fail(1, fmt.Errorf("no admissible hierarchy for %d PMs at %dB lines", *nodes, *line))
	}

	// Analytic triage is cheap enough to run unconditionally: every
	// mode prints the estimate column, and the pareto mode prunes on
	// it.
	cands := make([]candidate, len(specs))
	for i, s := range specs {
		cands[i] = candidate{Spec: s, Hops: s.AverageRingHops(), IRIs: iriCount(s)}
		acfg := candidateConfig(s, *line, *seed)
		acfg.Fidelity = "analytic"
		res, err := ringmesh.Estimate(acfg, ringmesh.DefaultRunOptions())
		if err != nil {
			fail(1, fmt.Errorf("analytic %s: %w", s, err))
		}
		cands[i].Analytic = res.LatencyCycles
	}

	search := search{
		header: stateHeader{Nodes: *nodes, Line: *line, Seed: *seed,
			MaxLevels: *maxLevels, MaxBranch: *maxBranch},
		statePath: *statePath,
		done:      map[string]simScore{},
	}
	if *resume {
		done, err := loadState(*statePath, search.header)
		if err != nil {
			fail(1, fmt.Errorf("-resume: %w", err))
		}
		search.done = done
	}

	var frontier int
	switch {
	case *pareto:
		frontier = markFrontier(cands)
		var sim []int
		for i := range cands {
			if cands[i].Frontier {
				sim = append(sim, i)
			}
		}
		if err := search.simulate(cands, sim, *line, *seed, *workers); err != nil {
			fail(1, err)
		}
	case *simulate:
		all := make([]int, len(cands))
		for i := range all {
			all[i] = i
		}
		if err := search.simulate(cands, all, *line, *seed, *workers); err != nil {
			fail(1, err)
		}
	}

	sortCandidates(cands)
	printTable(cands, *nodes, *line, ringCap, *maxBranch, *pareto, frontier)
	if want, ok := paperEntry(*nodes, *line); ok {
		fmt.Printf("\npaper Table 2 entry: %s\n", want)
	}
}

// candidate is one admissible hierarchy and everything the search
// learns about it, across fidelities.
type candidate struct {
	Spec     topo.RingSpec
	Hops     float64
	IRIs     int // inter-ring interfaces: the hardware cost axis
	Analytic float64
	Frontier bool
	Sim      *simScore
}

// simScore is one exact simulation's verdict, also the unit persisted
// in the checkpoint file.
type simScore struct {
	Latency   float64 `json:"latency"`
	Saturated bool    `json:"saturated"`
}

func candidateConfig(s topo.RingSpec, line int, seed uint64) ringmesh.Config {
	return ringmesh.Config{
		Network:   "ring",
		Topology:  s.String(),
		LineBytes: line,
		Workload:  ringmesh.PaperWorkload(),
		Seed:      seed,
	}
}

// iriCount is the number of inter-ring interfaces a hierarchy needs:
// one per non-global ring (each lower-level ring couples to its
// parent through one IRI). A flat ring costs zero; cost grows with
// both depth and branching, making it the natural second axis against
// latency.
func iriCount(s topo.RingSpec) int {
	total, rings := 0, 1
	for i := 0; i < len(s.Levels)-1; i++ {
		rings *= s.Levels[i]
		total += rings
	}
	return total
}

// markFrontier flags the candidates on the Pareto frontier of
// (analytic latency, IRI count) — both minimized — and returns how
// many. A candidate is dominated when another is no worse on both
// axes and strictly better on one; only the frontier is worth exact
// simulation time.
func markFrontier(cands []candidate) int {
	n := 0
	for i := range cands {
		dominated := false
		for j := range cands {
			if i == j {
				continue
			}
			betterEq := cands[j].Analytic <= cands[i].Analytic && cands[j].IRIs <= cands[i].IRIs
			strictly := cands[j].Analytic < cands[i].Analytic || cands[j].IRIs < cands[i].IRIs
			if betterEq && strictly {
				dominated = true
				break
			}
		}
		if !dominated {
			cands[i].Frontier = true
			n++
		}
	}
	return n
}

// stateHeader identifies which search a checkpoint belongs to; every
// field must match on resume, or the cached latencies would describe
// a different experiment.
type stateHeader struct {
	Nodes     int    `json:"nodes"`
	Line      int    `json:"line"`
	Seed      uint64 `json:"seed"`
	MaxLevels int    `json:"max_levels"`
	MaxBranch int    `json:"max_branch"`
}

// stateFile is the on-disk checkpoint: the search identity plus every
// completed simulation, keyed by topology notation.
type stateFile struct {
	stateHeader
	Simulated map[string]simScore `json:"simulated"`
}

// loadState reads a checkpoint and verifies it belongs to this
// search.
func loadState(path string, want stateHeader) (map[string]simScore, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st stateFile
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if st.stateHeader != want {
		return nil, fmt.Errorf("%s holds a different search (%+v); want %+v", path, st.stateHeader, want)
	}
	if st.Simulated == nil {
		st.Simulated = map[string]simScore{}
	}
	return st.Simulated, nil
}

// saveState writes the checkpoint atomically (temp file + rename), so
// a crash mid-write can never leave a torn file for -resume to choke
// on.
func saveState(path string, st stateFile) error {
	raw, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".topofind-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(raw, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// search runs the exact-simulation stage: a worker pool over the
// selected candidate indices, checkpointing after every completed
// run. Results land in indexed slots, so the output order never
// depends on worker scheduling.
type search struct {
	mu        sync.Mutex
	header    stateHeader
	statePath string
	done      map[string]simScore
}

func (se *search) simulate(cands []candidate, indices []int, line int, seed uint64, workers int) error {
	errs := pool.ForEach(context.Background(), workers, len(indices), nil, func(k int) error {
		c := &cands[indices[k]]
		name := c.Spec.String()
		se.mu.Lock()
		sc, ok := se.done[name]
		se.mu.Unlock()
		if ok {
			c.Sim = &sc
			return nil
		}
		res, err := ringmesh.Run(candidateConfig(c.Spec, line, seed), ringmesh.DefaultRunOptions())
		if err != nil {
			return fmt.Errorf("simulate %s: %w", name, err)
		}
		sc = simScore{Latency: res.LatencyCycles, Saturated: res.Saturated}
		c.Sim = &sc
		se.mu.Lock()
		defer se.mu.Unlock()
		se.done[name] = sc
		if se.statePath == "" {
			return nil
		}
		return saveState(se.statePath, stateFile{stateHeader: se.header, Simulated: cloneScores(se.done)})
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func cloneScores(m map[string]simScore) map[string]simScore {
	cp := make(map[string]simScore, len(m))
	for k, v := range m {
		cp[k] = v
	}
	return cp
}

// sortCandidates orders the report: simulated candidates first by
// exact latency, then unsimulated by analytic latency, ties broken by
// IRI cost and notation so the listing is deterministic at any worker
// count.
func sortCandidates(cands []candidate) {
	sort.Slice(cands, func(i, j int) bool {
		a, b := cands[i], cands[j]
		if (a.Sim != nil) != (b.Sim != nil) {
			return a.Sim != nil
		}
		if a.Sim != nil && a.Sim.Latency != b.Sim.Latency {
			return a.Sim.Latency < b.Sim.Latency
		}
		if a.Analytic != b.Analytic {
			return a.Analytic < b.Analytic
		}
		if a.IRIs != b.IRIs {
			return a.IRIs < b.IRIs
		}
		return a.Spec.String() < b.Spec.String()
	})
}

func printTable(cands []candidate, nodes, line, ringCap, maxBranch int, pareto bool, frontier int) {
	fmt.Printf("candidate hierarchies for %d processors, %dB cache lines "+
		"(leaf <= %d, branch <= %d):\n", nodes, line, ringCap, maxBranch)
	if pareto {
		fmt.Printf("analytic triage kept %d of %d on the latency/cost frontier\n", frontier, len(cands))
	}
	fmt.Println()
	fmt.Printf("   %-12s %-7s %-6s %-10s %-10s %-10s\n",
		"topology", "levels", "iris", "avg hops", "analytic", "simulated")
	for i, c := range cands {
		marker := "  "
		if i == 0 {
			marker = "* "
		}
		simCol := "-"
		if c.Sim != nil {
			simCol = fmt.Sprintf("%.1f", c.Sim.Latency)
			if c.Sim.Saturated {
				simCol += " (sat)"
			}
		} else if pareto {
			simCol = "- (dominated)"
		}
		fmt.Printf(" %s %-12s %-7d %-6d %-10.2f %-10.1f %s\n",
			marker, c.Spec, c.Spec.NumLevels(), c.IRIs, c.Hops, c.Analytic, simCol)
	}
}

// paperEntry returns the published Table 2 topology when the paper
// lists this (nodes, line) combination.
func paperEntry(nodes, line int) (string, bool) {
	table := map[[2]int]string{
		{4, 16}: "4", {6, 16}: "6", {8, 16}: "8", {12, 16}: "12",
		{18, 16}: "2:9", {24, 16}: "2:12", {36, 16}: "3:12",
		{54, 16}: "2:3:9", {72, 16}: "2:3:12", {108, 16}: "3:3:12",
		{4, 32}: "4", {6, 32}: "6", {8, 32}: "8", {12, 32}: "2:6",
		{18, 32}: "3:6", {24, 32}: "3:8", {36, 32}: "2:3:6",
		{54, 32}: "3:3:6", {72, 32}: "3:3:8", {108, 32}: "2:3:3:6",
		{4, 64}: "4", {6, 64}: "6", {8, 64}: "2:4", {12, 64}: "2:6",
		{18, 64}: "3:6", {24, 64}: "2:2:6", {36, 64}: "2:3:6",
		{54, 64}: "3:3:6", {72, 64}: "2:2:3:6", {108, 64}: "2:3:3:6",
		{4, 128}: "4", {6, 128}: "2:3", {8, 128}: "2:4", {12, 128}: "3:4",
		{18, 128}: "3:2:3", {24, 128}: "2:3:4", {36, 128}: "3:3:4",
		{54, 128}: "3:3:2:3", {72, 128}: "2:3:3:4", {108, 128}: "3:3:3:4",
	}
	s, ok := table[[2]int{nodes, line}]
	return s, ok
}

func fail(code int, err error) {
	fmt.Fprintln(os.Stderr, "topofind:", err)
	os.Exit(code)
}
