package main

import (
	"os"
	"path/filepath"
	"testing"

	"ringmesh/internal/topo"
)

func spec(t *testing.T, s string) topo.RingSpec {
	t.Helper()
	r, err := topo.ParseRingSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIRICount(t *testing.T) {
	cases := []struct {
		spec string
		want int
	}{
		{"8", 0},        // flat ring: no interfaces
		{"2:4", 2},      // two local rings under the global
		{"2:3:12", 8},   // 2 level-1 rings + 6 local rings
		{"3:3:8", 12},   // 3 + 9
		{"2:2:2:3", 14}, // 2 + 4 + 8
		{"3:3:3:4", 39}, // 3 + 9 + 27
	}
	for _, c := range cases {
		if got := iriCount(spec(t, c.spec)); got != c.want {
			t.Errorf("iriCount(%s) = %d; want %d", c.spec, got, c.want)
		}
	}
}

func TestMarkFrontier(t *testing.T) {
	cands := []candidate{
		{Spec: spec(t, "3:8"), Analytic: 30, IRIs: 3},      // cheapest: on frontier
		{Spec: spec(t, "2:3:4"), Analytic: 28, IRIs: 8},    // fastest: on frontier
		{Spec: spec(t, "3:2:4"), Analytic: 29, IRIs: 9},    // dominated by 2:3:4
		{Spec: spec(t, "2:2:6"), Analytic: 29.5, IRIs: 6},  // mid tradeoff, on frontier
		{Spec: spec(t, "2:2:2:3"), Analytic: 31, IRIs: 14}, // dominated by everything
	}
	if n := markFrontier(cands); n != 3 {
		t.Fatalf("frontier size = %d; want 3", n)
	}
	want := map[string]bool{"3:8": true, "2:3:4": true, "2:2:6": true}
	for _, c := range cands {
		if c.Frontier != want[c.Spec.String()] {
			t.Errorf("%s frontier = %v; want %v", c.Spec, c.Frontier, want[c.Spec.String()])
		}
	}
}

// TestMarkFrontierTies: identical points must not dominate each other
// out of existence.
func TestMarkFrontierTies(t *testing.T) {
	cands := []candidate{
		{Spec: spec(t, "2:4"), Analytic: 20, IRIs: 2},
		{Spec: spec(t, "8"), Analytic: 20, IRIs: 2},
	}
	if n := markFrontier(cands); n != 2 {
		t.Fatalf("tied frontier size = %d; want both kept", n)
	}
}

func TestStateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	hdr := stateHeader{Nodes: 24, Line: 32, Seed: 1, MaxLevels: 4, MaxBranch: 3}
	st := stateFile{stateHeader: hdr, Simulated: map[string]simScore{
		"3:8":   {Latency: 119.2, Saturated: false},
		"2:3:4": {Latency: 124.2, Saturated: true},
	}}
	if err := saveState(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := loadState(path, hdr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["3:8"].Latency != 119.2 || !got["2:3:4"].Saturated {
		t.Fatalf("loadState = %+v; want the saved scores back", got)
	}

	// A checkpoint from a different search must be refused, field by
	// field.
	for _, other := range []stateHeader{
		{Nodes: 72, Line: 32, Seed: 1, MaxLevels: 4, MaxBranch: 3},
		{Nodes: 24, Line: 64, Seed: 1, MaxLevels: 4, MaxBranch: 3},
		{Nodes: 24, Line: 32, Seed: 2, MaxLevels: 4, MaxBranch: 3},
		{Nodes: 24, Line: 32, Seed: 1, MaxLevels: 3, MaxBranch: 3},
		{Nodes: 24, Line: 32, Seed: 1, MaxLevels: 4, MaxBranch: 2},
	} {
		if _, err := loadState(path, other); err == nil {
			t.Errorf("loadState accepted mismatched header %+v", other)
		}
	}
}

func TestLoadStateTornFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	if err := os.WriteFile(path, []byte(`{"nodes": 24, "sim`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadState(path, stateHeader{Nodes: 24}); err == nil {
		t.Fatal("loadState accepted a torn checkpoint")
	}
}

func TestSortCandidatesDeterministic(t *testing.T) {
	sim := func(l float64) *simScore { return &simScore{Latency: l} }
	cands := []candidate{
		{Spec: spec(t, "2:2:6"), Analytic: 31, IRIs: 6},
		{Spec: spec(t, "2:3:4"), Analytic: 28, IRIs: 8, Sim: sim(124.2)},
		{Spec: spec(t, "3:2:4"), Analytic: 29, IRIs: 9},
		{Spec: spec(t, "3:8"), Analytic: 30, IRIs: 3, Sim: sim(119.2)},
	}
	sortCandidates(cands)
	// Simulated candidates first by exact latency, then the rest by
	// analytic latency.
	want := []string{"3:8", "2:3:4", "3:2:4", "2:2:6"}
	for i, w := range want {
		if got := cands[i].Spec.String(); got != w {
			t.Fatalf("order[%d] = %s; want %s (full order %v)", i, got, w, cands)
		}
	}
}
