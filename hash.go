package ringmesh

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"ringmesh/internal/fault"
	"ringmesh/internal/fidelity"
	"ringmesh/internal/network"
	"ringmesh/internal/node"
)

// cacheKeyVersion tags the canonical form; bump it whenever the
// simulation semantics change in a way that alters results for an
// unchanged (Config, RunOptions) pair, so stale cached results can
// never be served as current ones.
const cacheKeyVersion = "ringmesh-v1"

// canonicalRun is the canonical form CacheKey hashes: every field
// that can change a Result, normalized so equivalent spellings of one
// logical configuration collapse onto one key. Field order is fixed
// by the struct definition (encoding/json emits in declaration
// order), making the rendered bytes deterministic.
type canonicalRun struct {
	Version  string `json:"v"`
	Network  string `json:"network"`
	Topology string `json:"topology"` // resolved canonical notation
	PMs      int    `json:"pms"`

	LineBytes int `json:"line_bytes"`
	// Family-specific geometry. Fields a family is known to ignore are
	// zeroed by CacheKey so they cannot split equivalent configs.
	BufferFlits       int  `json:"buffer_flits"`
	DoubleSpeedGlobal bool `json:"double_speed_global"`
	SlottedSwitching  bool `json:"slotted_switching"`
	IRIQueueFlits     int  `json:"iri_queue_flits"`
	UnsafeNoVC        bool `json:"unsafe_no_vc"`

	Workload   Workload `json:"workload"`
	MemLatency int      `json:"mem_latency"` // resolved default
	Seed       uint64   `json:"seed"`
	Histogram  bool     `json:"histogram"`
	FaultPlan  string   `json:"fault_plan"` // canonical rendering, "" when empty

	WarmupCycles   int64 `json:"warmup_cycles"`
	BatchCycles    int64 `json:"batch_cycles"`
	Batches        int   `json:"batches"`
	WatchdogCycles int64 `json:"watchdog_cycles"` // resolved default

	// Fidelity separates analytic estimates from exact results in the
	// cache: "" (omitted, so simulate keys are byte-identical to
	// pre-fidelity versions) for the exact engine, "analytic" for the
	// closed-form backend. The two tiers produce different numbers for
	// one configuration, so they must never share a key.
	Fidelity string `json:"fidelity,omitempty"`
}

// CacheKey returns the canonical content hash of a simulation's
// semantic inputs — the fields of (cfg, opt) that can influence its
// Result. Because runs are fully deterministic (the golden tests
// prove bit-identical results for identical inputs), two calls with
// equal keys are guaranteed to produce byte-identical results: the
// key is a sound content address for a result cache, and ringmeshd
// uses it as exactly that.
//
// Canonicalization makes equivalent spellings of one configuration
// collapse onto one key:
//
//   - the geometry is resolved through the topology registry, so
//     Nodes: 64 and Topology: "8x8" hash equal (and invalid configs
//     fail here, with the model's own validation message);
//   - defaulted fields are resolved (MemLatencyCycles 0 = 10,
//     WatchdogCycles 0 = 20000);
//   - the fault plan is parsed and re-rendered canonically, so "" and
//     "none" (both observationally free) hash equal;
//   - fields a network family is known to ignore are zeroed (a mesh
//     hashes the same with or without DoubleSpeedGlobal);
//   - observation-only fields never enter the hash: Metrics, Trace,
//     PhaseStats and their companions cannot change a Result
//     (golden-tested), and RunOptions.Timeout and FailOnStall only
//     decide whether a result is returned, never its value;
//   - execution-only fields never enter the hash either: Workers
//     selects the parallel engine, whose results are golden-tested
//     bit-identical to serial at every worker count, so a cached
//     serial result answers a parallel request and vice versa.
//
// The normalization is deliberately conservative: it only equates
// spellings proven equivalent, so distinct keys for identical results
// are possible (a harmless cache miss) but one key for differing
// results is not.
func CacheKey(cfg Config, opt RunOptions) (string, error) {
	fid, err := fidelity.Normalize(cfg.Fidelity)
	if err != nil {
		// "auto" lands here too: it is an admission policy, and keying
		// it would let one key alias two different answers.
		return "", err
	}
	plan, err := network.New(cfg.Network, network.Config{
		Topology:          cfg.Topology,
		Nodes:             cfg.Nodes,
		LineBytes:         cfg.LineBytes,
		BufferFlits:       cfg.BufferFlits,
		DoubleSpeedGlobal: cfg.DoubleSpeedGlobal,
		SlottedSwitching:  cfg.SlottedSwitching,
		UnsafeNoVC:        cfg.UnsafeNoVC,
	})
	if err != nil {
		return "", err
	}
	if err := cfg.Workload.internal().Validate(); err != nil {
		return "", err
	}
	faultKey, err := canonicalFaultPlan(cfg.FaultPlan)
	if err != nil {
		return "", err
	}

	c := canonicalRun{
		Version:  cacheKeyVersion,
		Network:  cfg.Network,
		Topology: plan.Topology,
		PMs:      plan.PMs,

		LineBytes:         cfg.LineBytes,
		BufferFlits:       cfg.BufferFlits,
		DoubleSpeedGlobal: cfg.DoubleSpeedGlobal,
		SlottedSwitching:  cfg.SlottedSwitching,
		IRIQueueFlits:     0, // not reachable through the facade Config
		UnsafeNoVC:        cfg.UnsafeNoVC,

		Workload:   cfg.Workload,
		MemLatency: cfg.MemLatencyCycles,
		Seed:       cfg.Seed,
		Histogram:  cfg.Histogram,
		FaultPlan:  faultKey,

		WarmupCycles:   opt.WarmupCycles,
		BatchCycles:    opt.BatchCycles,
		Batches:        opt.Batches,
		WatchdogCycles: opt.WatchdogCycles,
	}
	if c.MemLatency == 0 {
		c.MemLatency = node.DefaultMemLatency
	}
	if c.WatchdogCycles == 0 {
		c.WatchdogCycles = 20000 // core.RunCtx's default horizon
	}
	// Zero the fields the built-in families ignore. Unknown (third
	// party) families keep every field raw: conservative, never wrong.
	switch cfg.Network {
	case "ring":
		c.BufferFlits = 0
	case "mesh":
		c.DoubleSpeedGlobal = false
		c.SlottedSwitching = false
		c.IRIQueueFlits = 0
		c.UnsafeNoVC = false
	}
	// Fidelity joins the key so an analytic estimate can never answer a
	// request for an exact result (or vice versa). Simulate stays "" —
	// omitted from the JSON — keeping every pre-fidelity simulate key
	// byte-identical (pinned by TestCacheKeyStable). The closed-form
	// backend reads no RNG and runs no schedule, so seed, histogram and
	// the warmup/batch/watchdog schedule are zeroed for analytic keys:
	// equivalent analytic requests collapse onto one cache entry.
	if fid != fidelity.Simulate {
		c.Fidelity = fid
		c.Seed = 0
		c.Histogram = false
		c.WarmupCycles = 0
		c.BatchCycles = 0
		c.Batches = 0
		c.WatchdogCycles = 0
	}

	raw, err := json.Marshal(c)
	if err != nil {
		return "", fmt.Errorf("ringmesh: canonicalize: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// canonicalFaultPlan parses the fault DSL and re-renders it in a
// canonical spelling: "" for every observationally-free plan (empty
// string, "none", a generator asked for zero events — the golden
// tests prove these bit-identical to no plan at all), the
// round-trippable event DSL otherwise. Event order is preserved, not
// sorted: Plan.Materialize breaks start-cycle ties by plan order, so
// reordered events are not provably equivalent.
func canonicalFaultPlan(spec string) (string, error) {
	if spec == "" {
		return "", nil
	}
	plan, err := fault.Parse(spec)
	if err != nil {
		return "", err
	}
	if plan.Empty() {
		return "", nil
	}
	parts := make([]string, 0, len(plan.Events)+1)
	for _, e := range plan.Events {
		parts = append(parts, e.String())
	}
	if g := plan.Gen; g != nil && g.Events > 0 {
		mean, factor := g.MeanDuration, g.MaxFactor
		if mean == 0 {
			mean = 64 // GenSpec's documented defaults, resolved so
		}
		if factor == 0 {
			factor = 4 // explicit and elided spellings hash equal
		}
		parts = append(parts, fmt.Sprintf("rand:events=%d,seed=%d,horizon=%d,mean-dur=%d,max-factor=%d",
			g.Events, g.Seed, g.Horizon, mean, factor))
	}
	return strings.Join(parts, ";"), nil
}
