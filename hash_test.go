package ringmesh

import (
	"strings"
	"testing"
)

// baseMesh returns a valid mesh configuration the hash tests mutate.
func baseMesh() (Config, RunOptions) {
	return Config{
		Network:     "mesh",
		Nodes:       64,
		LineBytes:   32,
		BufferFlits: 4,
		Workload:    PaperWorkload(),
		Seed:        42,
	}, DefaultRunOptions()
}

// baseRing returns a valid ring configuration the hash tests mutate.
func baseRing() (Config, RunOptions) {
	return Config{
		Network:   "ring",
		Nodes:     72,
		LineBytes: 32,
		Workload:  PaperWorkload(),
		Seed:      42,
	}, DefaultRunOptions()
}

func mustKey(t *testing.T, cfg Config, opt RunOptions) string {
	t.Helper()
	key, err := CacheKey(cfg, opt)
	if err != nil {
		t.Fatalf("CacheKey(%+v): %v", cfg, err)
	}
	if len(key) != 64 { // hex sha256
		t.Fatalf("CacheKey returned %q; want 64 hex chars", key)
	}
	return key
}

// TestCacheKeyEquivalentSpellings pins the collapse half of the
// cache-correctness contract: every spelling of one logical
// configuration must hash to one key, or the cache loses hits it is
// entitled to.
func TestCacheKeyEquivalentSpellings(t *testing.T) {
	cfg, opt := baseMesh()
	base := mustKey(t, cfg, opt)

	cases := []struct {
		name   string
		mutate func(*Config, *RunOptions)
	}{
		{"nodes vs resolved topology", func(c *Config, _ *RunOptions) {
			c.Nodes = 0
			c.Topology = "8x8"
		}},
		{"mem latency zero vs default", func(c *Config, _ *RunOptions) {
			c.MemLatencyCycles = 10
		}},
		{"watchdog zero vs default", func(_ *Config, o *RunOptions) {
			o.WatchdogCycles = 20000
		}},
		{"metrics are observation-only", func(c *Config, _ *RunOptions) {
			c.Metrics = true
			c.MetricsIntervalCycles = 500
		}},
		{"trace is observation-only", func(c *Config, _ *RunOptions) {
			c.Trace = true
			c.TraceOnlyPacket = 7
		}},
		{"workers are execution-only", func(c *Config, _ *RunOptions) {
			c.Workers = 8
		}},
		{"phase stats are observation-only", func(c *Config, _ *RunOptions) {
			c.Workers = 8
			c.PhaseStats = true
		}},
		{"timeout does not change the result value", func(_ *Config, o *RunOptions) {
			o.Timeout = 1e9
		}},
		{"fail-on-stall does not change the result value", func(_ *Config, o *RunOptions) {
			o.FailOnStall = true
		}},
		{"fault plan none vs empty", func(c *Config, _ *RunOptions) {
			c.FaultPlan = "none"
		}},
		{"fidelity empty vs explicit simulate", func(c *Config, _ *RunOptions) {
			c.Fidelity = "simulate"
		}},
		{"mesh ignores ring-only switches", func(c *Config, _ *RunOptions) {
			c.DoubleSpeedGlobal = true
			c.SlottedSwitching = true
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, opt := baseMesh()
			tc.mutate(&cfg, &opt)
			if got := mustKey(t, cfg, opt); got != base {
				t.Errorf("key changed: %s vs base %s", got, base)
			}
		})
	}

	// Ring side: BufferFlits is mesh-only, so a ring config must hash
	// the same with or without it.
	rcfg, ropt := baseRing()
	rbase := mustKey(t, rcfg, ropt)
	rcfg.BufferFlits = 16
	if got := mustKey(t, rcfg, ropt); got != rbase {
		t.Errorf("ring key moved with mesh-only BufferFlits: %s vs %s", got, rbase)
	}

	// Random fault generators: elided defaults spell out to the same
	// schedule as explicit ones.
	gcfg, gopt := baseMesh()
	gcfg.FaultPlan = "rand:events=3,seed=9,horizon=2000"
	gbase := mustKey(t, gcfg, gopt)
	gcfg.FaultPlan = "rand:events=3,seed=9,horizon=2000,mean-dur=64,max-factor=4"
	if got := mustKey(t, gcfg, gopt); got != gbase {
		t.Errorf("generator key moved with explicit defaults: %s vs %s", got, gbase)
	}
}

// TestCacheKeyDistinguishesSemanticChanges pins the split half of the
// contract: any field that can change a Result must change the key,
// or the cache serves wrong answers.
func TestCacheKeyDistinguishesSemanticChanges(t *testing.T) {
	cfg, opt := baseMesh()
	base := mustKey(t, cfg, opt)

	cases := []struct {
		name   string
		mutate func(*Config, *RunOptions)
	}{
		{"seed", func(c *Config, _ *RunOptions) { c.Seed = 43 }},
		{"line bytes", func(c *Config, _ *RunOptions) { c.LineBytes = 64 }},
		{"buffer flits (mesh)", func(c *Config, _ *RunOptions) { c.BufferFlits = 8 }},
		{"nodes", func(c *Config, _ *RunOptions) { c.Nodes = 256 }},
		{"network family", func(c *Config, _ *RunOptions) {
			c.Network = "ring"
			c.Nodes = 72
			c.BufferFlits = 0
		}},
		{"workload miss rate", func(c *Config, _ *RunOptions) { c.Workload.C = 0.08 }},
		{"workload window", func(c *Config, _ *RunOptions) { c.Workload.T = 1 }},
		{"workload locality", func(c *Config, _ *RunOptions) { c.Workload.R = 0.5 }},
		{"workload read probability", func(c *Config, _ *RunOptions) { c.Workload.ReadProb = 0.5 }},
		{"open-loop generation", func(c *Config, _ *RunOptions) { c.Workload.OpenLoop = true }},
		{"mem latency", func(c *Config, _ *RunOptions) { c.MemLatencyCycles = 30 }},
		{"histogram (changes observation set)", func(c *Config, _ *RunOptions) { c.Histogram = true }},
		{"fault plan", func(c *Config, _ *RunOptions) { c.FaultPlan = "stutter@1000+200:node=3" }},
		{"fault generator seed", func(c *Config, _ *RunOptions) { c.FaultPlan = "rand:events=3,seed=9,horizon=2000" }},
		{"warmup", func(_ *Config, o *RunOptions) { o.WarmupCycles = 8000 }},
		{"batch cycles", func(_ *Config, o *RunOptions) { o.BatchCycles = 2000 }},
		{"batches", func(_ *Config, o *RunOptions) { o.Batches = 16 }},
		{"watchdog horizon (changes stall outcome)", func(_ *Config, o *RunOptions) { o.WatchdogCycles = 100 }},
		{"fidelity analytic", func(c *Config, _ *RunOptions) { c.Fidelity = "analytic" }},
	}
	seen := map[string]string{base: "base"}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg, opt := baseMesh()
			tc.mutate(&cfg, &opt)
			got := mustKey(t, cfg, opt)
			if prev, dup := seen[got]; dup {
				t.Errorf("key collides with %q: %s", prev, got)
			}
			seen[got] = tc.name
		})
	}

	// Ring-only switches must distinguish ring configs.
	rcfg, ropt := baseRing()
	rbase := mustKey(t, rcfg, ropt)
	rcfg.DoubleSpeedGlobal = true
	dsg := mustKey(t, rcfg, ropt)
	if dsg == rbase {
		t.Errorf("ring key ignored DoubleSpeedGlobal")
	}
	rcfg.SlottedSwitching = true
	if got := mustKey(t, rcfg, ropt); got == dsg || got == rbase {
		t.Errorf("ring key ignored SlottedSwitching")
	}
}

// TestCacheKeyInvalidConfig ensures validation errors surface with the
// model's own message instead of minting a key for garbage.
func TestCacheKeyInvalidConfig(t *testing.T) {
	cfg, opt := baseMesh()
	cfg.Nodes = 63 // not a square
	if _, err := CacheKey(cfg, opt); err == nil {
		t.Fatalf("CacheKey accepted a 63-node mesh")
	}

	cfg, opt = baseMesh()
	cfg.Workload.C = 0 // no misses: invalid workload
	if _, err := CacheKey(cfg, opt); err == nil {
		t.Fatalf("CacheKey accepted a zero miss rate")
	}

	cfg, opt = baseMesh()
	cfg.FaultPlan = "frobnicate@10+5:node=0"
	_, err := CacheKey(cfg, opt)
	if err == nil || !strings.Contains(err.Error(), "frobnicate") {
		t.Fatalf("CacheKey fault-plan error = %v; want mention of bad kind", err)
	}
}

// TestCacheKeyStable pins one literal key so accidental changes to the
// canonical form (field renames, normalization tweaks, new fields
// leaking into the hash) fail loudly and force a cacheKeyVersion bump
// decision. If this test fails, either restore the canonical form or
// bump cacheKeyVersion and update the literal — never silently accept
// a drifted key, which would orphan every cached result.
func TestCacheKeyStable(t *testing.T) {
	cfg, opt := baseMesh()
	a := mustKey(t, cfg, opt)
	b := mustKey(t, cfg, opt)
	if a != b {
		t.Fatalf("CacheKey not deterministic: %s vs %s", a, b)
	}
	const pinned = "dc67a09abefee27b3a3a43a308f87b2d581250cee9a14dfc7a284939d35c3c5a"
	if a != pinned {
		t.Fatalf("CacheKey canonical form drifted:\n got %s\nwant %s", a, pinned)
	}

	// Fidelity joined the canonical form as omitempty: explicit
	// "simulate" must still produce the exact pre-fidelity key, so no
	// cached exact result is orphaned by the new field.
	cfg.Fidelity = "simulate"
	if got := mustKey(t, cfg, opt); got != pinned {
		t.Fatalf("explicit simulate fidelity drifted the key:\n got %s\nwant %s", got, pinned)
	}
}

// TestCacheKeyFidelity pins the multi-fidelity contract: the two
// answer tiers never share a key (their numbers differ for one
// configuration), while simulation-only knobs the analytic backend
// provably ignores collapse analytic spellings onto one key.
func TestCacheKeyFidelity(t *testing.T) {
	cfg, opt := baseMesh()
	exact := mustKey(t, cfg, opt)

	cfg.Fidelity = "analytic"
	analytic := mustKey(t, cfg, opt)
	if analytic == exact {
		t.Fatalf("analytic and simulate share a key: %s", analytic)
	}

	// The closed-form backend reads no RNG and runs no schedule, so
	// seed, histogram and the batch schedule must not split analytic
	// keys — equivalent estimates answer from one cache entry.
	for name, mutate := range map[string]func(*Config, *RunOptions){
		"seed":      func(c *Config, _ *RunOptions) { c.Seed = 99 },
		"histogram": func(c *Config, _ *RunOptions) { c.Histogram = true },
		"schedule": func(_ *Config, o *RunOptions) {
			o.WarmupCycles, o.BatchCycles, o.Batches, o.WatchdogCycles = 1, 2, 3, 4
		},
	} {
		mcfg, mopt := baseMesh()
		mcfg.Fidelity = "analytic"
		mutate(&mcfg, &mopt)
		if got := mustKey(t, mcfg, mopt); got != analytic {
			t.Errorf("analytic key moved with %s: %s vs %s", name, got, analytic)
		}
	}

	// Semantic fields still split analytic keys.
	mcfg, mopt := baseMesh()
	mcfg.Fidelity = "analytic"
	mcfg.LineBytes = 64
	if got := mustKey(t, mcfg, mopt); got == analytic {
		t.Error("analytic key ignored LineBytes")
	}

	// "auto" is an admission policy, not an answer tier: it must be
	// resolved before keying, never hashed.
	acfg, aopt := baseMesh()
	acfg.Fidelity = "auto"
	if _, err := CacheKey(acfg, aopt); err == nil {
		t.Fatal("CacheKey minted a key for fidelity \"auto\"")
	}

	acfg.Fidelity = "nonesuch"
	if _, err := CacheKey(acfg, aopt); err == nil {
		t.Fatal("CacheKey minted a key for an unknown fidelity")
	}
}
