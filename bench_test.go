package ringmesh

// The benchmark harness regenerates every table and figure of the
// paper. Each BenchmarkFigNN / BenchmarkTableN runs the corresponding
// experiment sweep end to end (at a reduced but shape-preserving
// schedule so `go test -bench=.` stays tractable) and reports the
// headline numbers via b.Log and custom metrics. For publication-
// length runs use `go run ./cmd/experiments -all`.
//
// Micro-benchmarks at the bottom measure raw simulator throughput
// (simulated cycles per second) for both network models.

import (
	"testing"

	"ringmesh/internal/core"
	"ringmesh/internal/exp"
	"ringmesh/internal/sim"
)

// benchSpec is the reduced schedule used by the figure benchmarks:
// the same sweeps as the paper, shorter batches.
func benchSpec() exp.Spec {
	return exp.Spec{
		Seed:    42,
		Run:     core.RunConfig{WarmupCycles: 400, BatchCycles: 400, Batches: 3},
		Workers: 4,
	}
}

// runExperiment executes one registered experiment b.N times and
// reports the number of simulation points measured per run.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var points int
	for i := 0; i < b.N; i++ {
		out, err := e.Run(benchSpec())
		if err != nil {
			b.Fatal(err)
		}
		points = 0
		for _, s := range out.Series {
			points += len(s.Points)
		}
		if points == 0 && len(out.Tables) == 0 {
			b.Fatalf("%s produced no data", id)
		}
	}
	b.ReportMetric(float64(points), "points/op")
}

func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkFig06(b *testing.B)  { runExperiment(b, "fig6") }
func BenchmarkFig07(b *testing.B)  { runExperiment(b, "fig7") }
func BenchmarkFig08(b *testing.B)  { runExperiment(b, "fig8") }
func BenchmarkFig09(b *testing.B)  { runExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { runExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { runExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { runExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { runExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { runExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { runExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { runExperiment(b, "fig16") }
func BenchmarkFig17(b *testing.B)  { runExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { runExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { runExperiment(b, "fig19") }
func BenchmarkFig20(b *testing.B)  { runExperiment(b, "fig20") }
func BenchmarkFig21(b *testing.B)  { runExperiment(b, "fig21") }

func BenchmarkAblateMemLat(b *testing.B)    { runExperiment(b, "ablate-memlat") }
func BenchmarkAblateDetGap(b *testing.B)    { runExperiment(b, "ablate-detgap") }
func BenchmarkAblateIRIQ(b *testing.B)      { runExperiment(b, "ablate-iriq") }
func BenchmarkAblateSwitching(b *testing.B) { runExperiment(b, "ablate-switching") }

// --- simulator micro-benchmarks ----------------------------------------

// benchCycles measures raw simulated-cycle throughput of a system.
func benchCycles(b *testing.B, build func() (*System, error)) {
	b.Helper()
	sys, err := build()
	if err != nil {
		b.Fatal(err)
	}
	// Warm the system into steady state before timing.
	if err := sys.StepCycles(1000); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := sys.StepCycles(int64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(sys.PMs())*float64(b.N), "PMcycles/op")
}

func BenchmarkSimRing24(b *testing.B) {
	benchCycles(b, func() (*System, error) {
		return NewRingSystem(RingConfig{Topology: "3:8", LineBytes: 32,
			Workload: PaperWorkload(), Seed: 1})
	})
}

func BenchmarkSimRing72(b *testing.B) {
	benchCycles(b, func() (*System, error) {
		return NewRingSystem(RingConfig{Topology: "3:3:8", LineBytes: 32,
			Workload: PaperWorkload(), Seed: 1})
	})
}

// BenchmarkSimRing72Metrics is BenchmarkSimRing72 with the instrument
// registry and sampler attached — the enabled-path overhead of the
// metrics subsystem (compare with BenchmarkSimRing72).
func BenchmarkSimRing72Metrics(b *testing.B) {
	benchCycles(b, func() (*System, error) {
		return NewSystem(Config{Network: "ring", Topology: "3:3:8", LineBytes: 32,
			Workload: PaperWorkload(), Seed: 1,
			Metrics: true, MetricsIntervalCycles: 100})
	})
}

func BenchmarkSimRing72Slotted(b *testing.B) {
	benchCycles(b, func() (*System, error) {
		return NewRingSystem(RingConfig{Topology: "3:3:8", LineBytes: 32,
			SlottedSwitching: true, Workload: PaperWorkload(), Seed: 1})
	})
}

func BenchmarkSimRing72DoubleSpeed(b *testing.B) {
	benchCycles(b, func() (*System, error) {
		return NewRingSystem(RingConfig{Topology: "3:3:8", LineBytes: 32,
			DoubleSpeedGlobal: true, Workload: PaperWorkload(), Seed: 1})
	})
}

func BenchmarkSimMesh16(b *testing.B) {
	benchCycles(b, func() (*System, error) {
		return NewMeshSystem(MeshConfig{Nodes: 16, LineBytes: 32, BufferFlits: 4,
			Workload: PaperWorkload(), Seed: 1})
	})
}

func BenchmarkSimMesh121(b *testing.B) {
	benchCycles(b, func() (*System, error) {
		return NewMeshSystem(MeshConfig{Nodes: 121, LineBytes: 32, BufferFlits: 4,
			Workload: PaperWorkload(), Seed: 1})
	})
}

func BenchmarkSimMesh121OneFlit(b *testing.B) {
	benchCycles(b, func() (*System, error) {
		return NewMeshSystem(MeshConfig{Nodes: 121, LineBytes: 128, BufferFlits: 1,
			Workload: PaperWorkload(), Seed: 1})
	})
}

// --- engine micro-benchmarks -------------------------------------------

// benchComp is a minimal component whose work per phase is a single
// counter bump, so the benchmark isolates the engine's dispatch cost.
type benchComp struct{ n int }

func (c *benchComp) Compute(now int64) { c.n++ }
func (c *benchComp) Commit(now int64)  { c.n++ }

// BenchmarkEngineStepUniform measures the per-tick dispatch cost on
// the uniform fast path (every component at period 1 — the common,
// non-double-speed configuration).
func BenchmarkEngineStepUniform(b *testing.B) {
	var e sim.Engine
	for i := 0; i < 64; i++ {
		e.Register(&benchComp{}, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// benchParallelMesh measures full-system tick throughput of the
// 8x8 golden mesh at a fixed worker count. Workers=1 is the exact
// serial path; the others run the sharded engine (one shard per mesh
// row), so comparing the Parallel1/2/4/8 numbers gives the engine's
// parallel speedup — meaningful only on a machine with that many
// cores; on fewer cores the extra workers just measure barrier
// overhead.
func benchParallelMesh(b *testing.B, workers int) {
	b.Helper()
	cfg := Config{Network: "mesh", Topology: "8x8", LineBytes: 32,
		BufferFlits: 4, Workload: PaperWorkload(), Seed: 1, Workers: workers}
	sys, err := NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	if workers > 1 && !sys.Parallel() {
		b.Fatalf("Workers=%d did not engage the parallel engine", workers)
	}
	if err := sys.StepCycles(1000); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if err := sys.StepCycles(int64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(sys.PMs())*float64(b.N), "PMcycles/op")
}

// Flat names (no sub-benchmarks): benchguard's baseline file and the
// CI bench-smoke regex match whole benchmark names.
func BenchmarkEngineStepParallel1(b *testing.B) { benchParallelMesh(b, 1) }
func BenchmarkEngineStepParallel2(b *testing.B) { benchParallelMesh(b, 2) }
func BenchmarkEngineStepParallel4(b *testing.B) { benchParallelMesh(b, 4) }
func BenchmarkEngineStepParallel8(b *testing.B) { benchParallelMesh(b, 8) }

// BenchmarkEngineStepMixed measures the grouped multi-rate path
// (half the components at period 2, as in a double-speed-global run).
func BenchmarkEngineStepMixed(b *testing.B) {
	var e sim.Engine
	for i := 0; i < 64; i++ {
		period := int64(1)
		if i%2 == 1 {
			period = 2
		}
		e.Register(&benchComp{}, period)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkAnalyticEstimate measures the closed-form fast path behind
// multi-fidelity serving: one full estimate — zero-load latency,
// saturation verdict, error bound — for the paper's 72-PM Table 2
// hierarchy. The analytic tier's whole value is being orders of
// magnitude faster than a simulation, so benchguard holds this to its
// recorded baseline like the engine hot loop.
func BenchmarkAnalyticEstimate(b *testing.B) {
	cfg := Config{
		Network:   "ring",
		Topology:  "3:3:8",
		LineBytes: 32,
		Workload:  PaperWorkload(),
		Seed:      1,
		Fidelity:  "analytic",
	}
	opt := DefaultRunOptions()
	for i := 0; i < b.N; i++ {
		if _, err := Estimate(cfg, opt); err != nil {
			b.Fatal(err)
		}
	}
}
