package exp

import (
	"fmt"

	"ringmesh/internal/core"
	"ringmesh/internal/network"
	"ringmesh/internal/topo"
)

// Ablation experiments: these are not paper artifacts; they check
// that the reproduction's conclusions do not hinge on parameters the
// paper leaves unspecified (see DESIGN.md "Fidelity decisions").
func init() {
	register(Experiment{
		ID:    "ablate-memlat",
		Title: "Sensitivity to the memory service latency",
		Caption: "The paper does not state its memory service time; we default to 10 " +
			"cycles. This sweep shows the ring-vs-mesh gap at 72/64 processors as the " +
			"service time varies — the ordering, not the offsets, is what the " +
			"reproduction's conclusions rest on.",
		Run: runAblateMemLat,
	})
	register(Experiment{
		ID:    "ablate-detgap",
		Title: "Deterministic vs geometric miss inter-arrival gaps",
		Caption: "The paper's generator fires a miss every 25 cycles on average (C=0.04). " +
			"We default to geometric gaps; this compares against exactly-25-cycle gaps.",
		Run: runAblateDetGap,
	})
	register(Experiment{
		ID:    "ablate-iriq",
		Title: "Sensitivity to IRI up/down queue depth",
		Caption: "The paper sizes every IRI buffer at exactly one cache-line packet. " +
			"This sweep deepens the up/down queues to check how much of the hierarchy's " +
			"latency comes from inter-ring backpressure.",
		Run: runAblateIRIQ,
	})
}

func runAblateMemLat(spec Spec) (Output, error) {
	out := Output{ID: "ablate-memlat", XLabel: "memory latency (cycles)", YLabel: "latency (cycles)"}
	ringSpec := topo.MustRingSpec(3, 3, 8)
	var jobs []job
	ri := len(out.Series)
	out.Series = append(out.Series, Series{Label: "ring 3:3:8 32B"})
	mi := len(out.Series)
	out.Series = append(out.Series, Series{Label: "mesh 8x8 32B 4-flit"})
	for _, ml := range []int{1, 5, 10, 20, 40} {
		ml := ml
		jobs = append(jobs,
			job{series: ri, x: float64(ml), build: netBuilder(spec, "ring",
				network.Config{Topology: ringSpec.String(), LineBytes: 32},
				baseWorkload(), ml)},
			job{series: mi, x: float64(ml), build: netBuilder(spec, "mesh",
				network.Config{Nodes: 64, LineBytes: 32, BufferFlits: 4},
				baseWorkload(), ml)},
		)
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	// Summarize: the mesh should stay ahead at this size for every
	// memory latency (ordering robustness).
	t := Table{Title: "mesh/ring latency ratio per memory latency", Header: []string{"mem latency", "ratio"}}
	for i, rp := range out.Series[0].Points {
		if i < len(out.Series[1].Points) && rp.Y > 0 {
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0f", rp.X),
				fmt.Sprintf("%.2f", out.Series[1].Points[i].Y/rp.Y),
			})
		}
	}
	out.Tables = append(out.Tables, t)
	return out, nil
}

func runAblateDetGap(spec Spec) (Output, error) {
	out := Output{ID: "ablate-detgap", XLabel: "nodes", YLabel: "latency (cycles)"}
	var jobs []job
	for _, det := range []bool{false, true} {
		name := "geometric gaps"
		if det {
			name = "deterministic gaps"
		}
		si := len(out.Series)
		out.Series = append(out.Series, Series{Label: name})
		wl := baseWorkload()
		wl.Deterministic = det
		for _, ts := range []topo.RingSpec{
			topo.MustRingSpec(8), topo.MustRingSpec(3, 8), topo.MustRingSpec(3, 3, 8),
		} {
			jobs = append(jobs, job{
				series: si, x: float64(ts.PMs()),
				build: ringBuilder(spec, ts, 32, wl, false),
			})
		}
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	return out, nil
}

func runAblateIRIQ(spec Spec) (Output, error) {
	out := Output{ID: "ablate-iriq", XLabel: "IRI queue depth (flits)", YLabel: "latency (cycles)"}
	ringSpec := topo.MustRingSpec(3, 3, 8)
	si := len(out.Series)
	out.Series = append(out.Series, Series{Label: "ring 3:3:8 32B, R=1.0"})
	sj := len(out.Series)
	out.Series = append(out.Series, Series{Label: "ring 3:3:8 32B, R=0.2"})
	var jobs []job
	for _, q := range []int{3, 6, 12, 24} {
		q := q
		mk := func(r float64) func() (*core.System, error) {
			wl := baseWorkload()
			wl.R = r
			return netBuilder(spec, "ring", network.Config{
				Topology:      ringSpec.String(),
				LineBytes:     32,
				IRIQueueFlits: q,
			}, wl, 0)
		}
		jobs = append(jobs,
			job{series: si, x: float64(q), build: mk(1.0)},
			job{series: sj, x: float64(q), build: mk(0.2)},
		)
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	return out, nil
}

func init() {
	register(Experiment{
		ID:    "ablate-switching",
		Title: "Wormhole vs slotted ring switching",
		Caption: "The paper assumes wormhole rings while Hector/NUMAchine used slotted " +
			"rings (footnote 3); the authors' companion study (IEICE '96) compares the " +
			"techniques. Our packet-sized-slot model pays cl cycles per hop but never " +
			"blocks; wormhole pipelines flits but stalls under contention.",
		Run: runAblateSwitching,
	})
}

func runAblateSwitching(spec Spec) (Output, error) {
	out := Output{ID: "ablate-switching", XLabel: "nodes", YLabel: "latency (cycles)"}
	var jobs []job
	sweeps := []topo.RingSpec{
		topo.MustRingSpec(8), topo.MustRingSpec(2, 8), topo.MustRingSpec(3, 8),
		topo.MustRingSpec(2, 3, 8), topo.MustRingSpec(3, 3, 8),
	}
	for _, slotted := range []bool{false, true} {
		name := "wormhole"
		if slotted {
			name = "slotted"
		}
		for _, line := range []int{16, 128} {
			si := len(out.Series)
			out.Series = append(out.Series, Series{Label: fmt.Sprintf("%s %dB", name, line)})
			for _, ts := range sweeps {
				jobs = append(jobs, job{
					series: si, x: float64(ts.PMs()),
					build: netBuilder(spec, "ring", network.Config{
						Topology:         ts.String(),
						LineBytes:        line,
						SlottedSwitching: slotted,
					}, baseWorkload(), 0),
				})
			}
		}
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	return out, nil
}
