package exp

import (
	"fmt"

	"ringmesh/internal/core"
	"ringmesh/internal/topo"
	"ringmesh/internal/workload"
)

// specsForSizes maps node counts to sweep topologies, dropping sizes
// with no admissible hierarchy.
func specsForSizes(line int, sizes []int) []topo.RingSpec {
	var out []topo.RingSpec
	for _, n := range sizes {
		if s, err := sweepTopologyFor(n, line); err == nil {
			out = append(out, s)
		}
	}
	return out
}

// threeLevelSweep returns the paper's 3-level configurations for a
// line size: j second-level rings (each maxed at 3 local rings of the
// single-ring capacity), j = 2..6, capped at 121 PMs.
func threeLevelSweep(line int) []topo.RingSpec {
	leaf := core.SingleRingCapacity[line]
	out := []topo.RingSpec{topo.MustRingSpec(2, 2, leaf)}
	for j := 2; j <= 10; j++ {
		spec := topo.MustRingSpec(j, 3, leaf)
		if spec.PMs() > 121 {
			break
		}
		out = append(out, spec)
	}
	return out
}

// twoLevelSweep returns k local rings of the line size's single-ring
// capacity, k = 2..6.
func twoLevelSweep(line int) []topo.RingSpec {
	leaf := core.SingleRingCapacity[line]
	var out []topo.RingSpec
	for k := 2; k <= 6; k++ {
		out = append(out, topo.MustRingSpec(k, leaf))
	}
	return out
}

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Latency for single rings with different cache line sizes",
		Caption: "Paper Figure 6: average round-trip latency of 1-level rings, R=1.0 C=0.04, " +
			"T in {1,2,4}, cache lines 16/32/64/128B. The paper concludes single rings " +
			"conservatively sustain 12/8/6/4 nodes respectively.",
		Run: runFig6,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Latency for 2-level ring hierarchies",
		Caption: "Paper Figure 7: 2-level hierarchies with maximally sized local rings, " +
			"R=1.0 C=0.04 T=4. Slope increases when a global ring becomes necessary and " +
			"again past three local rings (bisection bandwidth).",
		Run: runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Local and global ring utilization for 2-level ring hierarchies",
		Caption: "Paper Figure 8: global ring utilization approaches saturation at three " +
			"local rings while local ring utilization falls.",
		Run: runFig8,
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Latency for 3-level ring hierarchies",
		Caption: "Paper Figure 9: 3-level hierarchies, R=1.0 C=0.04 T=4; up to three " +
			"maximal 2-level systems are sustainable per global ring.",
		Run: runFig9,
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Global ring utilization for 3-level ring hierarchies",
		Caption: "Paper Figure 10: the global ring saturates beyond three second-level " +
			"rings, reinforcing the bisection bandwidth constraint.",
		Run: runFig10,
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Latency for hierarchies with 1-4 levels (32B lines)",
		Caption: "Paper Figure 11: each extra level shifts the latency curve right; the " +
			"benefit is largest for workloads with locality (panel b, R=0.2 vs panel a, R=1.0). T=2.",
		Run: runFig11,
	})
	register(Experiment{
		ID:    "fig19",
		Title: "3-level ring latency with normal- vs double-speed global rings",
		Caption: "Paper Figure 19: doubling the global ring clock lets the hierarchy " +
			"sustain five (not three) second-level rings, R=1.0 C=0.04 T=4.",
		Run: runFig19,
	})
	register(Experiment{
		ID:    "fig20",
		Title: "Global ring utilization, normal vs double speed",
		Caption: "Paper Figure 20: double-speed global ring utilization grows more slowly " +
			"and more linearly.",
		Run: runFig20,
	})
}

func runFig6(spec Spec) (Output, error) {
	out := Output{
		ID: "fig6", XLabel: "nodes", YLabel: "latency (network cycles)",
	}
	sizes := []int{4, 6, 8, 12, 16, 24, 32, 48, 64}
	var jobs []job
	for _, line := range lineSizes {
		for _, T := range []int{1, 2, 4} {
			wl := baseWorkload()
			wl.T = T
			label := fmt.Sprintf("%dB T=%d", line, T)
			si := len(out.Series)
			out.Series = append(out.Series, Series{Label: label})
			for _, n := range sizes {
				jobs = append(jobs, job{
					series: si, x: float64(n),
					build: ringBuilder(spec, topo.MustRingSpec(n), line, wl, false),
				})
			}
		}
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	out.Tables = append(out.Tables, sustainableTable(out.Series))
	return out, nil
}

// sustainableTable reports, per series, the largest size whose latency
// stays within 1.5x of the smallest size's latency — the paper's
// "almost no performance degradation" criterion made precise.
func sustainableTable(series []Series) Table {
	t := Table{
		Title:  "Largest size with latency within 1.5x of the minimum (cf. paper: 12/8/6/4 nodes at T=4)",
		Header: []string{"series", "sustainable nodes"},
	}
	for _, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		base := s.Points[0].Y
		best := int(s.Points[0].X)
		for _, p := range s.Points {
			if p.Y <= 1.5*base && !p.Saturated && !p.Stalled {
				best = int(p.X)
			}
		}
		t.Rows = append(t.Rows, []string{s.Label, fmt.Sprintf("%d", best)})
	}
	return t
}

func runFig7(spec Spec) (Output, error) {
	out := Output{ID: "fig7", XLabel: "nodes", YLabel: "latency (network cycles)"}
	var jobs []job
	for _, line := range lineSizes {
		si := len(out.Series)
		out.Series = append(out.Series, Series{Label: fmt.Sprintf("%dB cache line", line)})
		leaf := core.SingleRingCapacity[line]
		// Single maximal ring first, then 2..6 local rings.
		sweep := append([]topo.RingSpec{topo.MustRingSpec(leaf)}, twoLevelSweep(line)...)
		for _, ts := range sweep {
			jobs = append(jobs, job{
				series: si, x: float64(ts.PMs()),
				build: ringBuilder(spec, ts, line, baseWorkload(), false),
			})
		}
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	return out, nil
}

// utilMetric picks a ring utilization level as the Y value (percent).
func utilMetric(level int) func(x float64, r core.Result) Point {
	return func(x float64, r core.Result) Point {
		y := 0.0
		if level < len(r.RingUtil) {
			y = 100 * r.RingUtil[level]
		}
		return Point{X: x, Y: y, Saturated: r.Saturated, Stalled: r.Stalled}
	}
}

// localUtilMetric reports the lowest-level (local ring) utilization.
func localUtilMetric() func(x float64, r core.Result) Point {
	return func(x float64, r core.Result) Point {
		y := 0.0
		if len(r.RingUtil) > 0 {
			y = 100 * r.RingUtil[len(r.RingUtil)-1]
		}
		return Point{X: x, Y: y, Saturated: r.Saturated, Stalled: r.Stalled}
	}
}

func runFig8(spec Spec) (Output, error) {
	out := Output{ID: "fig8", XLabel: "nodes", YLabel: "ring utilization (%)"}
	var jobs []job
	for _, line := range lineSizes {
		gi := len(out.Series)
		out.Series = append(out.Series, Series{Label: fmt.Sprintf("%dB global", line)})
		li := len(out.Series)
		out.Series = append(out.Series, Series{Label: fmt.Sprintf("%dB local", line)})
		for _, ts := range twoLevelSweep(line) {
			// One simulation yields both the global and the local
			// utilization series.
			jobs = append(jobs, job{
				x:     float64(ts.PMs()),
				build: ringBuilder(spec, ts, line, baseWorkload(), false),
				multi: []seriesMetric{
					{series: gi, metric: utilMetric(0)},
					{series: li, metric: localUtilMetric()},
				},
			})
		}
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	return out, nil
}

func runFig9(spec Spec) (Output, error) {
	out := Output{ID: "fig9", XLabel: "nodes", YLabel: "latency (network cycles)"}
	var jobs []job
	for _, line := range lineSizes {
		si := len(out.Series)
		out.Series = append(out.Series, Series{Label: fmt.Sprintf("%dB cache line", line)})
		for _, ts := range threeLevelSweep(line) {
			jobs = append(jobs, job{
				series: si, x: float64(ts.PMs()),
				build: ringBuilder(spec, ts, line, baseWorkload(), false),
			})
		}
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	return out, nil
}

func runFig10(spec Spec) (Output, error) {
	out := Output{ID: "fig10", XLabel: "nodes", YLabel: "global ring utilization (%)"}
	var jobs []job
	for _, line := range lineSizes {
		si := len(out.Series)
		out.Series = append(out.Series, Series{Label: fmt.Sprintf("%dB cache line", line)})
		for _, ts := range threeLevelSweep(line) {
			jobs = append(jobs, job{
				series: si, x: float64(ts.PMs()),
				build:  ringBuilder(spec, ts, line, baseWorkload(), false),
				metric: utilMetric(0),
			})
		}
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	return out, nil
}

func runFig11(spec Spec) (Output, error) {
	out := Output{ID: "fig11", XLabel: "nodes", YLabel: "latency (network cycles)"}
	const line = 32
	levelSweeps := map[string][]topo.RingSpec{
		"1-level": {topo.MustRingSpec(4), topo.MustRingSpec(8), topo.MustRingSpec(12),
			topo.MustRingSpec(16), topo.MustRingSpec(24)},
		"2-level": {topo.MustRingSpec(2, 8), topo.MustRingSpec(3, 8), topo.MustRingSpec(4, 8),
			topo.MustRingSpec(5, 8), topo.MustRingSpec(6, 8)},
		"3-level": {topo.MustRingSpec(2, 3, 8), topo.MustRingSpec(3, 3, 8),
			topo.MustRingSpec(4, 3, 8), topo.MustRingSpec(5, 3, 8)},
		"4-level": {topo.MustRingSpec(2, 2, 2, 6), topo.MustRingSpec(2, 2, 2, 8),
			topo.MustRingSpec(2, 2, 3, 8), topo.MustRingSpec(3, 3, 3, 4)},
	}
	order := []string{"1-level", "2-level", "3-level", "4-level"}
	var jobs []job
	for _, panel := range []struct {
		r     float64
		label string
	}{{1.0, "R=1.0"}, {0.2, "R=0.2"}} {
		wl := baseWorkload()
		wl.R = panel.r
		wl.T = 2
		for _, lv := range order {
			si := len(out.Series)
			out.Series = append(out.Series, Series{Label: lv + " " + panel.label})
			for _, ts := range levelSweeps[lv] {
				jobs = append(jobs, job{
					series: si, x: float64(ts.PMs()),
					build: ringBuilder(spec, ts, line, wl, false),
				})
			}
		}
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	return out, nil
}

// fig19Lines are the line sizes the paper plots for the double-speed
// study.
var fig19Lines = []int{32, 64, 128}

func runFig19(spec Spec) (Output, error) {
	out := Output{ID: "fig19", XLabel: "nodes", YLabel: "latency (network cycles)"}
	var jobs []job
	for _, line := range fig19Lines {
		for _, dbl := range []bool{true, false} {
			name := "normal speed"
			if dbl {
				name = "double speed"
			}
			si := len(out.Series)
			out.Series = append(out.Series, Series{Label: fmt.Sprintf("%dB %s", line, name)})
			for _, ts := range threeLevelSweep(line) {
				jobs = append(jobs, job{
					series: si, x: float64(ts.PMs()),
					build: ringBuilder(spec, ts, line, baseWorkload(), dbl),
				})
			}
		}
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	return out, nil
}

func runFig20(spec Spec) (Output, error) {
	out := Output{ID: "fig20", XLabel: "nodes", YLabel: "global ring utilization (%)"}
	var jobs []job
	for _, line := range fig19Lines {
		for _, dbl := range []bool{true, false} {
			name := "normal speed"
			if dbl {
				name = "double speed"
			}
			si := len(out.Series)
			out.Series = append(out.Series, Series{Label: fmt.Sprintf("%dB %s", line, name)})
			for _, ts := range threeLevelSweep(line) {
				jobs = append(jobs, job{
					series: si, x: float64(ts.PMs()),
					build:  ringBuilder(spec, ts, line, baseWorkload(), dbl),
					metric: utilMetric(0),
				})
			}
		}
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	return out, nil
}

// attach copies runner output into the series and fills experiment
// metadata from the registry.
func attach(out *Output, pts [][]Point) {
	for i := range out.Series {
		out.Series[i].Points = pts[i]
	}
	if e, ok := ByID(out.ID); ok {
		out.Title, out.Caption = e.Title, e.Caption
	}
}

// Ensure workload import is used even if sweeps change.
var _ = workload.PaperDefaults
