package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteText renders an experiment's output as aligned plain text.
func WriteText(w io.Writer, out Output) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", out.ID, out.Title); err != nil {
		return err
	}
	if out.Caption != "" {
		if err := writeWrapped(w, out.Caption, 78); err != nil {
			return err
		}
	}
	for _, s := range out.Series {
		if _, err := fmt.Fprintf(w, "\n-- %s  [%s vs %s]\n", s.Label, out.YLabel, out.XLabel); err != nil {
			return err
		}
		for _, p := range s.Points {
			ci := ""
			if p.CI > 0 && p.CI < 1e18 {
				ci = fmt.Sprintf(" ±%.1f", p.CI)
			}
			if _, err := fmt.Fprintf(w, "   %6.0f  %10.1f%s%s\n", p.X, p.Y, ci, flag(p)); err != nil {
				return err
			}
		}
	}
	for _, t := range out.Tables {
		if err := writeTable(w, t); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func writeWrapped(w io.Writer, text string, width int) error {
	words := strings.Fields(text)
	line := ""
	for _, word := range words {
		if line != "" && len(line)+1+len(word) > width {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
			line = word
			continue
		}
		if line == "" {
			line = word
		} else {
			line += " " + word
		}
	}
	if line != "" {
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

func writeTable(w io.Writer, t Table) error {
	if _, err := fmt.Fprintf(w, "\n-- %s\n", t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return "   " + strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(rule)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

// WriteCSV renders every series of an output as CSV rows:
// series,x,y,ci,saturated,stalled.
func WriteCSV(w io.Writer, out Output) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "x", "y", "ci", "saturated", "stalled"}); err != nil {
		return err
	}
	for _, s := range out.Series {
		for _, p := range s.Points {
			rec := []string{
				s.Label,
				strconv.FormatFloat(p.X, 'g', -1, 64),
				strconv.FormatFloat(p.Y, 'g', -1, 64),
				strconv.FormatFloat(p.CI, 'g', 6, 64),
				strconv.FormatBool(p.Saturated),
				strconv.FormatBool(p.Stalled),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
