package exp

import (
	"bytes"
	"strings"
	"testing"

	"ringmesh/internal/core"
)

// tinySpec keeps unit-test experiment runs fast.
func tinySpec() Spec {
	return Spec{
		Seed:    1,
		Run:     core.RunConfig{WarmupCycles: 200, BatchCycles: 200, Batches: 2},
		Workers: 2,
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2",
		"fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18",
		"fig19", "fig20", "fig21",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("fig6")
	if !ok || e.ID != "fig6" || e.Run == nil {
		t.Fatal("ByID(fig6) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown id found")
	}
}

func TestAllCopies(t *testing.T) {
	a := All()
	if len(a) != len(registry) {
		t.Fatal("All() size mismatch")
	}
	a[0] = Experiment{}
	if registry[0].ID == "" {
		t.Fatal("All() aliases the registry")
	}
}

func TestTable1(t *testing.T) {
	out, err := runTable1(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) == 0 || len(out.Tables[0].Rows) != 8 {
		t.Fatalf("table1 rows = %v", out.Tables)
	}
	// Paper values: ring 128B line = 144 bytes; mesh 1-flit = 16.
	foundRing144, foundMesh16 := false, false
	for _, row := range out.Tables[0].Rows {
		if row[0] == "ring (128b)" && row[1] == "128B" && row[2] == "144" {
			foundRing144 = true
		}
		if row[0] == "mesh (32b)" && row[5] == "16" {
			foundMesh16 = true
		}
	}
	if !foundRing144 || !foundMesh16 {
		t.Fatalf("table1 values do not match the paper: %+v", out.Tables[0].Rows)
	}
}

func TestTable2MatchesPaperMostly(t *testing.T) {
	out, err := runTable2(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Tables) != 2 {
		t.Fatalf("tables = %d", len(out.Tables))
	}
	// Agreement row like "32 / 40": require at least half to match
	// exactly (the paper's tie-break among same-depth hierarchies is
	// unstated).
	cell := out.Tables[1].Rows[0][1]
	var match, total int
	if _, err := fmtSscanf(cell, &match, &total); err != nil {
		t.Fatalf("cannot parse agreement %q: %v", cell, err)
	}
	if total < 30 {
		t.Fatalf("only %d comparable entries", total)
	}
	if match*2 < total {
		t.Fatalf("too few exact matches with the paper: %s", cell)
	}
}

func fmtSscanf(cell string, match, total *int) (int, error) {
	n, err := sscanf2(cell, match, total)
	return n, err
}

func sscanf2(cell string, a, b *int) (int, error) {
	parts := strings.Split(cell, "/")
	if len(parts) != 2 {
		return 0, errParse
	}
	var err error
	*a, err = atoiTrim(parts[0])
	if err != nil {
		return 0, err
	}
	*b, err = atoiTrim(parts[1])
	if err != nil {
		return 1, err
	}
	return 2, nil
}

var errParse = &parseErr{}

type parseErr struct{}

func (*parseErr) Error() string { return "parse error" }

func atoiTrim(s string) (int, error) {
	s = strings.TrimSpace(s)
	n := 0
	if s == "" {
		return 0, errParse
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0, errParse
		}
		n = n*10 + int(r-'0')
	}
	return n, nil
}

// Each figure experiment runs end to end at tiny scale and produces
// non-empty, ordered series.
func TestFiguresRunTiny(t *testing.T) {
	ids := []string{"fig7", "fig13", "fig15"}
	if !testing.Short() {
		// The full registry (minus the two analytic tables) at tiny
		// scale; a couple of minutes of CPU, skipped under -short.
		ids = nil
		for _, id := range IDs() {
			if id == "table1" || id == "table2" {
				continue
			}
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		out, err := e.Run(tinySpec())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out.Series) == 0 {
			t.Fatalf("%s produced no series", id)
		}
		for _, s := range out.Series {
			if len(s.Points) == 0 {
				t.Fatalf("%s series %q empty", id, s.Label)
			}
			for i := 1; i < len(s.Points); i++ {
				if s.Points[i].X <= s.Points[i-1].X {
					t.Fatalf("%s series %q not sorted by X", id, s.Label)
				}
			}
		}
		if out.Title == "" || out.Caption == "" {
			t.Fatalf("%s missing metadata", id)
		}
	}
}

func TestCrossoverHelper(t *testing.T) {
	ring := Series{Points: []Point{{X: 4, Y: 10}, {X: 16, Y: 40}, {X: 64, Y: 200}}}
	mesh := Series{Points: []Point{{X: 4, Y: 30}, {X: 16, Y: 45}, {X: 64, Y: 90}}}
	x := crossover(ring, mesh)
	if x < 16 || x > 64 {
		t.Fatalf("crossover = %v, want within (16,64)", x)
	}
	// No crossover when mesh is always slower.
	slow := Series{Points: []Point{{X: 4, Y: 100}, {X: 64, Y: 500}}}
	if crossover(ring, slow) != 0 {
		t.Fatal("phantom crossover")
	}
}

func TestInterpAt(t *testing.T) {
	s := Series{Points: []Point{{X: 0, Y: 0}, {X: 10, Y: 100}}}
	if y, ok := interpAt(s, 5); !ok || y != 50 {
		t.Fatalf("interp = %v %v", y, ok)
	}
	if _, ok := interpAt(s, 20); ok {
		t.Fatal("out-of-range interpolation succeeded")
	}
}

func TestSweepTopologyForWidensBranching(t *testing.T) {
	// 120 PMs at 32B lines has no <=3-branching hierarchy; the sweep
	// helper must widen the bound rather than fail.
	spec, err := sweepTopologyFor(120, 32)
	if err != nil {
		t.Fatal(err)
	}
	if spec.PMs() != 120 {
		t.Fatalf("got %v", spec)
	}
	if _, err := sweepTopologyFor(113, 32); err == nil {
		t.Fatal("prime size beyond leaf capacity should fail")
	}
}

func TestRenderText(t *testing.T) {
	out := Output{
		ID: "x", Title: "T", Caption: "A caption that should wrap nicely over the line width limit to exercise writeWrapped.",
		XLabel: "nodes", YLabel: "latency",
		Series: []Series{{Label: "s1", Points: []Point{{X: 4, Y: 10.5, CI: 1.2}, {X: 8, Y: 22, Saturated: true}}}},
		Tables: []Table{{Title: "tab", Header: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}}},
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, out); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"== x: T ==", "s1", "10.5", "(saturated)", "tab", "±1.2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered text missing %q:\n%s", want, s)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	out := Output{
		Series: []Series{{Label: "s", Points: []Point{{X: 1, Y: 2, CI: 0.5}}}},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, out); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "series,x,y,ci,saturated,stalled") || !strings.Contains(s, "s,1,2,0.5,false,false") {
		t.Fatalf("csv output wrong:\n%s", s)
	}
}

func TestRingLadders(t *testing.T) {
	for _, line := range lineSizes {
		l := ringLadder(line)
		if len(l) == 0 {
			t.Fatalf("no ladder for %dB", line)
		}
		for _, n := range l {
			if _, err := sweepTopologyFor(n, line); err != nil {
				t.Errorf("ladder size %d@%dB has no topology: %v", n, line, err)
			}
		}
	}
	if ringLadder(48) != nil {
		t.Fatal("unknown line size should return nil ladder")
	}
}

func TestFlagStrings(t *testing.T) {
	if flag(Point{}) != "" || flag(Point{Saturated: true}) != " (saturated)" || flag(Point{Stalled: true}) != " (stalled)" {
		t.Fatal("flag rendering wrong")
	}
}
