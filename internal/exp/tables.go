package exp

import (
	"fmt"

	"ringmesh/internal/core"
	"ringmesh/internal/packet"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "NIC buffer memory requirements, rings vs meshes",
		Caption: "Paper Table 1: under equal pin budgets a ring NIC needs one cl-sized ring " +
			"buffer (cl x 16B) while a mesh NIC needs four input buffers (4 x depth x 4B). " +
			"This reproduction adds a second cl-sized ring buffer per NIC for the virtual-" +
			"channel deadlock fix (see DESIGN.md), shown alongside the paper's figure.",
		Run: runTable1,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Optimal hierarchical ring topology per (processors, cache line size)",
		Caption: "Paper Table 2: best topology for workloads with no locality (R=1.0 " +
			"C=0.04). Our search constrains leaf rings to the single-ring capacity " +
			"(12/8/6/4 PMs at 16/32/64/128B) and internal branching to three (the " +
			"bisection limit), then minimizes depth and average hop distance.",
		Run: runTable2,
	})
}

func runTable1(Spec) (Output, error) {
	out := Output{ID: "table1"}
	t := Table{
		Title:  "NIC buffer memory (bytes)",
		Header: []string{"network", "line", "cl (paper)", "cl (this impl)", "4-flit", "1-flit"},
	}
	for _, line := range lineSizes {
		cl := packet.RingSizing.CacheLineFlits(line)
		t.Rows = append(t.Rows, []string{
			"ring (128b)", fmt.Sprintf("%dB", line),
			fmt.Sprintf("%d", cl*packet.RingSizing.FlitBytes),
			fmt.Sprintf("%d", 2*cl*packet.RingSizing.FlitBytes),
			"-", "-",
		})
	}
	for _, line := range lineSizes {
		cl := packet.MeshSizing.CacheLineFlits(line)
		fb := packet.MeshSizing.FlitBytes
		t.Rows = append(t.Rows, []string{
			"mesh (32b)", fmt.Sprintf("%dB", line),
			fmt.Sprintf("%d", 4*cl*fb),
			fmt.Sprintf("%d", 4*cl*fb),
			fmt.Sprintf("%d", 4*4*fb),
			fmt.Sprintf("%d", 4*1*fb),
		})
	}
	out.Tables = append(out.Tables, t)
	if e, ok := ByID(out.ID); ok {
		out.Title, out.Caption = e.Title, e.Caption
	}
	return out, nil
}

// paperTable2 is the published Table 2 for reference, keyed by
// (processors, line size).
var paperTable2 = map[[2]int]string{
	{4, 16}: "4", {4, 32}: "4", {4, 64}: "4", {4, 128}: "4",
	{6, 16}: "6", {6, 32}: "6", {6, 64}: "6", {6, 128}: "2:3",
	{8, 16}: "8", {8, 32}: "8", {8, 64}: "2:4", {8, 128}: "2:4",
	{12, 16}: "12", {12, 32}: "2:6", {12, 64}: "2:6", {12, 128}: "3:4",
	{18, 16}: "2:9", {18, 32}: "3:6", {18, 64}: "3:6", {18, 128}: "3:2:3",
	{24, 16}: "2:12", {24, 32}: "3:8", {24, 64}: "2:2:6", {24, 128}: "2:3:4",
	{36, 16}: "3:12", {36, 32}: "2:3:6", {36, 64}: "2:3:6", {36, 128}: "3:3:4",
	{54, 16}: "2:3:9", {54, 32}: "3:3:6", {54, 64}: "3:3:6", {54, 128}: "3:3:2:3",
	{72, 16}: "2:3:12", {72, 32}: "3:3:8", {72, 64}: "2:2:3:6", {72, 128}: "2:3:3:4",
	{108, 16}: "3:3:12", {108, 32}: "2:3:3:6", {108, 64}: "2:3:3:6", {108, 128}: "3:3:3:4",
}

// table2Sizes is the processor-count column of the paper's Table 2.
var table2Sizes = []int{4, 6, 8, 12, 18, 24, 36, 54, 72, 108}

func runTable2(Spec) (Output, error) {
	out := Output{ID: "table2"}
	t := Table{
		Title:  "Optimal hierarchical ring topology (ours vs paper)",
		Header: []string{"processors", "16B", "32B", "64B", "128B"},
	}
	match, total := 0, 0
	for _, p := range table2Sizes {
		row := []string{fmt.Sprintf("%d", p)}
		for _, line := range lineSizes {
			cell := "-"
			spec, err := core.RingTopologyFor(p, line)
			if err == nil {
				cell = spec.String()
				want := paperTable2[[2]int{p, line}]
				total++
				if cell == want {
					match++
				} else {
					cell = fmt.Sprintf("%s (paper: %s)", cell, want)
				}
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	out.Tables = append(out.Tables, t)
	out.Tables = append(out.Tables, Table{
		Title:  "Agreement with the published table",
		Header: []string{"metric", "value"},
		Rows: [][]string{{
			"exact matches", fmt.Sprintf("%d / %d", match, total),
		}},
	})
	if e, ok := ByID(out.ID); ok {
		out.Title, out.Caption = e.Title, e.Caption
	}
	return out, nil
}
