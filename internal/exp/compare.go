package exp

import (
	"fmt"
)

func init() {
	register(Experiment{
		ID:    "fig14",
		Title: "Ring vs mesh latency, 4-flit mesh buffers, no locality",
		Caption: "Paper Figure 14: rings win below, meshes above a cross-over point that " +
			"grows with cache line size (paper: 16/25/27/36 nodes for 16/32/64/128B); the " +
			"gap widens with larger T. R=1.0 C=0.04.",
		Run: runFig14,
	})
	register(Experiment{
		ID:    "fig15",
		Title: "Ring vs mesh latency, cl-sized mesh buffers, 128B lines",
		Caption: "Paper Figure 15: with cache-line-sized mesh buffers the cross-over drops " +
			"to 16-30 nodes depending on T (worms never stall across more than one link).",
		Run: runFig15,
	})
	register(Experiment{
		ID:    "fig16",
		Title: "Ring vs mesh latency, 1-flit mesh buffers, 128B lines",
		Caption: "Paper Figure 16: with 1-flit mesh buffers rings outperform meshes for all " +
			"sizes up to 121 nodes (worms block across many links).",
		Run: runFig16,
	})
	register(Experiment{
		ID:    "fig17",
		Title: "Ring vs mesh latency under locality (R=0.1/0.2/0.3), 4-flit buffers",
		Caption: "Paper Figure 17: with moderate locality the paper reports rings ahead of " +
			"meshes by ~20-30% for 32-128B lines up to 121 processors (see EXPERIMENTS.md " +
			"for how our reproduction compares).",
		Run: runFig17,
	})
	register(Experiment{
		ID:    "fig18",
		Title: "Ring vs mesh latency under locality, cl-sized mesh buffers, 128B lines",
		Caption: "Paper Figure 18: locality pushes the cross-over point out to 45+ " +
			"processors even with cache-line-sized mesh buffers.",
		Run: runFig18,
	})
	register(Experiment{
		ID:    "fig21",
		Title: "Mesh (4-flit) vs 3-level rings with double-speed global ring",
		Caption: "Paper Figure 21: with the global ring clocked 2x, 128B-line rings beat " +
			"meshes by 10-20% at up to ~120 processors even without locality; for 32/64B " +
			"the cross-over is unchanged since it falls below the 3-level threshold.",
		Run: runFig21,
	})
}

// compareSweep builds ring-vs-mesh series for one line size and
// workload; buf is the mesh buffer depth (0 = cl) and dbl selects
// double-speed global rings.
func compareSweep(spec Spec, out *Output, jobs *[]job, line int, buf int,
	T int, R float64, dbl bool, labelSuffix string) (ringIdx, meshIdx int) {
	wl := baseWorkload()
	wl.T = T
	wl.R = R
	ringIdx = len(out.Series)
	out.Series = append(out.Series, Series{Label: "ring " + labelSuffix})
	for _, ts := range specsForSizes(line, ringLadder(line)) {
		*jobs = append(*jobs, job{
			series: ringIdx, x: float64(ts.PMs()),
			build: ringBuilder(spec, ts, line, wl, dbl),
		})
	}
	meshIdx = len(out.Series)
	out.Series = append(out.Series, Series{Label: "mesh " + labelSuffix})
	for _, n := range meshLadder() {
		k := 0
		for k*k < n {
			k++
		}
		*jobs = append(*jobs, job{
			series: meshIdx, x: float64(n),
			build: meshBuilder(spec, k, line, buf, wl),
		})
	}
	return ringIdx, meshIdx
}

// crossoverTable summarizes cross-over points for ring/mesh series
// pairs.
func crossoverTable(out *Output, pairs [][2]int, note string) Table {
	t := Table{
		Title:  "Cross-over points (nodes where the mesh becomes faster)" + note,
		Header: []string{"configuration", "cross-over (nodes)"},
	}
	for _, pr := range pairs {
		ringS, meshS := out.Series[pr[0]], out.Series[pr[1]]
		x := crossover(ringS, meshS)
		val := "none up to 121"
		if x > 0 {
			val = fmt.Sprintf("%.0f", x)
		}
		t.Rows = append(t.Rows, []string{meshS.Label, val})
	}
	return t
}

func runFig14(spec Spec) (Output, error) {
	out := Output{ID: "fig14", XLabel: "nodes", YLabel: "latency (network cycles)"}
	var jobs []job
	var pairs [][2]int
	for _, line := range lineSizes {
		for _, T := range []int{1, 2, 4} {
			r, m := compareSweep(spec, &out, &jobs, line, 4, T, 1.0, false,
				fmt.Sprintf("%dB T=%d", line, T))
			pairs = append(pairs, [2]int{r, m})
		}
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	out.Tables = append(out.Tables, crossoverTable(&out, pairs,
		" — paper: 16/25/27/36 for 16/32/64/128B at T=4"))
	return out, nil
}

func runFig15(spec Spec) (Output, error) {
	out := Output{ID: "fig15", XLabel: "nodes", YLabel: "latency (network cycles)"}
	var jobs []job
	var pairs [][2]int
	for _, T := range []int{1, 2, 4} {
		r, m := compareSweep(spec, &out, &jobs, 128, 0, T, 1.0, false,
			fmt.Sprintf("128B cl-buf T=%d", T))
		pairs = append(pairs, [2]int{r, m})
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	out.Tables = append(out.Tables, crossoverTable(&out, pairs, " — paper: 16-30 depending on T"))
	return out, nil
}

func runFig16(spec Spec) (Output, error) {
	out := Output{ID: "fig16", XLabel: "nodes", YLabel: "latency (network cycles)"}
	var jobs []job
	var pairs [][2]int
	for _, T := range []int{1, 2, 4} {
		r, m := compareSweep(spec, &out, &jobs, 128, 1, T, 1.0, false,
			fmt.Sprintf("128B 1-flit T=%d", T))
		pairs = append(pairs, [2]int{r, m})
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	out.Tables = append(out.Tables, crossoverTable(&out, pairs, " — paper: above 121 for all T"))
	return out, nil
}

func runFig17(spec Spec) (Output, error) {
	out := Output{ID: "fig17", XLabel: "nodes", YLabel: "latency (network cycles)"}
	var jobs []job
	var pairs [][2]int
	for _, line := range lineSizes {
		for _, R := range []float64{0.1, 0.2, 0.3} {
			r, m := compareSweep(spec, &out, &jobs, line, 4, 4, R, false,
				fmt.Sprintf("%dB R=%.1f", line, R))
			pairs = append(pairs, [2]int{r, m})
		}
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	out.Tables = append(out.Tables, crossoverTable(&out, pairs,
		" — paper: rings ahead at all sizes for R<=0.3 (except 16B)"))
	out.Tables = append(out.Tables, ratioTable(&out, pairs))
	return out, nil
}

// ratioTable reports the average mesh/ring latency ratio per pair
// (>1 means rings faster).
func ratioTable(out *Output, pairs [][2]int) Table {
	t := Table{
		Title:  "Mean mesh/ring latency ratio across common sizes (>1: rings faster)",
		Header: []string{"configuration", "mesh/ring ratio"},
	}
	for _, pr := range pairs {
		ringS, meshS := out.Series[pr[0]], out.Series[pr[1]]
		// Compare at ring Xs via interpolation on the mesh curve.
		sum, n := 0.0, 0
		for _, rp := range ringS.Points {
			my, ok := interpAt(meshS, rp.X)
			if !ok || rp.Y <= 0 {
				continue
			}
			sum += my / rp.Y
			n++
		}
		if n == 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{meshS.Label, fmt.Sprintf("%.2f", sum/float64(n))})
	}
	return t
}

// interpAt linearly interpolates a series at x.
func interpAt(s Series, x float64) (float64, bool) {
	pts := s.Points
	if len(pts) == 0 || x < pts[0].X || x > pts[len(pts)-1].X {
		return 0, false
	}
	for i := 1; i < len(pts); i++ {
		if x <= pts[i].X {
			x0, y0 := pts[i-1].X, pts[i-1].Y
			x1, y1 := pts[i].X, pts[i].Y
			if x1 == x0 {
				return y1, true
			}
			return y0 + (y1-y0)*(x-x0)/(x1-x0), true
		}
	}
	return pts[len(pts)-1].Y, true
}

func runFig18(spec Spec) (Output, error) {
	out := Output{ID: "fig18", XLabel: "nodes", YLabel: "latency (network cycles)"}
	var jobs []job
	var pairs [][2]int
	for _, R := range []float64{0.1, 0.2, 0.3} {
		r, m := compareSweep(spec, &out, &jobs, 128, 0, 4, R, false,
			fmt.Sprintf("128B cl-buf R=%.1f", R))
		pairs = append(pairs, [2]int{r, m})
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	out.Tables = append(out.Tables, crossoverTable(&out, pairs, " — paper: 45+ for R<=0.3"))
	return out, nil
}

func runFig21(spec Spec) (Output, error) {
	out := Output{ID: "fig21", XLabel: "nodes", YLabel: "latency (network cycles)"}
	var jobs []job
	var pairs [][2]int
	for _, line := range fig19Lines {
		r, m := compareSweep(spec, &out, &jobs, line, 4, 4, 1.0, true,
			fmt.Sprintf("%dB dbl-global", line))
		pairs = append(pairs, [2]int{r, m})
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	out.Tables = append(out.Tables, crossoverTable(&out, pairs,
		" — paper: rings ahead for 128B at all sizes; 32/64B unchanged"))
	return out, nil
}
