package exp

import (
	"strings"
	"testing"

	"ringmesh/internal/core"
)

type coreResult = core.Result

func TestSustainableTable(t *testing.T) {
	series := []Series{{
		Label: "s",
		Points: []Point{
			{X: 4, Y: 10}, {X: 8, Y: 12}, {X: 12, Y: 14},
			{X: 16, Y: 40},                  // beyond 1.5x of 10
			{X: 24, Y: 13, Saturated: true}, // within bound but flagged
		},
	}}
	tab := sustainableTable(series)
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][1] != "12" {
		t.Fatalf("sustainable = %s, want 12", tab.Rows[0][1])
	}
	// Empty series contribute no row.
	if got := sustainableTable([]Series{{Label: "empty"}}); len(got.Rows) != 0 {
		t.Fatal("empty series produced a row")
	}
}

func TestGrowthTable(t *testing.T) {
	series := []Series{
		{Label: "g", Points: []Point{{X: 4, Y: 50}, {X: 121, Y: 250}}},
		{Label: "zero", Points: []Point{{X: 4, Y: 0}, {X: 121, Y: 10}}},
		{Label: "short", Points: []Point{{X: 4, Y: 5}}},
	}
	tab := growthTable(series)
	// Zero baseline and single-point series are skipped.
	if len(tab.Rows) != 1 {
		t.Fatalf("rows = %d: %v", len(tab.Rows), tab.Rows)
	}
	if !strings.HasPrefix(tab.Rows[0][1], "5.0x") {
		t.Fatalf("growth = %s, want 5.0x...", tab.Rows[0][1])
	}
}

func TestCrossoverTable(t *testing.T) {
	out := &Output{Series: []Series{
		{Label: "ring", Points: []Point{{X: 4, Y: 10}, {X: 64, Y: 300}}},
		{Label: "mesh a", Points: []Point{{X: 4, Y: 50}, {X: 64, Y: 100}}},
		{Label: "ring2", Points: []Point{{X: 4, Y: 10}, {X: 64, Y: 20}}},
		{Label: "mesh b", Points: []Point{{X: 4, Y: 50}, {X: 64, Y: 90}}},
	}}
	tab := crossoverTable(out, [][2]int{{0, 1}, {2, 3}}, " note")
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][1] == "none up to 121" {
		t.Fatal("first pair should cross")
	}
	if tab.Rows[1][1] != "none up to 121" {
		t.Fatalf("second pair should not cross: %s", tab.Rows[1][1])
	}
	if !strings.Contains(tab.Title, "note") {
		t.Fatal("note missing from title")
	}
}

func TestRatioTable(t *testing.T) {
	out := &Output{Series: []Series{
		{Label: "ring", Points: []Point{{X: 4, Y: 10}, {X: 16, Y: 20}}},
		{Label: "mesh", Points: []Point{{X: 4, Y: 20}, {X: 16, Y: 40}}},
	}}
	tab := ratioTable(out, [][2]int{{0, 1}})
	if len(tab.Rows) != 1 || tab.Rows[0][1] != "2.00" {
		t.Fatalf("ratio rows = %v", tab.Rows)
	}
}

func TestBufferLabel(t *testing.T) {
	if bufferLabel(0) != "cl-sized" || bufferLabel(4) != "4-flit" {
		t.Fatal("buffer labels wrong")
	}
}

func TestSpecsForSizesDropsImpossible(t *testing.T) {
	// 113 is prime and beyond any leaf capacity: dropped silently.
	specs := specsForSizes(32, []int{8, 113, 24})
	if len(specs) != 2 {
		t.Fatalf("specs = %v", specs)
	}
}

func TestUtilMetrics(t *testing.T) {
	r := resultWithUtil([]float64{0.5, 0.25, 0.125})
	if p := utilMetric(0)(10, r); p.Y != 50 || p.X != 10 {
		t.Fatalf("global util point = %+v", p)
	}
	if p := localUtilMetric()(10, r); p.Y != 12.5 {
		t.Fatalf("local util point = %+v", p)
	}
	// Out-of-range level yields zero, not a panic.
	if p := utilMetric(9)(10, r); p.Y != 0 {
		t.Fatalf("missing level point = %+v", p)
	}
	if p := meshUtilMetric()(10, resultWithMeshUtil(0.4)); p.Y != 40 {
		t.Fatalf("mesh util point = %+v", p)
	}
}

func TestThreeAndTwoLevelSweeps(t *testing.T) {
	for _, line := range lineSizes {
		for _, ts := range threeLevelSweep(line) {
			if ts.NumLevels() != 3 || ts.PMs() > 121 {
				t.Fatalf("bad 3-level sweep entry %v", ts)
			}
		}
		for _, ts := range twoLevelSweep(line) {
			if ts.NumLevels() != 2 {
				t.Fatalf("bad 2-level sweep entry %v", ts)
			}
		}
	}
}

// resultWithUtil builds a core.Result carrying ring utilizations.
func resultWithUtil(u []float64) (r coreResult) {
	r.RingUtil = u
	return r
}

func resultWithMeshUtil(u float64) (r coreResult) {
	r.MeshUtil = u
	return r
}
