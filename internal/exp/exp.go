// Package exp defines one runnable experiment per table and figure of
// the paper's evaluation, plus the ablation studies listed in
// DESIGN.md. Each experiment reproduces the corresponding artifact's
// data: the same parameter sweep, the same series, rendered as text
// tables (and CSV) instead of plots.
package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"

	"ringmesh/internal/core"
	"ringmesh/internal/network"
	"ringmesh/internal/pool"
	"ringmesh/internal/topo"
	"ringmesh/internal/workload"
)

// Point is one measurement in a series.
type Point struct {
	// X is the sweep coordinate (usually the number of PMs).
	X float64
	// Y is the measured value (latency in PM cycles, or utilization
	// in percent).
	Y float64
	// CI is the 95% confidence half-width on Y when it is a latency.
	CI float64
	// Saturated / Stalled flag measurements taken past the network's
	// saturation point (latency then underestimates open-loop delay).
	Saturated bool
	Stalled   bool
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Table is a rendered result table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Output is everything an experiment produces.
type Output struct {
	ID      string
	Title   string
	Caption string
	XLabel  string
	YLabel  string
	Series  []Series
	Tables  []Table
}

// Spec controls how an experiment's simulations run.
type Spec struct {
	// Seed makes the whole experiment reproducible.
	Seed uint64
	// Run is the per-point batch-means schedule.
	Run core.RunConfig
	// Workers bounds concurrent simulations (0 = 1).
	Workers int
	// EngineWorkers is each simulation's parallel tick worker count
	// (0 or 1 = the exact serial engine). It is capped so
	// Workers x EngineWorkers never exceeds the machine's CPUs —
	// point-level and engine-level parallelism share one budget.
	// Results are identical at any value: the parallel engine is
	// golden-tested bit-identical to serial.
	EngineWorkers int
}

// DefaultSpec returns the paper-fidelity schedule.
func DefaultSpec() Spec {
	return Spec{Seed: 42, Run: core.DefaultRunConfig(), Workers: 4}
}

// QuickSpec returns a reduced schedule for smoke tests and benches
// (same sweeps, shorter runs).
func QuickSpec() Spec {
	return Spec{Seed: 42, Run: core.QuickRunConfig(), Workers: 4}
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID      string
	Title   string
	Caption string
	Run     func(Spec) (Output, error)
}

// registry holds experiments in paper order.
var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment in paper order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists registered experiment ids in order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// --- simulation point helpers -----------------------------------------

// seriesMetric extracts one series' point from a run result.
type seriesMetric struct {
	series int
	metric func(x float64, r core.Result) Point
}

// job is one simulation to run. It feeds one series (series/metric)
// or, when multi is set, several series from the same run.
type job struct {
	series int
	x      float64
	build  func() (*core.System, error)
	// metric converts the run result into a point; nil means latency.
	metric func(x float64, r core.Result) Point
	// multi, when non-empty, emits one point per entry instead of the
	// single series/metric pair (used when several series share one
	// simulation, e.g. global and local utilization).
	multi []seriesMetric
}

// runJobs executes jobs over the shared bounded worker pool
// (internal/pool, the same pool behind facade sweeps and the serving
// daemon's queue) and fills the given series' points, ordered by X
// within each series. Every job runs even after a failure; the
// collected errors come back joined in a deterministic order.
func runJobs(spec Spec, nSeries int, jobs []job) ([][]Point, error) {
	type seriesPoint struct {
		series int
		p      Point
	}
	// Each job writes only its own slot, so the fan-out needs no lock.
	results := make([][]seriesPoint, len(jobs))
	errs := pool.ForEach(context.Background(), spec.Workers, len(jobs), nil, func(i int) error {
		j := jobs[i]
		sys, err := j.build()
		if err != nil {
			return err
		}
		r, err := sys.Run(spec.Run)
		if err != nil {
			return err
		}
		if len(j.multi) > 0 {
			for _, m := range j.multi {
				results[i] = append(results[i], seriesPoint{series: m.series, p: m.metric(j.x, r)})
			}
			return nil
		}
		p := Point{
			X: j.x, Y: r.Latency, CI: r.LatencyCI,
			Saturated: r.Saturated, Stalled: r.Stalled,
		}
		if j.metric != nil {
			p = j.metric(j.x, r)
		}
		results[i] = []seriesPoint{{series: j.series, p: p}}
		return nil
	})
	if len(errs) > 0 {
		sort.Slice(errs, func(a, b int) bool { return errs[a].Error() < errs[b].Error() })
		return nil, errors.Join(errs...)
	}
	points := make([][]Point, nSeries)
	for _, rs := range results {
		for _, sp := range rs {
			points[sp.series] = append(points[sp.series], sp.p)
		}
	}
	for i := range points {
		sort.Slice(points[i], func(a, b int) bool { return points[i][a].X < points[i][b].X })
	}
	return points, nil
}

// netBuilder returns a constructor for one simulation point over any
// registered interconnect; every experiment's points flow through it.
func netBuilder(spec Spec, name string, net network.Config, wl workload.MMRP, memLat int) func() (*core.System, error) {
	return func() (*core.System, error) {
		return core.NewSystem(core.SystemConfig{
			Network:    name,
			Net:        net,
			Workload:   wl,
			MemLatency: memLat,
			Seed:       spec.Seed,
			Workers:    pool.CapInner(runtime.NumCPU(), spec.Workers, spec.EngineWorkers),
		})
	}
}

// ringBuilder returns a constructor for one ring simulation point.
func ringBuilder(spec Spec, topology topo.RingSpec, line int, wl workload.MMRP, dbl bool) func() (*core.System, error) {
	return netBuilder(spec, "ring", network.Config{
		Topology:          topology.String(),
		LineBytes:         line,
		DoubleSpeedGlobal: dbl,
	}, wl, 0)
}

// meshBuilder returns a constructor for one mesh simulation point.
func meshBuilder(spec Spec, k, line, buf int, wl workload.MMRP) func() (*core.System, error) {
	return netBuilder(spec, "mesh", network.Config{
		Nodes:       k * k,
		LineBytes:   line,
		BufferFlits: buf,
	}, wl, 0)
}

// sweepTopologyFor returns a hierarchy for n PMs at the given line
// size, following the paper's construction: leaf rings bounded by the
// single-ring capacity and internal branching of at most three. Where
// the paper sweeps past the last balanced configuration (its latency
// figures extend beyond Table 2's largest entries) the branching
// bound is widened until a hierarchy exists.
func sweepTopologyFor(n, line int) (topo.RingSpec, error) {
	if spec, err := network.RingTopologyFor(n, line); err == nil {
		return spec, nil
	}
	cap := network.SingleRingCapacity[line]
	if cap == 0 {
		return topo.RingSpec{}, fmt.Errorf("exp: unsupported line size %dB", line)
	}
	for branch := 4; branch <= 8; branch++ {
		specs := topo.EnumerateRingSpecs(n, 4, branch, cap)
		if len(specs) == 0 {
			continue
		}
		best := specs[0]
		bestH := best.AverageRingHops()
		for _, s := range specs[1:] {
			h := s.AverageRingHops()
			if s.NumLevels() < best.NumLevels() ||
				(s.NumLevels() == best.NumLevels() && h < bestH) {
				best, bestH = s, h
			}
		}
		return best, nil
	}
	return topo.RingSpec{}, fmt.Errorf("exp: no ring topology for %d PMs at %dB lines", n, line)
}

// ringLadder is the node-count sweep the paper uses for each cache
// line size (drawn from Table 2 plus the figure extents).
func ringLadder(line int) []int {
	switch line {
	case 16:
		return []int{4, 8, 12, 24, 36, 54, 72, 108}
	case 32:
		return []int{4, 8, 16, 24, 48, 72, 96, 120}
	case 64:
		return []int{4, 6, 12, 18, 36, 54, 72, 108}
	case 128:
		return []int{4, 8, 12, 24, 36, 72, 108}
	default:
		return nil
	}
}

// meshLadder is the square mesh sweep (2x2 .. 11x11).
func meshLadder() []int { return []int{4, 9, 16, 25, 36, 49, 64, 81, 100, 121} }

// lineSizes are the paper's four cache line sizes.
var lineSizes = []int{16, 32, 64, 128}

// baseWorkload is the paper's default (R=1.0, C=0.04, T=4, 70% reads).
func baseWorkload() workload.MMRP { return workload.PaperDefaults() }

// flag renders saturation/stall markers for tables.
func flag(p Point) string {
	switch {
	case p.Stalled:
		return " (stalled)"
	case p.Saturated:
		return " (saturated)"
	default:
		return ""
	}
}

// crossover estimates the node count where series b (mesh) drops
// below series a (ring) by scanning X in merged order and linearly
// interpolating each curve. Returns 0 when no crossover is found in
// range.
func crossover(ringS, meshS Series) float64 {
	interp := func(s Series, x float64) (float64, bool) {
		pts := s.Points
		if len(pts) == 0 || x < pts[0].X || x > pts[len(pts)-1].X {
			return 0, false
		}
		for i := 1; i < len(pts); i++ {
			if x <= pts[i].X {
				x0, y0 := pts[i-1].X, pts[i-1].Y
				x1, y1 := pts[i].X, pts[i].Y
				if x1 == x0 {
					return y1, true
				}
				return y0 + (y1-y0)*(x-x0)/(x1-x0), true
			}
		}
		return pts[len(pts)-1].Y, true
	}
	// Collect candidate xs.
	xs := map[float64]bool{}
	for _, p := range ringS.Points {
		xs[p.X] = true
	}
	for _, p := range meshS.Points {
		xs[p.X] = true
	}
	var grid []float64
	for x := range xs {
		grid = append(grid, x)
	}
	sort.Float64s(grid)
	prevDiff := 0.0
	prevX := 0.0
	havePrev := false
	for _, x := range grid {
		ry, ok1 := interp(ringS, x)
		my, ok2 := interp(meshS, x)
		if !ok1 || !ok2 {
			continue
		}
		diff := ry - my // positive once mesh is faster
		if havePrev && prevDiff < 0 && diff >= 0 {
			// Linear interpolation of the sign change.
			t := prevDiff / (prevDiff - diff)
			return prevX + t*(x-prevX)
		}
		prevDiff, prevX, havePrev = diff, x, true
	}
	return 0
}
