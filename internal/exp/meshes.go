package exp

import (
	"fmt"

	"ringmesh/internal/core"
)

func init() {
	register(Experiment{
		ID:    "fig12",
		Title: "Latency for 2D meshes (cl-sized, 4-flit and 1-flit buffers)",
		Caption: "Paper Figure 12: mesh latency grows moderately with size (aggregate and " +
			"bisection bandwidth scale); buffer size matters — cl-sized buffers give a 5-7x " +
			"latency increase from 4 to 121 processors, 4-flit 6-8x, 1-flit 9-12x. R=1.0 C=0.04 T=4.",
		Run: runFig12,
	})
	register(Experiment{
		ID:    "fig13",
		Title: "Network utilization for meshes with 4-flit buffers",
		Caption: "Paper Figure 13: mesh network utilization peaks early (9-16 nodes) and " +
			"decreases monotonically as average distance and blocking grow.",
		Run: runFig13,
	})
}

// bufferLabel names a mesh buffer configuration.
func bufferLabel(buf int) string {
	if buf == 0 {
		return "cl-sized"
	}
	return fmt.Sprintf("%d-flit", buf)
}

func runFig12(spec Spec) (Output, error) {
	out := Output{ID: "fig12", XLabel: "nodes", YLabel: "latency (network cycles)"}
	var jobs []job
	for _, buf := range []int{0, 4, 1} {
		for _, line := range lineSizes {
			si := len(out.Series)
			out.Series = append(out.Series,
				Series{Label: fmt.Sprintf("%s buffers %dB", bufferLabel(buf), line)})
			for _, n := range meshLadder() {
				k := 0
				for k*k < n {
					k++
				}
				jobs = append(jobs, job{
					series: si, x: float64(n),
					build: meshBuilder(spec, k, line, buf, baseWorkload()),
				})
			}
		}
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	out.Tables = append(out.Tables, growthTable(out.Series))
	return out, nil
}

// growthTable reports the latency growth factor from the smallest to
// the largest measured size (the paper quotes 5-7x for cl buffers,
// 6-8x for 4-flit, 9-12x for 1-flit).
func growthTable(series []Series) Table {
	t := Table{
		Title:  "Latency growth factor, 4 to 121 processors",
		Header: []string{"series", "growth"},
	}
	for _, s := range series {
		if len(s.Points) < 2 {
			continue
		}
		first, last := s.Points[0], s.Points[len(s.Points)-1]
		if first.Y <= 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			s.Label,
			fmt.Sprintf("%.1fx (%.0f -> %.0f cycles)%s", last.Y/first.Y, first.Y, last.Y, flag(last)),
		})
	}
	return t
}

func meshUtilMetric() func(x float64, r core.Result) Point {
	return func(x float64, r core.Result) Point {
		return Point{X: x, Y: 100 * r.MeshUtil, Saturated: r.Saturated, Stalled: r.Stalled}
	}
}

func runFig13(spec Spec) (Output, error) {
	out := Output{ID: "fig13", XLabel: "nodes", YLabel: "network utilization (%)"}
	var jobs []job
	for _, line := range lineSizes {
		si := len(out.Series)
		out.Series = append(out.Series, Series{Label: fmt.Sprintf("%dB cache line", line)})
		for _, n := range meshLadder() {
			k := 0
			for k*k < n {
				k++
			}
			jobs = append(jobs, job{
				series: si, x: float64(n),
				build:  meshBuilder(spec, k, line, 4, baseWorkload()),
				metric: meshUtilMetric(),
			})
		}
	}
	pts, err := runJobs(spec, len(out.Series), jobs)
	if err != nil {
		return Output{}, err
	}
	attach(&out, pts)
	return out, nil
}
