package fault

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseExplicitEvents(t *testing.T) {
	p, err := Parse("stutter@1000+200:node=3;slowdown@500+100:node=0,factor=4;degrade@0+50:node=5,port=1,factor=2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: LinkStutter, Node: 3, Start: 1000, Duration: 200},
		{Kind: NodeSlowdown, Node: 0, Start: 500, Duration: 100, Factor: 4},
		{Kind: PortDegrade, Node: 5, Port: 1, Start: 0, Duration: 50, Factor: 2},
	}
	if !reflect.DeepEqual(p.Events, want) {
		t.Fatalf("events = %+v, want %+v", p.Events, want)
	}
}

func TestParseRand(t *testing.T) {
	p, err := Parse("rand:events=8,seed=42,horizon=10000,mean-dur=32,max-factor=3")
	if err != nil {
		t.Fatal(err)
	}
	want := &GenSpec{Seed: 42, Events: 8, Horizon: 10000, MeanDuration: 32, MaxFactor: 3}
	if !reflect.DeepEqual(p.Gen, want) {
		t.Fatalf("gen = %+v, want %+v", p.Gen, want)
	}
}

func TestParseNone(t *testing.T) {
	p, err := Parse("none")
	if err != nil {
		t.Fatal(err)
	}
	if p == nil || !p.Empty() {
		t.Fatalf("none should yield an empty non-nil plan, got %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{
		"",
		"melt@0+10:node=1",          // unknown kind
		"stutter@0+10",              // missing node
		"stutter@0:node=1",          // missing duration
		"stutter@0+10:node=1,x=2",   // unknown key
		"rand:seed=1",               // missing events
		"rand:events=4",             // missing horizon
		"rand:events=4,horizon=1,max-factor=1", // factor < 2
		"stutter@0+10:node=a",       // non-integer
	} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted", s)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{
		"stutter@1000+200:node=3",
		"slowdown@500+100:node=0,factor=4",
		"degrade@0+50:node=5,port=1,factor=2",
		"stutter@1+2:node=0;rand:events=3,seed=7,horizon=500",
		"none",
	} {
		p, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", p.String(), err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Errorf("round trip of %q lost information: %+v vs %+v", s, p, p2)
		}
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	p, err := Parse("stutter@9+1:node=2;rand:events=16,seed=99,horizon=5000")
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Materialize(24, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Materialize(24, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same plan materialized differently across calls")
	}
	if len(a) != 17 {
		t.Fatalf("%d events, want 17", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Start > a[i].Start {
			t.Fatalf("schedule not sorted: %v before %v", a[i-1], a[i])
		}
	}
	for _, e := range a {
		if err := e.Validate(24, 4); err != nil {
			t.Errorf("generated event invalid: %v", err)
		}
	}
	// A different seed must give a different schedule.
	p.Gen.Seed = 100
	c, err := p.Materialize(24, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestMaterializeValidates(t *testing.T) {
	p := &Plan{Events: []Event{{Kind: LinkStutter, Node: 99, Start: 0, Duration: 1}}}
	if _, err := p.Materialize(4, 1); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range node accepted: %v", err)
	}
	p = &Plan{Events: []Event{{Kind: PortDegrade, Node: 0, Port: 7, Start: 0, Duration: 1, Factor: 2}}}
	if _, err := p.Materialize(4, 4); err == nil || !strings.Contains(err.Error(), "port") {
		t.Fatalf("out-of-range port accepted: %v", err)
	}
	p = &Plan{Events: []Event{{Kind: NodeSlowdown, Node: 0, Start: 0, Duration: 5, Factor: 1}}}
	if _, err := p.Materialize(4, 1); err == nil || !strings.Contains(err.Error(), "factor") {
		t.Fatalf("factor 1 accepted: %v", err)
	}
}

func TestEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Fatal("nil plan should be empty")
	}
	if !(&Plan{}).Empty() {
		t.Fatal("zero plan should be empty")
	}
	if (&Plan{Events: []Event{{Kind: LinkStutter, Node: 0, Duration: 1}}}).Empty() {
		t.Fatal("plan with events should not be empty")
	}
	if (&Plan{Gen: &GenSpec{Events: 2, Horizon: 10}}).Empty() {
		t.Fatal("plan with generator should not be empty")
	}
	ev, err := nilPlan.Materialize(4, 1)
	if err != nil || len(ev) != 0 {
		t.Fatalf("nil plan materialize = %v, %v", ev, err)
	}
}
