package fault

import "ringmesh/internal/metrics"

// Scheduled is one materialized event bound to its model-specific
// application (set a station's fault state, degrade a router port).
type Scheduled struct {
	// At is the engine tick the event fires (already scaled by the
	// model's ticks-per-cycle factor).
	At int64
	// Apply installs the fault on its target.
	Apply func()
}

// Driver walks a sorted fault schedule with an O(1)-amortized cursor.
// Models call Step at the top of their compute phase; a run whose
// schedule is exhausted (or empty) pays one pointer-nil check per
// tick, preserving the zero-cost-when-disabled contract.
type Driver struct {
	sched  []Scheduled
	cursor int
	// Counter, when attached (metrics enabled), counts applied events
	// as fault_events_total. Nil-safe.
	Counter *metrics.Counter
}

// NewDriver wraps a schedule sorted by At (as Plan.Materialize
// returns it). Returns nil for an empty schedule so callers can keep
// a nil driver on the zero-fault path.
func NewDriver(sched []Scheduled) *Driver {
	if len(sched) == 0 {
		return nil
	}
	return &Driver{sched: sched}
}

// Step applies every event due at or before now.
func (d *Driver) Step(now int64) {
	for d.cursor < len(d.sched) && d.sched[d.cursor].At <= now {
		d.sched[d.cursor].Apply()
		d.Counter.Inc()
		d.cursor++
	}
}

// SlowFactor maps an event to the per-target slowdown state: 0 means
// the link is dead (LinkStutter), k >= 2 means act every k-th
// opportunity.
func SlowFactor(e Event) int64 {
	if e.Kind == LinkStutter {
		return 0
	}
	return int64(e.Factor)
}
