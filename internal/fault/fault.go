// Package fault defines the deterministic, seed-driven fault-injection
// subsystem: a Plan of scheduled degradation events that a network
// model applies to itself through the network.FaultInjector
// capability.
//
// The design constraints, in order:
//
//   - Determinism. A (plan, seed, topology) triple must reproduce the
//     exact same fault schedule on every run, on every machine, so
//     that a degraded-mode result is as repeatable as a fault-free
//     one. Random generation therefore uses the simulator's own
//     SplitMix64 streams (internal/rng), never math/rand or time.
//   - Zero cost when disabled. A nil or empty plan must leave the
//     models' hot paths bit-identical to a build without the
//     subsystem; golden_test.go enforces this. Models achieve it by
//     holding a nil fault pointer per station/router and a sorted
//     schedule consumed by an O(1)-amortized cursor.
//   - Model independence. Events speak in (node, port, cycle) terms;
//     each model maps them onto its own structures (ring stations,
//     slotted stations, mesh router output ports) in ApplyFaultPlan.
//
// Times are PM clock cycles; models clocked faster than the PMs scale
// them by their ticks-per-cycle factor when materializing.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"ringmesh/internal/rng"
)

// Kind classifies a fault event.
type Kind uint8

const (
	// LinkStutter kills a node's output link outright for the event's
	// duration: no flit (or slot operation) crosses it. Models a
	// transient link outage / retrain.
	LinkStutter Kind = iota
	// NodeSlowdown lets a node act only every Factor-th opportunity
	// for the duration: a NIC/IRI (or whole router) running degraded.
	NodeSlowdown
	// PortDegrade is NodeSlowdown confined to one output port —
	// meaningful on the mesh (ports 0..3 are the four neighbour
	// directions); ring stations have a single output, so it behaves
	// like NodeSlowdown there.
	PortDegrade
	numKinds
)

// String names the kind in the DSL's vocabulary.
func (k Kind) String() string {
	switch k {
	case LinkStutter:
		return "stutter"
	case NodeSlowdown:
		return "slowdown"
	case PortDegrade:
		return "degrade"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// parseKind inverts String.
func parseKind(s string) (Kind, error) {
	switch s {
	case "stutter":
		return LinkStutter, nil
	case "slowdown":
		return NodeSlowdown, nil
	case "degrade":
		return PortDegrade, nil
	default:
		return 0, fmt.Errorf("fault: unknown kind %q (want stutter, slowdown or degrade)", s)
	}
}

// Event is one scheduled fault.
type Event struct {
	// Kind selects the degradation mode.
	Kind Kind
	// Node is the model-specific target index: a station index for the
	// ring family (see the model's station ordering), a router id for
	// the mesh.
	Node int
	// Port is the output port for PortDegrade (mesh: 0..3, the four
	// neighbour directions); ignored by the other kinds.
	Port int
	// Start is the PM clock cycle the fault begins.
	Start int64
	// Duration is how many PM cycles it lasts (> 0).
	Duration int64
	// Factor is the slowdown divisor for NodeSlowdown/PortDegrade:
	// the target acts once every Factor opportunities (>= 2).
	Factor int
}

// End returns the first cycle the fault is no longer active.
func (e Event) End() int64 { return e.Start + e.Duration }

// slowsDown reports whether the kind uses Factor.
func (e Event) slowsDown() bool { return e.Kind == NodeSlowdown || e.Kind == PortDegrade }

// Validate checks the event against a model with nodes fault targets
// and ports output ports per target.
func (e Event) Validate(nodes, ports int) error {
	if e.Kind >= numKinds {
		return fmt.Errorf("fault: event %s: unknown kind", e)
	}
	if e.Node < 0 || e.Node >= nodes {
		return fmt.Errorf("fault: event %s: node %d out of range [0,%d)", e, e.Node, nodes)
	}
	if e.Kind == PortDegrade && (e.Port < 0 || e.Port >= ports) {
		return fmt.Errorf("fault: event %s: port %d out of range [0,%d)", e, e.Port, ports)
	}
	if e.Start < 0 {
		return fmt.Errorf("fault: event %s: negative start", e)
	}
	if e.Duration <= 0 {
		return fmt.Errorf("fault: event %s: duration must be > 0", e)
	}
	if e.slowsDown() && e.Factor < 2 {
		return fmt.Errorf("fault: event %s: slowdown factor must be >= 2", e)
	}
	return nil
}

// String renders the event in the Parse DSL, round-trippable.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%d+%d:node=%d", e.Kind, e.Start, e.Duration, e.Node)
	if e.Kind == PortDegrade {
		fmt.Fprintf(&b, ",port=%d", e.Port)
	}
	if e.slowsDown() {
		fmt.Fprintf(&b, ",factor=%d", e.Factor)
	}
	return b.String()
}

// GenSpec asks for Events additional random faults, derived
// deterministically from Seed over the model's actual target count at
// Materialize time.
type GenSpec struct {
	// Seed drives the SplitMix64 stream the events are drawn from.
	Seed uint64
	// Events is how many faults to generate.
	Events int
	// Horizon bounds the start cycles: uniform in [0, Horizon).
	Horizon int64
	// MeanDuration centers the duration draw: uniform in
	// [1, 2*MeanDuration] (0 selects the default 64 cycles).
	MeanDuration int64
	// MaxFactor bounds slowdown factors: uniform in [2, MaxFactor]
	// (0 selects the default 4).
	MaxFactor int
}

// Validate checks the generation spec.
func (g GenSpec) Validate() error {
	if g.Events < 0 {
		return fmt.Errorf("fault: rand: events = %d", g.Events)
	}
	if g.Events > 0 && g.Horizon <= 0 {
		return fmt.Errorf("fault: rand: horizon must be > 0 to place %d events", g.Events)
	}
	if g.MeanDuration < 0 || g.MaxFactor < 0 || (g.MaxFactor > 0 && g.MaxFactor < 2) {
		return fmt.Errorf("fault: rand: bad mean-dur %d / max-factor %d", g.MeanDuration, g.MaxFactor)
	}
	return nil
}

// generate draws the spec's events for a model with nodes targets and
// ports output ports each. Deterministic in (spec, nodes, ports).
func (g GenSpec) generate(nodes, ports int) []Event {
	meanDur := g.MeanDuration
	if meanDur == 0 {
		meanDur = 64
	}
	maxFactor := g.MaxFactor
	if maxFactor == 0 {
		maxFactor = 4
	}
	src := rng.New(g.Seed)
	out := make([]Event, 0, g.Events)
	for i := 0; i < g.Events; i++ {
		e := Event{
			Kind:     Kind(src.Intn(int(numKinds))),
			Node:     src.Intn(nodes),
			Start:    int64(src.Intn(int(g.Horizon))),
			Duration: 1 + int64(src.Intn(int(2*meanDur))),
		}
		if e.Kind == PortDegrade {
			e.Port = src.Intn(ports)
		}
		if e.slowsDown() {
			e.Factor = 2 + src.Intn(maxFactor-1)
		}
		out = append(out, e)
	}
	return out
}

// Plan is a fault schedule: explicit events, plus optionally a
// seed-driven generator resolved against the concrete model at
// Materialize time.
type Plan struct {
	// Events are the explicitly scheduled faults.
	Events []Event
	// Gen, when non-nil, adds deterministically generated faults.
	Gen *GenSpec
}

// Empty reports whether the plan schedules nothing (nil-safe). An
// empty plan still exercises the injection capability — and must be
// observationally free (golden tests enforce bit-identical results).
func (p *Plan) Empty() bool {
	return p == nil || (len(p.Events) == 0 && (p.Gen == nil || p.Gen.Events == 0))
}

// Materialize resolves the plan against a model with nodes fault
// targets and ports output ports per target: validates explicit
// events, draws the generated ones, and returns the union sorted by
// start cycle (ties keep explicit-then-generated order). Repeated
// calls with the same arguments return identical schedules.
func (p *Plan) Materialize(nodes, ports int) ([]Event, error) {
	if p == nil {
		return nil, nil
	}
	if nodes <= 0 || ports <= 0 {
		return nil, fmt.Errorf("fault: materialize over %d nodes / %d ports", nodes, ports)
	}
	out := make([]Event, 0, len(p.Events))
	for _, e := range p.Events {
		if err := e.Validate(nodes, ports); err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	if p.Gen != nil {
		if err := p.Gen.Validate(); err != nil {
			return nil, err
		}
		for _, e := range p.Gen.generate(nodes, ports) {
			if err := e.Validate(nodes, ports); err != nil {
				return nil, fmt.Errorf("fault: generated event invalid: %w", err)
			}
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out, nil
}

// String renders the plan in the Parse DSL.
func (p *Plan) String() string {
	if p.Empty() {
		return "none"
	}
	parts := make([]string, 0, len(p.Events)+1)
	for _, e := range p.Events {
		parts = append(parts, e.String())
	}
	if p.Gen != nil && p.Gen.Events > 0 {
		g := p.Gen
		s := fmt.Sprintf("rand:events=%d,seed=%d,horizon=%d", g.Events, g.Seed, g.Horizon)
		if g.MeanDuration != 0 {
			s += fmt.Sprintf(",mean-dur=%d", g.MeanDuration)
		}
		if g.MaxFactor != 0 {
			s += fmt.Sprintf(",max-factor=%d", g.MaxFactor)
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ";")
}

// Parse reads the fault-plan DSL (the -fault-plan flag syntax):
//
//	plan  := item (';' item)*
//	item  := event | rand | "none"
//	event := kind '@' start '+' duration [':' kv (',' kv)*]
//	kind  := "stutter" | "slowdown" | "degrade"
//	kv    := ("node" | "port" | "factor") '=' int
//	rand  := "rand:" kv (',' kv)*   with keys events, seed, horizon,
//	                                mean-dur, max-factor
//
// Examples:
//
//	stutter@1000+200:node=3
//	slowdown@500+1000:node=0,factor=4;degrade@0+300:node=5,port=1,factor=2
//	rand:events=8,seed=42,horizon=10000
//	none                               (exercise the subsystem, no faults)
//
// "none" yields an empty, non-nil plan: the injection path runs but
// schedules nothing, which golden tests pin as bit-identical to a
// fault-free run.
func Parse(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, fmt.Errorf("fault: empty plan (use \"none\" for an explicit no-fault plan)")
	}
	p := &Plan{}
	for _, item := range strings.Split(s, ";") {
		item = strings.TrimSpace(item)
		switch {
		case item == "" || item == "none":
			// keep the plan non-nil but schedule nothing
		case strings.HasPrefix(item, "rand:"):
			if p.Gen != nil {
				return nil, fmt.Errorf("fault: multiple rand: items in one plan")
			}
			g, err := parseGen(strings.TrimPrefix(item, "rand:"))
			if err != nil {
				return nil, err
			}
			p.Gen = g
		default:
			e, err := parseEvent(item)
			if err != nil {
				return nil, err
			}
			p.Events = append(p.Events, e)
		}
	}
	return p, nil
}

// parseEvent reads one "kind@start+dur[:k=v,...]" item.
func parseEvent(item string) (Event, error) {
	head, kvs, _ := strings.Cut(item, ":")
	kindStr, when, ok := strings.Cut(head, "@")
	if !ok {
		return Event{}, fmt.Errorf("fault: event %q: want kind@start+duration", item)
	}
	kind, err := parseKind(strings.TrimSpace(kindStr))
	if err != nil {
		return Event{}, err
	}
	startStr, durStr, ok := strings.Cut(when, "+")
	if !ok {
		return Event{}, fmt.Errorf("fault: event %q: want start+duration after @", item)
	}
	start, err1 := strconv.ParseInt(strings.TrimSpace(startStr), 10, 64)
	dur, err2 := strconv.ParseInt(strings.TrimSpace(durStr), 10, 64)
	if err1 != nil || err2 != nil {
		return Event{}, fmt.Errorf("fault: event %q: bad start/duration", item)
	}
	e := Event{Kind: kind, Start: start, Duration: dur, Node: -1}
	if kvs != "" {
		for _, kv := range strings.Split(kvs, ",") {
			key, valStr, ok := strings.Cut(kv, "=")
			if !ok {
				return Event{}, fmt.Errorf("fault: event %q: bad key=value %q", item, kv)
			}
			val, err := strconv.Atoi(strings.TrimSpace(valStr))
			if err != nil {
				return Event{}, fmt.Errorf("fault: event %q: %q is not an integer", item, valStr)
			}
			switch strings.TrimSpace(key) {
			case "node":
				e.Node = val
			case "port":
				e.Port = val
			case "factor":
				e.Factor = val
			default:
				return Event{}, fmt.Errorf("fault: event %q: unknown key %q", item, key)
			}
		}
	}
	if e.Node < 0 {
		return Event{}, fmt.Errorf("fault: event %q: missing node=", item)
	}
	if e.slowsDown() && e.Factor == 0 {
		e.Factor = 2
	}
	return e, nil
}

// parseGen reads the "rand:" item's key=value list.
func parseGen(kvs string) (*GenSpec, error) {
	g := &GenSpec{}
	for _, kv := range strings.Split(kvs, ",") {
		key, valStr, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("fault: rand: bad key=value %q", kv)
		}
		val, err := strconv.ParseInt(strings.TrimSpace(valStr), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: rand: %q is not an integer", valStr)
		}
		switch strings.TrimSpace(key) {
		case "events":
			g.Events = int(val)
		case "seed":
			g.Seed = uint64(val)
		case "horizon":
			g.Horizon = val
		case "mean-dur":
			g.MeanDuration = val
		case "max-factor":
			g.MaxFactor = int(val)
		default:
			return nil, fmt.Errorf("fault: rand: unknown key %q", key)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.Events == 0 {
		return nil, fmt.Errorf("fault: rand: missing events=")
	}
	return g, nil
}
