package fault

import (
	"testing"
)

// FuzzParse holds the plan-DSL parser to its contract: arbitrary input
// must produce a plan or an error — never a panic — and any accepted
// plan must re-parse from its own String() to the same normal form
// (String is the -fault-plan flag's round-trip format).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"none",
		"",
		";;",
		"stutter@1000+200:node=3",
		"slowdown@500+1000:node=0,factor=4",
		"degrade@0+300:node=5,port=1,factor=2",
		"stutter@1+2:node=0;slowdown@3+4:node=1;none",
		"rand:events=8,seed=42,horizon=10000",
		"rand:events=2,seed=7,horizon=100,mean-dur=5,max-factor=3",
		"stutter@-5+-7:node=-1",
		"slowdown@9223372036854775807+1:node=2",
		"stutter@1+2:node=0,node=1,factor=0",
		"rand:events=0,seed=0,horizon=0",
		"bogus@1+2:node=0",
		"stutter@@+:node",
		"rand:rand:rand",
		"stutter@1+2:node=0;rand:events=1,seed=1,horizon=9;rand:events=2,seed=2,horizon=9",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := Parse(input) // must never panic
		if err != nil {
			return
		}
		if p == nil {
			t.Fatalf("Parse(%q) = nil plan, nil error", input)
		}
		// Accepted plans normalize: String() re-parses to itself.
		norm := p.String()
		p2, err := Parse(norm)
		if err != nil {
			t.Fatalf("Parse(%q) ok but its String %q does not re-parse: %v", input, norm, err)
		}
		if got := p2.String(); got != norm {
			t.Fatalf("String round-trip unstable: %q -> %q -> %q", input, norm, got)
		}
	})
}
