package mesh

import (
	"testing"
	"testing/quick"

	"ringmesh/internal/packet"
	"ringmesh/internal/rng"
	"ringmesh/internal/topo"
)

// Property: under arbitrary random traffic on arbitrary small meshes
// and buffer depths, the network delivers every packet exactly once,
// preserves per-(src,dst,class) order, keeps buffer invariants, and
// drains completely (e-cube is deadlock-free).
func TestQuickRandomTrafficConservation(t *testing.T) {
	f := func(seed uint64, kRaw, bufRaw, nPkts uint8) bool {
		k := int(kRaw%3) + 2 // 2..4
		bufs := []int{1, 2, 4, 0}
		buf := bufs[int(bufRaw)%len(bufs)]
		lines := []int{16, 32, 64, 128}
		line := lines[int(seed%uint64(len(lines)))]
		spec := topo.MustMeshSpec(k)
		h := newHarness(t, Config{Spec: spec, LineBytes: line, BufferFlits: buf})
		r := rng.New(seed)
		total := int(nPkts%30) + 1
		type key struct {
			src, dst int
			resp     bool
		}
		order := map[key][]uint64{}
		for i := 0; i < total; i++ {
			src := r.Intn(spec.PMs())
			dst := r.Intn(spec.PMs())
			var typ packet.Type
			switch r.Intn(4) {
			case 0:
				typ = packet.ReadRequest
			case 1:
				typ = packet.ReadResponse
			case 2:
				typ = packet.WriteRequest
			default:
				typ = packet.WriteResponse
			}
			p := &packet.Packet{
				ID: uint64(i + 1), Type: typ, Src: src, Dst: dst,
				Flits: packet.MeshSizing.PacketFlits(typ, line),
			}
			if typ.IsResponse() {
				h.pms[src].pendResp = append(h.pms[src].pendResp, p)
			} else {
				h.pms[src].pendReq = append(h.pms[src].pendReq, p)
			}
			kk := key{src, dst, typ.IsResponse()}
			order[kk] = append(order[kk], p.ID)
		}
		for tick := 0; tick < 40000; tick++ {
			h.engine.Step()
			if h.net.CheckInvariants() != nil {
				return false
			}
			done := 0
			for _, pm := range h.pms {
				done += len(pm.delivered)
			}
			if done == total && h.net.BufferedFlits() == 0 {
				break
			}
		}
		seen := map[uint64]bool{}
		got := 0
		for id, pm := range h.pms {
			for _, p := range pm.delivered {
				if p.Dst != id || seen[p.ID] {
					return false
				}
				seen[p.ID] = true
				got++
			}
		}
		if got != total {
			return false
		}
		pos := map[uint64]int{}
		for _, pm := range h.pms {
			for i, p := range pm.delivered {
				pos[p.ID] = i
			}
		}
		for _, ids := range order {
			for i := 1; i < len(ids); i++ {
				if pos[ids[i]] < pos[ids[i-1]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Exhaustive connectivity on a 4x4 mesh with 1-flit buffers (the
// harshest configuration).
func TestExhaustiveConnectivityOneFlit(t *testing.T) {
	spec := topo.MustMeshSpec(4)
	for src := 0; src < spec.PMs(); src++ {
		h := newHarness(t, Config{Spec: spec, LineBytes: 32, BufferFlits: 1})
		for dst := 0; dst < spec.PMs(); dst++ {
			if dst == src {
				continue
			}
			p := &packet.Packet{ID: uint64(dst + 1), Type: packet.ReadRequest,
				Src: src, Dst: dst,
				Flits: packet.MeshSizing.PacketFlits(packet.ReadRequest, 32)}
			h.pms[src].pendReq = append(h.pms[src].pendReq, p)
		}
		h.run(t, 3000)
		for dst := 0; dst < spec.PMs(); dst++ {
			if dst == src {
				continue
			}
			if len(h.pms[dst].delivered) != 1 {
				t.Fatalf("%d -> %d: delivered %d", src, dst, len(h.pms[dst].delivered))
			}
		}
	}
}
