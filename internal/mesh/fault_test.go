package mesh

// Fault-injection behaviour tests at the model level: a dead router
// really stops forwarding (and recovers on schedule), a slowdown
// really delays delivery, and the stall report names the faulted
// router when the watchdog would trip.

import (
	"strings"
	"testing"

	"ringmesh/internal/fault"
	"ringmesh/internal/packet"
	"ringmesh/internal/topo"
)

func mustPlan(t *testing.T, s string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// A dead router (LinkStutter kills all four neighbour outputs) stops
// forwarding for exactly its scheduled window, then the parked packet
// crosses normally.
func TestLinkStutterBlocksForwardingThenRecovers(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustMeshSpec(2), LineBytes: 32, BufferFlits: 4})
	if err := h.net.ApplyFaultPlan(mustPlan(t, "stutter@0+40:node=0")); err != nil {
		t.Fatal(err)
	}
	p := mkPkt(1, packet.ReadRequest, 0, 1, 32)
	h.pms[0].pendReq = append(h.pms[0].pendReq, p)
	h.run(t, 39)
	if len(h.pms[1].delivered) != 0 {
		t.Fatalf("packet crossed a dead router (delivered at %v)", h.pms[1].deliverAt)
	}
	h.run(t, 21)
	if len(h.pms[1].delivered) != 1 {
		t.Fatal("packet not delivered after the fault expired")
	}
	if at := h.pms[1].deliverAt[0]; at <= 40 {
		t.Fatalf("delivered at %d, inside the fault window", at)
	}
}

// NodeSlowdown with factor k must stretch a zero-load delivery: the
// router acts only every k-th cycle, so the unfaulted tick-6 delivery
// (see TestNeighborDelivery) happens strictly later.
func TestNodeSlowdownDelaysDelivery(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustMeshSpec(2), LineBytes: 32, BufferFlits: 4})
	if err := h.net.ApplyFaultPlan(mustPlan(t, "slowdown@0+1000:node=0,factor=4")); err != nil {
		t.Fatal(err)
	}
	p := mkPkt(1, packet.ReadRequest, 0, 1, 32)
	h.pms[0].pendReq = append(h.pms[0].pendReq, p)
	h.run(t, 100)
	if len(h.pms[1].delivered) != 1 {
		t.Fatal("slowed packet never delivered")
	}
	if at := h.pms[1].deliverAt[0]; at <= 6 {
		t.Fatalf("delivered at %d despite 4x slowdown (unfaulted: 6)", at)
	}
}

// A permanently dead router with traffic parked at it must show up in
// the stall report: an active fault, a self-edge wait cycle on the
// router, and the parked packet among the oldest.
func TestStallReportNamesFaultedRouter(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustMeshSpec(2), LineBytes: 32, BufferFlits: 4})
	if err := h.net.ApplyFaultPlan(mustPlan(t, "stutter@0+100000:node=0")); err != nil {
		t.Fatal(err)
	}
	p := mkPkt(1, packet.ReadRequest, 0, 1, 32)
	h.pms[0].pendReq = append(h.pms[0].pendReq, p)
	h.run(t, 50)
	rep := h.net.BuildStallReport(50)
	if len(rep.ActiveFaults) == 0 {
		t.Fatal("report lists no active fault")
	}
	selfEdge := false
	for _, e := range rep.WaitFor {
		if e.From == "router0" && e.To == "router0" && strings.Contains(e.Why, "faulted") {
			selfEdge = true
		}
	}
	if !selfEdge {
		t.Fatalf("no self-edge on the dead router: %+v", rep.WaitFor)
	}
	cycleNamed := false
	for _, cyc := range rep.Cycles {
		if len(cyc) == 1 && cyc[0] == "router0" {
			cycleNamed = true
		}
	}
	if !cycleNamed {
		t.Fatalf("cycles %v do not name router0", rep.Cycles)
	}
	if len(rep.Oldest) == 0 {
		t.Fatal("parked packet missing from the oldest list")
	}
}

func TestApplyFaultPlanValidates(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustMeshSpec(2), LineBytes: 32, BufferFlits: 4})
	if err := h.net.ApplyFaultPlan(mustPlan(t, "stutter@0+10:node=99")); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := h.net.ApplyFaultPlan(mustPlan(t, "degrade@0+10:node=0,port=7,factor=2")); err == nil {
		t.Fatal("out-of-range port accepted")
	}
}
