package mesh

// Fault injection and stall forensics for the mesh model
// (network.FaultInjector and network.StallReporter). Event node
// indices are router ids (row-major, same as PM ids); event times are
// PM cycles, which equal engine ticks for the mesh.
//
// Fault semantics, per event kind:
//
//   - LinkStutter (factor 0): all four neighbour output ports die —
//     the router forwards nothing while local ejection keeps working,
//     so delivered packets still drain.
//   - NodeSlowdown (factor k >= 2): every output port, including
//     ejection, acts only on every k-th cycle.
//   - PortDegrade: only the named neighbour output port (Port indexes
//     topo.Direction: 0 north, 1 south, 2 east, 3 west) is degraded —
//     dead when Factor resolves to 0, otherwise slowed.
//
// PM injection into the local input FIFO is not gated: a fault models
// the router's switching fabric and links, not the PM, and injection
// self-limits once the local FIFO fills.
//
// Overlapping events on one router merge per port, later start times
// overwriting earlier ones. Expired state self-clears at the next
// compute, returning the router to a single nil check.

import (
	"fmt"

	"ringmesh/internal/fault"
	"ringmesh/internal/packet"
	"ringmesh/internal/sim"
	"ringmesh/internal/topo"
)

// neighbourPorts is the number of fault-addressable output ports per
// router (the four directions; Local is only affected by NodeSlowdown).
const neighbourPorts = int(topo.Local)

// rtrFault is one router's installed per-port fault state.
type rtrFault struct {
	until  [topo.NumPorts]int64 // first tick port is healthy again
	factor [topo.NumPorts]int64 // 0 = dead; k >= 2 = act every k-th cycle
	// maxUntil is the last until across ports; once now passes it the
	// whole struct is dropped.
	maxUntil int64
}

// blocked reports whether output o is suppressed this cycle.
func (f *rtrFault) blocked(o topo.Direction, now int64) bool {
	if now >= f.until[o] {
		return false
	}
	if f.factor[o] == 0 {
		return true
	}
	return now%f.factor[o] != 0
}

// ports returns the output ports an event touches.
func faultPorts(ev fault.Event) []topo.Direction {
	switch ev.Kind {
	case fault.LinkStutter:
		return []topo.Direction{topo.North, topo.South, topo.East, topo.West}
	case fault.PortDegrade:
		return []topo.Direction{topo.Direction(ev.Port)}
	default: // NodeSlowdown: the whole crossbar, ejection included
		return []topo.Direction{topo.North, topo.South, topo.East, topo.West, topo.Local}
	}
}

// ApplyFaultPlan implements network.FaultInjector. Call once, after
// construction and before the first tick.
func (n *Network) ApplyFaultPlan(p *fault.Plan) error {
	events, err := p.Materialize(len(n.routers), neighbourPorts)
	if err != nil {
		return err
	}
	sched := make([]fault.Scheduled, 0, len(events))
	for _, ev := range events {
		r := n.routers[ev.Node]
		ports := faultPorts(ev)
		until, factor := ev.End(), fault.SlowFactor(ev)
		sched = append(sched, fault.Scheduled{
			At: ev.Start,
			Apply: func() {
				if r.flt == nil {
					r.flt = &rtrFault{}
				}
				for _, o := range ports {
					r.flt.until[o] = until
					r.flt.factor[o] = factor
				}
				if until > r.flt.maxUntil {
					r.flt.maxUntil = until
				}
			},
		})
	}
	n.faults = fault.NewDriver(sched)
	return nil
}

// BuildStallReport implements network.StallReporter. E-cube routing
// on a mesh is deadlock-free, so a watchdog trip here means either a
// fault pinned traffic (dead ports show up as self-loop cycles) or a
// flow-control bug; either way the wait-for graph names the culprit.
func (n *Network) BuildStallReport(now int64) *sim.StallReport {
	rep := &sim.StallReport{BufferedFlits: n.BufferedFlits()}
	rname := func(id int) string { return fmt.Sprintf("router%d", id) }

	seen := map[*packet.Packet]bool{}
	addPkt := func(p *packet.Packet, where string) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		rep.Oldest = append(rep.Oldest, sim.StuckPacket{
			ID: p.ID, Type: p.Type.String(), Src: p.Src, Dst: p.Dst,
			AgeTicks: now - p.Issue, Where: where,
		})
	}

	for _, r := range n.routers {
		buffered := 0
		for i := topo.Direction(0); i < topo.NumPorts; i++ {
			buffered += r.inputs[i].Len()
			r.inputs[i].EachPacket(func(p *packet.Packet) { addPkt(p, rname(r.id)) })
		}
		if r.injPkt != nil {
			addPkt(r.injPkt, rname(r.id)+".inj")
		}
		if buffered > 0 {
			rep.Buffers = append(rep.Buffers, sim.BufferStat{
				Node: rname(r.id), Flits: buffered,
				Capacity: int(topo.NumPorts) * n.cfg.bufferFlits(),
			})
		}
		if r.flt != nil {
			for o := topo.Direction(0); o < topo.NumPorts; o++ {
				if now >= r.flt.until[o] {
					continue
				}
				if r.flt.factor[o] == 0 {
					rep.ActiveFaults = append(rep.ActiveFaults,
						fmt.Sprintf("%s %s: output dead until tick %d", rname(r.id), o, r.flt.until[o]))
				} else {
					rep.ActiveFaults = append(rep.ActiveFaults,
						fmt.Sprintf("%s %s: slowed x%d until tick %d", rname(r.id), o, r.flt.factor[o], r.flt.until[o]))
				}
			}
		}
		for o := topo.Direction(0); o < topo.NumPorts; o++ {
			in, f, ok := n.pickMove(r, o)
			if !ok {
				// A locked worm whose next flit has not arrived waits
				// on the upstream router feeding that input.
				if r.outLock[o] != nil && r.outLockIn[o] != topo.Local {
					if up := n.cfg.Spec.Neighbor(r.id, r.outLockIn[o]); up >= 0 {
						rep.WaitFor = append(rep.WaitFor, sim.WaitEdge{
							From: rname(r.id), To: rname(up),
							Why: fmt.Sprintf("committed worm on %s output, flits still upstream", o),
						})
					}
				}
				continue
			}
			_ = in
			if r.flt != nil && now < r.flt.until[o] && r.flt.factor[o] == 0 {
				rep.WaitFor = append(rep.WaitFor, sim.WaitEdge{
					From: rname(r.id), To: rname(r.id),
					Why: fmt.Sprintf("%s output port faulted", o),
				})
				continue
			}
			if o == topo.Local {
				continue // ejection always succeeds
			}
			nb := n.cfg.Spec.Neighbor(r.id, o)
			if nb >= 0 && n.routers[nb].inputs[o.Opposite()].Space() < 1 {
				rep.WaitFor = append(rep.WaitFor, sim.WaitEdge{
					From: rname(r.id), To: rname(nb),
					Why: fmt.Sprintf("%s carrying %s: downstream input full", o, f.Pkt),
				})
			}
		}
	}

	rep.Cycles = sim.DetectCycles(rep.WaitFor)
	rep.Oldest = sim.SortOldest(rep.Oldest, 5)
	return rep
}
