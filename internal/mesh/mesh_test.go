package mesh

import (
	"testing"

	"ringmesh/internal/packet"
	"ringmesh/internal/sim"
	"ringmesh/internal/topo"
)

type fakePM struct {
	pendReq   []*packet.Packet
	pendResp  []*packet.Packet
	delivered []*packet.Packet
	deliverAt []int64
}

func (f *fakePM) PendingResponse() (*packet.Packet, bool) {
	if len(f.pendResp) == 0 {
		return nil, false
	}
	return f.pendResp[0], true
}
func (f *fakePM) PopPendingResponse() *packet.Packet {
	p := f.pendResp[0]
	f.pendResp = f.pendResp[1:]
	return p
}
func (f *fakePM) PendingRequest() (*packet.Packet, bool) {
	if len(f.pendReq) == 0 {
		return nil, false
	}
	return f.pendReq[0], true
}
func (f *fakePM) PopPendingRequest() *packet.Packet {
	p := f.pendReq[0]
	f.pendReq = f.pendReq[1:]
	return p
}
func (f *fakePM) Deliver(p *packet.Packet, now int64) {
	f.delivered = append(f.delivered, p)
	f.deliverAt = append(f.deliverAt, now)
}

type harness struct {
	engine *sim.Engine
	net    *Network
	pms    []*fakePM
	spec   topo.MeshSpec
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	engine := &sim.Engine{}
	pms := make([]*fakePM, cfg.Spec.PMs())
	ports := make([]PMPort, len(pms))
	for i := range pms {
		pms[i] = &fakePM{}
		ports[i] = pms[i]
	}
	net, err := New(cfg, ports, engine)
	if err != nil {
		t.Fatal(err)
	}
	engine.Register(net, 1)
	return &harness{engine: engine, net: net, pms: pms, spec: cfg.Spec}
}

func (h *harness) run(t *testing.T, ticks int) {
	t.Helper()
	for i := 0; i < ticks; i++ {
		h.engine.Step()
		if err := h.net.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func mkPkt(id uint64, typ packet.Type, src, dst, lineBytes int) *packet.Packet {
	return &packet.Packet{
		ID: id, Type: typ, Src: src, Dst: dst,
		Flits: packet.MeshSizing.PacketFlits(typ, lineBytes),
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Spec: topo.MustMeshSpec(3), LineBytes: 32, BufferFlits: 4}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Spec: topo.MeshSpec{K: 0}, LineBytes: 32},
		{Spec: topo.MustMeshSpec(3), LineBytes: 0},
		{Spec: topo.MustMeshSpec(3), LineBytes: 32, BufferFlits: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestBufferDepthResolution(t *testing.T) {
	c := Config{Spec: topo.MustMeshSpec(2), LineBytes: 64, BufferFlits: 0}
	if c.bufferFlits() != 20 { // cl for 64B mesh lines
		t.Fatalf("cl depth = %d, want 20", c.bufferFlits())
	}
	c.BufferFlits = 4
	if c.bufferFlits() != 4 {
		t.Fatalf("explicit depth = %d", c.bufferFlits())
	}
}

func TestNewRejectsWrongPMCount(t *testing.T) {
	engine := &sim.Engine{}
	if _, err := New(Config{Spec: topo.MustMeshSpec(2), LineBytes: 32},
		make([]PMPort, 3), engine); err == nil {
		t.Fatal("wrong PM count accepted")
	}
}

// One request to a neighbour: injection streams flits into the local
// FIFO, the router forwards, the far router ejects on tail.
func TestNeighborDelivery(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustMeshSpec(2), LineBytes: 32, BufferFlits: 4})
	p := mkPkt(1, packet.ReadRequest, 0, 1, 32) // 4 flits
	h.pms[0].pendReq = append(h.pms[0].pendReq, p)
	h.run(t, 30)
	if len(h.pms[1].delivered) != 1 {
		t.Fatal("packet not delivered")
	}
	// Pipeline: reload at commit 0, inject flits at ticks 1..4, hop
	// at 2..5, eject at 3..6 → tail at tick 6.
	if got := h.pms[1].deliverAt[0]; got != 6 {
		t.Fatalf("delivered at %d, want 6", got)
	}
}

// Zero-load delivery across the diagonal follows the e-cube distance:
// injection starts at tick 1, the tail flit enters the network
// flits-1 cycles later, crosses hops links, and is ejected one cycle
// after reaching the destination router: tail delivery =
// 1 + hops + flits.
func TestZeroLoadLatencyMatchesHops(t *testing.T) {
	spec := topo.MustMeshSpec(4)
	for _, c := range []struct{ src, dst int }{{0, 15}, {3, 12}, {5, 6}, {1, 13}} {
		h := newHarness(t, Config{Spec: spec, LineBytes: 32, BufferFlits: 4})
		p := mkPkt(1, packet.WriteRequest, c.src, c.dst, 32) // 12 flits
		h.pms[c.src].pendReq = append(h.pms[c.src].pendReq, p)
		h.run(t, 100)
		if len(h.pms[c.dst].delivered) != 1 {
			t.Fatalf("%d->%d not delivered", c.src, c.dst)
		}
		want := int64(1 + spec.HopDistance(c.src, c.dst) + p.Flits)
		if got := h.pms[c.dst].deliverAt[0]; got != want {
			t.Fatalf("%d->%d delivered at %d, want %d", c.src, c.dst, got, want)
		}
	}
}

// Self-addressed packets eject locally without touching mesh links.
func TestLocalLoopback(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustMeshSpec(2), LineBytes: 32, BufferFlits: 4})
	p := mkPkt(1, packet.ReadRequest, 0, 0, 32)
	h.pms[0].pendReq = append(h.pms[0].pendReq, p)
	h.run(t, 20)
	if len(h.pms[0].delivered) != 1 {
		t.Fatal("loopback packet not delivered")
	}
	if h.net.Utilization() != 0 {
		t.Fatal("loopback must not use inter-router links")
	}
}

// Wormhole: a long packet holds its path; a second packet sharing a
// link waits and both arrive intact.
func TestWormholeContention(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustMeshSpec(3), LineBytes: 128, BufferFlits: 4})
	// 0 -> 2 and 3 -> 2 share the link into router 2's column? Use
	// 0->2 (east,east) and 1->2 (east): both use link 1->2.
	h.pms[0].pendResp = append(h.pms[0].pendResp, mkPkt(1, packet.ReadResponse, 0, 2, 128)) // 36 flits
	h.pms[1].pendResp = append(h.pms[1].pendResp, mkPkt(2, packet.ReadResponse, 1, 2, 128))
	h.run(t, 300)
	if len(h.pms[2].delivered) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(h.pms[2].delivered))
	}
}

// 1-flit buffers still deliver correctly (heavier stalling).
func TestOneFlitBuffers(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustMeshSpec(3), LineBytes: 64, BufferFlits: 1})
	for i := 0; i < 4; i++ {
		h.pms[0].pendResp = append(h.pms[0].pendResp, mkPkt(uint64(1+i), packet.ReadResponse, 0, 8, 64))
	}
	h.run(t, 1000)
	if len(h.pms[8].delivered) != 4 {
		t.Fatalf("delivered %d packets, want 4", len(h.pms[8].delivered))
	}
}

// Responses are injected before requests.
func TestResponseInjectionPriority(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustMeshSpec(2), LineBytes: 32, BufferFlits: 4})
	h.pms[0].pendReq = append(h.pms[0].pendReq, mkPkt(1, packet.ReadRequest, 0, 1, 32))
	h.pms[0].pendResp = append(h.pms[0].pendResp, mkPkt(2, packet.ReadResponse, 0, 1, 32))
	h.run(t, 60)
	if len(h.pms[1].delivered) != 2 {
		t.Fatalf("delivered %d", len(h.pms[1].delivered))
	}
	if h.pms[1].delivered[0].ID != 2 {
		t.Fatal("response was not injected first")
	}
}

// Dimension-order routing: a packet from the north-west corner to the
// south-east corner must travel along the top row first (X), then
// down the last column (Y). We verify by checking link utilization is
// confined to those links.
func TestEcubePathShape(t *testing.T) {
	spec := topo.MustMeshSpec(3)
	h := newHarness(t, Config{Spec: spec, LineBytes: 16, BufferFlits: 4})
	h.pms[0].pendReq = append(h.pms[0].pendReq, mkPkt(1, packet.ReadRequest, 0, 8, 16))
	h.run(t, 50)
	if len(h.pms[8].delivered) != 1 {
		t.Fatal("not delivered")
	}
	// Routers on the e-cube path 0→1→2→5→8 must have sent flits;
	// others must not.
	onPath := map[int]bool{0: true, 1: true, 2: true, 5: true}
	for id, r := range h.net.routers {
		busy := false
		for o := topo.Direction(0); o < topo.NumPorts; o++ {
			if r.linkUtil[o].Value() > 0 {
				busy = true
			}
		}
		if onPath[id] && !busy {
			t.Fatalf("router %d on path shows no traffic", id)
		}
		if !onPath[id] && busy {
			t.Fatalf("router %d off path shows traffic", id)
		}
	}
}

// An all-to-all storm on a mesh with deep buffers drains completely
// (deterministic e-cube is deadlock-free).
func TestStormDrains(t *testing.T) {
	spec := topo.MustMeshSpec(4)
	h := newHarness(t, Config{Spec: spec, LineBytes: 32, BufferFlits: 4})
	id := uint64(1)
	total := 0
	for s := 0; s < spec.PMs(); s++ {
		for k := 1; k <= 5; k++ {
			d := (s*3 + k*7) % spec.PMs()
			if d == s {
				continue
			}
			h.pms[s].pendReq = append(h.pms[s].pendReq, mkPkt(id, packet.WriteRequest, s, d, 32))
			id++
			total++
		}
	}
	h.run(t, 5000)
	got := 0
	for _, pm := range h.pms {
		got += len(pm.delivered)
	}
	if got != total {
		t.Fatalf("delivered %d of %d", got, total)
	}
	if h.net.BufferedFlits() != 0 {
		t.Fatalf("%d flits left in buffers", h.net.BufferedFlits())
	}
}

// Round-robin arbitration: two inputs competing for one output share
// it over time — both streams complete even under sustained pressure.
func TestRoundRobinFairness(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustMeshSpec(3), LineBytes: 16, BufferFlits: 4})
	// Streams 0->5 (E,E,S?) no: 0=(0,0), 5=(2,1): E,E,S. 2->8? Use
	// targets that converge on router 4's east output: 3->5 and
	// PM 4 -> 5: both use router 4's east link.
	for i := 0; i < 6; i++ {
		h.pms[3].pendResp = append(h.pms[3].pendResp, mkPkt(uint64(100+i), packet.ReadResponse, 3, 5, 16))
		h.pms[4].pendResp = append(h.pms[4].pendResp, mkPkt(uint64(200+i), packet.ReadResponse, 4, 5, 16))
	}
	h.run(t, 1000)
	if len(h.pms[5].delivered) != 12 {
		t.Fatalf("delivered %d, want 12", len(h.pms[5].delivered))
	}
	// Neither stream finishes entirely before the other starts: find
	// positions of each stream's first delivery.
	first100, first200 := -1, -1
	for i, p := range h.pms[5].delivered {
		if p.ID >= 200 && first200 < 0 {
			first200 = i
		}
		if p.ID < 200 && first100 < 0 {
			first100 = i
		}
	}
	if first100 > 6 || first200 > 6 {
		t.Fatalf("arbitration starved a stream: first deliveries at %d/%d", first100, first200)
	}
}

// Utilization: a single 1-hop, 8-flit packet over t ticks gives
// 8 busy link-cycles at the sending router.
func TestUtilizationAccounting(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustMeshSpec(2), LineBytes: 16, BufferFlits: 8})
	h.pms[0].pendResp = append(h.pms[0].pendResp, mkPkt(1, packet.ReadResponse, 0, 1, 16)) // 8 flits
	h.run(t, 20)
	if len(h.pms[1].delivered) != 1 {
		t.Fatal("not delivered")
	}
	u := h.net.Utilization()
	// 8 busy cycles over 20 ticks x 8 directed links.
	want := 8.0 / 160.0
	if u < want-1e-9 || u > want+1e-9 {
		t.Fatalf("utilization = %v, want %v", u, want)
	}
	h.net.ResetUtilization()
	if h.net.Utilization() != 0 {
		t.Fatal("reset failed")
	}
}
