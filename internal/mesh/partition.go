package mesh

import (
	"fmt"

	"ringmesh/internal/packet"
	"ringmesh/internal/sim"
)

// Ownership partition of the mesh for the parallel tick engine: one
// shard per router row. A row owns its routers' input FIFOs, injection
// registers, PM ports, and utilization counters, so everything a row's
// commit touches is row-local except pushes across a row boundary (a
// flit leaving through a North or South output). Those are staged in
// the committing shard's outbox during commit phase 0 and applied in
// phase 1, after a barrier — each boundary FIFO has exactly one
// producing router, so the outbox flush is contention-free and pushes
// land in the same order as the serial schedule. Deferring a push is
// invisible to every router because all phase-0 decisions were staged
// from start-of-tick state (a consumer pops only flits that were
// buffered at tick start, and space checks were frozen at compute), so
// the end-of-tick state is bit-identical to the serial commit.
//
// Serial same-tick completions happen in commitRouter's iteration
// order — increasing router id, which is increasing PM id — so the
// partition's DeliverOrder is the identity.

// deferredPush is one staged cross-row flit transfer.
type deferredPush struct {
	fifo *packet.FIFO
	f    packet.Flit
}

// rowShard is one row of routers plus its cross-row outbox.
type rowShard struct {
	n       *Network
	row     int // row index (routers [row*K, row*K+K))
	routers []*router
	outbox  []deferredPush
}

// owns reports whether router id belongs to this shard's row.
func (s *rowShard) owns(id int) bool { return id/s.n.cfg.Spec.K == s.row }

// Compute implements sim.Shard: stage this row's crossbar transfers
// and injections. Reads of neighbouring rows' FIFO occupancy are safe
// — all state is frozen during the compute phase. Fault stepping is
// not repeated here; the partition's Prologue runs it serially.
func (s *rowShard) Compute(now int64) {
	for _, r := range s.routers {
		s.n.computeRouter(r, now)
	}
}

// CommitPhase implements sim.Shard: phase 0 is the row-local commit
// (cross-row pushes staged), phase 1 flushes the outbox.
func (s *rowShard) CommitPhase(phase int, now int64) int {
	if phase != 0 {
		for i := range s.outbox {
			s.outbox[i].fifo.Push(s.outbox[i].f)
			s.outbox[i] = deferredPush{}
		}
		s.outbox = s.outbox[:0]
		return 0
	}
	moved := 0
	for _, r := range s.routers {
		moved += s.n.commitRouter(r, now, s)
	}
	return moved
}

// Partition implements the network layer's Partitioner capability:
// one shard per router row, two commit phases (row-local commit, then
// the cross-row exchange). A single-row mesh has nothing to cut and
// declines.
func (n *Network) Partition() *sim.Partition {
	k := n.cfg.Spec.K
	if k < 2 {
		return nil
	}
	p := &sim.Partition{
		CommitPhases: 2,
		Prologue: func(now int64) {
			if n.faults != nil {
				n.faults.Step(now)
			}
		},
	}
	for row := 0; row < k; row++ {
		p.Shards = append(p.Shards, sim.PartitionShard{
			Name: fmt.Sprintf("row%d", row),
			PMLo: row * k,
			PMHi: (row + 1) * k,
			Comp: &rowShard{n: n, row: row, routers: n.routers[row*k : (row+1)*k]},
		})
	}
	for id := range n.routers {
		p.DeliverOrder = append(p.DeliverOrder, id)
	}
	return p
}
