// Package mesh implements the paper's 2D bi-directional mesh at flit
// granularity (Section 2.2): one router type — a 5x5 crossbar NIC
// with four neighbour ports and a local PM port — input FIFO buffers
// of 1, 4, or cl flits, deterministic e-cube (dimension-order)
// routing, round-robin output arbitration, and wormhole switching
// with per-output locks held from head to tail flit.
//
// Links are 32-bit uni-directional channels, two per adjacent router
// pair, moving one flit per cycle. Flow control is the same
// idealized same-cycle space check used by the ring model: a flit is
// forwarded only when the downstream input FIFO had room at the start
// of the cycle.
package mesh

import (
	"fmt"

	"ringmesh/internal/fault"
	"ringmesh/internal/metrics"
	"ringmesh/internal/node"
	"ringmesh/internal/packet"
	"ringmesh/internal/sim"
	"ringmesh/internal/stats"
	"ringmesh/internal/topo"
	"ringmesh/internal/trace"
)

// Config parameterizes a mesh network.
type Config struct {
	// Spec is the square mesh geometry.
	Spec topo.MeshSpec
	// LineBytes is the cache line size (fixes cl = 4 + line/4 flits).
	LineBytes int
	// BufferFlits is the input FIFO depth per router port in flits:
	// the paper evaluates 1, 4, and cl. Zero means cl.
	BufferFlits int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Spec.K < 1 {
		return fmt.Errorf("mesh: side %d < 1", c.Spec.K)
	}
	switch c.LineBytes {
	case 16, 32, 64, 128:
	default:
		return fmt.Errorf("mesh: unsupported cache line size %dB (the paper's sizings cover 16, 32, 64 and 128)", c.LineBytes)
	}
	if c.BufferFlits < 0 {
		return fmt.Errorf("mesh: BufferFlits = %d", c.BufferFlits)
	}
	return nil
}

// bufferFlits resolves the configured depth (0 → cl).
func (c Config) bufferFlits() int {
	if c.BufferFlits == 0 {
		return packet.MeshSizing.CacheLineFlits(c.LineBytes)
	}
	return c.BufferFlits
}

// PMPort is what the network needs from each processing module.
type PMPort interface {
	node.Injector
	node.Deliverer
}

// move is a staged crossbar transfer for one output port.
type move struct {
	ok bool
	in topo.Direction
	f  packet.Flit
}

// router is one mesh NIC: a 5x5 crossbar with input buffering.
type router struct {
	id     int
	inputs [topo.NumPorts]*packet.FIFO
	// outLock / outLockIn implement wormhole: while a packet is in
	// flight through output o, the crossbar connection from input
	// outLockIn[o] is held.
	outLock   [topo.NumPorts]*packet.Packet
	outLockIn [topo.NumPorts]topo.Direction
	rr        [topo.NumPorts]int
	staged    [topo.NumPorts]move

	// Injection register: the packet the PM is currently streaming
	// into the local input FIFO.
	injPkt    *packet.Packet
	injIdx    int
	stagedInj move

	pm PMPort

	// flt is the installed per-port fault state; nil (the common
	// case) costs one pointer check per router per cycle. See
	// fault.go.
	flt *rtrFault

	// linkUtil counts flits sent on each of this router's outgoing
	// neighbour links, per direction (capacity accrues only for links
	// that exist; the Local slot stays unused). Keeping the split by
	// direction is what the metrics registry exports; the aggregate
	// Utilization() view merges them.
	linkUtil [topo.NumPorts]stats.Utilization
}

// Network is the mesh interconnect as a sim.Component.
type Network struct {
	cfg     Config
	routers []*router
	engine  *sim.Engine
	tracer  *trace.Recorder

	// faults is the installed fault schedule; nil for fault-free runs.
	faults *fault.Driver

	// turns, when non-nil (metrics enabled), counts e-cube dimension
	// turns: head flits leaving an east/west input through a
	// north/south output.
	turns *metrics.Counter
}

// SetTracer attaches an optional lifecycle recorder (nil-safe).
func (n *Network) SetTracer(t *trace.Recorder) { n.tracer = t }

// New builds the mesh network connecting the given PMs (len must be
// Spec.PMs()).
func New(cfg Config, pms []PMPort, engine *sim.Engine) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(pms) != cfg.Spec.PMs() {
		return nil, fmt.Errorf("mesh: %d PMs supplied for %s (%d)",
			len(pms), cfg.Spec, cfg.Spec.PMs())
	}
	n := &Network{cfg: cfg, engine: engine}
	depth := cfg.bufferFlits()
	for id := 0; id < cfg.Spec.PMs(); id++ {
		r := &router{id: id, pm: pms[id]}
		for p := topo.Direction(0); p < topo.NumPorts; p++ {
			r.inputs[p] = packet.NewFIFO(depth)
			r.outLockIn[p] = -1
		}
		n.routers = append(n.routers, r)
	}
	return n, nil
}

// Compute implements sim.Component: stage every router's crossbar
// transfers and PM injections from start-of-cycle state.
func (n *Network) Compute(now int64) {
	if n.faults != nil {
		n.faults.Step(now)
	}
	for _, r := range n.routers {
		n.computeRouter(r, now)
	}
}

// pickMove returns the flit output o would carry this cycle and the
// input it comes from, judged from start-of-cycle state. It is pure
// (Peek-only) so the stall forensics can re-ask the same question the
// switching logic asks.
func (n *Network) pickMove(r *router, o topo.Direction) (in topo.Direction, f packet.Flit, ok bool) {
	if r.outLock[o] != nil {
		// Continue the locked worm; bubbles keep the lock.
		i := r.outLockIn[o]
		head, has := r.inputs[i].Peek()
		if !has {
			return -1, packet.Flit{}, false
		}
		if head.Pkt != r.outLock[o] {
			panic(fmt.Sprintf("mesh: router %d would interleave %s into %s",
				r.id, head.Pkt, r.outLock[o]))
		}
		return i, head, true
	}
	// Round-robin arbitration among inputs whose head flit is a packet
	// head routed to this output.
	for k := 0; k < int(topo.NumPorts); k++ {
		i := topo.Direction((r.rr[o] + k) % int(topo.NumPorts))
		head, has := r.inputs[i].Peek()
		if !has || !head.Head() {
			continue
		}
		if n.cfg.Spec.Route(r.id, head.Pkt.Dst) != o {
			continue
		}
		return i, head, true
	}
	return -1, packet.Flit{}, false
}

func (n *Network) computeRouter(r *router, now int64) {
	if r.flt != nil && now >= r.flt.maxUntil {
		r.flt = nil // every fault window has passed
	}
	spec := n.cfg.Spec
	for o := topo.Direction(0); o < topo.NumPorts; o++ {
		r.staged[o] = move{}
		if r.flt != nil && r.flt.blocked(o, now) {
			continue // this output port is faulted this cycle
		}
		in, f, ok := n.pickMove(r, o)
		if !ok {
			continue
		}
		// Downstream acceptance.
		if o == topo.Local {
			// Ejection to the PM always succeeds (perfect sink).
			r.staged[o] = move{ok: true, in: in, f: f}
			continue
		}
		nb := spec.Neighbor(r.id, o)
		if nb < 0 {
			panic(fmt.Sprintf("mesh: router %d routed %s off the edge (%s)",
				r.id, f.Pkt, o))
		}
		if n.routers[nb].inputs[o.Opposite()].Space() >= 1 {
			r.staged[o] = move{ok: true, in: in, f: f}
		}
	}

	// Injection: stream the current packet into the local input FIFO,
	// one flit per cycle.
	r.stagedInj = move{}
	if r.injPkt != nil && r.inputs[topo.Local].Space() >= 1 {
		r.stagedInj = move{ok: true, f: packet.Flit{Pkt: r.injPkt, Index: r.injIdx}}
	}
}

// Commit implements sim.Component. Progress is reported to the
// engine once per commit (batched) rather than per flit movement.
func (n *Network) Commit(now int64) {
	moved := 0
	for _, r := range n.routers {
		moved += n.commitRouter(r, now, nil)
	}
	if moved > 0 {
		n.engine.ProgressN(moved)
	}
}

// commitRouter applies one router's staged transfers and returns the
// number of flit movements (crossbar transfers plus injections). sh is
// nil on the serial path; under the parallel partition it is the
// committing row shard, and pushes into a router another shard owns
// are staged in the shard's outbox instead of performed (see
// partition.go) — everything else is byte-for-byte the serial commit.
func (n *Network) commitRouter(r *router, now int64, sh *rowShard) (moved int) {
	spec := n.cfg.Spec
	for o := topo.Direction(0); o < topo.NumPorts; o++ {
		if o != topo.Local && spec.Neighbor(r.id, o) >= 0 {
			r.linkUtil[o].Tick(1)
		}
		mv := r.staged[o]
		if !mv.ok {
			continue
		}
		r.staged[o] = move{}
		got := r.inputs[mv.in].Pop()
		if got != mv.f {
			panic(fmt.Sprintf("mesh: router %d staged %s but popped %s", r.id, mv.f, got))
		}
		// Lock maintenance and round-robin advance.
		if mv.f.Head() && !mv.f.Tail() {
			r.outLock[o] = mv.f.Pkt
			r.outLockIn[o] = mv.in
		}
		if mv.f.Tail() {
			r.outLock[o] = nil
			r.outLockIn[o] = -1
		}
		if mv.f.Head() {
			r.rr[o] = (int(mv.in) + 1) % int(topo.NumPorts)
			if n.turns != nil &&
				(mv.in == topo.East || mv.in == topo.West) &&
				(o == topo.North || o == topo.South) {
				n.turns.Inc()
			}
		}
		// Deposit.
		if o == topo.Local {
			if mv.f.Tail() {
				r.pm.Deliver(mv.f.Pkt, now)
			}
		} else {
			nb := spec.Neighbor(r.id, o)
			if mv.f.Head() {
				n.tracer.Record(now, trace.Hop, mv.f.Pkt,
					fmt.Sprintf("router%d %s", r.id, o))
			}
			dst := n.routers[nb].inputs[o.Opposite()]
			if sh != nil && !sh.owns(nb) {
				sh.outbox = append(sh.outbox, deferredPush{fifo: dst, f: mv.f})
			} else {
				dst.Push(mv.f)
			}
			r.linkUtil[o].Busy(1)
		}
		moved++
	}

	// Apply injection, then reload the injection register so a fresh
	// packet (possibly issued by the PM's commit earlier this tick)
	// starts streaming next cycle.
	if r.stagedInj.ok {
		if r.stagedInj.f.Head() {
			n.tracer.Record(now, trace.Inject, r.stagedInj.f.Pkt,
				fmt.Sprintf("router%d local", r.id))
		}
		r.inputs[topo.Local].Push(r.stagedInj.f)
		r.injIdx++
		if r.injIdx == r.injPkt.Flits {
			r.injPkt, r.injIdx = nil, 0
		}
		r.stagedInj = move{}
		moved++
	}
	if r.injPkt == nil {
		if p, ok := r.pm.PendingResponse(); ok {
			r.pm.PopPendingResponse()
			r.injPkt, r.injIdx = p, 0
		} else if p, ok := r.pm.PendingRequest(); ok {
			r.pm.PopPendingRequest()
			r.injPkt, r.injIdx = p, 0
		}
	}
	return moved
}

// Utilization returns aggregate inter-router link utilization in
// [0, 1] — busy link-cycles over available link-cycles, the paper's
// "percent of maximum network utilization" for meshes. It merges the
// same per-direction counters the metrics registry exports, so the
// aggregate and the per-direction series always agree.
func (n *Network) Utilization() float64 {
	var u stats.Utilization
	for _, r := range n.routers {
		for o := topo.Direction(0); o < topo.NumPorts; o++ {
			u.Merge(&r.linkUtil[o])
		}
	}
	return u.Value()
}

// ResetUtilization clears link counters (warmup end).
func (n *Network) ResetUtilization() {
	for _, r := range n.routers {
		for o := topo.Direction(0); o < topo.NumPorts; o++ {
			r.linkUtil[o].Reset()
		}
	}
}

// DescribeMetrics registers the mesh's instruments:
//
//   - mesh_link_util{link=north|east|south|west}: per-direction link
//     utilization aggregated across routers, backed by the existing
//     per-router counters (no new hot-path work).
//   - mesh_input_buffer_flits{queue=<direction>}: total input-FIFO
//     occupancy per port direction across the mesh, read only at
//     sample time.
//   - mesh_ecube_turns: head flits turning from the X dimension into
//     the Y dimension (counted only while a registry is attached).
//
// Nil-safe: a nil registry registers nothing and leaves the hot path
// unchanged.
func (n *Network) DescribeMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	for o := topo.Direction(0); o < topo.NumPorts; o++ {
		if o == topo.Local {
			continue
		}
		backing := make([]*stats.Utilization, 0, len(n.routers))
		for _, r := range n.routers {
			if n.cfg.Spec.Neighbor(r.id, o) >= 0 {
				backing = append(backing, &r.linkUtil[o])
			}
		}
		reg.Ratio("mesh_link_util", metrics.Labels{Link: o.String()}, backing...)
	}
	for o := topo.Direction(0); o < topo.NumPorts; o++ {
		o := o
		reg.Gauge("mesh_input_buffer_flits", metrics.Labels{Queue: o.String()},
			func() float64 {
				total := 0
				for _, r := range n.routers {
					total += r.inputs[o].Len()
				}
				return float64(total)
			})
	}
	n.turns = reg.Counter("mesh_ecube_turns", metrics.Labels{})
	if n.faults != nil {
		n.faults.Counter = reg.Counter("fault_events_total", metrics.Labels{})
	}
}

// BufferedFlits counts flits resident in all router input FIFOs plus
// partially injected packets' remaining flits (for tests and liveness
// accounting).
func (n *Network) BufferedFlits() int {
	total := 0
	for _, r := range n.routers {
		for p := topo.Direction(0); p < topo.NumPorts; p++ {
			total += r.inputs[p].Len()
		}
		if r.injPkt != nil {
			total += r.injPkt.Flits - r.injIdx
		}
	}
	return total
}

// CheckInvariants returns an error if any buffer exceeds capacity.
func (n *Network) CheckInvariants() error {
	for _, r := range n.routers {
		for p := topo.Direction(0); p < topo.NumPorts; p++ {
			if r.inputs[p].Len() > r.inputs[p].Cap() {
				return fmt.Errorf("mesh: router %d input %s over capacity", r.id, p)
			}
		}
	}
	return nil
}
