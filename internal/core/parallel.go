// Parallel assembly: turn a network model's ownership partition into
// the engine's execution plan. The core layer owns what the model
// cannot see — the PMs and the measurement collector — so it wraps
// each model shard with the PMs the shard declared ownership of,
// switches the collector into per-PM staging cells, and installs the
// drain (in the partition's serial delivery order) as the plan's
// epilogue. The serial fallbacks live here too: one worker, a model
// without the Partitioner capability (or one that declines), or an
// attached tracer (the trace recorder is unsynchronized) all leave the
// engine on its exact serial path.
package core

import (
	"fmt"

	"ringmesh/internal/network"
	"ringmesh/internal/node"
	"ringmesh/internal/sim"
)

// coreShard pairs one model shard with the PMs it owns. The PMs commit
// first, in phase 0 — the serial engine registers PMs before the
// network, so within a tick every PM's commit precedes the network's —
// gated on the PM clock period exactly like the serial schedule's
// period groups.
type coreShard struct {
	pms  []*node.PM
	tpc  int64
	comp sim.Shard
}

// Compute implements sim.Shard.
func (cs *coreShard) Compute(now int64) {
	if now%cs.tpc == 0 {
		for _, pm := range cs.pms {
			pm.Compute(now)
		}
	}
	cs.comp.Compute(now)
}

// CommitPhase implements sim.Shard.
func (cs *coreShard) CommitPhase(phase int, now int64) int {
	if phase == 0 && now%cs.tpc == 0 {
		for _, pm := range cs.pms {
			pm.Commit(now)
		}
	}
	return cs.comp.CommitPhase(phase, now)
}

// applyParallel installs the parallel execution plan when cfg asks for
// workers and the model can shard itself; otherwise it leaves the
// engine serial. A malformed partition (PM ranges that do not tile,
// a bad delivery order) is a model bug and fails construction rather
// than falling back — the partition may already have rewired the
// model's internal hand-off paths.
func (s *System) applyParallel(cfg SystemConfig) error {
	if cfg.Workers <= 1 || cfg.Tracer != nil {
		return nil
	}
	pt, ok := s.net.(network.Partitioner)
	if !ok {
		return nil
	}
	part := pt.Partition()
	if part == nil {
		return nil
	}
	if len(part.Shards) < 2 {
		return fmt.Errorf("core: network %q returned a %d-shard partition (must decline with nil or cut at least two shards)",
			cfg.Network, len(part.Shards))
	}
	covered := make([]bool, s.pmCount)
	shards := make([]sim.Shard, 0, len(part.Shards))
	names := make([]string, 0, len(part.Shards))
	for _, ps := range part.Shards {
		if ps.PMLo < 0 || ps.PMHi > s.pmCount || ps.PMLo > ps.PMHi {
			return fmt.Errorf("core: partition shard %q owns PM range [%d,%d) outside [0,%d)",
				ps.Name, ps.PMLo, ps.PMHi, s.pmCount)
		}
		for id := ps.PMLo; id < ps.PMHi; id++ {
			if covered[id] {
				return fmt.Errorf("core: partition shard %q claims PM %d, already owned", ps.Name, id)
			}
			covered[id] = true
		}
		shards = append(shards, &coreShard{
			pms:  s.pms[ps.PMLo:ps.PMHi],
			tpc:  s.ticksPerCycle,
			comp: ps.Comp,
		})
		names = append(names, ps.Name)
	}
	for id, c := range covered {
		if !c {
			return fmt.Errorf("core: partition owns no shard for PM %d", id)
		}
	}
	if len(part.DeliverOrder) != s.pmCount {
		return fmt.Errorf("core: partition delivery order lists %d PMs, want %d",
			len(part.DeliverOrder), s.pmCount)
	}
	seen := make([]bool, s.pmCount)
	for _, id := range part.DeliverOrder {
		if id < 0 || id >= s.pmCount || seen[id] {
			return fmt.Errorf("core: partition delivery order is not a permutation of [0,%d)", s.pmCount)
		}
		seen[id] = true
	}

	s.col.ShardByPM(s.pmCount)
	col, order := s.col, part.DeliverOrder
	s.engine.SetParallel(&sim.ParallelPlan{
		Workers:      cfg.Workers,
		Shards:       shards,
		ShardNames:   names,
		CommitPhases: part.CommitPhases,
		Prologue:     part.Prologue,
		Epilogue:     func(now int64) { col.DrainCells(order) },
	})
	if cfg.PhaseStats {
		s.engine.EnablePhaseStats()
	}
	return nil
}
