// Package core assembles processing modules and a network into a
// runnable system and drives it with the paper's output-analysis
// method: batch means with the first batch discarded.
//
// The assembly is topology-agnostic: NewSystem resolves the requested
// interconnect through the network registry, so ring, mesh and any
// future model share one construction, run and measurement pipeline.
//
// The registration order is fixed — PMs first, then the network — so
// within a tick every PM's commit (miss generation, memory service)
// precedes the network's commit (injection pickup, flit movement,
// delivery). This makes runs bit-for-bit reproducible for a given
// seed.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"ringmesh/internal/fault"
	"ringmesh/internal/mesh"
	"ringmesh/internal/metrics"
	"ringmesh/internal/network"
	"ringmesh/internal/node"
	"ringmesh/internal/obs"
	"ringmesh/internal/ring"
	"ringmesh/internal/sim"
	"ringmesh/internal/stats"
	"ringmesh/internal/topo"
	"ringmesh/internal/trace"
	"ringmesh/internal/workload"
)

// System is a complete simulated multiprocessor.
type System struct {
	engine *sim.Engine
	col    *node.Collector
	pms    []*node.PM
	net    network.Model

	metrics  *metrics.Registry
	sampler  *metrics.Sampler
	userHook func(now int64, moved uint64)

	ticksPerCycle int64
	pmCount       int
	workloadC     float64
	desc          string
	topology      string
}

// SystemConfig configures a system over any registered interconnect.
type SystemConfig struct {
	// Network is the registered topology name ("ring", "mesh", ...).
	Network string
	// Net is the topology-agnostic network configuration.
	Net network.Config
	// Workload is the M-MRP attribute set.
	Workload workload.MMRP
	// MemLatency is the memory service time in PM cycles (0 = default).
	MemLatency int
	// Seed makes runs reproducible.
	Seed uint64
	// Histogram, when true, also collects the full latency
	// distribution so Result can report percentiles.
	Histogram bool
	// Tracer optionally records per-packet lifecycle events.
	Tracer *trace.Recorder
	// Metrics, when non-nil, receives the network model's instruments
	// (per-link utilization, queue occupancy, stall counters); see
	// network.Model.DescribeMetrics. Instrumentation is
	// observation-only and never changes simulation results.
	Metrics *metrics.Registry
	// MetricsInterval, when > 0 together with Metrics, attaches a
	// time-series sampler snapshotting every MetricsInterval PM clock
	// cycles (see System.Sampler). The sampler is reset when the
	// warmup batch is discarded, so its rows cover the measured
	// interval.
	MetricsInterval int64
	// FaultPlan, when non-nil, is installed into the network before
	// the first tick (the model must implement
	// network.FaultInjector). An empty plan exercises the subsystem
	// without scheduling anything and leaves results bit-identical to
	// a nil plan.
	FaultPlan *fault.Plan
	// Workers, when > 1, runs the tick loop across a goroutine pool if
	// the network model supports ownership partitioning (see
	// network.Partitioner and internal/core/parallel.go). Execution-only:
	// any worker count produces results bit-identical to Workers <= 1,
	// so Workers never enters result cache keys. Falls back to the
	// serial engine when the model declines to partition or a tracer is
	// attached.
	Workers int
	// PhaseStats, when true together with Workers > 1, times each
	// shard's compute/commit phases and each worker's barrier waits
	// (see System.PhaseStats). Observation-only like Metrics: the
	// schedule and results are bit-identical with it on or off, so it
	// never enters result cache keys. Ignored on the serial path.
	PhaseStats bool
	// Fidelity names the answer tier this configuration was submitted
	// under ("" or "simulate": the exact engine; "analytic": the
	// closed-form models). NewSystem builds exact systems only and
	// rejects any other value — analytic answers go through the
	// fidelity registry (internal/fidelity), which reads this field
	// as provenance, never as a construction input.
	Fidelity string
}

// NewSystem builds a multiprocessor around any registered
// interconnect model.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Fidelity != "" && cfg.Fidelity != "simulate" {
		return nil, fmt.Errorf("core: fidelity %q cannot build a steppable system; use the fidelity registry", cfg.Fidelity)
	}
	plan, err := network.New(cfg.Network, cfg.Net)
	if err != nil {
		return nil, err
	}
	if err := cfg.Workload.Validate(); err != nil {
		return nil, err
	}
	pattern, err := plan.Locality(cfg.Workload.R)
	if err != nil {
		return nil, err
	}
	tpc := plan.TicksPerCycle
	s := &System{
		engine:        &sim.Engine{},
		col:           node.NewCollector(tpc),
		ticksPerCycle: tpc,
		pmCount:       plan.PMs,
		workloadC:     cfg.Workload.C,
		desc:          plan.Description,
		topology:      plan.Topology,
	}
	if cfg.Histogram {
		s.col.Hist = stats.NewHistogram(4096, 1)
	}
	if cfg.Metrics != nil {
		// Export the round-trip latency distribution (PM cycles) as a
		// Prometheus histogram: log buckets 4..32768 cover everything
		// from an L2-adjacent hit to a deeply saturated hierarchy.
		s.col.LatHist = cfg.Metrics.Histogram("latency_cycles",
			metrics.Labels{}, metrics.ExpBuckets(4, 2, 14))
	}
	ports := make([]network.Port, plan.PMs)
	for id := 0; id < plan.PMs; id++ {
		pm, err := node.NewPM(id, node.Config{
			Workload:   cfg.Workload,
			Pattern:    pattern,
			Sizing:     plan.Sizing,
			LineBytes:  cfg.Net.LineBytes,
			MemLatency: cfg.MemLatency,
			Seed:       cfg.Seed,
			Tracer:     cfg.Tracer,
		}, s.col)
		if err != nil {
			return nil, err
		}
		s.pms = append(s.pms, pm)
		ports[id] = pm
		s.engine.Register(pm, tpc)
	}
	model, err := plan.Build(ports, s.engine)
	if err != nil {
		return nil, err
	}
	model.SetTracer(cfg.Tracer)
	if cfg.FaultPlan != nil {
		inj, ok := model.(network.FaultInjector)
		if !ok {
			return nil, fmt.Errorf("core: network %q does not support fault injection", cfg.Network)
		}
		// Before DescribeMetrics, so the model can attach its
		// fault-event counter to the installed schedule.
		if err := inj.ApplyFaultPlan(cfg.FaultPlan); err != nil {
			return nil, err
		}
	}
	model.DescribeMetrics(cfg.Metrics)
	s.metrics = cfg.Metrics
	if cfg.Metrics != nil && cfg.MetricsInterval > 0 {
		s.sampler = metrics.NewSampler(cfg.Metrics, cfg.MetricsInterval*tpc, nil)
	}
	s.net = model
	s.engine.Register(model, 1)
	s.engine.InFlight = s.col.InFlight
	if rep, ok := model.(network.StallReporter); ok {
		engine := s.engine
		s.engine.Diagnose = func() *sim.StallReport { return rep.BuildStallReport(engine.Now()) }
	}
	if err := s.applyParallel(cfg); err != nil {
		return nil, err
	}
	s.wireOnCycle()
	return s, nil
}

// wireOnCycle installs the engine per-tick hook, composing the
// metrics sampler with the user hook (either may be absent; both nil
// leaves the engine hook nil, the zero-overhead path).
func (s *System) wireOnCycle() {
	samp, user := s.sampler, s.userHook
	switch {
	case samp != nil && user != nil:
		s.engine.OnCycle = func(now int64, moved uint64) {
			samp.OnCycle(now, moved)
			user(now, moved)
		}
	case samp != nil:
		s.engine.OnCycle = samp.OnCycle
	case user != nil:
		s.engine.OnCycle = user
	default:
		s.engine.OnCycle = nil
	}
}

// OnCycle sets the user per-tick observability hook (nil detaches).
// It composes with the metrics sampler, so both can observe every
// tick.
func (s *System) OnCycle(f func(now int64, moved uint64)) {
	s.userHook = f
	s.wireOnCycle()
}

// RingSystemConfig configures a hierarchical-ring system.
//
// Deprecated: use SystemConfig with Network "ring".
type RingSystemConfig struct {
	// Net is the network configuration (topology, line size, global
	// ring speed).
	Net ring.Config
	// Workload is the M-MRP attribute set.
	Workload workload.MMRP
	// MemLatency is the memory service time in PM cycles (0 = default).
	MemLatency int
	// Seed makes runs reproducible.
	Seed uint64
	// Histogram, when true, also collects the full latency
	// distribution so Result can report percentiles.
	Histogram bool
	// Tracer optionally records per-packet lifecycle events.
	Tracer *trace.Recorder
}

// NewRingSystem builds a hierarchical-ring multiprocessor.
//
// Deprecated: thin wrapper over NewSystem; use the generic API.
func NewRingSystem(cfg RingSystemConfig) (*System, error) {
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	return NewSystem(SystemConfig{
		Network: "ring",
		Net: network.Config{
			Topology:          cfg.Net.Spec.String(),
			LineBytes:         cfg.Net.LineBytes,
			DoubleSpeedGlobal: cfg.Net.DoubleSpeedGlobal,
			SlottedSwitching:  cfg.Net.Switching == ring.Slotted,
			IRIQueueFlits:     cfg.Net.IRIQueueFlits,
		},
		Workload:   cfg.Workload,
		MemLatency: cfg.MemLatency,
		Seed:       cfg.Seed,
		Histogram:  cfg.Histogram,
		Tracer:     cfg.Tracer,
	})
}

// MeshSystemConfig configures a 2D mesh system.
//
// Deprecated: use SystemConfig with Network "mesh".
type MeshSystemConfig struct {
	// Net is the network configuration (geometry, line size, buffer
	// depth).
	Net mesh.Config
	// Workload is the M-MRP attribute set.
	Workload workload.MMRP
	// MemLatency is the memory service time in PM cycles (0 = default).
	MemLatency int
	// Seed makes runs reproducible.
	Seed uint64
	// Histogram, when true, also collects the full latency
	// distribution so Result can report percentiles.
	Histogram bool
	// Tracer optionally records per-packet lifecycle events.
	Tracer *trace.Recorder
}

// NewMeshSystem builds a mesh multiprocessor.
//
// Deprecated: thin wrapper over NewSystem; use the generic API.
func NewMeshSystem(cfg MeshSystemConfig) (*System, error) {
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	return NewSystem(SystemConfig{
		Network: "mesh",
		Net: network.Config{
			Nodes:       cfg.Net.Spec.PMs(),
			LineBytes:   cfg.Net.LineBytes,
			BufferFlits: cfg.Net.BufferFlits,
		},
		Workload:   cfg.Workload,
		MemLatency: cfg.MemLatency,
		Seed:       cfg.Seed,
		Histogram:  cfg.Histogram,
		Tracer:     cfg.Tracer,
	})
}

// Collector exposes the measurement aggregate (for tests).
func (s *System) Collector() *node.Collector { return s.col }

// Engine exposes the cycle engine (for tests and for attaching the
// per-cycle observability hook; see sim.Engine.OnCycle).
func (s *System) Engine() *sim.Engine { return s.engine }

// Network exposes the interconnect model (for tests).
func (s *System) Network() network.Model { return s.net }

// Metrics returns the instrument registry the system was built with
// (nil when metrics are disabled).
func (s *System) Metrics() *metrics.Registry { return s.metrics }

// Sampler returns the attached metrics time-series sampler (nil
// unless the system was built with Metrics and MetricsInterval).
func (s *System) Sampler() *metrics.Sampler { return s.sampler }

// PhaseStats returns the parallel engine's phase-timing accumulator
// (nil unless the system was built with Workers > 1, PhaseStats set,
// and the model partitioned itself). Read only after a run completes.
func (s *System) PhaseStats() *obs.PhaseStats { return s.engine.PhaseStats() }

// TicksPerCycle returns engine ticks per PM clock cycle (2 on
// double-speed-global configurations, else 1).
func (s *System) TicksPerCycle() int64 { return s.ticksPerCycle }

// PMs returns the number of processing modules.
func (s *System) PMs() int { return s.pmCount }

// Describe returns a human-readable system summary.
func (s *System) Describe() string { return s.desc }

// Topology returns the canonical resolved topology (e.g. "3:3:8",
// "8x8").
func (s *System) Topology() string { return s.topology }

// StepCycles advances the system by n PM clock cycles.
func (s *System) StepCycles(n int64) error {
	return s.engine.Run(n * s.ticksPerCycle)
}

// Close releases the engine's worker goroutines (parallel mode; no-op
// otherwise). Run/RunCtx already release them on return, so Close only
// matters for callers driving the system through StepCycles.
func (s *System) Close() { s.engine.CloseWorkers() }

// RunConfig controls the batch-means run.
type RunConfig struct {
	// WarmupCycles is the discarded first batch, in PM cycles.
	WarmupCycles int64
	// BatchCycles is the length of each retained batch.
	BatchCycles int64
	// Batches is the number of retained batches.
	Batches int
	// WatchdogCycles stalls-detection horizon (0 = default 20000).
	WatchdogCycles int64
	// Timeout bounds the run's wall-clock time; exceeding it aborts
	// with an error wrapping ErrTimeout (0 = no limit). The deadline
	// is checked between 1024-cycle chunks, so simulation results are
	// unaffected for runs that finish in time.
	Timeout time.Duration
	// FailOnStall turns a watchdog trip into a returned error (the
	// model's *sim.StallError when it can diagnose itself) instead of
	// the default Result.Stalled marker that lets sweeps plot
	// saturation points.
	FailOnStall bool
}

// DefaultRunConfig returns run lengths that give tight confidence
// intervals for the paper's operating points in a few tens of
// milliseconds per point.
func DefaultRunConfig() RunConfig {
	return RunConfig{WarmupCycles: 4000, BatchCycles: 4000, Batches: 8}
}

// QuickRunConfig returns shortened lengths for smoke tests and
// benchmarks.
func QuickRunConfig() RunConfig {
	return RunConfig{WarmupCycles: 1000, BatchCycles: 1000, Batches: 4}
}

func (rc RunConfig) validate() error {
	if rc.WarmupCycles < 0 || rc.BatchCycles <= 0 || rc.Batches < 1 {
		return fmt.Errorf("core: bad run config %+v", rc)
	}
	return nil
}

// Result summarizes one simulation run.
type Result struct {
	// Latency is the average round-trip access latency in PM clock
	// cycles (the paper's primary metric).
	Latency float64
	// LatencyCI is the 95% confidence half-width on Latency.
	LatencyCI float64
	// Observations is the number of completed transactions measured.
	Observations int64
	// RingUtil is per-level ring utilization in [0,1] (index 0 =
	// global ring); nil for flat (mesh-like) systems.
	RingUtil []float64
	// MeshUtil is aggregate inter-router link utilization in [0,1];
	// zero for hierarchical (ring-like) systems.
	MeshUtil float64
	// Throughput is completed transactions per PM cycle (whole
	// system).
	Throughput float64
	// Issued, Completed, Local are transaction counts over the whole
	// run (including warmup).
	Issued, Completed, Local int64
	// LatencyP50, LatencyP95, LatencyP99 and LatencyMax describe the
	// latency distribution when the system was built with Histogram
	// set (zero otherwise).
	LatencyP50, LatencyP95, LatencyP99, LatencyMax float64
	// BatchesCorrelated flags strong lag-1 autocorrelation among batch
	// means (|r| > 0.5): the batches are too short relative to the
	// system's time constants and LatencyCI understates uncertainty.
	BatchesCorrelated bool
	// Stalled is set when the deadlock watchdog tripped; the other
	// fields then describe the run up to the stall.
	Stalled bool
	// Stall carries the model's forensic snapshot when Stalled is set
	// and the model implements network.StallReporter; nil otherwise.
	Stall *sim.StallReport
	// Saturated is set when processors spent most of their time
	// blocked on the T-window: the realized miss-generation rate fell
	// below half the configured rate C, so the network is past its
	// saturation point and the latency estimate understates open-loop
	// delay.
	Saturated bool
}

// ErrTimeout marks a run aborted for exceeding RunConfig.Timeout.
var ErrTimeout = errors.New("core: run exceeded its wall-clock timeout")

// PanicError is a model panic recovered at the Run boundary: the
// panic value and stack, plus the network's forensic snapshot when it
// could produce one over its (possibly inconsistent) state.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery time.
	Stack []byte
	// Report is the network's stall report, when one could be built.
	Report *sim.StallReport
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: model panic: %v", e.Value)
}

// runCycles advances n PM cycles in chunks, honouring cancellation
// and the wall-clock deadline between chunks. Chunking is invisible
// to the simulation: the engine steps the same ticks in the same
// order as one long run.
func (s *System) runCycles(ctx context.Context, n int64, deadline time.Time) error {
	const chunkCycles = 1024
	for done := int64(0); done < n; {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: run canceled at tick %d: %w", s.engine.Now(), err)
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return fmt.Errorf("%w (tick %d)", ErrTimeout, s.engine.Now())
		}
		step := n - done
		if step > chunkCycles {
			step = chunkCycles
		}
		if err := s.engine.Run(step * s.ticksPerCycle); err != nil {
			return err
		}
		done += step
	}
	return nil
}

// Run executes warmup plus the configured batches and returns the
// aggregated result. A tripped watchdog sets Stalled (and Stall, when
// the model can diagnose itself) instead of returning an error so
// sweeps can plot saturation points; set RunConfig.FailOnStall to get
// the error instead.
func (s *System) Run(rc RunConfig) (Result, error) {
	return s.RunCtx(context.Background(), rc)
}

// RunCtx is Run with cancellation: ctx aborts the run between cycle
// chunks, RunConfig.Timeout bounds its wall-clock time, and a model
// panic is recovered into a *PanicError instead of crashing the
// caller.
func (s *System) RunCtx(ctx context.Context, rc RunConfig) (res Result, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// The worker gang (parallel mode) is recreated lazily, so releasing
	// it after every run costs nothing on repeat runs and keeps
	// one-shot callers (sweep points, served jobs) leak-free.
	defer s.engine.CloseWorkers()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		pe := &PanicError{Value: r, Stack: debug.Stack()}
		if rep, ok := s.net.(network.StallReporter); ok {
			func() {
				// The forensic walk runs over the very state that just
				// panicked; a second panic must not mask the first.
				defer func() { recover() }()
				pe.Report = rep.BuildStallReport(s.engine.Now())
			}()
		}
		res, err = Result{}, pe
	}()
	if err := rc.validate(); err != nil {
		return Result{}, err
	}
	wd := rc.WatchdogCycles
	if wd == 0 {
		wd = 20000
	}
	s.engine.WatchdogTicks = wd * s.ticksPerCycle
	var deadline time.Time
	if rc.Timeout > 0 {
		deadline = time.Now().Add(rc.Timeout)
	}

	stalled := false
	var stallErr error
	if err := s.runCycles(ctx, rc.WarmupCycles, deadline); err != nil {
		if !errors.Is(err, sim.ErrStalled) {
			return Result{}, err
		}
		stalled, stallErr = true, err
	}
	s.col.Latency.CloseBatch() // discarded by the batch-means filter
	s.net.ResetUtilization()
	// Warmup-aware metrics reset: counters and sampled series restart
	// with the measured interval, mirroring the batch-means discard.
	s.metrics.Reset()
	s.sampler.Reset()

	if !stalled {
		for b := 0; b < rc.Batches; b++ {
			if err := s.runCycles(ctx, rc.BatchCycles, deadline); err != nil {
				if !errors.Is(err, sim.ErrStalled) {
					return Result{}, err
				}
				stalled, stallErr = true, err
				break
			}
			s.col.Latency.CloseBatch()
		}
	}
	if ic, ok := s.net.(network.InvariantChecker); ok {
		if err := ic.CheckInvariants(); err != nil {
			return Result{}, err
		}
	}
	if stalled && rc.FailOnStall {
		return Result{}, stallErr
	}

	totalCycles := float64(rc.BatchCycles) * float64(rc.Batches)
	res = Result{
		Latency:      s.col.Latency.Mean(),
		LatencyCI:    s.col.Latency.HalfWidth(),
		Observations: s.col.Latency.Observations(),
		Issued:       s.col.Issued,
		Completed:    s.col.Completed,
		Local:        s.col.Local,
		Stalled:      stalled,
	}
	if stalled {
		var se *sim.StallError
		if errors.As(stallErr, &se) {
			res.Stall = se.Report
		}
	}
	if totalCycles > 0 {
		res.Throughput = float64(res.Observations) / totalCycles
	}
	res.BatchesCorrelated = s.col.Latency.Correlated(0.5)
	if s.col.Hist != nil && s.col.Hist.Count() > 0 {
		res.LatencyP50 = s.col.Hist.Quantile(0.5)
		res.LatencyP95 = s.col.Hist.Quantile(0.95)
		res.LatencyP99 = s.col.Hist.Quantile(0.99)
		res.LatencyMax = s.col.Hist.Quantile(1)
	}
	ns := s.net.Stats()
	res.RingUtil = ns.PerLevel
	res.MeshUtil = ns.Link
	// Saturation: compare realized generation (remote + local misses)
	// against the configured rate C over the whole run including
	// warmup.
	allCycles := float64(rc.WarmupCycles) + totalCycles
	if allCycles > 0 {
		expected := s.workloadC * allCycles * float64(s.pmCount)
		if float64(res.Issued+res.Local) < 0.5*expected {
			res.Saturated = true
		}
	}
	return res, nil
}

// RingTopologyFor returns the paper's Table 2 hierarchy for the given
// PM count and cache line size.
//
// Deprecated: use network.RingTopologyFor.
func RingTopologyFor(pms, lineBytes int) (topo.RingSpec, error) {
	return network.RingTopologyFor(pms, lineBytes)
}

// SingleRingCapacity is the paper's conservative single-ring node
// count per cache line size (Section 3, Figure 6).
//
// Deprecated: use network.SingleRingCapacity.
var SingleRingCapacity = network.SingleRingCapacity
