// Package core assembles processing modules and a network into a
// runnable system and drives it with the paper's output-analysis
// method: batch means with the first batch discarded.
//
// The registration order is fixed — PMs first, then the network — so
// within a tick every PM's commit (miss generation, memory service)
// precedes the network's commit (injection pickup, flit movement,
// delivery). This makes runs bit-for-bit reproducible for a given
// seed.
package core

import (
	"fmt"

	"ringmesh/internal/mesh"
	"ringmesh/internal/node"
	"ringmesh/internal/packet"
	"ringmesh/internal/ring"
	"ringmesh/internal/sim"
	"ringmesh/internal/stats"
	"ringmesh/internal/topo"
	"ringmesh/internal/trace"
	"ringmesh/internal/workload"
)

// network is the common surface of both interconnect models.
type network interface {
	sim.Component
	BufferedFlits() int
	ResetUtilization()
	CheckInvariants() error
}

// ringNetwork adds the ring-specific per-level utilization metric
// (implemented by both the wormhole and the slotted ring models).
type ringNetwork interface {
	network
	UtilizationByLevel() []float64
}

// System is a complete simulated multiprocessor.
type System struct {
	engine  *sim.Engine
	col     *node.Collector
	pms     []*node.PM
	net     network
	ringNet ringNetwork   // non-nil for ring systems
	meshNet *mesh.Network // non-nil for mesh systems

	ticksPerCycle int64
	pmCount       int
	workloadC     float64
	desc          string
}

// RingSystemConfig configures a hierarchical-ring system.
type RingSystemConfig struct {
	// Net is the network configuration (topology, line size, global
	// ring speed).
	Net ring.Config
	// Workload is the M-MRP attribute set.
	Workload workload.MMRP
	// MemLatency is the memory service time in PM cycles (0 = default).
	MemLatency int
	// Seed makes runs reproducible.
	Seed uint64
	// Histogram, when true, also collects the full latency
	// distribution so Result can report percentiles.
	Histogram bool
	// Tracer optionally records per-packet lifecycle events.
	Tracer *trace.Recorder
}

// NewRingSystem builds a hierarchical-ring multiprocessor.
func NewRingSystem(cfg RingSystemConfig) (*System, error) {
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Workload.Validate(); err != nil {
		return nil, err
	}
	p := cfg.Net.Spec.PMs()
	pattern, err := workload.NewRingLocality(p, cfg.Workload.R)
	if err != nil {
		return nil, err
	}
	tpc := cfg.Net.TicksPerCycle()
	s := &System{
		engine:        &sim.Engine{},
		col:           node.NewCollector(tpc),
		ticksPerCycle: tpc,
		pmCount:       p,
		workloadC:     cfg.Workload.C,
		desc:          fmt.Sprintf("ring %s cl=%dB (%s)", cfg.Net.Spec, cfg.Net.LineBytes, cfg.Net.Switching),
	}
	if cfg.Histogram {
		s.col.Hist = stats.NewHistogram(4096, 1)
	}
	ports := make([]ring.PMPort, p)
	for id := 0; id < p; id++ {
		pm, err := node.NewPM(id, node.Config{
			Workload:   cfg.Workload,
			Pattern:    pattern,
			Sizing:     packet.RingSizing,
			LineBytes:  cfg.Net.LineBytes,
			MemLatency: cfg.MemLatency,
			Seed:       cfg.Seed,
			Tracer:     cfg.Tracer,
		}, s.col)
		if err != nil {
			return nil, err
		}
		s.pms = append(s.pms, pm)
		ports[id] = pm
		s.engine.Register(pm, tpc)
	}
	var net ringNetwork
	var err2 error
	if cfg.Net.Switching == ring.Slotted {
		sn, err := ring.NewSlotted(cfg.Net, ports, s.engine)
		if err == nil {
			sn.SetTracer(cfg.Tracer)
		}
		net, err2 = sn, err
	} else {
		wn, err := ring.New(cfg.Net, ports, s.engine)
		if err == nil {
			wn.SetTracer(cfg.Tracer)
		}
		net, err2 = wn, err
	}
	if err2 != nil {
		return nil, err2
	}
	s.net, s.ringNet = net, net
	s.engine.Register(net, 1)
	s.engine.InFlight = s.col.InFlight
	return s, nil
}

// MeshSystemConfig configures a 2D mesh system.
type MeshSystemConfig struct {
	// Net is the network configuration (geometry, line size, buffer
	// depth).
	Net mesh.Config
	// Workload is the M-MRP attribute set.
	Workload workload.MMRP
	// MemLatency is the memory service time in PM cycles (0 = default).
	MemLatency int
	// Seed makes runs reproducible.
	Seed uint64
	// Histogram, when true, also collects the full latency
	// distribution so Result can report percentiles.
	Histogram bool
	// Tracer optionally records per-packet lifecycle events.
	Tracer *trace.Recorder
}

// NewMeshSystem builds a mesh multiprocessor.
func NewMeshSystem(cfg MeshSystemConfig) (*System, error) {
	if err := cfg.Net.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Workload.Validate(); err != nil {
		return nil, err
	}
	p := cfg.Net.Spec.PMs()
	pattern, err := workload.NewMeshLocality(cfg.Net.Spec, cfg.Workload.R)
	if err != nil {
		return nil, err
	}
	s := &System{
		engine:        &sim.Engine{},
		col:           node.NewCollector(1),
		ticksPerCycle: 1,
		pmCount:       p,
		workloadC:     cfg.Workload.C,
		desc:          fmt.Sprintf("mesh %s cl=%dB buf=%d", cfg.Net.Spec, cfg.Net.LineBytes, cfg.Net.BufferFlits),
	}
	if cfg.Histogram {
		s.col.Hist = stats.NewHistogram(4096, 1)
	}
	ports := make([]mesh.PMPort, p)
	for id := 0; id < p; id++ {
		pm, err := node.NewPM(id, node.Config{
			Workload:   cfg.Workload,
			Pattern:    pattern,
			Sizing:     packet.MeshSizing,
			LineBytes:  cfg.Net.LineBytes,
			MemLatency: cfg.MemLatency,
			Seed:       cfg.Seed,
			Tracer:     cfg.Tracer,
		}, s.col)
		if err != nil {
			return nil, err
		}
		s.pms = append(s.pms, pm)
		ports[id] = pm
		s.engine.Register(pm, 1)
	}
	net, err := mesh.New(cfg.Net, ports, s.engine)
	if err != nil {
		return nil, err
	}
	net.SetTracer(cfg.Tracer)
	s.net, s.meshNet = net, net
	s.engine.Register(net, 1)
	s.engine.InFlight = s.col.InFlight
	return s, nil
}

// Collector exposes the measurement aggregate (for tests).
func (s *System) Collector() *node.Collector { return s.col }

// Engine exposes the cycle engine (for tests).
func (s *System) Engine() *sim.Engine { return s.engine }

// PMs returns the number of processing modules.
func (s *System) PMs() int { return s.pmCount }

// Describe returns a human-readable system summary.
func (s *System) Describe() string { return s.desc }

// StepCycles advances the system by n PM clock cycles.
func (s *System) StepCycles(n int64) error {
	return s.engine.Run(n * s.ticksPerCycle)
}

// RunConfig controls the batch-means run.
type RunConfig struct {
	// WarmupCycles is the discarded first batch, in PM cycles.
	WarmupCycles int64
	// BatchCycles is the length of each retained batch.
	BatchCycles int64
	// Batches is the number of retained batches.
	Batches int
	// WatchdogCycles stalls-detection horizon (0 = default 20000).
	WatchdogCycles int64
}

// DefaultRunConfig returns run lengths that give tight confidence
// intervals for the paper's operating points in a few tens of
// milliseconds per point.
func DefaultRunConfig() RunConfig {
	return RunConfig{WarmupCycles: 4000, BatchCycles: 4000, Batches: 8}
}

// QuickRunConfig returns shortened lengths for smoke tests and
// benchmarks.
func QuickRunConfig() RunConfig {
	return RunConfig{WarmupCycles: 1000, BatchCycles: 1000, Batches: 4}
}

func (rc RunConfig) validate() error {
	if rc.WarmupCycles < 0 || rc.BatchCycles <= 0 || rc.Batches < 1 {
		return fmt.Errorf("core: bad run config %+v", rc)
	}
	return nil
}

// Result summarizes one simulation run.
type Result struct {
	// Latency is the average round-trip access latency in PM clock
	// cycles (the paper's primary metric).
	Latency float64
	// LatencyCI is the 95% confidence half-width on Latency.
	LatencyCI float64
	// Observations is the number of completed transactions measured.
	Observations int64
	// RingUtil is per-level ring utilization in [0,1] (index 0 =
	// global ring); nil for mesh systems.
	RingUtil []float64
	// MeshUtil is aggregate inter-router link utilization in [0,1];
	// zero for ring systems.
	MeshUtil float64
	// Throughput is completed transactions per PM cycle (whole
	// system).
	Throughput float64
	// Issued, Completed, Local are transaction counts over the whole
	// run (including warmup).
	Issued, Completed, Local int64
	// LatencyP50, LatencyP95 and LatencyMax describe the latency
	// distribution when the system was built with Histogram set
	// (zero otherwise).
	LatencyP50, LatencyP95, LatencyMax float64
	// BatchesCorrelated flags strong lag-1 autocorrelation among batch
	// means (|r| > 0.5): the batches are too short relative to the
	// system's time constants and LatencyCI understates uncertainty.
	BatchesCorrelated bool
	// Stalled is set when the deadlock watchdog tripped; the other
	// fields then describe the run up to the stall.
	Stalled bool
	// Saturated is set when processors spent most of their time
	// blocked on the T-window: the realized miss-generation rate fell
	// below half the configured rate C, so the network is past its
	// saturation point and the latency estimate understates open-loop
	// delay.
	Saturated bool
}

// Run executes warmup plus the configured batches and returns the
// aggregated result. A tripped watchdog sets Stalled instead of
// returning an error so sweeps can plot saturation points.
func (s *System) Run(rc RunConfig) (Result, error) {
	if err := rc.validate(); err != nil {
		return Result{}, err
	}
	wd := rc.WatchdogCycles
	if wd == 0 {
		wd = 20000
	}
	s.engine.WatchdogTicks = wd * s.ticksPerCycle

	stalled := false
	if err := s.StepCycles(rc.WarmupCycles); err != nil {
		stalled = true
	}
	s.col.Latency.CloseBatch() // discarded by the batch-means filter
	s.net.ResetUtilization()

	if !stalled {
		for b := 0; b < rc.Batches; b++ {
			if err := s.StepCycles(rc.BatchCycles); err != nil {
				stalled = true
				break
			}
			s.col.Latency.CloseBatch()
		}
	}
	if err := s.net.CheckInvariants(); err != nil {
		return Result{}, err
	}

	totalCycles := float64(rc.BatchCycles) * float64(rc.Batches)
	res := Result{
		Latency:      s.col.Latency.Mean(),
		LatencyCI:    s.col.Latency.HalfWidth(),
		Observations: s.col.Latency.Observations(),
		Issued:       s.col.Issued,
		Completed:    s.col.Completed,
		Local:        s.col.Local,
		Stalled:      stalled,
	}
	if totalCycles > 0 {
		res.Throughput = float64(res.Observations) / totalCycles
	}
	res.BatchesCorrelated = s.col.Latency.Correlated(0.5)
	if s.col.Hist != nil && s.col.Hist.Count() > 0 {
		res.LatencyP50 = s.col.Hist.Quantile(0.5)
		res.LatencyP95 = s.col.Hist.Quantile(0.95)
		res.LatencyMax = s.col.Hist.Quantile(1)
	}
	if s.ringNet != nil {
		res.RingUtil = s.ringNet.UtilizationByLevel()
	}
	if s.meshNet != nil {
		res.MeshUtil = s.meshNet.Utilization()
	}
	// Saturation: compare realized generation (remote + local misses)
	// against the configured rate C over the whole run including
	// warmup.
	allCycles := float64(rc.WarmupCycles) + totalCycles
	if allCycles > 0 {
		expected := s.workloadC * allCycles * float64(s.pmCount)
		if float64(res.Issued+res.Local) < 0.5*expected {
			res.Saturated = true
		}
	}
	return res, nil
}

// RingTopologyFor returns the hierarchy the paper's Table 2 would use
// for the given PM count and cache line size: leaf rings hold at most
// the single-ring capacity for that line size (12/8/6/4 PMs for
// 16/32/64/128-byte lines, Section 3) and every internal ring carries
// at most three children (the bisection-bandwidth limit the paper
// derives). Among the admissible hierarchies it picks the one with
// the fewest levels, then the smallest average hop distance.
func RingTopologyFor(pms, lineBytes int) (topo.RingSpec, error) {
	cap, ok := SingleRingCapacity[lineBytes]
	if !ok {
		return topo.RingSpec{}, fmt.Errorf("core: unsupported line size %dB", lineBytes)
	}
	specs := topo.EnumerateRingSpecs(pms, 4, 3, cap)
	if len(specs) == 0 {
		return topo.RingSpec{}, fmt.Errorf("core: no admissible ring topology for %d PMs at %dB lines", pms, lineBytes)
	}
	best := specs[0]
	bestHops := best.AverageRingHops()
	for _, s := range specs[1:] {
		h := s.AverageRingHops()
		if s.NumLevels() < best.NumLevels() ||
			(s.NumLevels() == best.NumLevels() && h < bestHops) {
			best, bestHops = s, h
		}
	}
	return best, nil
}

// SingleRingCapacity is the paper's conservative single-ring node
// count per cache line size (Section 3, Figure 6): the largest ring
// that shows almost no degradation under R=1.0, C=0.04, T=4.
var SingleRingCapacity = map[int]int{16: 12, 32: 8, 64: 6, 128: 4}
