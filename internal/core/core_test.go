package core

import (
	"testing"

	"ringmesh/internal/mesh"
	"ringmesh/internal/ring"
	"ringmesh/internal/topo"
	"ringmesh/internal/trace"
	"ringmesh/internal/workload"
)

func ringCfg(spec string, line int) RingSystemConfig {
	rs, err := topo.ParseRingSpec(spec)
	if err != nil {
		panic(err)
	}
	return RingSystemConfig{
		Net:      ring.Config{Spec: rs, LineBytes: line},
		Workload: workload.PaperDefaults(),
		Seed:     1,
	}
}

func meshCfg(k, line, buf int) MeshSystemConfig {
	return MeshSystemConfig{
		Net:      mesh.Config{Spec: topo.MustMeshSpec(k), LineBytes: line, BufferFlits: buf},
		Workload: workload.PaperDefaults(),
		Seed:     1,
	}
}

func quickRun(t *testing.T) RunConfig {
	t.Helper()
	return QuickRunConfig()
}

func TestRingSystemEndToEnd(t *testing.T) {
	sys, err := NewRingSystem(ringCfg("2:4", 32))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(quickRun(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled {
		t.Fatal("stalled")
	}
	if res.Observations == 0 {
		t.Fatal("no transactions completed")
	}
	if res.Latency <= 0 {
		t.Fatalf("latency = %v", res.Latency)
	}
	if len(res.RingUtil) != 2 {
		t.Fatalf("ring util levels = %d", len(res.RingUtil))
	}
	if res.MeshUtil != 0 {
		t.Fatal("ring system reported mesh utilization")
	}
	if res.Completed > res.Issued {
		t.Fatal("completed more than issued")
	}
}

func TestMeshSystemEndToEnd(t *testing.T) {
	sys, err := NewMeshSystem(meshCfg(3, 32, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(quickRun(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stalled || res.Observations == 0 {
		t.Fatalf("bad run: %+v", res)
	}
	if res.MeshUtil <= 0 || res.MeshUtil > 1 {
		t.Fatalf("mesh utilization = %v", res.MeshUtil)
	}
	if res.RingUtil != nil {
		t.Fatal("mesh system reported ring utilization")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		sys, err := NewRingSystem(ringCfg("2:3:4", 64))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(quickRun(t))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Latency != b.Latency || a.Issued != b.Issued || a.Completed != b.Completed {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestSeedsChangeResults(t *testing.T) {
	mk := func(seed uint64) Result {
		cfg := ringCfg("2:4", 32)
		cfg.Seed = seed
		sys, _ := NewRingSystem(cfg)
		res, err := sys.Run(quickRun(t))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if mk(1).Latency == mk(2).Latency {
		t.Fatal("different seeds gave identical latency (suspicious)")
	}
}

func TestBadConfigsRejected(t *testing.T) {
	cfg := ringCfg("2:4", 32)
	cfg.Workload.C = 0
	if _, err := NewRingSystem(cfg); err == nil {
		t.Fatal("bad workload accepted")
	}
	cfg = ringCfg("2:4", 0)
	if _, err := NewRingSystem(cfg); err == nil {
		t.Fatal("bad line size accepted")
	}
	mcfg := MeshSystemConfig{
		Net:      mesh.Config{Spec: topo.MeshSpec{K: 0}, LineBytes: 32},
		Workload: workload.PaperDefaults(),
	}
	if _, err := NewMeshSystem(mcfg); err == nil {
		t.Fatal("bad mesh accepted")
	}
	mcfg = meshCfg(2, 32, 4)
	mcfg.Workload.R = 2
	if _, err := NewMeshSystem(mcfg); err == nil {
		t.Fatal("bad R accepted")
	}
}

func TestRunConfigValidation(t *testing.T) {
	sys, _ := NewRingSystem(ringCfg("4", 32))
	if _, err := sys.Run(RunConfig{BatchCycles: 0, Batches: 1}); err == nil {
		t.Fatal("zero batch cycles accepted")
	}
	if _, err := sys.Run(RunConfig{BatchCycles: 100, Batches: 0}); err == nil {
		t.Fatal("zero batches accepted")
	}
}

// Latency must grow with system size under the no-locality workload
// (the paper's core scaling observation).
func TestLatencyGrowsWithRingSize(t *testing.T) {
	lat := func(spec string) float64 {
		sys, err := NewRingSystem(ringCfg(spec, 32))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(DefaultRunConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency
	}
	small, large := lat("4"), lat("3:8")
	if large <= small {
		t.Fatalf("latency did not grow with size: %v vs %v", small, large)
	}
}

// Mesh latency must drop when buffers deepen from 1 flit to cl (the
// paper's Figure 12 ordering).
func TestMeshBufferOrdering(t *testing.T) {
	lat := func(buf int) float64 {
		sys, err := NewMeshSystem(meshCfg(4, 64, buf))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(DefaultRunConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency
	}
	l1, l4, lcl := lat(1), lat(4), lat(0)
	if !(l1 > l4 && l4 >= lcl) {
		t.Fatalf("buffer ordering violated: 1-flit=%v 4-flit=%v cl=%v", l1, l4, lcl)
	}
}

// Locality must reduce ring latency (Figure 11's point).
func TestLocalityHelpsRings(t *testing.T) {
	lat := func(r float64) float64 {
		cfg := ringCfg("3:3:4", 32)
		cfg.Workload.R = r
		sys, err := NewRingSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(DefaultRunConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency
	}
	if full, local := lat(1.0), lat(0.1); local >= full {
		t.Fatalf("locality did not help: R=1.0 %v vs R=0.1 %v", full, local)
	}
}

// Double-speed global rings must reduce latency for a
// bisection-limited configuration (Figure 19's point).
func TestDoubleSpeedGlobalHelps(t *testing.T) {
	lat := func(dbl bool) float64 {
		cfg := ringCfg("3:3:4", 64)
		cfg.Net.DoubleSpeedGlobal = dbl
		sys, err := NewRingSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(DefaultRunConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency
	}
	normal, double := lat(false), lat(true)
	if double >= normal {
		t.Fatalf("double-speed global did not help: %v vs %v", normal, double)
	}
}

func TestStepCyclesAndAccessors(t *testing.T) {
	sys, _ := NewRingSystem(ringCfg("2:4", 32))
	if sys.PMs() != 8 {
		t.Fatalf("PMs = %d", sys.PMs())
	}
	if sys.Describe() == "" {
		t.Fatal("empty description")
	}
	if err := sys.StepCycles(10); err != nil {
		t.Fatal(err)
	}
	if sys.Engine().Now() != 10 {
		t.Fatalf("engine at %d", sys.Engine().Now())
	}
	// Double-speed systems advance two ticks per cycle.
	cfg := ringCfg("2:2:2", 32)
	cfg.Net.DoubleSpeedGlobal = true
	sys2, _ := NewRingSystem(cfg)
	if err := sys2.StepCycles(10); err != nil {
		t.Fatal(err)
	}
	if sys2.Engine().Now() != 20 {
		t.Fatalf("double-speed engine at %d ticks, want 20", sys2.Engine().Now())
	}
}

func TestRingTopologyForPaperTable(t *testing.T) {
	// Spot-check against the paper's Table 2 (exact entries depend on
	// their unstated tie-break; ours must at least produce admissible
	// hierarchies of the same depth and leaf bound).
	cases := []struct {
		pms, line  int
		wantLevels int
	}{
		{4, 16, 1}, {12, 16, 1}, {24, 16, 2}, {36, 16, 2},
		{72, 16, 3}, {108, 16, 3},
		{8, 32, 1}, {24, 32, 2}, {72, 32, 3},
		{6, 64, 1}, {18, 64, 2}, {54, 64, 3},
		{4, 128, 1}, {12, 128, 2}, {36, 128, 3}, {108, 128, 4},
	}
	for _, c := range cases {
		spec, err := RingTopologyFor(c.pms, c.line)
		if err != nil {
			t.Fatalf("RingTopologyFor(%d, %d): %v", c.pms, c.line, err)
		}
		if spec.PMs() != c.pms {
			t.Fatalf("topology %v has %d PMs, want %d", spec, spec.PMs(), c.pms)
		}
		if spec.NumLevels() != c.wantLevels {
			t.Fatalf("topology %v for (%d,%dB) has %d levels, want %d",
				spec, c.pms, c.line, spec.NumLevels(), c.wantLevels)
		}
		leaf := spec.Levels[spec.NumLevels()-1]
		if leaf > SingleRingCapacity[c.line] {
			t.Fatalf("topology %v leaf %d exceeds single-ring capacity", spec, leaf)
		}
	}
	if _, err := RingTopologyFor(24, 48); err == nil {
		t.Fatal("unsupported line size accepted")
	}
	if _, err := RingTopologyFor(7, 128); err == nil {
		t.Fatal("7 PMs at 128B has no admissible topology but none reported")
	}
}

// A saturating configuration must be flagged rather than silently
// reported with a misleading latency.
func TestSaturationFlag(t *testing.T) {
	cfg := ringCfg("3:3:8", 16) // small lines, huge hierarchy load
	cfg.Workload.C = 0.5        // absurd miss rate
	sys, err := NewRingSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(quickRun(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Fatalf("expected saturation flag: %+v", res)
	}
}

func TestThroughputReported(t *testing.T) {
	sys, _ := NewMeshSystem(meshCfg(3, 32, 4))
	res, err := sys.Run(quickRun(t))
	if err != nil {
		t.Fatal(err)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v", res.Throughput)
	}
}

func TestTraceCapturesLifecycles(t *testing.T) {
	rec := &trace.Recorder{}
	cfg := ringCfg("2:3", 32)
	cfg.Tracer = rec
	sys, err := NewRingSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StepCycles(2000); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) == 0 {
		t.Fatal("no events recorded")
	}
	// Every delivered packet's timeline must start with its issue (for
	// requests) or begin after one (responses are new packets), and
	// hops must be monotone in time.
	checked := 0
	for _, id := range rec.PacketIDs() {
		tl := rec.Timeline(id)
		last := int64(-1)
		delivered := false
		for _, e := range tl {
			if e.Tick < last {
				t.Fatalf("timeline of #%d not monotone: %v", id, tl)
			}
			last = e.Tick
			if e.Kind == trace.Deliver {
				delivered = true
			}
		}
		if delivered {
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no delivered packets traced")
	}
}

func TestTraceMesh(t *testing.T) {
	rec := &trace.Recorder{}
	cfg := meshCfg(3, 32, 4)
	cfg.Tracer = rec
	sys, err := NewMeshSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.StepCycles(2000); err != nil {
		t.Fatal(err)
	}
	kinds := map[trace.Kind]bool{}
	for _, e := range rec.Events() {
		kinds[e.Kind] = true
	}
	for _, want := range []trace.Kind{trace.Issue, trace.Inject, trace.Hop, trace.Deliver} {
		if !kinds[want] {
			t.Fatalf("mesh trace missing %v events", want)
		}
	}
}
