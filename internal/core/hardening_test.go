package core

// Hardened-execution tests: panic recovery at the Run boundary,
// wall-clock timeouts, context cancellation, and the fault-injection
// capability gate. The stub "paniktest" network below is registered
// once for the whole test binary; it moves no packets and detonates
// at a fixed tick, which is all the recovery path needs.

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"ringmesh/internal/fault"
	"ringmesh/internal/metrics"
	"ringmesh/internal/network"
	"ringmesh/internal/packet"
	"ringmesh/internal/sim"
	"ringmesh/internal/trace"
	"ringmesh/internal/workload"
)

// panicNet is a minimal network.Model that panics in Compute at a
// fixed tick. It implements none of the optional capabilities, which
// doubles as coverage for the capability gates.
type panicNet struct{ at int64 }

func (p *panicNet) Compute(now int64) {
	if now >= p.at {
		panic("paniktest: synthetic model bug")
	}
}
func (p *panicNet) Commit(int64)                    {}
func (p *panicNet) BufferedFlits() int              { return 0 }
func (p *panicNet) Stats() network.Stats            { return network.Stats{} }
func (p *panicNet) ResetUtilization()               {}
func (p *panicNet) SetTracer(*trace.Recorder)       {}
func (p *panicNet) DescribeMetrics(*metrics.Registry) {}

func init() {
	network.Register("paniktest", func(cfg network.Config) (*network.Plan, error) {
		n := cfg.Nodes
		if n == 0 {
			n = 4
		}
		return &network.Plan{
			Topology:      "paniktest",
			PMs:           n,
			TicksPerCycle: 1,
			Sizing:        packet.RingSizing,
			Locality: func(r float64) (workload.Pattern, error) {
				return workload.Uniform{P: n}, nil
			},
			Description: "test network that panics mid-run",
			Build: func(ports []network.Port, engine *sim.Engine) (network.Model, error) {
				return &panicNet{at: 50}, nil
			},
		}, nil
	})
}

func panicSys(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(SystemConfig{
		Network:  "paniktest",
		Net:      network.Config{LineBytes: 32},
		Workload: workload.PaperDefaults(),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRunRecoversModelPanic(t *testing.T) {
	_, err := panicSys(t).Run(QuickRunConfig())
	if err == nil {
		t.Fatal("panicking model returned no error")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "paniktest: synthetic model bug" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "panicNet") {
		t.Errorf("PanicError.Stack does not reach the model:\n%s", pe.Stack)
	}
}

func TestFaultPlanRejectedWithoutCapability(t *testing.T) {
	plan, err := fault.Parse("stutter@10+10:node=0")
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewSystem(SystemConfig{
		Network:   "paniktest",
		Net:       network.Config{LineBytes: 32},
		Workload:  workload.PaperDefaults(),
		Seed:      1,
		FaultPlan: plan,
	})
	if err == nil || !strings.Contains(err.Error(), "fault injection") {
		t.Fatalf("err = %v, want a does-not-support-fault-injection error", err)
	}
}

func TestRunTimeout(t *testing.T) {
	sys, err := NewRingSystem(ringCfg("2:4", 32))
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{WarmupCycles: 1 << 40, BatchCycles: 1 << 40, Batches: 1,
		Timeout: time.Millisecond}
	if _, err := sys.Run(rc); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestRunContextCanceled(t *testing.T) {
	sys, err := NewRingSystem(ringCfg("2:4", 32))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sys.RunCtx(ctx, RunConfig{WarmupCycles: 1 << 40, BatchCycles: 1 << 40, Batches: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestDeadlockForensics is the acceptance scenario: with the ring's
// deadlock-avoidance VCs disabled, a transient dead link at full load
// pushes the hierarchy into a genuine deadlock that persists after
// the fault clears, and the returned error both unwraps to
// sim.ErrStalled and carries a StallReport naming a wait-for cycle.
func TestDeadlockForensics(t *testing.T) {
	plan, err := fault.Parse("stutter@3000+4000:node=0")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(SystemConfig{
		Network: "ring",
		Net: network.Config{Topology: "2:4", LineBytes: 32,
			UnsafeNoVC: true, IRIQueueFlits: 4},
		Workload:  workload.MMRP{R: 1, C: 1, T: 16, ReadProb: 0.7},
		Seed:      1,
		FaultPlan: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Run(RunConfig{WarmupCycles: 2000, BatchCycles: 20000, Batches: 4,
		WatchdogCycles: 9000, FailOnStall: true})
	if !errors.Is(err, sim.ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	var se *sim.StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *sim.StallError", err)
	}
	rep := se.Report
	if rep == nil {
		t.Fatal("stall error without a report")
	}
	if len(rep.Cycles) == 0 {
		t.Fatalf("deadlock report names no wait-for cycle:\n%s", rep.Summary())
	}
	// The watchdog tripped long after the 4000-cycle fault expired:
	// the deadlock is the ring's own, not the fault still holding it.
	if len(rep.ActiveFaults) != 0 {
		t.Errorf("fault still active at stall time: %v", rep.ActiveFaults)
	}
	if rep.BufferedFlits == 0 {
		t.Error("deadlocked network reports no buffered flits")
	}
	if len(rep.Oldest) == 0 {
		t.Error("deadlock report lists no stuck packets")
	}
}

// TestStallReportOnResult checks the non-fatal path: without
// FailOnStall a tripped watchdog still surfaces the forensics on
// Result.Stall while the run returns normally.
func TestStallReportOnResult(t *testing.T) {
	plan, err := fault.Parse("stutter@1000+1000000:node=0")
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(SystemConfig{
		Network:   "ring",
		Net:       network.Config{Topology: "2:4", LineBytes: 32},
		Workload:  workload.MMRP{R: 1, C: 1, T: 16, ReadProb: 0.7},
		Seed:      1,
		FaultPlan: plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(RunConfig{WarmupCycles: 1000, BatchCycles: 5000, Batches: 2,
		WatchdogCycles: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stalled {
		t.Fatal("permanent dead link did not trip the watchdog")
	}
	if res.Stall == nil {
		t.Fatal("Result.Stalled set but Result.Stall is nil")
	}
	if len(res.Stall.ActiveFaults) == 0 {
		t.Errorf("report omits the active fault:\n%s", res.Stall.Summary())
	}
	if len(res.Stall.Cycles) == 0 {
		t.Errorf("report names no cycle for the faulted link:\n%s", res.Stall.Summary())
	}
}
