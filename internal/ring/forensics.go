package ring

// Stall forensics for the ring family (network.StallReporter). The
// builders run on a frozen system after the engine watchdog trips:
// they re-ask each station the same question compute asks every cycle
// — "what would you send, and would downstream take it?" — and turn
// every refusal into a wait-for edge. All inspection uses the same
// pure start-of-cycle predicates the switching logic uses (Peek and
// space checks), so building a report never mutates model state.
//
// Edges point at the agent that must act before the blocked sender
// can: the downstream station for transit-buffer refusals, and the
// station that drains the target IRI queue for exit refusals — the
// indirection that lets a hierarchy deadlock appear as a closed cycle
// of stations in the report.

import (
	"fmt"

	"ringmesh/internal/packet"
	"ringmesh/internal/sim"
)

// faultActive reports fault state without the self-clearing side
// effect of fltBlocked (forensics must not mutate).
func faultActive(f *stFault, now int64) bool { return f != nil && now < f.until }

// faultDescr renders one installed fault for StallReport.ActiveFaults.
func faultDescr(name string, f *stFault) string {
	if f.factor == 0 {
		return fmt.Sprintf("%s: output link dead until tick %d", name, f.until)
	}
	return fmt.Sprintf("%s: slowed x%d until tick %d", name, f.factor, f.until)
}

// BuildStallReport implements network.StallReporter for the wormhole
// network.
func (n *Network) BuildStallReport(now int64) *sim.StallReport {
	rep := &sim.StallReport{BufferedFlits: n.BufferedFlits()}

	// Who drains and who fills each IRI queue: the station injecting
	// from it, and the station whose exit feeds it.
	drain := map[*packet.FIFO]*station{}
	fill := map[*packet.FIFO]*station{}
	for _, ir := range n.iris {
		drain[ir.upResp], drain[ir.upReq] = ir.upper, ir.upper
		drain[ir.downResp], drain[ir.downReq] = ir.lower, ir.lower
		fill[ir.upResp], fill[ir.upReq] = ir.lower, ir.lower
		fill[ir.downResp], fill[ir.downReq] = ir.upper, ir.upper
	}
	pred := map[*station]*station{}
	for _, st := range n.stations {
		pred[st.downstream] = st
	}

	for _, st := range n.stations {
		if b := st.bufferedFlits(); b > 0 {
			rep.Buffers = append(rep.Buffers, sim.BufferStat{
				Node: st.name, Flits: b, Capacity: numVCs * n.clFlits,
			})
		}
		if faultActive(st.flt, now) {
			rep.ActiveFaults = append(rep.ActiveFaults, faultDescr(st.name, st.flt))
		}
		for v := 0; v < numVCs; v++ {
			f, src, ok := st.candidate(v)
			if !ok {
				// A committed worm whose next flit has not arrived
				// waits on whoever feeds its source queue.
				if vc := st.vcs[v]; vc.txPkt != nil {
					from, why := pred[st], "committed to a worm whose flits are still upstream"
					if vc.txSrc != nil {
						from, why = fill[vc.txSrc], "committed to a worm still crossing the IRI queue"
					}
					if from != nil {
						rep.WaitFor = append(rep.WaitFor,
							sim.WaitEdge{From: st.name, To: from.name, Why: why})
					}
				}
				continue
			}
			if faultActive(st.flt, now) && st.flt.factor == 0 {
				rep.WaitFor = append(rep.WaitFor,
					sim.WaitEdge{From: st.name, To: st.name, Why: "output link faulted"})
				continue
			}
			if _, accepted := st.downstream.accepts(f, v, src != nil); accepted {
				continue // this flit can move next cycle; not blocked
			}
			d := st.downstream
			exiting := false
			if f.Head() {
				exiting = d.exits != nil && d.exits(f.Pkt.Dst)
			} else {
				exiting = d.vcs[v].inPkt == f.Pkt && d.vcs[v].inRoute == routeExit
			}
			to, why := d, fmt.Sprintf("vc%d transit buffer full", v)
			if exiting {
				if qs, isQueue := d.exitSink.(*queueSink); isQueue {
					to = drain[qs.pick(f.Pkt)]
					why = "IRI transfer queue full"
				}
			} else if src != nil && d.vcs[v].buf.Space() >= 1 {
				why = fmt.Sprintf("bubble rule: vc%d transit path full ring-wide", v)
			}
			rep.WaitFor = append(rep.WaitFor,
				sim.WaitEdge{From: st.name, To: to.name, Why: why})
		}
	}

	for _, ir := range n.iris {
		name := fmt.Sprintf("iri[%d,%d)", ir.lo, ir.hi)
		if l := ir.upResp.Len() + ir.upReq.Len(); l > 0 {
			rep.Buffers = append(rep.Buffers, sim.BufferStat{
				Node: name + ".up", Flits: l, Capacity: ir.upResp.Cap() + ir.upReq.Cap(),
			})
		}
		if l := ir.downResp.Len() + ir.downReq.Len(); l > 0 {
			rep.Buffers = append(rep.Buffers, sim.BufferStat{
				Node: name + ".down", Flits: l, Capacity: ir.downResp.Cap() + ir.downReq.Cap(),
			})
		}
	}

	rep.Cycles = sim.DetectCycles(rep.WaitFor)
	rep.Oldest = sim.SortOldest(n.stuckPackets(now), 5)
	return rep
}

// stuckPackets snapshots every distinct packet with flits buffered in
// the network, tagged with the first buffer it was found in.
func (n *Network) stuckPackets(now int64) []sim.StuckPacket {
	var out []sim.StuckPacket
	seen := map[*packet.Packet]bool{}
	collect := func(where string, q *packet.FIFO) {
		q.EachPacket(func(p *packet.Packet) {
			if seen[p] {
				return
			}
			seen[p] = true
			out = append(out, sim.StuckPacket{
				ID: p.ID, Type: p.Type.String(), Src: p.Src, Dst: p.Dst,
				AgeTicks: now - p.Issue, Where: where,
			})
		})
	}
	for _, st := range n.stations {
		for v := 0; v < numVCs; v++ {
			collect(st.name, st.vcs[v].buf)
		}
	}
	for id, nc := range n.nics {
		loc := fmt.Sprintf("nic%d.out", id)
		collect(loc, nc.outResp)
		collect(loc, nc.outReq)
	}
	for _, ir := range n.iris {
		name := fmt.Sprintf("iri[%d,%d)", ir.lo, ir.hi)
		collect(name+".up", ir.upResp)
		collect(name+".up", ir.upReq)
		collect(name+".down", ir.downResp)
		collect(name+".down", ir.downReq)
	}
	return out
}

// BuildStallReport implements network.StallReporter for the slotted
// network. Slotted rings cannot gridlock (slots advance regardless),
// so a trip here is a livelock: packets NACKed around their ring
// because an IRI transfer queue never drains, or injections starved
// by full occupancy. Ring instances appear as "sring[lo,hi)" nodes so
// those relationships still form cycles.
func (n *SlottedNetwork) BuildStallReport(now int64) *sim.StallReport {
	rep := &sim.StallReport{BufferedFlits: n.BufferedFlits()}

	drain := map[*spktQueue]*sstation{}
	for _, st := range n.stations {
		for _, q := range st.inject {
			drain[q] = st
		}
	}
	ringOf := map[*sstation]*sring{}
	ringName := func(r *sring) string { return fmt.Sprintf("sring[%d,%d)", r.lo, r.hi) }
	for _, r := range n.rings {
		for _, st := range r.stations {
			ringOf[st] = r
		}
	}

	seen := map[*packet.Packet]bool{}
	addPkt := func(p *packet.Packet, where string) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		rep.Oldest = append(rep.Oldest, sim.StuckPacket{
			ID: p.ID, Type: p.Type.String(), Src: p.Src, Dst: p.Dst,
			AgeTicks: now - p.Issue, Where: where,
		})
	}

	for _, r := range n.rings {
		flits := 0
		for i := range r.slots {
			p := r.slots[i].pkt
			if p == nil {
				continue
			}
			flits += p.Flits
			addPkt(p, ringName(r))
			// A circulating packet blocked at its exit: find its exit
			// station on this ring and the queue that refuses it.
			for _, st := range r.stations {
				if st.exits == nil || !st.exits(p.Dst) || st.exitPM != nil {
					continue
				}
				if q := st.exitQueueFor(p); q.count() >= q.cap {
					rep.WaitFor = append(rep.WaitFor, sim.WaitEdge{
						From: ringName(r), To: drain[q].name,
						Why: "IRI transfer queue full (packet NACKed each lap)",
					})
				}
				break
			}
		}
		if flits > 0 {
			rep.Buffers = append(rep.Buffers, sim.BufferStat{
				Node: ringName(r), Flits: flits, Capacity: len(r.slots) * n.clFlits,
			})
		}
	}

	for _, st := range n.stations {
		if faultActive(st.flt, now) {
			rep.ActiveFaults = append(rep.ActiveFaults, faultDescr(st.name, st.flt))
			if st.flt.factor == 0 {
				rep.WaitFor = append(rep.WaitFor,
					sim.WaitEdge{From: st.name, To: st.name, Why: "ring attachment faulted"})
			}
		}
		for _, q := range st.inject {
			if p, ok := q.peek(now); ok {
				addPkt(p, st.name)
				r := ringOf[st]
				if !r.mayAdmit(p) {
					rep.WaitFor = append(rep.WaitFor, sim.WaitEdge{
						From: st.name, To: ringName(r),
						Why: "no admissible slot (ring occupancy at the ascent bound)",
					})
				}
			}
			for _, it := range q.items {
				addPkt(it.pkt, st.name)
			}
		}
	}

	for _, ir := range n.iris {
		name := fmt.Sprintf("siri[%d,%d)", ir.lo, ir.hi)
		if l := ir.upResp.bufferedFlits() + ir.upReq.bufferedFlits(); l > 0 {
			rep.Buffers = append(rep.Buffers, sim.BufferStat{
				Node: name + ".up", Flits: l,
				Capacity: (ir.upResp.cap + ir.upReq.cap) * n.clFlits,
			})
		}
		if l := ir.downResp.bufferedFlits() + ir.downReq.bufferedFlits(); l > 0 {
			rep.Buffers = append(rep.Buffers, sim.BufferStat{
				Node: name + ".down", Flits: l,
				Capacity: (ir.downResp.cap + ir.downReq.cap) * n.clFlits,
			})
		}
	}

	rep.Cycles = sim.DetectCycles(rep.WaitFor)
	rep.Oldest = sim.SortOldest(rep.Oldest, 5)
	return rep
}
