package ring

import (
	"testing"

	"ringmesh/internal/packet"
	"ringmesh/internal/sim"
	"ringmesh/internal/topo"
)

// fakePM is a scriptable PM for driving the network directly.
type fakePM struct {
	id        int
	pendReq   []*packet.Packet
	pendResp  []*packet.Packet
	delivered []*packet.Packet
	deliverAt []int64
}

func (f *fakePM) PendingResponse() (*packet.Packet, bool) {
	if len(f.pendResp) == 0 {
		return nil, false
	}
	return f.pendResp[0], true
}
func (f *fakePM) PopPendingResponse() *packet.Packet {
	p := f.pendResp[0]
	f.pendResp = f.pendResp[1:]
	return p
}
func (f *fakePM) PendingRequest() (*packet.Packet, bool) {
	if len(f.pendReq) == 0 {
		return nil, false
	}
	return f.pendReq[0], true
}
func (f *fakePM) PopPendingRequest() *packet.Packet {
	p := f.pendReq[0]
	f.pendReq = f.pendReq[1:]
	return p
}
func (f *fakePM) Deliver(p *packet.Packet, now int64) {
	f.delivered = append(f.delivered, p)
	f.deliverAt = append(f.deliverAt, now)
}

// harness builds a network over fake PMs.
type harness struct {
	engine *sim.Engine
	net    *Network
	pms    []*fakePM
}

func newHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	engine := &sim.Engine{}
	pms := make([]*fakePM, cfg.Spec.PMs())
	ports := make([]PMPort, len(pms))
	for i := range pms {
		pms[i] = &fakePM{id: i}
		ports[i] = pms[i]
	}
	net, err := New(cfg, ports, engine)
	if err != nil {
		t.Fatal(err)
	}
	engine.Register(net, 1)
	return &harness{engine: engine, net: net, pms: pms}
}

func (h *harness) run(t *testing.T, ticks int) {
	t.Helper()
	for i := 0; i < ticks; i++ {
		h.engine.Step()
		if err := h.net.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func mkPkt(id uint64, typ packet.Type, src, dst, lineBytes int) *packet.Packet {
	return &packet.Packet{
		ID: id, Type: typ, Src: src, Dst: dst,
		Flits: packet.RingSizing.PacketFlits(typ, lineBytes),
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Spec: topo.MustRingSpec(2, 4), LineBytes: 32}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Spec: topo.RingSpec{}, LineBytes: 32},
		{Spec: topo.MustRingSpec(4), LineBytes: 0},
		{Spec: topo.MustRingSpec(4), LineBytes: 48}, // not a paper sizing
		{Spec: topo.MustRingSpec(1, 4), LineBytes: 32}, // 1-child global
		{Spec: topo.MustRingSpec(4), LineBytes: 32, IRIQueueFlits: -1},
		// Queue smaller than one cache-line worm: would wedge forever.
		{Spec: topo.MustRingSpec(2, 4), LineBytes: 32, IRIQueueFlits: 1},
		{Spec: topo.MustRingSpec(4), LineBytes: 32, Switching: Switching(9)},
		// Slotted rings have no VCs to disable.
		{Spec: topo.MustRingSpec(4), LineBytes: 32, Switching: Slotted, UnsafeNoVC: true},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestTicksPerCycle(t *testing.T) {
	c := Config{Spec: topo.MustRingSpec(4), LineBytes: 32}
	if c.TicksPerCycle() != 1 {
		t.Fatal("normal speed should be 1 tick/cycle")
	}
	c.DoubleSpeedGlobal = true
	if c.TicksPerCycle() != 2 {
		t.Fatal("double speed should be 2 ticks/cycle")
	}
}

func TestNewRejectsWrongPMCount(t *testing.T) {
	engine := &sim.Engine{}
	_, err := New(Config{Spec: topo.MustRingSpec(4), LineBytes: 32},
		make([]PMPort, 3), engine)
	if err == nil {
		t.Fatal("wrong PM count accepted")
	}
}

func TestStationCount(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustRingSpec(2, 3, 4), LineBytes: 32})
	// 24 NICs + 8 IRIs x 2 stations.
	if got := h.net.NumStations(); got != 24+16 {
		t.Fatalf("stations = %d, want 40", got)
	}
}

// A single-flit request on a 2-node ring: injected at t, the NIC
// output sends it at t+1 and it is delivered the same tick (tail
// flit).
func TestSingleRingDeliveryTiming(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustRingSpec(2), LineBytes: 64})
	p := mkPkt(1, packet.ReadRequest, 0, 1, 64)
	h.pms[0].pendReq = append(h.pms[0].pendReq, p)
	h.run(t, 5)
	if len(h.pms[1].delivered) != 1 {
		t.Fatalf("delivered %d packets", len(h.pms[1].delivered))
	}
	// Tick 0 commit: refill pulls the packet into the NIC out queue.
	// Tick 1 compute/commit: flit crosses to NIC 1 and is delivered.
	if h.pms[1].deliverAt[0] != 1 {
		t.Fatalf("delivered at tick %d, want 1", h.pms[1].deliverAt[0])
	}
}

// A multi-flit packet takes flits-1 extra cycles (pipelined).
func TestMultiFlitSerialization(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustRingSpec(2), LineBytes: 64})
	p := mkPkt(1, packet.ReadResponse, 0, 1, 64) // 5 flits
	h.pms[0].pendResp = append(h.pms[0].pendResp, p)
	h.run(t, 10)
	if len(h.pms[1].delivered) != 1 {
		t.Fatalf("delivered %d packets", len(h.pms[1].delivered))
	}
	if h.pms[1].deliverAt[0] != 5 {
		t.Fatalf("tail delivered at tick %d, want 5", h.pms[1].deliverAt[0])
	}
}

// Delivery time across an idle hierarchy equals injection (1) +
// RingHops + flits - 1, matching topo's distance model.
func TestZeroLoadLatencyMatchesRingHops(t *testing.T) {
	spec := topo.MustRingSpec(2, 3, 4)
	h := newHarness(t, Config{Spec: spec, LineBytes: 32})
	cases := []struct{ src, dst int }{
		{0, 1}, {1, 0}, {0, 5}, {5, 19}, {23, 0}, {8, 16},
	}
	id := uint64(1)
	for _, c := range cases {
		h2 := newHarness(t, Config{Spec: spec, LineBytes: 32})
		p := mkPkt(id, packet.ReadRequest, c.src, c.dst, 32)
		id++
		h2.pms[c.src].pendReq = append(h2.pms[c.src].pendReq, p)
		h2.run(t, 100)
		if len(h2.pms[c.dst].delivered) != 1 {
			t.Fatalf("%d->%d: not delivered", c.src, c.dst)
		}
		want := int64(spec.RingHops(c.src, c.dst)) // 1-flit packet: tail = head
		if got := h2.pms[c.dst].deliverAt[0]; got != want {
			t.Fatalf("%d->%d delivered at %d, want %d (hops)", c.src, c.dst, got, want)
		}
		_ = h
	}
}

// Responses are injected before requests when both are pending.
func TestResponsePriorityAtInjection(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustRingSpec(3), LineBytes: 32})
	req := mkPkt(1, packet.ReadRequest, 0, 1, 32)
	resp := mkPkt(2, packet.ReadResponse, 0, 1, 32) // 3 flits
	h.pms[0].pendReq = append(h.pms[0].pendReq, req)
	h.pms[0].pendResp = append(h.pms[0].pendResp, resp)
	h.run(t, 20)
	if len(h.pms[1].delivered) != 2 {
		t.Fatalf("delivered %d packets", len(h.pms[1].delivered))
	}
	if h.pms[1].delivered[0].ID != 2 {
		t.Fatalf("first delivery was %v, want the response", h.pms[1].delivered[0])
	}
}

// Transit traffic has priority over local injection: when a station
// holds both a transit packet and an injectable packet of the same
// channel, the transit packet is selected.
func TestTransitPriority(t *testing.T) {
	st := newStation("s", 0, 3)
	inst := &ringInst{stations: []*station{st}, lo: 0, hi: 8}
	st.ring = inst
	outResp := packet.NewFIFO(3)
	outReq := packet.NewFIFO(3)
	st.inject = []*packet.FIFO{outResp, outReq}

	transit := &packet.Packet{ID: 1, Type: packet.ReadResponse, Dst: 3, Flits: 3}
	local := &packet.Packet{ID: 2, Type: packet.ReadResponse, Dst: 3, Flits: 3}
	st.vcs[vcDescent].buf.Push(packet.Flit{Pkt: transit, Index: 0})
	for i := 0; i < 3; i++ {
		outResp.Push(packet.Flit{Pkt: local, Index: i})
	}
	f, src, ok := st.candidate(vcDescent)
	if !ok || f.Pkt != transit || src != nil {
		t.Fatalf("candidate = %v from %v, want transit packet", f, src)
	}
	// Response injection beats request injection once transit drains.
	st.vcs[vcDescent].buf.Pop()
	req := &packet.Packet{ID: 3, Type: packet.ReadRequest, Dst: 3, Flits: 1}
	outReq.Push(packet.Flit{Pkt: req, Index: 0})
	f, src, ok = st.candidate(vcDescent)
	if !ok || f.Pkt != local || src != outResp {
		t.Fatalf("candidate = %v, want the response packet", f)
	}
}

// Packets never interleave flits of two packets on one link within a
// virtual channel: delivery order per destination is per-packet
// contiguous by construction; here we verify ordering of two streams
// from different sources to one destination completes intact (the
// FIFO panics inside the network would fire otherwise).
func TestNoInterleaveUnderContention(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustRingSpec(6), LineBytes: 128})
	for i := 0; i < 8; i++ {
		h.pms[0].pendResp = append(h.pms[0].pendResp, mkPkt(uint64(100+i), packet.ReadResponse, 0, 3, 128))
		h.pms[1].pendResp = append(h.pms[1].pendResp, mkPkt(uint64(200+i), packet.ReadResponse, 1, 3, 128))
		h.pms[2].pendResp = append(h.pms[2].pendResp, mkPkt(uint64(300+i), packet.ReadResponse, 2, 3, 128))
	}
	h.run(t, 600)
	if len(h.pms[3].delivered) != 24 {
		t.Fatalf("delivered %d packets, want 24", len(h.pms[3].delivered))
	}
}

// Cross-ring transfer exercises the IRI path end to end.
func TestHierarchyCrossRing(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustRingSpec(2, 2, 3), LineBytes: 64})
	// PM 0 (first leaf) to PM 11 (last leaf): full ascent + descent.
	p := mkPkt(1, packet.WriteRequest, 0, 11, 64)
	h.pms[0].pendReq = append(h.pms[0].pendReq, p)
	h.run(t, 200)
	if len(h.pms[11].delivered) != 1 {
		t.Fatal("cross-hierarchy packet not delivered")
	}
	if h.pms[11].delivered[0].ID != 1 {
		t.Fatal("wrong packet delivered")
	}
}

// All-to-all storm across a 3-level hierarchy completes without
// deadlock and without invariant violations (the regression test for
// the virtual-channel deadlock fix).
func TestStormNoDeadlock(t *testing.T) {
	spec := topo.MustRingSpec(3, 3, 4)
	h := newHarness(t, Config{Spec: spec, LineBytes: 32})
	id := uint64(1)
	total := 0
	for s := 0; s < spec.PMs(); s++ {
		for k := 0; k < 6; k++ {
			d := (s + 7 + 5*k) % spec.PMs()
			if d == s {
				continue
			}
			typ := packet.ReadResponse
			if k%2 == 0 {
				typ = packet.WriteRequest
			}
			h.pms[s].pendReq = append(h.pms[s].pendReq, mkPkt(id, typ, s, d, 32))
			id++
			total++
		}
	}
	h.run(t, 5000)
	got := 0
	for _, pm := range h.pms {
		got += len(pm.delivered)
	}
	if got != total {
		t.Fatalf("delivered %d of %d packets (deadlock or loss)", got, total)
	}
	if h.net.BufferedFlits() != 0 {
		t.Fatalf("%d flits still buffered after drain", h.net.BufferedFlits())
	}
}

// Double-speed global ring: stations on the global ring act every
// tick, others every second tick; traffic still flows end to end.
func TestDoubleSpeedGlobalDelivery(t *testing.T) {
	spec := topo.MustRingSpec(3, 2, 2)
	h := newHarness(t, Config{Spec: spec, LineBytes: 32, DoubleSpeedGlobal: true})
	p := mkPkt(1, packet.ReadRequest, 0, 11, 32)
	h.pms[0].pendReq = append(h.pms[0].pendReq, p)
	h.run(t, 400)
	if len(h.pms[11].delivered) != 1 {
		t.Fatal("packet not delivered under double-speed clocking")
	}
}

// Double-speed must strictly help a global-ring-crossing stream.
func TestDoubleSpeedIsFaster(t *testing.T) {
	spec := topo.MustRingSpec(3, 2, 2)
	load := func(dbl bool) int64 {
		cfg := Config{Spec: spec, LineBytes: 128, DoubleSpeedGlobal: dbl}
		h := newHarness(t, cfg)
		id := uint64(1)
		for s := 0; s < 4; s++ { // first ring PMs blast the far ring
			for k := 0; k < 4; k++ {
				h.pms[s].pendResp = append(h.pms[s].pendResp,
					mkPkt(id, packet.ReadResponse, s, 8+s, 128))
				id++
			}
		}
		ticks := int64(0)
		for ; ticks < 10000; ticks++ {
			h.engine.Step()
			done := 0
			for _, pm := range h.pms {
				done += len(pm.delivered)
			}
			if done == 16 {
				break
			}
		}
		cycles := ticks
		if dbl {
			cycles /= 2 // normalize ticks to PM cycles
		}
		return cycles
	}
	normal := load(false)
	double := load(true)
	if double >= normal {
		t.Fatalf("double-speed global not faster: %d vs %d PM cycles", double, normal)
	}
}

// Utilization accounting: one packet crossing the ring produces busy
// link-cycles on exactly the links it traversed.
func TestUtilizationCounts(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustRingSpec(4), LineBytes: 32})
	h.pms[0].pendReq = append(h.pms[0].pendReq, mkPkt(1, packet.ReadRequest, 0, 2, 32))
	h.run(t, 10)
	u := h.net.UtilizationByLevel()
	if len(u) != 1 {
		t.Fatalf("levels = %d", len(u))
	}
	// 2 link-crossings over 10 ticks x 4 stations = 2/40.
	want := 2.0 / 40.0
	if u[0] < want-1e-9 || u[0] > want+1e-9 {
		t.Fatalf("utilization = %v, want %v", u[0], want)
	}
	h.net.ResetUtilization()
	if got := h.net.UtilizationByLevel()[0]; got != 0 {
		t.Fatalf("utilization after reset = %v", got)
	}
}

// IRI queue capacity override is honoured.
func TestIRIQueueOverride(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustRingSpec(2, 2), LineBytes: 32, IRIQueueFlits: 12})
	for _, ir := range h.net.iris {
		if ir.upResp.Cap() != 12 || ir.downReq.Cap() != 12 {
			t.Fatalf("IRI queue caps = %d/%d, want 12", ir.upResp.Cap(), ir.downReq.Cap())
		}
	}
}

// The virtual-channel classifier: packets to destinations inside a
// ring's range ride the descent channel, others the ascent channel.
func TestVCClassing(t *testing.T) {
	r := &ringInst{lo: 4, hi: 8}
	if r.class(5) != vcDescent {
		t.Fatal("in-range dst should be descent")
	}
	if r.class(3) != vcAscent || r.class(8) != vcAscent {
		t.Fatal("out-of-range dst should be ascent")
	}
}

// Bubble rule bookkeeping: residency is tracked from admission to
// departure, idempotently.
func TestResidentsCount(t *testing.T) {
	st := newStation("s", 0, 3)
	r := &ringInst{stations: []*station{st}, lo: 0, hi: 4}
	for v := 0; v < numVCs; v++ {
		r.resident[v] = map[*packet.Packet]bool{}
	}
	st.ring = r
	if r.residents(vcDescent) != 0 {
		t.Fatal("fresh ring has residents")
	}
	p := &packet.Packet{ID: 1, Flits: 3, Dst: 1}
	r.admit(vcDescent, p)
	r.admit(vcDescent, p) // double admit must not double count
	if r.residents(vcDescent) != 1 {
		t.Fatal("admit not idempotent")
	}
	q := &packet.Packet{ID: 2, Flits: 1, Dst: 2}
	r.admit(vcDescent, q)
	if r.residents(vcDescent) != 2 {
		t.Fatal("second packet not counted")
	}
	if r.residents(vcAscent) != 0 {
		t.Fatal("channels must be independent")
	}
	r.depart(vcDescent, p)
	r.depart(vcDescent, p) // idempotent
	if r.residents(vcDescent) != 1 {
		t.Fatal("departure not applied")
	}
	// The bubble bound: with 1 station, S-2 < 0 so nothing more may be
	// admitted.
	if r.mayAdmitNewResident(vcDescent) {
		t.Fatal("tiny ring admitted beyond the bubble bound")
	}
}
