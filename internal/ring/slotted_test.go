package ring

import (
	"testing"
	"testing/quick"

	"ringmesh/internal/packet"
	"ringmesh/internal/rng"
	"ringmesh/internal/sim"
	"ringmesh/internal/topo"
)

// slottedHarness builds a slotted network over fake PMs.
type slottedHarness struct {
	engine *sim.Engine
	net    *SlottedNetwork
	pms    []*fakePM
}

func newSlottedHarness(t *testing.T, cfg Config) *slottedHarness {
	t.Helper()
	engine := &sim.Engine{}
	pms := make([]*fakePM, cfg.Spec.PMs())
	ports := make([]PMPort, len(pms))
	for i := range pms {
		pms[i] = &fakePM{id: i}
		ports[i] = pms[i]
	}
	net, err := NewSlotted(cfg, ports, engine)
	if err != nil {
		t.Fatal(err)
	}
	engine.Register(net, 1)
	return &slottedHarness{engine: engine, net: net, pms: pms}
}

func (h *slottedHarness) run(t *testing.T, ticks int) {
	t.Helper()
	for i := 0; i < ticks; i++ {
		h.engine.Step()
		if err := h.net.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSwitchingString(t *testing.T) {
	if Wormhole.String() != "wormhole" || Slotted.String() != "slotted" {
		t.Fatal("switching names wrong")
	}
	if Switching(7).String() == "" {
		t.Fatal("unknown switching should render")
	}
}

// A slot advances one position every cl ring cycles: a packet
// injected on a 4-node single ring reaches its neighbour after one
// slot period.
func TestSlottedHopTiming(t *testing.T) {
	const line = 32 // cl = 3 flits
	h := newSlottedHarness(t, Config{Spec: topo.MustRingSpec(4), LineBytes: line, Switching: Slotted})
	p := mkPkt(1, packet.ReadRequest, 0, 1, line)
	h.pms[0].pendReq = append(h.pms[0].pendReq, p)
	h.run(t, 60)
	if len(h.pms[1].delivered) != 1 {
		t.Fatal("packet not delivered")
	}
	// Refill at tick 0 (ready at 1); first slot boundary at tick 3
	// injects; the next boundary (tick 6) advances it to the
	// neighbour, which delivers on the spot.
	if got := h.pms[1].deliverAt[0]; got != 6 {
		t.Fatalf("delivered at tick %d, want 6", got)
	}
}

// Distance across a single slotted ring is hops x cl cycles.
func TestSlottedDistanceScaling(t *testing.T) {
	const line = 64 // cl = 5
	times := map[int]int64{}
	for _, dst := range []int{1, 2, 3} {
		h := newSlottedHarness(t, Config{Spec: topo.MustRingSpec(4), LineBytes: line, Switching: Slotted})
		h.pms[0].pendReq = append(h.pms[0].pendReq, mkPkt(1, packet.ReadRequest, 0, dst, line))
		h.run(t, 200)
		if len(h.pms[dst].delivered) != 1 {
			t.Fatalf("0->%d not delivered", dst)
		}
		times[dst] = h.pms[dst].deliverAt[0]
	}
	if times[2]-times[1] != 5 || times[3]-times[2] != 5 {
		t.Fatalf("per-hop cost should be cl=5 cycles: %v", times)
	}
}

// Cross-hierarchy delivery works and store-and-forward at the IRI
// adds whole-packet latency.
func TestSlottedHierarchyDelivery(t *testing.T) {
	h := newSlottedHarness(t, Config{Spec: topo.MustRingSpec(2, 2, 3), LineBytes: 32, Switching: Slotted})
	h.pms[0].pendReq = append(h.pms[0].pendReq, mkPkt(1, packet.WriteRequest, 0, 11, 32))
	h.run(t, 1000)
	if len(h.pms[11].delivered) != 1 {
		t.Fatal("cross-hierarchy packet not delivered")
	}
}

// The regression that motivated the ascent admission rule: a full
// saturating storm across a 3-level hierarchy must drain completely.
func TestSlottedStormDrains(t *testing.T) {
	spec := topo.MustRingSpec(3, 3, 4)
	h := newSlottedHarness(t, Config{Spec: spec, LineBytes: 32, Switching: Slotted})
	r := rng.New(11)
	total := 0
	id := uint64(1)
	for s := 0; s < spec.PMs(); s++ {
		for k := 0; k < 6; k++ {
			d := r.Intn(spec.PMs())
			if d == s {
				continue
			}
			typ := packet.ReadResponse
			if k%2 == 0 {
				typ = packet.WriteRequest
			}
			p := mkPkt(id, typ, s, d, 32)
			id++
			total++
			if typ.IsResponse() {
				h.pms[s].pendResp = append(h.pms[s].pendResp, p)
			} else {
				h.pms[s].pendReq = append(h.pms[s].pendReq, p)
			}
		}
	}
	h.run(t, 30000)
	done := 0
	for _, pm := range h.pms {
		done += len(pm.delivered)
	}
	if done != total {
		t.Fatalf("delivered %d of %d (slotted hierarchy wedged)", done, total)
	}
	if h.net.BufferedFlits() != 0 {
		t.Fatalf("%d flits left buffered", h.net.BufferedFlits())
	}
}

// Property: random traffic over random small slotted hierarchies is
// delivered exactly once, in per-(src,dst,class) order.
func TestQuickSlottedConservation(t *testing.T) {
	f := func(seed uint64, shape, nPkts uint8) bool {
		shapes := []topo.RingSpec{
			topo.MustRingSpec(4),
			topo.MustRingSpec(2, 3),
			topo.MustRingSpec(2, 2, 3),
		}
		spec := shapes[int(shape)%len(shapes)]
		lines := []int{16, 32, 128}
		line := lines[int(seed%uint64(len(lines)))]
		engine := &sim.Engine{}
		pms := make([]*fakePM, spec.PMs())
		ports := make([]PMPort, len(pms))
		for i := range pms {
			pms[i] = &fakePM{id: i}
			ports[i] = pms[i]
		}
		net, err := NewSlotted(Config{Spec: spec, LineBytes: line, Switching: Slotted}, ports, engine)
		if err != nil {
			return false
		}
		engine.Register(net, 1)
		r := rng.New(seed)
		total := int(nPkts%30) + 1
		type key struct {
			src, dst int
			resp     bool
		}
		order := map[key][]uint64{}
		for i := 0; i < total; i++ {
			src := r.Intn(spec.PMs())
			dst := r.Intn(spec.PMs())
			if dst == src {
				dst = (dst + 1) % spec.PMs()
			}
			typ := packet.ReadRequest
			if r.Bernoulli(0.5) {
				typ = packet.ReadResponse
			}
			p := mkPkt(uint64(i+1), typ, src, dst, line)
			if typ.IsResponse() {
				pms[src].pendResp = append(pms[src].pendResp, p)
			} else {
				pms[src].pendReq = append(pms[src].pendReq, p)
			}
			k := key{src, dst, typ.IsResponse()}
			order[k] = append(order[k], p.ID)
		}
		for tick := 0; tick < 60000; tick++ {
			engine.Step()
			if net.CheckInvariants() != nil {
				return false
			}
			done := 0
			for _, pm := range pms {
				done += len(pm.delivered)
			}
			if done == total && net.BufferedFlits() == 0 {
				break
			}
		}
		seen := map[uint64]bool{}
		got := 0
		pos := map[uint64]int{}
		for id, pm := range pms {
			for i, p := range pm.delivered {
				if p.Dst != id || seen[p.ID] {
					return false
				}
				seen[p.ID] = true
				pos[p.ID] = i
				got++
			}
		}
		if got != total {
			return false
		}
		for _, ids := range order {
			for i := 1; i < len(ids); i++ {
				if pos[ids[i]] < pos[ids[i-1]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Double-speed global ring under slotted switching still delivers and
// speeds up global crossings.
func TestSlottedDoubleSpeed(t *testing.T) {
	run := func(dbl bool) int64 {
		h := newSlottedHarness(t, Config{
			Spec: topo.MustRingSpec(3, 2, 2), LineBytes: 64,
			Switching: Slotted, DoubleSpeedGlobal: dbl,
		})
		h.pms[0].pendReq = append(h.pms[0].pendReq, mkPkt(1, packet.ReadRequest, 0, 11, 64))
		for tick := int64(1); tick <= 5000; tick++ {
			h.engine.Step()
			if len(h.pms[11].delivered) == 1 {
				if dbl {
					return tick / 2 // normalize ticks to PM cycles
				}
				return tick
			}
		}
		t.Fatal("not delivered")
		return 0
	}
	normal := run(false)
	double := run(true)
	if double > normal {
		t.Fatalf("double-speed slotted slower: %d vs %d PM cycles", double, normal)
	}
}

// The ascent admission rule: with a full complement of ascending
// traffic the leaf ring keeps at least two slots clear of ascent
// packets (checked indirectly: invariants hold and the storm drains;
// here check mayAdmit directly).
func TestSlottedMayAdmit(t *testing.T) {
	r := &sring{
		slots: make([]sslot, 5),
		lo:    0, hi: 4,
	}
	asc := &packet.Packet{Dst: 9} // outside [0,4): ascending
	desc := &packet.Packet{Dst: 2}
	r.occupied = 2
	if !r.mayAdmit(asc) || !r.mayAdmit(desc) {
		t.Fatal("admission should be open below the ascent bound")
	}
	r.occupied = 3 // S-2
	if r.mayAdmit(asc) {
		t.Fatal("ascending packet admitted at the reserve bound")
	}
	if !r.mayAdmit(desc) {
		t.Fatal("descending packet must always be admitted")
	}
}

func TestSlottedUtilization(t *testing.T) {
	h := newSlottedHarness(t, Config{Spec: topo.MustRingSpec(4), LineBytes: 32, Switching: Slotted})
	h.pms[0].pendResp = append(h.pms[0].pendResp, mkPkt(1, packet.ReadResponse, 0, 2, 32))
	h.run(t, 60)
	u := h.net.UtilizationByLevel()
	if len(u) != 1 || u[0] <= 0 || u[0] > 1 {
		t.Fatalf("utilization = %v", u)
	}
	h.net.ResetUtilization()
	if h.net.UtilizationByLevel()[0] != 0 {
		t.Fatal("reset failed")
	}
}
