package ring

// Fault injection for the ring family (network.FaultInjector). Event
// node indices address n.stations in build order — the same
// deterministic DFS order the builders append them in, so NICs and
// IRI stations of both switching techniques map identically for one
// topology. A ring station has a single output port, so every event
// must use Port 0; event times are PM cycles and are scaled by
// TicksPerCycle before scheduling.
//
// Fault semantics:
//
//   - LinkStutter (factor 0): the station's output link is dead — a
//     wormhole station stages nothing, a slotted station neither
//     extracts nor injects while slots ride past.
//   - NodeSlowdown / PortDegrade (factor k >= 2): the station acts on
//     every k-th of its clock cycles (wormhole) or slot steps
//     (slotted) and sits out the rest.
//
// A later event on the same station overwrites an earlier one (the
// schedule is sorted by start time). Expired fault state clears
// itself at the next check, returning the station to the one-nil-check
// steady state.

import "ringmesh/internal/fault"

// stFault is the installed fault state of one station.
type stFault struct {
	until  int64 // first engine tick the fault no longer applies
	factor int64 // 0 = link dead; k >= 2 = act every k-th opportunity
}

// fltBlocked reports whether the fault suppresses this wormhole
// station's output this tick, clearing expired state as a side
// effect. Only called with s.flt non-nil.
func (s *station) fltBlocked(now int64) bool {
	if now >= s.flt.until {
		s.flt = nil
		return false
	}
	if s.flt.factor == 0 {
		return true
	}
	// now/s.period is this station's cycle index (compute only runs on
	// ticks divisible by period), so the station acts on every
	// factor-th of its own cycles regardless of clocking.
	return (now/s.period)%s.flt.factor != 0
}

// fltBlockedSlot is the slotted-station equivalent, keyed on the
// ring's slot-step index rather than the tick (slots advance every
// slotPeriod ticks). Only called with s.flt non-nil.
func (s *sstation) fltBlockedSlot(now, stepIdx int64) bool {
	if now >= s.flt.until {
		s.flt = nil
		return false
	}
	if s.flt.factor == 0 {
		return true
	}
	return stepIdx%s.flt.factor != 0
}

// ApplyFaultPlan implements network.FaultInjector for the wormhole
// network. Call once, after construction and before the first tick.
func (n *Network) ApplyFaultPlan(p *fault.Plan) error {
	events, err := p.Materialize(len(n.stations), 1)
	if err != nil {
		return err
	}
	tpc := n.cfg.TicksPerCycle()
	sched := make([]fault.Scheduled, 0, len(events))
	for _, ev := range events {
		st := n.stations[ev.Node]
		f := &stFault{until: ev.End() * tpc, factor: fault.SlowFactor(ev)}
		sched = append(sched, fault.Scheduled{
			At:    ev.Start * tpc,
			Apply: func() { st.flt = f },
		})
	}
	n.faults = fault.NewDriver(sched)
	return nil
}

// ApplyFaultPlan implements network.FaultInjector for the slotted
// network, with the same station indexing and time scaling as the
// wormhole model.
func (n *SlottedNetwork) ApplyFaultPlan(p *fault.Plan) error {
	events, err := p.Materialize(len(n.stations), 1)
	if err != nil {
		return err
	}
	tpc := n.cfg.TicksPerCycle()
	sched := make([]fault.Scheduled, 0, len(events))
	for _, ev := range events {
		st := n.stations[ev.Node]
		f := &stFault{until: ev.End() * tpc, factor: fault.SlowFactor(ev)}
		sched = append(sched, fault.Scheduled{
			At:    ev.Start * tpc,
			Apply: func() { st.flt = f },
		})
	}
	n.faults = fault.NewDriver(sched)
	return nil
}
