package ring

import (
	"testing"
	"testing/quick"

	"ringmesh/internal/packet"
	"ringmesh/internal/rng"
	"ringmesh/internal/topo"
)

// Property: under arbitrary random traffic on arbitrary small
// hierarchies, the network (1) delivers every packet exactly once,
// (2) delivers packets of the same source, destination and class in
// injection order, (3) never violates buffer invariants, and (4)
// drains completely.
func TestQuickRandomTrafficConservation(t *testing.T) {
	f := func(seed uint64, shape uint8, nPkts uint8) bool {
		shapes := []topo.RingSpec{
			topo.MustRingSpec(4),
			topo.MustRingSpec(2, 3),
			topo.MustRingSpec(3, 4),
			topo.MustRingSpec(2, 2, 3),
			topo.MustRingSpec(3, 2, 2),
		}
		spec := shapes[int(shape)%len(shapes)]
		lines := []int{16, 32, 64, 128}
		line := lines[int(seed%uint64(len(lines)))]
		h := newQuickHarness(t, Config{Spec: spec, LineBytes: line})
		r := rng.New(seed)
		total := int(nPkts%40) + 1
		type key struct {
			src, dst int
			resp     bool
		}
		order := map[key][]uint64{}
		for i := 0; i < total; i++ {
			src := r.Intn(spec.PMs())
			dst := r.Intn(spec.PMs())
			if dst == src {
				dst = (dst + 1) % spec.PMs()
			}
			var typ packet.Type
			switch r.Intn(4) {
			case 0:
				typ = packet.ReadRequest
			case 1:
				typ = packet.ReadResponse
			case 2:
				typ = packet.WriteRequest
			default:
				typ = packet.WriteResponse
			}
			p := &packet.Packet{
				ID: uint64(i + 1), Type: typ, Src: src, Dst: dst,
				Flits: packet.RingSizing.PacketFlits(typ, line),
			}
			if typ.IsResponse() {
				h.pms[src].pendResp = append(h.pms[src].pendResp, p)
			} else {
				h.pms[src].pendReq = append(h.pms[src].pendReq, p)
			}
			k := key{src, dst, typ.IsResponse()}
			order[k] = append(order[k], p.ID)
		}
		// Run until drained (bounded).
		for tick := 0; tick < 20000; tick++ {
			h.engine.Step()
			if h.net.CheckInvariants() != nil {
				return false
			}
			done := 0
			for _, pm := range h.pms {
				done += len(pm.delivered)
			}
			if done == total && h.net.BufferedFlits() == 0 {
				break
			}
		}
		// Exactly-once delivery to the right PM.
		seen := map[uint64]bool{}
		got := 0
		for id, pm := range h.pms {
			for _, p := range pm.delivered {
				if p.Dst != id || seen[p.ID] {
					return false
				}
				seen[p.ID] = true
				got++
			}
		}
		if got != total {
			return false
		}
		// Same (src,dst,class) stays in order.
		pos := map[uint64]int{}
		for _, pm := range h.pms {
			for i, p := range pm.delivered {
				pos[p.ID] = i
			}
		}
		for _, ids := range order {
			for i := 1; i < len(ids); i++ {
				if pos[ids[i]] < pos[ids[i-1]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func newQuickHarness(t *testing.T, cfg Config) *harness {
	t.Helper()
	return newHarness(t, cfg)
}

// Property: the bubble invariant (at most S-1 distinct transit
// residents per ring channel) holds at every tick under sustained
// saturating load.
func TestBubbleInvariantUnderSaturation(t *testing.T) {
	spec := topo.MustRingSpec(2, 2, 3)
	h := newHarness(t, Config{Spec: spec, LineBytes: 128})
	r := rng.New(7)
	// Everyone blasts everyone with max-size packets.
	id := uint64(1)
	for s := 0; s < spec.PMs(); s++ {
		for k := 0; k < 20; k++ {
			dst := r.Intn(spec.PMs())
			if dst == s {
				dst = (dst + 1) % spec.PMs()
			}
			p := &packet.Packet{ID: id, Type: packet.ReadResponse, Src: s, Dst: dst,
				Flits: packet.RingSizing.PacketFlits(packet.ReadResponse, 128)}
			id++
			h.pms[s].pendResp = append(h.pms[s].pendResp, p)
		}
	}
	for tick := 0; tick < 8000; tick++ {
		h.engine.Step()
		if err := h.net.CheckInvariants(); err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
	}
	done := 0
	for _, pm := range h.pms {
		done += len(pm.delivered)
	}
	if done != 12*20 {
		t.Fatalf("delivered %d of %d under saturation", done, 12*20)
	}
}

// Property: delivery works for every (src, dst) pair of a 3-level
// hierarchy — exhaustive connectivity.
func TestExhaustiveConnectivity(t *testing.T) {
	spec := topo.MustRingSpec(2, 2, 2)
	for src := 0; src < spec.PMs(); src++ {
		for dst := 0; dst < spec.PMs(); dst++ {
			if src == dst {
				continue
			}
			h := newHarness(t, Config{Spec: spec, LineBytes: 32})
			p := &packet.Packet{ID: 1, Type: packet.WriteRequest, Src: src, Dst: dst,
				Flits: packet.RingSizing.PacketFlits(packet.WriteRequest, 32)}
			h.pms[src].pendReq = append(h.pms[src].pendReq, p)
			h.run(t, 120)
			if len(h.pms[dst].delivered) != 1 {
				t.Fatalf("%d -> %d not delivered", src, dst)
			}
		}
	}
}

// The engine watchdog must stay quiet for a drained, idle network.
func TestIdleNetworkNoWatchdog(t *testing.T) {
	h := newHarness(t, Config{Spec: topo.MustRingSpec(2, 3), LineBytes: 32})
	h.engine.WatchdogTicks = 50
	h.engine.InFlight = func() bool { return h.net.BufferedFlits() > 0 }
	if err := h.engine.Run(1000); err != nil {
		t.Fatalf("watchdog tripped on idle network: %v", err)
	}
}
