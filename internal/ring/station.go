// Package ring implements the paper's hierarchical unidirectional
// ring network at flit granularity: ring Network Interface
// Controllers (NICs) that attach processing modules to local rings,
// and Inter-Ring Interfaces (IRIs), modelled as 2x2 crossbar switches,
// that connect rings of adjacent levels (paper Section 2.1).
//
// Both node types share one building block, the station: a single
// attachment point on a ring with an incoming link, transit ("ring")
// buffers holding one cache-line packet each, an ordered set of
// injection queues, and an exit sink. A NIC is a station whose exit
// is the local PM and whose injection queues are the PM's output
// request/response buffers; an IRI is a pair of stations — one on the
// lower ring whose exit feeds the up buffer, one on the upper ring
// whose exit feeds the down buffer, each injecting from the opposite
// buffer.
//
// Switching is wormhole: within a virtual channel, an output that
// begins transmitting a packet is committed to it until the tail flit
// passes, idling on bubbles. Output priority follows the paper:
// transit packets first, then response injection, then request
// injection. Flow control is the idealized same-cycle variant: a
// sender stages a flit only when the receiving buffer had space at
// the start of the cycle (see internal/sim's two-phase discipline).
//
// # Deadlock freedom
//
// Blocking wormhole switching on hierarchies of rings with
// single-packet buffers can deadlock: a cycle of full transit buffers
// and full IRI up/down queues spanning ring levels leaves no packet
// able to advance. The paper does not discuss this, but we hit it
// readily (e.g. topology 3:3:8, the paper's own 72-processor 32-byte
// configuration, at T=2 under full load). We therefore add the
// textbook remedy — virtual channels (Dally) — in the minimal form
// that makes the hierarchy's resource graph acyclic:
//
//   - Every ring carries two virtual channels. A packet travels in
//     the *descent* channel when its destination lies inside the
//     ring's subtree (it is at or past its lowest common ancestor
//     ring and only moves down from here) and in the *ascent* channel
//     otherwise (it is still climbing toward its LCA).
//   - Flits of different virtual channels may interleave on a
//     physical link; flits within one channel never do.
//   - A bubble rule keeps one transit buffer per channel per ring
//     free: a packet may newly enter a ring's transit path only while
//     the channel retains a whole free buffer, so circulating traffic
//     can always advance (cf. bubble flow control, Carrión et al.).
//
// The waits-for chain is then acyclic — leaf-ascent → up queue →
// ...ascent levels... → LCA-ring descent → down queue → ...descent
// levels... → leaf-descent → PM sink (always free) — so some flit can
// always move. The cost is a second cl-sized transit buffer per
// station relative to the paper's Table 1 (documented in DESIGN.md);
// all other structure matches the paper.
package ring

import (
	"fmt"

	"ringmesh/internal/metrics"
	"ringmesh/internal/packet"
	"ringmesh/internal/stats"
	"ringmesh/internal/trace"
)

// routeKind is a station's decision for an incoming packet.
type routeKind uint8

const (
	routeContinue routeKind = iota // stay on this ring
	routeExit                      // leave through the exit sink
)

// Virtual channel indices.
const (
	vcDescent = 0 // destination inside this ring's subtree
	vcAscent  = 1 // destination outside: climbing to the LCA
	numVCs    = 2
)

// ringInst groups the stations of one physical ring and owns the
// bubble flow-control bookkeeping per virtual channel.
type ringInst struct {
	stations []*station
	// lo, hi is the PM range of this ring's subtree; it classifies
	// packets into descent ([lo,hi)) or ascent channels.
	lo, hi int
	// unsafeNoVC disables both deadlock-avoidance mechanisms (see
	// Config.UnsafeNoVC): every packet classes as descent and the
	// bubble rule admits unconditionally.
	unsafeNoVC bool
	// stagedInj counts injections granted per channel during the
	// current compute phase, so simultaneous injections cannot
	// overshoot the bubble bound.
	stagedInj [numVCs]int
	// resident tracks packets admitted to each channel's transit path
	// from head acceptance until their tail flit leaves it. Counting
	// buffered flits alone is not enough: a worm streaming in from an
	// IRI queue can momentarily have no flit buffered (its head
	// already exited downstream, its body still crossing) while still
	// owning transit capacity.
	resident [numVCs]map[*packet.Packet]bool
}

// class returns the virtual channel a packet to dst uses on this ring.
func (r *ringInst) class(dst int) int {
	if r.unsafeNoVC {
		return vcDescent
	}
	if dst >= r.lo && dst < r.hi {
		return vcDescent
	}
	return vcAscent
}

// residents returns the number of packets currently admitted to
// channel v's transit path.
func (r *ringInst) residents(v int) int { return len(r.resident[v]) }

// mayAdmitNewResident reports whether one more packet may start using
// channel v's transit buffers (bubble rule: keep one buffer free).
func (r *ringInst) mayAdmitNewResident(v int) bool {
	if r.unsafeNoVC {
		return true
	}
	return r.residents(v)+r.stagedInj[v] <= len(r.stations)-2
}

// admit registers a packet on channel v's transit path.
func (r *ringInst) admit(v int, p *packet.Packet) { r.resident[v][p] = true }

// depart removes a packet once its tail flit has left the channel's
// transit path (idempotent; packets that exited without ever entering
// transit are simply absent).
func (r *ringInst) depart(v int, p *packet.Packet) { delete(r.resident[v], p) }

// sink absorbs flits that exit a ring at a station (a PM delivery
// port or an IRI up/down buffer).
type sink interface {
	// spaceFor reports, from start-of-cycle state, whether the sink
	// can absorb this flit now.
	spaceFor(f packet.Flit) bool
	// accept absorbs the flit (commit phase).
	accept(f packet.Flit, now int64)
}

// vcState is one virtual channel's state at a station.
type vcState struct {
	// buf is the transit buffer (capacity: one cache-line packet).
	buf *packet.FIFO
	// txPkt/txSrc: wormhole lock within this channel; txSrc nil means
	// the transit buffer.
	txPkt *packet.Packet
	txSrc *packet.FIFO
	// inPkt/inRoute: the packet currently streaming in from upstream
	// on this channel, and where its head was routed.
	inPkt   *packet.Packet
	inRoute routeKind
}

// station is one attachment on a unidirectional ring.
type station struct {
	// name is used in panic messages and traces.
	name string
	// level is the ring level (0 = global) for utilization grouping.
	level int
	// period is the clock divider in engine ticks (1 = every tick).
	period int64

	// downstream is the next station around the ring.
	downstream *station

	// ring is the physical ring this station sits on.
	ring *ringInst

	// vcs are the per-virtual-channel transit paths.
	vcs [numVCs]*vcState

	// exits decides whether a packet leaves the ring here.
	exits func(dst int) bool
	// exitSink absorbs exiting flits (non-nil when exits can fire).
	exitSink sink

	// inject is the priority-ordered list of injection queues
	// (responses before requests, after transit traffic).
	inject []*packet.FIFO

	// lastVC is the round-robin pointer for link arbitration between
	// channels.
	lastVC int

	// flt is the installed fault on this station's output link; nil
	// (the common case) costs one pointer check per compute. See
	// fault.go.
	flt *stFault

	// Per-cycle staging: the single flit crossing this station's
	// output link this cycle.
	staged      bool
	stagedF     packet.Flit
	stagedVC    int
	stagedSrc   *packet.FIFO // nil means the channel's transit buffer
	stagedRoute routeKind

	util   *stats.Utilization
	tracer *trace.Recorder

	// stall, when non-nil (metrics enabled, NIC stations only), counts
	// injection-stall cycles: active cycles where an injection queue
	// held a whole packet but no injection-queue flit crossed the
	// output link (either nothing moved or transit traffic won the
	// link).
	stall *metrics.Counter
}

func newStation(name string, level int, clFlits int) *station {
	s := &station{
		name:   name,
		level:  level,
		period: 1,
		util:   &stats.Utilization{},
	}
	for v := 0; v < numVCs; v++ {
		s.vcs[v] = &vcState{buf: packet.NewFIFO(clFlits)}
	}
	return s
}

// active reports whether the station acts on this tick.
func (s *station) active(now int64) bool { return now%s.period == 0 }

// sourceQueue returns the queue channel v's lock draws from.
func (s *station) sourceQueue(v int) *packet.FIFO {
	if s.vcs[v].txSrc != nil {
		return s.vcs[v].txSrc
	}
	return s.vcs[v].buf
}

// candidate returns the flit channel v would send this cycle, its
// source queue (nil = transit buffer), and whether one exists.
func (s *station) candidate(v int) (packet.Flit, *packet.FIFO, bool) {
	vc := s.vcs[v]
	if vc.txPkt != nil {
		q := s.sourceQueue(v)
		head, ok := q.Peek()
		if !ok {
			return packet.Flit{}, nil, false // bubble: wait for the worm
		}
		if head.Pkt != vc.txPkt {
			panic(fmt.Sprintf("ring: %s vc%d would interleave %s into %s",
				s.name, v, head.Pkt, vc.txPkt))
		}
		return head, vc.txSrc, true
	}
	if head, ok := vc.buf.Peek(); ok {
		if !head.Head() {
			panic(fmt.Sprintf("ring: %s vc%d transit head %s is mid-packet with no lock",
				s.name, v, head))
		}
		return head, nil, true
	}
	for _, q := range s.inject {
		head, ok := q.Peek()
		if !ok {
			continue
		}
		if !head.Head() {
			// Mid-packet inject heads belong to a locked worm of some
			// channel; skip (the locked path above consumes them).
			continue
		}
		if s.ring.class(head.Pkt.Dst) != v {
			continue
		}
		return head, q, true
	}
	return packet.Flit{}, nil, false
}

// compute stages at most one outgoing flit for this cycle based on
// start-of-cycle state, arbitrating the physical link round-robin
// between the two virtual channels.
func (s *station) compute(now int64) {
	s.staged = false
	if s.flt != nil && s.fltBlocked(now) {
		return // output link faulted: nothing crosses this cycle
	}
	for k := 1; k <= numVCs; k++ {
		v := (s.lastVC + k) % numVCs
		f, src, ok := s.candidate(v)
		if !ok {
			continue
		}
		fromInject := src != nil
		route, ok := s.downstream.accepts(f, v, fromInject)
		if !ok {
			continue
		}
		if f.Head() && fromInject && route == routeContinue {
			// The packet becomes a new transit resident of the ring;
			// account for it so simultaneous injections this cycle
			// cannot overfill the channel (bubble rule).
			s.ring.stagedInj[v]++
		}
		s.staged = true
		s.stagedF = f
		s.stagedVC = v
		s.stagedSrc = src
		s.stagedRoute = route
		return
	}
}

// accepts decides whether this station can absorb the offered flit on
// channel v this cycle (judged from start-of-cycle buffer occupancy)
// and which way the packet routes here. fromInject marks flits whose
// source is an injection queue: their packets are not yet transit
// residents of this ring, so continuing subjects them to the bubble
// rule.
func (s *station) accepts(f packet.Flit, v int, fromInject bool) (routeKind, bool) {
	vc := s.vcs[v]
	if f.Head() {
		if s.exits != nil && s.exits(f.Pkt.Dst) {
			if s.exitSink.spaceFor(f) {
				return routeExit, true
			}
			return 0, false // blocked on the exit queue
		}
		if fromInject {
			// Bubble rule: admit a new resident only while the
			// channel keeps at least one buffer's worth of packets
			// free ring-wide. Since every packet fits in one buffer,
			// S-1 residents can never fill all S buffers, so transit
			// traffic always finds space somewhere and the ring keeps
			// moving.
			if vc.buf.Space() >= 1 && s.ring.mayAdmitNewResident(v) {
				return routeContinue, true
			}
			return 0, false
		}
		if vc.buf.Space() >= 1 {
			return routeContinue, true
		}
		return 0, false
	}
	if vc.inPkt != f.Pkt {
		panic(fmt.Sprintf("ring: %s vc%d got body flit %s before its head", s.name, v, f))
	}
	if vc.inRoute == routeExit {
		if s.exitSink.spaceFor(f) {
			return routeExit, true
		}
		return 0, false
	}
	if vc.buf.Space() >= 1 {
		return routeContinue, true
	}
	return 0, false
}

// commit applies this cycle's staged transfer: pop from the source,
// update the wormhole lock, and deposit into the downstream station.
// Returns true when a flit moved (for the engine's progress counter).
func (s *station) commit(now int64) bool {
	s.util.Tick(1)
	if s.stall != nil && (!s.staged || s.stagedSrc == nil) && s.injectWaiting() {
		s.stall.Inc()
	}
	if !s.staged {
		return false
	}
	s.staged = false
	f, v := s.stagedF, s.stagedVC
	s.lastVC = v
	vc := s.vcs[v]
	src := s.stagedSrc
	if src == nil {
		src = vc.buf
	}
	got := src.Pop()
	if got != f {
		panic(fmt.Sprintf("ring: %s staged %s but popped %s", s.name, f, got))
	}
	if f.Tail() {
		vc.txPkt, vc.txSrc = nil, nil
	} else {
		vc.txPkt, vc.txSrc = f.Pkt, s.stagedSrc
	}
	if f.Head() {
		kind := trace.Hop
		if s.stagedRoute == routeExit && s.downstream.exitSink != nil {
			if _, isQueue := s.downstream.exitSink.(*queueSink); isQueue {
				kind = trace.Exit
			}
		}
		s.tracer.Record(now, kind, f.Pkt, s.name+"->"+s.downstream.name)
	}
	// Residency bookkeeping for the bubble rule: an injected head that
	// continues on the ring becomes a resident; a tail leaving the
	// transit path releases it (idempotent for packets that exited
	// without ever entering transit).
	if f.Head() && s.stagedSrc != nil && s.stagedRoute == routeContinue {
		s.ring.admit(v, f.Pkt)
	}
	if f.Tail() && s.stagedRoute == routeExit {
		s.ring.depart(v, f.Pkt)
	}
	s.downstream.receive(f, v, s.stagedRoute, now)
	s.util.Busy(1)
	return true
}

// receive absorbs a flit arriving from upstream on channel v (commit
// phase). For head flits the route was decided by accepts during
// compute and is passed through; body flits must follow their head.
func (s *station) receive(f packet.Flit, v int, route routeKind, now int64) {
	vc := s.vcs[v]
	if f.Head() {
		vc.inPkt = f.Pkt
		vc.inRoute = route
	} else if vc.inPkt != f.Pkt {
		panic(fmt.Sprintf("ring: %s vc%d received body flit %s before its head", s.name, v, f))
	}
	route = vc.inRoute
	if f.Tail() {
		vc.inPkt = nil
	}
	if route == routeExit {
		s.exitSink.accept(f, now)
		return
	}
	vc.buf.Push(f)
}

// injectWaiting reports whether any injection queue holds flits —
// with the staged-source check in commit, a true result on a cycle
// that moved no injection flit is an injection stall. Only evaluated
// when the stall counter is attached (metrics enabled).
func (s *station) injectWaiting() bool {
	for _, q := range s.inject {
		if q.Len() > 0 {
			return true
		}
	}
	return false
}

// bufferedFlits counts flits resident in this station's transit
// buffers.
func (s *station) bufferedFlits() int {
	n := 0
	for v := 0; v < numVCs; v++ {
		n += s.vcs[v].buf.Len()
	}
	return n
}

// pmSink delivers exiting packets to the local processing module. The
// PM is a perfect sink (DESIGN.md): responses are consumed
// immediately and requests join the unbounded memory queue, so
// spaceFor is always true. Delivery fires when the tail flit lands.
type pmSink struct {
	deliver func(p *packet.Packet, now int64)
}

func (k *pmSink) spaceFor(packet.Flit) bool { return true }

func (k *pmSink) accept(f packet.Flit, now int64) {
	if f.Tail() {
		k.deliver(f.Pkt, now)
	}
}

// queueSink absorbs exiting flits into a request/response split pair
// of bounded FIFOs (an IRI's up or down buffer).
type queueSink struct {
	resp, req *packet.FIFO

	// outbox, when non-nil (a parallel partition is installed; see
	// partition.go), receives accepted flits as deferred pushes applied
	// in the cross-ring commit phase instead of being pushed live —
	// these FIFOs are the only state shared between ring shards. Serial
	// runs never set it, keeping the direct push path.
	outbox *[]deferredPush
}

func (k *queueSink) pick(p *packet.Packet) *packet.FIFO {
	if p.Type.IsResponse() {
		return k.resp
	}
	return k.req
}

func (k *queueSink) spaceFor(f packet.Flit) bool {
	return k.pick(f.Pkt).Space() >= 1
}

func (k *queueSink) accept(f packet.Flit, now int64) {
	q := k.pick(f.Pkt)
	if k.outbox != nil {
		*k.outbox = append(*k.outbox, deferredPush{fifo: q, f: f})
		return
	}
	q.Push(f)
}
