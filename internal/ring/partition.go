package ring

import (
	"fmt"

	"ringmesh/internal/packet"
	"ringmesh/internal/sim"
)

// Ownership partitions of the ring family for the parallel tick
// engine: one shard per physical ring, for both switching techniques.
//
// A ring shard owns its stations' transit buffers, wormhole locks,
// utilization counters and (on leaf rings) the NIC output registers,
// the PMs and their delivery ports — every station's downstream sits
// on the same ring, so a commit's receive/deliver path never leaves
// the shard. The only cross-shard state is the IRI up/down queues
// shared between a parent and a child ring. They are safe because
// each has exactly one producer (the exiting station) and one consumer
// (the injecting station), at most one flit or packet crosses per tick,
// and all push/pop decisions were staged at compute time from frozen
// start-of-tick state; the two models just need the producer and the
// consumer never to mutate one queue concurrently:
//
//   - Wormhole: the exit push is deferred. queueSink routes it into
//     the committing ring's outbox during commit phase 0 (where the
//     consumer's pop runs) and the outbox flushes in phase 1, behind a
//     barrier. A pop takes the start-of-tick head and a push appends to
//     the tail, so the end state is order-independent and bit-identical
//     to the serial schedule.
//   - Slotted: commits are level-phased — deepest rings commit in
//     phase 0, the global ring last. Only rings of adjacent levels
//     share an IRI, and they are never in the same phase, so the live
//     pushes stay race-free; the child-before-parent order is exactly
//     the serial builder's post-order schedule, and the at=now+1
//     injectability stamp already keeps same-tick pushes invisible to
//     same-tick pops.
type deferredPush struct {
	fifo *packet.FIFO
	f    packet.Flit
}

// ringShard owns one physical wormhole ring.
type ringShard struct {
	ring *ringInst
	// nics are the NIC couplings on this ring (leaf rings only), in
	// PM-id order — the serial refill order restricted to the shard.
	nics   []*nic
	outbox []deferredPush
}

// Compute implements sim.Shard: reset the ring's per-tick injection
// staging (serially done for all rings at once) and stage the ring's
// transfers. Stations read neighbouring state freely — everything is
// frozen during the compute phase — and stagedInj is only ever touched
// by the ring's own stations. Fault stepping is not repeated here; the
// partition's Prologue runs it serially.
func (s *ringShard) Compute(now int64) {
	s.ring.stagedInj = [numVCs]int{}
	for _, st := range s.ring.stations {
		if st.active(now) {
			st.compute(now)
		}
	}
}

// CommitPhase implements sim.Shard: phase 0 is the ring-local commit
// (stations in ring order, then NIC refills — the serial relative
// order) with cross-ring IRI pushes staged in the outbox; phase 1
// flushes the outbox.
func (s *ringShard) CommitPhase(phase int, now int64) int {
	if phase != 0 {
		for i := range s.outbox {
			s.outbox[i].fifo.Push(s.outbox[i].f)
			s.outbox[i] = deferredPush{} // drop the packet reference
		}
		s.outbox = s.outbox[:0]
		return 0
	}
	moved := 0
	for _, st := range s.ring.stations {
		if st.active(now) && st.commit(now) {
			moved++
		}
	}
	for _, nc := range s.nics {
		if nc.st.active(now) {
			nc.refill()
		}
	}
	return moved
}

// Partition implements network.Partitioner for the wormhole network:
// one shard per physical ring, two commit phases (ring-local commit,
// then the cross-ring exchange). Installing the partition reroutes the
// IRI exit sinks through the shard outboxes, so a non-nil return must
// be driven through the shards. A single-ring hierarchy has nothing to
// cut and declines.
func (n *Network) Partition() *sim.Partition {
	if len(n.rings) < 2 {
		return nil
	}
	nicOf := make(map[*station]int, len(n.nics))
	for id, nc := range n.nics {
		nicOf[nc.st] = id
	}
	p := &sim.Partition{
		CommitPhases: 2,
		Prologue: func(now int64) {
			if n.faults != nil {
				n.faults.Step(now)
			}
		},
	}
	for i, r := range n.rings {
		sh := &ringShard{ring: r}
		lo, hi := r.lo, r.lo // internal rings own no PMs
		if _, leaf := nicOf[r.stations[0]]; leaf {
			lo, hi = r.lo, r.hi
			sh.nics = n.nics[lo:hi]
		}
		// Route this ring's IRI exits through the shard outbox. The
		// sink of a station on ring r is only ever written during ring
		// r's own commit (the pushing station's downstream is on r).
		for _, st := range r.stations {
			if qs, ok := st.exitSink.(*queueSink); ok {
				qs.outbox = &sh.outbox
			}
		}
		p.Shards = append(p.Shards, sim.PartitionShard{
			Name: fmt.Sprintf("ring%d[%d,%d)", i, r.lo, r.hi),
			PMLo: lo,
			PMHi: hi,
			Comp: sh,
		})
	}
	// Same-tick deliveries happen in the serial station commit order,
	// and the delivery to a PM runs during the commit of the station
	// *upstream* of its NIC — so the serial completion order is the
	// n.stations position of each NIC's upstream neighbour, not PM-id
	// order (a leaf ring's parent IRI station commits last but delivers
	// to the ring's first NIC).
	for _, st := range n.stations {
		if id, ok := nicOf[st.downstream]; ok {
			p.DeliverOrder = append(p.DeliverOrder, id)
		}
	}
	return p
}

// sringShard owns one slotted ring. Its commit phase is keyed to the
// ring's depth (deepest level first, global ring last): only adjacent
// levels share IRI transfer queues, so rings committing in the same
// phase touch disjoint state, and child-before-parent reproduces the
// serial post-order walk of n.rings.
type sringShard struct {
	n     *SlottedNetwork
	ring  *sring
	phase int
	// nics are the couplings on this ring (leaf rings only, phase 0),
	// in PM-id order.
	nics []*snic
}

// Compute implements sim.Shard. The slotted model stages nothing (all
// movement is single-writer slot and queue manipulation in commit).
func (s *sringShard) Compute(now int64) {}

// CommitPhase implements sim.Shard: step the ring on its level's
// phase, then refill this ring's NIC output registers (serially the
// refills run after all rings step, but they touch only shard-local
// registers and PM pending lists, and refilled packets carry at=now+1
// so no same-tick pop can see them).
func (s *sringShard) CommitPhase(phase int, now int64) int {
	if phase != s.phase {
		return 0
	}
	moved := 0
	if now%s.ring.slotPeriod == 0 {
		moved = s.n.stepRing(s.ring, now)
	}
	for _, nc := range s.nics {
		if now%nc.period == 0 {
			s.n.refillNIC(nc, now)
		}
	}
	return moved
}

// Partition implements network.Partitioner for the slotted network:
// one shard per ring, one commit phase per hierarchy level. A
// single-ring hierarchy declines. Slotted deliveries happen leaf-ring
// by leaf-ring in increasing PM-id order (post-order ring walk,
// stations in ring order), so DeliverOrder is the identity.
func (n *SlottedNetwork) Partition() *sim.Partition {
	if len(n.rings) < 2 {
		return nil
	}
	levels := n.cfg.Spec.NumLevels()
	p := &sim.Partition{
		CommitPhases: levels,
		Prologue: func(now int64) {
			if n.faults != nil {
				n.faults.Step(now)
			}
		},
	}
	for i, r := range n.rings {
		sh := &sringShard{n: n, ring: r, phase: levels - 1 - r.stations[0].level}
		lo, hi := r.lo, r.lo // internal rings own no PMs
		if sh.phase == 0 {   // deepest level: the leaf rings
			lo, hi = r.lo, r.hi
			sh.nics = n.nics[lo:hi]
		}
		p.Shards = append(p.Shards, sim.PartitionShard{
			Name: fmt.Sprintf("sring%d[%d,%d)", i, r.lo, r.hi),
			PMLo: lo,
			PMHi: hi,
			Comp: sh,
		})
	}
	for id := range n.nics {
		p.DeliverOrder = append(p.DeliverOrder, id)
	}
	return p
}
