package ring

import (
	"fmt"

	"ringmesh/internal/fault"
	"ringmesh/internal/metrics"
	"ringmesh/internal/node"
	"ringmesh/internal/packet"
	"ringmesh/internal/sim"
	"ringmesh/internal/stats"
	"ringmesh/internal/topo"
	"ringmesh/internal/trace"
)

// Config parameterizes a hierarchical ring network.
type Config struct {
	// Spec is the ring hierarchy ("2:3:4" etc.).
	Spec topo.RingSpec
	// LineBytes is the cache line size; it fixes cl, the size in
	// flits of every ring buffer (paper: each NIC/IRI buffer holds
	// exactly one cache-line packet).
	LineBytes int
	// DoubleSpeedGlobal clocks the global ring at twice the speed of
	// all other rings and the PMs (paper Section 6). The engine then
	// ticks at the global rate and everything else runs with period
	// 2.
	DoubleSpeedGlobal bool
	// IRIQueueFlits overrides the capacity of the IRI up/down queues
	// (per class) in flits; 0 means cl, the paper's value. Wormhole
	// switching only.
	IRIQueueFlits int
	// Switching selects the switching technique: Wormhole (the
	// paper's model, default) or Slotted (the Hector/NUMAchine
	// technique; see slotted.go).
	Switching Switching
	// UnsafeNoVC disables the virtual channels and the bubble rule
	// (wormhole switching only): every packet rides vcDescent and
	// injection is limited only by buffer space. This deliberately
	// restores the paper-era hierarchy deadlock documented in the
	// package comment (e.g. 3:3:8 at T=2 under full load) so the stall
	// forensics can be exercised against a genuine wait-for cycle.
	// Never set it in measurement runs.
	UnsafeNoVC bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if len(c.Spec.Levels) == 0 {
		return fmt.Errorf("ring: empty topology spec")
	}
	last := c.Spec.NumLevels() - 1
	for i, b := range c.Spec.Levels {
		if b < 1 {
			return fmt.Errorf("ring: level %d branching %d < 1", i, b)
		}
		if i < last && b < 2 {
			return fmt.Errorf("ring: internal level %d branching %d < 2 (a ring with one child is a wire; fold the level away)", i, b)
		}
	}
	switch c.LineBytes {
	case 16, 32, 64, 128:
	default:
		return fmt.Errorf("ring: unsupported cache line size %dB (the paper's sizings cover 16, 32, 64 and 128)", c.LineBytes)
	}
	if c.Switching != Wormhole && c.Switching != Slotted {
		return fmt.Errorf("ring: unknown switching technique %d", c.Switching)
	}
	if c.IRIQueueFlits < 0 {
		return fmt.Errorf("ring: IRIQueueFlits = %d", c.IRIQueueFlits)
	}
	if cl := packet.RingSizing.CacheLineFlits(c.LineBytes); c.IRIQueueFlits > 0 && c.IRIQueueFlits < cl {
		return fmt.Errorf("ring: IRIQueueFlits = %d holds less than one %dB cache-line packet (%d flits); a worm crossing the IRI would wedge forever",
			c.IRIQueueFlits, c.LineBytes, cl)
	}
	if c.UnsafeNoVC && c.Switching == Slotted {
		return fmt.Errorf("ring: UnsafeNoVC applies to wormhole switching only (slotted rings have no virtual channels to disable)")
	}
	return nil
}

// TicksPerCycle returns how many engine ticks make one PM clock cycle
// under this configuration.
func (c Config) TicksPerCycle() int64 {
	if c.DoubleSpeedGlobal {
		return 2
	}
	return 1
}

// PMPort is what the network needs from each processing module.
type PMPort interface {
	node.Injector
	node.Deliverer
}

// nic couples a station with its PM-side buffers: the paper's output
// request and response queues (each holding exactly one packet), kept
// filled from the PM's pending lists.
type nic struct {
	st      *station
	pm      PMPort
	outResp *packet.FIFO
	outReq  *packet.FIFO
}

// refill moves whole pending packets from the PM into empty NIC
// output queues (commit phase; the PM pending lists are written only
// by the PM's own commit, which runs earlier in the tick — see the
// registration order in internal/core).
func (n *nic) refill() {
	if n.outResp.Empty() {
		if p, ok := n.pm.PendingResponse(); ok && p.Flits <= n.outResp.Cap() {
			n.pm.PopPendingResponse()
			for i := 0; i < p.Flits; i++ {
				n.outResp.Push(packet.Flit{Pkt: p, Index: i})
			}
		}
	}
	if n.outReq.Empty() {
		if p, ok := n.pm.PendingRequest(); ok && p.Flits <= n.outReq.Cap() {
			n.pm.PopPendingRequest()
			for i := 0; i < p.Flits; i++ {
				n.outReq.Push(packet.Flit{Pkt: p, Index: i})
			}
		}
	}
}

// iri is the Inter-Ring Interface: a 2x2 crossbar between a lower and
// an upper ring, with request/response-split up and down buffers.
type iri struct {
	lower                            *station // sits on the child ring; exit feeds up buffers
	upper                            *station // sits on the parent ring; exit feeds down buffers
	upResp, upReq, downResp, downReq *packet.FIFO
	// lo, hi is the contiguous PM range of the subtree below this IRI.
	lo, hi int
}

// Network is the hierarchical ring interconnect as a sim.Component.
type Network struct {
	cfg      Config
	clFlits  int
	stations []*station // deterministic order for iteration
	nics     []*nic     // indexed by PM id
	iris     []*iri
	rings    []*ringInst
	engine   *sim.Engine

	// faults is the installed fault schedule; nil for fault-free runs
	// (the common case), keeping the hot path at one nil check.
	faults *fault.Driver

	tracer *trace.Recorder
}

// SetTracer attaches an optional lifecycle recorder (nil-safe).
func (n *Network) SetTracer(t *trace.Recorder) {
	n.tracer = t
	for _, st := range n.stations {
		st.tracer = t
	}
}

// New builds the network for cfg connecting the given PMs (len must
// equal cfg.Spec.PMs()). The network registers per-station clock
// periods itself; register the Network on the engine with period 1.
func New(cfg Config, pms []PMPort, engine *sim.Engine) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(pms) != cfg.Spec.PMs() {
		return nil, fmt.Errorf("ring: %d PMs supplied for a %s topology (%d)",
			len(pms), cfg.Spec, cfg.Spec.PMs())
	}
	n := &Network{
		cfg:     cfg,
		clFlits: packet.RingSizing.CacheLineFlits(cfg.LineBytes),
		nics:    make([]*nic, len(pms)),
		engine:  engine,
	}
	n.buildRing(0, 0, pms, nil)
	// Clock periods: with a double-speed global ring, the engine tick
	// is the global ring cycle and every non-global station runs at
	// half rate.
	if cfg.DoubleSpeedGlobal {
		for _, st := range n.stations {
			if st.level != 0 {
				st.period = 2
			}
		}
	}
	return n, nil
}

// buildRing recursively constructs the ring at the given level whose
// subtree covers PM ids [base, base+SubtreeSize(level)). parentLower,
// when non-nil, is the parent IRI's lower-side station which joins
// this ring as its last slot. It returns nothing; stations are
// appended to n.stations and wired in ring order.
func (n *Network) buildRing(level, base int, pms []PMPort, parentLower *station) {
	spec := n.cfg.Spec
	branches := spec.Levels[level]
	var slots []*station

	if level == spec.NumLevels()-1 {
		// Leaf ring: one NIC per PM.
		for j := 0; j < branches; j++ {
			pmID := base + j
			st := newStation(fmt.Sprintf("nic%d", pmID), level, n.clFlits)
			outResp := packet.NewFIFO(n.clFlits)
			outReq := packet.NewFIFO(n.clFlits)
			st.inject = []*packet.FIFO{outResp, outReq}
			pm := pms[pmID]
			id := pmID
			st.exits = func(dst int) bool { return dst == id }
			st.exitSink = &pmSink{deliver: pm.Deliver}
			n.nics[pmID] = &nic{st: st, pm: pm, outResp: outResp, outReq: outReq}
			n.stations = append(n.stations, st)
			slots = append(slots, st)
		}
	} else {
		// Internal ring: one child IRI upper station per child ring.
		sub := spec.SubtreeSize(level + 1)
		iriQ := n.cfg.IRIQueueFlits
		if iriQ == 0 {
			iriQ = n.clFlits
		}
		for j := 0; j < branches; j++ {
			lo := base + j*sub
			hi := lo + sub
			ir := &iri{
				lo: lo, hi: hi,
				upResp:   packet.NewFIFO(iriQ),
				upReq:    packet.NewFIFO(iriQ),
				downResp: packet.NewFIFO(iriQ),
				downReq:  packet.NewFIFO(iriQ),
			}
			upper := newStation(fmt.Sprintf("iri[%d,%d).up", lo, hi), level, n.clFlits)
			upper.exits = func(dst int) bool { return dst >= ir.lo && dst < ir.hi }
			upper.exitSink = &queueSink{resp: ir.downResp, req: ir.downReq}
			upper.inject = []*packet.FIFO{ir.upResp, ir.upReq}

			lower := newStation(fmt.Sprintf("iri[%d,%d).down", lo, hi), level+1, n.clFlits)
			lower.exits = func(dst int) bool { return dst < ir.lo || dst >= ir.hi }
			lower.exitSink = &queueSink{resp: ir.upResp, req: ir.upReq}
			lower.inject = []*packet.FIFO{ir.downResp, ir.downReq}

			ir.upper, ir.lower = upper, lower
			n.iris = append(n.iris, ir)
			n.stations = append(n.stations, upper)
			slots = append(slots, upper)
			// Build the child ring with the lower station as its
			// parent slot; the child appends `lower` to n.stations.
			n.buildRing(level+1, lo, pms, lower)
		}
	}

	if parentLower != nil {
		n.stations = append(n.stations, parentLower)
		slots = append(slots, parentLower)
	}
	// Close the ring: slot i sends to slot i+1 (mod size), and bind
	// every station to the ring instance (virtual-channel classing
	// and the bubble rule need the ring's subtree range).
	inst := &ringInst{
		stations:   slots,
		lo:         base,
		hi:         base + spec.SubtreeSize(level),
		unsafeNoVC: n.cfg.UnsafeNoVC,
	}
	for v := 0; v < numVCs; v++ {
		inst.resident[v] = map[*packet.Packet]bool{}
	}
	n.rings = append(n.rings, inst)
	for i, st := range slots {
		st.downstream = slots[(i+1)%len(slots)]
		st.ring = inst
	}
}

// Compute implements sim.Component.
func (n *Network) Compute(now int64) {
	if n.faults != nil {
		n.faults.Step(now)
	}
	for _, r := range n.rings {
		r.stagedInj = [numVCs]int{}
	}
	for _, st := range n.stations {
		if st.active(now) {
			st.compute(now)
		}
	}
}

// Commit implements sim.Component. Progress is reported to the
// engine once per commit (batched) rather than per station.
func (n *Network) Commit(now int64) {
	moved := 0
	for _, st := range n.stations {
		if !st.active(now) {
			continue
		}
		if st.commit(now) {
			moved++
		}
	}
	if moved > 0 {
		n.engine.ProgressN(moved)
	}
	for _, nc := range n.nics {
		if nc.st.active(now) {
			nc.refill()
		}
	}
}

// levelLabel names hierarchy level lvl for metrics ("L0" = global).
func levelLabel(lvl int) string { return fmt.Sprintf("L%d", lvl) }

// DescribeMetrics registers the ring family's instruments:
//
//   - ring_link_util{link=L<level>}: per-level link utilization,
//     backed by the stations' existing counters (no new hot-path
//     work).
//   - iri_queue_flits{node,queue=up|down,class=req|rsp}: per-IRI
//     queue occupancy gauges, read only at sample time.
//   - nic_inject_stall_cycles{node}: per-NIC injection-stall counter
//     (see station.commit), attached only while a registry is
//     present.
//
// Nil-safe: a nil registry registers nothing and attaches no
// counters, so the disabled hot path is unchanged.
func (n *Network) DescribeMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	perLevel := make([][]*stats.Utilization, n.cfg.Spec.NumLevels())
	for _, st := range n.stations {
		perLevel[st.level] = append(perLevel[st.level], st.util)
	}
	for lvl, backing := range perLevel {
		reg.Ratio("ring_link_util", metrics.Labels{Link: levelLabel(lvl)}, backing...)
	}
	for _, ir := range n.iris {
		ir := ir
		node := fmt.Sprintf("iri[%d,%d)", ir.lo, ir.hi)
		for _, q := range []struct {
			fifo         *packet.FIFO
			queue, class string
		}{
			{ir.upReq, "up", "req"},
			{ir.upResp, "up", "rsp"},
			{ir.downReq, "down", "req"},
			{ir.downResp, "down", "rsp"},
		} {
			fifo := q.fifo
			reg.Gauge("iri_queue_flits",
				metrics.Labels{Node: node, Queue: q.queue, Class: q.class},
				func() float64 { return float64(fifo.Len()) })
		}
	}
	for id, nc := range n.nics {
		nc.st.stall = reg.Counter("nic_inject_stall_cycles",
			metrics.Labels{Node: fmt.Sprintf("nic%d", id)})
	}
	if n.faults != nil {
		n.faults.Counter = reg.Counter("fault_events_total", metrics.Labels{})
	}
}

// UtilizationByLevel returns link utilization aggregated per ring
// level (index 0 = global ring, last = local rings), in [0, 1].
func (n *Network) UtilizationByLevel() []float64 {
	levels := n.cfg.Spec.NumLevels()
	out := make([]float64, levels)
	aggr := make([]stats.Utilization, levels)
	for _, st := range n.stations {
		aggr[st.level].Merge(st.util)
	}
	for i := range aggr {
		out[i] = aggr[i].Value()
	}
	return out
}

// ResetUtilization clears all link utilization counters (called at
// warmup end).
func (n *Network) ResetUtilization() {
	for _, st := range n.stations {
		st.util.Reset()
	}
}

// BufferedFlits returns the number of flits resident in every buffer
// of the network (transit, NIC output, IRI up/down), for liveness
// accounting and tests.
func (n *Network) BufferedFlits() int {
	total := 0
	for _, st := range n.stations {
		total += st.bufferedFlits()
	}
	for _, nc := range n.nics {
		total += nc.outResp.Len() + nc.outReq.Len()
	}
	for _, ir := range n.iris {
		total += ir.upResp.Len() + ir.upReq.Len() + ir.downResp.Len() + ir.downReq.Len()
	}
	return total
}

// NumStations returns the number of ring attachments (for tests).
func (n *Network) NumStations() int { return len(n.stations) }

// CheckInvariants returns an error if any transit buffer exceeds its
// capacity or any ring violates the bubble bound; used by property
// tests.
func (n *Network) CheckInvariants() error {
	for _, st := range n.stations {
		for v := 0; v < numVCs; v++ {
			if st.vcs[v].buf.Len() > st.vcs[v].buf.Cap() {
				return fmt.Errorf("ring: %s vc%d transit over capacity", st.name, v)
			}
		}
	}
	for i, r := range n.rings {
		for v := 0; v < numVCs; v++ {
			// With UnsafeNoVC the bubble rule is deliberately off, so
			// the residency bound does not hold; the residency
			// *tracking* below still must.
			if res := r.residents(v); !r.unsafeNoVC && res > len(r.stations)-1 {
				return fmt.Errorf("ring: ring %d vc%d has %d residents in %d buffers (bubble violated)",
					i, v, res, len(r.stations))
			}
			// Every packet with flits buffered must be a tracked
			// resident.
			buffered := map[*packet.Packet]bool{}
			for _, st := range r.stations {
				st.vcs[v].buf.EachPacket(func(p *packet.Packet) { buffered[p] = true })
			}
			for p := range buffered {
				if !r.resident[v][p] {
					return fmt.Errorf("ring: ring %d vc%d holds flits of untracked packet %s",
						i, v, p)
				}
			}
		}
	}
	return nil
}
