package ring

// Slotted-ring switching — the technique Hector and NUMAchine actually
// implement (paper footnote 3: "The NUMAchine system implements
// slotted ring switching and not wormhole switching"), and the
// comparison subject of the authors' companion study [Ravindran &
// Stumm, IEICE '96], which found slotted rings "tend to perform
// somewhat better". This file implements it as an alternative to the
// wormhole model in station.go so the trade-off can be measured (see
// the ablate-switching experiment).
//
// Model, following Hector: every ring is a synchronous pipeline of S
// packet-sized slots, one per station. A slot carries at most one
// whole packet and advances one position every cl ring cycles — the
// time to move one slot's worth of data across the 128-bit channel —
// so link bandwidth matches the wormhole model while short packets
// waste the remainder of their slot (the classic slotted-ring cost
// that reference [21] trades against wormhole blocking).
//
// A station injects a whole packet into a passing empty slot. When a
// packet passes the station where it must leave the ring, it is
// copied out whole: processing modules always accept; an IRI transfer
// queue accepts while it has room, otherwise the packet keeps
// circulating and retries next pass (slotted-ring NACK-and-retry).
// IRIs are store-and-forward with transfer queues several packets
// deep (slottedIRIDepth), as in Hector.
//
// Slots advance unconditionally, so a single ring can never gridlock;
// the remaining hazard is a whole hierarchy freezing with every ring
// 100% occupied by ascending packets whose up queues are full. One
// admission rule removes it: a packet that will travel *ascending* on
// a ring (destination outside the ring's subtree) is injected only
// while occupancy is below S-2, while *descending* packets (simply
// draining toward their processing modules, which always accept) are
// admitted into any empty slot. At least two slots per ring therefore
// only ever carry self-draining descent traffic, so down queues always
// drain, upper rings always free, and by induction up queues drain
// too. The engine watchdog stays armed as a backstop.

import (
	"fmt"

	"ringmesh/internal/fault"
	"ringmesh/internal/metrics"
	"ringmesh/internal/packet"
	"ringmesh/internal/sim"
	"ringmesh/internal/stats"
	"ringmesh/internal/trace"
)

// Switching selects the ring network's switching technique.
type Switching uint8

const (
	// Wormhole is the paper's primary model (station.go).
	Wormhole Switching = iota
	// Slotted is the Hector/NUMAchine technique (this file).
	Slotted
)

// String names the technique.
func (s Switching) String() string {
	switch s {
	case Wormhole:
		return "wormhole"
	case Slotted:
		return "slotted"
	default:
		return fmt.Sprintf("Switching(%d)", uint8(s))
	}
}

// slottedIRIDepth is the packet capacity of each IRI transfer queue
// per class (Hector buffered several packets between rings).
const slottedIRIDepth = 4

// readyPkt is a packet awaiting injection.
type readyPkt struct {
	pkt *packet.Packet
	at  int64 // tick from which injection may start
}

// spktQueue is a bounded store-and-forward packet FIFO (an IRI up or
// down queue, or a NIC output register).
type spktQueue struct {
	cap   int
	items []readyPkt
}

func newSPktQueue(capacity int) *spktQueue { return &spktQueue{cap: capacity} }

func (q *spktQueue) count() int { return len(q.items) }

// push stores a whole packet, injectable from tick at. It reports
// whether there was room.
func (q *spktQueue) push(p *packet.Packet, at int64) bool {
	if len(q.items) >= q.cap {
		return false
	}
	q.items = append(q.items, readyPkt{pkt: p, at: at})
	return true
}

// peek returns the oldest packet if it is injectable at tick now.
func (q *spktQueue) peek(now int64) (*packet.Packet, bool) {
	if len(q.items) == 0 || now < q.items[0].at {
		return nil, false
	}
	return q.items[0].pkt, true
}

// pop removes the oldest packet if it is injectable at tick now.
func (q *spktQueue) pop(now int64) (*packet.Packet, bool) {
	p, ok := q.peek(now)
	if !ok {
		return nil, false
	}
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return p, true
}

func (q *spktQueue) bufferedFlits() int {
	n := 0
	for _, r := range q.items {
		n += r.pkt.Flits
	}
	return n
}

// sstation is one attachment on a slotted ring.
type sstation struct {
	name  string
	level int

	// exits decides whether a packet leaves this ring here; exitPM
	// delivers to the local PM (always accepted); exitResp/exitReq
	// are the request/response transfer queues for IRI exits.
	exits    func(dst int) bool
	exitPM   func(p *packet.Packet, now int64)
	exitResp *spktQueue
	exitReq  *spktQueue

	// inject is the priority-ordered list of outgoing packet queues
	// (responses before requests).
	inject []*spktQueue

	// flt is the installed fault on this station's ring attachment;
	// nil (the common case) costs one pointer check per slot step. See
	// fault.go.
	flt *stFault

	util *stats.Utilization

	// stall, when non-nil (metrics enabled, NIC stations only), counts
	// slot-steps where a whole packet was ready to inject but the
	// passing slot could not take it (occupied, or the admission rule
	// refused).
	stall *metrics.Counter
}

// hasReady reports whether any inject queue holds a packet injectable
// at tick now. Only evaluated when the stall counter is attached.
func (s *sstation) hasReady(now int64) bool {
	for _, q := range s.inject {
		if _, ok := q.peek(now); ok {
			return true
		}
	}
	return false
}

// exitQueueFor picks the transfer queue matching a packet's class.
func (s *sstation) exitQueueFor(p *packet.Packet) *spktQueue {
	if p.Type.IsResponse() {
		return s.exitResp
	}
	return s.exitReq
}

// sslot carries at most one whole packet.
type sslot struct {
	pkt *packet.Packet
}

// sring is one physical slotted ring.
type sring struct {
	stations []*sstation
	slots    []sslot
	// lo, hi is the ring's subtree range: packets with dst inside are
	// descending (toward their PM), others ascending.
	lo, hi int
	// headPos rotates instead of copying: station i reads slot
	// (headPos + i) mod S.
	headPos  int
	occupied int
	// slotPeriod is the ticks between slot advances: cl ring cycles,
	// doubled for non-global rings under double-speed clocking.
	slotPeriod int64
}

// mayAdmit applies the ascent admission rule described in the package
// comment.
func (r *sring) mayAdmit(p *packet.Packet) bool {
	if p.Dst >= r.lo && p.Dst < r.hi {
		return true // descending: always drains, always admitted
	}
	return r.occupied < len(r.slots)-2
}

func (r *sring) slotAt(i int) *sslot {
	return &r.slots[(r.headPos+i)%len(r.slots)]
}

// siri groups one inter-ring interface's transfer queues for metrics
// and diagnostics (the stations hold the same queues for switching).
type siri struct {
	lo, hi                           int
	upResp, upReq, downResp, downReq *spktQueue
}

// SlottedNetwork is the hierarchical ring interconnect under slotted
// switching, as a sim.Component.
type SlottedNetwork struct {
	cfg      Config
	clFlits  int
	rings    []*sring
	stations []*sstation
	nics     []*snic
	iris     []*siri
	engine   *sim.Engine
	tracer   *trace.Recorder

	// faults is the installed fault schedule; nil for fault-free runs.
	faults *fault.Driver
}

// SetTracer attaches an optional lifecycle recorder (nil-safe).
func (n *SlottedNetwork) SetTracer(t *trace.Recorder) { n.tracer = t }

// snic couples a station with its PM.
type snic struct {
	st      *sstation
	pm      PMPort
	outResp *spktQueue
	outReq  *spktQueue
	period  int64
}

// NewSlotted builds the slotted-ring network for cfg (the same
// topology, sizing and clocking rules as the wormhole network).
func NewSlotted(cfg Config, pms []PMPort, engine *sim.Engine) (*SlottedNetwork, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(pms) != cfg.Spec.PMs() {
		return nil, fmt.Errorf("ring: %d PMs supplied for a %s topology (%d)",
			len(pms), cfg.Spec, cfg.Spec.PMs())
	}
	n := &SlottedNetwork{
		cfg:     cfg,
		clFlits: packet.RingSizing.CacheLineFlits(cfg.LineBytes),
		nics:    make([]*snic, len(pms)),
		engine:  engine,
	}
	n.buildRing(0, 0, pms, nil)
	for _, r := range n.rings {
		r.slotPeriod = int64(n.clFlits)
		if cfg.DoubleSpeedGlobal && r.stations[0].level != 0 {
			r.slotPeriod *= 2
		}
	}
	if cfg.DoubleSpeedGlobal {
		for _, nc := range n.nics {
			nc.period = 2
		}
	}
	return n, nil
}

// buildRing mirrors the wormhole builder: leaf rings carry NICs,
// internal rings carry child IRI upper stations, and every non-global
// ring ends with its parent IRI's lower station.
func (n *SlottedNetwork) buildRing(level, base int, pms []PMPort, parentLower *sstation) {
	spec := n.cfg.Spec
	branches := spec.Levels[level]
	var slots []*sstation

	if level == spec.NumLevels()-1 {
		for j := 0; j < branches; j++ {
			pmID := base + j
			pm := pms[pmID]
			st := &sstation{
				name:  fmt.Sprintf("snic%d", pmID),
				level: level,
				util:  &stats.Utilization{},
			}
			id := pmID
			st.exits = func(dst int) bool { return dst == id }
			st.exitPM = pm.Deliver
			outResp, outReq := newSPktQueue(1), newSPktQueue(1)
			st.inject = []*spktQueue{outResp, outReq}
			n.nics[pmID] = &snic{st: st, pm: pm, outResp: outResp, outReq: outReq, period: 1}
			n.stations = append(n.stations, st)
			slots = append(slots, st)
		}
	} else {
		sub := spec.SubtreeSize(level + 1)
		for j := 0; j < branches; j++ {
			lo := base + j*sub
			hi := lo + sub
			upResp := newSPktQueue(slottedIRIDepth)
			upReq := newSPktQueue(slottedIRIDepth)
			downResp := newSPktQueue(slottedIRIDepth)
			downReq := newSPktQueue(slottedIRIDepth)
			n.iris = append(n.iris, &siri{lo: lo, hi: hi,
				upResp: upResp, upReq: upReq, downResp: downResp, downReq: downReq})

			upper := &sstation{
				name:  fmt.Sprintf("siri[%d,%d).up", lo, hi),
				level: level,
				util:  &stats.Utilization{},
			}
			l, h := lo, hi
			upper.exits = func(dst int) bool { return dst >= l && dst < h }
			upper.exitResp, upper.exitReq = downResp, downReq
			upper.inject = []*spktQueue{upResp, upReq}

			lower := &sstation{
				name:  fmt.Sprintf("siri[%d,%d).down", lo, hi),
				level: level + 1,
				util:  &stats.Utilization{},
			}
			lower.exits = func(dst int) bool { return dst < l || dst >= h }
			lower.exitResp, lower.exitReq = upResp, upReq
			lower.inject = []*spktQueue{downResp, downReq}

			n.stations = append(n.stations, upper)
			slots = append(slots, upper)
			n.buildRing(level+1, lo, pms, lower)
		}
	}

	if parentLower != nil {
		n.stations = append(n.stations, parentLower)
		slots = append(slots, parentLower)
	}
	n.rings = append(n.rings, &sring{
		stations: slots,
		slots:    make([]sslot, len(slots)),
		lo:       base,
		hi:       base + spec.SubtreeSize(level),
	})
}

// Compute implements sim.Component. All slotted movement is internal
// single-writer slot and queue manipulation, so the work happens in
// Commit (after the PMs', keeping the wormhole model's pipeline
// timing).
func (n *SlottedNetwork) Compute(now int64) {}

// Commit implements sim.Component. Progress is reported to the engine
// once per commit (batched).
func (n *SlottedNetwork) Commit(now int64) {
	if n.faults != nil {
		n.faults.Step(now)
	}
	moved := 0
	for _, r := range n.rings {
		if now%r.slotPeriod != 0 {
			continue
		}
		moved += n.stepRing(r, now)
	}
	if moved > 0 {
		n.engine.ProgressN(moved)
	}
	for _, nc := range n.nics {
		if now%nc.period == 0 {
			n.refillNIC(nc, now)
		}
	}
}

// stepRing advances one ring by one slot position and lets every
// station process the slot now in front of it. It returns the number
// of progress events (extractions and injections) — a return value
// rather than a shared accumulator so ring shards can step
// concurrently under the parallel engine.
func (n *SlottedNetwork) stepRing(r *sring, now int64) (moved int) {
	r.headPos = (r.headPos - 1 + len(r.slots)) % len(r.slots)
	for i, st := range r.stations {
		st.util.Tick(1)
		slot := r.slotAt(i)
		if st.flt != nil && st.fltBlockedSlot(now, now/r.slotPeriod) {
			// The station's ring attachment is faulted: it neither
			// extracts nor injects; an occupied slot rides past (the
			// slotted ring's natural NACK behaviour).
			if slot.pkt != nil {
				st.util.Busy(1)
			}
			continue
		}
		busy := slot.pkt != nil
		injected := false
		if slot.pkt != nil && n.processOccupied(r, st, slot, now) {
			moved++
		}
		if slot.pkt == nil {
			injected = n.tryInject(r, st, slot, now)
			if injected {
				moved++
			}
			busy = busy || injected
		}
		if st.stall != nil && !injected && st.hasReady(now) {
			st.stall.Inc()
		}
		if busy {
			st.util.Busy(1)
		}
	}
	return moved
}

// processOccupied copies the passing packet out when this is its exit
// station and the exit has room; otherwise it keeps circulating. It
// reports whether the packet was extracted.
func (n *SlottedNetwork) processOccupied(r *sring, st *sstation, slot *sslot, now int64) bool {
	p := slot.pkt
	if st.exits == nil || !st.exits(p.Dst) {
		return false
	}
	if st.exitPM != nil {
		slot.pkt = nil
		r.occupied--
		st.exitPM(p, now)
		return true
	}
	// Store-and-forward: injectable on the next ring from the next
	// tick. Queue full means NACK — the packet rides on and retries
	// next lap.
	if st.exitQueueFor(p).push(p, now+1) {
		slot.pkt = nil
		r.occupied--
		return true
	}
	return false
}

// tryInject fills an empty slot with a whole waiting packet
// (responses before requests) and reports whether one was injected.
func (n *SlottedNetwork) tryInject(r *sring, st *sstation, slot *sslot, now int64) bool {
	for _, q := range st.inject {
		head, ok := q.peek(now)
		if !ok || !r.mayAdmit(head) {
			continue
		}
		q.pop(now)
		slot.pkt = head
		r.occupied++
		n.tracer.Record(now, trace.Inject, head, st.name)
		return true
	}
	return false
}

// refillNIC loads pending packets from the PM into free NIC output
// registers.
func (n *SlottedNetwork) refillNIC(nc *snic, now int64) {
	if nc.outResp.count() == 0 {
		if p, ok := nc.pm.PendingResponse(); ok {
			nc.pm.PopPendingResponse()
			nc.outResp.push(p, now+1)
		}
	}
	if nc.outReq.count() == 0 {
		if p, ok := nc.pm.PendingRequest(); ok {
			nc.pm.PopPendingRequest()
			nc.outReq.push(p, now+1)
		}
	}
}

// DescribeMetrics registers the slotted model's instruments under the
// same names and labels as the wormhole model (per-level slot
// utilization as ring_link_util, per-IRI transfer-queue occupancy in
// flits, per-NIC injection stalls counted in slot-steps), so the two
// switching techniques export directly comparable telemetry.
// Nil-safe.
func (n *SlottedNetwork) DescribeMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	perLevel := make([][]*stats.Utilization, n.cfg.Spec.NumLevels())
	for _, st := range n.stations {
		perLevel[st.level] = append(perLevel[st.level], st.util)
	}
	for lvl, backing := range perLevel {
		reg.Ratio("ring_link_util", metrics.Labels{Link: levelLabel(lvl)}, backing...)
	}
	for _, ir := range n.iris {
		node := fmt.Sprintf("iri[%d,%d)", ir.lo, ir.hi)
		for _, q := range []struct {
			queue        *spktQueue
			kind, class string
		}{
			{ir.upReq, "up", "req"},
			{ir.upResp, "up", "rsp"},
			{ir.downReq, "down", "req"},
			{ir.downResp, "down", "rsp"},
		} {
			queue := q.queue
			reg.Gauge("iri_queue_flits",
				metrics.Labels{Node: node, Queue: q.kind, Class: q.class},
				func() float64 { return float64(queue.bufferedFlits()) })
		}
	}
	for id, nc := range n.nics {
		nc.st.stall = reg.Counter("nic_inject_stall_cycles",
			metrics.Labels{Node: fmt.Sprintf("nic%d", id)})
	}
	if n.faults != nil {
		n.faults.Counter = reg.Counter("fault_events_total", metrics.Labels{})
	}
}

// UtilizationByLevel returns per-level slot utilization in [0,1]
// (index 0 = global).
func (n *SlottedNetwork) UtilizationByLevel() []float64 {
	levels := n.cfg.Spec.NumLevels()
	aggr := make([]stats.Utilization, levels)
	for _, st := range n.stations {
		aggr[st.level].Merge(st.util)
	}
	out := make([]float64, levels)
	for i := range aggr {
		out[i] = aggr[i].Value()
	}
	return out
}

// ResetUtilization clears slot counters.
func (n *SlottedNetwork) ResetUtilization() {
	for _, st := range n.stations {
		st.util.Reset()
	}
}

// BufferedFlits counts flits riding slots plus flits waiting in
// transfer queues and output registers.
func (n *SlottedNetwork) BufferedFlits() int {
	total := 0
	for _, r := range n.rings {
		for i := range r.slots {
			if r.slots[i].pkt != nil {
				total += r.slots[i].pkt.Flits
			}
		}
	}
	for _, st := range n.stations {
		for _, q := range st.inject {
			total += q.bufferedFlits()
		}
	}
	return total
}

// CheckInvariants verifies slot and queue bookkeeping.
func (n *SlottedNetwork) CheckInvariants() error {
	for ri, r := range n.rings {
		occ := 0
		for i := range r.slots {
			if r.slots[i].pkt != nil {
				occ++
			}
		}
		if occ != r.occupied {
			return fmt.Errorf("ring: slotted ring %d occupancy count %d != %d actual",
				ri, r.occupied, occ)
		}
	}
	for _, st := range n.stations {
		for _, q := range st.inject {
			if q.count() > q.cap {
				return fmt.Errorf("ring: %s queue holds %d packets, cap %d",
					st.name, q.count(), q.cap)
			}
		}
	}
	return nil
}

// NumStations returns the number of ring attachments.
func (n *SlottedNetwork) NumStations() int { return len(n.stations) }
