package ring

// Fault-injection behaviour tests for both switching techniques: a
// dead station output really stops traffic (and recovers on
// schedule), and the forensic report names the faulted station.

import (
	"strings"
	"testing"

	"ringmesh/internal/fault"
	"ringmesh/internal/packet"
	"ringmesh/internal/topo"
)

func mustPlan(t *testing.T, s string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func flatCfg(line int) Config {
	spec, err := topo.ParseRingSpec("4")
	if err != nil {
		panic(err)
	}
	return Config{Spec: spec, LineBytes: line}
}

// A dead output link on the source's own station pins the packet in
// its NIC for exactly the fault window.
func TestStationFaultBlocksThenRecovers(t *testing.T) {
	h := newHarness(t, flatCfg(32))
	if err := h.net.ApplyFaultPlan(mustPlan(t, "stutter@0+50:node=0")); err != nil {
		t.Fatal(err)
	}
	p := mkPkt(1, packet.ReadRequest, 0, 2, 32)
	h.pms[0].pendReq = append(h.pms[0].pendReq, p)
	h.run(t, 49)
	if len(h.pms[2].delivered) != 0 {
		t.Fatalf("packet crossed a dead link (delivered at %v)", h.pms[2].deliverAt)
	}
	h.run(t, 30)
	if len(h.pms[2].delivered) != 1 {
		t.Fatal("packet not delivered after the fault expired")
	}
	if at := h.pms[2].deliverAt[0]; at <= 50 {
		t.Fatalf("delivered at %d, inside the fault window", at)
	}
}

// The same scenario on the slotted network: the faulted attachment
// keeps NACKing, the packet circulates or waits, and delivery resumes
// after the window.
func TestSlottedStationFaultBlocksThenRecovers(t *testing.T) {
	cfg := flatCfg(32)
	cfg.Switching = Slotted
	h := newSlottedHarness(t, cfg)
	if err := h.net.ApplyFaultPlan(mustPlan(t, "stutter@0+60:node=0")); err != nil {
		t.Fatal(err)
	}
	p := mkPkt(1, packet.ReadRequest, 0, 2, 32)
	h.pms[0].pendReq = append(h.pms[0].pendReq, p)
	h.run(t, 59)
	if len(h.pms[2].delivered) != 0 {
		t.Fatalf("packet crossed a faulted attachment (delivered at %v)", h.pms[2].deliverAt)
	}
	h.run(t, 120)
	if len(h.pms[2].delivered) != 1 {
		t.Fatal("packet not delivered after the fault expired")
	}
}

// A permanently dead station with a packet waiting to leave must show
// in the stall report: the active fault, a self-edge cycle on the
// station, and the packet among the oldest.
func TestStallReportNamesFaultedStation(t *testing.T) {
	h := newHarness(t, flatCfg(32))
	if err := h.net.ApplyFaultPlan(mustPlan(t, "stutter@0+100000:node=1")); err != nil {
		t.Fatal(err)
	}
	// 0 -> 2 passes through station 1, whose output is dead: the worm
	// parks in station 1's transit buffer.
	p := mkPkt(1, packet.ReadRequest, 0, 2, 32)
	h.pms[0].pendReq = append(h.pms[0].pendReq, p)
	h.run(t, 60)
	rep := h.net.BuildStallReport(60)
	if len(rep.ActiveFaults) == 0 {
		t.Fatal("report lists no active fault")
	}
	found := false
	for _, e := range rep.WaitFor {
		if e.From == e.To && strings.Contains(e.Why, "faulted") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no self-edge on the dead station: %+v", rep.WaitFor)
	}
	if len(rep.Cycles) == 0 {
		t.Fatalf("no cycle detected for the dead station: %+v", rep.WaitFor)
	}
	if len(rep.Oldest) == 0 {
		t.Fatal("parked packet missing from the oldest list")
	}
}

func TestRingApplyFaultPlanValidates(t *testing.T) {
	h := newHarness(t, flatCfg(32))
	if err := h.net.ApplyFaultPlan(mustPlan(t, "stutter@0+10:node=42")); err == nil {
		t.Fatal("out-of-range station accepted")
	}
	// Rings have a single output port per station.
	if err := h.net.ApplyFaultPlan(mustPlan(t, "degrade@0+10:node=0,port=1,factor=2")); err == nil {
		t.Fatal("out-of-range port accepted")
	}
}
