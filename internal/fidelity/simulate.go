package fidelity

import (
	"context"

	"ringmesh/internal/core"
)

// simulateEstimator is the exact backend: it builds and runs the
// flit-level engine. It exists so callers that already speak the
// registry (topofind, the validation harness) can switch tiers by
// name alone.
type simulateEstimator struct{}

func (simulateEstimator) Name() string { return Simulate }

func (simulateEstimator) Estimate(ctx context.Context, cfg core.SystemConfig, rc core.RunConfig) (core.Result, error) {
	// The field is advisory by the time it reaches a backend: this IS
	// the simulate path, and core.NewSystem rejects any other value.
	cfg.Fidelity = Simulate
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return core.Result{}, err
	}
	return sys.RunCtx(ctx, rc)
}
