package fidelity

import (
	"context"
	"fmt"
	"math"

	"ringmesh/internal/analytic"
	"ringmesh/internal/core"
	"ringmesh/internal/network"
	"ringmesh/internal/node"
	"ringmesh/internal/topo"
	"ringmesh/internal/workload"
)

// analyticEstimator answers from the closed-form models of
// internal/analytic: expected zero-load round-trip latency under the
// M-MRP target distribution, plus a saturation verdict from the
// bisection-bandwidth bounds. It runs in microseconds (benchmarked by
// BenchmarkAnalyticEstimate under benchguard) and is validated
// against the simulator across the golden configs — the recorded
// per-config error bounds live in bounds.go and results/
// analytic-bounds.csv, and the harness in fidelity_test.go fails if
// the backends drift apart at low load.
type analyticEstimator struct{}

func (analyticEstimator) Name() string { return Analytic }

// Estimate maps the configuration onto the analytic models. It
// refuses — with ErrUnsupported — anything outside the validated
// envelope rather than guessing: serving layers fall back to exact
// simulation on that error, so refusal costs a queue slot, never a
// wrong labeled answer.
func (analyticEstimator) Estimate(_ context.Context, cfg core.SystemConfig, _ core.RunConfig) (core.Result, error) {
	if err := cfg.Workload.Validate(); err != nil {
		return core.Result{}, err
	}
	if err := unsupported(cfg); err != nil {
		return core.Result{}, err
	}
	// Resolve the geometry through the registry so every spelling
	// (Topology or Nodes) lands on the canonical notation, with the
	// model's own validation errors.
	plan, err := network.New(cfg.Network, cfg.Net)
	if err != nil {
		return core.Result{}, err
	}
	p := analytic.Params{
		LineBytes:    cfg.Net.LineBytes,
		MemLatency:   cfg.MemLatency,
		ReadProb:     cfg.Workload.ReadProb,
		MeshBufFlits: cfg.Net.BufferFlits,
	}
	if p.MemLatency == 0 {
		p.MemLatency = node.DefaultMemLatency
	}

	var (
		lat    float64
		bound  float64
		pat    workload.Pattern
		pms    = plan.PMs
		maxUtl float64
	)
	switch cfg.Network {
	case "ring":
		spec, err := topo.ParseRingSpec(plan.Topology)
		if err != nil {
			return core.Result{}, err
		}
		if lat, err = analytic.RingZeroLoadLatency(spec, p, cfg.Workload); err != nil {
			return core.Result{}, err
		}
		if pat, err = workload.NewRingLocality(pms, cfg.Workload.R); err != nil {
			return core.Result{}, err
		}
		bound = analytic.RingBisectionBound(spec, p, 1)
	case "mesh":
		spec, err := topo.ParseMeshSpec(plan.Topology)
		if err != nil {
			return core.Result{}, err
		}
		if lat, err = analytic.MeshZeroLoadLatency(spec, p, cfg.Workload); err != nil {
			return core.Result{}, err
		}
		if pat, err = workload.NewMeshLocality(spec, cfg.Workload.R); err != nil {
			return core.Result{}, err
		}
		bound = analytic.MeshBisectionBound(spec, p)
	default:
		return core.Result{}, fmt.Errorf("%w: no analytic model for network %q", ErrUnsupported, cfg.Network)
	}

	// Offered remote load per PM versus the bisection bound: past the
	// bound the network cannot drain what the processors offer, which
	// is exactly the simulator's Saturated verdict at the knee.
	offered := cfg.Workload.C * analytic.RemoteFraction(pms, pat)
	saturated := bound > 0 && offered > bound
	if bound > 0 {
		maxUtl = math.Min(1, offered/bound)
	}
	res := core.Result{
		Latency:    lat,
		Throughput: math.Min(offered, bound) * float64(pms),
		Saturated:  saturated,
	}
	// Report the predicted bottleneck utilization in the family's
	// utilization slot so tier-labeled answers still carry a load
	// signal (global ring for hierarchies, aggregate for meshes).
	if cfg.Network == "ring" {
		res.RingUtil = []float64{maxUtl}
	} else {
		res.MeshUtil = maxUtl
	}
	return res, nil
}

// unsupported rejects configuration features the analytic formulas do
// not model and the validation harness therefore never certified.
func unsupported(cfg core.SystemConfig) error {
	switch {
	case cfg.Net.SlottedSwitching:
		return fmt.Errorf("%w: slotted switching", ErrUnsupported)
	case cfg.Net.DoubleSpeedGlobal:
		return fmt.Errorf("%w: double-speed global ring", ErrUnsupported)
	case cfg.Net.UnsafeNoVC:
		return fmt.Errorf("%w: virtual channels disabled", ErrUnsupported)
	case cfg.FaultPlan != nil && !cfg.FaultPlan.Empty():
		return fmt.Errorf("%w: fault plans", ErrUnsupported)
	case cfg.Workload.OpenLoop:
		return fmt.Errorf("%w: open-loop workload", ErrUnsupported)
	case cfg.Workload.Deterministic:
		return fmt.Errorf("%w: deterministic inter-miss gaps", ErrUnsupported)
	default:
		return nil
	}
}
