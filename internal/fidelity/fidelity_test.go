package fidelity

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
	"testing"

	"ringmesh/internal/core"
	"ringmesh/internal/fault"
	"ringmesh/internal/network"
	"ringmesh/internal/workload"
)

// goldenConfigs is the validation matrix: every network family the
// analytic backend claims to model, across the geometry axes that
// change its formulas (hierarchy shape, line size, mesh buffer depth).
// These mirror the facade's golden-test configurations.
var goldenConfigs = []struct {
	network  string
	topology string
	line     int
	buf      int
}{
	{"ring", "6", 32, 0},
	{"ring", "2:4", 64, 0},
	{"ring", "2:2:3", 128, 0},
	{"ring", "3:6", 32, 0},
	{"mesh", "3x3", 32, 4},
	{"mesh", "4x4", 64, 0},
	{"mesh", "2x2", 128, 1},
}

// loadSweep is the C axis. Only the low-load point gates: the
// analytic model is a zero-load latency plus a saturation bound, so
// it is certified where queueing is negligible and merely recorded
// where it is not (the ungated rows document the drift).
var loadSweep = []struct {
	c    float64
	gate bool
}{
	{0.0005, true},
	{0.005, false},
	{0.02, false},
}

// validationRun is the run schedule for the harness: long batches so
// the sparse low-load traffic still yields hundreds of observations.
var validationRun = core.RunConfig{WarmupCycles: 20000, BatchCycles: 20000, Batches: 8}

func validationConfig(netName, topology string, line, buf int, c float64) core.SystemConfig {
	return core.SystemConfig{
		Network: netName,
		Net: network.Config{
			Topology:    topology,
			LineBytes:   line,
			BufferFlits: buf,
		},
		Workload: workload.MMRP{R: 1.0, C: c, T: 1, ReadProb: 0.7},
		Seed:     1,
	}
}

// TestAnalyticWithinRecordedBounds is the validation harness: it runs
// both backends over the golden configs and the load sweep, and fails
// if the analytic estimate drifts outside the recorded bound on any
// gated (low-load) row. With FIDELITY_RECORD=1 it instead re-measures
// every row and rewrites both copies of analytic-bounds.csv (the
// embedded one and results/).
func TestAnalyticWithinRecordedBounds(t *testing.T) {
	record := os.Getenv("FIDELITY_RECORD") == "1"
	sim, err := Get(Simulate)
	if err != nil {
		t.Fatal(err)
	}
	ana, err := Get(Analytic)
	if err != nil {
		t.Fatal(err)
	}

	var recorded []BoundRow
	existing := map[string]BoundRow{}
	if !record {
		rows, err := Bounds()
		if err != nil {
			t.Fatalf("embedded bounds: %v", err)
		}
		for _, r := range rows {
			existing[rowKey(r.Network, r.Topology, r.LineBytes, r.BufferFlits, r.C)] = r
		}
	}

	for _, gc := range goldenConfigs {
		for _, pt := range loadSweep {
			name := fmt.Sprintf("%s/%s@%dB/buf%d/C=%g", gc.network, gc.topology, gc.line, gc.buf, pt.c)
			t.Run(name, func(t *testing.T) {
				if !record && !pt.gate {
					t.Skip("ungated load point: recorded for documentation only")
				}
				cfg := validationConfig(gc.network, gc.topology, gc.line, gc.buf, pt.c)
				est, err := ana.Estimate(context.Background(), cfg, validationRun)
				if err != nil {
					t.Fatalf("analytic: %v", err)
				}
				exact, err := sim.Estimate(context.Background(), cfg, validationRun)
				if err != nil {
					t.Fatalf("simulate: %v", err)
				}
				if exact.Latency <= 0 {
					t.Fatalf("simulator produced latency %v", exact.Latency)
				}
				relErr := math.Abs(est.Latency-exact.Latency) / exact.Latency
				t.Logf("analytic %.4f vs simulated %.4f (rel err %.4f)", est.Latency, exact.Latency, relErr)

				if record {
					recorded = append(recorded, BoundRow{
						Network:     gc.network,
						Topology:    gc.topology,
						LineBytes:   gc.line,
						BufferFlits: gc.buf,
						C:           pt.c,
						Analytic:    est.Latency,
						Simulated:   exact.Latency,
						RelErr:      relErr,
						Gate:        pt.gate,
						Bound:       admittedBound(relErr),
					})
					return
				}
				row, ok := existing[rowKey(gc.network, gc.topology, gc.line, gc.buf, pt.c)]
				if !ok {
					t.Fatalf("no recorded bound for this config; regenerate with FIDELITY_RECORD=1")
				}
				if relErr > row.Bound {
					t.Errorf("analytic drifted outside recorded bound: rel err %.4f > bound %.4f "+
						"(recorded rel err was %.4f); if the change is intentional, regenerate with FIDELITY_RECORD=1",
						relErr, row.Bound, row.RelErr)
				}
			})
		}
	}

	if record {
		data := FormatBounds(recorded)
		for _, path := range []string{"analytic-bounds.csv", "../../results/analytic-bounds.csv"} {
			if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("recorded %d rows to analytic-bounds.csv and results/analytic-bounds.csv", len(recorded))
	}
}

func rowKey(netName, topology string, line, buf int, c float64) string {
	return fmt.Sprintf("%s|%s|%d|%d|%g", netName, topology, line, buf, c)
}

// admittedBound turns an observed relative error into the enforced
// bound: double the observation with a floor, so deterministic reruns
// always pass while real model drift still trips the gate.
func admittedBound(relErr float64) float64 {
	b := 2 * relErr
	if b < 0.02 {
		b = 0.02
	}
	// Round up to the CSV's 4-decimal precision so the parsed bound is
	// never below the intended one.
	return math.Ceil(b*1e4) / 1e4
}

// TestBoundsFilesIdentical pins the embedded bounds table and the
// human-facing copy under results/ byte-identical, so neither can be
// edited without the other (FIDELITY_RECORD=1 rewrites both).
func TestBoundsFilesIdentical(t *testing.T) {
	disk, err := os.ReadFile("../../results/analytic-bounds.csv")
	if err != nil {
		t.Fatalf("results copy: %v (regenerate with FIDELITY_RECORD=1)", err)
	}
	if string(disk) != boundsCSV {
		t.Fatalf("results/analytic-bounds.csv differs from the embedded copy; regenerate both with FIDELITY_RECORD=1")
	}
}

func TestBoundsCoverGoldenConfigs(t *testing.T) {
	rows, err := Bounds()
	if err != nil {
		t.Fatal(err)
	}
	gated := map[string]bool{}
	for _, r := range rows {
		if r.Gate {
			gated[rowKey(r.Network, r.Topology, r.LineBytes, r.BufferFlits, r.C)] = true
		}
	}
	for _, gc := range goldenConfigs {
		found := false
		for _, pt := range loadSweep {
			if pt.gate && gated[rowKey(gc.network, gc.topology, gc.line, gc.buf, pt.c)] {
				found = true
			}
		}
		if !found {
			t.Errorf("golden config %s %s @%dB buf%d has no gated bound row", gc.network, gc.topology, gc.line, gc.buf)
		}
	}
}

func TestBoundFor(t *testing.T) {
	// Exact gated match.
	b, ok := BoundFor("ring", network.Config{Topology: "2:4", LineBytes: 64})
	if !ok {
		t.Fatal("no bound for validated ring config")
	}
	if b.MaxRelErr <= 0 || b.MaxRelErr > 1 {
		t.Fatalf("implausible bound %v", b.MaxRelErr)
	}
	if !strings.Contains(b.Basis, "2:4") {
		t.Errorf("exact-match basis should name the config: %q", b.Basis)
	}

	// Unvalidated geometry falls back to the family-wide envelope.
	fb, ok := BoundFor("ring", network.Config{Topology: "2:2:2:2", LineBytes: 32})
	if !ok {
		t.Fatal("no family fallback bound for ring")
	}
	if !strings.Contains(fb.Basis, "worst case") {
		t.Errorf("fallback basis should say so: %q", fb.Basis)
	}
	// The family envelope must cover every exact bound.
	if fb.MaxRelErr < b.MaxRelErr {
		t.Errorf("family bound %v below a member's bound %v", fb.MaxRelErr, b.MaxRelErr)
	}

	// Mesh exact match distinguishes buffer depth.
	if _, ok := BoundFor("mesh", network.Config{Topology: "3x3", LineBytes: 32, BufferFlits: 4}); !ok {
		t.Error("no bound for validated mesh config")
	}

	if _, ok := BoundFor("nonesuch", network.Config{Topology: "3x3", LineBytes: 32}); ok {
		t.Error("bound invented for unregistered network")
	}
}

func TestRegistry(t *testing.T) {
	names := Names()
	want := map[string]bool{Simulate: false, Analytic: false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("registry missing %q (have %v)", n, names)
		}
	}
	for _, n := range names {
		e, err := Get(n)
		if err != nil {
			t.Fatalf("Get(%q): %v", n, err)
		}
		if e.Name() != n {
			t.Errorf("Get(%q).Name() = %q", n, e.Name())
		}
	}
	if _, err := Get("nonesuch"); err == nil {
		t.Error("Get of unknown estimator succeeded")
	}
}

func TestNormalize(t *testing.T) {
	for _, tc := range []struct {
		in, want string
		wantErr  bool
	}{
		{"", Simulate, false},
		{"simulate", Simulate, false},
		{"analytic", Analytic, false},
		{"auto", "", true},
		{"exact", "", true},
		{"ANALYTIC", "", true},
	} {
		got, err := Normalize(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("Normalize(%q) = %q, want error", tc.in, got)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("Normalize(%q) = %q, %v; want %q", tc.in, got, err, tc.want)
		}
	}
}

func TestAnalyticUnsupported(t *testing.T) {
	ana, err := Get(Analytic)
	if err != nil {
		t.Fatal(err)
	}
	base := func() core.SystemConfig {
		return validationConfig("mesh", "3x3", 32, 4, 0.04)
	}
	plan, err := fault.Parse("stutter@10+10:node=0")
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]core.SystemConfig{}

	c := base()
	c.Net.SlottedSwitching = true
	cases["slotted"] = c

	c = validationConfig("ring", "2:4", 32, 0, 0.04)
	c.Net.DoubleSpeedGlobal = true
	cases["double-speed"] = c

	c = base()
	c.Net.UnsafeNoVC = true
	cases["no-vc"] = c

	c = base()
	c.FaultPlan = plan
	cases["faults"] = c

	c = base()
	c.Workload.OpenLoop = true
	cases["open-loop"] = c

	c = base()
	c.Workload.Deterministic = true
	cases["deterministic"] = c

	for name, cfg := range cases {
		if _, err := ana.Estimate(context.Background(), cfg, validationRun); !errors.Is(err, ErrUnsupported) {
			t.Errorf("%s: err = %v, want ErrUnsupported", name, err)
		}
	}

	// An unregistered network is a configuration error (the registry's
	// own message), not an unsupported-feature refusal.
	c = base()
	c.Network = "nonesuch"
	if _, err := ana.Estimate(context.Background(), c, validationRun); err == nil {
		t.Error("unknown network accepted")
	}
}

// TestAnalyticSaturationVerdict checks the saturation side of the
// estimate: far past the bisection bound the analytic backend must
// agree with the simulator that the configuration saturates, and at
// trickle load that it does not.
func TestAnalyticSaturationVerdict(t *testing.T) {
	ana, err := Get(Analytic)
	if err != nil {
		t.Fatal(err)
	}
	low := validationConfig("ring", "2:4", 32, 0, 0.0005)
	res, err := ana.Estimate(context.Background(), low, validationRun)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated {
		t.Error("trickle load marked saturated")
	}
	if len(res.RingUtil) == 0 || res.RingUtil[0] <= 0 || res.RingUtil[0] > 0.1 {
		t.Errorf("trickle-load utilization %v implausible", res.RingUtil)
	}

	high := validationConfig("ring", "2:4", 32, 0, 0.5)
	res, err = ana.Estimate(context.Background(), high, validationRun)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Saturated {
		t.Error("C=0.5 not marked saturated")
	}
	if res.RingUtil[0] != 1 {
		t.Errorf("saturated utilization = %v, want clamped 1", res.RingUtil)
	}
}
