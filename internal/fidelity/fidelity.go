// Package fidelity is the multi-fidelity serving layer's backend
// registry: every way of turning a system configuration into a
// Result is an Estimator, keyed by name. Two backends ship built in —
// "simulate", today's flit-level engine, and "analytic", the
// closed-form models of internal/analytic promoted to a first-class
// answer path. The analytic backend answers in microseconds with a
// recorded error bound (see bounds.go); the simulate backend is
// exact and pays the engine's cost.
//
// The tiering this enables (cache hit → analytic estimate → exact
// simulation) mirrors the paper's own lineage: Hamacher & Jiang
// (ICPP'94) compare these networks purely analytically, and design
// studies triage candidate points with cheap models before simulating
// the survivors.
package fidelity

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"ringmesh/internal/core"
)

// Backend names. Auto is a serving-layer routing policy ("cache hit
// if present, else analytic now plus an exact upgrade job"), resolved
// at admission — it never reaches the registry and never enters a
// cache key.
const (
	Simulate = "simulate"
	Analytic = "analytic"
	Auto     = "auto"
)

// ErrUnsupported marks a configuration the analytic models do not
// cover (slotted switching, double-speed global rings, fault plans,
// open-loop or deterministic workloads, third-party topologies).
// Serving layers treat it as "fall back to exact", not as a failure.
var ErrUnsupported = errors.New("fidelity: configuration outside the analytic model's validated envelope")

// Estimator turns a system configuration into a Result at some
// fidelity. Estimate must be safe for concurrent use.
type Estimator interface {
	// Name returns the registry key.
	Name() string
	// Estimate produces the backend's Result for the configuration.
	// The simulate backend honours the full run schedule; the
	// analytic backend ignores schedule, seed and histogram fields
	// (which is why CacheKey zeroes them for analytic keys).
	Estimate(ctx context.Context, cfg core.SystemConfig, rc core.RunConfig) (core.Result, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Estimator{}
)

// Register adds an estimator under its name, replacing any previous
// registration (latest wins, like the network registry).
func Register(e Estimator) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[e.Name()] = e
}

// Get returns the estimator registered under name.
func Get(name string) (Estimator, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("fidelity: no estimator %q (have %v)", name, Names())
	}
	return e, nil
}

// Names returns the registered backend names, sorted.
func Names() []string {
	var out []string
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Normalize resolves a fidelity spelling to a registry name: the
// empty string means simulate (the legacy default, so pre-fidelity
// configs hash and behave exactly as before). Auto is rejected — it
// is an admission-time policy, and must be resolved to simulate or
// analytic before anything is estimated or keyed.
func Normalize(name string) (string, error) {
	switch name {
	case "", Simulate:
		return Simulate, nil
	case Analytic:
		return Analytic, nil
	case Auto:
		return "", fmt.Errorf("fidelity: %q is a serving policy, resolve it to %q or %q at admission", Auto, Simulate, Analytic)
	default:
		return "", fmt.Errorf("fidelity: unknown fidelity %q (want %q, %q or %q)", name, Simulate, Analytic, Auto)
	}
}

func init() {
	Register(simulateEstimator{})
	Register(analyticEstimator{})
}
