package fidelity

import (
	_ "embed"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"ringmesh/internal/network"
)

// boundsCSV is the recorded analytic-vs-simulate validation table,
// embedded so the daemon can attach error bounds at runtime without
// a working directory dependency. The canonical human-facing copy is
// results/analytic-bounds.csv; TestBoundsFilesIdentical pins the two
// byte-identical, and the harness in fidelity_test.go regenerates
// both (FIDELITY_RECORD=1) and enforces the gated rows otherwise.
//
//go:embed analytic-bounds.csv
var boundsCSV string

// BoundRow is one validation measurement: both backends run on one
// (config, load) point and the observed relative latency error. Rows
// with Gate set additionally carry the enforced bound — the harness
// fails if a fresh run drifts past it. Ungated rows document how the
// zero-load model degrades as load rises; they are recorded, not
// enforced, and serving answers never cite them.
type BoundRow struct {
	Network     string
	Topology    string
	LineBytes   int
	BufferFlits int
	C           float64
	Analytic    float64
	Simulated   float64
	RelErr      float64
	Gate        bool
	Bound       float64
}

// Bound is the error envelope a serving layer attaches to an
// analytic-labeled answer.
type Bound struct {
	// MaxRelErr is the recorded worst-case relative latency error of
	// the analytic backend against the simulator at low load.
	MaxRelErr float64
	// Basis says what the bound was recorded against, for humans.
	Basis string
}

var (
	boundsOnce sync.Once
	boundsRows []BoundRow
	boundsErr  error
)

// Bounds returns the embedded validation table.
func Bounds() ([]BoundRow, error) {
	boundsOnce.Do(func() {
		boundsRows, boundsErr = ParseBounds(boundsCSV)
	})
	return boundsRows, boundsErr
}

// ParseBounds decodes the analytic-bounds CSV format (see
// FormatBounds for the writer).
func ParseBounds(data string) ([]BoundRow, error) {
	var rows []BoundRow
	for i, line := range strings.Split(strings.TrimSpace(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "network,") {
			continue
		}
		f := strings.Split(line, ",")
		if len(f) != 10 {
			return nil, fmt.Errorf("fidelity: bounds line %d: want 10 fields, got %d", i+1, len(f))
		}
		var (
			r   BoundRow
			err error
		)
		r.Network, r.Topology = f[0], f[1]
		if r.LineBytes, err = strconv.Atoi(f[2]); err == nil {
			if r.BufferFlits, err = strconv.Atoi(f[3]); err == nil {
				if r.C, err = strconv.ParseFloat(f[4], 64); err == nil {
					if r.Analytic, err = strconv.ParseFloat(f[5], 64); err == nil {
						if r.Simulated, err = strconv.ParseFloat(f[6], 64); err == nil {
							if r.RelErr, err = strconv.ParseFloat(f[7], 64); err == nil {
								r.Bound, err = strconv.ParseFloat(f[9], 64)
							}
						}
					}
				}
			}
		}
		if err != nil {
			return nil, fmt.Errorf("fidelity: bounds line %d: %v", i+1, err)
		}
		r.Gate = f[8] == "1"
		rows = append(rows, r)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("fidelity: bounds table is empty")
	}
	return rows, nil
}

// FormatBounds renders rows in the analytic-bounds CSV format, the
// inverse of ParseBounds.
func FormatBounds(rows []BoundRow) string {
	var b strings.Builder
	b.WriteString("# Analytic-vs-simulate validation: recorded per-config error bounds.\n")
	b.WriteString("# Regenerate with: FIDELITY_RECORD=1 go test ./internal/fidelity -run TestAnalyticWithinRecordedBounds\n")
	b.WriteString("# gate=1 rows are enforced by that test; bound is the admitted relative latency error.\n")
	b.WriteString("network,topology,line_bytes,buffer_flits,c,analytic_latency,sim_latency,rel_err,gate,bound\n")
	for _, r := range rows {
		gate := "0"
		if r.Gate {
			gate = "1"
		}
		fmt.Fprintf(&b, "%s,%s,%d,%d,%g,%.4f,%.4f,%.6f,%s,%.4f\n",
			r.Network, r.Topology, r.LineBytes, r.BufferFlits, r.C,
			r.Analytic, r.Simulated, r.RelErr, gate, r.Bound)
	}
	return b.String()
}

// BoundFor returns the recorded error bound for a configuration: the
// gated row matching its exact geometry when one exists, else the
// worst gated bound across its network family (conservative — the
// family-wide envelope always covers the per-config one), else not
// found (third-party networks are never analytically answerable
// anyway).
func BoundFor(networkName string, cfg network.Config) (Bound, bool) {
	rows, err := Bounds()
	if err != nil {
		return Bound{}, false
	}
	plan, err := network.New(networkName, cfg)
	if err != nil {
		return Bound{}, false
	}
	var (
		familyMax  float64
		familyRows int
	)
	for _, r := range rows {
		if !r.Gate || r.Network != networkName {
			continue
		}
		// Mesh buffer depth changes the round-trip formula, so it joins
		// the exact match; rings ignore BufferFlits entirely (exactly as
		// CacheKey zeroes it).
		exact := r.Topology == plan.Topology && r.LineBytes == cfg.LineBytes &&
			(networkName != "mesh" || r.BufferFlits == cfg.BufferFlits)
		if exact {
			return Bound{
				MaxRelErr: r.Bound,
				Basis: fmt.Sprintf("low-load validation of %s %s @%dB (C=%g)",
					r.Network, r.Topology, r.LineBytes, r.C),
			}, true
		}
		if r.Bound > familyMax {
			familyMax = r.Bound
		}
		familyRows++
	}
	if familyRows == 0 {
		return Bound{}, false
	}
	return Bound{
		MaxRelErr: familyMax,
		Basis: fmt.Sprintf("worst case over %d validated %s configs at low load",
			familyRows, networkName),
	}, true
}
