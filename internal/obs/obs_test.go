package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNilTraceIsFree(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x", Attr{"k", "v"})
	if sp != nil {
		t.Fatalf("nil trace returned non-nil span")
	}
	sp.Annotate("a", "b") // must not panic
	sp.SetTID(3)
	sp.End()
	tr.Record(SpanRecord{Name: "y"})
	if tr.Spans() != nil || tr.Dropped() != 0 {
		t.Fatalf("nil trace holds state")
	}
	var b strings.Builder
	if err := tr.WriteChrome(&b, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"traceEvents":[]`) {
		t.Fatalf("nil trace export not empty: %s", b.String())
	}
}

func TestTraceSpans(t *testing.T) {
	tr := NewTrace(16)
	sp := tr.Start("validate", Attr{"kind", "run"})
	sp.Annotate("family", "mesh")
	sp.End()
	tr.Start("run").SetTID(1).End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "validate" || len(spans[0].Attrs) != 2 {
		t.Fatalf("first span wrong: %+v", spans[0])
	}
	if spans[1].TID != 1 {
		t.Fatalf("SetTID not applied: %+v", spans[1])
	}
	if spans[0].Dur < 0 {
		t.Fatalf("negative duration")
	}
}

func TestTraceBound(t *testing.T) {
	tr := NewTrace(2)
	for i := 0; i < 5; i++ {
		tr.Start("s").End()
	}
	if n := len(tr.Spans()); n != 2 {
		t.Fatalf("bound not enforced: %d spans", n)
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
}

func TestWriteChrome(t *testing.T) {
	tr := NewTrace(8)
	base := time.Now()
	tr.Record(SpanRecord{Name: "queue-wait", Start: base, Dur: 2 * time.Millisecond})
	tr.Record(SpanRecord{
		Name: "run", TID: 1, Start: base.Add(2 * time.Millisecond),
		Dur: 5 * time.Millisecond, Attrs: []Attr{{"family", "ring"}},
	})
	var b strings.Builder
	if err := tr.WriteChrome(&b, 7); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   int64             `json:"ts"`
			Dur  int64             `json:"dur"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "queue-wait" || ev.Ph != "X" || ev.TS != 0 || ev.Dur != 2000 || ev.PID != 7 {
		t.Fatalf("first event wrong: %+v", ev)
	}
	ev = doc.TraceEvents[1]
	if ev.TS != 2000 || ev.TID != 1 || ev.Args["family"] != "ring" {
		t.Fatalf("second event wrong: %+v", ev)
	}
}

func TestPhaseStatsNil(t *testing.T) {
	var p *PhaseStats
	p.AddCompute(0, time.Second) // must not panic
	p.AddCommit(0, time.Second)
	p.AddBarrierWait(0, time.Second)
	p.AddTicks(1)
	if p.TotalComputeNS() != 0 || p.TotalCommitNS() != 0 {
		t.Fatalf("nil phase stats hold state")
	}
	if p.String() != "phase stats disabled" {
		t.Fatalf("nil String() = %q", p.String())
	}
}

func TestPhaseStatsAccumulate(t *testing.T) {
	p := NewPhaseStats([]string{"a", "b"}, 2)
	p.AddCompute(0, 3*time.Millisecond)
	p.AddCompute(1, 5*time.Millisecond)
	p.AddCommit(0, time.Millisecond)
	p.AddBarrierWait(1, 100*time.Microsecond)
	p.AddTicks(7)
	if got := p.TotalComputeNS(); got != int64(8*time.Millisecond) {
		t.Errorf("TotalComputeNS = %d", got)
	}
	if got := p.TotalCommitNS(); got != int64(time.Millisecond) {
		t.Errorf("TotalCommitNS = %d", got)
	}
	if p.Barrier[1].Count() != 1 || p.Barrier[0].Count() != 0 {
		t.Errorf("barrier digests wrong")
	}
	s := p.String()
	for _, want := range []string{"7 ticks", "shard a", "shard b", "worker 0", "worker 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}
