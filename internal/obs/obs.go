// Package obs is the simulator's span-level observability layer: a
// lightweight tracer recording named, attributed time spans into a
// bounded per-job timeline, with Chrome trace-event JSON export, plus
// the parallel engine's phase-timing aggregate (PhaseStats).
//
// The package follows the repo's nil-disables convention: a nil *Trace
// hands out nil *Spans and every method no-ops, so instrumented paths
// cost one pointer test when tracing is off. Unlike the metrics
// registry — cumulative instruments scraped at sample time — a trace
// is an episodic record: each span is one interval in one job's life
// (validate, queue-wait, run, a shard's commit phase), and the
// timeline is bounded so a pathological job cannot grow memory without
// limit.
package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// SpanRecord is one completed span in a trace's timeline.
type SpanRecord struct {
	// Name is the span's operation name ("run", "queue-wait").
	Name string
	// TID is the logical timeline (Chrome "thread") the span renders
	// on; 0 is the primary lifecycle lane.
	TID int
	// Start is the span's wall-clock start.
	Start time.Time
	// Dur is the span's duration.
	Dur time.Duration
	// Attrs are the span's annotations, in the order added.
	Attrs []Attr
}

// Trace is a bounded, concurrency-safe span timeline. Spans completing
// past the bound are counted as dropped rather than recorded, so the
// export stays honest about truncation.
type Trace struct {
	mu      sync.Mutex
	max     int
	spans   []SpanRecord
	dropped int
}

// NewTrace creates a trace holding at most max spans (max < 1 gets a
// small default).
func NewTrace(max int) *Trace {
	if max < 1 {
		max = 64
	}
	return &Trace{max: max}
}

// Span is one in-flight interval started by Trace.Start. End completes
// it. The nil Span (from a nil Trace) ignores every call.
type Span struct {
	tr    *Trace
	name  string
	tid   int
	start time.Time
	attrs []Attr
}

// Start opens a span at the current time. Nil-safe: a nil trace
// returns a nil span.
func (t *Trace) Start(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, name: name, start: time.Now(), attrs: attrs}
}

// SetTID moves the span onto a different timeline lane (Chrome tid).
func (s *Span) SetTID(tid int) *Span {
	if s != nil {
		s.tid = tid
	}
	return s
}

// Annotate appends an attribute to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// End completes the span and records it into the trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.tr.Record(SpanRecord{
		Name:  s.name,
		TID:   s.tid,
		Start: s.start,
		Dur:   time.Since(s.start),
		Attrs: s.attrs,
	})
}

// Record appends an already-measured span (the queue-wait span is
// reconstructed from the enqueue timestamp rather than held open).
// Nil-safe; spans past the bound are dropped and counted.
func (t *Trace) Record(r SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.max {
		t.dropped++
		return
	}
	t.spans = append(t.spans, r)
}

// Spans returns a snapshot of the recorded spans in completion order.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped returns how many spans the bound discarded.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is one Chrome trace-event ("ph":"X" complete event).
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"`  // microseconds
	Dur  int64             `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome renders the trace as Chrome trace-event JSON (the format
// chrome://tracing and Perfetto load): one complete ("X") event per
// span, timestamps in microseconds relative to the earliest span.
// Nil-safe (writes an empty trace).
func (t *Trace) WriteChrome(w io.Writer, pid int) error {
	spans := t.Spans()
	var epoch time.Time
	for _, s := range spans {
		if epoch.IsZero() || s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Ph:   "X",
			TS:   s.Start.Sub(epoch).Microseconds(),
			Dur:  s.Dur.Microseconds(),
			PID:  pid,
			TID:  s.TID,
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		events = append(events, ev)
	}
	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
		Dropped         int           `json:"droppedSpans,omitempty"`
	}{TraceEvents: events, DisplayTimeUnit: "ms", Dropped: t.Dropped()}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
