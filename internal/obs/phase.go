package obs

import (
	"fmt"
	"strings"
	"time"

	"ringmesh/internal/stats"
)

// ShardPhase accumulates one shard's time in each phase of the
// parallel tick loop.
type ShardPhase struct {
	// Name is the shard's partition name ("pm[0,8)", "iri1").
	Name string
	// ComputeNS is total nanoseconds spent in this shard's Compute.
	ComputeNS int64
	// CommitNS is total nanoseconds spent in this shard's CommitPhase
	// calls, summed across phases.
	CommitNS int64
}

// PhaseStats aggregates the parallel engine's phase timings: per-shard
// compute/commit durations (the shard-imbalance evidence) and a
// per-worker barrier-wait distribution (the synchronization-overhead
// evidence). It is strictly opt-in: the engine times nothing when its
// stats pointer is nil, and every method here is nil-safe.
//
// Concurrency contract: the engine's worker w writes only its own
// shards' ShardPhase entries (the worker→shard assignment is static)
// and only Barrier[w]; worker 0 alone writes Ticks. Readers must wait
// for the gang to join (Engine.Run returning) before calling the
// accessors — PhaseStats carries no locks by design, so the hot path
// stays a plain integer add.
type PhaseStats struct {
	// Shards holds one accumulator per plan shard, in shard order.
	Shards []ShardPhase
	// Barrier holds one barrier-wait distribution per worker,
	// nanoseconds per wait.
	Barrier []stats.Digest
	// Ticks is how many parallel ticks the accumulators cover.
	Ticks int64
}

// NewPhaseStats creates accumulators for the given shard names and
// worker count.
func NewPhaseStats(shardNames []string, workers int) *PhaseStats {
	if workers < 1 {
		workers = 1
	}
	p := &PhaseStats{
		Shards:  make([]ShardPhase, len(shardNames)),
		Barrier: make([]stats.Digest, workers),
	}
	for i, n := range shardNames {
		p.Shards[i].Name = n
	}
	return p
}

// AddCompute folds d into shard i's compute time.
func (p *PhaseStats) AddCompute(i int, d time.Duration) {
	if p == nil {
		return
	}
	p.Shards[i].ComputeNS += int64(d)
}

// AddCommit folds d into shard i's commit time.
func (p *PhaseStats) AddCommit(i int, d time.Duration) {
	if p == nil {
		return
	}
	p.Shards[i].CommitNS += int64(d)
}

// AddBarrierWait records one barrier wait for worker w.
func (p *PhaseStats) AddBarrierWait(w int, d time.Duration) {
	if p == nil {
		return
	}
	p.Barrier[w].Add(float64(d))
}

// AddTicks advances the covered-tick count (worker 0 only).
func (p *PhaseStats) AddTicks(n int64) {
	if p == nil {
		return
	}
	p.Ticks += n
}

// TotalComputeNS returns the summed compute time across shards.
func (p *PhaseStats) TotalComputeNS() int64 {
	if p == nil {
		return 0
	}
	var t int64
	for i := range p.Shards {
		t += p.Shards[i].ComputeNS
	}
	return t
}

// TotalCommitNS returns the summed commit time across shards.
func (p *PhaseStats) TotalCommitNS() int64 {
	if p == nil {
		return 0
	}
	var t int64
	for i := range p.Shards {
		t += p.Shards[i].CommitNS
	}
	return t
}

// String renders a human-readable per-shard and per-worker summary,
// one line per shard and one per worker.
func (p *PhaseStats) String() string {
	if p == nil {
		return "phase stats disabled"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "phase stats over %d ticks\n", p.Ticks)
	for i := range p.Shards {
		s := &p.Shards[i]
		fmt.Fprintf(&b, "  shard %-12s compute %10s  commit %10s\n",
			s.Name, time.Duration(s.ComputeNS), time.Duration(s.CommitNS))
	}
	for w := range p.Barrier {
		d := &p.Barrier[w]
		fmt.Fprintf(&b, "  worker %d barrier waits: n=%d mean=%s p95=%s max=%s\n",
			w, d.Count(),
			time.Duration(d.Mean()), time.Duration(d.Quantile(0.95)),
			time.Duration(d.Max()))
	}
	return b.String()
}
