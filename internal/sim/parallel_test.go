package sim

import (
	"testing"
)

// tickShard is a minimal Shard whose phases each bump a counter, so
// the tests below isolate the engine's dispatch and barrier cost from
// any model work.
type tickShard struct{ computes, commits int64 }

func (s *tickShard) Compute(now int64) { s.computes++ }
func (s *tickShard) CommitPhase(phase int, now int64) int {
	s.commits++
	return 1
}

// parallelEngine builds an engine with nShards trivial shards on
// workers workers and phases commit phases.
func parallelEngine(workers, nShards, phases int) (*Engine, []*tickShard) {
	var e Engine
	shards := make([]*tickShard, nShards)
	plan := &ParallelPlan{Workers: workers, CommitPhases: phases}
	for i := range shards {
		shards[i] = &tickShard{}
		plan.Shards = append(plan.Shards, shards[i])
	}
	e.SetParallel(plan)
	return &e, shards
}

func TestSetParallelDegeneratePlansStaySerial(t *testing.T) {
	cases := []struct {
		name string
		plan *ParallelPlan
	}{
		{"nil plan", nil},
		{"one worker", &ParallelPlan{Workers: 1, Shards: make([]Shard, 4)}},
		{"one shard", &ParallelPlan{Workers: 4, Shards: make([]Shard, 1)}},
	}
	for _, tc := range cases {
		var e Engine
		e.SetParallel(tc.plan)
		if e.Parallel() {
			t.Errorf("%s: engine went parallel", tc.name)
		}
	}
}

func TestParallelClampsWorkersToShards(t *testing.T) {
	e, _ := parallelEngine(16, 3, 1)
	defer e.CloseWorkers()
	if got := e.plan.Workers; got != 3 {
		t.Fatalf("Workers = %d after clamp; want 3", got)
	}
}

func TestParallelRunsEveryShardEveryPhase(t *testing.T) {
	const ticks, phases = 100, 3
	e, shards := parallelEngine(2, 4, phases)
	defer e.CloseWorkers()
	if err := e.Run(ticks); err != nil {
		t.Fatal(err)
	}
	for i, s := range shards {
		if s.computes != ticks {
			t.Errorf("shard %d: %d computes, want %d", i, s.computes, ticks)
		}
		if s.commits != ticks*phases {
			t.Errorf("shard %d: %d commits, want %d", i, s.commits, ticks*phases)
		}
	}
	if e.Now() != ticks {
		t.Errorf("Now = %d, want %d", e.Now(), ticks)
	}
}

// TestSerialStepAllocationFree pins the serial hot tick path at zero
// allocations: Step is called hundreds of millions of times per run,
// and any per-tick allocation would dominate the profile.
func TestSerialStepAllocationFree(t *testing.T) {
	var e Engine
	for i := 0; i < 64; i++ {
		e.Register(&componentFunc{}, 1)
	}
	e.Step() // let Register's group building settle
	if avg := testing.AllocsPerRun(200, e.Step); avg != 0 {
		t.Fatalf("serial Step allocates %.2f objects/tick; want 0", avg)
	}
}

// TestParallelRunAllocationBound pins the parallel hot tick path:
// after the worker gang exists, a Run's allocations are per-dispatch
// (the gang body closure), not per-tick. The bound is deliberately
// loose — 0.1 objects per tick amortized — because the race detector
// and the runtime's own bookkeeping add noise; the failure mode being
// guarded is an accidental per-tick allocation (1.0+ per tick).
func TestParallelRunAllocationBound(t *testing.T) {
	const ticks = 500
	e, _ := parallelEngine(4, 8, 2)
	defer e.CloseWorkers()
	if err := e.Run(ticks); err != nil { // warm up: create the gang
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(5, func() {
		if err := e.Run(ticks); err != nil {
			t.Fatal(err)
		}
	})
	if perTick := avg / ticks; perTick > 0.1 {
		t.Fatalf("parallel Run allocates %.3f objects/tick amortized; want <= 0.1", perTick)
	}
}

// panicShard panics in the requested phase on the requested tick.
type panicShard struct {
	tickShard
	at int64
}

func (s *panicShard) CommitPhase(phase int, now int64) int {
	if now == s.at {
		panic("panicShard: boom")
	}
	return s.tickShard.CommitPhase(phase, now)
}

// TestParallelPanicReachesCaller pins the panic contract: a panic on
// any worker winds the gang down and re-raises on the caller's
// goroutine, where core's usual recovery path expects it.
func TestParallelPanicReachesCaller(t *testing.T) {
	var e Engine
	plan := &ParallelPlan{Workers: 2, CommitPhases: 1}
	plan.Shards = append(plan.Shards, &panicShard{at: 10}, &tickShard{})
	e.SetParallel(plan)
	defer e.CloseWorkers()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
	}()
	_ = e.Run(100)
	t.Fatal("Run returned normally past a panicking shard")
}
