package sim

// Stall forensics: when the watchdog trips, a bare "no progress"
// error tells an operator nothing about *why* 20000 cycles passed
// without a flit moving. The Diagnose hook lets the network model
// contribute a structured snapshot — buffer occupancy, a wait-for
// graph over blocked senders with cycle detection, the oldest stuck
// packets, any active injected faults — which Run wraps into the
// returned StallError. errors.Is(err, ErrStalled) keeps working
// through Unwrap, so existing stall handling is unchanged.

import (
	"fmt"
	"sort"
	"strings"
)

// BufferStat is one node's buffer occupancy at stall time.
type BufferStat struct {
	// Node names the buffer's owner (a station, queue or router port).
	Node string
	// Flits is the occupancy; Capacity the bound.
	Flits, Capacity int
}

// WaitEdge is one blocked dependency: From cannot make progress until
// To does. A self-edge (From == To) marks an externally imposed block
// such as a faulted link.
type WaitEdge struct {
	From, To string
	// Why states the blocking condition ("transit buffer full",
	// "exit queue full", "output link faulted", ...).
	Why string
}

// StuckPacket describes one of the oldest packets caught in the stall.
type StuckPacket struct {
	ID       uint64
	Type     string
	Src, Dst int
	// AgeTicks is how long ago the originating transaction was issued.
	AgeTicks int64
	// Where names the buffer holding (part of) the packet.
	Where string
}

// StallReport is the structured forensic snapshot a model builds when
// the watchdog trips (see Engine.Diagnose).
type StallReport struct {
	// Tick is when the watchdog gave up (filled in by the engine).
	Tick int64
	// BufferedFlits is the total in-flight load at stall time.
	BufferedFlits int
	// Buffers lists non-empty buffers, in the model's node order.
	Buffers []BufferStat
	// WaitFor is the blocked-dependency graph among named nodes.
	WaitFor []WaitEdge
	// Cycles are the wait-for cycles found in WaitFor (each a node
	// sequence; a one-element cycle is a self-block such as a faulted
	// link). A true routing deadlock shows at least one.
	Cycles [][]string
	// Oldest lists the longest-stuck packets, oldest first.
	Oldest []StuckPacket
	// ActiveFaults describes injected faults active at stall time.
	ActiveFaults []string
}

// Summary renders a compact human-readable report (what cmd/ringmesh
// prints to stderr on a stall).
func (r *StallReport) Summary() string {
	if r == nil {
		return "no stall report"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "stall at tick %d: %d flits buffered across %d nodes, %d blocked edges, %d wait-for cycles",
		r.Tick, r.BufferedFlits, len(r.Buffers), len(r.WaitFor), len(r.Cycles))
	for i, cyc := range r.Cycles {
		if i == 2 {
			fmt.Fprintf(&b, "\n  ... %d more cycles", len(r.Cycles)-2)
			break
		}
		fmt.Fprintf(&b, "\n  cycle: %s -> %s", strings.Join(cyc, " -> "), cyc[0])
	}
	for i, p := range r.Oldest {
		if i == 3 {
			break
		}
		fmt.Fprintf(&b, "\n  stuck: #%d %s %d->%d, issued %d ticks ago, at %s",
			p.ID, p.Type, p.Src, p.Dst, p.AgeTicks, p.Where)
	}
	for _, f := range r.ActiveFaults {
		fmt.Fprintf(&b, "\n  fault: %s", f)
	}
	return b.String()
}

// StallError is the watchdog error carrying the forensic snapshot. It
// unwraps to ErrStalled, so errors.Is(err, ErrStalled) matches.
type StallError struct {
	Tick   int64
	Report *StallReport
}

// Error summarizes the stall in one line; the full report is in
// Report (see StallReport.Summary).
func (e *StallError) Error() string {
	if e.Report == nil {
		return fmt.Sprintf("sim: no progress (deadlock or livelock) at tick %d", e.Tick)
	}
	return fmt.Sprintf("sim: no progress (deadlock or livelock) at tick %d (%d flits buffered, %d wait-for cycles)",
		e.Tick, e.Report.BufferedFlits, len(e.Report.Cycles))
}

// Unwrap makes errors.Is(err, ErrStalled) hold.
func (e *StallError) Unwrap() error { return ErrStalled }

// DetectCycles finds elementary cycles in the wait-for graph by DFS
// (bounded at 8 distinct cycles — enough to name the deadlock without
// enumerating a dense graph's exponential cycle space). Deterministic:
// nodes are visited in first-appearance order of the edge list.
func DetectCycles(edges []WaitEdge) [][]string {
	const limit = 8
	adj := map[string][]string{}
	var nodes []string
	seenNode := map[string]bool{}
	addNode := func(n string) {
		if !seenNode[n] {
			seenNode[n] = true
			nodes = append(nodes, n)
		}
	}
	for _, e := range edges {
		addNode(e.From)
		addNode(e.To)
		adj[e.From] = append(adj[e.From], e.To)
	}

	var cycles [][]string
	seenCycle := map[string]bool{}
	state := map[string]int{} // 0 = unvisited, 1 = on stack, 2 = done
	var stack []string
	var dfs func(n string)
	dfs = func(n string) {
		state[n] = 1
		stack = append(stack, n)
		for _, m := range adj[n] {
			if len(cycles) >= limit {
				break
			}
			switch state[m] {
			case 0:
				dfs(m)
			case 1:
				i := len(stack) - 1
				for i >= 0 && stack[i] != m {
					i--
				}
				cyc := append([]string(nil), stack[i:]...)
				if key := canonicalCycle(cyc); !seenCycle[key] {
					seenCycle[key] = true
					cycles = append(cycles, cyc)
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[n] = 2
	}
	for _, n := range nodes {
		if state[n] == 0 && len(cycles) < limit {
			dfs(n)
		}
	}
	return cycles
}

// canonicalCycle keys a cycle independent of its rotation so the same
// loop reached from two entry points is reported once.
func canonicalCycle(cyc []string) string {
	best := 0
	for i := 1; i < len(cyc); i++ {
		if cyc[i] < cyc[best] {
			best = i
		}
	}
	rotated := make([]string, 0, len(cyc))
	rotated = append(rotated, cyc[best:]...)
	rotated = append(rotated, cyc[:best]...)
	return strings.Join(rotated, "\x00")
}

// SortOldest orders stuck packets oldest-first and truncates to n
// (a helper for model report builders).
func SortOldest(pkts []StuckPacket, n int) []StuckPacket {
	sort.SliceStable(pkts, func(i, j int) bool { return pkts[i].AgeTicks > pkts[j].AgeTicks })
	if len(pkts) > n {
		pkts = pkts[:n]
	}
	return pkts
}
