package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestDetectCyclesFindsLoop(t *testing.T) {
	edges := []WaitEdge{
		{From: "a", To: "b", Why: "full"},
		{From: "b", To: "c", Why: "full"},
		{From: "c", To: "a", Why: "full"},
		{From: "x", To: "a", Why: "full"}, // feeder, not part of a cycle
	}
	cycles := DetectCycles(edges)
	if len(cycles) != 1 {
		t.Fatalf("cycles = %v, want exactly one", cycles)
	}
	if !reflect.DeepEqual(cycles[0], []string{"a", "b", "c"}) {
		t.Fatalf("cycle = %v, want [a b c]", cycles[0])
	}
}

func TestDetectCyclesSelfLoop(t *testing.T) {
	cycles := DetectCycles([]WaitEdge{{From: "n", To: "n", Why: "link faulted"}})
	if len(cycles) != 1 || len(cycles[0]) != 1 || cycles[0][0] != "n" {
		t.Fatalf("self-loop cycles = %v", cycles)
	}
}

func TestDetectCyclesAcyclic(t *testing.T) {
	edges := []WaitEdge{
		{From: "a", To: "b"}, {From: "b", To: "c"}, {From: "a", To: "c"},
	}
	if cycles := DetectCycles(edges); len(cycles) != 0 {
		t.Fatalf("acyclic graph reported cycles %v", cycles)
	}
	if cycles := DetectCycles(nil); len(cycles) != 0 {
		t.Fatalf("empty graph reported cycles %v", cycles)
	}
}

func TestDetectCyclesDedupsRotations(t *testing.T) {
	// The same physical loop reachable from two feeders must be
	// reported once, regardless of where the DFS enters it.
	edges := []WaitEdge{
		{From: "f1", To: "b"},
		{From: "f2", To: "c"},
		{From: "b", To: "c"},
		{From: "c", To: "b"},
	}
	cycles := DetectCycles(edges)
	if len(cycles) != 1 {
		t.Fatalf("cycles = %v, want the b<->c loop once", cycles)
	}
}

func TestStallErrorUnwrapsToErrStalled(t *testing.T) {
	err := error(&StallError{Tick: 42, Report: &StallReport{BufferedFlits: 7}})
	if !errors.Is(err, ErrStalled) {
		t.Fatal("StallError does not unwrap to ErrStalled")
	}
	var se *StallError
	if !errors.As(err, &se) || se.Report.BufferedFlits != 7 {
		t.Fatal("errors.As lost the report")
	}
	if !strings.Contains(err.Error(), "tick 42") {
		t.Fatalf("error %q does not name the tick", err)
	}
}

// stuckComponent makes progress for a while, then freezes with load
// still reported in flight.
type stuckComponent struct {
	engine *Engine
	until  int64
}

func (c *stuckComponent) Compute(now int64) {}
func (c *stuckComponent) Commit(now int64) {
	if now < c.until {
		c.engine.Progress()
	}
}

func TestWatchdogReturnsStallErrorWithDiagnosis(t *testing.T) {
	e := &Engine{WatchdogTicks: 10}
	e.Register(&stuckComponent{engine: e, until: 5}, 1)
	called := 0
	e.Diagnose = func() *StallReport {
		called++
		return &StallReport{
			BufferedFlits: 3,
			WaitFor:       []WaitEdge{{From: "a", To: "a", Why: "test"}},
			Cycles:        [][]string{{"a"}},
		}
	}
	err := e.Run(100)
	if err == nil {
		t.Fatal("expected a stall")
	}
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("stall error %v does not match ErrStalled", err)
	}
	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("stall error %T is not a *StallError", err)
	}
	if se.Report == nil || se.Report.Tick != se.Tick || se.Report.Tick == 0 {
		t.Fatalf("report tick not stamped: %+v", se)
	}
	if called != 1 {
		t.Fatalf("Diagnose called %d times", called)
	}
	if !strings.Contains(se.Report.Summary(), "cycle: a") {
		t.Fatalf("summary %q misses the cycle", se.Report.Summary())
	}
}

func TestDiagnosePanicFallsBackToBareError(t *testing.T) {
	e := &Engine{WatchdogTicks: 10}
	e.Register(&stuckComponent{engine: e, until: 5}, 1)
	e.Diagnose = func() *StallReport { panic("forensics over inconsistent state") }
	err := e.Run(100)
	if err == nil || !errors.Is(err, ErrStalled) {
		t.Fatalf("want bare ErrStalled after diagnose panic, got %v", err)
	}
	var se *StallError
	if errors.As(err, &se) {
		t.Fatalf("panicking diagnose still produced a StallError: %v", err)
	}
}

func TestSortOldest(t *testing.T) {
	pkts := []StuckPacket{
		{ID: 1, AgeTicks: 10},
		{ID: 2, AgeTicks: 300},
		{ID: 3, AgeTicks: 50},
	}
	got := SortOldest(pkts, 2)
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 3 {
		t.Fatalf("SortOldest = %+v", got)
	}
}

func TestSummaryNilSafe(t *testing.T) {
	var r *StallReport
	if r.Summary() == "" {
		t.Fatal("nil report summary empty")
	}
}
