package sim

import (
	"errors"
	"testing"
)

// recorder logs the ticks at which it computes/commits.
type recorder struct {
	engine   *Engine
	computes []int64
	commits  []int64
	moves    bool
}

func (r *recorder) Compute(now int64) { r.computes = append(r.computes, now) }
func (r *recorder) Commit(now int64) {
	r.commits = append(r.commits, now)
	if r.moves {
		r.engine.Progress()
	}
}

func TestStepOrdering(t *testing.T) {
	var e Engine
	a := &recorder{engine: &e}
	b := &recorder{engine: &e}
	e.Register(a, 1)
	e.Register(b, 1)
	e.Step()
	e.Step()
	if len(a.computes) != 2 || len(b.commits) != 2 {
		t.Fatalf("components not stepped: %v %v", a.computes, b.commits)
	}
	if a.computes[0] != 0 || a.computes[1] != 1 {
		t.Fatalf("compute ticks = %v", a.computes)
	}
	if e.Now() != 2 {
		t.Fatalf("Now = %d", e.Now())
	}
}

// phaseChecker asserts that all Computes of a tick happen before any
// Commit of that tick by recording the last tick each phase ran.
type phaseChecker struct {
	t       *testing.T
	shared  *map[int64]int // tick -> number of computes seen
	total   int
	commits int
}

func (p *phaseChecker) Compute(now int64) { (*p.shared)[now]++ }
func (p *phaseChecker) Commit(now int64) {
	if (*p.shared)[now] != p.total {
		p.t.Fatalf("commit at tick %d saw only %d/%d computes",
			now, (*p.shared)[now], p.total)
	}
	p.commits++
}

func TestTwoPhaseDiscipline(t *testing.T) {
	var e Engine
	seen := map[int64]int{}
	a := &phaseChecker{t: t, shared: &seen, total: 2}
	b := &phaseChecker{t: t, shared: &seen, total: 2}
	e.Register(a, 1)
	e.Register(b, 1)
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if a.commits != 5 || b.commits != 5 {
		t.Fatalf("commits = %d/%d", a.commits, b.commits)
	}
}

func TestClockDividers(t *testing.T) {
	var e Engine
	fast := &recorder{engine: &e}
	slow := &recorder{engine: &e}
	e.Register(fast, 1)
	e.Register(slow, 2)
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if len(fast.computes) != 10 {
		t.Fatalf("fast computed %d times", len(fast.computes))
	}
	if len(slow.computes) != 5 {
		t.Fatalf("slow computed %d times, want 5", len(slow.computes))
	}
	for _, tick := range slow.computes {
		if tick%2 != 0 {
			t.Fatalf("slow component ran at odd tick %d", tick)
		}
	}
}

func TestRegisterBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("period 0 accepted")
		}
	}()
	var e Engine
	e.Register(&recorder{engine: &e}, 0)
}

func TestWatchdogTrips(t *testing.T) {
	var e Engine
	stuck := &recorder{engine: &e, moves: false}
	e.Register(stuck, 1)
	e.WatchdogTicks = 10
	e.InFlight = func() bool { return true }
	err := e.Run(100)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("watchdog did not trip: %v", err)
	}
}

func TestWatchdogQuietWhenIdle(t *testing.T) {
	var e Engine
	idle := &recorder{engine: &e, moves: false}
	e.Register(idle, 1)
	e.WatchdogTicks = 10
	e.InFlight = func() bool { return false }
	if err := e.Run(100); err != nil {
		t.Fatalf("watchdog tripped on idle system: %v", err)
	}
}

func TestWatchdogQuietWhenProgressing(t *testing.T) {
	var e Engine
	busy := &recorder{engine: &e, moves: true}
	e.Register(busy, 1)
	e.WatchdogTicks = 5
	e.InFlight = func() bool { return true }
	if err := e.Run(100); err != nil {
		t.Fatalf("watchdog tripped on progressing system: %v", err)
	}
}

func TestWatchdogDisabled(t *testing.T) {
	var e Engine
	stuck := &recorder{engine: &e, moves: false}
	e.Register(stuck, 1)
	e.InFlight = func() bool { return true }
	if err := e.Run(1000); err != nil {
		t.Fatalf("disabled watchdog returned error: %v", err)
	}
}

func TestRunAdvancesExactly(t *testing.T) {
	var e Engine
	r := &recorder{engine: &e, moves: true}
	e.Register(r, 1)
	if err := e.Run(7); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 7 || len(r.commits) != 7 {
		t.Fatalf("Now=%d commits=%d", e.Now(), len(r.commits))
	}
}
