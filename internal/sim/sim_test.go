package sim

import (
	"errors"
	"testing"
)

// recorder logs the ticks at which it computes/commits.
type recorder struct {
	engine   *Engine
	computes []int64
	commits  []int64
	moves    bool
}

func (r *recorder) Compute(now int64) { r.computes = append(r.computes, now) }
func (r *recorder) Commit(now int64) {
	r.commits = append(r.commits, now)
	if r.moves {
		r.engine.Progress()
	}
}

func TestStepOrdering(t *testing.T) {
	var e Engine
	a := &recorder{engine: &e}
	b := &recorder{engine: &e}
	e.Register(a, 1)
	e.Register(b, 1)
	e.Step()
	e.Step()
	if len(a.computes) != 2 || len(b.commits) != 2 {
		t.Fatalf("components not stepped: %v %v", a.computes, b.commits)
	}
	if a.computes[0] != 0 || a.computes[1] != 1 {
		t.Fatalf("compute ticks = %v", a.computes)
	}
	if e.Now() != 2 {
		t.Fatalf("Now = %d", e.Now())
	}
}

// phaseChecker asserts that all Computes of a tick happen before any
// Commit of that tick by recording the last tick each phase ran.
type phaseChecker struct {
	t       *testing.T
	shared  *map[int64]int // tick -> number of computes seen
	total   int
	commits int
}

func (p *phaseChecker) Compute(now int64) { (*p.shared)[now]++ }
func (p *phaseChecker) Commit(now int64) {
	if (*p.shared)[now] != p.total {
		p.t.Fatalf("commit at tick %d saw only %d/%d computes",
			now, (*p.shared)[now], p.total)
	}
	p.commits++
}

func TestTwoPhaseDiscipline(t *testing.T) {
	var e Engine
	seen := map[int64]int{}
	a := &phaseChecker{t: t, shared: &seen, total: 2}
	b := &phaseChecker{t: t, shared: &seen, total: 2}
	e.Register(a, 1)
	e.Register(b, 1)
	for i := 0; i < 5; i++ {
		e.Step()
	}
	if a.commits != 5 || b.commits != 5 {
		t.Fatalf("commits = %d/%d", a.commits, b.commits)
	}
}

func TestClockDividers(t *testing.T) {
	var e Engine
	fast := &recorder{engine: &e}
	slow := &recorder{engine: &e}
	e.Register(fast, 1)
	e.Register(slow, 2)
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if len(fast.computes) != 10 {
		t.Fatalf("fast computed %d times", len(fast.computes))
	}
	if len(slow.computes) != 5 {
		t.Fatalf("slow computed %d times, want 5", len(slow.computes))
	}
	for _, tick := range slow.computes {
		if tick%2 != 0 {
			t.Fatalf("slow component ran at odd tick %d", tick)
		}
	}
}

func TestRegisterBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("period 0 accepted")
		}
	}()
	var e Engine
	e.Register(&recorder{engine: &e}, 0)
}

func TestWatchdogTrips(t *testing.T) {
	var e Engine
	stuck := &recorder{engine: &e, moves: false}
	e.Register(stuck, 1)
	e.WatchdogTicks = 10
	e.InFlight = func() bool { return true }
	err := e.Run(100)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("watchdog did not trip: %v", err)
	}
}

func TestWatchdogQuietWhenIdle(t *testing.T) {
	var e Engine
	idle := &recorder{engine: &e, moves: false}
	e.Register(idle, 1)
	e.WatchdogTicks = 10
	e.InFlight = func() bool { return false }
	if err := e.Run(100); err != nil {
		t.Fatalf("watchdog tripped on idle system: %v", err)
	}
}

func TestWatchdogQuietWhenProgressing(t *testing.T) {
	var e Engine
	busy := &recorder{engine: &e, moves: true}
	e.Register(busy, 1)
	e.WatchdogTicks = 5
	e.InFlight = func() bool { return true }
	if err := e.Run(100); err != nil {
		t.Fatalf("watchdog tripped on progressing system: %v", err)
	}
}

func TestWatchdogDisabled(t *testing.T) {
	var e Engine
	stuck := &recorder{engine: &e, moves: false}
	e.Register(stuck, 1)
	e.InFlight = func() bool { return true }
	if err := e.Run(1000); err != nil {
		t.Fatalf("disabled watchdog returned error: %v", err)
	}
}

func TestRunAdvancesExactly(t *testing.T) {
	var e Engine
	r := &recorder{engine: &e, moves: true}
	e.Register(r, 1)
	if err := e.Run(7); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 7 || len(r.commits) != 7 {
		t.Fatalf("Now=%d commits=%d", e.Now(), len(r.commits))
	}
}

func TestMixedPeriodGrouping(t *testing.T) {
	var e Engine
	fast := &recorder{engine: &e}
	slow := &recorder{engine: &e}
	third := &recorder{engine: &e}
	e.Register(fast, 1)
	e.Register(slow, 2)
	e.Register(third, 3)
	for i := 0; i < 12; i++ {
		e.Step()
	}
	if len(fast.computes) != 12 || len(slow.computes) != 6 || len(third.computes) != 4 {
		t.Fatalf("computes = %d/%d/%d, want 12/6/4",
			len(fast.computes), len(slow.computes), len(third.computes))
	}
	for _, tick := range third.computes {
		if tick%3 != 0 {
			t.Fatalf("period-3 component ran at tick %d", tick)
		}
	}
}

func TestProgressN(t *testing.T) {
	var e Engine
	e.ProgressN(3)
	e.Progress()
	e.ProgressN(2)
	if e.progress != 6 {
		t.Fatalf("progress = %d, want 6", e.progress)
	}
}

func TestWatchdogQuietWithBatchedProgress(t *testing.T) {
	var e Engine
	c := &recorder{engine: &e}
	e.Register(c, 1)
	e.WatchdogTicks = 5
	e.InFlight = func() bool { return true }
	// Report progress in batches rather than via Progress(): the
	// watchdog must count it the same way.
	e.OnCycle = func(now int64, moved uint64) {}
	done := 0
	batched := componentFunc{commit: func(now int64) { e.ProgressN(4); done++ }}
	e.Register(&batched, 1)
	if err := e.Run(100); err != nil {
		t.Fatalf("watchdog tripped despite batched progress: %v", err)
	}
	if done != 100 {
		t.Fatalf("batched component committed %d times", done)
	}
}

// componentFunc adapts closures to Component for tests.
type componentFunc struct {
	compute func(now int64)
	commit  func(now int64)
}

func (c *componentFunc) Compute(now int64) {
	if c.compute != nil {
		c.compute(now)
	}
}
func (c *componentFunc) Commit(now int64) {
	if c.commit != nil {
		c.commit(now)
	}
}

func TestOnCycleHook(t *testing.T) {
	var e Engine
	moves := 0
	mover := &componentFunc{commit: func(now int64) {
		if now%2 == 0 {
			e.ProgressN(3)
			moves += 3
		}
	}}
	e.Register(mover, 1)
	var ticks []int64
	var moved []uint64
	e.OnCycle = func(now int64, m uint64) {
		ticks = append(ticks, now)
		moved = append(moved, m)
	}
	for i := 0; i < 4; i++ {
		e.Step()
	}
	if len(ticks) != 4 || ticks[0] != 0 || ticks[3] != 3 {
		t.Fatalf("OnCycle ticks = %v", ticks)
	}
	want := []uint64{3, 0, 3, 0}
	for i := range want {
		if moved[i] != want[i] {
			t.Fatalf("OnCycle moved = %v, want %v", moved, want)
		}
	}
	if moves != 6 {
		t.Fatalf("moves = %d", moves)
	}
}

// TestUniformFastPathEquivalence runs the same component set through a
// uniform engine and a mixed engine whose extra component has period 1
// forced through the grouped path, checking the schedules agree.
func TestUniformFastPathEquivalence(t *testing.T) {
	run := func(forceMixed bool) []int64 {
		var e Engine
		r := &recorder{engine: &e}
		e.Register(r, 1)
		if forceMixed {
			// A period-2 bystander pushes the engine onto the grouped
			// path without touching r's schedule.
			e.Register(&componentFunc{}, 2)
		}
		for i := 0; i < 6; i++ {
			e.Step()
		}
		return r.computes
	}
	fast, grouped := run(false), run(true)
	if len(fast) != len(grouped) {
		t.Fatalf("schedules diverge: %v vs %v", fast, grouped)
	}
	for i := range fast {
		if fast[i] != grouped[i] {
			t.Fatalf("schedules diverge at %d: %v vs %v", i, fast, grouped)
		}
	}
}

// TestOnCycleFiresWhileStalled checks that the observability hook
// keeps firing on ticks with zero movement, up to and including the
// tick where the watchdog trips: a stall is exactly when you want the
// metrics sampler to still be recording.
func TestOnCycleFiresWhileStalled(t *testing.T) {
	var e Engine
	mover := &componentFunc{commit: func(now int64) {
		if now < 3 {
			e.Progress()
		}
	}}
	e.Register(mover, 1)
	e.WatchdogTicks = 4
	e.InFlight = func() bool { return true } // packets "stuck" in flight
	var ticks []int64
	var moved []uint64
	e.OnCycle = func(now int64, m uint64) {
		ticks = append(ticks, now)
		moved = append(moved, m)
	}
	err := e.Run(100)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	// Moves at ticks 0..2, then WatchdogTicks stalled ticks (3..6)
	// until the trip after the Step completing tick 6 (lastMoveTick=2,
	// trip when now-2 > 4).
	if len(ticks) == 0 {
		t.Fatal("OnCycle never fired")
	}
	last := len(ticks) - 1
	if moved[last] != 0 {
		t.Fatalf("final tick %d moved %d flits, want 0 (stalled)", ticks[last], moved[last])
	}
	stalledTicks := 0
	for i, m := range moved {
		if ticks[i] != int64(i) {
			t.Fatalf("hook skipped a tick: ticks=%v", ticks)
		}
		if m == 0 {
			stalledTicks++
		}
	}
	if stalledTicks != int(e.WatchdogTicks) {
		t.Fatalf("hook saw %d zero-movement ticks, want %d (ticks=%v moved=%v)",
			stalledTicks, e.WatchdogTicks, ticks, moved)
	}
}
