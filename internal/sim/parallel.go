// Parallel tick execution: the engine's Workers mode.
//
// The serial engine already has the structure that makes parallel
// execution deterministic — every tick is a Compute phase that reads
// only start-of-tick state, then a Commit phase that applies staged
// decisions. The parallel mode adds one requirement: *ownership*. A
// model is cut into shards such that no two shards commit to the same
// buffers; each shard's Compute and Commit then run on a worker
// goroutine, with a barrier between phases. Writes that would cross a
// shard boundary (a flit pushed into a queue another shard owns) are
// not performed in the owning commit phase — the model stages them in
// a per-shard outbox and applies them in a later commit phase, again
// separated by a barrier, so no buffer is ever touched by two workers
// without an intervening synchronization. Because every decision was
// staged from frozen start-of-tick state, deferring a push never
// changes what any component observed, and the end-of-tick state is
// bit-identical to the serial schedule.
//
// All order-sensitive work — fault injection, statistics that use
// order-dependent floating-point accumulation, the progress watchdog,
// the per-cycle hook — runs in serial sections on worker 0 (the
// Prologue before Compute and the engine epilogue after the last
// commit phase), so a parallel run reproduces the serial run's
// arithmetic exactly, not just its final buffer states.
package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ringmesh/internal/obs"
	"ringmesh/internal/pool"
)

// Shard is one ownership partition of a parallel model: a group of
// components that commit only to buffers this shard owns. The engine
// runs shards concurrently, so a Shard's methods must touch foreign
// state only as the phase discipline allows: Compute may read anything
// (all state is frozen during the compute phase) but write only shard-
// local state; CommitPhase may write only shard-owned buffers.
type Shard interface {
	// Compute stages the shard's transfer decisions for this tick from
	// start-of-tick state.
	Compute(now int64)
	// CommitPhase applies the shard's staged transfers for one commit
	// phase and reports the number of progress events (flit movements)
	// — the per-shard replacement for Engine.Progress/ProgressN, which
	// must not be called from inside a shard. Phases are globally
	// barrier-separated: phase p+1 starts only after every shard
	// finished phase p.
	CommitPhase(phase int, now int64) int
}

// PartitionShard describes one shard of a model's Partition: the
// engine-facing Shard plus the half-open range [PMLo, PMHi) of
// processing-module ids whose state the shard owns (PMLo == PMHi for
// shards that own none, e.g. a hierarchy's internal rings).
type PartitionShard struct {
	Name       string
	PMLo, PMHi int
	Comp       Shard
}

// Partition is a model's description of its ownership sharding, the
// payload of the network layer's Partitioner capability. The PM ranges
// of all shards must tile [0, nPMs) without overlap.
type Partition struct {
	// Shards lists the ownership shards. Within a shard, components
	// commit in their serial order; across shards the engine imposes no
	// order, which is sound exactly because shards share no buffers.
	Shards []PartitionShard
	// CommitPhases is how many barrier-separated commit phases the
	// model needs (at least 1). Extra phases serialize cross-shard
	// hand-offs: deferred outbox pushes, or level-ordered commits in a
	// hierarchy.
	CommitPhases int
	// DeliverOrder lists every PM id in the order in which same-tick
	// packet completions are observed by the serial engine. The
	// measurement layer drains per-PM completion staging in this order,
	// reproducing the serial path's order-dependent accumulator
	// arithmetic bit for bit.
	DeliverOrder []int
	// Prologue, when non-nil, runs serially on worker 0 before each
	// tick's Compute phase (fault injection steps here: the fault
	// driver is a serial cursor walk the shards must not race on).
	Prologue func(now int64)
}

// ParallelPlan is the engine-level execution plan assembled from a
// model's Partition (the core layer wraps PM ownership and the
// measurement epilogue around the model's shards).
type ParallelPlan struct {
	// Workers is the goroutine count; it is clamped to the shard count.
	Workers int
	// Shards run concurrently, block-partitioned over the workers.
	Shards []Shard
	// ShardNames labels the shards for phase-timing reports (parallel
	// to Shards; optional — unnamed shards report by index).
	ShardNames []string
	// CommitPhases is the number of barrier-separated commit phases.
	CommitPhases int
	// Prologue, when non-nil, runs serially on worker 0 before Compute.
	Prologue func(now int64)
	// Epilogue, when non-nil, runs serially on worker 0 after the last
	// commit phase and before the engine's own end-of-tick bookkeeping
	// (progress fold, OnCycle, watchdog). The measurement drain — the
	// order-sensitive statistics work — happens here.
	Epilogue func(now int64)
}

// SetParallel installs a parallel execution plan: subsequent Run calls
// execute the plan's shards across a worker gang instead of the
// registered components. Degenerate plans (nil, one worker, fewer than
// two shards) clear the plan, keeping the exact serial path. The
// registered components are untouched either way — a cleared plan
// falls back to them bit for bit.
func (e *Engine) SetParallel(p *ParallelPlan) {
	e.CloseWorkers()
	if p == nil || p.Workers <= 1 || len(p.Shards) <= 1 {
		e.plan = nil
		e.shardMoved = nil
		return
	}
	if p.CommitPhases < 1 {
		p.CommitPhases = 1
	}
	if p.Workers > len(p.Shards) {
		p.Workers = len(p.Shards)
	}
	e.plan = p
	e.shardMoved = make([]int64, len(p.Shards))
	e.phaseStats = nil // re-enable per plan: shard/worker counts changed
}

// EnablePhaseStats turns on per-shard phase timing for the installed
// parallel plan: each worker times its shards' Compute and CommitPhase
// calls and its own barrier waits. Strictly observation-only — the
// schedule, and therefore the simulation result, is unchanged — but
// not free (two clock reads per shard phase), so it is opt-in. No-op
// without a plan. Returns the accumulator, which is safe to read after
// Run returns.
func (e *Engine) EnablePhaseStats() *obs.PhaseStats {
	if e.plan == nil {
		return nil
	}
	names := e.plan.ShardNames
	if len(names) != len(e.plan.Shards) {
		names = make([]string, len(e.plan.Shards))
		for i := range names {
			names[i] = fmt.Sprintf("shard%d", i)
		}
	}
	e.phaseStats = obs.NewPhaseStats(names, e.plan.Workers)
	return e.phaseStats
}

// PhaseStats returns the phase-timing accumulator (nil unless
// EnablePhaseStats was called after the current plan was installed).
// Read only after Run has returned.
func (e *Engine) PhaseStats() *obs.PhaseStats { return e.phaseStats }

// Parallel reports whether a parallel plan is installed.
func (e *Engine) Parallel() bool { return e.plan != nil }

// CloseWorkers releases the engine's worker gang, if one was started.
// The gang is recreated lazily on the next parallel Run, so this is
// safe to call between runs; callers that drive many runs through one
// engine should close once at the end (core's runner does).
func (e *Engine) CloseWorkers() {
	if e.gang != nil {
		e.gang.Close()
		e.gang = nil
	}
}

// shardRange block-partitions the plan's shards over workers: worker w
// owns shards [w*n/W, (w+1)*n/W). Static assignment keeps the schedule
// deterministic and allocation-free.
func (e *Engine) shardRange(w int) (lo, hi int) {
	n := len(e.plan.Shards)
	return w * n / e.plan.Workers, (w + 1) * n / e.plan.Workers
}

// runParallel advances the simulation by ticks ticks on the worker
// gang. The whole tick loop runs inside one gang dispatch; per tick
// the workers cross 2+CommitPhases barriers:
//
//	worker 0: prologue (fault step) — or raise stop
//	barrier   ── all: Compute own shards
//	barrier   ── all: CommitPhase 0 own shards
//	barrier   ── … one barrier per commit phase …
//	worker 0: epilogue (measurement drain), progress fold, OnCycle,
//	          watchdog — then loop
//
// A panic on any worker is captured (first one wins), the gang winds
// down in lockstep, and the panic is re-raised on the caller's
// goroutine so the usual recovery path sees it unchanged.
func (e *Engine) runParallel(ticks int64) error {
	p := e.plan
	if e.gang == nil {
		e.gang = pool.NewGang(p.Workers)
	}
	end := e.now + ticks
	var (
		stop      atomic.Bool
		abort     atomic.Bool
		panicOnce sync.Once
		panicked  any
		runErr    error
	)
	seg := func(f func()) {
		defer func() {
			if r := recover(); r != nil {
				panicOnce.Do(func() { panicked = r })
				abort.Store(true)
			}
		}()
		f()
	}
	// With phase stats enabled, sync records each worker's barrier wait
	// and the shard loops bracket every phase call with clock reads.
	// The schedule is identical either way: timing is observation-only.
	ps := e.phaseStats
	sync := func(w int) {
		if ps == nil {
			e.gang.Sync()
			return
		}
		ps.AddBarrierWait(w, e.gang.SyncTimed())
	}
	e.gang.Run(func(w int) {
		lo, hi := e.shardRange(w)
		for {
			if w == 0 {
				if abort.Load() || runErr != nil || e.now >= end {
					stop.Store(true)
				} else if p.Prologue != nil {
					seg(func() { p.Prologue(e.now) })
				}
			}
			sync(w)
			if stop.Load() {
				return
			}
			now := e.now
			seg(func() {
				for i := lo; i < hi; i++ {
					if ps == nil {
						p.Shards[i].Compute(now)
					} else {
						t0 := time.Now()
						p.Shards[i].Compute(now)
						ps.AddCompute(i, time.Since(t0))
					}
				}
			})
			sync(w)
			for ph := 0; ph < p.CommitPhases; ph++ {
				seg(func() {
					for i := lo; i < hi; i++ {
						if ps == nil {
							e.shardMoved[i] += int64(p.Shards[i].CommitPhase(ph, now))
						} else {
							t0 := time.Now()
							e.shardMoved[i] += int64(p.Shards[i].CommitPhase(ph, now))
							ps.AddCommit(i, time.Since(t0))
						}
					}
				})
				sync(w)
			}
			if w == 0 && !abort.Load() {
				seg(func() { runErr = e.finishTick(now) })
			}
		}
	})
	if panicked != nil {
		panic(panicked)
	}
	return runErr
}

// finishTick is the serial end-of-tick section of the parallel loop,
// run by worker 0 while the other workers wait at the loop-head
// barrier: fold the per-shard progress counters, drain the plan's
// epilogue (order-sensitive measurement), then do exactly what the
// serial Step/Run pair does — progress bookkeeping, the tick
// increment, the per-cycle hook, and the stall watchdog.
func (e *Engine) finishTick(now int64) error {
	var moved uint64
	for i := range e.shardMoved {
		moved += uint64(e.shardMoved[i])
		e.shardMoved[i] = 0
	}
	e.progress += moved
	e.phaseStats.AddTicks(1)
	if e.plan.Epilogue != nil {
		e.plan.Epilogue(now)
	}
	if e.progress != e.lastProgress {
		e.lastProgress = e.progress
		e.lastMoveTick = now
	}
	e.now++
	if e.OnCycle != nil {
		e.OnCycle(now, moved)
	}
	if e.WatchdogTicks > 0 && e.now-e.lastMoveTick > e.WatchdogTicks {
		if e.InFlight == nil || e.InFlight() {
			if rep := e.diagnose(); rep != nil {
				rep.Tick = e.now
				return &StallError{Tick: e.now, Report: rep}
			}
			return fmt.Errorf("%w at tick %d", ErrStalled, e.now)
		}
		// Idle (no packets anywhere) is fine; reset the clock so we
		// don't re-check every tick.
		e.lastMoveTick = e.now
	}
	return nil
}
