// Package sim provides the synchronous, two-phase cycle engine that
// drives the flit-level network models.
//
// The paper's simulator works at the register-transfer level on a
// cycle-by-cycle basis: every network node moves at most one flit per
// link per clock. We reproduce that with a compute/commit discipline —
// each tick, every component first stages its transfer decisions from
// start-of-tick state (Compute), then all components apply them
// (Commit). This gives every sender a consistent, same-cycle view of
// receiver buffer occupancy (the idealized flow-control signal of the
// paper) and makes results independent of component registration
// order.
//
// Multi-rate clocking (paper Section 6, the double-speed global ring)
// is expressed with per-component periods: the engine ticks at the
// fastest clock and a component with period k acts every k-th tick.
package sim

import "fmt"

// Component is one synchronously clocked piece of the system (a
// network, a set of processing modules).
type Component interface {
	// Compute stages this tick's transfers using only start-of-tick
	// state. It must not mutate state visible to other components.
	Compute(now int64)
	// Commit applies the staged transfers.
	Commit(now int64)
}

// clocked pairs a component with its clock divider.
type clocked struct {
	c      Component
	period int64
}

// Engine runs registered components in lockstep.
type Engine struct {
	comps []clocked
	now   int64

	// progress counts flit movements (and any other forward progress)
	// reported by components; the watchdog uses it to detect
	// deadlock/livelock.
	progress     uint64
	lastProgress uint64
	lastMoveTick int64

	// WatchdogTicks is the number of consecutive tick without any
	// reported progress — while packets are known to be in flight —
	// after which Run returns ErrStalled. Zero disables the watchdog.
	WatchdogTicks int64

	// InFlight, when non-nil, reports whether any packet is currently
	// in the system; the watchdog only trips when it returns true.
	InFlight func() bool
}

// ErrStalled is returned by Run when the watchdog detects that no
// flit has moved for WatchdogTicks ticks while packets are in flight —
// the signature of a routing deadlock or a flow-control livelock.
var ErrStalled = fmt.Errorf("sim: no progress (deadlock or livelock)")

// Register adds a component with a clock period in ticks (1 = every
// tick). Registration order does not affect results thanks to the
// two-phase discipline, but it is preserved for determinism.
func (e *Engine) Register(c Component, period int64) {
	if period < 1 {
		panic("sim: period must be >= 1")
	}
	e.comps = append(e.comps, clocked{c: c, period: period})
}

// Now returns the current tick.
func (e *Engine) Now() int64 { return e.now }

// Progress is called by components whenever they move a flit (or make
// any other kind of forward progress the watchdog should count).
func (e *Engine) Progress() { e.progress++ }

// Step advances the simulation one tick.
func (e *Engine) Step() {
	for i := range e.comps {
		k := &e.comps[i]
		if e.now%k.period == 0 {
			k.c.Compute(e.now)
		}
	}
	for i := range e.comps {
		k := &e.comps[i]
		if e.now%k.period == 0 {
			k.c.Commit(e.now)
		}
	}
	if e.progress != e.lastProgress {
		e.lastProgress = e.progress
		e.lastMoveTick = e.now
	}
	e.now++
}

// Run advances the simulation by ticks ticks, checking the watchdog.
func (e *Engine) Run(ticks int64) error {
	end := e.now + ticks
	for e.now < end {
		e.Step()
		if e.WatchdogTicks > 0 && e.now-e.lastMoveTick > e.WatchdogTicks {
			if e.InFlight == nil || e.InFlight() {
				return fmt.Errorf("%w at tick %d", ErrStalled, e.now)
			}
			// Idle (no packets anywhere) is fine; reset the clock so
			// we don't re-check every tick.
			e.lastMoveTick = e.now
		}
	}
	return nil
}
