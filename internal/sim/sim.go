// Package sim provides the synchronous, two-phase cycle engine that
// drives the flit-level network models.
//
// The paper's simulator works at the register-transfer level on a
// cycle-by-cycle basis: every network node moves at most one flit per
// link per clock. We reproduce that with a compute/commit discipline —
// each tick, every component first stages its transfer decisions from
// start-of-tick state (Compute), then all components apply them
// (Commit). This gives every sender a consistent, same-cycle view of
// receiver buffer occupancy (the idealized flow-control signal of the
// paper) and makes results independent of component registration
// order.
//
// Multi-rate clocking (paper Section 6, the double-speed global ring)
// is expressed with per-component periods: the engine ticks at the
// fastest clock and a component with period k acts every k-th tick.
// Components are bucketed by period at registration time, so the hot
// loop pays one divisibility check per distinct period instead of one
// per component — and none at all on the uniform fast path (every
// period 1, which is every non-double-speed configuration).
package sim

import (
	"fmt"

	"ringmesh/internal/obs"
	"ringmesh/internal/pool"
)

// Component is one synchronously clocked piece of the system (a
// network, a set of processing modules).
//
// Concurrency contract: under the engine's parallel mode (see
// SetParallel) components are grouped into ownership shards that run
// on different goroutines. Compute may therefore read any state — the
// whole system is frozen during the compute phase — but must not
// mutate anything visible outside its own shard; Commit may mutate
// only buffers its shard owns, staging any cross-shard hand-off for a
// later, barrier-separated commit phase. The serial engine is the
// degenerate single-shard case of the same contract, which is why the
// two schedules produce bit-identical results.
type Component interface {
	// Compute stages this tick's transfers using only start-of-tick
	// state. It must not mutate state visible to other components.
	Compute(now int64)
	// Commit applies the staged transfers.
	Commit(now int64)
}

// schedule groups the components sharing one clock period. Groups are
// kept in first-seen order; within a group, registration order.
type schedule struct {
	period int64
	comps  []Component
	due    bool // staged by Step: period divides the current tick
}

// Engine runs registered components in lockstep.
type Engine struct {
	flat   []Component // every component in registration order (fast path)
	groups []schedule  // components bucketed by period (mixed-rate path)
	mixed  bool        // true once any period > 1 is registered
	now    int64

	// progress counts flit movements (and any other forward progress)
	// reported by components; the watchdog uses it to detect
	// deadlock/livelock.
	progress     uint64
	lastProgress uint64
	lastMoveTick int64

	// WatchdogTicks is the number of consecutive ticks without any
	// reported progress — while packets are known to be in flight —
	// after which Run returns ErrStalled. Zero disables the watchdog.
	WatchdogTicks int64

	// InFlight, when non-nil, reports whether any packet is currently
	// in the system; the watchdog only trips when it returns true.
	InFlight func() bool

	// OnCycle, when non-nil, is called once at the end of every tick
	// with the tick just completed and the number of progress events
	// (flit movements) reported during it. It is the engine-level
	// observability hook: per-cycle metrics (instantaneous load,
	// activity traces) attach here instead of inside the network
	// models.
	OnCycle func(now int64, moved uint64)

	// Diagnose, when non-nil, is invoked once when the watchdog trips
	// to collect a structured snapshot of the stalled system (see
	// StallReport); Run then returns a *StallError carrying it instead
	// of a bare wrapped ErrStalled. A panic inside Diagnose is
	// swallowed and the bare error returned — forensics must never
	// turn a detectable stall into a crash.
	Diagnose func() *StallReport

	// Parallel mode (see parallel.go). When plan is non-nil, Run
	// executes the plan's shards on a worker gang instead of the
	// registered components; shardMoved holds each shard's progress
	// count for the current tick, folded into progress — in shard
	// order — by worker 0 at the end-of-tick barrier.
	plan       *ParallelPlan
	gang       *pool.Gang
	shardMoved []int64

	// phaseStats, when non-nil (EnablePhaseStats), accumulates per-shard
	// compute/commit durations and per-worker barrier waits during
	// parallel runs. Observation-only; nil keeps the hot loop untimed.
	phaseStats *obs.PhaseStats
}

// ErrStalled is returned by Run when the watchdog detects that no
// flit has moved for WatchdogTicks ticks while packets are in flight —
// the signature of a routing deadlock or a flow-control livelock.
var ErrStalled = fmt.Errorf("sim: no progress (deadlock or livelock)")

// Register adds a component with a clock period in ticks (1 = every
// tick). Thanks to the two-phase discipline, results do not depend on
// registration order among components of one period; across periods
// the engine preserves first-seen group order, then registration
// order within a group.
func (e *Engine) Register(c Component, period int64) {
	if period < 1 {
		panic("sim: period must be >= 1")
	}
	e.flat = append(e.flat, c)
	if period > 1 {
		e.mixed = true
	}
	for i := range e.groups {
		if e.groups[i].period == period {
			e.groups[i].comps = append(e.groups[i].comps, c)
			return
		}
	}
	e.groups = append(e.groups, schedule{period: period, comps: []Component{c}})
}

// Now returns the current tick.
func (e *Engine) Now() int64 { return e.now }

// Progress is called by components whenever they move a flit (or make
// any other kind of forward progress the watchdog should count). It is
// serial-path API: under the parallel mode, shards report movement via
// CommitPhase's return value instead — per-shard counters the engine
// folds deterministically at the end-of-tick barrier — because a
// shared counter would race across workers.
func (e *Engine) Progress() { e.progress++ }

// ProgressN reports n progress events at once. Components that move
// many flits per commit batch their reporting through this instead of
// one Progress call per flit. Like Progress, it must not be called
// from inside a parallel shard's CommitPhase.
func (e *Engine) ProgressN(n int) { e.progress += uint64(n) }

// Step advances the simulation one tick.
func (e *Engine) Step() {
	now := e.now
	before := e.progress
	if !e.mixed {
		// Uniform fast path: every component runs every tick; no
		// divisibility checks, no group indirection.
		for _, c := range e.flat {
			c.Compute(now)
		}
		for _, c := range e.flat {
			c.Commit(now)
		}
	} else {
		for i := range e.groups {
			g := &e.groups[i]
			g.due = now%g.period == 0
			if g.due {
				for _, c := range g.comps {
					c.Compute(now)
				}
			}
		}
		for i := range e.groups {
			g := &e.groups[i]
			if g.due {
				for _, c := range g.comps {
					c.Commit(now)
				}
			}
		}
	}
	if e.progress != e.lastProgress {
		e.lastProgress = e.progress
		e.lastMoveTick = now
	}
	e.now++
	if e.OnCycle != nil {
		e.OnCycle(now, e.progress-before)
	}
}

// Run advances the simulation by ticks ticks, checking the watchdog.
// With a parallel plan installed (SetParallel) the ticks execute on
// the worker gang; otherwise the serial path below runs unchanged.
func (e *Engine) Run(ticks int64) error {
	if e.plan != nil {
		return e.runParallel(ticks)
	}
	end := e.now + ticks
	for e.now < end {
		e.Step()
		if e.WatchdogTicks > 0 && e.now-e.lastMoveTick > e.WatchdogTicks {
			if e.InFlight == nil || e.InFlight() {
				if rep := e.diagnose(); rep != nil {
					rep.Tick = e.now
					return &StallError{Tick: e.now, Report: rep}
				}
				return fmt.Errorf("%w at tick %d", ErrStalled, e.now)
			}
			// Idle (no packets anywhere) is fine; reset the clock so
			// we don't re-check every tick.
			e.lastMoveTick = e.now
		}
	}
	return nil
}

// diagnose runs the Diagnose hook with panic protection: a model whose
// forensic walker trips over the very inconsistency that caused the
// stall must still surface the stall, just without the report.
func (e *Engine) diagnose() (rep *StallReport) {
	if e.Diagnose == nil {
		return nil
	}
	defer func() {
		if recover() != nil {
			rep = nil
		}
	}()
	return e.Diagnose()
}
