package packet

import (
	"testing"
	"testing/quick"
)

func TestTypePredicates(t *testing.T) {
	cases := []struct {
		t                  Type
		isReq, isResp, dat bool
	}{
		{ReadRequest, true, false, false},
		{ReadResponse, false, true, true},
		{WriteRequest, true, false, true},
		{WriteResponse, false, true, false},
	}
	for _, c := range cases {
		if c.t.IsRequest() != c.isReq {
			t.Errorf("%v IsRequest = %v", c.t, c.t.IsRequest())
		}
		if c.t.IsResponse() != c.isResp {
			t.Errorf("%v IsResponse = %v", c.t, c.t.IsResponse())
		}
		if c.t.CarriesData() != c.dat {
			t.Errorf("%v CarriesData = %v", c.t, c.t.CarriesData())
		}
	}
}

func TestResponseFor(t *testing.T) {
	if ResponseFor(ReadRequest) != ReadResponse {
		t.Fatal("read request → read response")
	}
	if ResponseFor(WriteRequest) != WriteResponse {
		t.Fatal("write request → write response")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ResponseFor(ReadResponse) did not panic")
		}
	}()
	ResponseFor(ReadResponse)
}

func TestTypeString(t *testing.T) {
	if ReadRequest.String() != "read-req" || WriteResponse.String() != "write-resp" {
		t.Fatal("type names wrong")
	}
	if Type(42).String() == "" {
		t.Fatal("unknown type should still render")
	}
}

// Table 1 of the paper fixes the per-network cl sizes. Ring buffers
// hold 2/3/5/9 flits; mesh cache-line packets are 8/12/20/36 flits.
func TestPaperCacheLineFlits(t *testing.T) {
	ringWant := map[int]int{16: 2, 32: 3, 64: 5, 128: 9}
	meshWant := map[int]int{16: 8, 32: 12, 64: 20, 128: 36}
	for line, want := range ringWant {
		if got := RingSizing.CacheLineFlits(line); got != want {
			t.Errorf("ring cl(%dB) = %d, want %d", line, got, want)
		}
	}
	for line, want := range meshWant {
		if got := MeshSizing.CacheLineFlits(line); got != want {
			t.Errorf("mesh cl(%dB) = %d, want %d", line, got, want)
		}
	}
}

func TestPacketFlitsByType(t *testing.T) {
	// Header-only packets.
	if got := RingSizing.PacketFlits(ReadRequest, 64); got != 1 {
		t.Errorf("ring read-req = %d flits, want 1", got)
	}
	if got := MeshSizing.PacketFlits(WriteResponse, 64); got != 4 {
		t.Errorf("mesh write-resp = %d flits, want 4", got)
	}
	// Data packets.
	if got := RingSizing.PacketFlits(ReadResponse, 64); got != 5 {
		t.Errorf("ring read-resp(64B) = %d flits, want 5", got)
	}
	if got := MeshSizing.PacketFlits(WriteRequest, 128); got != 36 {
		t.Errorf("mesh write-req(128B) = %d flits, want 36", got)
	}
}

func TestPacketFlitsPanicsOnBadLine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive line size")
		}
	}()
	RingSizing.CacheLineFlits(0)
}

func TestFlitHeadTail(t *testing.T) {
	p := &Packet{ID: 1, Flits: 3}
	if f := (Flit{p, 0}); !f.Head() || f.Tail() {
		t.Fatal("flit 0 of 3 should be head only")
	}
	if f := (Flit{p, 2}); f.Head() || !f.Tail() {
		t.Fatal("flit 2 of 3 should be tail only")
	}
	single := &Packet{ID: 2, Flits: 1}
	if f := (Flit{single, 0}); !f.Head() || !f.Tail() {
		t.Fatal("single-flit packet should be head+tail")
	}
}

func TestFIFOOrder(t *testing.T) {
	q := NewFIFO(4)
	p := &Packet{ID: 1, Flits: 4}
	for i := 0; i < 4; i++ {
		q.Push(Flit{p, i})
	}
	if q.Space() != 0 || q.Len() != 4 {
		t.Fatalf("len/space = %d/%d", q.Len(), q.Space())
	}
	for i := 0; i < 4; i++ {
		f := q.Pop()
		if f.Index != i {
			t.Fatalf("pop %d returned index %d", i, f.Index)
		}
	}
	if !q.Empty() {
		t.Fatal("FIFO should be empty")
	}
}

func TestFIFOPeek(t *testing.T) {
	q := NewFIFO(2)
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty should report !ok")
	}
	p := &Packet{ID: 1, Flits: 1}
	q.Push(Flit{p, 0})
	f, ok := q.Peek()
	if !ok || f.Pkt != p {
		t.Fatal("peek returned wrong flit")
	}
	if q.Len() != 1 {
		t.Fatal("peek must not remove")
	}
}

func TestFIFOOverflowPanics(t *testing.T) {
	q := NewFIFO(1)
	q.Push(Flit{&Packet{Flits: 1}, 0})
	defer func() {
		if recover() == nil {
			t.Fatal("push into full FIFO did not panic")
		}
	}()
	q.Push(Flit{&Packet{Flits: 1}, 0})
}

func TestFIFOUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pop from empty FIFO did not panic")
		}
	}()
	NewFIFO(1).Pop()
}

func TestFIFOZeroCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewFIFO(0) did not panic")
		}
	}()
	NewFIFO(0)
}

func TestHoldsOnly(t *testing.T) {
	q := NewFIFO(4)
	a := &Packet{ID: 1, Flits: 2}
	b := &Packet{ID: 2, Flits: 2}
	if !q.HoldsOnly(a) {
		t.Fatal("empty FIFO holds only anything")
	}
	q.Push(Flit{a, 0})
	q.Push(Flit{a, 1})
	if !q.HoldsOnly(a) || q.HoldsOnly(b) {
		t.Fatal("HoldsOnly wrong for single-packet FIFO")
	}
	q.Push(Flit{b, 0})
	if q.HoldsOnly(a) {
		t.Fatal("HoldsOnly wrong for mixed FIFO")
	}
}

// Property: FIFO preserves order and count under arbitrary push/pop
// interleavings.
func TestQuickFIFO(t *testing.T) {
	f := func(ops []bool) bool {
		q := NewFIFO(8)
		next, expect := 0, 0
		p := &Packet{Flits: 1 << 30}
		for _, push := range ops {
			if push {
				if q.Space() > 0 {
					q.Push(Flit{p, next})
					next++
				}
			} else if !q.Empty() {
				got := q.Pop()
				if got.Index != expect {
					return false
				}
				expect++
			}
		}
		return q.Len() == next-expect
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: packet length is always at least the header and data
// packets are strictly longer than header-only packets.
func TestQuickSizing(t *testing.T) {
	f := func(lineRaw uint8) bool {
		line := int(lineRaw%128) + 1
		for _, s := range []Sizing{RingSizing, MeshSizing} {
			if s.PacketFlits(ReadRequest, line) != s.HeaderFlits {
				return false
			}
			if s.PacketFlits(ReadResponse, line) <= s.HeaderFlits {
				return false
			}
			if s.CacheLineFlits(line) != s.PacketFlits(WriteRequest, line) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
