// Package packet defines the memory-transaction packets exchanged by
// processing modules and their flit-level view on the wire.
//
// The paper simulates four packet types — read request, read response,
// write request and write response — transferred as contiguous
// sequences of flits under wormhole switching. Packet sizes follow the
// paper's channel-width assumptions: hierarchical rings have 128-bit
// channels and 1-flit headers; meshes have 32-bit channels and 4-flit
// headers (Section 2.2 and Table 1).
package packet

import "fmt"

// Type identifies one of the four simulated transaction packet kinds.
type Type uint8

const (
	// ReadRequest asks the target memory for a cache line.
	ReadRequest Type = iota
	// ReadResponse carries a cache line back to the requester.
	ReadResponse
	// WriteRequest carries a cache line to the target memory.
	WriteRequest
	// WriteResponse acknowledges a write.
	WriteResponse
)

// String returns the conventional short name of the packet type.
func (t Type) String() string {
	switch t {
	case ReadRequest:
		return "read-req"
	case ReadResponse:
		return "read-resp"
	case WriteRequest:
		return "write-req"
	case WriteResponse:
		return "write-resp"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// IsRequest reports whether the type travels processor → memory.
func (t Type) IsRequest() bool { return t == ReadRequest || t == WriteRequest }

// IsResponse reports whether the type travels memory → processor.
func (t Type) IsResponse() bool { return t == ReadResponse || t == WriteResponse }

// CarriesData reports whether the packet includes a cache-line payload.
func (t Type) CarriesData() bool { return t == ReadResponse || t == WriteRequest }

// ResponseFor returns the response type matching a request type. It
// panics when t is not a request.
func ResponseFor(t Type) Type {
	switch t {
	case ReadRequest:
		return ReadResponse
	case WriteRequest:
		return WriteResponse
	default:
		panic("packet: ResponseFor on non-request type " + t.String())
	}
}

// Sizing captures a network's flit geometry: how wide a flit is and how
// many flits of header each packet carries.
type Sizing struct {
	// FlitBytes is the channel width in bytes (one flit per cycle).
	FlitBytes int
	// HeaderFlits is the number of header flits per packet.
	HeaderFlits int
}

// RingSizing is the paper's hierarchical-ring geometry: 128-bit
// channels (16 bytes/flit) and single-flit headers.
var RingSizing = Sizing{FlitBytes: 16, HeaderFlits: 1}

// MeshSizing is the paper's mesh geometry under the same pin budget:
// 32-bit channels (4 bytes/flit) and 4-flit headers.
var MeshSizing = Sizing{FlitBytes: 4, HeaderFlits: 4}

// PacketFlits returns the length in flits of a packet of type t
// carrying lineBytes of cache line when it has data. Header-only
// packets are exactly HeaderFlits long.
func (s Sizing) PacketFlits(t Type, lineBytes int) int {
	if !t.CarriesData() {
		return s.HeaderFlits
	}
	return s.HeaderFlits + s.dataFlits(lineBytes)
}

// CacheLineFlits returns cl: the flits needed for a packet carrying a
// full cache line (header + payload). For rings this is 2/3/5/9 and
// for meshes 8/12/20/36 flits at 16/32/64/128-byte lines.
func (s Sizing) CacheLineFlits(lineBytes int) int {
	return s.HeaderFlits + s.dataFlits(lineBytes)
}

func (s Sizing) dataFlits(lineBytes int) int {
	if lineBytes <= 0 {
		panic("packet: non-positive cache line size")
	}
	return (lineBytes + s.FlitBytes - 1) / s.FlitBytes
}

// Packet is one memory transaction packet in flight. Flits are not
// materialized individually; buffers and links track (packet, flit
// index) pairs through the Flit type.
type Packet struct {
	// ID is unique within a simulation run.
	ID uint64
	// Type is the transaction kind.
	Type Type
	// Src and Dst are PM indices (DFS order for rings, row-major for
	// meshes).
	Src, Dst int
	// Flits is the total length of the packet on this network.
	Flits int
	// Issue is the cycle the originating *transaction* was issued by
	// the processor; responses inherit it from their request so that
	// round-trip latency is response-arrival minus Issue.
	Issue int64
	// Inject is the cycle this packet entered a NIC output queue
	// (used for network-only latency diagnostics).
	Inject int64
}

// String renders a compact description for traces and test failures.
func (p *Packet) String() string {
	return fmt.Sprintf("#%d %s %d→%d (%d flits)", p.ID, p.Type, p.Src, p.Dst, p.Flits)
}

// Flit is a flit-granularity view into a packet: the packet pointer
// plus this flit's position.
type Flit struct {
	Pkt   *Packet
	Index int
}

// Head reports whether this is the packet's first (routing) flit.
func (f Flit) Head() bool { return f.Index == 0 }

// Tail reports whether this is the packet's last flit (a single-flit
// packet is both head and tail).
func (f Flit) Tail() bool { return f.Index == f.Pkt.Flits-1 }

// String renders the flit for traces.
func (f Flit) String() string {
	role := ""
	switch {
	case f.Head() && f.Tail():
		role = " (head+tail)"
	case f.Head():
		role = " (head)"
	case f.Tail():
		role = " (tail)"
	}
	return fmt.Sprintf("%s flit %d/%d%s", f.Pkt, f.Index+1, f.Pkt.Flits, role)
}

// FIFO is a bounded flit queue used for every buffer in the system
// (ring transit buffers, IRI up/down queues, mesh input buffers). The
// bound is in flits. A FIFO never interleaves: flits are enqueued in
// arrival order and the network's acceptance rules guarantee packets
// arrive contiguously per link.
type FIFO struct {
	cap   int
	items []Flit
}

// NewFIFO returns a FIFO holding at most capacity flits.
func NewFIFO(capacity int) *FIFO {
	if capacity <= 0 {
		panic("packet: FIFO capacity must be positive")
	}
	return &FIFO{cap: capacity}
}

// Cap returns the capacity in flits.
func (q *FIFO) Cap() int { return q.cap }

// Len returns the number of buffered flits.
func (q *FIFO) Len() int { return len(q.items) }

// Space returns the free capacity in flits.
func (q *FIFO) Space() int { return q.cap - len(q.items) }

// Empty reports whether the FIFO holds no flits.
func (q *FIFO) Empty() bool { return len(q.items) == 0 }

// Push appends a flit. It panics if the FIFO is full — callers must
// check Space first; a violation indicates a flow-control bug.
func (q *FIFO) Push(f Flit) {
	if q.Space() <= 0 {
		panic("packet: push into full FIFO (flow-control violation)")
	}
	q.items = append(q.items, f)
}

// Peek returns the head flit without removing it. ok is false when
// empty.
func (q *FIFO) Peek() (f Flit, ok bool) {
	if len(q.items) == 0 {
		return Flit{}, false
	}
	return q.items[0], true
}

// Pop removes and returns the head flit. It panics when empty.
func (q *FIFO) Pop() Flit {
	if len(q.items) == 0 {
		panic("packet: pop from empty FIFO")
	}
	f := q.items[0]
	// Shift; FIFOs are tiny (≤ 36 flits) so O(n) copy is cheaper than
	// a ring index for these sizes and keeps the code obvious.
	copy(q.items, q.items[1:])
	q.items = q.items[:len(q.items)-1]
	return f
}

// HoldsOnly reports whether every buffered flit belongs to pkt (used
// by acceptance rules that admit one packet at a time).
func (q *FIFO) HoldsOnly(pkt *Packet) bool {
	for _, f := range q.items {
		if f.Pkt != pkt {
			return false
		}
	}
	return true
}

// EachPacket calls fn once per buffered flit's packet (callers dedup;
// used by the ring bubble rule's residency count).
func (q *FIFO) EachPacket(fn func(*Packet)) {
	for _, f := range q.items {
		fn(f.Pkt)
	}
}
