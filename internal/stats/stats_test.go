package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorBasic(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{1, 2, 3, 4, 5} {
		a.Add(x)
	}
	if a.Count() != 5 {
		t.Fatalf("count = %d", a.Count())
	}
	if !almostEq(a.Mean(), 3, 1e-12) {
		t.Fatalf("mean = %v", a.Mean())
	}
	if !almostEq(a.Variance(), 2.5, 1e-12) {
		t.Fatalf("variance = %v", a.Variance())
	}
	if a.Min() != 1 || a.Max() != 5 {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 || a.Variance() != 0 || a.StdDev() != 0 {
		t.Fatal("empty accumulator should report zeros")
	}
}

func TestAccumulatorSingle(t *testing.T) {
	var a Accumulator
	a.Add(7)
	if a.Variance() != 0 {
		t.Fatalf("variance of single obs = %v", a.Variance())
	}
	if a.Min() != 7 || a.Max() != 7 {
		t.Fatal("min/max wrong for single obs")
	}
}

func TestAccumulatorAddN(t *testing.T) {
	var a Accumulator
	a.AddN(4, 10)
	if a.Count() != 10 || a.Mean() != 4 || a.Variance() != 0 {
		t.Fatalf("AddN: %v", a.String())
	}
}

func TestAccumulatorMerge(t *testing.T) {
	var whole, left, right Accumulator
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	for i, x := range xs {
		whole.Add(x)
		if i < 5 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.Count() != whole.Count() {
		t.Fatalf("merged count = %d, want %d", left.Count(), whole.Count())
	}
	if !almostEq(left.Mean(), whole.Mean(), 1e-12) {
		t.Fatalf("merged mean = %v, want %v", left.Mean(), whole.Mean())
	}
	if !almostEq(left.Variance(), whole.Variance(), 1e-9) {
		t.Fatalf("merged variance = %v, want %v", left.Variance(), whole.Variance())
	}
	if left.Min() != whole.Min() || left.Max() != whole.Max() {
		t.Fatal("merged min/max wrong")
	}
}

func TestAccumulatorMergeEmpty(t *testing.T) {
	var a, b Accumulator
	a.Add(1)
	a.Merge(&b) // no-op
	if a.Count() != 1 {
		t.Fatal("merge with empty changed count")
	}
	b.Merge(&a)
	if b.Count() != 1 || b.Mean() != 1 {
		t.Fatal("merge into empty failed")
	}
}

// Property: merging two accumulators equals accumulating the
// concatenation, for arbitrary inputs.
func TestQuickMergeEquivalence(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(vs []float64) []float64 {
			out := vs[:0]
			for _, v := range vs {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e6 {
					out = append(out, v)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, c Accumulator
		for _, x := range xs {
			a.Add(x)
			c.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
			c.Add(y)
		}
		a.Merge(&b)
		return a.Count() == c.Count() &&
			almostEq(a.Mean(), c.Mean(), 1e-6+1e-9*math.Abs(c.Mean())) &&
			almostEq(a.Variance(), c.Variance(), 1e-4+1e-6*c.Variance())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBatchMeansDiscard(t *testing.T) {
	b := NewBatchMeans(1)
	// Warmup batch with wildly biased values.
	b.Add(1000)
	b.Add(2000)
	b.CloseBatch()
	// Two real batches.
	b.Add(10)
	b.Add(20)
	b.CloseBatch()
	b.Add(30)
	b.Add(40)
	b.CloseBatch()
	if b.Batches() != 2 {
		t.Fatalf("batches = %d, want 2", b.Batches())
	}
	if !almostEq(b.Mean(), 25, 1e-12) {
		t.Fatalf("mean = %v, want 25 (warmup not discarded?)", b.Mean())
	}
	if b.Observations() != 4 {
		t.Fatalf("observations = %d", b.Observations())
	}
}

func TestBatchMeansWeighted(t *testing.T) {
	b := NewBatchMeans(0)
	b.Add(10) // batch of 1 obs
	b.CloseBatch()
	for i := 0; i < 3; i++ { // batch of 3 obs, mean 20
		b.Add(20)
	}
	b.CloseBatch()
	want := (10.0 + 3*20.0) / 4
	if !almostEq(b.Mean(), want, 1e-12) {
		t.Fatalf("weighted mean = %v, want %v", b.Mean(), want)
	}
}

func TestBatchMeansEmptyBatches(t *testing.T) {
	b := NewBatchMeans(0)
	b.CloseBatch() // empty
	b.Add(5)
	b.CloseBatch()
	if b.Batches() != 2 {
		t.Fatalf("batches = %d", b.Batches())
	}
	if b.Mean() != 5 {
		t.Fatalf("mean = %v", b.Mean())
	}
}

func TestBatchMeansAllEmpty(t *testing.T) {
	b := NewBatchMeans(1)
	b.CloseBatch()
	b.CloseBatch()
	if b.Mean() != 0 {
		t.Fatalf("mean of no observations = %v", b.Mean())
	}
	if !math.IsInf(b.HalfWidth(), 1) {
		t.Fatalf("half-width with <2 batches should be +Inf")
	}
}

func TestBatchMeansHalfWidthShrinks(t *testing.T) {
	mk := func(k int) float64 {
		b := NewBatchMeans(0)
		for i := 0; i < k; i++ {
			b.Add(float64(i % 2)) // alternating 0/1 batch means
			b.CloseBatch()
		}
		return b.HalfWidth()
	}
	if !(mk(40) < mk(4)) {
		t.Fatal("half-width should shrink with more batches")
	}
}

func TestTCritical(t *testing.T) {
	if got := tCritical95(1); !almostEq(got, 12.706, 1e-9) {
		t.Fatalf("t(1) = %v", got)
	}
	if got := tCritical95(10); !almostEq(got, 2.228, 1e-9) {
		t.Fatalf("t(10) = %v", got)
	}
	if got := tCritical95(1000); got != 1.96 {
		t.Fatalf("t(1000) = %v", got)
	}
	if !math.IsInf(tCritical95(0), 1) {
		t.Fatal("t(0) should be +Inf")
	}
}

func TestUtilization(t *testing.T) {
	var u Utilization
	if u.Value() != 0 {
		t.Fatal("empty utilization should be 0")
	}
	u.Tick(10)
	u.Busy(4)
	if !almostEq(u.Value(), 0.4, 1e-12) {
		t.Fatalf("value = %v", u.Value())
	}
	if !almostEq(u.Percent(), 40, 1e-12) {
		t.Fatalf("percent = %v", u.Percent())
	}
	var v Utilization
	v.Tick(10)
	v.Busy(6)
	u.Merge(&v)
	if !almostEq(u.Value(), 0.5, 1e-12) {
		t.Fatalf("merged value = %v", u.Value())
	}
	u.Reset()
	if u.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 10) // buckets [0,10)...[90,100)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	h.Add(500) // overflow
	if h.Count() != 101 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d", h.Overflow())
	}
	q50 := h.Quantile(0.5)
	if q50 < 40 || q50 > 70 {
		t.Fatalf("median estimate = %v", q50)
	}
	if h.Quantile(0) != 10 { // first non-empty bucket upper edge
		t.Fatalf("q0 = %v", h.Quantile(0))
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(0, 1) did not panic")
		}
	}()
	NewHistogram(0, 1)
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram(4, 1)
	h.Add(-5)
	if h.Count() != 1 {
		t.Fatal("negative value not recorded")
	}
}

func TestLag1Autocorrelation(t *testing.T) {
	// A strongly trending series is highly autocorrelated.
	trend := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if r := Lag1Autocorrelation(trend); r < 0.5 {
		t.Fatalf("trend autocorrelation = %v, want high", r)
	}
	// An alternating series is negatively autocorrelated.
	alt := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	if r := Lag1Autocorrelation(alt); r > -0.5 {
		t.Fatalf("alternating autocorrelation = %v, want strongly negative", r)
	}
	// Degenerate inputs.
	if Lag1Autocorrelation(nil) != 0 || Lag1Autocorrelation([]float64{5}) != 0 {
		t.Fatal("degenerate series should return 0")
	}
	if Lag1Autocorrelation([]float64{3, 3, 3}) != 0 {
		t.Fatal("constant series should return 0")
	}
}

func TestBatchMeansCorrelated(t *testing.T) {
	b := NewBatchMeans(0)
	for i := 0; i < 10; i++ {
		b.Add(float64(i * 10)) // strong upward trend across batches
		b.CloseBatch()
	}
	if !b.Correlated(0.5) {
		t.Fatal("trending batch means not flagged as correlated")
	}
	vals := b.BatchMeansValues()
	if len(vals) != 10 || vals[3] != 30 {
		t.Fatalf("batch means values = %v", vals)
	}
	// Too few batches: never flagged.
	c := NewBatchMeans(0)
	c.Add(1)
	c.CloseBatch()
	c.Add(2)
	c.CloseBatch()
	if c.Correlated(0.1) {
		t.Fatal("two batches cannot be judged correlated")
	}
}

// TestUtilizationMergeZeroCapacity covers merging with zero-capacity
// operands in every direction: an unticked counter must act as the
// identity and never poison the merged ratio with a 0/0 division.
func TestUtilizationMergeZeroCapacity(t *testing.T) {
	var active Utilization
	active.Tick(10)
	active.Busy(5)

	var empty Utilization
	active.Merge(&empty) // zero-capacity right operand: identity
	if !almostEq(active.Value(), 0.5, 1e-12) {
		t.Fatalf("merge with empty changed value: %v", active.Value())
	}

	var dst Utilization
	dst.Merge(&active) // zero-capacity left operand: adopts the right
	if !almostEq(dst.Value(), 0.5, 1e-12) {
		t.Fatalf("empty.Merge(active) = %v, want 0.5", dst.Value())
	}

	var a, b Utilization
	a.Merge(&b) // both empty: still defined, still zero
	if a.Value() != 0 || a.Percent() != 0 {
		t.Fatalf("empty merge produced %v", a.Value())
	}
	if busy, capacity := a.Counts(); busy != 0 || capacity != 0 {
		t.Fatalf("empty merge counts = %d/%d", busy, capacity)
	}
}
