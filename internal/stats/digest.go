package stats

import "math"

// Digest is a mergeable latency-distribution accumulator: a
// log-bucketed (power-of-two) histogram paired with a Welford
// accumulator, sized for the "record everything, summarize at the end"
// telemetry paths where the value range is unknown up front (span
// durations in nanoseconds, barrier waits, queue delays). Unlike
// Histogram, whose fixed-width buckets must be sized to the data, a
// Digest covers the whole positive float64 range in 64 buckets with a
// constant relative error, and two Digests can be folded together with
// Merge — the property sweep aggregation and per-shard telemetry need.
//
// The zero value is ready to use. Digest is not synchronized: each
// writer owns its own and readers merge after the writers are done
// (the metrics package's Histogram is the concurrency-safe sibling).
type Digest struct {
	// counts[i] holds observations in [2^i, 2^(i+1)); values below 1
	// land in counts[0].
	counts [64]int64
	acc    Accumulator
}

// digestBucket returns the bucket index for x (x >= 0).
func digestBucket(x float64) int {
	if x < 1 {
		return 0
	}
	i := int(math.Log2(x))
	if i < 0 {
		i = 0
	}
	if i > 63 {
		i = 63
	}
	return i
}

// Add records a value (negative values clamp to zero).
func (d *Digest) Add(x float64) {
	if x < 0 {
		x = 0
	}
	d.acc.Add(x)
	d.counts[digestBucket(x)]++
}

// Merge folds other into d. Bucket counts add; the summary statistics
// merge through the accumulators' exact pairwise update.
func (d *Digest) Merge(other *Digest) {
	if other == nil {
		return
	}
	for i := range d.counts {
		d.counts[i] += other.counts[i]
	}
	d.acc.Merge(&other.acc)
}

// Count returns the number of recorded values.
func (d *Digest) Count() int64 { return d.acc.Count() }

// Mean returns the mean of recorded values.
func (d *Digest) Mean() float64 { return d.acc.Mean() }

// Min returns the smallest recorded value (0 when empty).
func (d *Digest) Min() float64 { return d.acc.Min() }

// Max returns the largest recorded value (0 when empty).
func (d *Digest) Max() float64 { return d.acc.Max() }

// Sum returns the total of recorded values.
func (d *Digest) Sum() float64 { return d.acc.Mean() * float64(d.acc.Count()) }

// Quantile estimates the q-quantile (q in [0,1]) by locating the
// bucket holding the target rank and interpolating linearly inside it.
// The estimate's relative error is bounded by the bucket width (a
// factor of two); the exact observed Min and Max clamp the tails.
func (d *Digest) Quantile(q float64) float64 {
	n := d.acc.Count()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return d.acc.Min()
	}
	if q >= 1 {
		return d.acc.Max()
	}
	target := q * float64(n)
	var cum float64
	for i, c := range d.counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= target {
			lo, hi := bucketBounds(i)
			if lo < d.acc.Min() {
				lo = d.acc.Min()
			}
			if hi > d.acc.Max() {
				hi = d.acc.Max()
			}
			if hi <= lo {
				return lo
			}
			frac := (target - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum += float64(c)
	}
	return d.acc.Max()
}

// bucketBounds returns bucket i's value range [lo, hi).
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 2
	}
	lo = math.Ldexp(1, i)
	return lo, 2 * lo
}

// Reset returns the digest to its zero state.
func (d *Digest) Reset() { *d = Digest{} }
