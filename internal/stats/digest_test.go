package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestDigestEmpty(t *testing.T) {
	var d Digest
	if d.Count() != 0 || d.Mean() != 0 || d.Quantile(0.5) != 0 {
		t.Fatalf("zero digest not empty: count=%d mean=%g q50=%g",
			d.Count(), d.Mean(), d.Quantile(0.5))
	}
}

func TestDigestQuantileBounds(t *testing.T) {
	var d Digest
	vals := []float64{3, 9, 27, 81, 243, 729}
	for _, v := range vals {
		d.Add(v)
	}
	if got := d.Quantile(0); got != 3 {
		t.Errorf("q0 = %g, want exact min 3", got)
	}
	if got := d.Quantile(1); got != 729 {
		t.Errorf("q1 = %g, want exact max 729", got)
	}
	// Every quantile must lie within [min, max] and be monotone in q.
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := d.Quantile(q)
		if v < 3 || v > 729 {
			t.Fatalf("q%.2f = %g outside [3, 729]", q, v)
		}
		if v < prev {
			t.Fatalf("quantiles not monotone: q%.2f = %g < %g", q, v, prev)
		}
		prev = v
	}
}

// TestDigestQuantileAccuracy checks the log-bucket estimate stays
// within one bucket width (a factor of two) of the exact quantile.
func TestDigestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var d Digest
	xs := make([]float64, 0, 10000)
	for i := 0; i < 10000; i++ {
		// Latency-shaped: a lognormal-ish positive spread.
		v := math.Exp(rng.NormFloat64()*1.2 + 5)
		d.Add(v)
		xs = append(xs, v)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := xs[int(q*float64(len(xs)))-1]
		got := d.Quantile(q)
		if got < exact/2 || got > exact*2 {
			t.Errorf("q%g = %g; exact %g (off by more than a bucket width)", q, got, exact)
		}
	}
}

func TestDigestMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, all Digest
	for i := 0; i < 500; i++ {
		v := rng.Float64() * 1000
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d != %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Errorf("merged mean %g != %g", a.Mean(), all.Mean())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merged min/max %g/%g != %g/%g", a.Min(), a.Max(), all.Min(), all.Max())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if got, want := a.Quantile(q), all.Quantile(q); got != want {
			t.Errorf("merged q%g = %g != %g", q, got, want)
		}
	}
	// Merging a nil digest is a no-op.
	before := a.Count()
	a.Merge(nil)
	if a.Count() != before {
		t.Errorf("nil merge changed count")
	}
}

func TestDigestNegativeClamp(t *testing.T) {
	var d Digest
	d.Add(-5)
	if d.Min() != 0 || d.Count() != 1 {
		t.Fatalf("negative not clamped: min=%g count=%d", d.Min(), d.Count())
	}
}

func TestDigestReset(t *testing.T) {
	var d Digest
	d.Add(42)
	d.Reset()
	if d.Count() != 0 || d.Quantile(0.5) != 0 {
		t.Fatalf("reset digest not empty")
	}
}
