// Package stats provides the output-analysis machinery used by the
// simulator: streaming accumulators, the batch-means method (with the
// first batch discarded to remove initialization bias, as in the
// paper), confidence intervals, and utilization counters.
package stats

import (
	"fmt"
	"math"
)

// Accumulator keeps streaming summary statistics of a sequence of
// observations using Welford's algorithm (numerically stable). The zero
// value is ready to use.
type Accumulator struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// AddN records the same observation n times.
func (a *Accumulator) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		a.Add(x)
	}
}

// Merge folds other into a.
func (a *Accumulator) Merge(other *Accumulator) {
	if other.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *other
		return
	}
	n := a.n + other.n
	d := other.mean - a.mean
	a.m2 += other.m2 + d*d*float64(a.n)*float64(other.n)/float64(n)
	a.mean += d * float64(other.n) / float64(n)
	if other.min < a.min {
		a.min = other.min
	}
	if other.max > a.max {
		a.max = other.max
	}
	a.n = n
}

// Count returns the number of observations.
func (a *Accumulator) Count() int64 { return a.n }

// Mean returns the sample mean (0 when empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest observation (0 when empty).
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest observation (0 when empty).
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Reset returns the accumulator to its zero state.
func (a *Accumulator) Reset() { *a = Accumulator{} }

// String summarizes the accumulator.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f",
		a.n, a.Mean(), a.StdDev(), a.min, a.max)
}

// BatchMeans implements the batch-means method of simulation output
// analysis: observations are grouped into fixed-length batches, the
// first batch is discarded (initialization bias), and the remaining
// batch means are treated as approximately independent samples.
//
// Batches here are delimited by the caller (the runner closes a batch
// every batchCycles simulation cycles) via CloseBatch, so a batch's
// "length" is simulated time, not an observation count — the natural
// choice for latency series whose rate depends on congestion.
type BatchMeans struct {
	current Accumulator
	batches []float64
	weights []int64
	discard int
	closed  int
}

// NewBatchMeans returns a BatchMeans that will drop the first discard
// batches (the paper discards one).
func NewBatchMeans(discard int) *BatchMeans {
	if discard < 0 {
		discard = 0
	}
	return &BatchMeans{discard: discard}
}

// Add records an observation into the current batch.
func (b *BatchMeans) Add(x float64) { b.current.Add(x) }

// CloseBatch ends the current batch. Empty batches are recorded with
// weight zero so saturated runs (where no responses complete) are
// visible rather than silently shortened.
func (b *BatchMeans) CloseBatch() {
	b.closed++
	if b.closed <= b.discard {
		b.current.Reset()
		return
	}
	b.batches = append(b.batches, b.current.Mean())
	b.weights = append(b.weights, b.current.Count())
	b.current.Reset()
}

// Batches returns the number of retained (non-discarded) batches.
func (b *BatchMeans) Batches() int { return len(b.batches) }

// Observations returns the total observation count in retained batches.
func (b *BatchMeans) Observations() int64 {
	var n int64
	for _, w := range b.weights {
		n += w
	}
	return n
}

// Mean returns the grand mean over retained batch means, weighting each
// batch by its observation count (robust when some batches are thin).
func (b *BatchMeans) Mean() float64 {
	var sum float64
	var n int64
	for i, m := range b.batches {
		sum += m * float64(b.weights[i])
		n += b.weights[i]
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// HalfWidth returns the half-width of the 95% confidence interval on
// the mean of batch means (equal-weight across non-empty batches, the
// classical batch-means estimator).
func (b *BatchMeans) HalfWidth() float64 {
	var acc Accumulator
	for i, m := range b.batches {
		if b.weights[i] > 0 {
			acc.Add(m)
		}
	}
	k := acc.Count()
	if k < 2 {
		return math.Inf(1)
	}
	se := acc.StdDev() / math.Sqrt(float64(k))
	return tCritical95(int(k-1)) * se
}

// tCritical95 returns the two-sided 95% Student-t critical value for
// the given degrees of freedom (exact table for small df, normal
// approximation beyond).
func tCritical95(df int) float64 {
	table := []float64{
		0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
		2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
		2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
		2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(table) {
		return table[df]
	}
	return 1.96
}

// Utilization tracks how busy a resource is: busy event-counts against
// elapsed capacity. For a link, call Busy(1) each cycle a flit is
// transferred; capacity accrues via Tick.
type Utilization struct {
	busy     int64
	capacity int64
}

// Busy records n units of useful work.
func (u *Utilization) Busy(n int64) { u.busy += n }

// Tick records n units of available capacity.
func (u *Utilization) Tick(n int64) { u.capacity += n }

// Value returns busy/capacity in [0,1] (0 when no capacity recorded).
func (u *Utilization) Value() float64 {
	if u.capacity == 0 {
		return 0
	}
	return float64(u.busy) / float64(u.capacity)
}

// Percent returns the utilization as a percentage.
func (u *Utilization) Percent() float64 { return 100 * u.Value() }

// Counts returns the raw busy and capacity counters (for windowed
// samplers that difference successive snapshots).
func (u *Utilization) Counts() (busy, capacity int64) { return u.busy, u.capacity }

// Reset clears the counters.
func (u *Utilization) Reset() { *u = Utilization{} }

// Merge folds other into u.
func (u *Utilization) Merge(other *Utilization) {
	u.busy += other.busy
	u.capacity += other.capacity
}

// Histogram is a fixed-width bucket histogram for latency
// distributions; values beyond the last bucket go to an overflow bin.
type Histogram struct {
	width   float64
	buckets []int64
	over    int64
	acc     Accumulator
}

// NewHistogram creates a histogram with n buckets of the given width.
func NewHistogram(n int, width float64) *Histogram {
	if n <= 0 || width <= 0 {
		panic("stats: NewHistogram needs n > 0 and width > 0")
	}
	return &Histogram{width: width, buckets: make([]int64, n)}
}

// Add records a value.
func (h *Histogram) Add(x float64) {
	h.acc.Add(x)
	if x < 0 {
		x = 0
	}
	i := int(x / h.width)
	if i >= len(h.buckets) {
		h.over++
		return
	}
	h.buckets[i]++
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.acc.Count() }

// Mean returns the mean of recorded values.
func (h *Histogram) Mean() float64 { return h.acc.Mean() }

// Quantile returns an estimate (bucket upper edge) of the q-quantile,
// q in [0,1].
func (h *Histogram) Quantile(q float64) float64 {
	if h.acc.Count() == 0 {
		return 0
	}
	target := q * float64(h.acc.Count())
	var cum float64
	for i, c := range h.buckets {
		cum += float64(c)
		if cum >= target {
			return float64(i+1) * h.width
		}
	}
	return h.acc.Max()
}

// Overflow returns the number of values beyond the last bucket.
func (h *Histogram) Overflow() int64 { return h.over }

// Lag1Autocorrelation estimates the lag-1 autocorrelation of a series
// — the standard check that batch means are long enough to treat as
// independent samples (MacDougall's smpl, the library behind the
// paper's simulator, recommends enlarging batches until neighbouring
// batch means are uncorrelated).
func Lag1Autocorrelation(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - mean
		den += d * d
		if i+1 < n {
			num += d * (xs[i+1] - mean)
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// BatchMeansValues returns the retained batch means (weights > 0),
// for diagnostics such as autocorrelation checks.
func (b *BatchMeans) BatchMeansValues() []float64 {
	var out []float64
	for i, m := range b.batches {
		if b.weights[i] > 0 {
			out = append(out, m)
		}
	}
	return out
}

// Correlated reports whether the retained batch means show strong
// lag-1 autocorrelation (|r| > threshold), signalling that batches
// are too short for the confidence interval to be trusted.
func (b *BatchMeans) Correlated(threshold float64) bool {
	vals := b.BatchMeansValues()
	if len(vals) < 3 {
		return false
	}
	r := Lag1Autocorrelation(vals)
	return r > threshold || r < -threshold
}
