package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ringmesh"
	"ringmesh/internal/metrics"
)

// testConfig is a small, fast mesh every e2e test simulates.
func testConfig() ringmesh.Config {
	return ringmesh.Config{
		Network:     "mesh",
		Nodes:       16,
		LineBytes:   32,
		BufferFlits: 4,
		Workload:    ringmesh.PaperWorkload(),
		Seed:        42,
	}
}

// testOptions is a short schedule so tests finish in milliseconds.
func testOptions() *ringmesh.RunOptions {
	return &ringmesh.RunOptions{WarmupCycles: 200, BatchCycles: 200, Batches: 2}
}

func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	if opt.Workers == 0 {
		opt.Workers = 2
	}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// jobDoc mirrors JobView with the result kept raw for byte-identity
// comparisons.
type jobDoc struct {
	ID       string          `json:"id"`
	Kind     string          `json:"kind"`
	Class    string          `json:"class"`
	State    JobState        `json:"state"`
	Cached   bool            `json:"cached"`
	Degraded bool            `json:"degraded"`
	Upgrade  string          `json:"upgrade_job_id"`
	Progress float64         `json:"progress"`
	Result   json.RawMessage `json:"result"`
	Points   json.RawMessage `json:"points"`
	Items    []BatchItem     `json:"items"`
	Error    *JobError       `json:"error"`
}

func decodeDoc(t *testing.T, raw []byte) jobDoc {
	t.Helper()
	var d jobDoc
	if err := json.Unmarshal(raw, &d); err != nil {
		t.Fatalf("bad job document %s: %v", raw, err)
	}
	return d
}

// awaitJob polls the job until it completes, failing the test on a
// failed job unless allowFail.
func awaitJob(t *testing.T, base, id string, allowFail bool) jobDoc {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		_, err = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job %s = %d: %s", id, resp.StatusCode, buf.String())
		}
		d := decodeDoc(t, buf.Bytes())
		switch d.State {
		case JobDone:
			return d
		case JobFailed:
			if allowFail {
				return d
			}
			t.Fatalf("job %s failed: %+v", id, d.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, d.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRunSubmitAndCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Options{})

	req := runRequest{Config: testConfig(), Options: testOptions()}
	resp, raw := postJSON(t, ts.URL+"/v1/runs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST = %d: %s", resp.StatusCode, raw)
	}
	first := decodeDoc(t, raw)
	if first.State != JobQueued || first.Cached {
		t.Fatalf("first submission = %+v; want queued, uncached", first)
	}
	done := awaitJob(t, ts.URL, first.ID, false)
	if done.Cached || len(done.Result) == 0 {
		t.Fatalf("first completion cached=%v result=%d bytes; want fresh result", done.Cached, len(done.Result))
	}
	if done.Progress != 1 {
		t.Fatalf("finished progress = %v; want 1", done.Progress)
	}

	// The identical submission must complete synchronously from the
	// cache with a byte-identical result.
	resp, raw = postJSON(t, ts.URL+"/v1/runs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second POST = %d: %s", resp.StatusCode, raw)
	}
	second := decodeDoc(t, raw)
	if second.State != JobDone || !second.Cached {
		t.Fatalf("second submission = state %s cached %v; want done, cached", second.State, second.Cached)
	}
	if !bytes.Equal(done.Result, second.Result) {
		t.Fatalf("cached result differs:\n%s\nvs\n%s", done.Result, second.Result)
	}
	if hits := s.cache.hits.Value(); hits < 1 {
		t.Fatalf("cache hits = %d; want >= 1", hits)
	}
	if misses := s.cache.misses.Value(); misses != 1 {
		t.Fatalf("cache misses = %d; want 1", misses)
	}
}

func TestConcurrentIdenticalRunsSimulateOnce(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 4})

	req := runRequest{Config: testConfig(), Options: testOptions()}
	const clients = 4
	docs := make([]jobDoc, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := postJSON(t, ts.URL+"/v1/runs", req)
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("POST %d = %d: %s", i, resp.StatusCode, raw)
				return
			}
			docs[i] = decodeDoc(t, raw)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	finals := make([]jobDoc, clients)
	for i := range docs {
		finals[i] = awaitJob(t, ts.URL, docs[i].ID, false)
	}

	// Exactly one simulation ran; everyone got byte-identical results.
	if misses := s.cache.misses.Value(); misses != 1 {
		t.Fatalf("cache misses = %d; want 1 (one simulation for %d identical jobs)", misses, clients)
	}
	replayed := 0
	for i := 1; i < clients; i++ {
		if !bytes.Equal(finals[0].Result, finals[i].Result) {
			t.Fatalf("result %d differs:\n%s\nvs\n%s", i, finals[0].Result, finals[i].Result)
		}
		if finals[i].Cached {
			replayed++
		}
	}
	if total := s.cache.hits.Value() + s.cache.coalesced.Value(); total < int64(clients-1) {
		t.Fatalf("hits+coalesced = %d; want >= %d", total, clients-1)
	}
	_ = replayed // which jobs replay depends on scheduling; the counters above pin the invariant
}

func TestSubmissionValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Invalid geometry: the model's message comes through.
	cfg := testConfig()
	cfg.Nodes = 63
	resp, raw := postJSON(t, ts.URL+"/v1/runs", runRequest{Config: cfg, Options: testOptions()})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad config POST = %d: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "invalid config") {
		t.Fatalf("error body %s missing config message", raw)
	}

	// Invalid schedule.
	opt := *testOptions()
	opt.Batches = 0
	resp, raw = postJSON(t, ts.URL+"/v1/runs", runRequest{Config: testConfig(), Options: &opt})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "batches") {
		t.Fatalf("bad options POST = %d: %s", resp.StatusCode, raw)
	}

	// Unknown fields are rejected, not ignored.
	resp, raw = postJSON(t, ts.URL+"/v1/runs", map[string]any{"config": testConfig(), "sizes": []int{4}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field POST = %d: %s", resp.StatusCode, raw)
	}

	// Empty sweep.
	resp, raw = postJSON(t, ts.URL+"/v1/sweeps", sweepRequest{Config: testConfig(), Options: testOptions()})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "sizes") {
		t.Fatalf("empty sweep POST = %d: %s", resp.StatusCode, raw)
	}

	// A sweep with one bad size names it.
	resp, raw = postJSON(t, ts.URL+"/v1/sweeps", sweepRequest{Config: testConfig(), Sizes: []int{16, 63}, Options: testOptions()})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "size 63") {
		t.Fatalf("bad sweep size POST = %d: %s", resp.StatusCode, raw)
	}

	// Unknown job id.
	resp2, err := http.Get(ts.URL + "/v1/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job GET = %d", resp2.StatusCode)
	}
}

func TestSweepPopulatesRunCache(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	sreq := sweepRequest{Config: testConfig(), Sizes: []int{25, 16}, Options: testOptions()}
	resp, raw := postJSON(t, ts.URL+"/v1/sweeps", sreq)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep POST = %d: %s", resp.StatusCode, raw)
	}
	doc := awaitJob(t, ts.URL, decodeDoc(t, raw).ID, false)
	var points []ringmesh.SweepPoint
	if err := json.Unmarshal(doc.Points, &points); err != nil {
		t.Fatalf("bad points %s: %v", doc.Points, err)
	}
	if len(points) != 2 || points[0].Nodes != 16 || points[1].Nodes != 25 {
		t.Fatalf("points = %+v; want sizes 16, 25 sorted", points)
	}
	if points[0].Topology != "4x4" || points[1].Topology != "5x5" {
		t.Fatalf("topologies = %q, %q; want 4x4, 5x5", points[0].Topology, points[1].Topology)
	}

	// A single run at a swept size replays the sweep's cached result.
	cfg := testConfig()
	cfg.Nodes = 25
	resp, raw = postJSON(t, ts.URL+"/v1/runs", runRequest{Config: cfg, Options: testOptions()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-sweep run POST = %d: %s", resp.StatusCode, raw)
	}
	if d := decodeDoc(t, raw); d.State != JobDone || !d.Cached {
		t.Fatalf("post-sweep run = state %s cached %v; want done, cached", d.State, d.Cached)
	}
}

func TestRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{Rate: 0.001, Burst: 1})

	req := runRequest{Config: testConfig(), Options: testOptions()}
	resp, raw := postJSON(t, ts.URL+"/v1/runs", req)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("first POST = %d: %s", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/runs", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second POST = %d: %s; want 429", resp.StatusCode, raw)
	}
	// Reads are not gated: polling survives a spent submission budget.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthz during rate limit = %d", resp2.StatusCode)
	}
}

func TestQueueBounds(t *testing.T) {
	// Constructed directly (no running workers) so the queue state is
	// deterministic. One total slot, background queued first: a batch
	// arrival evicts it, and a second batch arrival — with nothing less
	// urgent queued — is shed itself.
	s := &Server{reg: &metrics.Registry{}, log: slog.New(slog.NewTextHandler(io.Discard, nil))}
	s.adm = newAdmitter(1, [numClasses]int{}, [numClasses]int{}, s.reg)
	for c := class(0); c < numClasses; c++ {
		l := metrics.Labels{Class: c.String()}
		s.admitted[c] = s.reg.Counter("ringmeshd_admit_total", l)
		s.shed[c] = s.reg.Counter("ringmeshd_shed_total", l)
	}
	bg := newJob("a", kindRun, 8)
	bg.class = classBackground
	if err := s.admit(bg); err != nil {
		t.Fatalf("admit into empty queue: %v", err)
	}
	batch := newJob("b", kindRun, 8)
	batch.class = classBatch
	if err := s.admit(batch); err != nil {
		t.Fatalf("admit at full queue with lower class queued: %v; want eviction", err)
	}
	if !bg.finished() {
		t.Fatal("background victim not finished after eviction")
	}
	if bg.view().Error == nil || bg.view().Error.Kind != "shed" {
		t.Fatalf("victim error = %+v; want kind shed", bg.view().Error)
	}
	var se *shedError
	batch2 := newJob("c", kindRun, 8)
	batch2.class = classBatch
	if err := s.admit(batch2); !errors.As(err, &se) {
		t.Fatalf("admit into full queue = %v; want shedError", err)
	}
	s.draining = true
	d := newJob("d", kindRun, 8)
	if err := s.admit(d); !errors.Is(err, errDraining) {
		t.Fatalf("admit while draining = %v; want errDraining", err)
	}
}

func TestDrainRejectsNewAndFinishesInFlight(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})

	req := runRequest{Config: testConfig(), Options: testOptions()}
	resp, raw := postJSON(t, ts.URL+"/v1/runs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d: %s", resp.StatusCode, raw)
	}
	id := decodeDoc(t, raw).ID

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// The accepted job finished despite the drain...
	if d := awaitJob(t, ts.URL, id, false); d.State != JobDone {
		t.Fatalf("drained job state = %s", d.State)
	}
	// ...new work is refused with 503...
	resp, raw = postJSON(t, ts.URL+"/v1/runs", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %d: %s; want 503", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining 503 without Retry-After header")
	}
	// ...liveness stays green (the process is fine, it is just not
	// taking work) while readiness reflects the drain.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining = %d; want 200", resp2.StatusCode)
	}
	resp3, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d; want 503", resp3.StatusCode)
	}
	// Drain is idempotent.
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
}

func TestDrainDeadlineCancelsJobs(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})

	// A run long enough that the drain deadline fires first.
	long := &ringmesh.RunOptions{WarmupCycles: 500_000_000, BatchCycles: 1000, Batches: 1}
	resp, raw := postJSON(t, ts.URL+"/v1/runs", runRequest{Config: testConfig(), Options: long})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d: %s", resp.StatusCode, raw)
	}
	id := decodeDoc(t, raw).ID

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v; want deadline exceeded", err)
	}
	d := awaitJob(t, ts.URL, id, true)
	if d.State != JobFailed || d.Error == nil || d.Error.Kind != "canceled" {
		t.Fatalf("canceled job = state %s error %+v; want failed/canceled", d.State, d.Error)
	}
	if d.Error.Status != http.StatusServiceUnavailable {
		t.Fatalf("canceled job status = %d; want 503", d.Error.Status)
	}
}

func TestWatchStreamsProgressAndDone(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Long enough for at least one progress event before completion.
	opt := &ringmesh.RunOptions{WarmupCycles: 200_000, BatchCycles: 100_000, Batches: 2}
	resp, raw := postJSON(t, ts.URL+"/v1/runs", runRequest{Config: testConfig(), Options: opt})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d: %s", resp.StatusCode, raw)
	}
	id := decodeDoc(t, raw).ID

	watch, err := http.Get(ts.URL + "/v1/jobs/" + id + "?watch=1")
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Body.Close()
	if ct := watch.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch content-type = %q", ct)
	}

	var events []string
	var lastData string
	sc := bufio.NewScanner(watch.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
			lastData = "" // the payload for this event hasn't arrived yet
		}
		if strings.HasPrefix(line, "data: ") {
			lastData = strings.TrimPrefix(line, "data: ")
		}
		if len(events) > 0 && events[len(events)-1] == "done" && lastData != "" {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 || events[len(events)-1] != "done" {
		t.Fatalf("events = %v; want trailing done", events)
	}
	final := decodeDoc(t, []byte(lastData))
	if final.State != JobDone || len(final.Result) == 0 {
		t.Fatalf("final SSE document = %+v; want done with result", final)
	}
}

func TestMetricsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, err = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	for _, want := range []string{"ringmeshd_cache_hits_total", "ringmeshd_cache_misses_total", "ringmeshd_queue_depth"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("metrics output missing %s:\n%s", want, buf.String())
		}
	}
}

func TestJobRetention(t *testing.T) {
	s := &Server{jobs: map[string]*job{}}
	var first string
	for i := 0; i < jobRetain+10; i++ {
		j := newJob("", "run", 8)
		j.finish(&ringmesh.Result{}, nil, false, nil)
		s.register(j)
		if i == 0 {
			first = j.id
		}
	}
	if len(s.jobs) != jobRetain {
		t.Fatalf("retained %d jobs; want %d", len(s.jobs), jobRetain)
	}
	if _, ok := s.lookup(first); ok {
		t.Fatalf("oldest finished job survived retention")
	}
	if _, ok := s.lookup(fmt.Sprintf("j%06d", jobRetain+10)); !ok {
		t.Fatalf("newest job missing")
	}
}
