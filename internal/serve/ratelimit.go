package serve

import (
	"sync"
	"time"
)

// maxClients is a hard bound on the limiter's per-client state. At
// the bound, buckets that have refilled to full burst (idle clients)
// are pruned first; if every bucket is still mid-debt, the least
// recently seen one is evicted so the map can never grow past the
// bound. Evicting live debt forgives at most one client's deficit —
// bounded memory wins over perfect debt retention, because unbounded
// growth is itself a denial of service.
const maxClients = 4096

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter is a per-client token bucket: each client may sustain
// rate requests per second with bursts up to burst. A nil limiter (or
// one with rate <= 0) allows everything. Safe for concurrent use.
type rateLimiter struct {
	rate  float64
	burst float64
	now   func() time.Time // injectable clock for tests

	mu      sync.Mutex
	clients map[string]*bucket
}

// newRateLimiter builds a limiter allowing rate requests/second per
// client with bursts of burst. rate <= 0 disables limiting (returns
// nil, which allow treats as permissive).
func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
		clients: map[string]*bucket{},
	}
}

// allow reports whether client may make a request now, consuming one
// token if so.
func (l *rateLimiter) allow(client string) bool {
	if l == nil {
		return true
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.clients[client]
	if !ok {
		if len(l.clients) >= maxClients {
			l.pruneLocked()
			// Pruning frees nothing when every client is mid-debt (a
			// flood of busy sources); enforce the bound by evicting the
			// least recently seen buckets instead of growing past it.
			for len(l.clients) >= maxClients {
				l.evictOldestLocked()
			}
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[client] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// pruneLocked drops buckets whose tokens have refilled to full burst —
// clients idle long enough to have forgotten nothing that matters.
// Caller holds l.mu.
func (l *rateLimiter) pruneLocked() {
	now := l.now()
	for k, b := range l.clients {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.clients, k)
		}
	}
}

// evictOldestLocked removes the least recently seen bucket. A linear
// scan, but it only runs when the map is at its hard bound and
// pruning freed nothing — the pathological case, not the steady
// state. Caller holds l.mu.
func (l *rateLimiter) evictOldestLocked() {
	var (
		oldestKey string
		oldest    time.Time
		found     bool
	)
	for k, b := range l.clients {
		if !found || b.last.Before(oldest) {
			oldestKey, oldest, found = k, b.last, true
		}
	}
	if found {
		delete(l.clients, oldestKey)
	}
}
