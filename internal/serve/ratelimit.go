package serve

import (
	"sync"
	"time"
)

// maxClients bounds the limiter's per-client state. When exceeded,
// buckets that have refilled to full burst (i.e. idle clients) are
// pruned; an attacker rotating source addresses can therefore evict
// only idle state, never another client's debt.
const maxClients = 4096

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter is a per-client token bucket: each client may sustain
// rate requests per second with bursts up to burst. A nil limiter (or
// one with rate <= 0) allows everything. Safe for concurrent use.
type rateLimiter struct {
	rate  float64
	burst float64
	now   func() time.Time // injectable clock for tests

	mu      sync.Mutex
	clients map[string]*bucket
}

// newRateLimiter builds a limiter allowing rate requests/second per
// client with bursts of burst. rate <= 0 disables limiting (returns
// nil, which allow treats as permissive).
func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		now:     time.Now,
		clients: map[string]*bucket{},
	}
}

// allow reports whether client may make a request now, consuming one
// token if so.
func (l *rateLimiter) allow(client string) bool {
	if l == nil {
		return true
	}
	now := l.now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.clients[client]
	if !ok {
		if len(l.clients) >= maxClients {
			l.pruneLocked()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[client] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// pruneLocked drops buckets whose tokens have refilled to full burst —
// clients idle long enough to have forgotten nothing that matters.
// Caller holds l.mu.
func (l *rateLimiter) pruneLocked() {
	now := l.now()
	for k, b := range l.clients {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.clients, k)
		}
	}
}
