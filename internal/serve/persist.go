package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ringmesh"
	"ringmesh/internal/metrics"
)

// diskFormatVersion tags the on-disk entry format. It is independent
// of the cache-key version (which is part of the key itself): bumping
// it invalidates every stored file regardless of key, which is the
// right lever when the file layout — not the simulation semantics —
// changes. A version-mismatched file is quarantined, never parsed.
const diskFormatVersion = "ringmeshd-disk-v1"

// entrySuffix names result files; everything else in the directory
// (temp files, the quarantine subdir) is ignored by lookups.
const entrySuffix = ".rmr"

// quarantineDir is the subdirectory corrupt entries are moved into
// for post-mortem inspection instead of being served or silently
// deleted.
const quarantineDir = "quarantine"

// diskStore is the durable tier under the in-memory result cache: one
// file per cache key, written via temp-file + atomic rename so a
// kill -9 mid-write can never leave a torn entry under a live name —
// readers see either the complete old file or the complete new one,
// never a prefix.
//
// On-disk format (version, checksum and length in a single header
// line, then the JSON payload):
//
//	ringmeshd-disk-v1 <sha256(payload) hex> <len(payload)>\n
//	<payload: ringmesh.Result as JSON>
//
// Every load re-verifies the header: a wrong version, length or
// checksum — a torn write that somehow got the entry name, a
// bit-flip, an operator editing files — quarantines the file and
// reports a miss, so the result is recomputed rather than served
// wrong. JSON round-trips float64 exactly (shortest-roundtrip
// encoding), so a replayed Result is bit-identical to the stored one.
//
// The store is shared-safe: N daemon replicas can mount one
// directory. Writers never collide destructively (temp names are
// unique, renames are atomic, and two writers racing on one key are
// writing identical bytes — results are deterministic), and a reader
// racing a quarantine rename simply misses.
type diskStore struct {
	dir string
	log *slog.Logger

	hits        *metrics.Counter
	misses      *metrics.Counter
	writes      *metrics.Counter
	quarantined *metrics.Counter
	ioErrors    *metrics.Counter
}

// newDiskStore opens (creating if needed) the store rooted at dir and
// registers its instruments in reg (nil disables instrumentation).
func newDiskStore(dir string, reg *metrics.Registry, log *slog.Logger) (*diskStore, error) {
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o755); err != nil {
		return nil, fmt.Errorf("serve: disk cache at %s: %w", dir, err)
	}
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &diskStore{
		dir:         dir,
		log:         log,
		hits:        reg.Counter("ringmeshd_disk_cache_hits_total", metrics.Labels{}),
		misses:      reg.Counter("ringmeshd_disk_cache_misses_total", metrics.Labels{}),
		writes:      reg.Counter("ringmeshd_disk_cache_writes_total", metrics.Labels{}),
		quarantined: reg.Counter("ringmeshd_disk_cache_quarantined_total", metrics.Labels{}),
		ioErrors:    reg.Counter("ringmeshd_disk_cache_io_errors_total", metrics.Labels{}),
	}, nil
}

// path returns the entry file for a cache key. Keys are hex digests
// (ringmesh.CacheKey), so they are always safe file names; the suffix
// keeps temp files and foreign droppings out of the namespace.
func (d *diskStore) path(key string) string {
	return filepath.Join(d.dir, key+entrySuffix)
}

// load returns the stored result for key, verifying the header before
// trusting a byte of payload. Corrupt or version-mismatched files are
// quarantined and reported as misses so the caller recomputes.
func (d *diskStore) load(key string) (ringmesh.Result, bool) {
	raw, err := os.ReadFile(d.path(key))
	if err != nil {
		if !os.IsNotExist(err) {
			d.ioErrors.Inc()
			d.log.Warn("disk cache read failed", "key", shortKey(key), "err", err)
		}
		d.misses.Inc()
		return ringmesh.Result{}, false
	}
	res, err := decodeEntry(raw)
	if err != nil {
		d.quarantine(key, err)
		d.misses.Inc()
		return ringmesh.Result{}, false
	}
	d.hits.Inc()
	return res, true
}

// store durably writes a result under key: marshal, temp file in the
// same directory, fsync, atomic rename. Failures are counted and
// logged but never propagated — the disk tier is an accelerator, and
// a write that did not land only costs a future recomputation.
func (d *diskStore) store(key string, res ringmesh.Result) {
	payload, err := json.Marshal(res)
	if err != nil {
		d.ioErrors.Inc()
		d.log.Warn("disk cache encode failed", "key", shortKey(key), "err", err)
		return
	}
	entry := encodeEntry(payload)
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		d.ioErrors.Inc()
		d.log.Warn("disk cache temp create failed", "key", shortKey(key), "err", err)
		return
	}
	// The rename is what publishes the entry; everything before it can
	// fail (or the process can die) without ever exposing a torn file.
	_, werr := tmp.Write(entry)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), d.path(key))
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		d.ioErrors.Inc()
		d.log.Warn("disk cache write failed", "key", shortKey(key), "err", werr)
		return
	}
	d.writes.Inc()
}

// quarantine moves a bad entry into the quarantine subdirectory so it
// can be inspected post-mortem but never served. Losing the rename
// race to another replica is fine — the file is gone either way.
func (d *diskStore) quarantine(key string, reason error) {
	d.quarantined.Inc()
	dst := filepath.Join(d.dir, quarantineDir, key+entrySuffix)
	if err := os.Rename(d.path(key), dst); err != nil && !os.IsNotExist(err) {
		// Could not move it aside (e.g. read-only mount): remove it so
		// it cannot be re-read forever, and surface the I/O trouble.
		d.ioErrors.Inc()
		_ = os.Remove(d.path(key))
	}
	d.log.Warn("disk cache entry quarantined", "key", shortKey(key), "reason", reason)
}

// encodeEntry renders the on-disk bytes for a payload.
func encodeEntry(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %d\n", diskFormatVersion, hex.EncodeToString(sum[:]), len(payload))
	return append([]byte(header), payload...)
}

// decodeEntry verifies an entry's header (version, length, checksum)
// and unmarshals the payload. Any mismatch is an error — the caller
// quarantines.
func decodeEntry(raw []byte) (ringmesh.Result, error) {
	var res ringmesh.Result
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return res, fmt.Errorf("no header line")
	}
	fields := strings.Fields(string(raw[:nl]))
	if len(fields) != 3 {
		return res, fmt.Errorf("malformed header %q", string(raw[:nl]))
	}
	if fields[0] != diskFormatVersion {
		return res, fmt.Errorf("format version %q, want %q", fields[0], diskFormatVersion)
	}
	wantLen, err := strconv.Atoi(fields[2])
	if err != nil {
		return res, fmt.Errorf("bad length field %q", fields[2])
	}
	payload := raw[nl+1:]
	if len(payload) != wantLen {
		return res, fmt.Errorf("payload %d bytes, header says %d (torn write?)", len(payload), wantLen)
	}
	sum := sha256.Sum256(payload)
	if got := hex.EncodeToString(sum[:]); got != fields[1] {
		return res, fmt.Errorf("checksum mismatch (stored %.8s, computed %.8s)", fields[1], got)
	}
	if err := json.Unmarshal(payload, &res); err != nil {
		return res, fmt.Errorf("payload decode: %w", err)
	}
	return res, nil
}
