package serve

// This file implements multi-fidelity serving: the daemon can answer
// from three tiers — the result cache, the closed-form analytic
// estimator (microseconds, labeled with its recorded error bound),
// and the exact simulator. Clients pick a tier with the request's
// fidelity field:
//
//	"simulate" (or omitted)  exact simulation, exactly as before
//	"analytic"               inline closed-form estimate, never queued
//	"auto"                   cache hit if available, else an analytic
//	                         answer plus a background "upgrade to
//	                         exact" job whose ID rides in the response
//
// Auto is an admission policy, not an answer tier: it is resolved
// here, before cache keys exist, and never enters a key. Analytic
// results live under their own cache keys (fidelity joins the key),
// so an estimate can never be served as an exact result. When the
// analytic model refuses a configuration (ErrUnsupported), auto falls
// back to a normal exact enqueue — refusal costs a queue slot, never
// a wrong labeled answer.
//
// Under admission pressure, background-class runs whose client did
// not name a tier degrade to analytic-with-upgrade instead of 503:
// the caller gets a bounded estimate now and (best-effort) the exact
// result later, observable via the ringmeshd_fidelity_* counters.

import (
	"net/http"
	"sort"
	"time"

	"ringmesh"
	"ringmesh/internal/fidelity"
	"ringmesh/internal/metrics"
	"ringmesh/internal/obs"
)

// fidelityBuckets spans 1µs to ~16s in x4 steps: inline analytic
// answers land in the microsecond decades and simulations in seconds,
// and one bucket family must hold both for the per-fidelity latency
// histograms to be comparable.
var fidelityBuckets = metrics.ExpBuckets(1e-6, 4, 12)

// resolveFidelity merges a request's top-level fidelity field into its
// config (the top-level field wins) and resolves the serving mode:
// fidelity.Simulate, fidelity.Analytic or fidelity.Auto. Auto is
// cleared from the config here so cache keys are always computed for
// a concrete tier. explicit reports whether the client named a tier
// itself, which gates shed-pressure degradation — a client that
// explicitly asked to "simulate" is never silently answered
// analytically.
func (s *Server) resolveFidelity(reqFid string, cfg *ringmesh.Config) (mode string, explicit bool, err error) {
	if reqFid != "" {
		cfg.Fidelity = reqFid
	}
	raw := cfg.Fidelity
	if raw == fidelity.Auto {
		cfg.Fidelity = ""
		s.fidRequests[fidelity.Auto].Inc()
		return fidelity.Auto, false, nil
	}
	mode, err = fidelity.Normalize(raw)
	if err != nil {
		return "", false, err
	}
	s.fidRequests[mode].Inc()
	return mode, raw != "", nil
}

// jobFidelity labels a queued job's answer tier for the per-fidelity
// latency histograms.
func jobFidelity(j *job) string {
	if f, err := fidelity.Normalize(j.cfg.Fidelity); err == nil {
		return f
	}
	return fidelity.Simulate
}

// observeFidelityAnswer records one inline analytic answer's latency.
func (s *Server) observeFidelityAnswer(start time.Time) {
	s.histogram("ringmeshd_fidelity_answer_seconds",
		metrics.Labels{Fidelity: fidelity.Analytic}, fidelityBuckets).
		Observe(time.Since(start).Seconds())
}

// answerAnalytic computes the analytic-tier answer for one run
// configuration through the result cache, under the analytic cache
// key — estimates and exact results never collide, and identical
// estimates coalesce. The result carries the "analytic" fidelity
// label and its recorded error bound, attached by ringmesh.Estimate.
func (s *Server) answerAnalytic(cfg ringmesh.Config, opt ringmesh.RunOptions, tr *obs.Trace) (ringmesh.Result, bool, error) {
	acfg := cfg
	acfg.Fidelity = fidelity.Analytic
	key, err := ringmesh.CacheKey(acfg, opt)
	if err != nil {
		return ringmesh.Result{}, false, err
	}
	return s.cache.do(s.baseCtx, key, tr, func() (ringmesh.Result, error) {
		return ringmesh.Estimate(acfg, opt)
	})
}

// tryUpgrade admits a background-class job that will land the exact
// result under the exact cache key, upgrading an analytic answer
// after the fact. Admission is best-effort: under the same pressure
// that degraded the original request the upgrade is usually shed too,
// and the caller simply gets no upgrade ID.
func (s *Server) tryUpgrade(u *job) (string, bool) {
	u.class = classBackground
	s.register(u)
	u.enqueuedAt = time.Now()
	if err := s.admit(u); err != nil {
		s.unregister(u)
		s.log.Info("upgrade job not admitted", "kind", u.kind, "err", err)
		return "", false
	}
	s.accepted.Inc()
	s.fidUpgrades.Inc()
	s.log.Info("upgrade job enqueued", "job", u.id, "kind", u.kind)
	return u.id, true
}

// upgradeRun builds and admits the exact-tier upgrade for one run.
func (s *Server) upgradeRun(cfg ringmesh.Config, opt ringmesh.RunOptions, key string) (string, bool) {
	u := newJob("", kindRun, s.opt.TraceSpans)
	u.cfg, u.opt, u.key = cfg, opt, key
	u.cfg.Fidelity = ""
	return s.tryUpgrade(u)
}

// serveAnalyticRun answers an explicit analytic-fidelity run inline:
// microseconds of closed-form evaluation instead of a queue slot. An
// estimator refusal is a 400 — the client asked for a tier that
// cannot answer this configuration.
func (s *Server) serveAnalyticRun(w http.ResponseWriter, r *http.Request, cfg ringmesh.Config, opt ringmesh.RunOptions, cls class, deadline time.Time) {
	start := time.Now()
	j := newJob("", kindRun, s.opt.TraceSpans)
	j.cfg, j.opt = cfg, opt
	j.cfg.Fidelity = fidelity.Analytic
	j.class, j.deadline = cls, deadline
	res, cached, err := s.answerAnalytic(cfg, opt, j.tr)
	if err != nil {
		s.rejected.Inc()
		s.log.Warn("analytic run rejected", "client", clientKey(r), "err", err)
		writeError(w, http.StatusBadRequest, "analytic fidelity: %v", err)
		return
	}
	j.key, _ = ringmesh.CacheKey(j.cfg, opt)
	j.finish(&res, nil, cached, nil)
	s.register(j)
	s.accepted.Inc()
	s.completed.Inc()
	s.fidAnalyticAnswers.Inc()
	s.observeFidelityAnswer(start)
	s.log.Info("run answered analytically", "job", j.id,
		"family", j.family(), "client", clientKey(r))
	writeJSON(w, http.StatusOK, j.view())
}

// serveAutoRun implements the auto policy for one run after the exact
// cache probe missed: an inline analytic answer plus a background
// upgrade job. Reports whether the request was answered; an estimator
// refusal falls back to the normal exact enqueue (counted).
func (s *Server) serveAutoRun(w http.ResponseWriter, r *http.Request, j *job) bool {
	start := time.Now()
	res, cached, err := s.answerAnalytic(j.cfg, j.opt, j.tr)
	if err != nil {
		s.fidFallback.Inc()
		s.log.Info("auto fidelity falling back to exact",
			"client", clientKey(r), "err", err)
		return false
	}
	if id, ok := s.upgradeRun(j.cfg, j.opt, j.key); ok {
		j.setUpgrade(id)
	}
	j.finish(&res, nil, cached, nil)
	s.register(j)
	s.accepted.Inc()
	s.completed.Inc()
	s.fidAnalyticAnswers.Inc()
	s.observeFidelityAnswer(start)
	s.log.Info("run answered analytically (auto)", "job", j.id,
		"family", j.family(), "upgrade", j.upgradeID, "client", clientKey(r))
	writeJSON(w, http.StatusOK, j.view())
	return true
}

// degradeRun answers a background run that admission just shed with
// an analytic estimate instead of a 503, attaching a best-effort
// upgrade job. Reports whether the degrade succeeded; an estimator
// refusal leaves the shed rejection in place. The job stays
// registered (it holds the answer) and its journal record is already
// terminal — a crash cannot resurrect it.
func (s *Server) degradeRun(w http.ResponseWriter, r *http.Request, j *job) bool {
	start := time.Now()
	res, cached, err := s.answerAnalytic(j.cfg, j.opt, j.tr)
	if err != nil {
		return false
	}
	if id, ok := s.upgradeRun(j.cfg, j.opt, j.key); ok {
		j.setUpgrade(id)
	}
	j.markDegraded()
	j.finish(&res, nil, cached, nil)
	s.accepted.Inc()
	s.completed.Inc()
	s.fidDegraded.Inc()
	s.fidAnalyticAnswers.Inc()
	s.observeFidelityAnswer(start)
	s.log.Warn("background run degraded to analytic under pressure",
		"job", j.id, "upgrade", j.upgradeID, "client", clientKey(r))
	writeJSON(w, http.StatusOK, j.view())
	return true
}

// serveAutoSweep answers an auto sweep inline when every point is
// available from the exact cache or the analytic model: cached exact
// points keep their full fidelity, the rest are analytic-labeled, and
// one background upgrade sweep lands the exact curve later. Reports
// whether the request was answered; any estimator refusal falls back
// to the normal exact enqueue (counted).
func (s *Server) serveAutoSweep(w http.ResponseWriter, r *http.Request, j *job) bool {
	start := time.Now()
	points := make([]ringmesh.SweepPoint, 0, len(j.sizes))
	analytic := 0
	allCached := len(j.sizes) > 0
	for _, n := range j.sizes {
		cfg := j.cfg
		cfg.Topology = ""
		cfg.Nodes = n
		key, err := ringmesh.CacheKey(cfg, j.opt)
		if err != nil {
			return false // unreachable: every size validated at submission
		}
		if res, ok := s.cache.get(key); ok {
			points = append(points, ringmesh.SweepPoint{
				Nodes: n, Topology: resolveTopology(cfg), Result: res, Attempts: 1,
			})
			continue
		}
		res, cached, err := s.answerAnalytic(cfg, j.opt, j.tr)
		if err != nil {
			s.fidFallback.Inc()
			s.log.Info("auto sweep falling back to exact", "nodes", n,
				"client", clientKey(r), "err", err)
			return false
		}
		analytic++
		if !cached {
			allCached = false
		}
		points = append(points, ringmesh.SweepPoint{
			Nodes: n, Topology: resolveTopology(cfg), Result: res, Attempts: 1,
		})
	}
	sort.Slice(points, func(a, b int) bool { return points[a].Nodes < points[b].Nodes })
	if analytic > 0 {
		u := newJob("", kindSweep, s.opt.TraceSpans)
		u.cfg, u.opt = j.cfg, j.opt
		u.cfg.Fidelity = ""
		u.sizes = append([]int(nil), j.sizes...)
		if id, ok := s.tryUpgrade(u); ok {
			j.setUpgrade(id)
		}
		s.fidAnalyticAnswers.Inc()
		s.observeFidelityAnswer(start)
	}
	j.finish(nil, points, allCached, nil)
	s.register(j)
	s.accepted.Inc()
	s.completed.Inc()
	s.log.Info("sweep answered analytically (auto)", "job", j.id,
		"points", len(points), "analytic", analytic, "upgrade", j.upgradeID,
		"client", clientKey(r))
	writeJSON(w, http.StatusOK, j.view())
	return true
}

// serveAutoBatch answers a batch inline when every entry is available
// without simulating: auto entries from the exact cache or the
// analytic model, explicit-analytic entries from the model, and
// explicit-simulate entries only on a cache hit. One background
// upgrade batch re-runs the analytically-answered auto entries at
// exact fidelity. Reports whether the request was answered; anything
// requiring a simulation falls back to the normal enqueue (counted).
func (s *Server) serveAutoBatch(w http.ResponseWriter, r *http.Request, j *job, autoEntry []bool) bool {
	start := time.Now()
	items := make([]BatchItem, len(j.entries))
	var upgrade []batchEntry
	allCached := len(j.entries) > 0
	fallback := func(reason string, err error) bool {
		s.fidFallback.Inc()
		s.log.Info("auto batch falling back to exact", "reason", reason,
			"client", clientKey(r), "err", err)
		return false
	}
	for i, e := range j.entries {
		items[i].Index = i
		items[i].Topology = resolveTopology(e.Config)
		mode, err := fidelity.Normalize(e.Config.Fidelity)
		if err != nil {
			return fallback("entry fidelity", err) // unreachable: validated
		}
		if mode == fidelity.Analytic {
			res, cached, err := s.answerAnalytic(e.Config, e.Options, j.tr)
			if err != nil {
				return fallback("analytic entry refused", err)
			}
			items[i].Result, items[i].Cached = &res, cached
			if !cached {
				allCached = false
			}
			continue
		}
		key, err := ringmesh.CacheKey(e.Config, e.Options)
		if err != nil {
			return fallback("entry key", err) // unreachable: validated
		}
		if res, ok := s.cache.get(key); ok {
			items[i].Result, items[i].Cached = &res, true
			continue
		}
		if !autoEntry[i] {
			// An explicit-simulate entry with no cached result needs the
			// simulator; the whole batch takes the queue path.
			return fallback("uncached simulate entry", nil)
		}
		res, cached, err := s.answerAnalytic(e.Config, e.Options, j.tr)
		if err != nil {
			return fallback("analytic refused", err)
		}
		items[i].Result, items[i].Cached = &res, cached
		if !cached {
			allCached = false
		}
		upgrade = append(upgrade, batchEntry{Config: e.Config, Options: e.Options})
	}
	if len(upgrade) > 0 {
		u := newJob("", kindBatch, s.opt.TraceSpans)
		u.entries = upgrade
		if id, ok := s.tryUpgrade(u); ok {
			j.setUpgrade(id)
		}
		s.fidAnalyticAnswers.Inc()
		s.observeFidelityAnswer(start)
	}
	_ = j.finishBatch(items, allCached)
	s.register(j)
	s.accepted.Inc()
	s.completed.Inc()
	s.log.Info("batch answered analytically (auto)", "job", j.id,
		"entries", len(items), "upgraded", len(upgrade), "upgrade", j.upgradeID,
		"client", clientKey(r))
	writeJSON(w, http.StatusOK, j.view())
	return true
}
