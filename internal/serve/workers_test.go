package serve

import (
	"bytes"
	"context"
	"net/http"
	"testing"
)

// TestJobWorkersSplitsBudget pins the pool split: the job-level pool
// shrinks so jobWorkers x EngineWorkers never exceeds the Workers
// budget, and degenerate options normalize rather than explode.
func TestJobWorkersSplitsBudget(t *testing.T) {
	cases := []struct {
		name            string
		workers, engine int
		wantJobs        int
	}{
		{"serial default", 4, 0, 4},
		{"even split", 8, 2, 4},
		{"whole budget to one job", 4, 4, 1},
		{"engine demand past the budget clamps", 2, 16, 1},
		{"uneven split rounds down", 5, 2, 2},
		{"single worker", 1, 3, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := New(Options{Workers: tc.workers, EngineWorkers: tc.engine})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { _ = s.Drain(context.Background()) }()
			if got := s.jobWorkers(); got != tc.wantJobs {
				t.Errorf("Workers=%d EngineWorkers=%d: jobWorkers = %d, want %d",
					tc.workers, tc.engine, got, tc.wantJobs)
			}
			if tot := s.jobWorkers() * s.opt.EngineWorkers; tot > max(1, tc.workers) {
				t.Errorf("split oversubscribes: %d job x %d engine > %d budget",
					s.jobWorkers(), s.opt.EngineWorkers, tc.workers)
			}
		})
	}
}

// TestWorkersFieldDoesNotSplitCache pins the serving-side half of the
// execution-only contract: the same logical run submitted with
// different (client-chosen) workers values is one cache entry, and the
// cached result is byte-identical — the parallel engine cannot be
// observed through the API.
func TestWorkersFieldDoesNotSplitCache(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, EngineWorkers: 2})

	cfg := testConfig()
	cfg.Workers = 4 // capped to the server's per-job budget
	resp, raw := postJSON(t, ts.URL+"/v1/runs", runRequest{Config: cfg, Options: testOptions()})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST = %d: %s", resp.StatusCode, raw)
	}
	first := awaitJob(t, ts.URL, decodeDoc(t, raw).ID, false)
	if first.Cached {
		t.Fatal("first run reported cached")
	}

	cfg.Workers = 0 // a different spelling of the same run
	resp, raw = postJSON(t, ts.URL+"/v1/runs", runRequest{Config: cfg, Options: testOptions()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-submission with different workers = %d: %s", resp.StatusCode, raw)
	}
	second := decodeDoc(t, raw)
	if second.State != JobDone || !second.Cached {
		t.Fatalf("re-submission = state %s cached %v; want done, cached", second.State, second.Cached)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatalf("cached result differs across workers values:\n%s\nvs\n%s", first.Result, second.Result)
	}
}
