package serve

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"ringmesh"
	"ringmesh/internal/metrics"
)

// journalVersion prefixes every record; bump it whenever the payload
// schema changes incompatibly so old logs are quarantined, not
// misparsed.
const journalVersion = "ringmeshd-wal-v1"

// Journal ops, one per job state transition. A job is "unfinished" —
// and replayed on restart — when its newest record is accepted or
// running.
const (
	opAccepted = "accepted"
	opRunning  = "running"
	opDone     = "done"
	opFailed   = "failed"
)

// journalRecord is one WAL line's payload. accepted records carry the
// full submission (enough to rebuild and re-run the job); later
// transitions carry only the ID and op. Results are deliberately NOT
// journaled — the disk cache tier already persists them, and a
// replayed job whose work finished before the crash re-resolves
// through the cache without re-simulating.
type journalRecord struct {
	Op       string               `json:"op"`
	ID       string               `json:"id"`
	Kind     string               `json:"kind,omitempty"`
	Class    string               `json:"class,omitempty"`
	Deadline int64                `json:"deadline_unix_ns,omitempty"`
	Config   *ringmesh.Config     `json:"config,omitempty"`
	Options  *ringmesh.RunOptions `json:"options,omitempty"`
	Sizes    []int                `json:"sizes,omitempty"`
	Entries  []batchEntry         `json:"entries,omitempty"`
}

// encodeRecord frames one record as a single self-checking line:
//
//	ringmeshd-wal-v1 <sha256(payload) hex> <len(payload)> <payload>\n
//
// The payload is compact JSON, which cannot contain a raw newline, so
// a torn write only ever corrupts the final line and the replay
// scanner resynchronizes on the next one.
func encodeRecord(rec journalRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload)
	line := make([]byte, 0, len(journalVersion)+len(payload)+80)
	line = append(line, journalVersion...)
	line = append(line, ' ')
	line = append(line, hex.EncodeToString(sum[:])...)
	line = strconv.AppendInt(append(line, ' '), int64(len(payload)), 10)
	line = append(line, ' ')
	line = append(line, payload...)
	line = append(line, '\n')
	return line, nil
}

// decodeRecord parses one journal line (without trailing newline),
// verifying version, length and checksum before trusting a byte of
// JSON. It must reject arbitrary corruption with an error — never
// panic — and is fuzzed to hold that contract.
func decodeRecord(line []byte) (journalRecord, error) {
	var rec journalRecord
	s := string(line)
	rest, ok := strings.CutPrefix(s, journalVersion+" ")
	if !ok {
		return rec, fmt.Errorf("bad version prefix")
	}
	sumHex, rest, ok := strings.Cut(rest, " ")
	if !ok {
		return rec, fmt.Errorf("missing checksum field")
	}
	lenStr, payload, ok := strings.Cut(rest, " ")
	if !ok {
		return rec, fmt.Errorf("missing length field")
	}
	n, err := strconv.Atoi(lenStr)
	if err != nil || n < 0 {
		return rec, fmt.Errorf("bad length field %q", lenStr)
	}
	if n != len(payload) {
		return rec, fmt.Errorf("payload %d bytes, header says %d (torn write?)", len(payload), n)
	}
	sum := sha256.Sum256([]byte(payload))
	if got := hex.EncodeToString(sum[:]); got != sumHex {
		return rec, fmt.Errorf("checksum mismatch (stored %.8s, computed %.8s)", sumHex, got)
	}
	if err := json.Unmarshal([]byte(payload), &rec); err != nil {
		return rec, fmt.Errorf("payload decode: %w", err)
	}
	if rec.Op == "" || rec.ID == "" {
		return rec, fmt.Errorf("record missing op or id")
	}
	return rec, nil
}

// journalFile names the log inside the journal directory.
const journalFile = "journal.wal"

// compactEvery bounds journal growth: after this many terminal
// records the log is rewritten down to just the live jobs.
const compactEvery = 1024

// jobJournal is the crash-safety log: an append-only file of
// checksummed state-transition records, fsync'd per append so an
// accepted job survives kill -9. Replay on startup re-enqueues
// unfinished jobs under their original IDs and classes; compaction
// rewrites the log to only the records that still matter, with the
// same temp-file + fsync + atomic-rename discipline as the disk cache.
type jobJournal struct {
	mu        sync.Mutex
	dir       string
	f         *os.File
	log       *slog.Logger
	terminals int // terminal records appended since last compaction

	appends     *metrics.Counter
	appendErrs  *metrics.Counter
	replayed    *metrics.Counter
	quarantined *metrics.Counter
	compactions *metrics.Counter
}

// openJournal opens (creating if needed) the journal rooted at dir and
// registers its instruments in reg. The caller replays before
// accepting new work.
func openJournal(dir string, reg *metrics.Registry, log *slog.Logger) (*jobJournal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: journal at %s: %w", dir, err)
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("serve: journal open: %w", err)
	}
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &jobJournal{
		dir: dir,
		f:   f,
		log: log,

		appends:     reg.Counter("ringmeshd_journal_appends_total", metrics.Labels{}),
		appendErrs:  reg.Counter("ringmeshd_journal_append_errors_total", metrics.Labels{}),
		replayed:    reg.Counter("ringmeshd_journal_replayed_total", metrics.Labels{}),
		quarantined: reg.Counter("ringmeshd_journal_quarantined_total", metrics.Labels{}),
		compactions: reg.Counter("ringmeshd_journal_compactions_total", metrics.Labels{}),
	}, nil
}

// append durably writes one record (write + fsync under the lock, so
// records land in transition order). Journal IO failure must never
// take down serving: it is counted and logged, and the job proceeds
// with reduced crash-safety.
func (w *jobJournal) append(rec journalRecord) {
	line, err := encodeRecord(rec)
	if err != nil {
		w.appendErrs.Inc()
		w.log.Error("journal encode failed", "id", rec.ID, "op", rec.Op, "err", err)
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err = w.f.Write(line); err == nil {
		err = w.f.Sync()
	}
	if err != nil {
		w.appendErrs.Inc()
		w.log.Error("journal append failed", "id", rec.ID, "op", rec.Op, "err", err)
		return
	}
	w.appends.Inc()
	if rec.Op == opDone || rec.Op == opFailed {
		w.terminals++
	}
}

// needsCompaction reports whether enough terminal records have
// accumulated since the last rewrite to be worth reclaiming.
func (w *jobJournal) needsCompaction() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.terminals >= compactEvery
}

// replay scans the journal and returns the accepted records of jobs
// with no terminal record, in acceptance order, plus the highest
// numeric ID seen (so the server's ID counter resumes past every
// journaled ID and replayed jobs keep their names without collisions).
// A corrupt or torn line is quarantined and scanning continues — one
// bad record never hides the rest of the log.
func (w *jobJournal) replay() (unfinished []journalRecord, maxID int64, err error) {
	f, err := os.Open(filepath.Join(w.dir, journalFile))
	if err != nil {
		return nil, 0, fmt.Errorf("serve: journal replay: %w", err)
	}
	defer f.Close()

	accepted := make(map[string]journalRecord)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec, derr := decodeRecord(line)
		if derr != nil {
			w.quarantineLine(line, lineNo, derr)
			continue
		}
		switch rec.Op {
		case opAccepted:
			if _, dup := accepted[rec.ID]; !dup {
				accepted[rec.ID] = rec
				order = append(order, rec.ID)
			}
		case opDone, opFailed:
			delete(accepted, rec.ID)
		}
		if n, ok := numericID(rec.ID); ok && n > maxID {
			maxID = n
		}
	}
	if serr := sc.Err(); serr != nil {
		return nil, 0, fmt.Errorf("serve: journal scan: %w", serr)
	}
	for _, id := range order {
		if rec, ok := accepted[id]; ok {
			unfinished = append(unfinished, rec)
		}
	}
	return unfinished, maxID, nil
}

// quarantineLine preserves an un-decodable journal line for
// post-mortem inspection instead of silently dropping it.
func (w *jobJournal) quarantineLine(line []byte, lineNo int, cause error) {
	w.quarantined.Inc()
	qdir := filepath.Join(w.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		w.log.Error("journal quarantine dir failed", "err", err)
		return
	}
	name := filepath.Join(qdir, fmt.Sprintf("line-%06d.rec", lineNo))
	if err := os.WriteFile(name, append(append([]byte(nil), line...), '\n'), 0o644); err != nil {
		w.log.Error("journal quarantine write failed", "err", err)
		return
	}
	w.log.Warn("journal record quarantined", "line", lineNo, "file", name, "cause", cause)
}

// compact rewrites the journal down to the accepted records of live
// (still queued or running) jobs: temp file, fsync, atomic rename —
// a crash mid-compaction leaves either the complete old log or the
// complete new one, never a mix.
func (w *jobJournal) compact(live []journalRecord) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	tmp, err := os.CreateTemp(w.dir, ".journal-*.tmp")
	if err != nil {
		return fmt.Errorf("serve: journal compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	for _, rec := range live {
		line, err := encodeRecord(rec)
		if err != nil {
			tmp.Close()
			return fmt.Errorf("serve: journal compact encode: %w", err)
		}
		if _, err := tmp.Write(line); err != nil {
			tmp.Close()
			return fmt.Errorf("serve: journal compact write: %w", err)
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("serve: journal compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: journal compact close: %w", err)
	}
	path := filepath.Join(w.dir, journalFile)
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("serve: journal compact rename: %w", err)
	}
	// Reopen the append handle: the old descriptor points at the
	// now-unlinked previous log.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("serve: journal reopen: %w", err)
	}
	w.f.Close()
	w.f = f
	w.terminals = 0
	w.compactions.Inc()
	return nil
}

// close releases the append handle after a final fsync.
func (w *jobJournal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	w.f.Sync()
	err := w.f.Close()
	w.f = nil
	return err
}

// numericID extracts the numeric suffix of a job ID ("j000042" → 42).
func numericID(id string) (int64, bool) {
	s := strings.TrimPrefix(id, "j")
	if s == id || s == "" {
		return 0, false
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// acceptedRecord builds the opAccepted record for a job — the one
// record that must carry everything needed to rebuild it after a
// crash.
func acceptedRecord(j *job) journalRecord {
	rec := journalRecord{
		Op:    opAccepted,
		ID:    j.id,
		Kind:  j.kind,
		Class: j.class.String(),
		Sizes: j.sizes,
	}
	if !j.deadline.IsZero() {
		rec.Deadline = j.deadline.UnixNano()
	}
	if j.kind == kindBatch {
		rec.Entries = j.entries
	} else {
		cfg, opt := j.cfg, j.opt
		rec.Config = &cfg
		rec.Options = &opt
	}
	return rec
}

// jobFromRecord rebuilds a job from its accepted record during replay.
// Cache keys are recomputed rather than journaled — key derivation may
// evolve between versions and must stay authoritative.
func jobFromRecord(rec journalRecord, traceSpans int) (*job, error) {
	cls, err := parseClass(rec.Class, classInteractive)
	if err != nil {
		return nil, err
	}
	j := newJob(rec.ID, rec.Kind, traceSpans)
	j.class = cls
	if rec.Deadline != 0 {
		j.deadline = time.Unix(0, rec.Deadline)
	}
	j.sizes = rec.Sizes
	switch rec.Kind {
	case kindBatch:
		if len(rec.Entries) == 0 {
			return nil, fmt.Errorf("batch record %s has no entries", rec.ID)
		}
		j.entries = rec.Entries
	default:
		if rec.Config == nil || rec.Options == nil {
			return nil, fmt.Errorf("record %s missing config or options", rec.ID)
		}
		j.cfg = *rec.Config
		j.opt = *rec.Options
		if rec.Kind == kindRun {
			key, err := ringmesh.CacheKey(j.cfg, j.opt)
			if err != nil {
				return nil, fmt.Errorf("record %s: %w", rec.ID, err)
			}
			j.key = key
		}
	}
	return j, nil
}
