package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ringmesh"
	"ringmesh/internal/metrics"
)

func res(latency float64) ringmesh.Result {
	return ringmesh.Result{LatencyCycles: latency}
}

func TestCacheHitAfterCompute(t *testing.T) {
	reg := &metrics.Registry{}
	c := newResultCache(4, nil, reg)
	ctx := context.Background()

	computes := 0
	compute := func() (ringmesh.Result, error) { computes++; return res(10), nil }

	r, cached, err := c.do(ctx, "k", nil, compute)
	if err != nil || cached || r.LatencyCycles != 10 {
		t.Fatalf("first do = (%v, %v, %v); want fresh 10", r.LatencyCycles, cached, err)
	}
	r, cached, err = c.do(ctx, "k", nil, compute)
	if err != nil || !cached || r.LatencyCycles != 10 {
		t.Fatalf("second do = (%v, %v, %v); want cached 10", r.LatencyCycles, cached, err)
	}
	if computes != 1 {
		t.Fatalf("computed %d times; want 1", computes)
	}
	if got, _ := c.get("k"); got.LatencyCycles != 10 {
		t.Fatalf("get = %v; want 10", got.LatencyCycles)
	}
	if c.hits.Value() != 2 || c.misses.Value() != 1 {
		t.Fatalf("hits=%d misses=%d; want 2/1", c.hits.Value(), c.misses.Value())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2, nil, nil)
	ctx := context.Background()
	for i, k := range []string{"a", "b", "c"} {
		v := float64(i)
		if _, _, err := c.do(ctx, k, nil, func() (ringmesh.Result, error) { return res(v), nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d; want 2", c.len())
	}
	if _, ok := c.get("a"); ok {
		t.Fatalf("oldest entry survived eviction")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("entry %q evicted; want kept", k)
		}
	}

	// Touching "b" must protect it from the next eviction.
	c.get("b")
	if _, _, err := c.do(ctx, "d", nil, func() (ringmesh.Result, error) { return res(3), nil }); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.get("b"); !ok {
		t.Fatalf("recently-used entry evicted")
	}
	if _, ok := c.get("c"); ok {
		t.Fatalf("least-recently-used entry kept")
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := newResultCache(4, nil, nil)
	ctx := context.Background()

	entered := make(chan struct{})
	release := make(chan struct{})
	computes := 0
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, cached, err := c.do(ctx, "k", nil, func() (ringmesh.Result, error) {
			computes++
			close(entered)
			<-release
			return res(7), nil
		})
		if err != nil || cached {
			t.Errorf("leader = (cached=%v, err=%v); want fresh", cached, err)
		}
	}()
	<-entered

	const waiters = 4
	var wg sync.WaitGroup
	results := make([]ringmesh.Result, waiters)
	cachedFlags := make([]bool, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, cached, err := c.do(ctx, "k", nil, func() (ringmesh.Result, error) {
				t.Error("waiter computed; want coalesced")
				return ringmesh.Result{}, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i], cachedFlags[i] = r, cached
		}(i)
	}
	// Waiters may still be between the inflight check and the wait;
	// give the scheduler a chance, then release the leader.
	close(release)
	wg.Wait()
	<-leaderDone

	for i := 0; i < waiters; i++ {
		if results[i].LatencyCycles != 7 || !cachedFlags[i] {
			t.Fatalf("waiter %d = (%v, cached=%v); want coalesced 7", i, results[i].LatencyCycles, cachedFlags[i])
		}
	}
	if computes != 1 {
		t.Fatalf("computed %d times; want 1", computes)
	}
}

func TestCacheDoesNotStoreErrorsOrStalls(t *testing.T) {
	c := newResultCache(4, nil, nil)
	ctx := context.Background()

	boom := errors.New("boom")
	if _, _, err := c.do(ctx, "err", nil, func() (ringmesh.Result, error) { return ringmesh.Result{}, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v; want boom", err)
	}
	if _, ok := c.get("err"); ok {
		t.Fatalf("error result was cached")
	}

	stalled := ringmesh.Result{Stalled: true}
	if _, cached, err := c.do(ctx, "stall", nil, func() (ringmesh.Result, error) { return stalled, nil }); err != nil || cached {
		t.Fatalf("stall do = (cached=%v, err=%v)", cached, err)
	}
	if _, ok := c.get("stall"); ok {
		t.Fatalf("stalled result was cached; a later run with a longer watchdog could differ")
	}
	if c.len() != 0 {
		t.Fatalf("len = %d; want 0", c.len())
	}
}

// waitForCount polls until the counter reaches want, failing the test
// after a generous deadline. Used where a test must know a waiter has
// joined a flight before poking the leader.
func waitForCount(t *testing.T, c *metrics.Counter, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Value() < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter stuck at %d; want %d", c.Value(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCacheWaiterPromotedOnRetryableLeaderFailure pins the
// single-flight failure contract: a leader that dies of an
// attempt-scoped cause (its context was canceled, its deadline passed,
// its wall-clock budget ran out) must not poison its waiters — a
// waiter with a live context is promoted to new leader and computes
// under its own budget.
func TestCacheWaiterPromotedOnRetryableLeaderFailure(t *testing.T) {
	for _, leaderErr := range []error{context.Canceled, context.DeadlineExceeded, ringmesh.ErrTimeout} {
		t.Run(leaderErr.Error(), func(t *testing.T) {
			reg := &metrics.Registry{}
			c := newResultCache(4, nil, reg)
			entered := make(chan struct{})
			release := make(chan struct{})

			leaderDone := make(chan error, 1)
			go func() {
				_, _, err := c.do(context.Background(), "k", nil, func() (ringmesh.Result, error) {
					close(entered)
					<-release
					return ringmesh.Result{}, leaderErr
				})
				leaderDone <- err
			}()
			<-entered

			waiterDone := make(chan struct{})
			var (
				r      ringmesh.Result
				cached bool
				werr   error
			)
			go func() {
				defer close(waiterDone)
				r, cached, werr = c.do(context.Background(), "k", nil, func() (ringmesh.Result, error) {
					return res(42), nil
				})
			}()
			// Only release the leader once the waiter is provably parked on
			// its flight; otherwise the waiter might arrive after the
			// failure and compute without ever being promoted.
			waitForCount(t, c.coalesced, 1)
			close(release)

			if err := <-leaderDone; !errors.Is(err, leaderErr) {
				t.Fatalf("leader err = %v; want %v", err, leaderErr)
			}
			<-waiterDone
			if werr != nil || cached || r.LatencyCycles != 42 {
				t.Fatalf("promoted waiter = (%v, cached=%v, err=%v); want fresh 42", r.LatencyCycles, cached, werr)
			}
			if c.promoted.Value() != 1 {
				t.Fatalf("promotions = %d; want 1", c.promoted.Value())
			}
			// The promoted waiter's result is cached for everyone after.
			if _, ok := c.get("k"); !ok {
				t.Fatal("promoted result not cached")
			}
		})
	}
}

// TestCacheWaiterInheritsDeterministicFailure is the other half of the
// contract: a failure that is a property of the inputs (same config,
// same outcome on any retry) is shared with waiters — no promotion, no
// wasted recompute.
func TestCacheWaiterInheritsDeterministicFailure(t *testing.T) {
	reg := &metrics.Registry{}
	c := newResultCache(4, nil, reg)
	entered := make(chan struct{})
	release := make(chan struct{})
	boom := errors.New("model panic")

	go c.do(context.Background(), "k", nil, func() (ringmesh.Result, error) {
		close(entered)
		<-release
		return ringmesh.Result{}, boom
	})
	<-entered

	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.do(context.Background(), "k", nil, func() (ringmesh.Result, error) {
			t.Error("waiter recomputed a deterministic failure")
			return ringmesh.Result{}, nil
		})
		waiterDone <- err
	}()
	waitForCount(t, c.coalesced, 1)
	close(release)

	if err := <-waiterDone; !errors.Is(err, boom) {
		t.Fatalf("waiter err = %v; want the leader's %v", err, boom)
	}
	if c.promoted.Value() != 0 {
		t.Fatalf("promotions = %d; want 0", c.promoted.Value())
	}
}

// TestCacheDeadWaiterNotPromoted: a waiter whose own context is
// already done when the leader fails retryably must not be promoted —
// it has no budget to compute under. It gets an error (its own or the
// leader's; both are honest) and goes away.
func TestCacheDeadWaiterNotPromoted(t *testing.T) {
	reg := &metrics.Registry{}
	c := newResultCache(4, nil, reg)
	entered := make(chan struct{})
	release := make(chan struct{})

	go c.do(context.Background(), "k", nil, func() (ringmesh.Result, error) {
		close(entered)
		<-release
		return ringmesh.Result{}, ringmesh.ErrTimeout
	})
	<-entered

	wctx, wcancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, _, err := c.do(wctx, "k", nil, func() (ringmesh.Result, error) {
			t.Error("dead waiter computed")
			return ringmesh.Result{}, nil
		})
		waiterDone <- err
	}()
	waitForCount(t, c.coalesced, 1)
	wcancel()
	close(release)

	if err := <-waiterDone; err == nil {
		t.Fatal("dead waiter got a nil error")
	}
	if c.promoted.Value() != 0 {
		t.Fatalf("promotions = %d; want 0", c.promoted.Value())
	}
}

func TestCacheWaiterCancellation(t *testing.T) {
	c := newResultCache(4, nil, nil)
	entered := make(chan struct{})
	release := make(chan struct{})
	go c.do(context.Background(), "k", nil, func() (ringmesh.Result, error) {
		close(entered)
		<-release
		return res(1), nil
	})
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.do(ctx, "k", nil, func() (ringmesh.Result, error) { return res(0), nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v; want context.Canceled", err)
	}
	close(release)
}
