// Package serve is the ringmeshd serving subsystem: an HTTP/JSON
// front end over the ringmesh facade with a bounded job queue, a
// worker pool (internal/pool, shared with sweeps and the experiment
// driver), and a content-addressed result cache.
//
// The cache is sound because simulations are deterministic: a
// (topology, config, run-schedule, seed) tuple produces bit-identical
// Results on every run (the repo's golden tests prove it), so a
// result stored under the canonical hash of those inputs
// (ringmesh.CacheKey) can be replayed for any later request with the
// same key without approximation. See DESIGN.md §7.
package serve

import (
	"container/list"
	"context"
	"sync"
	"time"

	"ringmesh"
	"ringmesh/internal/metrics"
	"ringmesh/internal/obs"
)

// flight is one in-progress computation other requests with the same
// key wait on instead of re-simulating.
type flight struct {
	done chan struct{} // closed when res/err are readable
	res  ringmesh.Result
	err  error
}

// cacheEntry is one stored result.
type cacheEntry struct {
	key string
	res ringmesh.Result
}

// resultCache is a bounded LRU of simulation results keyed by
// ringmesh.CacheKey, with single-flight deduplication: concurrent
// requests for one key run the simulation exactly once and share its
// result. Safe for concurrent use.
//
// Only successful, non-stalled results are stored. Errors (timeouts,
// cancellations, panics) describe the attempt, not the configuration,
// and a stalled result depends on the watchdog horizon in ways the
// caller may want to retry with different options — both are cheap to
// reproduce relative to the cost of serving a wrong answer forever.
type resultCache struct {
	mu       sync.Mutex
	max      int
	order    *list.List               // front = most recently used
	entries  map[string]*list.Element // value: *cacheEntry
	inflight map[string]*flight

	hits      *metrics.Counter
	misses    *metrics.Counter
	coalesced *metrics.Counter
	evictions *metrics.Counter
}

// newResultCache returns a cache bounded to max entries (min 1),
// registering its counters and size gauge in reg (nil disables
// instrumentation; the cache still works).
func newResultCache(max int, reg *metrics.Registry) *resultCache {
	if max < 1 {
		max = 1
	}
	c := &resultCache{
		max:       max,
		order:     list.New(),
		entries:   map[string]*list.Element{},
		inflight:  map[string]*flight{},
		hits:      reg.Counter("ringmeshd_cache_hits_total", metrics.Labels{}),
		misses:    reg.Counter("ringmeshd_cache_misses_total", metrics.Labels{}),
		coalesced: reg.Counter("ringmeshd_cache_coalesced_total", metrics.Labels{}),
		evictions: reg.Counter("ringmeshd_cache_evictions_total", metrics.Labels{}),
	}
	if reg != nil {
		reg.Gauge("ringmeshd_cache_entries", metrics.Labels{}, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.entries))
		})
		reg.Gauge("ringmeshd_cache_inflight", metrics.Labels{}, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.inflight))
		})
	}
	return c
}

// get probes the cache without computing — the submission-time check
// that lets a hit complete a job before it is ever queued.
func (c *resultCache) get(key string) (ringmesh.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return ringmesh.Result{}, false
	}
	c.order.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*cacheEntry).res, true
}

// do returns the cached result for key, or computes it exactly once
// under single-flight: concurrent callers with the same key block on
// the leader's flight and share its outcome. The second return is
// true when the result was replayed rather than computed by this
// call — a stored hit or a coalesced wait on another caller's
// successful computation. tr (nil ok) receives a cache-store span
// when a leader's freshly-computed result is inserted.
func (c *resultCache) do(ctx context.Context, key string, tr *obs.Trace, compute func() (ringmesh.Result, error)) (ringmesh.Result, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits.Inc()
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.coalesced.Inc()
		c.mu.Unlock()
		select {
		case <-f.done:
			// A leader error is shared too (same inputs, same failure
			// class) but is not a replayed result.
			return f.res, f.err == nil, f.err
		case <-ctx.Done():
			return ringmesh.Result{}, false, ctx.Err()
		}
	}
	c.misses.Inc()
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.res, f.err = compute()

	storeStart := time.Now()
	stored := false
	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil && !f.res.Stalled {
		c.insertLocked(key, f.res)
		stored = true
	}
	c.mu.Unlock()
	close(f.done)
	if stored {
		tr.Record(obs.SpanRecord{
			Name: "cache-store", Start: storeStart, Dur: time.Since(storeStart),
			Attrs: []obs.Attr{{Key: "key", Value: shortKey(key)}},
		})
	}
	return f.res, false, f.err
}

// insertLocked stores a result, evicting from the LRU tail past the
// bound. Caller holds c.mu.
func (c *resultCache) insertLocked(key string, res ringmesh.Result) {
	if el, ok := c.entries[key]; ok { // lost a benign race; refresh
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for len(c.entries) > c.max {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
}

// shortKey abbreviates a cache key for span attributes and logs.
func shortKey(key string) string {
	if len(key) > 8 {
		return key[:8]
	}
	return key
}

// len reports the number of stored entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
