// Package serve is the ringmeshd serving subsystem: an HTTP/JSON
// front end over the ringmesh facade with a bounded job queue, a
// worker pool (internal/pool, shared with sweeps and the experiment
// driver), and a content-addressed result cache.
//
// The cache is sound because simulations are deterministic: a
// (topology, config, run-schedule, seed) tuple produces bit-identical
// Results on every run (the repo's golden tests prove it), so a
// result stored under the canonical hash of those inputs
// (ringmesh.CacheKey) can be replayed for any later request with the
// same key without approximation. See DESIGN.md §7.
package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"

	"ringmesh"
	"ringmesh/internal/metrics"
	"ringmesh/internal/obs"
)

// flight is one in-progress computation other requests with the same
// key wait on instead of re-simulating.
type flight struct {
	done chan struct{} // closed when res/err are readable
	res  ringmesh.Result
	err  error
}

// cacheEntry is one stored result.
type cacheEntry struct {
	key string
	res ringmesh.Result
}

// resultCache is a bounded LRU of simulation results keyed by
// ringmesh.CacheKey, with single-flight deduplication: concurrent
// requests for one key run the simulation exactly once and share its
// result. Safe for concurrent use.
//
// Only successful, non-stalled results are stored. Errors (timeouts,
// cancellations, panics) describe the attempt, not the configuration,
// and a stalled result depends on the watchdog horizon in ways the
// caller may want to retry with different options — both are cheap to
// reproduce relative to the cost of serving a wrong answer forever.
type resultCache struct {
	mu       sync.Mutex
	max      int
	order    *list.List               // front = most recently used
	entries  map[string]*list.Element // value: *cacheEntry
	inflight map[string]*flight

	// disk is the optional durable tier (nil: memory only). Memory
	// misses fall through to it, and freshly-computed results are
	// written through, so results survive restarts and N replicas can
	// share one mounted directory.
	disk *diskStore

	hits      *metrics.Counter
	misses    *metrics.Counter
	coalesced *metrics.Counter
	evictions *metrics.Counter
	promoted  *metrics.Counter
}

// newResultCache returns a cache bounded to max entries (min 1) over
// the optional durable tier disk (nil: memory only), registering its
// counters and size gauge in reg (nil disables instrumentation; the
// cache still works).
func newResultCache(max int, disk *diskStore, reg *metrics.Registry) *resultCache {
	if max < 1 {
		max = 1
	}
	c := &resultCache{
		max:       max,
		order:     list.New(),
		entries:   map[string]*list.Element{},
		inflight:  map[string]*flight{},
		disk:      disk,
		hits:      reg.Counter("ringmeshd_cache_hits_total", metrics.Labels{}),
		misses:    reg.Counter("ringmeshd_cache_misses_total", metrics.Labels{}),
		coalesced: reg.Counter("ringmeshd_cache_coalesced_total", metrics.Labels{}),
		evictions: reg.Counter("ringmeshd_cache_evictions_total", metrics.Labels{}),
		promoted:  reg.Counter("ringmeshd_cache_leader_promotions_total", metrics.Labels{}),
	}
	if reg != nil {
		reg.Gauge("ringmeshd_cache_entries", metrics.Labels{}, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.entries))
		})
		reg.Gauge("ringmeshd_cache_inflight", metrics.Labels{}, func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(len(c.inflight))
		})
	}
	return c
}

// get probes the cache without computing — the submission-time check
// that lets a hit complete a job before it is ever queued. A memory
// miss falls through to the durable tier; a disk hit is folded back
// into the LRU so subsequent probes stay off the filesystem.
func (c *resultCache) get(key string) (ringmesh.Result, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits.Inc()
		res := el.Value.(*cacheEntry).res
		c.mu.Unlock()
		return res, true
	}
	c.mu.Unlock()
	if res, ok := c.loadDisk(key); ok {
		return res, true
	}
	return ringmesh.Result{}, false
}

// loadDisk probes the durable tier (outside c.mu: file I/O must not
// block unrelated keys) and folds a hit into the memory LRU. Two
// goroutines racing here both read identical bytes; insertLocked
// handles the benign double-insert.
func (c *resultCache) loadDisk(key string) (ringmesh.Result, bool) {
	if c.disk == nil {
		return ringmesh.Result{}, false
	}
	res, ok := c.disk.load(key)
	if !ok {
		return ringmesh.Result{}, false
	}
	c.mu.Lock()
	c.insertLocked(key, res)
	c.mu.Unlock()
	c.hits.Inc()
	return res, true
}

// retryableLeaderErr reports whether a single-flight leader's failure
// is attempt-scoped — its context was canceled or its wall-clock
// budget ran out — rather than a property of the inputs. A waiter
// whose own context is still live should not inherit such an error:
// it re-contends for leadership and computes with its own budget.
func retryableLeaderErr(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, ringmesh.ErrTimeout)
}

// do returns the cached result for key, or computes it exactly once
// under single-flight: concurrent callers with the same key block on
// the leader's flight and share its outcome. The second return is
// true when the result was replayed rather than computed by this
// call — a stored hit or a coalesced wait on another caller's
// successful computation. tr (nil ok) receives a cache-store span
// when a leader's freshly-computed result is inserted.
func (c *resultCache) do(ctx context.Context, key string, tr *obs.Trace, compute func() (ringmesh.Result, error)) (ringmesh.Result, bool, error) {
	var f *flight
	for {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			c.hits.Inc()
			res := el.Value.(*cacheEntry).res
			c.mu.Unlock()
			return res, true, nil
		}
		if lf, ok := c.inflight[key]; ok {
			c.coalesced.Inc()
			c.mu.Unlock()
			select {
			case <-lf.done:
				if lf.err == nil {
					return lf.res, true, nil
				}
				// A deterministic failure (bad config, stall, model
				// panic) is shared: same inputs, same outcome. But an
				// attempt-scoped failure — the leader's context died or
				// its wall-clock budget ran out — says nothing about this
				// waiter's prospects while its own context is live, so it
				// loops back to re-contend; the first waiter through
				// becomes the new leader and computes under its own
				// budget.
				if retryableLeaderErr(lf.err) && ctx.Err() == nil {
					c.promoted.Inc()
					continue
				}
				return lf.res, false, lf.err
			case <-ctx.Done():
				return ringmesh.Result{}, false, ctx.Err()
			}
		}
		f = &flight{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()
		break
	}

	// Leader path. The durable tier is probed after flight
	// registration so concurrent requests coalesce onto one disk read,
	// and outside c.mu so file I/O never blocks unrelated keys.
	if res, ok := c.loadDisk(key); ok {
		f.res = res
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(f.done)
		return res, true, nil
	}

	c.misses.Inc()
	f.res, f.err = compute()

	storeStart := time.Now()
	stored := false
	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil && !f.res.Stalled {
		c.insertLocked(key, f.res)
		stored = true
	}
	c.mu.Unlock()
	if stored && c.disk != nil {
		// Write-through before waiters wake: once anyone observes the
		// result, it is already durable.
		c.disk.store(key, f.res)
	}
	close(f.done)
	if stored {
		tr.Record(obs.SpanRecord{
			Name: "cache-store", Start: storeStart, Dur: time.Since(storeStart),
			Attrs: []obs.Attr{{Key: "key", Value: shortKey(key)}},
		})
	}
	return f.res, false, f.err
}

// insertLocked stores a result, evicting from the LRU tail past the
// bound. Caller holds c.mu.
func (c *resultCache) insertLocked(key string, res ringmesh.Result) {
	if el, ok := c.entries[key]; ok { // lost a benign race; refresh
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for len(c.entries) > c.max {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
}

// shortKey abbreviates a cache key for span attributes and logs.
func shortKey(key string) string {
	if len(key) > 8 {
		return key[:8]
	}
	return key
}

// len reports the number of stored entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
