package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"ringmesh"
	"ringmesh/internal/obs"
)

// runRequest is the POST /v1/runs body: a facade Config (snake_case
// wire names, see ringmesh.Config) plus an optional run schedule
// (omitted: DefaultRunOptions).
type runRequest struct {
	Config  ringmesh.Config      `json:"config"`
	Options *ringmesh.RunOptions `json:"options"`
}

// sweepRequest is the POST /v1/sweeps body: a base Config measured at
// each size (topology re-derived per size, as SweepSizes does).
type sweepRequest struct {
	Config  ringmesh.Config      `json:"config"`
	Sizes   []int                `json:"sizes"`
	Options *ringmesh.RunOptions `json:"options"`
}

// errorBody is the JSON error envelope on non-2xx responses.
type errorBody struct {
	Error string `json:"error"`
}

// Handler returns the daemon's route table:
//
//	POST /v1/runs              submit one simulation (202, or 200 on a cache hit)
//	POST /v1/sweeps            submit a size sweep (202)
//	GET  /v1/jobs/{id}         poll a job document; ?watch=1 streams SSE
//	GET  /v1/jobs/{id}/trace   job lifecycle spans as Chrome trace-event JSON
//	GET  /healthz              200 while accepting work, 503 while draining
//	GET  /metrics              Prometheus-style text snapshot
//	GET  /debug/pprof/...      Go profiling endpoints (only with EnablePprof)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleRun)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.opt.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// clientKey identifies a client for rate limiting: the source address
// without the ephemeral port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// gate applies the submission-path request checks shared by runs and
// sweeps: drain state (a draining server accepts no new jobs, cached
// or not), rate limit, then body decode with unknown fields rejected.
// It reports false after writing the error response.
func (s *Server) gate(w http.ResponseWriter, r *http.Request, into any) bool {
	if s.drainingNow() {
		s.rejected.Inc()
		writeError(w, http.StatusServiceUnavailable, "%v", errDraining)
		return false
	}
	if !s.limit.allow(clientKey(r)) {
		s.rateLimited.Inc()
		writeError(w, http.StatusTooManyRequests, "rate limit exceeded")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opt.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, "bad request body: %v", err)
		return false
	}
	return true
}

// validateRunOptions checks the schedule fields the models never see
// (CacheKey validates the config itself).
func validateRunOptions(o ringmesh.RunOptions) error {
	switch {
	case o.WarmupCycles < 0:
		return fmt.Errorf("warmup_cycles %d < 0", o.WarmupCycles)
	case o.BatchCycles < 1:
		return fmt.Errorf("batch_cycles %d < 1", o.BatchCycles)
	case o.Batches < 1:
		return fmt.Errorf("batches %d < 1", o.Batches)
	case o.WatchdogCycles < 0:
		return fmt.Errorf("watchdog_cycles %d < 0", o.WatchdogCycles)
	case o.Timeout < 0:
		return fmt.Errorf("timeout_ns %d < 0", o.Timeout)
	default:
		return nil
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if !s.gate(w, r, &req) {
		return
	}
	validateStart := time.Now()
	opt := ringmesh.DefaultRunOptions()
	if req.Options != nil {
		opt = *req.Options
	}
	if err := validateRunOptions(opt); err != nil {
		s.log.Warn("run rejected", "client", clientKey(r), "err", err)
		writeError(w, http.StatusBadRequest, "invalid options: %v", err)
		return
	}
	key, err := ringmesh.CacheKey(req.Config, opt)
	if err != nil {
		// The model's own validation message, verbatim — the same text
		// NewSystem would produce.
		s.log.Warn("run rejected", "client", clientKey(r), "err", err)
		writeError(w, http.StatusBadRequest, "invalid config: %v", err)
		return
	}

	j := newJob("", "run", s.opt.TraceSpans)
	j.cfg, j.opt, j.key = req.Config, opt, key
	j.tr.Record(obs.SpanRecord{
		Name: "validate", Start: validateStart, Dur: time.Since(validateStart),
		Attrs: []obs.Attr{{Key: "key", Value: key[:8]}},
	})

	// Submission-time cache probe: a hit completes the job without it
	// ever touching the queue, so cached replays cost one map lookup
	// even when the queue is saturated.
	if res, ok := s.cache.get(key); ok {
		j.finish(&res, nil, true, nil)
		s.register(j)
		s.accepted.Inc()
		s.completed.Inc()
		s.log.Info("run served from cache", "job", j.id,
			"family", j.family(), "client", clientKey(r))
		writeJSON(w, http.StatusOK, j.view())
		return
	}

	s.register(j)
	// enqueuedAt is set before the queue send: a worker may pick the
	// job up the instant it lands in the channel, and it reads this
	// field to reconstruct the queue-wait span.
	enqStart := time.Now()
	j.enqueuedAt = enqStart
	if err := s.enqueue(j); err != nil {
		s.unregister(j)
		s.rejected.Inc()
		s.log.Warn("run rejected", "client", clientKey(r), "err", err)
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	j.tr.Record(obs.SpanRecord{Name: "enqueue", Start: enqStart, Dur: time.Since(enqStart)})
	s.accepted.Inc()
	s.log.Info("run accepted", "job", j.id, "family", j.family(),
		"client", clientKey(r))
	writeJSON(w, http.StatusAccepted, j.view())
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if !s.gate(w, r, &req) {
		return
	}
	validateStart := time.Now()
	opt := ringmesh.DefaultRunOptions()
	if req.Options != nil {
		opt = *req.Options
	}
	if err := validateRunOptions(opt); err != nil {
		writeError(w, http.StatusBadRequest, "invalid options: %v", err)
		return
	}
	if len(req.Sizes) == 0 {
		writeError(w, http.StatusBadRequest, "sizes must name at least one node count")
		return
	}
	// Validate every size up front so a doomed sweep fails at submit
	// with the model's message, not halfway through the job.
	for _, n := range req.Sizes {
		cfg := req.Config
		cfg.Topology = ""
		cfg.Nodes = n
		if _, err := ringmesh.CacheKey(cfg, opt); err != nil {
			writeError(w, http.StatusBadRequest, "invalid config at size %d: %v", n, err)
			return
		}
	}

	j := newJob("", "sweep", s.opt.TraceSpans)
	j.cfg, j.opt = req.Config, opt
	j.sizes = append([]int(nil), req.Sizes...)
	j.tr.Record(obs.SpanRecord{
		Name: "validate", Start: validateStart, Dur: time.Since(validateStart),
	})
	s.register(j)
	enqStart := time.Now()
	j.enqueuedAt = enqStart
	if err := s.enqueue(j); err != nil {
		s.unregister(j)
		s.rejected.Inc()
		s.log.Warn("sweep rejected", "client", clientKey(r), "err", err)
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	j.tr.Record(obs.SpanRecord{Name: "enqueue", Start: enqStart, Dur: time.Since(enqStart)})
	s.accepted.Inc()
	s.log.Info("sweep accepted", "job", j.id, "family", j.family(),
		"sizes", len(j.sizes), "client", clientKey(r))
	writeJSON(w, http.StatusAccepted, j.view())
}

// handleJobTrace serves a job's lifecycle spans as Chrome trace-event
// JSON, loadable in chrome://tracing or Perfetto.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = j.tr.WriteChrome(w, 1)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if r.URL.Query().Get("watch") != "" {
		s.watchJob(w, r, j)
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// watchJob streams the job document over Server-Sent Events: a
// "progress" event with the current document every interval, then one
// "done" event with the final document when the job completes.
func (s *Server) watchJob(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusOK, j.view())
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(event string) bool {
		doc, err := json.Marshal(j.view())
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, doc); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if j.finished() {
		send("done")
		return
	}
	if !send("progress") {
		return
	}
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			send("done")
			return
		case <-tick.C:
			if !send("progress") {
				return
			}
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.drainingNow() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WriteText(w)
}
