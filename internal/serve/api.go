package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"ringmesh"
	"ringmesh/internal/fidelity"
	"ringmesh/internal/obs"
)

// runRequest is the POST /v1/runs body: a facade Config (snake_case
// wire names, see ringmesh.Config) plus an optional run schedule
// (omitted: DefaultRunOptions), an optional priority class (omitted:
// interactive) and an optional relative deadline in milliseconds
// (omitted or 0: none; overrides the X-Ringmeshd-Deadline header).
type runRequest struct {
	Config     ringmesh.Config      `json:"config"`
	Options    *ringmesh.RunOptions `json:"options"`
	Class      string               `json:"class,omitempty"`
	DeadlineMS int64                `json:"deadline_ms,omitempty"`
	// Fidelity selects the answer tier: "simulate" (default), an
	// inline "analytic" estimate, or the "auto" policy (cache, else
	// analytic with a background upgrade job). Wins over
	// config.fidelity when both are set. See fidelity.go.
	Fidelity string `json:"fidelity,omitempty"`
}

// sweepRequest is the POST /v1/sweeps body: a base Config measured at
// each size (topology re-derived per size, as SweepSizes does).
type sweepRequest struct {
	Config     ringmesh.Config      `json:"config"`
	Sizes      []int                `json:"sizes"`
	Options    *ringmesh.RunOptions `json:"options"`
	Class      string               `json:"class,omitempty"`
	DeadlineMS int64                `json:"deadline_ms,omitempty"`
	// Fidelity selects the answer tier for every point (see
	// runRequest.Fidelity).
	Fidelity string `json:"fidelity,omitempty"`
}

// batchRunRequest is one entry of a batch submission: a config plus an
// optional schedule. Class and deadline live on the batch, not its
// entries — the batch is one prioritized unit.
type batchRunRequest struct {
	Config  ringmesh.Config      `json:"config"`
	Options *ringmesh.RunOptions `json:"options"`
}

// batchRequest is the POST /v1/batch body: many runs submitted as one
// job under a single class (omitted: batch) and optional deadline.
type batchRequest struct {
	Runs       []batchRunRequest `json:"runs"`
	Class      string            `json:"class,omitempty"`
	DeadlineMS int64             `json:"deadline_ms,omitempty"`
	// Fidelity applies to entries whose config does not set its own
	// (an entry's config.fidelity wins). See runRequest.Fidelity.
	Fidelity string `json:"fidelity,omitempty"`
}

// deadlineHeader optionally carries a relative client deadline as a Go
// duration string ("30s", "1m30s"); a deadline_ms body field wins over
// it.
const deadlineHeader = "X-Ringmeshd-Deadline"

// errorBody is the JSON error envelope on non-2xx responses. Shed and
// rate-limited responses additionally carry the affected class and a
// retry hint mirroring the Retry-After header (in milliseconds, since
// the header only has whole-second resolution).
type errorBody struct {
	Error        string `json:"error"`
	Class        string `json:"class,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// Handler returns the daemon's route table:
//
//	POST /v1/runs              submit one simulation (202, or 200 on a cache hit)
//	POST /v1/sweeps            submit a size sweep (202)
//	POST /v1/batch             submit many runs as one prioritized unit (202)
//	GET  /v1/jobs/{id}         poll a job document; ?watch=1 streams SSE
//	GET  /v1/jobs/{id}/trace   job lifecycle spans as Chrome trace-event JSON
//	GET  /healthz              liveness: 200 while the process serves at all
//	GET  /readyz               readiness: 503 while draining or replaying the
//	                           journal, else 200 with per-class queue depths
//	GET  /metrics              Prometheus-style text snapshot
//	GET  /debug/pprof/...      Go profiling endpoints (only with EnablePprof)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleRun)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweep)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.opt.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// writeBackoff answers a shed, draining or rate-limited request with
// the documented backpressure contract: a Retry-After header in whole
// seconds (rounded up, so never 0) plus a structured body carrying the
// class (when known) and the millisecond-precision retry hint.
func writeBackoff(w http.ResponseWriter, status int, class string, retryAfter time.Duration, format string, args ...any) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeJSON(w, status, errorBody{
		Error:        fmt.Sprintf(format, args...),
		Class:        class,
		RetryAfterMS: retryAfter.Milliseconds(),
	})
}

// clientKey identifies a client for rate limiting: the source address
// without the ephemeral port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// gate applies the submission-path request checks shared by runs and
// sweeps: drain state (a draining server accepts no new jobs, cached
// or not), rate limit, then body decode with unknown fields rejected.
// It reports false after writing the error response.
func (s *Server) gate(w http.ResponseWriter, r *http.Request, into any) bool {
	if s.drainingNow() {
		s.rejected.Inc()
		writeBackoff(w, http.StatusServiceUnavailable, "", time.Second, "%v", errDraining)
		return false
	}
	if !s.limit.allow(clientKey(r)) {
		s.rateLimited.Inc()
		// The token bucket refills at Rate/sec, so one inter-token gap is
		// the honest earliest retry (whole-second floor: 1s).
		ra := time.Second
		if s.opt.Rate > 0 {
			if gap := time.Duration(float64(time.Second) / s.opt.Rate); gap > ra {
				ra = gap
			}
		}
		writeBackoff(w, http.StatusTooManyRequests, "", ra, "rate limit exceeded")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opt.MaxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		writeError(w, status, "bad request body: %v", err)
		return false
	}
	return true
}

// validateRunOptions checks the schedule fields the models never see
// (CacheKey validates the config itself).
func validateRunOptions(o ringmesh.RunOptions) error {
	switch {
	case o.WarmupCycles < 0:
		return fmt.Errorf("warmup_cycles %d < 0", o.WarmupCycles)
	case o.BatchCycles < 1:
		return fmt.Errorf("batch_cycles %d < 1", o.BatchCycles)
	case o.Batches < 1:
		return fmt.Errorf("batches %d < 1", o.Batches)
	case o.WatchdogCycles < 0:
		return fmt.Errorf("watchdog_cycles %d < 0", o.WatchdogCycles)
	case o.Timeout < 0:
		return fmt.Errorf("timeout_ns %d < 0", o.Timeout)
	default:
		return nil
	}
}

// submitMeta resolves a submission's priority class and absolute
// deadline. The deadline is relative at the wire (header: a Go
// duration; body: milliseconds, winning over the header) and absolute
// from here on, so queue time counts against it.
func submitMeta(r *http.Request, bodyClass string, deadlineMS int64, def class) (class, time.Time, error) {
	cls, err := parseClass(bodyClass, def)
	if err != nil {
		return 0, time.Time{}, err
	}
	if deadlineMS < 0 {
		return 0, time.Time{}, fmt.Errorf("deadline_ms %d < 0", deadlineMS)
	}
	var deadline time.Time
	if h := r.Header.Get(deadlineHeader); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil || d <= 0 {
			return 0, time.Time{}, fmt.Errorf("bad %s header %q: want a positive Go duration like \"30s\"", deadlineHeader, h)
		}
		deadline = time.Now().Add(d)
	}
	if deadlineMS > 0 {
		deadline = time.Now().Add(time.Duration(deadlineMS) * time.Millisecond)
	}
	return cls, deadline, nil
}

// rejectInfeasible refuses a deadline the collected run telemetry says
// cannot be met — estimated queue wait plus run cost already exceeds
// the remaining budget — so the job fails in microseconds at admission
// instead of burning a worker to produce an answer nobody wants. With
// no telemetry yet the job is admitted optimistically (the in-queue
// expiry check still catches it). Reports true after writing the 504.
func (s *Server) rejectInfeasible(w http.ResponseWriter, j *job) bool {
	if j.deadline.IsZero() {
		return false
	}
	est, ok := s.estimateCost(j.family(), j.units())
	if !ok || time.Until(j.deadline) >= est {
		return false
	}
	s.deadlineRej[j.class].Inc()
	s.log.Warn("deadline infeasible at admission", "class", j.class.String(),
		"family", j.family(), "budget", time.Until(j.deadline), "estimate", est)
	writeError(w, http.StatusGatewayTimeout,
		"deadline infeasible: %s remaining, estimated cost %s", time.Until(j.deadline).Round(time.Millisecond), est.Round(time.Millisecond))
	return true
}

// submitJob runs the shared tail of every submission handler:
// admission (with the backpressure contract on shed), the enqueue
// span, and the 202 response.
func (s *Server) submitJob(w http.ResponseWriter, r *http.Request, j *job, what string) {
	s.register(j)
	// enqueuedAt is set before admission: a worker may pick the job up
	// the instant it enters its class queue, and it reads this field to
	// reconstruct the queue-wait span.
	enqStart := time.Now()
	j.enqueuedAt = enqStart
	if err := s.admit(j); err != nil {
		// A background run the client left fidelity-agnostic can degrade
		// to an analytic answer (with a best-effort upgrade job) instead
		// of a 503 when admission sheds it.
		var se *shedError
		if errors.As(err, &se) && j.allowDegrade && j.kind == kindRun &&
			s.degradeRun(w, r, j) {
			return
		}
		s.unregister(j)
		s.rejected.Inc()
		s.log.Warn(what+" rejected", "client", clientKey(r), "class", j.class.String(), "err", err)
		writeBackoff(w, http.StatusServiceUnavailable, j.class.String(), s.retryAfter(j.family()), "%v", err)
		return
	}
	j.tr.Record(obs.SpanRecord{Name: "enqueue", Start: enqStart, Dur: time.Since(enqStart)})
	s.accepted.Inc()
	s.log.Info(what+" accepted", "job", j.id, "class", j.class.String(),
		"family", j.family(), "client", clientKey(r))
	writeJSON(w, http.StatusAccepted, j.view())
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if !s.gate(w, r, &req) {
		return
	}
	validateStart := time.Now()
	opt := ringmesh.DefaultRunOptions()
	if req.Options != nil {
		opt = *req.Options
	}
	if err := validateRunOptions(opt); err != nil {
		s.log.Warn("run rejected", "client", clientKey(r), "err", err)
		writeError(w, http.StatusBadRequest, "invalid options: %v", err)
		return
	}
	cls, deadline, err := submitMeta(r, req.Class, req.DeadlineMS, classInteractive)
	if err != nil {
		s.log.Warn("run rejected", "client", clientKey(r), "err", err)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mode, explicit, err := s.resolveFidelity(req.Fidelity, &req.Config)
	if err != nil {
		s.log.Warn("run rejected", "client", clientKey(r), "err", err)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if mode == fidelity.Analytic {
		// Explicit analytic runs are answered inline — microseconds of
		// closed-form evaluation never take a queue slot.
		s.serveAnalyticRun(w, r, req.Config, opt, cls, deadline)
		return
	}
	key, err := ringmesh.CacheKey(req.Config, opt)
	if err != nil {
		// The model's own validation message, verbatim — the same text
		// NewSystem would produce.
		s.log.Warn("run rejected", "client", clientKey(r), "err", err)
		writeError(w, http.StatusBadRequest, "invalid config: %v", err)
		return
	}

	j := newJob("", kindRun, s.opt.TraceSpans)
	j.cfg, j.opt, j.key = req.Config, opt, key
	j.class, j.deadline = cls, deadline
	j.allowDegrade = cls == classBackground && !explicit && mode == fidelity.Simulate
	j.tr.Record(obs.SpanRecord{
		Name: "validate", Start: validateStart, Dur: time.Since(validateStart),
		Attrs: []obs.Attr{{Key: "key", Value: key[:8]}},
	})

	// Submission-time cache probe: a hit completes the job without it
	// ever touching the queue (or its deadline), so cached replays cost
	// one map lookup even when the queue is saturated. Auto requests
	// take this same path — a cached exact result beats an estimate.
	if res, ok := s.cache.get(key); ok {
		j.finish(&res, nil, true, nil)
		s.register(j)
		s.accepted.Inc()
		s.completed.Inc()
		s.log.Info("run served from cache", "job", j.id,
			"family", j.family(), "client", clientKey(r))
		writeJSON(w, http.StatusOK, j.view())
		return
	}
	if mode == fidelity.Auto && s.serveAutoRun(w, r, j) {
		return
	}
	if s.rejectInfeasible(w, j) {
		return
	}
	s.submitJob(w, r, j, "run")
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if !s.gate(w, r, &req) {
		return
	}
	validateStart := time.Now()
	opt := ringmesh.DefaultRunOptions()
	if req.Options != nil {
		opt = *req.Options
	}
	if err := validateRunOptions(opt); err != nil {
		writeError(w, http.StatusBadRequest, "invalid options: %v", err)
		return
	}
	cls, deadline, err := submitMeta(r, req.Class, req.DeadlineMS, classInteractive)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Sizes) == 0 {
		writeError(w, http.StatusBadRequest, "sizes must name at least one node count")
		return
	}
	mode, _, err := s.resolveFidelity(req.Fidelity, &req.Config)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Validate every size up front so a doomed sweep fails at submit
	// with the model's message, not halfway through the job.
	for _, n := range req.Sizes {
		cfg := req.Config
		cfg.Topology = ""
		cfg.Nodes = n
		if _, err := ringmesh.CacheKey(cfg, opt); err != nil {
			writeError(w, http.StatusBadRequest, "invalid config at size %d: %v", n, err)
			return
		}
	}

	j := newJob("", kindSweep, s.opt.TraceSpans)
	j.cfg, j.opt = req.Config, opt
	j.class, j.deadline = cls, deadline
	j.sizes = append([]int(nil), req.Sizes...)
	j.tr.Record(obs.SpanRecord{
		Name: "validate", Start: validateStart, Dur: time.Since(validateStart),
	})
	if mode == fidelity.Auto && s.serveAutoSweep(w, r, j) {
		return
	}
	if s.rejectInfeasible(w, j) {
		return
	}
	s.submitJob(w, r, j, "sweep")
}

// handleBatch accepts many runs as one prioritized unit: one job, one
// class (default batch), one deadline, one journal record — the bulk
// counterpart to /v1/runs that the admission classes exist to keep out
// of interactive traffic's way.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !s.gate(w, r, &req) {
		return
	}
	validateStart := time.Now()
	cls, deadline, err := submitMeta(r, req.Class, req.DeadlineMS, classBatch)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if len(req.Runs) == 0 {
		writeError(w, http.StatusBadRequest, "runs must hold at least one entry")
		return
	}
	// Per-entry fidelity: the batch-level field applies to entries whose
	// config does not set its own. Auto is resolved here (the policy
	// never reaches a cache key); concrete tiers stay in the config,
	// where cache keys and the executor read them.
	autoEntry := make([]bool, len(req.Runs))
	anyAuto := false
	// Validate every entry up front so a doomed batch fails at submit
	// with the model's message, not halfway through the job.
	entries := make([]batchEntry, len(req.Runs))
	for i, br := range req.Runs {
		opt := ringmesh.DefaultRunOptions()
		if br.Options != nil {
			opt = *br.Options
		}
		if err := validateRunOptions(opt); err != nil {
			writeError(w, http.StatusBadRequest, "invalid options at entry %d: %v", i, err)
			return
		}
		eff := br.Config.Fidelity
		if eff == "" {
			eff = req.Fidelity
		}
		if eff == fidelity.Auto {
			autoEntry[i], anyAuto = true, true
			br.Config.Fidelity = ""
		} else {
			br.Config.Fidelity = eff
		}
		if _, err := ringmesh.CacheKey(br.Config, opt); err != nil {
			writeError(w, http.StatusBadRequest, "invalid config at entry %d: %v", i, err)
			return
		}
		entries[i] = batchEntry{Config: br.Config, Options: opt}
	}
	if anyAuto {
		s.fidRequests[fidelity.Auto].Inc()
	} else if mode, err := fidelity.Normalize(req.Fidelity); err == nil {
		s.fidRequests[mode].Inc()
	}

	j := newJob("", kindBatch, s.opt.TraceSpans)
	j.entries = entries
	j.class, j.deadline = cls, deadline
	j.tr.Record(obs.SpanRecord{
		Name: "validate", Start: validateStart, Dur: time.Since(validateStart),
		Attrs: []obs.Attr{{Key: "entries", Value: fmt.Sprint(len(entries))}},
	})
	if anyAuto && s.serveAutoBatch(w, r, j, autoEntry) {
		return
	}
	if s.rejectInfeasible(w, j) {
		return
	}
	s.submitJob(w, r, j, "batch")
}

// handleJobTrace serves a job's lifecycle spans as Chrome trace-event
// JSON, loadable in chrome://tracing or Perfetto.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = j.tr.WriteChrome(w, 1)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	if r.URL.Query().Get("watch") != "" {
		s.watchJob(w, r, j)
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// watchJob streams the job document over Server-Sent Events: a
// "progress" event with the current document every interval, then one
// "done" event with the final document when the job completes.
func (s *Server) watchJob(w http.ResponseWriter, r *http.Request, j *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusOK, j.view())
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(event string) bool {
		doc, err := json.Marshal(j.view())
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, doc); err != nil {
			return false
		}
		fl.Flush()
		return true
	}
	if j.finished() {
		send("done")
		return
	}
	if !send("progress") {
		return
	}
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			send("done")
			return
		case <-tick.C:
			if !send("progress") {
				return
			}
		}
	}
}

// handleHealth is pure liveness: 200 whenever the process can answer
// HTTP at all. Routing decisions belong to /readyz — a draining daemon
// is still alive (it is finishing jobs), it just should not get new
// ones.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// readyBody is the /readyz document: the gate state plus per-class
// queue depths, so load balancers and coordinators can both stop
// routing early and see where the backlog lives.
type readyBody struct {
	Status string         `json:"status"`
	Queues map[string]int `json:"queues"`
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	body := readyBody{Status: "ready", Queues: s.adm.classDepths()}
	if reason, notReady := s.notReady(); notReady {
		body.Status = reason
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.reg.WriteText(w)
}
