package serve

import (
	"testing"
	"time"
)

// clockBreaker returns a breaker on an injectable clock the test can
// advance.
func clockBreaker(threshold int, cooldown time.Duration) (*breaker, *time.Time) {
	now := time.Unix(0, 0)
	b := newBreaker(threshold, cooldown)
	b.now = func() time.Time { return now }
	return b, &now
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := clockBreaker(3, time.Minute)
	if !b.admitted() {
		t.Fatal("new breaker not admitted")
	}
	if b.failure() || b.failure() {
		t.Fatal("tripped before the threshold")
	}
	if !b.admitted() {
		t.Fatal("ejected before the threshold")
	}
	if !b.failure() {
		t.Fatal("threshold failure did not report the trip")
	}
	if b.admitted() {
		t.Fatal("still admitted after tripping")
	}
	// Further failures while open never report a second trip — the
	// caller counts trips off this return value.
	if b.failure() {
		t.Fatal("open breaker reported a trip")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := clockBreaker(3, time.Minute)
	b.failure()
	b.failure()
	b.success()
	if b.failure() || b.failure() {
		t.Fatal("streak survived a success")
	}
	if !b.failure() {
		t.Fatal("did not trip after a fresh streak")
	}
}

// TestBreakerProbeCycle walks the re-admission protocol: no probe
// before the cooldown, a failed probe restarts the cooldown, a
// successful probe closes the breaker.
func TestBreakerProbeCycle(t *testing.T) {
	b, now := clockBreaker(1, 10*time.Second)
	b.failure()

	if b.probeDue() {
		t.Fatal("probe due before the cooldown")
	}
	*now = now.Add(11 * time.Second)
	if !b.probeDue() {
		t.Fatal("probe not due after the cooldown")
	}

	// A failed probe keeps it open and restarts the cooldown.
	if b.probeResult(false) {
		t.Fatal("failed probe re-admitted")
	}
	if b.admitted() || b.probeDue() {
		t.Fatal("failed probe did not restart the cooldown")
	}

	*now = now.Add(11 * time.Second)
	if !b.probeDue() {
		t.Fatal("probe not due after the restarted cooldown")
	}
	if !b.probeResult(true) {
		t.Fatal("healthy probe did not report re-admission")
	}
	if !b.admitted() {
		t.Fatal("not admitted after a healthy probe")
	}
	// Re-admission is reported exactly once; probing a closed breaker
	// is a no-op.
	if b.probeResult(true) {
		t.Fatal("closed breaker reported a re-admission")
	}
}
