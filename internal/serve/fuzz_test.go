package serve

import (
	"bytes"
	"testing"
)

// fuzzSeedLines builds real encoded records (and mutations of them) so
// the fuzzer starts inside the interesting part of the input space.
func fuzzSeedLines(f *testing.F) [][]byte {
	f.Helper()
	cfg := testConfig()
	opt := *testOptions()
	var lines [][]byte
	for _, rec := range []journalRecord{
		{Op: opAccepted, ID: "j000001", Kind: kindRun, Class: "interactive", Config: &cfg, Options: &opt},
		{Op: opAccepted, ID: "j000002", Kind: kindSweep, Class: "background", Config: &cfg, Options: &opt, Sizes: []int{4, 16}},
		{Op: opAccepted, ID: "j000003", Kind: kindBatch, Class: "batch", Entries: []batchEntry{{Config: cfg, Options: opt}}},
		{Op: opRunning, ID: "j000001"},
		{Op: opDone, ID: "j000001"},
		{Op: opFailed, ID: "j000002"},
	} {
		line, err := encodeRecord(rec)
		if err != nil {
			f.Fatal(err)
		}
		lines = append(lines, bytes.TrimSuffix(line, []byte("\n")))
	}
	return lines
}

// FuzzDecodeRecord holds the WAL decoder to its contract: arbitrary
// bytes — torn writes, bit flips, hostile JSON — must yield a record
// or an error, never a panic. Any line it does accept must survive a
// re-encode/re-decode round trip, so replay and compaction agree on
// what the record says.
func FuzzDecodeRecord(f *testing.F) {
	for _, line := range fuzzSeedLines(f) {
		f.Add(line)
		f.Add(line[:len(line)/2])              // torn write
		f.Add(append([]byte("x"), line...))    // shifted framing
		f.Add(bytes.ToUpper(line))             // checksum mismatch
		f.Add(bytes.ReplaceAll(line, []byte(`"op"`), []byte(`"oops"`))) // schema drift
	}
	f.Add([]byte(nil))
	f.Add([]byte(journalVersion + "   "))
	f.Add([]byte(journalVersion + " zz -1 {}"))
	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := decodeRecord(line) // must never panic
		if err != nil {
			return
		}
		reenc, err := encodeRecord(rec)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		rec2, err := decodeRecord(bytes.TrimSuffix(reenc, []byte("\n")))
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if rec2.Op != rec.Op || rec2.ID != rec.ID || rec2.Kind != rec.Kind || rec2.Class != rec.Class {
			t.Fatalf("round trip drift: %+v -> %+v", rec, rec2)
		}
	})
}
