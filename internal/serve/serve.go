package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"time"

	"ringmesh"
	"ringmesh/internal/fidelity"
	"ringmesh/internal/metrics"
	"ringmesh/internal/network"
	"ringmesh/internal/obs"
	"ringmesh/internal/pool"
)

// jobRetain bounds the number of finished job documents kept for
// polling; the oldest finished jobs are dropped past it. In-flight
// jobs are never dropped.
const jobRetain = 1024

// Options configures a Server. The zero value selects the defaults
// noted per field.
type Options struct {
	// Workers is the CPU budget: the bound on total engine goroutines
	// across all in-flight jobs (default GOMAXPROCS).
	Workers int
	// EngineWorkers is each job's parallel tick worker count (default
	// 1 = the exact serial engine; capped at Workers). The job-level
	// pool shrinks to Workers/EngineWorkers, so splitting the budget
	// between concurrent jobs and per-job parallelism never
	// oversubscribes it. Results are identical either way — the
	// parallel engine is golden-tested bit-identical to serial, which
	// is also why Workers never enters a job's cache key.
	EngineWorkers int
	// QueueDepth bounds total pending jobs across all priority classes;
	// at the bound an arriving job sheds the newest queued job of a
	// less urgent class, or is shed itself with 503 + Retry-After when
	// nothing less urgent is queued (default 64).
	QueueDepth int
	// ClassDepth bounds each priority class's queue individually, so no
	// single class can occupy the whole daemon (default: QueueDepth,
	// i.e. only the shared bound applies).
	ClassDepth int
	// ClassWeights sets the deficit-round-robin shares for
	// interactive, batch and background jobs, in that order (entries
	// < 1 take the defaults 16/4/1).
	ClassWeights [3]int
	// JournalDir, when non-empty, enables the crash-safe job journal:
	// an fsync'd append-only log of job state transitions, replayed on
	// startup so accepted-but-unfinished jobs survive kill -9 and
	// re-enqueue under their original IDs and classes. Empty disables
	// journaling (accepted jobs die with the process, as before).
	JournalDir string
	// CacheEntries bounds the result cache (default 256).
	CacheEntries int
	// CacheDir, when non-empty, adds a durable disk tier under the
	// in-memory result cache: one checksummed file per cache key,
	// written atomically, so results survive restarts (and even
	// kill -9) and N replicas can share one mounted directory. Empty
	// keeps the cache memory-only.
	CacheDir string
	// WorkerAddrs switches the server into coordinator mode: instead
	// of simulating locally, it fans work out to the worker daemons at
	// these base URLs (e.g. "http://10.0.0.7:8080") with retries,
	// hedging and per-worker circuit breakers, and merges partial
	// failures into degraded sweep responses. Empty means normal
	// (simulating) mode.
	WorkerAddrs []string
	// Rate is the per-client request budget in requests/second
	// (0 disables rate limiting).
	Rate float64
	// Burst is the per-client burst size (default 2*Rate, minimum 1).
	Burst int
	// MaxBody bounds request bodies in bytes (default 1 MiB).
	MaxBody int64
	// JobTimeout bounds each job's wall-clock time (0 = none).
	JobTimeout time.Duration
	// Registry receives the daemon's instruments and is exported at
	// /metrics (nil: the server creates a private one).
	Registry *metrics.Registry
	// Logger receives structured job-lifecycle events with request and
	// job IDs (nil: events are discarded).
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof on the
	// Handler. Off by default: the profile endpoints expose goroutine
	// stacks and heap contents, so they are opt-in.
	EnablePprof bool
	// TraceSpans bounds each job's span timeline; spans past it are
	// counted as dropped, never silently lost (default 64).
	TraceSpans int
}

// errDraining rejects submissions once Drain has begun; the HTTP
// layer maps it to 503 (shed rejections carry their own *shedError).
var errDraining = errors.New("serve: draining, not accepting jobs")

// Server executes simulation jobs from a bounded queue on a fixed
// worker pool, deduplicating identical work through the
// content-addressed result cache. Build one with New, mount Handler
// on an http.Server, and Drain on shutdown.
type Server struct {
	opt   Options
	reg   *metrics.Registry
	cache *resultCache
	limit *rateLimiter
	// coord is non-nil in coordinator mode (Options.WorkerAddrs set):
	// jobs are dispatched to worker daemons instead of simulated here.
	coord *coordinator

	baseCtx context.Context
	cancel  context.CancelFunc

	// adm is the priority admission layer: per-class bounded queues
	// drained by a weighted scheduler (replaces the old single FIFO
	// channel). journal, when non-nil, is the crash-safe WAL of job
	// state transitions.
	adm     *admitter
	journal *jobJournal
	wait    func()

	submitMu  sync.Mutex // orders draining checks, journal appends and enqueues
	draining  bool
	replaying bool // journal replay in progress: not ready for traffic

	jobsMu   sync.Mutex
	jobs     map[string]*job
	jobOrder []string
	nextID   int64

	accepted    *metrics.Counter
	rejected    *metrics.Counter
	rateLimited *metrics.Counter
	completed   *metrics.Counter
	failed      *metrics.Counter

	// Per-class admission outcomes, indexed by class.
	admitted    [numClasses]*metrics.Counter
	shed        [numClasses]*metrics.Counter
	deadlineRej [numClasses]*metrics.Counter
	deadlineExp [numClasses]*metrics.Counter

	// Multi-fidelity serving counters: requests by requested mode,
	// inline analytic answers, enqueued upgrade jobs, shed-pressure
	// degrades, and auto→exact fallbacks (see fidelity.go).
	fidRequests        map[string]*metrics.Counter
	fidAnalyticAnswers *metrics.Counter
	fidUpgrades        *metrics.Counter
	fidDegraded        *metrics.Counter
	fidFallback        *metrics.Counter

	log *slog.Logger

	// histMu guards lazy registration of label-fanned histograms
	// (queue-wait by family, run duration by family and outcome); the
	// registry itself panics on duplicate registration, so dynamic
	// label values need a lookup-or-register layer.
	histMu sync.Mutex
	hists  map[string]*metrics.Histogram
}

// secondsBuckets spans 1ms to ~4.4 minutes in x4 steps — wide enough
// for both queue waits under load and multi-minute simulations.
var secondsBuckets = metrics.ExpBuckets(0.001, 4, 10)

// New builds a Server and starts its worker pool. It fails only when
// an explicitly requested capability cannot be provided (a CacheDir
// that cannot be created) — durability asked for and silently not
// delivered would be worse than not starting.
func New(opt Options) (*Server, error) {
	if opt.Workers < 1 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.EngineWorkers < 1 {
		opt.EngineWorkers = 1
	}
	if opt.EngineWorkers > opt.Workers {
		opt.EngineWorkers = opt.Workers
	}
	if opt.QueueDepth < 1 {
		opt.QueueDepth = 64
	}
	if opt.CacheEntries < 1 {
		opt.CacheEntries = 256
	}
	if opt.Burst < 1 {
		opt.Burst = int(2 * opt.Rate)
	}
	if opt.MaxBody < 1 {
		opt.MaxBody = 1 << 20
	}
	if opt.TraceSpans < 1 {
		opt.TraceSpans = 64
	}
	if opt.Logger == nil {
		opt.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	reg := opt.Registry
	if reg == nil {
		reg = &metrics.Registry{}
	}
	var disk *diskStore
	if opt.CacheDir != "" {
		var err error
		if disk, err = newDiskStore(opt.CacheDir, reg, opt.Logger); err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var depths, weights [numClasses]int
	for c := range depths {
		depths[c] = opt.ClassDepth
		weights[c] = opt.ClassWeights[c]
	}
	s := &Server{
		opt:     opt,
		reg:     reg,
		cache:   newResultCache(opt.CacheEntries, disk, reg),
		limit:   newRateLimiter(opt.Rate, opt.Burst),
		baseCtx: ctx,
		cancel:  cancel,
		adm:     newAdmitter(opt.QueueDepth, depths, weights, reg),
		jobs:    map[string]*job{},
		log:     opt.Logger,
		hists:   map[string]*metrics.Histogram{},

		accepted:    reg.Counter("ringmeshd_jobs_accepted_total", metrics.Labels{}),
		rejected:    reg.Counter("ringmeshd_jobs_rejected_total", metrics.Labels{}),
		rateLimited: reg.Counter("ringmeshd_requests_rate_limited_total", metrics.Labels{}),
		completed:   reg.Counter("ringmeshd_jobs_completed_total", metrics.Labels{}),
		failed:      reg.Counter("ringmeshd_jobs_failed_total", metrics.Labels{}),
	}
	for c := class(0); c < numClasses; c++ {
		l := metrics.Labels{Class: c.String()}
		s.admitted[c] = reg.Counter("ringmeshd_admit_total", l)
		s.shed[c] = reg.Counter("ringmeshd_shed_total", l)
		s.deadlineRej[c] = reg.Counter("ringmeshd_deadline_rejected_total", l)
		s.deadlineExp[c] = reg.Counter("ringmeshd_deadline_expired_total", l)
	}
	s.fidRequests = map[string]*metrics.Counter{}
	for _, f := range []string{fidelity.Simulate, fidelity.Analytic, fidelity.Auto} {
		s.fidRequests[f] = reg.Counter("ringmeshd_fidelity_requests_total", metrics.Labels{Fidelity: f})
	}
	s.fidAnalyticAnswers = reg.Counter("ringmeshd_fidelity_analytic_answers_total", metrics.Labels{})
	s.fidUpgrades = reg.Counter("ringmeshd_fidelity_upgrades_total", metrics.Labels{})
	s.fidDegraded = reg.Counter("ringmeshd_fidelity_degraded_total", metrics.Labels{})
	s.fidFallback = reg.Counter("ringmeshd_fidelity_fallback_total", metrics.Labels{})
	reg.Gauge("ringmeshd_queue_depth", metrics.Labels{}, func() float64 {
		return float64(s.adm.depth())
	})
	// Go runtime health, sampled at scrape time. ReadMemStats is a
	// stop-the-world call measured in microseconds — fine at scrape
	// cadence, which is why these are gauges rather than a background
	// sampler.
	reg.Gauge("go_goroutines", metrics.Labels{}, func() float64 {
		return float64(runtime.NumGoroutine())
	})
	reg.Gauge("go_heap_alloc_bytes", metrics.Labels{}, func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
	reg.Gauge("go_gc_pause_total_seconds", metrics.Labels{}, func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.PauseTotalNs) / 1e9
	})
	if len(opt.WorkerAddrs) > 0 {
		s.coord = newCoordinator(opt.WorkerAddrs, reg, opt.Logger)
		// The probe loop re-admits ejected workers; it stops when the
		// base context dies (drain completion or drain-deadline cancel).
		go s.coord.probeLoop(s.baseCtx)
	}
	// The journal replays before the workers start: unfinished jobs
	// from before a crash re-enter their class queues under their
	// original IDs, and only then does execution begin.
	if opt.JournalDir != "" {
		journal, err := openJournal(opt.JournalDir, reg, opt.Logger)
		if err != nil {
			return nil, err
		}
		s.journal = journal
		if err := s.replayJournal(); err != nil {
			return nil, err
		}
	}
	// Split the CPU budget: jobWorkers concurrent jobs, each running
	// EngineWorkers engine goroutines, stay within opt.Workers total.
	var wg sync.WaitGroup
	for range s.jobWorkers() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j, ok := s.adm.next()
				if !ok {
					return
				}
				s.execute(j)
			}
		}()
	}
	s.wait = wg.Wait
	return s, nil
}

// replayJournal re-admits every unfinished journaled job, preserving
// IDs, classes and deadlines, and compacts the log down to what is
// still live. Records that decode but cannot be rebuilt into a job
// (e.g. a config the current version rejects) are journaled as failed
// rather than dropped, so they never resurrect again.
func (s *Server) replayJournal() error {
	s.submitMu.Lock()
	s.replaying = true
	s.submitMu.Unlock()
	defer func() {
		s.submitMu.Lock()
		s.replaying = false
		s.submitMu.Unlock()
	}()
	unfinished, maxID, err := s.journal.replay()
	if err != nil {
		return err
	}
	s.jobsMu.Lock()
	if maxID > s.nextID {
		s.nextID = maxID
	}
	s.jobsMu.Unlock()
	var live []journalRecord
	for _, rec := range unfinished {
		j, jerr := jobFromRecord(rec, s.opt.TraceSpans)
		if jerr != nil {
			s.log.Warn("journal record not replayable", "id", rec.ID, "err", jerr)
			s.journal.append(journalRecord{Op: opFailed, ID: rec.ID})
			continue
		}
		j.journaled = true
		s.register(j)
		j.enqueuedAt = time.Now()
		s.adm.forceEnqueue(j)
		s.journal.replayed.Inc()
		live = append(live, rec)
		s.log.Info("job replayed from journal", "job", j.id,
			"kind", j.kind, "class", j.class.String())
	}
	if err := s.journal.compact(live); err != nil {
		// Compaction is an optimization; a journal that still holds
		// already-terminal records replays correctly next time too.
		s.log.Warn("journal compaction failed", "err", err)
	}
	return nil
}

// jobWorkers is the job-level pool size after the per-job engine
// parallelism takes its share of the Workers budget.
func (s *Server) jobWorkers() int {
	return max(1, s.opt.Workers/s.opt.EngineWorkers)
}

// Registry returns the server's instrument registry (the one exported
// at /metrics).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Drain stops accepting new jobs (submissions get 503), lets queued
// and in-flight jobs finish, and returns when the pool is idle. If
// ctx expires first, the remaining jobs are canceled (they fail with
// a "canceled" job error), the pool is still waited out, and
// ctx.Err() is returned. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.submitMu.Lock()
	if !s.draining {
		s.draining = true
		s.adm.close()
		s.log.Info("drain started", "queued", s.adm.depth())
	}
	s.submitMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wait()
		close(done)
	}()
	select {
	case <-done:
		// Every job has finished; cancel the base context so background
		// machinery (the coordinator's health-probe loop) stops too.
		s.cancel()
		s.closeJournal()
		s.log.Info("drain complete")
		return nil
	case <-ctx.Done():
		s.cancel()
		<-done
		s.closeJournal()
		s.log.Warn("drain deadline expired; jobs canceled")
		return ctx.Err()
	}
}

// closeJournal releases the journal's append handle once no worker can
// write another record.
func (s *Server) closeJournal() {
	if s.journal != nil {
		if err := s.journal.close(); err != nil {
			s.log.Warn("journal close failed", "err", err)
		}
	}
}

// drainingNow reports whether Drain has been initiated.
func (s *Server) drainingNow() bool {
	s.submitMu.Lock()
	defer s.submitMu.Unlock()
	return s.draining
}

// notReady reports whether the server should tell load balancers and
// coordinators to stop routing: draining or mid-journal-replay.
func (s *Server) notReady() (reason string, notReady bool) {
	s.submitMu.Lock()
	defer s.submitMu.Unlock()
	switch {
	case s.draining:
		return "draining", true
	case s.replaying:
		return "replaying", true
	default:
		return "", false
	}
}

// admit runs the admission pipeline for a registered job: drain check,
// journal the acceptance (before the queues ever see the job, so a
// crash can never find a running job the journal has not accepted),
// then class-queue admission. A shed victim — a queued lower-class job
// evicted to make room — is failed and journaled here; a rejection of
// j itself journals a terminal record so the accepted record never
// resurrects it.
func (s *Server) admit(j *job) error {
	s.submitMu.Lock()
	defer s.submitMu.Unlock()
	if s.draining {
		return errDraining
	}
	if s.journal != nil {
		s.journal.append(acceptedRecord(j))
		j.journaled = true
	}
	victim, err := s.adm.enqueue(j)
	if err != nil {
		if j.journaled {
			s.journal.append(journalRecord{Op: opFailed, ID: j.id})
		}
		var se *shedError
		if errors.As(err, &se) {
			s.shed[j.class].Inc()
		}
		return err
	}
	if victim != nil {
		s.shed[victim.class].Inc()
		s.failed.Inc()
		if victim.journaled {
			s.journal.append(journalRecord{Op: opFailed, ID: victim.id})
		}
		victim.finish(nil, nil, false, &shedError{
			class:  victim.class,
			reason: fmt.Sprintf("evicted by %s arrival under full queue", j.class),
		})
		s.log.Warn("job shed", "job", victim.id, "class", victim.class.String(),
			"evicted_by", j.id)
	}
	s.admitted[j.class].Inc()
	return nil
}

// journalTerminal records a job's final transition and compacts the
// log when enough terminal records have accumulated.
func (s *Server) journalTerminal(j *job, failed bool) {
	if s.journal == nil || !j.journaled {
		return
	}
	op := opDone
	if failed {
		op = opFailed
	}
	s.journal.append(journalRecord{Op: op, ID: j.id})
	if s.journal.needsCompaction() {
		s.jobsMu.Lock()
		var live []journalRecord
		for _, id := range s.jobOrder {
			if lj, ok := s.jobs[id]; ok && lj.journaled && !lj.finished() {
				live = append(live, acceptedRecord(lj))
			}
		}
		s.jobsMu.Unlock()
		if err := s.journal.compact(live); err != nil {
			s.log.Warn("journal compaction failed", "err", err)
		}
	}
}

// register stores a job for polling, dropping the oldest finished
// documents past the retention bound. A job arriving without an ID
// gets a fresh one; journal replay pre-assigns the original ID (the
// counter has already been advanced past every journaled ID).
func (s *Server) register(j *job) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	if j.id == "" {
		s.nextID++
		j.id = fmt.Sprintf("j%06d", s.nextID)
	}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	for len(s.jobOrder) > jobRetain {
		oldest := s.jobOrder[0]
		if old, ok := s.jobs[oldest]; ok && !old.finished() {
			break // never drop live jobs; retention resumes when they end
		}
		delete(s.jobs, oldest)
		s.jobOrder = s.jobOrder[1:]
	}
}

// unregister removes a job that was never accepted into the queue.
func (s *Server) unregister(j *job) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	delete(s.jobs, j.id)
	for i, id := range s.jobOrder {
		if id == j.id {
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			break
		}
	}
}

// lookup finds a job by id.
func (s *Server) lookup(id string) (*job, bool) {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// histogram returns the registered histogram for (name, labels),
// registering it on first use. The registry panics on duplicate
// registration, so every dynamically-labeled series goes through this
// lookup-or-register layer.
func (s *Server) histogram(name string, l metrics.Labels, buckets []float64) *metrics.Histogram {
	key := name + l.String()
	s.histMu.Lock()
	defer s.histMu.Unlock()
	if h, ok := s.hists[key]; ok {
		return h
	}
	h := s.reg.Histogram(name, l, buckets)
	s.hists[key] = h
	return h
}

// execute runs one job on a pool worker.
func (s *Server) execute(j *job) {
	// A deadline that expired while the job sat in queue terminates it
	// here, before it occupies the worker for any simulation time.
	if j.expired(time.Now()) {
		s.deadlineExp[j.class].Inc()
		s.failed.Inc()
		s.journalTerminal(j, true)
		j.finish(nil, nil, false, errDeadlineExpired)
		s.log.Warn("job expired in queue", "job", j.id, "kind", j.kind,
			"class", j.class.String(), "deadline", j.deadline)
		return
	}
	// Reconstruct the queue-wait span: the interval between queue
	// admission and a worker picking the job up.
	if !j.enqueuedAt.IsZero() {
		wait := time.Since(j.enqueuedAt)
		j.tr.Record(obs.SpanRecord{Name: "queue-wait", Start: j.enqueuedAt, Dur: wait})
		s.histogram("ringmeshd_job_queue_wait_seconds",
			metrics.Labels{Family: j.family()}, secondsBuckets).Observe(wait.Seconds())
		s.log.Info("job started", "job", j.id, "kind", j.kind,
			"class", j.class.String(), "family", j.family(), "queue_wait", wait)
	}
	j.start()
	if s.journal != nil && j.journaled {
		s.journal.append(journalRecord{Op: opRunning, ID: j.id})
	}
	// The execution context stacks the server's per-job timeout and the
	// client's absolute deadline; whichever is tighter cancels the run,
	// and in coordinator mode the remaining budget rides along to the
	// dispatched worker.
	ctx := s.baseCtx
	if s.opt.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opt.JobTimeout)
		defer cancel()
	}
	if !j.deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, j.deadline)
		defer cancel()
	}
	ctx = ctxWithClass(ctx, j.class)
	runStart := time.Now()
	var err error
	switch j.kind {
	case kindSweep:
		err = s.executeSweep(ctx, j)
	case kindBatch:
		err = s.executeBatch(ctx, j)
	default:
		err = s.executeRun(ctx, j)
	}
	runDur := time.Since(runStart)
	outcome := "done"
	if err != nil {
		outcome = classify(err).Kind
		s.failed.Inc()
	} else {
		s.completed.Inc()
	}
	s.journalTerminal(j, err != nil)
	j.tr.Record(obs.SpanRecord{
		Name: "run", Start: runStart, Dur: runDur,
		Attrs: []obs.Attr{{Key: "outcome", Value: outcome}},
	})
	s.histogram("ringmeshd_job_run_seconds",
		metrics.Labels{Family: j.family(), Outcome: outcome}, secondsBuckets).Observe(runDur.Seconds())
	if err == nil {
		s.histogram("ringmeshd_fidelity_answer_seconds",
			metrics.Labels{Fidelity: jobFidelity(j)}, fidelityBuckets).Observe(runDur.Seconds())
	}
	if err != nil {
		s.log.Warn("job failed", "job", j.id, "kind", j.kind,
			"family", j.family(), "outcome", outcome, "dur", runDur, "err", err)
	} else {
		s.log.Info("job finished", "job", j.id, "kind", j.kind,
			"family", j.family(), "dur", runDur)
	}
}

// executeRun resolves a single run through the cache (single-flight:
// concurrent identical jobs simulate once and share the result). In
// coordinator mode the computation is a dispatch to the worker fleet
// instead of a local simulation — same cache, same key, same result.
func (s *Server) executeRun(ctx context.Context, j *job) error {
	compute := func() (ringmesh.Result, error) {
		return s.simulate(ctx, j, j.cfg, j.opt)
	}
	if s.coord != nil {
		compute = func() (ringmesh.Result, error) {
			res, _, err := s.coord.runPoint(ctx, j.cfg, j.opt, j.tr)
			return res, err
		}
	}
	res, cached, err := s.cache.do(ctx, j.key, j.tr, compute)
	if err != nil {
		j.finish(nil, nil, false, err)
		return err
	}
	j.finish(&res, nil, cached, nil)
	return nil
}

// executeSweep runs one cached simulation per size, serially within
// the job (cross-job parallelism comes from the worker pool). Each
// point uses the same cache key a single run of that size would, so
// sweeps populate — and benefit from — the same cache. In
// coordinator mode the sweep instead fans out to the worker fleet
// and merges partial failures.
func (s *Server) executeSweep(ctx context.Context, j *job) error {
	if s.coord != nil {
		return s.executeSweepCoordinated(ctx, j)
	}
	points := make([]ringmesh.SweepPoint, 0, len(j.sizes))
	allCached := len(j.sizes) > 0
	for _, n := range j.sizes {
		cfg := j.cfg
		cfg.Topology = ""
		cfg.Nodes = n
		key, err := ringmesh.CacheKey(cfg, j.opt)
		if err != nil {
			err = &configError{fmt.Errorf("size %d: %w", n, err)}
			j.finish(nil, nil, false, err)
			return err
		}
		res, cached, err := s.cache.do(ctx, key, j.tr, func() (ringmesh.Result, error) {
			return s.simulate(ctx, nil, cfg, j.opt)
		})
		if err != nil {
			err = fmt.Errorf("size %d: %w", n, err)
			j.finish(nil, nil, false, err)
			return err
		}
		if !cached {
			allCached = false
		}
		points = append(points, ringmesh.SweepPoint{
			Nodes: n, Topology: resolveTopology(cfg), Result: res, Attempts: 1,
		})
		j.pointsDone.Add(1)
	}
	sort.Slice(points, func(a, b int) bool { return points[a].Nodes < points[b].Nodes })
	j.finish(nil, points, allCached, nil)
	return nil
}

// executeSweepCoordinated fans a sweep's points out to the worker
// fleet concurrently and merges whatever comes back: completed points
// plus a structured per-point error report for the rest. One dead
// worker (or one doomed size) degrades the response instead of
// voiding it — the only wholesale failures are cancellation (drain)
// and every single point failing.
func (s *Server) executeSweepCoordinated(ctx context.Context, j *job) error {
	type slot struct {
		point  *ringmesh.SweepPoint
		perr   *PointError
		cached bool
	}
	slots := make([]slot, len(j.sizes))
	// Concurrency: twice the fleet size keeps every worker's queue fed
	// without flooding a small fleet with a large grid all at once.
	width := 2 * len(s.coord.workers)
	if width > len(j.sizes) {
		width = len(j.sizes)
	}
	pool.ForEach(ctx, width, len(j.sizes), nil, func(i int) error {
		n := j.sizes[i]
		cfg := j.cfg
		cfg.Topology = ""
		cfg.Nodes = n
		key, err := ringmesh.CacheKey(cfg, j.opt)
		if err != nil {
			// Unreachable in practice: every size was validated at
			// submission. Classified rather than dropped, defensively.
			slots[i].perr = &PointError{Nodes: n, Error: classify(&configError{err})}
			j.pointsDone.Add(1)
			return nil
		}
		attempts := 1
		res, cached, err := s.cache.do(ctx, key, j.tr, func() (ringmesh.Result, error) {
			r, a, err := s.coord.runPoint(ctx, cfg, j.opt, j.tr)
			attempts = a
			return r, err
		})
		if err != nil {
			s.coord.pointsFailed.Inc()
			slots[i].perr = &PointError{Nodes: n, Error: classifyPointErr(err)}
			s.log.Warn("sweep point failed", "job", j.id, "nodes", n,
				"kind", slots[i].perr.Error.Kind, "err", err)
		} else {
			slots[i].cached = cached
			slots[i].point = &ringmesh.SweepPoint{
				Nodes: n, Topology: resolveTopology(cfg), Result: res, Attempts: attempts,
			}
		}
		j.pointsDone.Add(1)
		return nil
	})
	// Drain-cancellation fails the job wholesale, exactly like the
	// local sweep path: a canceled sweep is an aborted attempt, not a
	// degraded answer.
	if err := ctx.Err(); err != nil {
		err = fmt.Errorf("sweep canceled: %w", err)
		j.finish(nil, nil, false, err)
		return err
	}
	var (
		points    []ringmesh.SweepPoint
		perrs     []PointError
		allCached = len(slots) > 0
	)
	for _, sl := range slots {
		if sl.point != nil {
			points = append(points, *sl.point)
			allCached = allCached && sl.cached
		}
		if sl.perr != nil {
			perrs = append(perrs, *sl.perr)
			allCached = false
		}
	}
	sort.Slice(points, func(a, b int) bool { return points[a].Nodes < points[b].Nodes })
	sort.Slice(perrs, func(a, b int) bool { return perrs[a].Nodes < perrs[b].Nodes })
	if len(perrs) > 0 {
		s.log.Warn("sweep degraded", "job", j.id,
			"completed", len(points), "failed", len(perrs))
	}
	return j.finishSweep(points, perrs, allCached)
}

// executeBatch resolves a batch's entries serially through the cache
// (cross-job parallelism comes from the worker pool, and a batch is by
// definition bulk work — burning the whole pool on one batch would
// defeat the admission classes). Entry failures degrade the response
// with per-item classified errors; cancellation (drain, deadline)
// fails the job wholesale, like a sweep.
func (s *Server) executeBatch(ctx context.Context, j *job) error {
	items := make([]BatchItem, len(j.entries))
	allCached := len(j.entries) > 0
	for i, e := range j.entries {
		items[i].Index = i
		if err := ctx.Err(); err != nil {
			err = fmt.Errorf("batch canceled at entry %d: %w", i, err)
			j.finish(nil, nil, false, err)
			return err
		}
		cfg, opt := e.Config, e.Options
		key, err := ringmesh.CacheKey(cfg, opt)
		if err != nil {
			// Unreachable in practice: every entry was validated at
			// submission. Classified rather than dropped, defensively.
			items[i].Error = classify(&configError{err})
			allCached = false
			j.pointsDone.Add(1)
			continue
		}
		compute := func() (ringmesh.Result, error) {
			return s.simulate(ctx, nil, cfg, opt)
		}
		if s.coord != nil {
			compute = func() (ringmesh.Result, error) {
				res, _, err := s.coord.runPoint(ctx, cfg, opt, j.tr)
				return res, err
			}
		}
		res, cached, err := s.cache.do(ctx, key, j.tr, compute)
		switch {
		case err != nil && ctx.Err() != nil:
			err = fmt.Errorf("batch canceled at entry %d: %w", i, ctx.Err())
			j.finish(nil, nil, false, err)
			return err
		case err != nil:
			items[i].Error = classify(err)
			allCached = false
			s.log.Warn("batch entry failed", "job", j.id, "entry", i,
				"kind", items[i].Error.Kind, "err", err)
		default:
			items[i].Result = &res
			items[i].Cached = cached
			items[i].Topology = resolveTopology(cfg)
			if !cached {
				allCached = false
			}
		}
		j.pointsDone.Add(1)
	}
	return j.finishBatch(items, allCached)
}

// simulate builds and runs one system. When j is a single-run job its
// progress atomics are wired to the engine's per-cycle hook so
// watchers see live completion fractions.
func (s *Server) simulate(ctx context.Context, j *job, cfg ringmesh.Config, opt ringmesh.RunOptions) (ringmesh.Result, error) {
	// Analytic-fidelity work routes to the closed-form estimator: no
	// system is built, no ticks run, and the result comes back labeled
	// with its recorded error bound. Estimator refusals (unsupported
	// features) are configuration errors — the client asked for a tier
	// that cannot answer this config.
	if fid, err := fidelity.Normalize(cfg.Fidelity); err != nil {
		return ringmesh.Result{}, &configError{err}
	} else if fid == fidelity.Analytic {
		res, err := ringmesh.Estimate(cfg, opt)
		if err != nil {
			return ringmesh.Result{}, &configError{err}
		}
		return res, nil
	}
	// The server owns the machine split, not the client: a request's
	// own workers value is capped at the per-job budget (and an unset
	// one takes the full budget). Sound to override freely — Workers is
	// execution-only, excluded from the cache key, and the parallel
	// engine is bit-identical to serial.
	if cfg.Workers == 0 || cfg.Workers > s.opt.EngineWorkers {
		cfg.Workers = s.opt.EngineWorkers
	}
	sys, err := ringmesh.NewSystem(cfg)
	if err != nil {
		return ringmesh.Result{}, &configError{err}
	}
	if j != nil {
		cycles := opt.WarmupCycles + opt.BatchCycles*int64(opt.Batches)
		j.totalTicks.Store(cycles * sys.TicksPerCycle())
		sys.OnCycle(func(tick int64, _ uint64) { j.tick.Store(tick) })
	}
	return sys.RunContext(ctx, opt)
}

// resolveTopology renders a config's geometry in the model's canonical
// notation. The config is already validated (CacheKey succeeded), so
// resolution cannot fail; the empty string on a registry miss is
// defensive.
func resolveTopology(cfg ringmesh.Config) string {
	plan, err := network.New(cfg.Network, network.Config{
		Topology:          cfg.Topology,
		Nodes:             cfg.Nodes,
		LineBytes:         cfg.LineBytes,
		BufferFlits:       cfg.BufferFlits,
		DoubleSpeedGlobal: cfg.DoubleSpeedGlobal,
		SlottedSwitching:  cfg.SlottedSwitching,
		UnsafeNoVC:        cfg.UnsafeNoVC,
	})
	if err != nil {
		return ""
	}
	return plan.Topology
}
