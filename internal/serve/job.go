package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ringmesh"
	"ringmesh/internal/obs"
)

// Job kinds: a single run, a size sweep, or a batch of runs submitted
// as one prioritized unit.
const (
	kindRun   = "run"
	kindSweep = "sweep"
	kindBatch = "batch"
)

// JobState is a job's lifecycle phase.
type JobState string

const (
	// JobQueued means the job is accepted but no worker has started it.
	JobQueued JobState = "queued"
	// JobRunning means a worker is simulating it.
	JobRunning JobState = "running"
	// JobDone means it finished with a result.
	JobDone JobState = "done"
	// JobFailed means it finished with an error.
	JobFailed JobState = "failed"
)

// JobError describes a failed job in the job document. Status carries
// the same taxonomy as cmd/ringmesh's exit codes, mapped onto HTTP:
// configuration errors are 400 (though most are caught synchronously
// at submission), stalls 422, timeouts 504, cancellation (drain) 503,
// and anything else 500.
type JobError struct {
	Status  int                      `json:"status"`
	Kind    string                   `json:"kind"`
	Message string                   `json:"message"`
	Stall   *ringmesh.StallDiagnosis `json:"stall,omitempty"`
}

// errConfig marks an error produced while constructing a system —
// a configuration problem by definition.
type configError struct{ err error }

func (e *configError) Error() string { return e.err.Error() }
func (e *configError) Unwrap() error { return e.err }

// errDeadlineExpired marks a job whose client deadline passed while it
// was still queued: it is failed without ever occupying a worker.
var errDeadlineExpired = errors.New("serve: deadline expired before execution")

// classify maps a run error onto the job-document error taxonomy.
func classify(err error) *JobError {
	if err == nil {
		return nil
	}
	je := &JobError{Message: err.Error()}
	var ce *configError
	var se *shedError
	switch {
	case errors.As(err, &ce):
		je.Status, je.Kind = http.StatusBadRequest, "config"
	case errors.Is(err, ringmesh.ErrStalled):
		je.Status, je.Kind = http.StatusUnprocessableEntity, "stall"
		je.Stall = ringmesh.DiagnoseStall(err)
	case errors.Is(err, ringmesh.ErrTimeout):
		je.Status, je.Kind = http.StatusGatewayTimeout, "timeout"
	case errors.Is(err, errDeadlineExpired), errors.Is(err, context.DeadlineExceeded):
		// A client deadline (or the server's JobTimeout) ran out — the
		// same meaning as an engine wall-clock timeout, surfaced under
		// its own kind so callers can tell "the run was slow" from "the
		// budget was short".
		je.Status, je.Kind = http.StatusGatewayTimeout, "deadline"
	case errors.As(err, &se):
		je.Status, je.Kind = http.StatusServiceUnavailable, "shed"
	case errors.Is(err, context.Canceled):
		je.Status, je.Kind = http.StatusServiceUnavailable, "canceled"
	default:
		je.Status, je.Kind = http.StatusInternalServerError, "runtime"
	}
	return je
}

// PointError is one failed point in a coordinated sweep's structured
// error report: the size that failed and its classified error. The
// sweep's completed points ride alongside in Points — a partial
// failure degrades the response, it does not void it.
type PointError struct {
	Nodes int       `json:"nodes"`
	Error *JobError `json:"error"`
}

// batchEntry is one run inside a batch job: a validated config plus
// its resolved options. The wire shape of POST /v1/batch items and the
// journaled shape are the same — cache keys are recomputed, never
// stored.
type batchEntry struct {
	Config  ringmesh.Config     `json:"config"`
	Options ringmesh.RunOptions `json:"options"`
}

// BatchItem is one entry's outcome in a batch job document: either a
// result or a classified error, in submission order.
type BatchItem struct {
	Index    int              `json:"index"`
	Topology string           `json:"topology,omitempty"`
	Cached   bool             `json:"cached,omitempty"`
	Result   *ringmesh.Result `json:"result,omitempty"`
	Error    *JobError        `json:"error,omitempty"`
}

// job is one accepted unit of work: a single run, a size sweep, or a
// batch of runs.
type job struct {
	id    string
	kind  string // kindRun, kindSweep or kindBatch
	cfg   ringmesh.Config
	opt   ringmesh.RunOptions
	key   string // CacheKey (runs only; sweeps and batches key per point)
	sizes []int  // sweeps only

	// class is the admission priority; deadline, when set, is the
	// absolute wall-clock instant after which the client no longer wants
	// the answer (zero: no deadline). entries holds a batch's runs.
	class    class
	deadline time.Time
	entries  []batchEntry
	// journaled marks jobs whose accepted record landed in the WAL, so
	// terminal transitions know whether to journal too.
	journaled bool
	// allowDegrade permits answering this run analytically (with a
	// best-effort upgrade job) if admission would shed it: set only for
	// background-class runs whose client did not name a fidelity tier,
	// so an explicit "simulate" request is never silently downgraded.
	allowDegrade bool

	// Progress. For runs, tick counts engine ticks out of totalTicks
	// (fed by the engine's per-cycle hook; totalTicks is written by the
	// executing worker and read by watchers, hence atomic). For sweeps,
	// pointsDone counts finished sizes out of len(sizes).
	tick       atomic.Int64
	totalTicks atomic.Int64
	pointsDone atomic.Int64

	// tr is the job's lifecycle span timeline (validate, enqueue,
	// queue-wait, run, cache-store), served at GET /v1/jobs/{id}/trace.
	tr *obs.Trace
	// enqueuedAt timestamps queue admission so the executing worker can
	// reconstruct the queue-wait span and histogram observation.
	enqueuedAt time.Time

	mu        sync.Mutex
	state     JobState
	cached    bool
	degraded  bool
	upgradeID string
	result    *ringmesh.Result
	points    []ringmesh.SweepPoint
	pointErrs []PointError
	items     []BatchItem
	errObj    *JobError
	done      chan struct{} // closed on completion (done or failed)
}

// JobView is the job document served by GET /v1/jobs/{id} and
// embedded in submission responses.
type JobView struct {
	ID    string   `json:"id"`
	Kind  string   `json:"kind"`
	State JobState `json:"state"`
	// Class is the admission priority class the job was accepted under.
	Class string `json:"class"`
	// DeadlineUnixNS is the absolute client deadline, when one was set.
	DeadlineUnixNS int64 `json:"deadline_unix_ns,omitempty"`
	// Cached is true when the result was replayed from the cache (or a
	// coalesced concurrent computation) instead of simulated by this
	// job.
	Cached bool `json:"cached"`
	// Progress is the fraction of the schedule completed, in [0, 1].
	Progress float64               `json:"progress"`
	Result   *ringmesh.Result      `json:"result,omitempty"`
	Points   []ringmesh.SweepPoint `json:"points,omitempty"`
	// Degraded marks a response that is less than what was asked for: a
	// coordinated sweep that completed with some points missing (Points
	// holds every size that succeeded, PointErrors classifies the rest),
	// or a background run answered analytically under shed pressure.
	Degraded    bool         `json:"degraded,omitempty"`
	PointErrors []PointError `json:"point_errors,omitempty"`
	// UpgradeJobID names the background job enqueued to land the exact
	// result after an analytic-fidelity answer; poll it to upgrade.
	UpgradeJobID string `json:"upgrade_job_id,omitempty"`
	// Items holds a batch job's per-entry outcomes, in submission order.
	Items []BatchItem `json:"items,omitempty"`
	Error *JobError   `json:"error,omitempty"`
}

// newJob builds a queued job with a completion channel and a bounded
// span timeline.
func newJob(id, kind string, traceSpans int) *job {
	return &job{
		id: id, kind: kind, state: JobQueued,
		done: make(chan struct{}),
		tr:   obs.NewTrace(traceSpans),
	}
}

// family names the job's topology family for metric labels. A batch
// may mix families, so it gets its own label value.
func (j *job) family() string {
	if j.kind == kindBatch {
		return "batch"
	}
	return j.cfg.Network
}

// expired reports whether the job's client deadline has passed.
func (j *job) expired(now time.Time) bool {
	return !j.deadline.IsZero() && now.After(j.deadline)
}

// units is the job's work-unit count for admission-time cost
// estimation: sweep points, batch entries, or one run.
func (j *job) units() int {
	switch j.kind {
	case kindSweep:
		return max(1, len(j.sizes))
	case kindBatch:
		return max(1, len(j.entries))
	default:
		return 1
	}
}

// progress returns the completed fraction of the job's schedule.
func (j *job) progress() float64 {
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	switch state {
	case JobDone, JobFailed:
		return 1
	case JobQueued:
		return 0
	}
	switch j.kind {
	case kindSweep:
		if n := len(j.sizes); n > 0 {
			return float64(j.pointsDone.Load()) / float64(n)
		}
		return 0
	case kindBatch:
		if n := len(j.entries); n > 0 {
			return float64(j.pointsDone.Load()) / float64(n)
		}
		return 0
	}
	total := j.totalTicks.Load()
	if total <= 0 {
		return 0
	}
	p := float64(j.tick.Load()) / float64(total)
	if p > 1 {
		p = 1
	}
	return p
}

// view snapshots the job document.
func (j *job) view() JobView {
	p := j.progress()
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:           j.id,
		Kind:         j.kind,
		State:        j.state,
		Class:        j.class.String(),
		Cached:       j.cached,
		Degraded:     j.degraded,
		UpgradeJobID: j.upgradeID,
		Progress:     p,
		Error:        j.errObj,
	}
	if !j.deadline.IsZero() {
		v.DeadlineUnixNS = j.deadline.UnixNano()
	}
	if j.result != nil {
		r := *j.result
		v.Result = &r
	}
	if j.points != nil {
		v.Points = append([]ringmesh.SweepPoint(nil), j.points...)
	}
	if j.pointErrs != nil {
		v.PointErrors = append([]PointError(nil), j.pointErrs...)
	}
	if j.items != nil {
		v.Items = append([]BatchItem(nil), j.items...)
	}
	return v
}

// setUpgrade records the background upgrade job's ID for the document.
func (j *job) setUpgrade(id string) {
	j.mu.Lock()
	j.upgradeID = id
	j.mu.Unlock()
}

// markDegraded flags the document as answered below the requested
// fidelity (shed-pressure analytic degrade).
func (j *job) markDegraded() {
	j.mu.Lock()
	j.degraded = true
	j.mu.Unlock()
}

// start transitions queued -> running.
func (j *job) start() {
	j.mu.Lock()
	j.state = JobRunning
	j.mu.Unlock()
}

// finish records the outcome and closes the completion channel.
func (j *job) finish(res *ringmesh.Result, points []ringmesh.SweepPoint, cached bool, err error) {
	j.mu.Lock()
	if err != nil {
		j.state = JobFailed
		j.errObj = classify(err)
	} else {
		j.state = JobDone
		j.result = res
		j.points = points
	}
	j.cached = cached
	j.mu.Unlock()
	close(j.done)
}

// finishSweep records a coordinated sweep's merged outcome: the
// completed points plus a structured per-point error report. Some
// failures degrade the response; only a sweep with zero completed
// points fails wholesale (classified by its first point error, so a
// sweep that died entirely of connect errors reports as such, not as
// a generic 500).
func (j *job) finishSweep(points []ringmesh.SweepPoint, perrs []PointError, cached bool) error {
	var err error
	j.mu.Lock()
	j.pointErrs = perrs
	if len(points) == 0 && len(perrs) > 0 {
		first := perrs[0].Error
		j.state = JobFailed
		j.errObj = &JobError{
			Status:  first.Status,
			Kind:    first.Kind,
			Message: fmt.Sprintf("all %d points failed; first: %s", len(perrs), first.Message),
		}
		err = errors.New(j.errObj.Message)
	} else {
		j.state = JobDone
		j.points = points
		j.degraded = len(perrs) > 0
	}
	j.cached = cached
	j.mu.Unlock()
	close(j.done)
	return err
}

// finishBatch records a batch's merged outcome: per-entry items in
// submission order, some of which may carry classified errors. Like a
// coordinated sweep, partial failure degrades the response; only a
// batch with zero successful entries fails wholesale (classified by
// its first item error).
func (j *job) finishBatch(items []BatchItem, cached bool) error {
	succeeded, failed := 0, 0
	var firstErr *JobError
	for _, it := range items {
		if it.Error != nil {
			failed++
			if firstErr == nil {
				firstErr = it.Error
			}
		} else {
			succeeded++
		}
	}
	var err error
	j.mu.Lock()
	j.items = items
	if succeeded == 0 && failed > 0 {
		j.state = JobFailed
		j.errObj = &JobError{
			Status:  firstErr.Status,
			Kind:    firstErr.Kind,
			Message: fmt.Sprintf("all %d batch entries failed; first: %s", failed, firstErr.Message),
		}
		err = errors.New(j.errObj.Message)
	} else {
		j.state = JobDone
		j.degraded = failed > 0
	}
	j.cached = cached
	j.mu.Unlock()
	close(j.done)
	return err
}

// finished reports whether the job has completed (either way).
func (j *job) finished() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}
