package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"ringmesh"
	"ringmesh/internal/metrics"
)

// leakCheck registers a cleanup asserting the goroutine count returns
// to its pre-test baseline (plus slack for the test framework). It
// must be called BEFORE newTestServer so the assertion runs after the
// server's Drain cleanup (cleanups are LIFO).
func leakCheck(t *testing.T, slack int) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() { waitGoroutinesBelow(t, base+slack) })
}

// testAdmitter builds an admitter with the given total bound and
// default class depths/weights, on a throwaway registry.
func testAdmitter(total int) *admitter {
	return newAdmitter(total, [numClasses]int{}, [numClasses]int{}, &metrics.Registry{})
}

func classedJob(id string, c class) *job {
	j := newJob(id, kindRun, 8)
	j.class = c
	return j
}

func TestAdmitterPriorityOrder(t *testing.T) {
	a := testAdmitter(16)
	// Queue background and batch first, interactive last: the scheduler
	// must still hand out interactive first.
	for _, j := range []*job{
		classedJob("bg1", classBackground),
		classedJob("ba1", classBatch),
		classedJob("in1", classInteractive),
		classedJob("in2", classInteractive),
	} {
		if _, err := a.enqueue(j); err != nil {
			t.Fatalf("enqueue %s: %v", j.id, err)
		}
	}
	var got []string
	for range 4 {
		j, ok := a.next()
		if !ok {
			t.Fatal("next = closed with jobs queued")
		}
		got = append(got, j.id)
	}
	want := "in1 in2 ba1 bg1"
	if s := strings.Join(got, " "); s != want {
		t.Fatalf("drain order = %q; want %q", s, want)
	}
}

// TestAdmitterDRRSharesUnderSaturation: with every class continuously
// backlogged, one credit-refill cycle serves weight-many jobs of each
// class — bulk is throttled, not starved.
func TestAdmitterDRRSharesUnderSaturation(t *testing.T) {
	a := newAdmitter(64, [numClasses]int{}, [numClasses]int{2, 1, 1}, &metrics.Registry{})
	for i := range 8 {
		for c := class(0); c < numClasses; c++ {
			if _, err := a.enqueue(classedJob(fmt.Sprintf("%s%d", c, i), c)); err != nil {
				t.Fatalf("enqueue: %v", err)
			}
		}
	}
	var got []string
	for range 8 {
		j, ok := a.next()
		if !ok {
			t.Fatal("next = closed with jobs queued")
		}
		got = append(got, j.id)
	}
	// Two full cycles of weights 2/1/1: interactive ×2, batch, background.
	want := "interactive0 interactive1 batch0 background0 interactive2 interactive3 batch1 background1"
	if s := strings.Join(got, " "); s != want {
		t.Fatalf("DRR order = %q; want %q", s, want)
	}
}

func TestAdmitterEvictsLowestClassFirst(t *testing.T) {
	a := testAdmitter(2)
	bg := classedJob("bg", classBackground)
	ba := classedJob("ba", classBatch)
	for _, j := range []*job{bg, ba} {
		if _, err := a.enqueue(j); err != nil {
			t.Fatalf("enqueue %s: %v", j.id, err)
		}
	}
	// Interactive arrival at the full bound: background (lowest) is the
	// victim, not batch.
	victim, err := a.enqueue(classedJob("in", classInteractive))
	if err != nil {
		t.Fatalf("interactive at full queue: %v", err)
	}
	if victim == nil || victim.id != "bg" {
		t.Fatalf("victim = %+v; want bg", victim)
	}
	// A second interactive evicts batch (now the lowest queued below it).
	victim, err = a.enqueue(classedJob("in2", classInteractive))
	if err != nil {
		t.Fatalf("second interactive: %v", err)
	}
	if victim == nil || victim.id != "ba" {
		t.Fatalf("victim = %+v; want ba", victim)
	}
	// A third has nothing below it left: shed itself.
	var se *shedError
	if _, err := a.enqueue(classedJob("in3", classInteractive)); !errors.As(err, &se) {
		t.Fatalf("interactive with no lower class queued = %v; want shedError", err)
	}
	if se.class != classInteractive {
		t.Fatalf("shed class = %s; want interactive", se.class)
	}
}

func TestAdmitterPerClassBound(t *testing.T) {
	a := newAdmitter(16, [numClasses]int{1, 1, 1}, [numClasses]int{}, &metrics.Registry{})
	if _, err := a.enqueue(classedJob("a", classBatch)); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	var se *shedError
	if _, err := a.enqueue(classedJob("b", classBatch)); !errors.As(err, &se) {
		t.Fatalf("batch past class bound = %v; want shedError", err)
	}
	// Other classes are unaffected by a full sibling.
	if _, err := a.enqueue(classedJob("c", classInteractive)); err != nil {
		t.Fatalf("interactive with full batch class: %v", err)
	}
}

func TestAdmitterForceEnqueueBypassesBounds(t *testing.T) {
	a := testAdmitter(1)
	if _, err := a.enqueue(classedJob("a", classInteractive)); err != nil {
		t.Fatal(err)
	}
	// Replay path: past every bound, never shed.
	a.forceEnqueue(classedJob("replayed", classInteractive))
	if d := a.depth(); d != 2 {
		t.Fatalf("depth after forceEnqueue = %d; want 2", d)
	}
}

func TestParseClass(t *testing.T) {
	for _, tc := range []struct {
		in   string
		def  class
		want class
		ok   bool
	}{
		{"", classInteractive, classInteractive, true},
		{"", classBatch, classBatch, true},
		{"interactive", classBatch, classInteractive, true},
		{"batch", classInteractive, classBatch, true},
		{"background", classInteractive, classBackground, true},
		{"urgent", classInteractive, 0, false},
	} {
		got, err := parseClass(tc.in, tc.def)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("parseClass(%q) = %v, %v; want %v ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// TestFloodInteractiveSurvives is the acceptance scenario: one busy
// worker, a background flood filling the queue, and an interactive
// submission that must still admit (evicting background) while further
// background work is shed with the Retry-After contract.
func TestFloodInteractiveSurvives(t *testing.T) {
	leakCheck(t, 2)
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 3})

	// Occupy the only worker far beyond the test's lifetime.
	long := &ringmesh.RunOptions{WarmupCycles: 500_000_000, BatchCycles: 1000, Batches: 1}
	resp, raw := postJSON(t, ts.URL+"/v1/runs", runRequest{Config: testConfig(), Options: long})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("occupier POST = %d: %s", resp.StatusCode, raw)
	}
	waitForRunning(t, s, decodeDoc(t, raw).ID)

	// Background flood fills every queue slot (distinct seeds so the
	// single-flight cache cannot collapse them).
	var bgIDs []string
	for i := range 3 {
		cfg := testConfig()
		cfg.Seed = uint64(1000 + i)
		resp, raw := postJSON(t, ts.URL+"/v1/runs",
			runRequest{Config: cfg, Options: long, Class: "background"})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("background %d POST = %d: %s", i, resp.StatusCode, raw)
		}
		bgIDs = append(bgIDs, decodeDoc(t, raw).ID)
	}

	// Interactive still admits: the newest background job is evicted.
	cfg := testConfig()
	cfg.Seed = 7
	resp, raw = postJSON(t, ts.URL+"/v1/runs", runRequest{Config: cfg, Options: long})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("interactive POST under flood = %d: %s; want 202", resp.StatusCode, raw)
	}
	evicted := awaitJob(t, ts.URL, bgIDs[len(bgIDs)-1], true)
	if evicted.State != JobFailed || evicted.Error == nil || evicted.Error.Kind != "shed" {
		t.Fatalf("evicted background job = %s %+v; want failed/shed", evicted.State, evicted.Error)
	}

	// Another background submission that explicitly demands exact
	// simulation has nothing below it: shed with the documented
	// backpressure contract (never silently downgraded).
	cfg.Seed = 8
	resp, raw = postJSON(t, ts.URL+"/v1/runs",
		runRequest{Config: cfg, Options: long, Class: "background", Fidelity: "simulate"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("background POST at saturation = %d: %s; want 503", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("shed 503 Retry-After = %q; want >= 1s", ra)
	}
	var eb errorBody
	mustUnmarshal(t, raw, &eb)
	if eb.Class != "background" || eb.RetryAfterMS < 1000 || eb.Error == "" {
		t.Fatalf("shed body = %+v; want class=background, retry_after_ms >= 1000", eb)
	}

	// A fidelity-agnostic background submission degrades instead: an
	// analytic-labeled answer with its error bound, not a 503. The
	// upgrade job cannot admit under the same pressure, so no ID.
	cfg.Seed = 9
	resp, raw = postJSON(t, ts.URL+"/v1/runs",
		runRequest{Config: cfg, Options: long, Class: "background"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("agnostic background POST at saturation = %d: %s; want degraded 200", resp.StatusCode, raw)
	}
	deg := decodeDoc(t, raw)
	if deg.State != JobDone || !deg.Degraded || deg.Result == nil {
		t.Fatalf("degraded doc = %+v; want done/degraded with a result", deg)
	}
	var dres ringmesh.Result
	mustUnmarshal(t, deg.Result, &dres)
	if dres.Fidelity != "analytic" || dres.ErrorBound == nil {
		t.Fatalf("degraded result fidelity = %q bound = %v; want labeled analytic with a bound",
			dres.Fidelity, dres.ErrorBound)
	}

	// The per-class and fidelity counters prove the story on /metrics:
	// background sheds are the evicted job, the explicit-simulate
	// rejection, the degraded job's failed admission and its upgrade
	// attempt; exactly one answer was served at degraded fidelity.
	mtext := getMetrics(t, ts.URL)
	for _, want := range []string{
		`ringmeshd_admit_total{class="interactive"} 2`,
		`ringmeshd_admit_total{class="background"} 3`,
		`ringmeshd_shed_total{class="background"} 4`,
		`ringmeshd_queue_depth{class="interactive"} 1`,
		`ringmeshd_fidelity_degraded_total 1`,
		`ringmeshd_fidelity_analytic_answers_total 1`,
		`ringmeshd_fidelity_upgrades_total 0`,
	} {
		if !strings.Contains(mtext, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Cancel the flood so cleanup doesn't wait on 500M-cycle runs.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v; want deadline exceeded", err)
	}
}

// TestDeadlineExpiredInQueueSkipsWorker: a queued job whose deadline
// passes before a worker frees up is terminated with kind "deadline"
// and never simulates.
func TestDeadlineExpiredInQueueSkipsWorker(t *testing.T) {
	leakCheck(t, 2)
	s, ts := newTestServer(t, Options{Workers: 1})

	long := &ringmesh.RunOptions{WarmupCycles: 500_000_000, BatchCycles: 1000, Batches: 1}
	resp, raw := postJSON(t, ts.URL+"/v1/runs", runRequest{Config: testConfig(), Options: long})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("occupier POST = %d: %s", resp.StatusCode, raw)
	}
	waitForRunning(t, s, decodeDoc(t, raw).ID)

	cfg := testConfig()
	cfg.Seed = 11
	resp, raw = postJSON(t, ts.URL+"/v1/runs",
		runRequest{Config: cfg, Options: testOptions(), DeadlineMS: 30})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("deadline POST = %d: %s", resp.StatusCode, raw)
	}
	id := decodeDoc(t, raw).ID
	time.Sleep(50 * time.Millisecond) // let the deadline lapse in queue

	// Free the worker; it must discard the expired job, not run it.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v; want deadline exceeded", err)
	}
	d := awaitJob(t, ts.URL, id, true)
	if d.State != JobFailed || d.Error == nil || d.Error.Kind != "deadline" {
		t.Fatalf("expired job = %s %+v; want failed/deadline", d.State, d.Error)
	}
	if !strings.Contains(d.Error.Message, "before execution") {
		t.Fatalf("expired job message = %q; want the in-queue termination, not a run timeout", d.Error.Message)
	}
	if !strings.Contains(getMetrics(t, ts.URL), `ringmeshd_deadline_expired_total{class="interactive"} 1`) {
		t.Error("metrics missing deadline_expired counter")
	}
}

// TestDeadlineInfeasibleRejectedAtAdmission: once the run-duration
// histogram has enough observations, a deadline the telemetry says
// cannot be met is refused with 504 before touching the queue.
func TestDeadlineInfeasibleRejectedAtAdmission(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Train the mesh family histogram past costMinObs completed runs.
	for i := range costMinObs {
		cfg := testConfig()
		cfg.Seed = uint64(100 + i)
		resp, raw := postJSON(t, ts.URL+"/v1/runs", runRequest{Config: cfg, Options: testOptions()})
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("training POST %d = %d: %s", i, resp.StatusCode, raw)
		}
		awaitJob(t, ts.URL, decodeDoc(t, raw).ID, false)
	}

	cfg := testConfig()
	cfg.Seed = 999 // uncached, so the submission cannot short-circuit
	resp, raw := postJSON(t, ts.URL+"/v1/runs",
		runRequest{Config: cfg, Options: testOptions(), DeadlineMS: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("infeasible deadline POST = %d: %s; want 504", resp.StatusCode, raw)
	}
	var eb errorBody
	mustUnmarshal(t, raw, &eb)
	if !strings.Contains(eb.Error, "deadline infeasible") {
		t.Fatalf("infeasible body = %+v", eb)
	}
	if !strings.Contains(getMetrics(t, ts.URL), `ringmeshd_deadline_rejected_total{class="interactive"} 1`) {
		t.Error("metrics missing deadline_rejected counter")
	}

	// A cached config bypasses the feasibility check entirely: the
	// answer is free.
	cached := testConfig()
	cached.Seed = 100
	resp, raw = postJSON(t, ts.URL+"/v1/runs",
		runRequest{Config: cached, Options: testOptions(), DeadlineMS: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached POST with tiny deadline = %d: %s; want 200", resp.StatusCode, raw)
	}
}

func TestDeadlineHeaderParsedAndBodyWins(t *testing.T) {
	r, _ := http.NewRequest(http.MethodPost, "/v1/runs", nil)
	r.Header.Set(deadlineHeader, "10s")
	_, dl, err := submitMeta(r, "", 0, classInteractive)
	if err != nil || dl.IsZero() {
		t.Fatalf("header deadline = %v, %v; want set", dl, err)
	}
	if until := time.Until(dl); until < 9*time.Second || until > 11*time.Second {
		t.Fatalf("header deadline %s out; want ~10s", until)
	}
	_, dl, err = submitMeta(r, "", 60_000, classInteractive)
	if err != nil {
		t.Fatal(err)
	}
	if until := time.Until(dl); until < 59*time.Second {
		t.Fatalf("body deadline %s; want body's 60s to win over header's 10s", until)
	}
	r.Header.Set(deadlineHeader, "not-a-duration")
	if _, _, err := submitMeta(r, "", 0, classInteractive); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, _, err := submitMeta(r, "", -5, classInteractive); err == nil {
		t.Fatal("negative deadline_ms accepted")
	}
}

func TestBatchEndpoint(t *testing.T) {
	leakCheck(t, 2)
	_, ts := newTestServer(t, Options{})

	var runs []batchRunRequest
	for i := range 3 {
		cfg := testConfig()
		cfg.Seed = uint64(200 + i%2) // entries 0 and 2 identical: cache shares them
		runs = append(runs, batchRunRequest{Config: cfg, Options: testOptions()})
	}
	resp, raw := postJSON(t, ts.URL+"/v1/batch", batchRequest{Runs: runs})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch POST = %d: %s", resp.StatusCode, raw)
	}
	doc := decodeDoc(t, raw)
	if doc.Kind != kindBatch || doc.Class != "batch" {
		t.Fatalf("batch doc kind=%s class=%s; want batch/batch", doc.Kind, doc.Class)
	}
	final := awaitJob(t, ts.URL, doc.ID, false)
	if len(final.Items) != 3 {
		t.Fatalf("batch items = %d; want 3", len(final.Items))
	}
	for i, it := range final.Items {
		if it.Error != nil || it.Result == nil {
			t.Fatalf("item %d = %+v; want a result", i, it)
		}
		if it.Topology == "" {
			t.Errorf("item %d missing topology", i)
		}
	}
	if final.Progress != 1 {
		t.Fatalf("batch progress = %g; want 1", final.Progress)
	}

	// Class override and validation errors.
	resp, raw = postJSON(t, ts.URL+"/v1/batch", batchRequest{Runs: runs, Class: "urgent"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad class POST = %d: %s", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/batch", batchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch POST = %d: %s", resp.StatusCode, raw)
	}
	bad := testConfig()
	bad.Nodes = 0
	resp, raw = postJSON(t, ts.URL+"/v1/batch",
		batchRequest{Runs: []batchRunRequest{{Config: bad}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid entry POST = %d: %s", resp.StatusCode, raw)
	}
}

func TestFinishBatchClassifiesWholesaleFailure(t *testing.T) {
	j := newJob("b1", kindBatch, 8)
	err := j.finishBatch([]BatchItem{
		{Index: 0, Error: &JobError{Status: 422, Kind: "stall", Message: "stalled"}},
		{Index: 1, Error: &JobError{Status: 500, Kind: "runtime", Message: "boom"}},
	}, false)
	if err == nil {
		t.Fatal("all-failed batch reported success")
	}
	v := j.view()
	if v.State != JobFailed || v.Error.Kind != "stall" || v.Error.Status != 422 {
		t.Fatalf("wholesale failure = %+v; want first item's classification", v.Error)
	}

	j2 := newJob("b2", kindBatch, 8)
	res := ringmesh.Result{}
	if err := j2.finishBatch([]BatchItem{
		{Index: 0, Result: &res},
		{Index: 1, Error: &JobError{Status: 500, Kind: "runtime", Message: "boom"}},
	}, false); err != nil {
		t.Fatalf("partial batch = %v; want degraded success", err)
	}
	if v := j2.view(); v.State != JobDone || !v.Degraded {
		t.Fatalf("partial batch view = state %s degraded %v; want done/degraded", v.State, v.Degraded)
	}
}

func TestRateLimitCarriesRetryAfter(t *testing.T) {
	_, ts := newTestServer(t, Options{Rate: 0.5, Burst: 1})

	req := runRequest{Config: testConfig(), Options: testOptions()}
	resp, raw := postJSON(t, ts.URL+"/v1/runs", req)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("first POST = %d: %s", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/runs", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second POST = %d: %s; want 429", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("429 Retry-After = %q; want \"2\" (one token at 0.5/s)", ra)
	}
	var eb errorBody
	mustUnmarshal(t, raw, &eb)
	if eb.RetryAfterMS != 2000 {
		t.Fatalf("429 retry_after_ms = %d; want 2000", eb.RetryAfterMS)
	}
}

// TestReadyReportsQueueDepths: /readyz carries per-class depths while
// ready.
func TestReadyReportsQueueDepths(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d; want 200", resp.StatusCode)
	}
	var body readyBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ready" {
		t.Fatalf("readyz status = %q", body.Status)
	}
	for _, c := range []string{"interactive", "batch", "background"} {
		if _, ok := body.Queues[c]; !ok {
			t.Errorf("readyz missing queue depth for %q: %+v", c, body.Queues)
		}
	}
}

// waitForRunning spins until the job leaves the queue (a worker picked
// it up), so tests can saturate the pool deterministically.
func waitForRunning(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		j, ok := s.lookup(id)
		if ok {
			j.mu.Lock()
			st := j.state
			j.mu.Unlock()
			if st == JobRunning {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never started running", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func mustUnmarshal(t *testing.T, raw []byte, into any) {
	t.Helper()
	if err := json.Unmarshal(raw, into); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}
}
