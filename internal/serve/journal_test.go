package serve

import (
	"bytes"
	"context"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ringmesh/internal/metrics"
)

func discardLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func openTestJournal(t *testing.T, dir string) *jobJournal {
	t.Helper()
	jl, err := openJournal(dir, &metrics.Registry{}, discardLog())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { jl.close() })
	return jl
}

func TestJournalRecordRoundtrip(t *testing.T) {
	cfg := testConfig()
	opt := *testOptions()
	rec := journalRecord{
		Op:       opAccepted,
		ID:       "j000042",
		Kind:     kindRun,
		Class:    "background",
		Deadline: time.Now().Add(time.Minute).UnixNano(),
		Config:   &cfg,
		Options:  &opt,
	}
	line, err := encodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(line, []byte("\n")) {
		t.Fatal("encoded record missing newline terminator")
	}
	got, err := decodeRecord(bytes.TrimSuffix(line, []byte("\n")))
	if err != nil {
		t.Fatalf("decode own encoding: %v", err)
	}
	if got.Op != rec.Op || got.ID != rec.ID || got.Kind != rec.Kind ||
		got.Class != rec.Class || got.Deadline != rec.Deadline {
		t.Fatalf("roundtrip = %+v; want %+v", got, rec)
	}
	if got.Config == nil || *got.Config != cfg {
		t.Fatalf("roundtrip config = %+v; want %+v", got.Config, cfg)
	}
}

func TestJournalDecodeRejectsCorruption(t *testing.T) {
	cfg := testConfig()
	valid, err := encodeRecord(journalRecord{Op: opAccepted, ID: "j000001", Kind: kindRun, Config: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	valid = bytes.TrimSuffix(valid, []byte("\n"))

	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)-3] ^= 0x20 // payload byte: checksum must catch it

	cases := map[string][]byte{
		"empty":          nil,
		"garbage":        []byte("not a journal line"),
		"bad version":    []byte("ringmeshd-wal-v0 abc 3 {}"),
		"missing fields": []byte(journalVersion + " deadbeef"),
		"bad length":     []byte(journalVersion + " deadbeef nope {}"),
		"truncated":      valid[:len(valid)-4],
		"flipped byte":   flipped,
	}
	for name, line := range cases {
		if _, err := decodeRecord(line); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	if _, err := decodeRecord(valid); err != nil {
		t.Fatalf("control line rejected: %v", err)
	}
}

// TestJournalReplayCompletesUnfinishedJobs is the crash-recovery
// acceptance scenario, with the "crash" simulated by hand-writing the
// WAL a kill -9 would leave behind: three accepted-but-unfinished jobs
// (a run, a sweep, a batch) plus one already-done job. A fresh server
// must replay the three under their original IDs and classes, complete
// them, and resume its ID counter past every journaled ID.
func TestJournalReplayCompletesUnfinishedJobs(t *testing.T) {
	leakCheck(t, 2)
	dir := t.TempDir()
	jl := openTestJournal(t, dir)

	cfg, opt := testConfig(), *testOptions()
	sweepCfg := cfg
	sweepCfg.Nodes = 0 // sweeps take nodes from sizes
	jl.append(journalRecord{Op: opAccepted, ID: "j000001", Kind: kindRun,
		Class: "interactive", Config: &cfg, Options: &opt})
	jl.append(journalRecord{Op: opAccepted, ID: "j000002", Kind: kindSweep,
		Class: "background", Config: &sweepCfg, Options: &opt, Sizes: []int{4, 16}})
	jl.append(journalRecord{Op: opAccepted, ID: "j000003", Kind: kindBatch,
		Class: "batch", Entries: []batchEntry{{Config: cfg, Options: opt}}})
	jl.append(journalRecord{Op: opAccepted, ID: "j000004", Kind: kindRun,
		Class: "interactive", Config: &cfg, Options: &opt})
	jl.append(journalRecord{Op: opDone, ID: "j000004"})
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Options{JournalDir: dir})

	for id, wantClass := range map[string]string{
		"j000001": "interactive", "j000002": "background", "j000003": "batch",
	} {
		d := awaitJob(t, ts.URL, id, false)
		if d.ID != id {
			t.Fatalf("replayed job answered as %s; want original ID %s", d.ID, id)
		}
		if d.Class != wantClass {
			t.Fatalf("job %s class = %q; want %q preserved across restart", id, d.Class, wantClass)
		}
	}
	// The finished job was not resurrected.
	resp, err := http.Get(ts.URL + "/v1/jobs/j000004")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("done-before-crash job GET = %d; want 404 (not replayed)", resp.StatusCode)
	}

	// The ID counter resumed past every journaled ID.
	resp2, raw := postJSON(t, ts.URL+"/v1/runs", runRequest{Config: cfg, Options: &opt})
	if resp2.StatusCode != http.StatusOK && resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("post-replay POST = %d: %s", resp2.StatusCode, raw)
	}
	if id := decodeDoc(t, raw).ID; id != "j000005" {
		t.Fatalf("post-replay job ID = %s; want j000005", id)
	}

	mtext := getMetrics(t, ts.URL)
	if !strings.Contains(mtext, "ringmeshd_journal_replayed_total 3") {
		t.Error("metrics missing ringmeshd_journal_replayed_total 3")
	}
}

// TestJournalReplayQuarantinesCorruptLines: corrupt or torn lines are
// moved aside and counted; the rest of the log still replays. Never a
// panic — the decoder is additionally fuzzed for that.
func TestJournalReplayQuarantinesCorruptLines(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, dir)
	cfg, opt := testConfig(), *testOptions()
	jl.append(journalRecord{Op: opAccepted, ID: "j000001", Kind: kindRun,
		Class: "interactive", Config: &cfg, Options: &opt})
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}

	// Splice garbage between valid records, plus a torn final line —
	// what a crash mid-write leaves.
	path := filepath.Join(dir, journalFile)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn, err := encodeRecord(journalRecord{Op: opAccepted, ID: "j000002", Kind: kindRun,
		Config: &cfg, Options: &opt})
	if err != nil {
		t.Fatal(err)
	}
	var spliced bytes.Buffer
	spliced.WriteString("totally corrupt line\n")
	spliced.Write(good)
	spliced.Write(torn[:len(torn)/2])
	spliced.WriteString("\n")
	if err := os.WriteFile(path, spliced.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Options{JournalDir: dir})
	d := awaitJob(t, ts.URL, "j000001", false)
	if d.ID != "j000001" {
		t.Fatalf("surviving job = %s; want j000001", d.ID)
	}
	qfiles, err := filepath.Glob(filepath.Join(dir, quarantineDir, "*.rec"))
	if err != nil {
		t.Fatal(err)
	}
	if len(qfiles) != 2 {
		t.Fatalf("quarantined files = %v; want 2 (garbage + torn)", qfiles)
	}
	if !strings.Contains(getMetrics(t, ts.URL), "ringmeshd_journal_quarantined_total 2") {
		t.Error("metrics missing quarantined counter")
	}
}

// TestJournalReplayExpiredDeadline: a job whose deadline passed during
// the outage is terminated with the deadline taxonomy, not re-run.
func TestJournalReplayExpiredDeadline(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, dir)
	cfg, opt := testConfig(), *testOptions()
	jl.append(journalRecord{Op: opAccepted, ID: "j000001", Kind: kindRun,
		Class: "interactive", Deadline: time.Now().Add(-time.Second).UnixNano(),
		Config: &cfg, Options: &opt})
	if err := jl.close(); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Options{JournalDir: dir})
	d := awaitJob(t, ts.URL, "j000001", true)
	if d.State != JobFailed || d.Error == nil || d.Error.Kind != "deadline" {
		t.Fatalf("expired replayed job = %s %+v; want failed/deadline", d.State, d.Error)
	}
}

// TestJournalLifecycleRecords: a job served normally leaves a
// journal whose replay finds nothing unfinished.
func TestJournalLifecycleRecords(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{JournalDir: dir})

	resp, raw := postJSON(t, ts.URL+"/v1/runs", runRequest{Config: testConfig(), Options: testOptions()})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d: %s", resp.StatusCode, raw)
	}
	awaitJob(t, ts.URL, decodeDoc(t, raw).ID, false)
	ctx, cancel := drainCtx()
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	jl := openTestJournal(t, dir)
	unfinished, maxID, err := jl.replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(unfinished) != 0 {
		t.Fatalf("unfinished after clean drain = %+v; want none", unfinished)
	}
	if maxID != 1 {
		t.Fatalf("maxID = %d; want 1", maxID)
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	jl := openTestJournal(t, dir)
	cfg, opt := testConfig(), *testOptions()
	recs := make([]journalRecord, 3)
	for i := range recs {
		recs[i] = journalRecord{Op: opAccepted, ID: []string{"j000001", "j000002", "j000003"}[i],
			Kind: kindRun, Config: &cfg, Options: &opt}
		jl.append(recs[i])
	}
	jl.append(journalRecord{Op: opDone, ID: "j000001"})
	jl.append(journalRecord{Op: opFailed, ID: "j000003"})

	before, err := os.Stat(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.compact([]journalRecord{recs[1]}); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction grew the log: %d -> %d bytes", before.Size(), after.Size())
	}

	unfinished, _, err := jl.replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(unfinished) != 1 || unfinished[0].ID != "j000002" {
		t.Fatalf("post-compaction unfinished = %+v; want only j000002", unfinished)
	}

	// The handle survived the rename: appends still land in the new log.
	jl.append(journalRecord{Op: opRunning, ID: "j000002"})
	data, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), opRunning) {
		t.Fatal("append after compaction missing from the log")
	}
}

// TestJournalStackPreservesGoldenBytes: the full admission + journal
// stack must not perturb simulation results — the same config yields
// byte-identical result documents with and without it.
func TestJournalStackPreservesGoldenBytes(t *testing.T) {
	run := func(opt Options) []byte {
		t.Helper()
		_, ts := newTestServer(t, opt)
		resp, raw := postJSON(t, ts.URL+"/v1/runs",
			runRequest{Config: testConfig(), Options: testOptions(), Class: "batch", DeadlineMS: 60_000})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST = %d: %s", resp.StatusCode, raw)
		}
		return awaitJob(t, ts.URL, decodeDoc(t, raw).ID, false).Result
	}
	plain := run(Options{})
	journaled := run(Options{JournalDir: t.TempDir(), ClassDepth: 8})
	if len(plain) == 0 || !bytes.Equal(plain, journaled) {
		t.Fatalf("results differ with the journal stack enabled:\nplain:     %s\njournaled: %s", plain, journaled)
	}
}

func drainCtx() (ctx context.Context, cancel context.CancelFunc) {
	return context.WithTimeout(context.Background(), 10*time.Second)
}
