package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"ringmesh"
)

// chromeTrace mirrors the Chrome trace-event JSON the trace endpoint
// serves.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestJobTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	resp, raw := postJSON(t, ts.URL+"/v1/runs", runRequest{Config: testConfig(), Options: testOptions()})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d: %s", resp.StatusCode, raw)
	}
	id := decodeDoc(t, raw).ID
	awaitJob(t, ts.URL, id, false)

	tr, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("trace GET = %d", tr.StatusCode)
	}
	if ct := tr.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("trace content-type = %q", ct)
	}
	var ct chromeTrace
	if err := json.NewDecoder(tr.Body).Decode(&ct); err != nil {
		t.Fatalf("trace not valid Chrome JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range ct.TraceEvents {
		seen[ev.Name] = true
		if ev.Ph != "X" {
			t.Errorf("span %q phase = %q; want complete event X", ev.Name, ev.Ph)
		}
		if ev.Dur < 0 || ev.TS < 0 {
			t.Errorf("span %q has negative timing ts=%g dur=%g", ev.Name, ev.TS, ev.Dur)
		}
	}
	for _, want := range []string{"validate", "enqueue", "queue-wait", "run", "cache-store"} {
		if !seen[want] {
			t.Errorf("trace missing lifecycle span %q; got %v", want, seen)
		}
	}

	// Unknown job ids 404 on the trace route too.
	nf, err := http.Get(ts.URL + "/v1/jobs/j999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace GET = %d", nf.StatusCode)
	}
}

func TestJobHistogramsAndRuntimeGaugesExported(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	resp, raw := postJSON(t, ts.URL+"/v1/runs", runRequest{Config: testConfig(), Options: testOptions()})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d: %s", resp.StatusCode, raw)
	}
	awaitJob(t, ts.URL, decodeDoc(t, raw).ID, false)

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, err = buf.ReadFrom(mr.Body)
	mr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`ringmeshd_job_run_seconds_bucket{family="mesh",outcome="done",le="+Inf"} 1`,
		`ringmeshd_job_run_seconds_count{family="mesh",outcome="done"} 1`,
		`ringmeshd_job_queue_wait_seconds_bucket{family="mesh",le="+Inf"} 1`,
		"go_goroutines ",
		"go_heap_alloc_bytes ",
		"go_gc_pause_total_seconds ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}

func TestPprofGatedByOption(t *testing.T) {
	_, off := newTestServer(t, Options{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof without EnablePprof = %d; want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Options{EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index with EnablePprof = %d; want 200", resp.StatusCode)
	}
}

// watchUntilDone consumes an SSE stream until its "done" event (with
// payload) arrives, returning the final job document.
func watchUntilDone(t *testing.T, url string) jobDoc {
	t.Helper()
	watch, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Body.Close()
	var lastEvent, lastData string
	sc := bufio.NewScanner(watch.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			lastEvent = strings.TrimPrefix(line, "event: ")
			lastData = ""
		}
		if strings.HasPrefix(line, "data: ") {
			lastData = strings.TrimPrefix(line, "data: ")
		}
		if lastEvent == "done" && lastData != "" {
			return decodeDoc(t, []byte(lastData))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("watch stream error before done: %v", err)
	}
	t.Fatalf("watch stream closed without a done event")
	return jobDoc{}
}

// waitGoroutinesBelow polls until the goroutine count drops to the
// bound, failing the test if it never does — the leak check for the
// SSE termination tests.
func waitGoroutinesBelow(t *testing.T, bound int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= bound {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines stuck at %d (bound %d):\n%s",
				runtime.NumGoroutine(), bound, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestWatchTerminatesWhenJobCanceledMidRun opens an SSE watch on a
// long job, then cancels the job out from under it (drain with an
// expired deadline). The stream must deliver a "done" event carrying
// the failed/canceled document and terminate — no watcher goroutine
// may outlive the job.
func TestWatchTerminatesWhenJobCanceledMidRun(t *testing.T) {
	base := runtime.NumGoroutine()
	s, ts := newTestServer(t, Options{Workers: 1})

	long := &ringmesh.RunOptions{WarmupCycles: 500_000_000, BatchCycles: 1000, Batches: 1}
	resp, raw := postJSON(t, ts.URL+"/v1/runs", runRequest{Config: testConfig(), Options: long})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d: %s", resp.StatusCode, raw)
	}
	id := decodeDoc(t, raw).ID

	// Watch from a goroutine while the job runs, then cancel it.
	docCh := make(chan jobDoc, 1)
	go func() {
		docCh <- watchUntilDone(t, ts.URL+"/v1/jobs/"+id+"?watch=1")
	}()
	time.Sleep(50 * time.Millisecond) // let the watcher attach mid-run

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v; want deadline exceeded", err)
	}

	select {
	case d := <-docCh:
		if d.State != JobFailed || d.Error == nil || d.Error.Kind != "canceled" {
			t.Fatalf("watched cancellation = state %s error %+v; want failed/canceled", d.State, d.Error)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watch stream did not terminate after job cancellation")
	}
	ts.Close()
	// Everything the test spawned — worker pool, watcher, HTTP serving
	// goroutines — must unwind.
	waitGoroutinesBelow(t, base+2)
}

// TestWatchTerminatesDuringDrain is the SIGTERM-shaped shutdown: a
// graceful drain lets the in-flight job finish, and the open SSE
// watch receives its "done" document and terminates cleanly.
func TestWatchTerminatesDuringDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	s, ts := newTestServer(t, Options{Workers: 1})

	opt := &ringmesh.RunOptions{WarmupCycles: 100_000, BatchCycles: 50_000, Batches: 2}
	resp, raw := postJSON(t, ts.URL+"/v1/runs", runRequest{Config: testConfig(), Options: opt})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d: %s", resp.StatusCode, raw)
	}
	id := decodeDoc(t, raw).ID

	docCh := make(chan jobDoc, 1)
	go func() {
		docCh <- watchUntilDone(t, ts.URL+"/v1/jobs/"+id+"?watch=1")
	}()
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	select {
	case d := <-docCh:
		if d.State != JobDone || len(d.Result) == 0 {
			t.Fatalf("watched drain completion = state %s; want done with result", d.State)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watch stream did not terminate after drain")
	}
	ts.Close()
	waitGoroutinesBelow(t, base+2)
}
