package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"ringmesh/internal/metrics"
)

// class is a job's priority class. Lower values are more urgent: the
// weighted scheduler drains interactive ahead of batch ahead of
// background, and under saturation the admission layer sheds from the
// highest value (least urgent) class first.
type class uint8

const (
	// classInteractive is a human waiting on the answer: single runs
	// from a terminal or notebook. Default for /v1/runs and /v1/sweeps.
	classInteractive class = iota
	// classBatch is bulk parameter-sweep traffic: many points, nobody
	// blocked on any single one. Default for /v1/batch.
	classBatch
	// classBackground is best-effort work (speculative precomputation,
	// cache warming): first to be shed, last to be scheduled.
	classBackground
	numClasses
)

// String names the class in the API's vocabulary.
func (c class) String() string {
	switch c {
	case classInteractive:
		return "interactive"
	case classBatch:
		return "batch"
	case classBackground:
		return "background"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// parseClass inverts String; the empty string selects def (each
// endpoint has its own default class).
func parseClass(s string, def class) (class, error) {
	switch s {
	case "":
		return def, nil
	case "interactive":
		return classInteractive, nil
	case "batch":
		return classBatch, nil
	case "background":
		return classBackground, nil
	default:
		return 0, fmt.Errorf("unknown class %q (want interactive, batch or background)", s)
	}
}

// defaultClassWeights are the deficit-round-robin shares: per refill
// cycle under full load, 16 interactive jobs run for every 4 batch and
// 1 background. Interactive dominates without starving the rest — a
// queued batch job always runs within one refill cycle.
var defaultClassWeights = [numClasses]int{16, 4, 1}

// shedError reports a submission (or an already-queued victim) shed by
// the admission layer, carrying the class the HTTP layer echoes in the
// structured 503 body.
type shedError struct {
	class  class
	reason string
}

func (e *shedError) Error() string {
	return fmt.Sprintf("serve: %s job shed: %s", e.class, e.reason)
}

// admitter is the priority admission layer: one bounded FIFO per
// class, drained by a deficit-round-robin scheduler. It replaces the
// single job channel so interactive work overtakes queued bulk sweeps
// instead of waiting behind them. Safe for concurrent use.
//
// Bounds are enforced on two axes: a per-class depth (one class can
// never occupy the whole daemon) and a total depth (the admission
// point for load shedding). When the total is reached, an arriving job
// may evict the newest job of a strictly less urgent class — the
// lowest class first — so a batch flood can never wedge out
// interactive submissions; an arriving job with nothing below it is
// shed itself.
type admitter struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  [numClasses][]*job
	depths  [numClasses]int
	weights [numClasses]int
	credits [numClasses]int
	total   int
	max     int
	closed  bool
}

// newAdmitter builds the admission layer. total bounds the sum of all
// queues; depths bounds each class (entries < 1 default to total);
// weights below 1 default to defaultClassWeights. Gauges for per-class
// and total depth are registered in reg.
func newAdmitter(total int, depths, weights [numClasses]int, reg *metrics.Registry) *admitter {
	if total < 1 {
		total = 1
	}
	a := &admitter{max: total}
	a.cond = sync.NewCond(&a.mu)
	for c := class(0); c < numClasses; c++ {
		a.depths[c] = depths[c]
		if a.depths[c] < 1 {
			a.depths[c] = total
		}
		a.weights[c] = weights[c]
		if a.weights[c] < 1 {
			a.weights[c] = defaultClassWeights[c]
		}
		a.credits[c] = a.weights[c]
		c := c
		reg.Gauge("ringmeshd_queue_depth", metrics.Labels{Class: c.String()}, func() float64 {
			a.mu.Lock()
			defer a.mu.Unlock()
			return float64(len(a.queues[c]))
		})
	}
	return a
}

// depth reports the total number of queued jobs.
func (a *admitter) depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// enqueue admits j into its class queue, or reports why not. At the
// total bound it sheds the newest job of the lowest non-empty class
// strictly below j's — returned as victim so the caller can fail it
// and journal the eviction. The newest is chosen over the oldest
// because it has the least queue time invested and its submitter is
// the most likely to still be around to retry.
func (a *admitter) enqueue(j *job) (victim *job, err error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return nil, errDraining
	}
	c := j.class
	if len(a.queues[c]) >= a.depths[c] {
		return nil, &shedError{class: c, reason: fmt.Sprintf("class queue full (%d)", a.depths[c])}
	}
	if a.total >= a.max {
		for v := numClasses - 1; int(v) > int(c); v-- {
			if n := len(a.queues[v]); n > 0 {
				victim = a.queues[v][n-1]
				a.queues[v][n-1] = nil
				a.queues[v] = a.queues[v][:n-1]
				a.total--
				break
			}
		}
		if victim == nil {
			return nil, &shedError{class: c, reason: fmt.Sprintf("queue full (%d) with nothing less urgent to shed", a.max)}
		}
	}
	a.queues[c] = append(a.queues[c], j)
	a.total++
	a.cond.Signal()
	return victim, nil
}

// forceEnqueue admits j past every bound — the journal-replay path:
// these jobs were admitted before the crash, and re-bouncing them on a
// depth check would turn a restart into silent data loss.
func (a *admitter) forceEnqueue(j *job) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.queues[j.class] = append(a.queues[j.class], j)
	a.total++
	a.cond.Signal()
}

// next blocks until a job is schedulable and returns it, choosing the
// class by deficit round robin: each class spends credits (its weight)
// in priority order; when every non-empty class is out of credit, all
// credits refill. Under saturation each class therefore gets its
// weight's share of workers, in priority order within a cycle, and an
// empty class forfeits its share instead of idling the pool. Returns
// ok=false once the admitter is closed and every queue is empty — the
// worker-pool shutdown signal (queued jobs still drain first, matching
// graceful-drain semantics).
func (a *admitter) next() (j *job, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for {
		if a.total == 0 {
			if a.closed {
				return nil, false
			}
			a.cond.Wait()
			continue
		}
		// Two passes: if no non-empty class holds credit, refill every
		// class and go again — the second pass must succeed because some
		// queue is non-empty and weights are >= 1.
		for pass := 0; pass < 2; pass++ {
			for c := class(0); c < numClasses; c++ {
				if len(a.queues[c]) == 0 || a.credits[c] < 1 {
					continue
				}
				a.credits[c]--
				j := a.queues[c][0]
				a.queues[c][0] = nil
				a.queues[c] = a.queues[c][1:]
				a.total--
				return j, true
			}
			for c := class(0); c < numClasses; c++ {
				a.credits[c] = a.weights[c]
			}
		}
	}
}

// close stops admission and wakes every blocked worker; queued jobs
// are still handed out until the queues are empty.
func (a *admitter) close() {
	a.mu.Lock()
	a.closed = true
	a.mu.Unlock()
	a.cond.Broadcast()
}

// classDepths snapshots per-class queue depths for the readiness
// document.
func (a *admitter) classDepths() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, numClasses)
	for c := class(0); c < numClasses; c++ {
		out[c.String()] = len(a.queues[c])
	}
	return out
}

// classCtxKey carries a job's class down the execution context, so the
// coordinator can forward it to dispatched workers without widening
// every signature on the dispatch path.
type classCtxKey struct{}

func ctxWithClass(ctx context.Context, c class) context.Context {
	return context.WithValue(ctx, classCtxKey{}, c)
}

func classFromCtx(ctx context.Context) (class, bool) {
	c, ok := ctx.Value(classCtxKey{}).(class)
	return c, ok
}

// costMinObs is how many completed runs of a family the run-duration
// histogram must hold before the admission-time deadline feasibility
// check trusts its p95; below it, optimistic admission (the in-queue
// expiry check still catches doomed jobs).
const costMinObs = 8

// estimateCost predicts one unit of work's end-to-end time for a
// family from the telemetry the daemon already collects: p95 queue
// wait plus units times the p95 run duration. ok=false (not enough
// completed runs observed yet) means "no idea" — admit optimistically.
func (s *Server) estimateCost(family string, units int) (time.Duration, bool) {
	run := s.histogram("ringmeshd_job_run_seconds",
		metrics.Labels{Family: family, Outcome: "done"}, secondsBuckets)
	if run.Count() < costMinObs {
		return 0, false
	}
	est := float64(units) * run.Quantile(0.95)
	if wait := s.histogram("ringmeshd_job_queue_wait_seconds",
		metrics.Labels{Family: family}, secondsBuckets); wait.Count() > 0 {
		est += wait.Quantile(0.95)
	}
	return time.Duration(est * float64(time.Second)), true
}

// retryAfter advises a shed or rate-limited client how long to back
// off: the queued backlog divided by the worker pool, priced at the
// mean completed-run duration when telemetry has one, clamped to
// [1s, 30s] so the advice is never absurd in either direction.
func (s *Server) retryAfter(family string) time.Duration {
	mean := 0.5 // seconds; placeholder until telemetry accumulates
	if run := s.histogram("ringmeshd_job_run_seconds",
		metrics.Labels{Family: family, Outcome: "done"}, secondsBuckets); run.Count() > 0 {
		mean = run.Sum() / float64(run.Count())
	}
	backlog := 1 + s.adm.depth()/s.jobWorkers()
	d := time.Duration(float64(backlog) * mean * float64(time.Second))
	if d < time.Second {
		d = time.Second
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}
