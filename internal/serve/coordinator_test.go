package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ringmesh/internal/metrics"
)

// newTestCoordinator builds a coordinator over the given workers with
// test-speed tunables.
func newTestCoordinator(addrs ...string) *coordinator {
	co := newCoordinator(addrs, &metrics.Registry{}, nil)
	co.backoffBase = time.Millisecond
	co.backoffCap = 4 * time.Millisecond
	co.pollEvery = 2 * time.Millisecond
	return co
}

// stubOK answers every submission synchronously with a done job whose
// result carries the given latency (so tests can tell workers apart),
// and answers /healthz and /readyz with 200.
func stubOK(t *testing.T, latency float64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		res := res(latency)
		writeJSON(w, http.StatusOK, JobView{ID: "j1", State: JobDone, Result: &res})
	}))
	t.Cleanup(ts.Close)
	return ts
}

func dispatchClass(t *testing.T, err error) *dispatchError {
	t.Helper()
	var de *dispatchError
	if !errors.As(err, &de) {
		t.Fatalf("err %v (%T) is not a dispatchError", err, err)
	}
	return de
}

func TestCoordinatorDispatchSuccess(t *testing.T) {
	co := newTestCoordinator(stubOK(t, 11).URL)
	r, attempts, err := co.runPoint(context.Background(), testConfig(), *testOptions(), nil)
	if err != nil || attempts != 1 || r.LatencyCycles != 11 {
		t.Fatalf("runPoint = (%v, %d, %v); want (11, 1, nil)", r.LatencyCycles, attempts, err)
	}
	if co.retries.Value() != 0 || co.hedges.Value() != 0 {
		t.Fatalf("retries=%d hedges=%d; want 0/0", co.retries.Value(), co.hedges.Value())
	}
}

// TestCoordinatorRetriesTransientThenSucceeds: submit rejections (503)
// are transient — the point retries with backoff and lands.
func TestCoordinatorRetriesTransientThenSucceeds(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "queue full"})
			return
		}
		res := res(5)
		writeJSON(w, http.StatusOK, JobView{State: JobDone, Result: &res})
	}))
	t.Cleanup(ts.Close)

	co := newTestCoordinator(ts.URL)
	r, attempts, err := co.runPoint(context.Background(), testConfig(), *testOptions(), nil)
	if err != nil || attempts != 3 || r.LatencyCycles != 5 {
		t.Fatalf("runPoint = (%v, %d, %v); want (5, 3, nil)", r.LatencyCycles, attempts, err)
	}
	if co.retries.Value() != 2 {
		t.Fatalf("retries = %d; want 2", co.retries.Value())
	}
	// Two rejections then a success: below the trip threshold, and the
	// success reset the streak.
	if co.trips.Value() != 0 || !co.workers[0].br.admitted() {
		t.Fatal("breaker tripped on a sub-threshold streak")
	}
}

// TestCoordinatorNeverRetriesConfigErrors pins the taxonomy boundary:
// a 400-class refusal is a property of the request — retrying would
// fail identically on every replica, so the coordinator must not.
func TestCoordinatorNeverRetriesConfigErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad config"})
	}))
	t.Cleanup(ts.Close)

	co := newTestCoordinator(ts.URL)
	_, attempts, err := co.runPoint(context.Background(), testConfig(), *testOptions(), nil)
	de := dispatchClass(t, err)
	if de.class != "config" || de.transient {
		t.Fatalf("class = %q transient=%v; want permanent config", de.class, de.transient)
	}
	if attempts != 1 || calls.Load() != 1 || co.retries.Value() != 0 {
		t.Fatalf("attempts=%d calls=%d retries=%d; want one attempt, no retries",
			attempts, calls.Load(), co.retries.Value())
	}
	// The request was sick, not the worker: breaker untouched.
	if !co.workers[0].br.admitted() {
		t.Fatal("config refusal counted against the breaker")
	}
}

// TestCoordinatorFailsOverOnConnectError: a dead worker (connection
// refused — same signature as kill -9) costs one transient attempt;
// the retry lands on the live replica.
func TestCoordinatorFailsOverOnConnectError(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // now refuses connections
	live := stubOK(t, 8)

	co := newTestCoordinator(deadURL, live.URL)
	co.cursor.Store(1) // next pick is workers[0], the dead one

	r, attempts, err := co.runPoint(context.Background(), testConfig(), *testOptions(), nil)
	if err != nil || r.LatencyCycles != 8 {
		t.Fatalf("runPoint = (%v, %v); want 8 from the live worker", r.LatencyCycles, err)
	}
	if attempts != 2 || co.retries.Value() != 1 {
		t.Fatalf("attempts=%d retries=%d; want 2/1", attempts, co.retries.Value())
	}
	if co.workers[0].failures.Value() == 0 {
		t.Fatal("dead worker's failure not counted")
	}
}

// TestCoordinatorBreakerEjectsFlappingWorker: once a worker's breaker
// trips, it gets no further traffic — later points go straight to the
// healthy replica.
func TestCoordinatorBreakerEjectsFlappingWorker(t *testing.T) {
	flappy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "flapping"})
	}))
	t.Cleanup(flappy.Close)
	live := stubOK(t, 9)

	co := newTestCoordinator(flappy.URL, live.URL)
	co.workers[0].br = newBreaker(1, time.Hour) // trip on the first failure
	co.cursor.Store(1)                          // next pick is the flapping worker

	if _, _, err := co.runPoint(context.Background(), testConfig(), *testOptions(), nil); err != nil {
		t.Fatalf("first point: %v", err)
	}
	if co.trips.Value() != 1 || co.workers[0].br.admitted() {
		t.Fatalf("trips=%d admitted=%v; want the flapper ejected", co.trips.Value(), co.workers[0].br.admitted())
	}

	// Ejected means zero dispatches, not just deprioritized.
	before := co.workers[0].dispatched.Value()
	for i := 0; i < 5; i++ {
		if _, _, err := co.runPoint(context.Background(), testConfig(), *testOptions(), nil); err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
	}
	if got := co.workers[0].dispatched.Value(); got != before {
		t.Fatalf("ejected worker received %d dispatches", got-before)
	}
}

// TestCoordinatorProbeReadmitsRecoveredWorker: the health loop probes
// an ejected worker's /readyz and re-admits it once it answers.
func TestCoordinatorProbeReadmitsRecoveredWorker(t *testing.T) {
	w := stubOK(t, 1) // healthy the whole time; only the breaker thinks otherwise
	co := newTestCoordinator(w.URL)
	co.probeEvery = 2 * time.Millisecond
	co.workers[0].br = newBreaker(1, time.Millisecond)
	co.breakerFailure(co.workers[0])
	if co.workers[0].br.admitted() {
		t.Fatal("breaker did not trip")
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go co.probeLoop(ctx)

	deadline := time.Now().Add(5 * time.Second)
	for !co.workers[0].br.admitted() {
		if time.Now().After(deadline) {
			t.Fatal("worker never re-admitted")
		}
		time.Sleep(time.Millisecond)
	}
	if co.readmissions.Value() != 1 {
		t.Fatalf("readmissions = %d; want 1", co.readmissions.Value())
	}
}

// TestCoordinatorHedgesSlowPoint: once enough points have completed
// for a p95, a dispatch that outlives it gets a hedged twin on another
// worker, and the first success wins.
func TestCoordinatorHedgesSlowPoint(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(300 * time.Millisecond):
		case <-r.Context().Done():
			return
		}
		res := res(1)
		writeJSON(w, http.StatusOK, JobView{State: JobDone, Result: &res})
	}))
	t.Cleanup(slow.Close)
	fast := stubOK(t, 2)

	co := newTestCoordinator(slow.URL, fast.URL)
	co.hedgeFloor = 5 * time.Millisecond
	for i := int64(0); i < co.hedgeMinObs; i++ {
		co.pointDur.Observe(0.001) // a history of fast points arms hedging
	}
	co.cursor.Store(1) // primary dispatch goes to the slow worker

	r, attempts, err := co.runPoint(context.Background(), testConfig(), *testOptions(), nil)
	if err != nil || attempts != 1 || r.LatencyCycles != 2 {
		t.Fatalf("runPoint = (%v, %d, %v); want the hedge's 2 in one attempt", r.LatencyCycles, attempts, err)
	}
	if co.hedges.Value() != 1 || co.hedgeWins.Value() != 1 {
		t.Fatalf("hedges=%d wins=%d; want 1/1", co.hedges.Value(), co.hedgeWins.Value())
	}
}

// TestCoordinatorHedgingDisarmedWithoutHistory: with fewer completed
// points than hedgeMinObs there is no p95 worth trusting — no hedge
// fires no matter how slow the point is.
func TestCoordinatorHedgingDisarmedWithoutHistory(t *testing.T) {
	co := newTestCoordinator(stubOK(t, 1).URL, stubOK(t, 2).URL)
	if d := co.hedgeDelay(); d != 0 {
		t.Fatalf("hedgeDelay = %v with no history; want 0 (disarmed)", d)
	}
	for i := int64(0); i < co.hedgeMinObs; i++ {
		co.pointDur.Observe(0.001)
	}
	if d := co.hedgeDelay(); d < co.hedgeFloor {
		t.Fatalf("hedgeDelay = %v; want at least the %v floor", d, co.hedgeFloor)
	}
}

// TestCoordinatorAllBreakersOpen: with every worker ejected, dispatch
// reports a transient "unavailable" — retried with backoff, so the
// probe loop has a window to re-admit someone before the point fails.
func TestCoordinatorAllBreakersOpen(t *testing.T) {
	co := newTestCoordinator(stubOK(t, 1).URL)
	co.workers[0].br = newBreaker(1, time.Hour)
	co.workers[0].br.failure()
	co.maxRetries = 1

	_, attempts, err := co.runPoint(context.Background(), testConfig(), *testOptions(), nil)
	de := dispatchClass(t, err)
	if de.class != "unavailable" || !de.transient {
		t.Fatalf("class = %q transient=%v; want transient unavailable", de.class, de.transient)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d; want maxRetries+1 = 2", attempts)
	}
}

// TestCoordinatorJobFailureKeepsWorkerAdmitted pins the ejection
// boundary: a job-level failure arrives over a demonstrably healthy
// HTTP service, so the taxonomy decides retrying — the breaker hears
// nothing.
func TestCoordinatorJobFailureKeepsWorkerAdmitted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/runs" {
			writeJSON(w, http.StatusAccepted, JobView{ID: "j7", State: JobQueued})
			return
		}
		writeJSON(w, http.StatusOK, JobView{ID: "j7", State: JobFailed,
			Error: &JobError{Status: http.StatusUnprocessableEntity, Kind: "stall", Message: "no progress"}})
	}))
	t.Cleanup(ts.Close)

	co := newTestCoordinator(ts.URL)
	co.workers[0].br = newBreaker(1, time.Hour) // would trip on any breaker-visible failure

	_, attempts, err := co.runPoint(context.Background(), testConfig(), *testOptions(), nil)
	de := dispatchClass(t, err)
	if de.class != "stall" || de.transient {
		t.Fatalf("class = %q transient=%v; want permanent stall", de.class, de.transient)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d; a deterministic stall must not retry", attempts)
	}
	if !co.workers[0].br.admitted() {
		t.Fatal("job-level failure ejected a healthy worker")
	}
}

// fleetStub simulates a worker daemon wire-faithfully enough for e2e
// coordinator tests: synchronous cached-style answers for most sizes,
// and an async job that fails with the given taxonomy error for sizes
// in fail.
func fleetStub(t *testing.T, fail map[int]*JobError) *httptest.Server {
	t.Helper()
	var (
		mu       sync.Mutex
		failJobs = map[string]*JobError{}
		n        int
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/healthz", r.URL.Path == "/readyz":
			w.WriteHeader(http.StatusOK)
		case r.URL.Path == "/v1/runs":
			var req runRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
				return
			}
			if je, ok := fail[req.Config.Nodes]; ok {
				mu.Lock()
				n++
				id := fmt.Sprintf("jfail%d", n)
				failJobs[id] = je
				mu.Unlock()
				writeJSON(w, http.StatusAccepted, JobView{ID: id, State: JobQueued})
				return
			}
			res := res(float64(req.Config.Nodes))
			writeJSON(w, http.StatusOK, JobView{State: JobDone, Result: &res})
		case strings.HasPrefix(r.URL.Path, "/v1/jobs/"):
			id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
			mu.Lock()
			je := failJobs[id]
			mu.Unlock()
			if je == nil {
				writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such job"})
				return
			}
			writeJSON(w, http.StatusOK, JobView{ID: id, State: JobFailed, Error: je})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// awaitJobView polls a job to a terminal state, decoding the full
// document (including the degraded-sweep fields jobDoc omits).
func awaitJobView(t *testing.T, base, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if v.State == JobDone || v.State == JobFailed {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerCoordinatedSweepDegraded is the end-to-end partial-failure
// contract: one size fails deterministically on every worker, and the
// sweep response carries the completed points plus a structured error
// for the doomed one — degraded, not void.
func TestServerCoordinatedSweepDegraded(t *testing.T) {
	fail := map[int]*JobError{25: {Status: http.StatusUnprocessableEntity, Kind: "stall", Message: "injected stall"}}
	w1, w2 := fleetStub(t, fail), fleetStub(t, fail)
	s, ts := newTestServer(t, Options{Workers: 2, WorkerAddrs: []string{w1.URL, w2.URL}})
	s.coord.backoffBase = time.Millisecond
	s.coord.pollEvery = 2 * time.Millisecond

	resp, raw := postJSON(t, ts.URL+"/v1/sweeps",
		sweepRequest{Config: testConfig(), Options: testOptions(), Sizes: []int{16, 25, 36}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST sweep = %d: %s", resp.StatusCode, raw)
	}
	v := awaitJobView(t, ts.URL, decodeDoc(t, raw).ID)

	if v.State != JobDone || !v.Degraded {
		t.Fatalf("state=%s degraded=%v error=%+v; want done and degraded", v.State, v.Degraded, v.Error)
	}
	if len(v.Points) != 2 || v.Points[0].Nodes != 16 || v.Points[1].Nodes != 36 {
		t.Fatalf("points = %+v; want sizes 16 and 36", v.Points)
	}
	for _, p := range v.Points {
		if p.Result.LatencyCycles != float64(p.Nodes) {
			t.Fatalf("point %d carries result %v; want the worker's %d", p.Nodes, p.Result.LatencyCycles, p.Nodes)
		}
	}
	if len(v.PointErrors) != 1 || v.PointErrors[0].Nodes != 25 {
		t.Fatalf("point_errors = %+v; want exactly size 25", v.PointErrors)
	}
	if pe := v.PointErrors[0].Error; pe == nil || pe.Kind != "stall" || pe.Status != http.StatusUnprocessableEntity {
		t.Fatalf("point error = %+v; want the worker's stall classification", v.PointErrors[0].Error)
	}
	if s.coord.pointsFailed.Value() != 1 {
		t.Fatalf("points_failed = %d; want 1", s.coord.pointsFailed.Value())
	}
}

// TestServerCoordinatedSweepAllPointsFailed: zero completed points is
// the one wholesale failure — classified by the first point error, not
// a generic 500.
func TestServerCoordinatedSweepAllPointsFailed(t *testing.T) {
	fail := map[int]*JobError{
		16: {Status: http.StatusUnprocessableEntity, Kind: "stall", Message: "injected stall"},
		36: {Status: http.StatusUnprocessableEntity, Kind: "stall", Message: "injected stall"},
	}
	w1 := fleetStub(t, fail)
	s, ts := newTestServer(t, Options{Workers: 2, WorkerAddrs: []string{w1.URL}})
	s.coord.backoffBase = time.Millisecond
	s.coord.pollEvery = 2 * time.Millisecond

	resp, raw := postJSON(t, ts.URL+"/v1/sweeps",
		sweepRequest{Config: testConfig(), Options: testOptions(), Sizes: []int{16, 36}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST sweep = %d: %s", resp.StatusCode, raw)
	}
	v := awaitJobView(t, ts.URL, decodeDoc(t, raw).ID)
	if v.State != JobFailed || v.Error == nil || v.Error.Kind != "stall" {
		t.Fatalf("state=%s error=%+v; want wholesale failure classified as stall", v.State, v.Error)
	}
	if len(v.PointErrors) != 2 {
		t.Fatalf("point_errors = %+v; want both sizes reported", v.PointErrors)
	}
}

// TestServerCoordinatedRunCachesLocally: the coordinator's own result
// cache fronts the fleet — an identical second run answers locally
// without a second dispatch.
func TestServerCoordinatedRunCachesLocally(t *testing.T) {
	var calls atomic.Int64
	w := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" || r.URL.Path == "/readyz" {
			rw.WriteHeader(http.StatusOK)
			return
		}
		calls.Add(1)
		res := res(3)
		writeJSON(rw, http.StatusOK, JobView{State: JobDone, Result: &res})
	}))
	t.Cleanup(w.Close)
	_, ts := newTestServer(t, Options{Workers: 2, WorkerAddrs: []string{w.URL}})

	body := runRequest{Config: testConfig(), Options: testOptions()}
	resp, raw := postJSON(t, ts.URL+"/v1/runs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST = %d: %s", resp.StatusCode, raw)
	}
	first := awaitJobView(t, ts.URL, decodeDoc(t, raw).ID)
	if first.State != JobDone || first.Result.LatencyCycles != 3 {
		t.Fatalf("first run = %+v; want the worker's 3", first)
	}

	resp, raw = postJSON(t, ts.URL+"/v1/runs", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second POST = %d: %s", resp.StatusCode, raw)
	}
	second := decodeDoc(t, raw)
	if second.State != JobDone || !second.Cached {
		t.Fatalf("second run = state %s cached %v; want a local cache hit", second.State, second.Cached)
	}
	if calls.Load() != 1 {
		t.Fatalf("worker dispatched %d times; want 1", calls.Load())
	}
}
