package serve

import (
	"fmt"
	"testing"
	"time"
)

// TestRateLimiterAllowsWithinBudget sanity-checks the token bucket:
// burst requests pass, the next is rejected, and refill restores one
// token per 1/rate seconds.
func TestRateLimiterAllowsWithinBudget(t *testing.T) {
	now := time.Unix(0, 0)
	l := newRateLimiter(1, 2)
	l.now = func() time.Time { return now }

	if !l.allow("c") || !l.allow("c") {
		t.Fatal("burst requests rejected")
	}
	if l.allow("c") {
		t.Fatal("over-burst request allowed")
	}
	now = now.Add(time.Second)
	if !l.allow("c") {
		t.Fatal("refilled token rejected")
	}
}

// TestRateLimiterHardBoundUnderFlood is the unbounded-growth
// regression test: a flood of distinct clients that are all mid-debt
// (no bucket ever refills to full burst, so pruning frees nothing)
// must not grow the map past maxClients — the limiter's own memory
// cannot be the denial of service.
func TestRateLimiterHardBoundUnderFlood(t *testing.T) {
	now := time.Unix(0, 0)
	l := newRateLimiter(1, 1)
	l.now = func() time.Time { return now }

	const flood = maxClients + 512
	for i := 0; i < flood; i++ {
		// 1ns apart: enough to order the buckets for the oldest-first
		// check, far too little for any to refill — every bucket stays
		// mid-debt, so only the eviction path can hold the bound.
		now = now.Add(time.Nanosecond)
		if !l.allow(fmt.Sprintf("c%d", i)) {
			t.Fatalf("fresh client %d rejected", i)
		}
		if n := len(l.clients); n > maxClients {
			t.Fatalf("after client %d: %d buckets; bound is %d", i, n, maxClients)
		}
	}
	if n := len(l.clients); n != maxClients {
		t.Fatalf("post-flood: %d buckets; want exactly %d", n, maxClients)
	}

	// Eviction is oldest-first: the earliest clients are gone, the most
	// recent survive.
	l.mu.Lock()
	_, oldestAlive := l.clients["c0"]
	_, newestAlive := l.clients[fmt.Sprintf("c%d", flood-1)]
	l.mu.Unlock()
	if oldestAlive {
		t.Fatal("oldest bucket survived eviction")
	}
	if !newestAlive {
		t.Fatal("newest bucket was evicted")
	}
}

// TestRateLimiterPrunesIdleBeforeEvicting: when the bound is hit but
// some clients have refilled to full burst (idle), pruning clears them
// and no live debt is forgiven.
func TestRateLimiterPrunesIdleBeforeEvicting(t *testing.T) {
	now := time.Unix(0, 0)
	l := newRateLimiter(1, 1)
	l.now = func() time.Time { return now }

	for i := 0; i < maxClients; i++ {
		l.allow(fmt.Sprintf("c%d", i))
	}
	// Everyone idles long enough to refill fully; the next new client
	// triggers a prune that clears them all.
	now = now.Add(2 * time.Second)
	if !l.allow("fresh") {
		t.Fatal("fresh client rejected")
	}
	if n := len(l.clients); n != 1 {
		t.Fatalf("after prune: %d buckets; want 1 (idle buckets cleared, none evicted)", n)
	}
}
