package serve

import (
	"net/http"
	"strings"
	"testing"

	"ringmesh"
)

// decodeResult unwraps a jobDoc's raw result into the typed facade
// Result so tests can inspect the fidelity label and error bound.
func decodeResult(t *testing.T, d jobDoc) ringmesh.Result {
	t.Helper()
	if len(d.Result) == 0 {
		t.Fatalf("job %s has no result", d.ID)
	}
	var res ringmesh.Result
	mustUnmarshal(t, d.Result, &res)
	return res
}

// TestAutoRunAnalyticThenUpgrade is the acceptance flow for the auto
// policy: a cache-cold run is answered analytically in the response
// (labeled, with its error bound) while a background upgrade job lands
// the exact result under a distinct cache key; the next auto request
// is then served the cached exact result.
func TestAutoRunAnalyticThenUpgrade(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cfg, opt := testConfig(), testOptions()

	// The estimate and the exact result must live under different keys.
	acfg := cfg
	acfg.Fidelity = "analytic"
	akey, err := ringmesh.CacheKey(acfg, *opt)
	if err != nil {
		t.Fatal(err)
	}
	xkey, err := ringmesh.CacheKey(cfg, *opt)
	if err != nil {
		t.Fatal(err)
	}
	if akey == xkey {
		t.Fatalf("analytic and exact cache keys collide: %s", akey)
	}

	resp, raw := postJSON(t, ts.URL+"/v1/runs", runRequest{
		Config: cfg, Options: opt, Fidelity: "auto",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("auto POST = %d: %s", resp.StatusCode, raw)
	}
	doc := decodeDoc(t, raw)
	if doc.State != JobDone {
		t.Fatalf("auto run state = %s; want done inline", doc.State)
	}
	if doc.Upgrade == "" {
		t.Fatal("auto run carries no upgrade job ID")
	}
	est := decodeResult(t, doc)
	if est.Fidelity != "analytic" {
		t.Fatalf("auto answer fidelity = %q; want analytic", est.Fidelity)
	}
	if est.ErrorBound == nil || est.ErrorBound.MaxRelErr <= 0 {
		t.Fatalf("auto answer error bound = %+v; want a positive recorded bound", est.ErrorBound)
	}

	// The upgrade job completes with the exact, unlabeled result.
	up := awaitJob(t, ts.URL, doc.Upgrade, false)
	exact := decodeResult(t, up)
	if exact.Fidelity != "" || exact.ErrorBound != nil {
		t.Fatalf("upgrade result fidelity=%q bound=%v; want unlabeled exact", exact.Fidelity, exact.ErrorBound)
	}
	if up.Class != "background" {
		t.Fatalf("upgrade job class = %s; want background", up.Class)
	}

	// A repeat auto request now prefers the cached exact result over a
	// fresh estimate.
	resp, raw = postJSON(t, ts.URL+"/v1/runs", runRequest{
		Config: cfg, Options: opt, Fidelity: "auto",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second auto POST = %d: %s", resp.StatusCode, raw)
	}
	doc = decodeDoc(t, raw)
	if doc.State != JobDone || !doc.Cached || doc.Upgrade != "" {
		t.Fatalf("second auto = state=%s cached=%v upgrade=%q; want done, cached, no upgrade",
			doc.State, doc.Cached, doc.Upgrade)
	}
	if res := decodeResult(t, doc); res.Fidelity != "" {
		t.Fatalf("second auto served fidelity %q; want cached exact", res.Fidelity)
	}

	body := getMetrics(t, ts.URL)
	for _, want := range []string{
		`ringmeshd_fidelity_requests_total{fidelity="auto"} 2`,
		`ringmeshd_fidelity_analytic_answers_total 1`,
		`ringmeshd_fidelity_upgrades_total 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestExplicitAnalyticRun asks for the analytic tier by name: the
// answer is inline, labeled, never queued, and the second request is
// a cache hit under the analytic key.
func TestExplicitAnalyticRun(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := runRequest{Config: testConfig(), Options: testOptions(), Fidelity: "analytic"}

	resp, raw := postJSON(t, ts.URL+"/v1/runs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analytic POST = %d: %s", resp.StatusCode, raw)
	}
	doc := decodeDoc(t, raw)
	if doc.State != JobDone || doc.Cached || doc.Upgrade != "" {
		t.Fatalf("analytic run = state=%s cached=%v upgrade=%q; want fresh inline done, no upgrade",
			doc.State, doc.Cached, doc.Upgrade)
	}
	res := decodeResult(t, doc)
	if res.Fidelity != "analytic" || res.ErrorBound == nil {
		t.Fatalf("analytic result fidelity=%q bound=%v; want labeled with bound", res.Fidelity, res.ErrorBound)
	}

	resp, raw = postJSON(t, ts.URL+"/v1/runs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat analytic POST = %d: %s", resp.StatusCode, raw)
	}
	if doc = decodeDoc(t, raw); !doc.Cached {
		t.Fatalf("repeat analytic run cached=%v; want analytic-key cache hit", doc.Cached)
	}

	body := getMetrics(t, ts.URL)
	for _, want := range []string{
		`ringmeshd_fidelity_requests_total{fidelity="analytic"} 2`,
		`ringmeshd_fidelity_analytic_answers_total 2`,
		`ringmeshd_fidelity_upgrades_total 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// unsupportedConfig is valid for the simulator but refused by the
// analytic model (it has no closed form for double-speed rings).
func unsupportedConfig() ringmesh.Config {
	return ringmesh.Config{
		Network:           "ring",
		Nodes:             16,
		LineBytes:         32,
		DoubleSpeedGlobal: true,
		Workload:          ringmesh.PaperWorkload(),
		Seed:              7,
	}
}

// TestAnalyticRefusalPaths: an explicit analytic request for an
// unsupported configuration is a 400; the same configuration under
// auto falls back to a normal exact enqueue instead of failing.
func TestAnalyticRefusalPaths(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cfg, opt := unsupportedConfig(), testOptions()

	resp, raw := postJSON(t, ts.URL+"/v1/runs", runRequest{
		Config: cfg, Options: opt, Fidelity: "analytic",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unsupported analytic POST = %d: %s", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "analytic") {
		t.Fatalf("refusal body %s does not name the analytic tier", raw)
	}

	resp, raw = postJSON(t, ts.URL+"/v1/runs", runRequest{
		Config: cfg, Options: opt, Fidelity: "auto",
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("auto fallback POST = %d: %s", resp.StatusCode, raw)
	}
	doc := awaitJob(t, ts.URL, decodeDoc(t, raw).ID, false)
	if res := decodeResult(t, doc); res.Fidelity != "" {
		t.Fatalf("fallback result fidelity = %q; want exact", res.Fidelity)
	}

	if body := getMetrics(t, ts.URL); !strings.Contains(body, "ringmeshd_fidelity_fallback_total 1") {
		t.Errorf("metrics missing fallback counter:\n%s", body)
	}
}

// TestAutoSweep: an auto sweep is answered inline with every point
// analytic-labeled, one upgrade sweep lands the exact curve, and the
// repeat auto sweep is served entirely from the exact cache.
func TestAutoSweep(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := sweepRequest{
		Config: testConfig(), Sizes: []int{9, 16}, Options: testOptions(), Fidelity: "auto",
	}

	resp, raw := postJSON(t, ts.URL+"/v1/sweeps", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("auto sweep POST = %d: %s", resp.StatusCode, raw)
	}
	doc := decodeDoc(t, raw)
	if doc.State != JobDone || doc.Upgrade == "" {
		t.Fatalf("auto sweep = state=%s upgrade=%q; want done inline with upgrade", doc.State, doc.Upgrade)
	}
	var points []ringmesh.SweepPoint
	mustUnmarshal(t, doc.Points, &points)
	if len(points) != 2 || points[0].Nodes != 9 || points[1].Nodes != 16 {
		t.Fatalf("auto sweep points = %+v; want sizes 9,16 in order", points)
	}
	for _, p := range points {
		if p.Result.Fidelity != "analytic" || p.Result.ErrorBound == nil {
			t.Fatalf("point %d fidelity=%q bound=%v; want labeled analytic",
				p.Nodes, p.Result.Fidelity, p.Result.ErrorBound)
		}
	}

	up := awaitJob(t, ts.URL, doc.Upgrade, false)
	var exact []ringmesh.SweepPoint
	mustUnmarshal(t, up.Points, &exact)
	if len(exact) != 2 || exact[0].Result.Fidelity != "" || exact[0].Result.Observations == 0 {
		t.Fatalf("upgrade sweep points = %+v; want 2 exact simulated points", exact)
	}

	resp, raw = postJSON(t, ts.URL+"/v1/sweeps", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second auto sweep POST = %d: %s", resp.StatusCode, raw)
	}
	doc = decodeDoc(t, raw)
	if doc.State != JobDone || !doc.Cached || doc.Upgrade != "" {
		t.Fatalf("second auto sweep = state=%s cached=%v upgrade=%q; want cached exact, no upgrade",
			doc.State, doc.Cached, doc.Upgrade)
	}
	var cachedPts []ringmesh.SweepPoint
	mustUnmarshal(t, doc.Points, &cachedPts)
	for _, p := range cachedPts {
		if p.Result.Fidelity != "" {
			t.Fatalf("second sweep point %d fidelity = %q; want cached exact", p.Nodes, p.Result.Fidelity)
		}
	}
}

// TestAutoBatch mixes an explicit-analytic entry with a batch-level
// auto entry: the batch is answered inline, only the auto entry is
// upgraded to exact, and the repeat batch is fully cached.
func TestAutoBatch(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	acfg := testConfig()
	acfg.Fidelity = "analytic"
	xcfg := testConfig()
	xcfg.Seed = 43
	req := batchRequest{
		Runs: []batchRunRequest{
			{Config: acfg, Options: testOptions()},
			{Config: xcfg, Options: testOptions()},
		},
		Fidelity: "auto",
	}

	resp, raw := postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("auto batch POST = %d: %s", resp.StatusCode, raw)
	}
	doc := decodeDoc(t, raw)
	if doc.State != JobDone || doc.Upgrade == "" {
		t.Fatalf("auto batch = state=%s upgrade=%q; want done inline with upgrade", doc.State, doc.Upgrade)
	}
	if len(doc.Items) != 2 {
		t.Fatalf("auto batch items = %d; want 2", len(doc.Items))
	}
	for i, it := range doc.Items {
		if it.Result == nil || it.Result.Fidelity != "analytic" || it.Result.ErrorBound == nil {
			t.Fatalf("batch item %d = %+v; want labeled analytic with bound", i, it)
		}
	}

	// Only the auto entry rides the upgrade batch; the explicit
	// analytic entry stays analytic.
	up := awaitJob(t, ts.URL, doc.Upgrade, false)
	if len(up.Items) != 1 || up.Items[0].Result == nil || up.Items[0].Result.Fidelity != "" {
		t.Fatalf("upgrade batch items = %+v; want 1 exact result", up.Items)
	}

	resp, raw = postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second auto batch POST = %d: %s", resp.StatusCode, raw)
	}
	doc = decodeDoc(t, raw)
	if doc.State != JobDone || !doc.Cached || doc.Upgrade != "" {
		t.Fatalf("second auto batch = state=%s cached=%v upgrade=%q; want fully cached, no upgrade",
			doc.State, doc.Cached, doc.Upgrade)
	}
	if doc.Items[0].Result.Fidelity != "analytic" || doc.Items[1].Result.Fidelity != "" {
		t.Fatalf("second batch fidelities = %q, %q; want analytic, exact",
			doc.Items[0].Result.Fidelity, doc.Items[1].Result.Fidelity)
	}
}

// TestFidelityRejectsUnknown: a made-up tier is a 400 on every
// submission endpoint.
func TestFidelityRejectsUnknown(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, raw := postJSON(t, ts.URL+"/v1/runs", runRequest{
		Config: testConfig(), Options: testOptions(), Fidelity: "psychic",
	})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(raw), "fidelity") {
		t.Fatalf("unknown fidelity POST = %d: %s", resp.StatusCode, raw)
	}
}
