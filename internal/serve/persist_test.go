package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"ringmesh"
	"ringmesh/internal/metrics"
)

// fullResult exercises every Result field class (floats, ints, bools)
// so round-trip tests cover the whole wire surface.
func fullResult() ringmesh.Result {
	return ringmesh.Result{
		LatencyCycles:     123.4567890123,
		LatencyCI95:       0.0078125,
		Observations:      987654,
		RingUtilization:   []float64{0.5, 0.25, 1.0 / 3.0},
		Throughput:        0.1 + 0.2, // deliberately not exactly 0.3
		Issued:            1000,
		Completed:         999,
		Local:             500,
		LatencyP50:        100.5,
		LatencyP95:        200.25,
		LatencyP99:        300.125,
		LatencyMax:        400,
		BatchesCorrelated: true,
		Saturated:         true,
	}
}

func newTestDisk(t *testing.T) *diskStore {
	t.Helper()
	d, err := newDiskStore(t.TempDir(), &metrics.Registry{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDiskStoreRoundTripBitIdentical pins the observation-equivalence
// claim: a result served from disk is byte-identical (as JSON) to the
// result that was stored — including float64 values JSON must
// round-trip exactly via shortest-roundtrip encoding.
func TestDiskStoreRoundTripBitIdentical(t *testing.T) {
	d := newTestDisk(t)
	want := fullResult()
	d.store("k1", want)

	got, ok := d.load("k1")
	if !ok {
		t.Fatal("stored entry not loadable")
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("round trip not bit-identical:\n%s\nvs\n%s", wantJSON, gotJSON)
	}
	if d.hits.Value() != 1 || d.writes.Value() != 1 {
		t.Fatalf("hits=%d writes=%d; want 1/1", d.hits.Value(), d.writes.Value())
	}
}

func TestDiskStoreMissOnAbsent(t *testing.T) {
	d := newTestDisk(t)
	if _, ok := d.load("nope"); ok {
		t.Fatal("absent key reported as hit")
	}
	if d.misses.Value() != 1 {
		t.Fatalf("misses = %d; want 1", d.misses.Value())
	}
}

// corruptions models the crash and bit-rot shapes the store must
// refuse to serve: a kill -9 that truncated the payload, a flipped
// bit, a future/foreign format version, and free-form garbage.
var corruptions = []struct {
	name    string
	corrupt func([]byte) []byte
}{
	{"truncated payload", func(raw []byte) []byte { return raw[:len(raw)-7] }},
	{"bit flip", func(raw []byte) []byte {
		out := append([]byte(nil), raw...)
		out[len(out)-3] ^= 0x40
		return out
	}},
	{"version mismatch", func(raw []byte) []byte {
		return bytes.Replace(raw, []byte(diskFormatVersion), []byte("ringmeshd-disk-v999"), 1)
	}},
	{"garbage", func([]byte) []byte { return []byte("not an entry at all") }},
	{"empty file", func([]byte) []byte { return nil }},
}

// TestDiskStoreQuarantinesCorruptEntries writes a good entry, mangles
// it in place, and asserts the store (a) reports a miss, (b) moves
// the file into quarantine rather than leaving it live or deleting
// the evidence, and (c) accepts a recomputed replacement afterwards.
func TestDiskStoreQuarantinesCorruptEntries(t *testing.T) {
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			d := newTestDisk(t)
			d.store("k", fullResult())
			raw, err := os.ReadFile(d.path("k"))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(d.path("k"), tc.corrupt(raw), 0o644); err != nil {
				t.Fatal(err)
			}

			if _, ok := d.load("k"); ok {
				t.Fatal("corrupt entry served as a hit")
			}
			if d.quarantined.Value() != 1 {
				t.Fatalf("quarantined = %d; want 1", d.quarantined.Value())
			}
			if _, err := os.Stat(d.path("k")); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry still live: %v", err)
			}
			if _, err := os.Stat(filepath.Join(d.dir, quarantineDir, "k"+entrySuffix)); err != nil {
				t.Fatalf("corrupt entry not in quarantine: %v", err)
			}

			// The key is recomputable: a fresh store overwrites cleanly
			// and serves again.
			d.store("k", fullResult())
			if _, ok := d.load("k"); !ok {
				t.Fatal("recomputed entry not served after quarantine")
			}
		})
	}
}

// TestCacheRecomputesAfterQuarantine drives the same scenario through
// the resultCache: a corrupted disk entry must trigger recomputation
// (the compute callback runs), not a wrong answer and not an error.
func TestCacheRecomputesAfterQuarantine(t *testing.T) {
	dir := t.TempDir()
	d, err := newDiskStore(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := newResultCache(4, d, nil)
	ctx := context.Background()

	computes := 0
	compute := func() (ringmesh.Result, error) { computes++; return res(10), nil }
	if _, _, err := c.do(ctx, "k", nil, compute); err != nil {
		t.Fatal(err)
	}

	// Truncate the durable copy mid-payload (a torn write that somehow
	// kept the entry name), then drop the memory tier by building a
	// fresh cache over the same directory — the restart scenario.
	raw, err := os.ReadFile(d.path("k"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(d.path("k"), raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	c2 := newResultCache(4, d, nil)
	r, cached, err := c2.do(ctx, "k", nil, compute)
	if err != nil || cached || r.LatencyCycles != 10 {
		t.Fatalf("post-corruption do = (%v, %v, %v); want fresh recompute", r.LatencyCycles, cached, err)
	}
	if computes != 2 {
		t.Fatalf("computed %d times; want 2 (original + recompute)", computes)
	}
}

// TestCacheRestartServesFromDisk is the crash-recovery contract: a
// result computed before a restart is a hit afterwards, served from
// the durable tier without recomputation.
func TestCacheRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	reg1 := &metrics.Registry{}
	d1, err := newDiskStore(dir, reg1, nil)
	if err != nil {
		t.Fatal(err)
	}
	c1 := newResultCache(4, d1, reg1)
	want := fullResult()
	if _, _, err := c1.do(context.Background(), "k", nil, func() (ringmesh.Result, error) {
		return want, nil
	}); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh store, fresh cache, fresh registry over the same
	// directory — no memory state survives.
	reg2 := &metrics.Registry{}
	d2, err := newDiskStore(dir, reg2, nil)
	if err != nil {
		t.Fatal(err)
	}
	c2 := newResultCache(4, d2, reg2)

	computes := 0
	r, cached, err := c2.do(context.Background(), "k", nil, func() (ringmesh.Result, error) {
		computes++
		return ringmesh.Result{}, nil
	})
	if err != nil || !cached || computes != 0 {
		t.Fatalf("post-restart do = (cached %v, err %v, computes %d); want disk hit, no compute", cached, err, computes)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(r)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("restart result differs:\n%s\nvs\n%s", wantJSON, gotJSON)
	}
	if d2.hits.Value() != 1 {
		t.Fatalf("disk hits = %d; want 1", d2.hits.Value())
	}
	if c2.misses.Value() != 0 {
		t.Fatalf("cache misses = %d; want 0 (the point of durability)", c2.misses.Value())
	}
	// get() probes the durable tier too — the submission-time path.
	c3 := newResultCache(4, d2, nil)
	if _, ok := c3.get("k"); !ok {
		t.Fatal("get() did not fall through to the durable tier")
	}
}

// TestDiskStoreSharedDirectory simulates two replicas mounting one
// directory: a result stored by one is a hit for the other, and
// double-stores are harmless.
func TestDiskStoreSharedDirectory(t *testing.T) {
	dir := t.TempDir()
	a, err := newDiskStore(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := newDiskStore(dir, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	a.store("k", res(7))
	b.store("k", res(7)) // deterministic results: racing writers write identical bytes
	if r, ok := b.load("k"); !ok || r.LatencyCycles != 7 {
		t.Fatalf("replica load = (%v, %v); want 7", r.LatencyCycles, ok)
	}
}
