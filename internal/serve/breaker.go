package serve

import (
	"sync"
	"time"
)

// breaker is a per-worker circuit breaker with two states. Closed
// (healthy): dispatches flow. Open (ejected): the worker gets no
// traffic at all. Tripping is failure-count based — transport errors
// and submit-path 5xxs count, job-level outcomes do not — and
// re-admission is probe-based, not traffic-based: the coordinator's
// health loop polls an ejected worker's /healthz once per cooldown
// and closes the breaker on success, so a flapping replica soaks up
// health probes instead of real points. (That replaces the
// traditional half-open state: there is never a "trial" user request,
// because the probe is the trial.)
type breaker struct {
	threshold int              // consecutive failures that trip it
	cooldown  time.Duration    // minimum time open before a probe may re-admit
	now       func() time.Time // injectable clock for tests

	mu       sync.Mutex
	open     bool
	fails    int       // consecutive failures while closed
	openedAt time.Time // when it last tripped (or a probe last failed)
}

// newBreaker builds a closed breaker tripping after threshold
// consecutive failures (min 1) and eligible for re-admission probes
// cooldown after tripping.
func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// admitted reports whether the worker may receive dispatches.
func (b *breaker) admitted() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.open
}

// success records a healthy interaction, resetting the failure streak.
func (b *breaker) success() {
	b.mu.Lock()
	b.fails = 0
	b.mu.Unlock()
}

// failure records a failed interaction; it reports true when this
// failure tripped the breaker (closed -> open), so the caller can
// count trips exactly once.
func (b *breaker) failure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.open {
		return false
	}
	b.fails++
	if b.fails < b.threshold {
		return false
	}
	b.open = true
	b.fails = 0
	b.openedAt = b.now()
	return true
}

// probeDue reports whether the breaker is open and has been for at
// least the cooldown — i.e. the health loop should probe the worker
// now.
func (b *breaker) probeDue() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open && b.now().Sub(b.openedAt) >= b.cooldown
}

// probeResult feeds a health-probe outcome: success re-admits the
// worker (open -> closed, reported as true); failure restarts the
// cooldown so the next probe waits a full interval again.
func (b *breaker) probeResult(healthy bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return false
	}
	if healthy {
		b.open = false
		b.fails = 0
		return true
	}
	b.openedAt = b.now()
	return false
}
