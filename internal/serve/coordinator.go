package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand/v2"
	"net/http"
	"sync/atomic"
	"time"

	"ringmesh"
	"ringmesh/internal/metrics"
	"ringmesh/internal/obs"
)

// dispatchError is a coordinator-side failure to obtain a point's
// result from a worker, carrying the error-taxonomy class the merged
// sweep response reports. Transient classes (connect errors, 503/504
// submit rejections, canceled/timed-out jobs, all breakers open) are
// retried with backoff; deterministic classes (config, stall, model
// panic) are not — the same inputs fail the same way on every
// replica, so retrying only burns budget.
type dispatchError struct {
	worker    string // address, "" when no worker was reachable
	class     string // taxonomy kind: config/stall/timeout/canceled/runtime plus transport classes connect/rejected/unavailable/protocol
	status    int    // HTTP status for the job document
	transient bool
	err       error
}

func (e *dispatchError) Error() string {
	if e.worker == "" {
		return fmt.Sprintf("%s: %v", e.class, e.err)
	}
	return fmt.Sprintf("worker %s: %s: %v", e.worker, e.class, e.err)
}

func (e *dispatchError) Unwrap() error { return e.err }

// jobError renders the failure for the job document's structured
// per-point error report.
func (e *dispatchError) jobError() *JobError {
	return &JobError{Status: e.status, Kind: e.class, Message: e.Error()}
}

// classifyPointErr maps a coordinated point's failure onto the job
// error taxonomy: dispatch errors carry their own classification,
// anything else (e.g. the job's own context dying) goes through the
// local classifier.
func classifyPointErr(err error) *JobError {
	var de *dispatchError
	if errors.As(err, &de) {
		return de.jobError()
	}
	return classify(err)
}

// workerClient is one worker daemon the coordinator dispatches to.
type workerClient struct {
	name string // the configured address, used in labels, spans and logs
	base string // URL prefix, e.g. "http://10.0.0.7:8080"
	hc   *http.Client
	br   *breaker

	dispatched *metrics.Counter
	failures   *metrics.Counter
}

// coordinator fans simulation points out to worker daemons over the
// ordinary HTTP API, with the failure handling a long sweep needs to
// survive real machines: bounded retries with jittered exponential
// backoff on transient classes, a hedged second dispatch when a point
// exceeds the p95 of completed points, and a per-worker circuit
// breaker (see breaker.go) that ejects flapping replicas and
// re-admits them via health probes.
//
// The coordinator never simulates locally; its local result cache
// (including the durable tier) sits in front of it, so repeated
// sweeps over overlapping grids still dispatch each point at most
// once.
type coordinator struct {
	workers []*workerClient
	cursor  atomic.Uint64 // round-robin pick state

	// Tunables, set to defaults by newCoordinator; tests shrink the
	// durations to keep wall-clock time down.
	maxRetries   int           // retries after the first attempt
	backoffBase  time.Duration // first retry wait; doubles per retry
	backoffCap   time.Duration
	pollEvery    time.Duration // job-document poll cadence
	probeEvery   time.Duration // health-probe loop cadence
	probeTimeout time.Duration
	hedgeFloor   time.Duration // never hedge earlier than this
	hedgeMinObs  int64         // completed points before hedging arms

	log *slog.Logger

	// pointDur feeds hedging: the p95 of completed-point durations is
	// the "this is taking too long" threshold.
	pointDur *metrics.Histogram

	retries      *metrics.Counter
	hedges       *metrics.Counter
	hedgeWins    *metrics.Counter
	trips        *metrics.Counter
	readmissions *metrics.Counter
	pointsFailed *metrics.Counter
}

// newCoordinator builds a coordinator over the given worker base
// URLs, registering its instruments in reg. Call probeLoop on a
// goroutine to enable breaker re-admission.
func newCoordinator(addrs []string, reg *metrics.Registry, log *slog.Logger) *coordinator {
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	co := &coordinator{
		maxRetries:   2,
		backoffBase:  100 * time.Millisecond,
		backoffCap:   2 * time.Second,
		pollEvery:    25 * time.Millisecond,
		probeEvery:   time.Second,
		probeTimeout: 2 * time.Second,
		hedgeFloor:   50 * time.Millisecond,
		hedgeMinObs:  5,
		log:          log,

		pointDur:     reg.Histogram("ringmeshd_coord_point_seconds", metrics.Labels{}, secondsBuckets),
		retries:      reg.Counter("ringmeshd_coord_retries_total", metrics.Labels{}),
		hedges:       reg.Counter("ringmeshd_coord_hedges_total", metrics.Labels{}),
		hedgeWins:    reg.Counter("ringmeshd_coord_hedge_wins_total", metrics.Labels{}),
		trips:        reg.Counter("ringmeshd_coord_breaker_trips_total", metrics.Labels{}),
		readmissions: reg.Counter("ringmeshd_coord_readmissions_total", metrics.Labels{}),
		pointsFailed: reg.Counter("ringmeshd_coord_points_failed_total", metrics.Labels{}),
	}
	for _, addr := range addrs {
		w := &workerClient{
			name:       addr,
			base:       addr,
			hc:         &http.Client{},
			br:         newBreaker(3, 2*time.Second),
			dispatched: reg.Counter("ringmeshd_coord_worker_dispatches_total", metrics.Labels{Node: addr}),
			failures:   reg.Counter("ringmeshd_coord_worker_failures_total", metrics.Labels{Node: addr}),
		}
		if reg != nil {
			br := w.br
			reg.Gauge("ringmeshd_coord_worker_admitted", metrics.Labels{Node: addr}, func() float64 {
				if br.admitted() {
					return 1
				}
				return 0
			})
		}
		co.workers = append(co.workers, w)
	}
	return co
}

// probeLoop periodically health-probes workers whose breaker is open
// and re-admits the ones that answer, until ctx is done. Run it on
// its own goroutine.
func (co *coordinator) probeLoop(ctx context.Context) {
	t := time.NewTicker(co.probeEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		for _, w := range co.workers {
			if !w.br.probeDue() {
				continue
			}
			if w.br.probeResult(co.probe(ctx, w)) {
				co.readmissions.Inc()
				co.log.Info("worker re-admitted", "worker", w.name)
			}
		}
	}
}

// probe asks one worker's /readyz whether it is accepting work —
// readiness, not liveness: a draining or journal-replaying worker is
// alive but must not be re-admitted for dispatch yet.
func (co *coordinator) probe(ctx context.Context, w *workerClient) bool {
	pctx, cancel := context.WithTimeout(ctx, co.probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, w.base+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// pick returns the next admitted worker round-robin, excluding not
// (nil: no exclusion). With every breaker open (or only the excluded
// worker left) it reports a transient "unavailable" dispatch error —
// retried with backoff, during which the probe loop may re-admit
// someone.
func (co *coordinator) pick(not *workerClient) (*workerClient, error) {
	n := len(co.workers)
	start := int(co.cursor.Add(1) % uint64(n))
	for i := 0; i < n; i++ {
		w := co.workers[(start+i)%n]
		if w != not && w.br.admitted() {
			return w, nil
		}
	}
	return nil, &dispatchError{
		class: "unavailable", status: http.StatusServiceUnavailable, transient: true,
		err: errors.New("no admitted workers (all circuit breakers open)"),
	}
}

// backoff returns the jittered wait before retry attempt (1-based):
// exponential in the attempt, capped, with ±50% jitter so replicas
// retrying the same dead worker don't stampede in lockstep.
func (co *coordinator) backoff(attempt int) time.Duration {
	d := co.backoffBase << (attempt - 1)
	if d > co.backoffCap {
		d = co.backoffCap
	}
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// hedgeDelay returns how long a dispatch may run before a hedged
// second dispatch launches — the p95 of completed points, floored —
// or 0 (hedging disarmed) until enough points have completed for the
// p95 to mean anything.
func (co *coordinator) hedgeDelay() time.Duration {
	if co.pointDur.Count() < co.hedgeMinObs {
		return 0
	}
	d := time.Duration(co.pointDur.Quantile(0.95) * float64(time.Second))
	if d < co.hedgeFloor {
		d = co.hedgeFloor
	}
	return d
}

// runPoint obtains one point's result from the worker fleet: dispatch
// (hedged when slow), classify, retry transient failures with
// jittered backoff, give up on deterministic ones. It returns the
// result, the number of attempts consumed (for SweepPoint.Attempts),
// and the terminal error if every attempt failed.
func (co *coordinator) runPoint(ctx context.Context, cfg ringmesh.Config, opt ringmesh.RunOptions, tr *obs.Trace) (ringmesh.Result, int, error) {
	start := time.Now()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			co.retries.Inc()
			select {
			case <-time.After(co.backoff(attempt)):
			case <-ctx.Done():
				return ringmesh.Result{}, attempt, &dispatchError{
					class: "canceled", status: http.StatusServiceUnavailable,
					transient: true, err: ctx.Err(),
				}
			}
		}
		res, err := co.attempt(ctx, cfg, opt, tr, attempt)
		if err == nil {
			co.pointDur.Observe(time.Since(start).Seconds())
			return res, attempt + 1, nil
		}
		lastErr = err
		var de *dispatchError
		if !errors.As(err, &de) || !de.transient || ctx.Err() != nil || attempt >= co.maxRetries {
			return ringmesh.Result{}, attempt + 1, lastErr
		}
	}
}

// dial is one dispatch goroutine's outcome.
type dial struct {
	res    ringmesh.Result
	err    error
	worker string
	hedged bool
}

// attempt runs one (possibly hedged) dispatch round: a primary
// dispatch, plus — if the point outlives the hedge delay — a second
// dispatch on a different worker. First success wins and cancels the
// loser; the round fails only when every launched dispatch failed.
func (co *coordinator) attempt(ctx context.Context, cfg ringmesh.Config, opt ringmesh.RunOptions, tr *obs.Trace, attempt int) (ringmesh.Result, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	primary, err := co.pick(nil)
	if err != nil {
		return ringmesh.Result{}, err
	}
	ch := make(chan dial, 2) // buffered: a losing dispatch never blocks
	launch := func(w *workerClient, hedged bool) {
		go func() {
			res, err := co.dispatch(actx, w, cfg, opt, tr, attempt, hedged)
			ch <- dial{res: res, err: err, worker: w.name, hedged: hedged}
		}()
	}
	launch(primary, false)
	inFlight := 1

	var hedgeC <-chan time.Time
	if d := co.hedgeDelay(); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}
	var firstErr error
	for {
		select {
		case <-ctx.Done():
			return ringmesh.Result{}, &dispatchError{
				worker: primary.name, class: "canceled",
				status: http.StatusServiceUnavailable, transient: true, err: ctx.Err(),
			}
		case <-hedgeC:
			hedgeC = nil
			if w, err := co.pick(primary); err == nil {
				co.hedges.Inc()
				co.log.Info("hedging slow point", "primary", primary.name, "hedge", w.name)
				launch(w, true)
				inFlight++
			}
		case d := <-ch:
			inFlight--
			if d.err == nil {
				if d.hedged {
					co.hedgeWins.Inc()
				}
				return d.res, nil
			}
			if firstErr == nil {
				firstErr = d.err
			}
			if inFlight == 0 {
				return ringmesh.Result{}, firstErr
			}
			// A dispatch failed but its hedge partner is still running;
			// wait for it.
		}
	}
}

// dispatch submits one run to one worker and sees it through to a
// terminal job state, recording a span per dispatch so retries and
// hedges are visible in the job trace.
func (co *coordinator) dispatch(ctx context.Context, w *workerClient, cfg ringmesh.Config, opt ringmesh.RunOptions, tr *obs.Trace, attempt int, hedged bool) (ringmesh.Result, error) {
	w.dispatched.Inc()
	start := time.Now()
	res, err := co.dispatchRaw(ctx, w, cfg, opt)
	outcome := "ok"
	if err != nil {
		w.failures.Inc()
		outcome = "error"
		var de *dispatchError
		if errors.As(err, &de) {
			outcome = de.class
		}
	}
	attrs := []obs.Attr{
		{Key: "worker", Value: w.name},
		{Key: "attempt", Value: fmt.Sprintf("%d", attempt)},
		{Key: "outcome", Value: outcome},
	}
	if hedged {
		attrs = append(attrs, obs.Attr{Key: "hedged", Value: "true"})
	}
	tr.Record(obs.SpanRecord{Name: "dispatch", Start: start, Dur: time.Since(start), Attrs: attrs})
	return res, err
}

// dispatchRaw is the wire protocol of one dispatch: POST the run,
// then poll the job document to a terminal state. Breaker accounting
// happens here: transport failures and submit-path 5xxs count against
// the worker's breaker; job-level failures do not (the worker's HTTP
// service demonstrably works — the taxonomy decides retrying, not
// ejection).
func (co *coordinator) dispatchRaw(ctx context.Context, w *workerClient, cfg ringmesh.Config, opt ringmesh.RunOptions) (ringmesh.Result, error) {
	rr := runRequest{Config: cfg, Options: &opt}
	// End-to-end propagation: the dispatched run inherits the job's
	// class on the worker's own admission queues, and whatever remains
	// of the deadline becomes the worker's budget for this point.
	if c, ok := classFromCtx(ctx); ok {
		rr.Class = c.String()
	}
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl).Milliseconds()
		if rem < 1 {
			rem = 1 // let the worker reject it with its own taxonomy
		}
		rr.DeadlineMS = rem
	}
	body, err := json.Marshal(rr)
	if err != nil {
		return ringmesh.Result{}, &dispatchError{worker: w.name, class: "protocol",
			status: http.StatusInternalServerError, err: err}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/v1/runs", bytes.NewReader(body))
	if err != nil {
		return ringmesh.Result{}, &dispatchError{worker: w.name, class: "protocol",
			status: http.StatusInternalServerError, err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ringmesh.Result{}, &dispatchError{worker: w.name, class: "canceled",
				status: http.StatusServiceUnavailable, transient: true, err: ctx.Err()}
		}
		co.breakerFailure(w)
		return ringmesh.Result{}, &dispatchError{worker: w.name, class: "connect",
			status: http.StatusBadGateway, transient: true, err: err}
	}
	raw, view, derr := co.readJobView(w, resp)
	if derr != nil {
		return ringmesh.Result{}, derr
	}
	switch resp.StatusCode {
	case http.StatusOK:
		// Served synchronously from the worker's cache.
		w.br.success()
		if view.Result == nil {
			return ringmesh.Result{}, &dispatchError{worker: w.name, class: "protocol",
				status: http.StatusBadGateway, transient: true,
				err: fmt.Errorf("200 with no result: %.200s", raw)}
		}
		return *view.Result, nil
	case http.StatusAccepted:
		w.br.success()
		return co.pollJob(ctx, w, view.ID)
	case http.StatusServiceUnavailable, http.StatusGatewayTimeout, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusTooManyRequests:
		// Submit rejected: queue full, draining, overloaded. Transient —
		// and evidence about the worker's health, so the breaker hears
		// about it (except 429, which is policy, not sickness).
		if resp.StatusCode != http.StatusTooManyRequests {
			co.breakerFailure(w)
		}
		return ringmesh.Result{}, &dispatchError{worker: w.name, class: "rejected",
			status: resp.StatusCode, transient: true,
			err: fmt.Errorf("submit rejected (%d): %.200s", resp.StatusCode, raw)}
	default:
		// 400/422-class: the request is the problem, not the worker.
		// Deterministic — never retried.
		w.br.success()
		return ringmesh.Result{}, &dispatchError{worker: w.name, class: "config",
			status: resp.StatusCode,
			err:    fmt.Errorf("submit refused (%d): %.200s", resp.StatusCode, raw)}
	}
}

// readJobView decodes a response body into a job document.
func (co *coordinator) readJobView(w *workerClient, resp *http.Response) ([]byte, JobView, *dispatchError) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		co.breakerFailure(w)
		return nil, JobView{}, &dispatchError{worker: w.name, class: "connect",
			status: http.StatusBadGateway, transient: true, err: err}
	}
	var view JobView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &view); err != nil {
			co.breakerFailure(w)
			return raw, view, &dispatchError{worker: w.name, class: "protocol",
				status: http.StatusBadGateway, transient: true,
				err: fmt.Errorf("bad job document: %v (%.200s)", err, raw)}
		}
	}
	return raw, view, nil
}

// pollJob follows an accepted job to its terminal state. A worker
// that dies mid-job (kill -9) surfaces here as a poll transport error:
// transient, breaker-counted, and the point is retried elsewhere.
func (co *coordinator) pollJob(ctx context.Context, w *workerClient, id string) (ringmesh.Result, error) {
	t := time.NewTicker(co.pollEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ringmesh.Result{}, &dispatchError{worker: w.name, class: "canceled",
				status: http.StatusServiceUnavailable, transient: true, err: ctx.Err()}
		case <-t.C:
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/v1/jobs/"+id, nil)
		if err != nil {
			return ringmesh.Result{}, &dispatchError{worker: w.name, class: "protocol",
				status: http.StatusInternalServerError, err: err}
		}
		resp, err := w.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ringmesh.Result{}, &dispatchError{worker: w.name, class: "canceled",
					status: http.StatusServiceUnavailable, transient: true, err: ctx.Err()}
			}
			co.breakerFailure(w)
			return ringmesh.Result{}, &dispatchError{worker: w.name, class: "connect",
				status: http.StatusBadGateway, transient: true,
				err: fmt.Errorf("lost job %s: %w", id, err)}
		}
		raw, view, derr := co.readJobView(w, resp)
		if derr != nil {
			return ringmesh.Result{}, derr
		}
		if resp.StatusCode != http.StatusOK {
			co.breakerFailure(w)
			return ringmesh.Result{}, &dispatchError{worker: w.name, class: "protocol",
				status: http.StatusBadGateway, transient: true,
				err: fmt.Errorf("poll job %s: %d: %.200s", id, resp.StatusCode, raw)}
		}
		switch view.State {
		case JobDone:
			w.br.success()
			if view.Result == nil {
				return ringmesh.Result{}, &dispatchError{worker: w.name, class: "protocol",
					status: http.StatusBadGateway, transient: true,
					err: fmt.Errorf("job %s done with no result", id)}
			}
			return *view.Result, nil
		case JobFailed:
			// The worker's HTTP service is healthy; the job failed with a
			// classified error. Canceled (worker draining), timeout,
			// deadline (this worker's remaining budget ran out — another
			// may be faster) and shed (this worker evicted it under load)
			// are attempt-scoped and retried elsewhere; config, stall and
			// runtime (model panic) are deterministic and are not.
			w.br.success()
			je := view.Error
			if je == nil {
				je = &JobError{Status: http.StatusInternalServerError, Kind: "runtime",
					Message: "job failed with no error document"}
			}
			transient := je.Kind == "canceled" || je.Kind == "timeout" ||
				je.Kind == "deadline" || je.Kind == "shed"
			return ringmesh.Result{}, &dispatchError{worker: w.name, class: je.Kind,
				status:    je.Status,
				transient: transient,
				err:       errors.New(je.Message)}
		}
	}
}

// breakerFailure feeds a health-relevant failure to a worker's
// breaker, counting the trip exactly once when it opens.
func (co *coordinator) breakerFailure(w *workerClient) {
	if w.br.failure() {
		co.trips.Inc()
		co.log.Warn("worker ejected (circuit breaker open)", "worker", w.name)
	}
}
