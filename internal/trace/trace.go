// Package trace captures per-packet lifecycle events from the
// simulators — issue, per-hop movement, exits and delivery — for
// debugging and for the cmd/ringmesh -trace flag. Recording is
// optional and nil-safe: a nil *Recorder ignores every call, so the
// networks trace unconditionally without branching at call sites.
package trace

import (
	"fmt"
	"io"

	"ringmesh/internal/packet"
)

// Kind classifies a lifecycle event.
type Kind uint8

const (
	// Issue: the processor generated the transaction.
	Issue Kind = iota
	// Inject: the packet entered the network fabric.
	Inject
	// Hop: a flit (wormhole) or slot (slotted) moved one stage.
	Hop
	// Exit: the packet left a ring through an IRI queue.
	Exit
	// Deliver: the packet fully arrived at its destination PM.
	Deliver
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Issue:
		return "issue"
	case Inject:
		return "inject"
	case Hop:
		return "hop"
	case Exit:
		return "exit"
	case Deliver:
		return "deliver"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded lifecycle step.
type Event struct {
	// Tick is the engine tick the event happened at.
	Tick int64
	// Kind classifies the event.
	Kind Kind
	// Packet identifies the packet (packet.Packet.ID).
	Packet uint64
	// Type is the packet's transaction type.
	Type packet.Type
	// Src, Dst are the packet's endpoints.
	Src, Dst int
	// Where locates the event ("nic3", "router 5 east", ...).
	Where string
}

// String renders the event for logs.
func (e Event) String() string {
	return fmt.Sprintf("t=%-6d %-8s #%d %s %d->%d @ %s",
		e.Tick, e.Kind, e.Packet, e.Type, e.Src, e.Dst, e.Where)
}

// DefaultCap bounds a Recorder that was not given an explicit
// capacity (hop events are plentiful).
const DefaultCap = 1 << 20

// Recorder accumulates events up to a capacity. Once full, the
// default mode counts and drops new events (keeping the oldest — the
// run's beginning); KeepLatest instead overwrites the oldest so the
// retained window always ends at the most recent event.
type Recorder struct {
	// Cap bounds retained events (0 = DefaultCap).
	Cap int
	// OnlyPacket, when non-zero, restricts recording to one packet id.
	OnlyPacket uint64
	// KeepLatest switches the full recorder to a ring buffer: new
	// events overwrite the oldest instead of being dropped. Useful
	// when the interesting window is the end of the run (a stall, a
	// saturation collapse) rather than its start.
	KeepLatest bool

	events  []Event
	start   int // ring-buffer read position (KeepLatest, once full)
	dropped int64
}

// Record appends one event. Nil receivers and filtered packets are
// ignored.
func (r *Recorder) Record(tick int64, kind Kind, p *packet.Packet, where string) {
	if r == nil || p == nil {
		return
	}
	if r.OnlyPacket != 0 && p.ID != r.OnlyPacket {
		return
	}
	max := r.Cap
	if max <= 0 {
		max = DefaultCap
	}
	ev := Event{
		Tick: tick, Kind: kind, Packet: p.ID, Type: p.Type,
		Src: p.Src, Dst: p.Dst, Where: where,
	}
	if len(r.events) >= max {
		if !r.KeepLatest {
			r.dropped++
			return
		}
		// Ring-buffer mode: overwrite the oldest retained event.
		r.events[r.start] = ev
		r.start = (r.start + 1) % len(r.events)
		r.dropped++
		return
	}
	r.events = append(r.events, ev)
}

// ordered returns the retained events oldest-first without copying;
// the two slices are consecutive chunks of the ring buffer (the
// second is empty until a KeepLatest recorder wraps).
func (r *Recorder) ordered() ([]Event, []Event) {
	return r.events[r.start:], r.events[:r.start]
}

// Events returns the recorded events in order (oldest first).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	a, b := r.ordered()
	out := make([]Event, 0, len(r.events))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// Dropped reports how many events exceeded the capacity.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Timeline returns the events of one packet in order.
func (r *Recorder) Timeline(packetID uint64) []Event {
	if r == nil {
		return nil
	}
	var out []Event
	a, b := r.ordered()
	for _, chunk := range [][]Event{a, b} {
		for _, e := range chunk {
			if e.Packet == packetID {
				out = append(out, e)
			}
		}
	}
	return out
}

// PacketIDs returns the distinct packet ids seen, in first-appearance
// order.
func (r *Recorder) PacketIDs() []uint64 {
	if r == nil {
		return nil
	}
	seen := map[uint64]bool{}
	var out []uint64
	a, b := r.ordered()
	for _, chunk := range [][]Event{a, b} {
		for _, e := range chunk {
			if !seen[e.Packet] {
				seen[e.Packet] = true
				out = append(out, e.Packet)
			}
		}
	}
	return out
}

// Write renders all retained events oldest-first, one per line,
// followed by a note counting events lost to the capacity bound (the
// newest in the default mode, the oldest under KeepLatest).
func (r *Recorder) Write(w io.Writer) error {
	if r == nil {
		return nil
	}
	a, b := r.ordered()
	for _, chunk := range [][]Event{a, b} {
		for _, e := range chunk {
			if _, err := fmt.Fprintln(w, e); err != nil {
				return err
			}
		}
	}
	if r.dropped > 0 {
		note := "dropped beyond capacity; oldest retained"
		if r.KeepLatest {
			note = "overwritten beyond capacity; latest retained"
		}
		if _, err := fmt.Fprintf(w, "(%d events %s)\n", r.dropped, note); err != nil {
			return err
		}
	}
	return nil
}
