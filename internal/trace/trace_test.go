package trace

import (
	"bytes"
	"strings"
	"testing"

	"ringmesh/internal/packet"
)

func pkt(id uint64) *packet.Packet {
	return &packet.Packet{ID: id, Type: packet.ReadRequest, Src: 0, Dst: 3, Flits: 1}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(1, Issue, pkt(1), "pm0") // must not panic
	if r.Events() != nil || r.Timeline(1) != nil || r.PacketIDs() != nil {
		t.Fatal("nil recorder should return nil slices")
	}
	if r.Dropped() != 0 {
		t.Fatal("nil recorder dropped count")
	}
	if err := r.Write(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordAndTimeline(t *testing.T) {
	r := &Recorder{}
	r.Record(1, Issue, pkt(1), "pm0")
	r.Record(2, Hop, pkt(1), "nic0->nic1")
	r.Record(3, Deliver, pkt(1), "pm3")
	r.Record(2, Issue, pkt(2), "pm1")
	if len(r.Events()) != 4 {
		t.Fatalf("events = %d", len(r.Events()))
	}
	tl := r.Timeline(1)
	if len(tl) != 3 || tl[0].Kind != Issue || tl[2].Kind != Deliver {
		t.Fatalf("timeline = %v", tl)
	}
	ids := r.PacketIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestFilter(t *testing.T) {
	r := &Recorder{OnlyPacket: 2}
	r.Record(1, Issue, pkt(1), "pm0")
	r.Record(1, Issue, pkt(2), "pm1")
	if len(r.Events()) != 1 || r.Events()[0].Packet != 2 {
		t.Fatalf("filter failed: %v", r.Events())
	}
}

func TestCapacityDrop(t *testing.T) {
	r := &Recorder{Cap: 2}
	for i := 0; i < 5; i++ {
		r.Record(int64(i), Hop, pkt(1), "x")
	}
	if len(r.Events()) != 2 || r.Dropped() != 3 {
		t.Fatalf("events=%d dropped=%d", len(r.Events()), r.Dropped())
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3 events dropped") {
		t.Fatalf("drop note missing:\n%s", buf.String())
	}
}

func TestKeepLatestWrapAround(t *testing.T) {
	r := &Recorder{Cap: 3, KeepLatest: true}
	for i := 0; i < 8; i++ {
		r.Record(int64(i), Hop, pkt(uint64(i)), "x")
	}
	evts := r.Events()
	if len(evts) != 3 {
		t.Fatalf("events = %d, want 3", len(evts))
	}
	// The retained window must be the newest three, oldest first.
	for i, want := range []int64{5, 6, 7} {
		if evts[i].Tick != want {
			t.Fatalf("events[%d].Tick = %d, want %d (got %v)", i, evts[i].Tick, want, evts)
		}
	}
	if r.Dropped() != 5 {
		t.Fatalf("dropped = %d, want 5", r.Dropped())
	}
	// Timeline and PacketIDs follow the same oldest-first order.
	ids := r.PacketIDs()
	if len(ids) != 3 || ids[0] != 5 || ids[1] != 6 || ids[2] != 7 {
		t.Fatalf("ids = %v", ids)
	}
	if tl := r.Timeline(6); len(tl) != 1 || tl[0].Tick != 6 {
		t.Fatalf("timeline = %v", tl)
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "5 events overwritten") {
		t.Fatalf("overwrite note missing:\n%s", out)
	}
	// Lines must render oldest-first even after the buffer wrapped.
	if i5, i7 := strings.Index(out, "t=5"), strings.Index(out, "t=7"); i5 < 0 || i7 < 0 || i5 > i7 {
		t.Fatalf("wrapped order wrong:\n%s", out)
	}
}

func TestKeepLatestBelowCapacity(t *testing.T) {
	r := &Recorder{Cap: 8, KeepLatest: true}
	for i := 0; i < 3; i++ {
		r.Record(int64(i), Hop, pkt(1), "x")
	}
	evts := r.Events()
	if len(evts) != 3 || r.Dropped() != 0 {
		t.Fatalf("events=%d dropped=%d", len(evts), r.Dropped())
	}
	for i, e := range evts {
		if e.Tick != int64(i) {
			t.Fatalf("events[%d].Tick = %d", i, e.Tick)
		}
	}
	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "overwritten") {
		t.Fatalf("unexpected overwrite note:\n%s", buf.String())
	}
}

func TestEventString(t *testing.T) {
	e := Event{Tick: 7, Kind: Hop, Packet: 9, Type: packet.ReadResponse, Src: 1, Dst: 2, Where: "nic1->nic2"}
	s := e.String()
	for _, want := range []string{"t=7", "hop", "#9", "read-resp", "1->2", "nic1->nic2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event string %q missing %q", s, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{Issue: "issue", Inject: "inject", Hop: "hop", Exit: "exit", Deliver: "deliver"} {
		if k.String() != want {
			t.Fatalf("%d = %q", k, k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind should render")
	}
}
