// Package plot renders experiment series as ASCII line charts so the
// paper's figures can be eyeballed directly in a terminal, without
// any plotting dependency.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one labelled curve.
type Series struct {
	Label string
	X, Y  []float64
}

// Options controls the canvas.
type Options struct {
	// Width and Height are the plot area size in characters
	// (defaults 64x20).
	Width, Height int
	// Title, XLabel, YLabel annotate the chart.
	Title, XLabel, YLabel string
	// LogX plots the x axis on a log2 scale (the paper's figures 6
	// and 14 are log-log; latency ranges here stay readable with a
	// linear y).
	LogX bool
}

// markers distinguish up to eight series.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// Render draws the series onto w.
func Render(w io.Writer, series []Series, opt Options) error {
	width, height := opt.Width, opt.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	pts := 0
	for _, s := range series {
		for i := range s.X {
			x := s.X[i]
			if opt.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log2(x)
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
			pts++
		}
	}
	if pts == 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	// Always anchor y at zero for latency/utilization charts.
	if ymin > 0 {
		ymin = 0
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			x := s.X[i]
			if opt.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log2(x)
			}
			cx := int((x - xmin) / (xmax - xmin) * float64(width-1))
			cy := int((s.Y[i] - ymin) / (ymax - ymin) * float64(height-1))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = m
			}
		}
	}

	if opt.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", opt.Title); err != nil {
			return err
		}
	}
	for r, row := range grid {
		yv := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		if _, err := fmt.Fprintf(w, "%8.1f |%s\n", yv, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	lo, hi := xmin, xmax
	if opt.LogX {
		lo, hi = math.Pow(2, xmin), math.Pow(2, xmax)
	}
	axis := fmt.Sprintf("%.0f", lo)
	right := fmt.Sprintf("%.0f%s", hi, xlabelSuffix(opt.XLabel))
	gap := width - len(axis) - len(right)
	if gap < 1 {
		gap = 1
	}
	if _, err := fmt.Fprintf(w, "%8s  %s%s%s\n", "", axis, strings.Repeat(" ", gap), right); err != nil {
		return err
	}
	// Legend.
	for si, s := range series {
		if _, err := fmt.Fprintf(w, "%10c %s\n", markers[si%len(markers)], s.Label); err != nil {
			return err
		}
	}
	return nil
}

func xlabelSuffix(label string) string {
	if label == "" {
		return ""
	}
	return " (" + label + ")"
}
