package plot

import (
	"bytes"
	"strings"
	"testing"
)

func render(t *testing.T, series []Series, opt Options) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Render(&buf, series, opt); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRenderBasics(t *testing.T) {
	out := render(t, []Series{
		{Label: "ring", X: []float64{4, 8, 16, 32}, Y: []float64{10, 20, 40, 80}},
		{Label: "mesh", X: []float64{4, 16, 36}, Y: []float64{30, 35, 50}},
	}, Options{Title: "latency", Width: 40, Height: 10, XLabel: "nodes"})
	if !strings.Contains(out, "latency") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "ring") || !strings.Contains(out, "mesh") {
		t.Fatal("missing legend entries")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("missing series markers")
	}
	if !strings.Contains(out, "(nodes)") {
		t.Fatal("missing x label")
	}
	// 10 plot rows + axis rows + legend.
	if lines := strings.Count(out, "\n"); lines < 13 {
		t.Fatalf("too few lines: %d", lines)
	}
}

func TestRenderEmpty(t *testing.T) {
	out := render(t, nil, Options{})
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty render = %q", out)
	}
}

func TestRenderSinglePoint(t *testing.T) {
	out := render(t, []Series{{Label: "p", X: []float64{5}, Y: []float64{7}}}, Options{})
	if !strings.Contains(out, "*") {
		t.Fatal("single point not drawn")
	}
}

func TestRenderLogX(t *testing.T) {
	s := []Series{{Label: "s", X: []float64{4, 8, 16, 32, 64, 128}, Y: []float64{1, 2, 3, 4, 5, 6}}}
	lin := render(t, s, Options{Width: 60, Height: 8})
	log := render(t, s, Options{Width: 60, Height: 8, LogX: true})
	if lin == log {
		t.Fatal("log-x should change the layout")
	}
	// On a log2 axis the six points are evenly spaced: find marker
	// columns and check spacing uniformity.
	cols := markerColumns(log)
	if len(cols) != 6 {
		t.Fatalf("expected 6 marker columns, got %v", cols)
	}
	d := cols[1] - cols[0]
	for i := 2; i < len(cols); i++ {
		got := cols[i] - cols[i-1]
		if got < d-1 || got > d+1 {
			t.Fatalf("log spacing not uniform: %v", cols)
		}
	}
}

func markerColumns(out string) []int {
	seen := map[int]bool{}
	for _, line := range strings.Split(out, "\n") {
		idx := strings.IndexByte(line, '|')
		if idx < 0 {
			continue
		}
		for c := idx + 1; c < len(line); c++ {
			if line[c] == '*' {
				seen[c-idx-1] = true
			}
		}
	}
	cols := make([]int, 0, len(seen))
	for c := range seen {
		cols = append(cols, c)
	}
	for i := 0; i < len(cols); i++ {
		for j := i + 1; j < len(cols); j++ {
			if cols[j] < cols[i] {
				cols[i], cols[j] = cols[j], cols[i]
			}
		}
	}
	return cols
}

func TestRenderIgnoresNonPositiveXOnLog(t *testing.T) {
	out := render(t, []Series{{Label: "s", X: []float64{0, 4}, Y: []float64{1, 2}}},
		Options{LogX: true})
	if !strings.Contains(out, "*") {
		t.Fatal("positive point should still render")
	}
}
