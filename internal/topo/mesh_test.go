package topo

import (
	"testing"
	"testing/quick"
)

func TestMeshSpecBasics(t *testing.T) {
	m := MustMeshSpec(4)
	if m.PMs() != 16 {
		t.Fatalf("PMs = %d", m.PMs())
	}
	if m.String() != "4x4" {
		t.Fatalf("String = %q", m.String())
	}
	if m.NumLinks() != 4*4*3 {
		t.Fatalf("NumLinks = %d", m.NumLinks())
	}
	if _, err := NewMeshSpec(0); err == nil {
		t.Fatal("0-side mesh accepted")
	}
}

func TestMeshForPMs(t *testing.T) {
	cases := map[int]int{1: 1, 4: 2, 9: 3, 10: 4, 16: 4, 121: 11}
	for pms, k := range cases {
		if got := MeshForPMs(pms); got.K != k {
			t.Fatalf("MeshForPMs(%d) = %d, want %d", pms, got.K, k)
		}
	}
	if !Square(49) || Square(50) {
		t.Fatal("Square wrong")
	}
}

func TestCoordIDRoundTrip(t *testing.T) {
	m := MustMeshSpec(5)
	for id := 0; id < m.PMs(); id++ {
		x, y := m.Coord(id)
		if m.ID(x, y) != id {
			t.Fatalf("round trip failed for %d", id)
		}
	}
	// Row-major.
	if x, y := m.Coord(7); x != 2 || y != 1 {
		t.Fatalf("Coord(7) = (%d,%d)", x, y)
	}
}

func TestHopDistance(t *testing.T) {
	m := MustMeshSpec(4)
	if m.HopDistance(0, 15) != 6 {
		t.Fatalf("corner distance = %d", m.HopDistance(0, 15))
	}
	if m.HopDistance(5, 5) != 0 {
		t.Fatal("self distance nonzero")
	}
	if m.HopDistance(0, 1) != 1 || m.HopDistance(0, 4) != 1 {
		t.Fatal("adjacent distance wrong")
	}
}

func TestNeighbors(t *testing.T) {
	m := MustMeshSpec(3)
	center := m.ID(1, 1)
	if m.Neighbor(center, North) != m.ID(1, 0) {
		t.Fatal("north neighbour wrong")
	}
	if m.Neighbor(center, South) != m.ID(1, 2) {
		t.Fatal("south neighbour wrong")
	}
	if m.Neighbor(center, East) != m.ID(2, 1) {
		t.Fatal("east neighbour wrong")
	}
	if m.Neighbor(center, West) != m.ID(0, 1) {
		t.Fatal("west neighbour wrong")
	}
	// Edges: no end-around connections.
	if m.Neighbor(m.ID(0, 0), North) != -1 || m.Neighbor(m.ID(0, 0), West) != -1 {
		t.Fatal("mesh should have no wraparound")
	}
	if m.Neighbor(m.ID(2, 2), South) != -1 || m.Neighbor(m.ID(2, 2), East) != -1 {
		t.Fatal("mesh should have no wraparound at far corner")
	}
}

func TestOpposite(t *testing.T) {
	pairs := [][2]Direction{{North, South}, {East, West}}
	for _, p := range pairs {
		if p[0].Opposite() != p[1] || p[1].Opposite() != p[0] {
			t.Fatalf("opposite of %v/%v wrong", p[0], p[1])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Opposite(Local) did not panic")
		}
	}()
	Local.Opposite()
}

func TestRouteIsXFirst(t *testing.T) {
	m := MustMeshSpec(4)
	// From (0,0) to (2,3): must move East until x matches.
	src, dst := m.ID(0, 0), m.ID(2, 3)
	if m.Route(src, dst) != East {
		t.Fatal("e-cube must correct X first")
	}
	// Once x matches, move in Y.
	if m.Route(m.ID(2, 0), dst) != South {
		t.Fatal("e-cube must correct Y second")
	}
	if m.Route(dst, dst) != Local {
		t.Fatal("arrived packet should eject")
	}
}

func TestPathLengthMatchesDistance(t *testing.T) {
	m := MustMeshSpec(5)
	for src := 0; src < m.PMs(); src += 3 {
		for dst := 0; dst < m.PMs(); dst += 2 {
			path := m.Path(src, dst)
			if len(path)-1 != m.HopDistance(src, dst) {
				t.Fatalf("path %d->%d has %d links, want %d",
					src, dst, len(path)-1, m.HopDistance(src, dst))
			}
			if path[0] != src || path[len(path)-1] != dst {
				t.Fatal("path endpoints wrong")
			}
		}
	}
}

func TestDirectionString(t *testing.T) {
	if North.String() != "north" || Local.String() != "local" {
		t.Fatal("direction names wrong")
	}
	if Direction(9).String() == "" {
		t.Fatal("unknown direction should render")
	}
}

// Property: the e-cube path never moves away from the destination
// (each step decreases Manhattan distance by exactly one) and turns at
// most once.
func TestQuickEcubeMinimal(t *testing.T) {
	f := func(kRaw, sRaw, dRaw uint8) bool {
		k := int(kRaw%6) + 2
		m := MustMeshSpec(k)
		src := int(sRaw) % m.PMs()
		dst := int(dRaw) % m.PMs()
		path := m.Path(src, dst)
		turns := 0
		var lastDir Direction = -1
		for i := 0; i+1 < len(path); i++ {
			if m.HopDistance(path[i+1], dst) != m.HopDistance(path[i], dst)-1 {
				return false
			}
			d := m.Route(path[i], dst)
			if lastDir >= 0 && d != lastDir {
				turns++
			}
			lastDir = d
		}
		return turns <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
