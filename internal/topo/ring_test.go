package topo

import (
	"testing"
	"testing/quick"
)

func TestParseRingSpec(t *testing.T) {
	cases := map[string][]int{
		"2:3:4":   {2, 3, 4},
		"12":      {12},
		" 3 : 8 ": {3, 8},
	}
	for in, want := range cases {
		got, err := ParseRingSpec(in)
		if err != nil {
			t.Fatalf("ParseRingSpec(%q): %v", in, err)
		}
		if len(got.Levels) != len(want) {
			t.Fatalf("ParseRingSpec(%q) = %v", in, got)
		}
		for i := range want {
			if got.Levels[i] != want[i] {
				t.Fatalf("ParseRingSpec(%q) = %v", in, got)
			}
		}
	}
	for _, bad := range []string{"", "a", "2::3", "0", "2:-1"} {
		if _, err := ParseRingSpec(bad); err == nil {
			t.Fatalf("ParseRingSpec(%q) should fail", bad)
		}
	}
}

func TestRingSpecStringRoundTrip(t *testing.T) {
	for _, s := range []string{"2:3:4", "12", "3:3:3:4"} {
		spec, err := ParseRingSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		if spec.String() != s {
			t.Fatalf("round trip %q -> %q", s, spec.String())
		}
	}
}

func TestPMsAndRings(t *testing.T) {
	spec := MustRingSpec(2, 3, 4)
	if spec.PMs() != 24 {
		t.Fatalf("PMs = %d", spec.PMs())
	}
	if spec.NumLevels() != 3 {
		t.Fatalf("levels = %d", spec.NumLevels())
	}
	// 1 global + 2 intermediate + 6 local rings.
	if spec.NumRings() != 9 {
		t.Fatalf("rings = %d", spec.NumRings())
	}
	if spec.NumIRIs() != 8 {
		t.Fatalf("IRIs = %d", spec.NumIRIs())
	}
	if spec.RingsAtLevel(0) != 1 || spec.RingsAtLevel(1) != 2 || spec.RingsAtLevel(2) != 6 {
		t.Fatal("RingsAtLevel wrong")
	}
}

func TestDigitsRoundTrip(t *testing.T) {
	spec := MustRingSpec(2, 3, 4)
	for p := 0; p < spec.PMs(); p++ {
		d := spec.Digits(p)
		if spec.PM(d) != p {
			t.Fatalf("digits round trip failed for %d: %v", p, d)
		}
	}
	// DFS ordering: PM 0 is digits {0,0,0}; PM 23 is {1,2,3}.
	d := spec.Digits(23)
	if d[0] != 1 || d[1] != 2 || d[2] != 3 {
		t.Fatalf("digits(23) = %v", d)
	}
}

func TestSubtreeSize(t *testing.T) {
	spec := MustRingSpec(2, 3, 4)
	if spec.SubtreeSize(0) != 24 || spec.SubtreeSize(1) != 12 ||
		spec.SubtreeSize(2) != 4 || spec.SubtreeSize(3) != 1 {
		t.Fatal("SubtreeSize wrong")
	}
}

func TestRingHopsSingleRing(t *testing.T) {
	// On a single unidirectional ring of 6 NICs, hops from s to d is
	// (d-s) mod 6.
	spec := MustRingSpec(6)
	for s := 0; s < 6; s++ {
		for d := 0; d < 6; d++ {
			want := mod(d-s, 6)
			if got := spec.RingHops(s, d); got != want {
				t.Fatalf("RingHops(%d,%d) = %d, want %d", s, d, got, want)
			}
		}
	}
}

func TestRingHopsTwoLevel(t *testing.T) {
	// 2 local rings of 3 PMs: local rings have 4 slots (3 NICs +
	// parent IRI at slot 3); global ring has 2 slots.
	spec := MustRingSpec(2, 3)
	// Same ring: PM 0 -> PM 1 is one link.
	if got := spec.RingHops(0, 1); got != 1 {
		t.Fatalf("same-ring hop = %d", got)
	}
	// PM 1 -> PM 0: around the ring through the IRI slot: 1->2->IRI->0
	// = 3 links.
	if got := spec.RingHops(1, 0); got != 3 {
		t.Fatalf("wrap hop = %d", got)
	}
	// Cross ring, PM 0 (ring 0 slot 0) -> PM 3 (ring 1 slot 0):
	// ascend 0->1->2->IRI = 3 links, global IRI0->IRI1 = 1 link,
	// descend IRI->slot0 = 1 link. Total 5.
	if got := spec.RingHops(0, 3); got != 5 {
		t.Fatalf("cross-ring hops = %d, want 5", got)
	}
	if spec.RingHops(4, 4) != 0 {
		t.Fatal("self distance should be 0")
	}
}

func TestRingHopsThreeLevelSymmetry(t *testing.T) {
	spec := MustRingSpec(2, 2, 2)
	// Unidirectional rings: distance is not symmetric, but every
	// ordered pair must have a finite positive distance.
	for s := 0; s < spec.PMs(); s++ {
		for d := 0; d < spec.PMs(); d++ {
			h := spec.RingHops(s, d)
			if s == d && h != 0 {
				t.Fatalf("self hops %d", h)
			}
			if s != d && h <= 0 {
				t.Fatalf("RingHops(%d,%d) = %d", s, d, h)
			}
		}
	}
}

func TestAverageRingHopsGrowsWithWrap(t *testing.T) {
	// A deeper hierarchy of the same PM count has longer average
	// distance than a single ring only when the single ring is small;
	// here just sanity-check monotone positivity and a hand value.
	single := MustRingSpec(4)
	// Ordered pairs on a 4-ring: distances 1,2,3 each appearing 4
	// times → mean 2.
	if got := single.AverageRingHops(); got != 2 {
		t.Fatalf("avg hops on 4-ring = %v", got)
	}
}

func TestEnumerateRingSpecs(t *testing.T) {
	specs := EnumerateRingSpecs(24, 3, 3, 12)
	if len(specs) == 0 {
		t.Fatal("no specs for 24 PMs")
	}
	seen := map[string]bool{}
	for _, s := range specs {
		if s.PMs() != 24 {
			t.Fatalf("spec %v has %d PMs", s, s.PMs())
		}
		if s.NumLevels() > 3 {
			t.Fatalf("spec %v too deep", s)
		}
		if seen[s.String()] {
			t.Fatalf("duplicate spec %v", s)
		}
		seen[s.String()] = true
		for i, b := range s.Levels {
			if i < len(s.Levels)-1 && (b < 2 || b > 3) {
				t.Fatalf("spec %v internal branch %d", s, b)
			}
			if i == len(s.Levels)-1 && b > 12 {
				t.Fatalf("spec %v leaf %d", s, b)
			}
		}
	}
	// The paper's 24-PM 16B topology 2:12 must be among them.
	if !seen["2:12"] {
		t.Fatalf("2:12 missing from %v", specs)
	}
	// And 2:2:6 (3-level option).
	if !seen["2:2:6"] {
		t.Fatalf("2:2:6 missing from %v", specs)
	}
}

func TestEnumerateRespectsSingleRing(t *testing.T) {
	specs := EnumerateRingSpecs(8, 3, 3, 8)
	found := false
	for _, s := range specs {
		if s.String() == "8" {
			found = true
		}
	}
	if !found {
		t.Fatal("single-ring spec not enumerated when leaf cap allows")
	}
	specs = EnumerateRingSpecs(9, 2, 3, 8)
	for _, s := range specs {
		if s.NumLevels() == 1 {
			t.Fatal("9 > maxLeaf 8 must not yield a single ring")
		}
	}
}

func TestNewRingSpecValidation(t *testing.T) {
	if _, err := NewRingSpec(); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := NewRingSpec(2, 0); err == nil {
		t.Fatal("zero branch accepted")
	}
}

// Property: RingHops is consistent with a walk along ring slots — the
// total distance around any single ring from a PM back to itself via
// all others equals the ring circumference.
func TestQuickRingHopsBounds(t *testing.T) {
	f := func(a, b, c uint8) bool {
		l0 := int(a%3) + 2
		l1 := int(b%3) + 2
		l2 := int(c%4) + 2
		spec := MustRingSpec(l0, l1, l2)
		p := spec.PMs()
		// Upper bound: sum of all ring circumferences along the
		// longest possible route (leaf + mid + global + mid + leaf).
		bound := 2*(l2+1) + 2*(l1+1) + l0
		for s := 0; s < p; s += 3 {
			for d := 0; d < p; d += 5 {
				h := spec.RingHops(s, d)
				if h < 0 || h > bound {
					return false
				}
				if (s == d) != (h == 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Digits/PM are mutually inverse for arbitrary specs.
func TestQuickDigitsInverse(t *testing.T) {
	f := func(a, b uint8, pRaw uint16) bool {
		spec := MustRingSpec(int(a%5)+1, int(b%7)+1)
		p := int(pRaw) % spec.PMs()
		return spec.PM(spec.Digits(p)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
