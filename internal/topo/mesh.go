package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// MeshSpec describes a square 2D bi-directional mesh of K x K
// processing modules with no end-around connections (paper Section
// 2.2). PM ids are row-major: id = y*K + x.
type MeshSpec struct {
	K int
}

// NewMeshSpec returns a validated spec for a k x k mesh.
func NewMeshSpec(k int) (MeshSpec, error) {
	if k < 1 {
		return MeshSpec{}, fmt.Errorf("topo: mesh side %d < 1", k)
	}
	return MeshSpec{K: k}, nil
}

// MustMeshSpec is NewMeshSpec that panics on error.
func MustMeshSpec(k int) MeshSpec {
	m, err := NewMeshSpec(k)
	if err != nil {
		panic(err)
	}
	return m
}

// ParseMeshSpec parses the "KxK" notation produced by String.
func ParseMeshSpec(s string) (MeshSpec, error) {
	parts := strings.Split(s, "x")
	if len(parts) != 2 {
		return MeshSpec{}, fmt.Errorf("topo: bad mesh spec %q (want \"KxK\")", s)
	}
	a, errA := strconv.Atoi(parts[0])
	b, errB := strconv.Atoi(parts[1])
	if errA != nil || errB != nil {
		return MeshSpec{}, fmt.Errorf("topo: bad mesh spec %q (want \"KxK\")", s)
	}
	if a != b {
		return MeshSpec{}, fmt.Errorf("topo: mesh spec %q is not square", s)
	}
	return NewMeshSpec(a)
}

// MeshForPMs returns the smallest square mesh holding at least pms
// PMs. The paper only evaluates perfectly square systems (4, 9, 16,
// ... 121); exact reproduces require pms to be a perfect square, which
// Square reports.
func MeshForPMs(pms int) MeshSpec {
	k := 1
	for k*k < pms {
		k++
	}
	return MeshSpec{K: k}
}

// Square reports whether pms is a perfect square (a paper-style mesh
// size).
func Square(pms int) bool {
	m := MeshForPMs(pms)
	return m.K*m.K == pms
}

// PMs returns the number of processing modules.
func (m MeshSpec) PMs() int { return m.K * m.K }

// String renders the spec, e.g. "8x8".
func (m MeshSpec) String() string { return fmt.Sprintf("%dx%d", m.K, m.K) }

// Coord returns the (x, y) position of PM id.
func (m MeshSpec) Coord(id int) (x, y int) {
	if id < 0 || id >= m.PMs() {
		panic(fmt.Sprintf("topo: PM %d out of range [0,%d)", id, m.PMs()))
	}
	return id % m.K, id / m.K
}

// ID returns the PM id at (x, y).
func (m MeshSpec) ID(x, y int) int {
	if x < 0 || x >= m.K || y < 0 || y >= m.K {
		panic(fmt.Sprintf("topo: coordinate (%d,%d) out of range", x, y))
	}
	return y*m.K + x
}

// HopDistance returns the Manhattan distance between two PMs, which is
// the e-cube path length in links (one direction).
func (m MeshSpec) HopDistance(a, b int) int {
	ax, ay := m.Coord(a)
	bx, by := m.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// NumLinks returns the number of directed inter-router channels:
// every adjacent pair contributes two 32-bit uni-directional links.
func (m MeshSpec) NumLinks() int { return 4 * m.K * (m.K - 1) }

// Direction identifies a mesh router port.
type Direction int

// Router ports: the four neighbours plus the local PM port.
const (
	North Direction = iota
	South
	East
	West
	Local
	NumPorts
)

// String names the direction.
func (d Direction) String() string {
	switch d {
	case North:
		return "north"
	case South:
		return "south"
	case East:
		return "east"
	case West:
		return "west"
	case Local:
		return "local"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Opposite returns the facing port on the neighbouring router: a flit
// leaving East arrives on the neighbour's West input.
func (d Direction) Opposite() Direction {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		panic("topo: Opposite of non-cardinal direction")
	}
}

// Neighbor returns the PM id adjacent to id in direction d, or -1 when
// the edge of the mesh lies that way. North decreases y.
func (m MeshSpec) Neighbor(id int, d Direction) int {
	x, y := m.Coord(id)
	switch d {
	case North:
		y--
	case South:
		y++
	case East:
		x++
	case West:
		x--
	default:
		panic("topo: Neighbor of non-cardinal direction")
	}
	if x < 0 || x >= m.K || y < 0 || y >= m.K {
		return -1
	}
	return m.ID(x, y)
}

// Route returns the e-cube (dimension-order, X then Y) output port a
// packet at current should take toward dst; Local when current == dst.
// Deterministic dimension-order routing on a mesh without end-around
// links is deadlock-free without virtual channels, which is why the
// paper chose this topology.
func (m MeshSpec) Route(current, dst int) Direction {
	cx, cy := m.Coord(current)
	dx, dy := m.Coord(dst)
	switch {
	case dx > cx:
		return East
	case dx < cx:
		return West
	case dy > cy:
		return South
	case dy < cy:
		return North
	default:
		return Local
	}
}

// Path returns the full e-cube sequence of PM ids from src to dst,
// inclusive of both endpoints.
func (m MeshSpec) Path(src, dst int) []int {
	path := []int{src}
	cur := src
	for cur != dst {
		cur = m.Neighbor(cur, m.Route(cur, dst))
		path = append(path, cur)
	}
	return path
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
