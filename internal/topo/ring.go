// Package topo describes the two network geometries of the study:
// trees of unidirectional rings (in the paper's "2:3:4" notation) and
// square 2D meshes. It owns all address arithmetic — PM numbering,
// subtree ranges used for ring routing, hop distances — and the
// enumeration of candidate ring hierarchies used by the Table 2
// optimal-topology search.
package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// RingSpec describes a hierarchy of unidirectional rings as branching
// factors from the global ring down to processing modules.
//
// Levels[0] is the number of children of the global (top-level) ring;
// Levels[len-1] is the number of PMs on each local (lowest-level)
// ring. The paper's "2:3:4" — one global ring, 2 intermediate rings,
// 3 local rings per intermediate ring, 4 PMs per local ring — is
// RingSpec{Levels: []int{2, 3, 4}}. A single ring of 8 PMs is
// RingSpec{Levels: []int{8}}.
type RingSpec struct {
	Levels []int
}

// NewRingSpec returns a validated spec. Every branching factor must be
// at least 1 and there must be at least one level.
func NewRingSpec(levels ...int) (RingSpec, error) {
	if len(levels) == 0 {
		return RingSpec{}, fmt.Errorf("topo: ring spec needs at least one level")
	}
	for i, b := range levels {
		if b < 1 {
			return RingSpec{}, fmt.Errorf("topo: level %d branching %d < 1", i, b)
		}
	}
	cp := make([]int, len(levels))
	copy(cp, levels)
	return RingSpec{Levels: cp}, nil
}

// MustRingSpec is NewRingSpec that panics on error, for literals in
// tests and experiment tables.
func MustRingSpec(levels ...int) RingSpec {
	s, err := NewRingSpec(levels...)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseRingSpec parses the paper's colon notation, e.g. "2:3:4" or
// "12".
func ParseRingSpec(s string) (RingSpec, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	levels := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return RingSpec{}, fmt.Errorf("topo: bad ring spec %q: %v", s, err)
		}
		levels = append(levels, v)
	}
	return NewRingSpec(levels...)
}

// String renders the spec in colon notation.
func (r RingSpec) String() string {
	parts := make([]string, len(r.Levels))
	for i, b := range r.Levels {
		parts[i] = strconv.Itoa(b)
	}
	return strings.Join(parts, ":")
}

// NumLevels returns the depth of the hierarchy (1 = single ring).
func (r RingSpec) NumLevels() int { return len(r.Levels) }

// PMs returns the total number of processing modules.
func (r RingSpec) PMs() int {
	p := 1
	for _, b := range r.Levels {
		p *= b
	}
	return p
}

// NumRings returns the total number of rings at every level.
func (r RingSpec) NumRings() int {
	total, width := 0, 1
	for i := 0; i < len(r.Levels); i++ {
		total += width
		width *= r.Levels[i]
	}
	return total
}

// NumIRIs returns the number of inter-ring interfaces (one per
// non-global ring).
func (r RingSpec) NumIRIs() int { return r.NumRings() - 1 }

// RingsAtLevel returns how many rings exist at the given level
// (level 0 = global).
func (r RingSpec) RingsAtLevel(level int) int {
	if level < 0 || level >= len(r.Levels) {
		panic(fmt.Sprintf("topo: level %d out of range", level))
	}
	n := 1
	for i := 0; i < level; i++ {
		n *= r.Levels[i]
	}
	return n
}

// Digits decomposes PM id p into its per-level child indices
// (mixed-radix representation): digit[i] selects the child taken at
// level i on the way from the global ring to the PM. Digits are
// ordered most-significant (global) first, so DFS PM numbering makes
// every subtree a contiguous id range.
func (r RingSpec) Digits(p int) []int {
	if p < 0 || p >= r.PMs() {
		panic(fmt.Sprintf("topo: PM %d out of range [0,%d)", p, r.PMs()))
	}
	d := make([]int, len(r.Levels))
	for i := len(r.Levels) - 1; i >= 0; i-- {
		d[i] = p % r.Levels[i]
		p /= r.Levels[i]
	}
	return d
}

// PM reassembles a PM id from its digits (inverse of Digits).
func (r RingSpec) PM(digits []int) int {
	if len(digits) != len(r.Levels) {
		panic("topo: digit count mismatch")
	}
	p := 0
	for i, d := range digits {
		if d < 0 || d >= r.Levels[i] {
			panic(fmt.Sprintf("topo: digit %d=%d out of range", i, d))
		}
		p = p*r.Levels[i] + d
	}
	return p
}

// SubtreeSize returns the number of PMs below one node at the given
// level boundary: the subtree rooted at a child taken from a level-i
// ring spans SubtreeSize(i) PMs. SubtreeSize(len(Levels)) == 1.
func (r RingSpec) SubtreeSize(level int) int {
	if level < 0 || level > len(r.Levels) {
		panic("topo: level out of range")
	}
	n := 1
	for i := level; i < len(r.Levels); i++ {
		n *= r.Levels[i]
	}
	return n
}

// RingHops returns the number of link traversals a packet makes from
// the source NIC to the destination NIC under the hierarchy's
// deterministic unidirectional routing: around the source local ring
// to the up-IRI, up to the lowest common ring, around it, and down to
// the destination. Since every node forwards in one cycle, this is
// also the zero-load network transit time in cycles. src == dst gives
// 0.
//
// Ring sizes: the global ring has Levels[0] slots; every other ring
// has Levels[i] child slots plus one parent-IRI slot.
func (r RingSpec) RingHops(src, dst int) int {
	if src == dst {
		return 0
	}
	sd := r.Digits(src)
	dd := r.Digits(dst)
	m := 0
	for m < len(sd) && sd[m] == dd[m] {
		m++
	}
	// m is the level of the lowest common ring (digits equal above it).
	L := len(r.Levels)
	hops := 0
	// Ascend from the leaf ring up to (but excluding) level m: on each
	// ring the packet enters at its child slot and exits at the parent
	// IRI slot (index Levels[i], ring size Levels[i]+1).
	for i := L - 1; i > m; i-- {
		size := r.Levels[i] + 1
		enter := sd[i]
		exit := r.Levels[i] // parent slot
		hops += mod(exit-enter, size)
	}
	// Traverse the common ring from the source-side slot to the
	// destination-side slot.
	size := r.Levels[m]
	if m > 0 {
		size++ // non-global rings also carry a parent-IRI slot
	}
	hops += mod(dd[m]-sd[m], size)
	// Descend: enter each lower ring at its parent slot (index
	// Levels[i]) and exit at the child slot d[i].
	for i := m + 1; i < L; i++ {
		size := r.Levels[i] + 1
		hops += mod(dd[i]-r.Levels[i], size)
	}
	return hops
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

// AverageRingHops returns the mean RingHops over all ordered pairs of
// distinct PMs — a cheap analytic figure of merit used by the
// topology search to break ties before simulation scoring.
func (r RingSpec) AverageRingHops() float64 {
	p := r.PMs()
	if p < 2 {
		return 0
	}
	total := 0
	for s := 0; s < p; s++ {
		for d := 0; d < p; d++ {
			if s != d {
				total += r.RingHops(s, d)
			}
		}
	}
	return float64(total) / float64(p*(p-1))
}

// EnumerateRingSpecs returns every hierarchy with exactly pms PMs
// subject to the constraints: at most maxLevels levels, internal
// (non-leaf) branching between 2 and maxBranch, and leaf rings holding
// between 2 and maxLeaf PMs (a 1-level spec is allowed whenever
// pms <= maxLeaf). The result is deterministic (lexicographic).
func EnumerateRingSpecs(pms, maxLevels, maxBranch, maxLeaf int) []RingSpec {
	if pms < 1 || maxLevels < 1 {
		return nil
	}
	var out []RingSpec
	var prefix []int
	var rec func(rem, depth int)
	rec = func(rem, depth int) {
		// Close out with a leaf level.
		if rem >= 1 && rem <= maxLeaf && (depth > 0 || rem == pms) {
			levels := append(append([]int{}, prefix...), rem)
			out = append(out, MustRingSpec(levels...))
		}
		if depth+1 >= maxLevels {
			return
		}
		for b := 2; b <= maxBranch && b < rem; b++ {
			if rem%b != 0 {
				continue
			}
			prefix = append(prefix, b)
			rec(rem/b, depth+1)
			prefix = prefix[:len(prefix)-1]
		}
	}
	rec(pms, 0)
	return out
}
