package analytic

import (
	"math"
	"testing"

	"ringmesh/internal/core"
	"ringmesh/internal/mesh"
	"ringmesh/internal/node"
	"ringmesh/internal/packet"
	"ringmesh/internal/ring"
	"ringmesh/internal/topo"
	"ringmesh/internal/workload"
)

// lowLoad is a workload so light that queueing is negligible: the
// simulator's measured latency must converge to the zero-load model.
func lowLoad() workload.MMRP {
	return workload.MMRP{R: 1.0, C: 0.0005, T: 1, ReadProb: 0.7}
}

func TestRingRoundTripFormula(t *testing.T) {
	// 2-node ring, 64B lines, read: h=1 each way, req 1 flit, resp 5
	// flits, mem 10 → 1+1+1+5+10-1 = 17 (matches the timing test in
	// internal/ring).
	spec := topo.MustRingSpec(2)
	p := Params{LineBytes: 64, MemLatency: 10, ReadProb: 0.7}
	if got := ringRoundTrip(spec, p, 0, 1, true); got != 17 {
		t.Fatalf("ring round trip = %d, want 17", got)
	}
	// Write: req 5 flits, resp 1 flit — same total on a symmetric
	// path.
	if got := ringRoundTrip(spec, p, 0, 1, false); got != 17 {
		t.Fatalf("ring write round trip = %d, want 17", got)
	}
}

func TestMeshRoundTripFormula(t *testing.T) {
	// Neighbours on a 2x2 mesh, 32B lines, read: req 4 flits arrive
	// at 1+1+4=6, memory pickup +1 and service 10, response 12 flits
	// land 1+1+12=14 cycles after they are pending -> 6+11+14 = 31.
	spec := topo.MustMeshSpec(2)
	p := Params{LineBytes: 32, MemLatency: 10, ReadProb: 0.7}
	if got := meshRoundTrip(spec, p, 0, 1, true); got != 31 {
		t.Fatalf("mesh round trip = %d, want 31", got)
	}
	// With 1-flit buffers the streaming terms double:
	// (1+2*4) + 11 + (1+2*12) = 45.
	p.MeshBufFlits = 1
	if got := meshRoundTrip(spec, p, 0, 1, true); got != 45 {
		t.Fatalf("mesh 1-flit round trip = %d, want 45", got)
	}
}

// The flit-level simulator at vanishing load must agree with the
// zero-load model to within a cycle or two (batch-means noise).
func TestRingSimulatorMatchesZeroLoadModel(t *testing.T) {
	for _, tc := range []struct {
		spec topo.RingSpec
		line int
	}{
		{topo.MustRingSpec(6), 32},
		{topo.MustRingSpec(2, 4), 64},
		{topo.MustRingSpec(2, 2, 3), 128},
	} {
		p := Params{LineBytes: tc.line, MemLatency: node.DefaultMemLatency, ReadProb: 0.7}
		want, err := RingZeroLoadLatency(tc.spec, p, lowLoad())
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.NewRingSystem(core.RingSystemConfig{
			Net:      ring.Config{Spec: tc.spec, LineBytes: tc.line},
			Workload: lowLoad(),
			Seed:     3,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(core.RunConfig{WarmupCycles: 20000, BatchCycles: 50000, Batches: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Observations < 50 {
			t.Fatalf("%v: too few observations (%d)", tc.spec, res.Observations)
		}
		if math.Abs(res.Latency-want) > 0.05*want+1 {
			t.Fatalf("%v %dB: simulated %0.2f vs model %0.2f", tc.spec, tc.line, res.Latency, want)
		}
	}
}

func TestMeshSimulatorMatchesZeroLoadModel(t *testing.T) {
	for _, tc := range []struct {
		k, line, buf int
	}{
		{3, 32, 4},
		{4, 64, 0},
		{2, 128, 1},
	} {
		spec := topo.MustMeshSpec(tc.k)
		p := Params{LineBytes: tc.line, MemLatency: node.DefaultMemLatency,
			ReadProb: 0.7, MeshBufFlits: tc.buf}
		want, err := MeshZeroLoadLatency(spec, p, lowLoad())
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.NewMeshSystem(core.MeshSystemConfig{
			Net:      mesh.Config{Spec: spec, LineBytes: tc.line, BufferFlits: tc.buf},
			Workload: lowLoad(),
			Seed:     3,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(core.RunConfig{WarmupCycles: 20000, BatchCycles: 50000, Batches: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Observations < 50 {
			t.Fatalf("%dx%d: too few observations (%d)", tc.k, tc.k, res.Observations)
		}
		if math.Abs(res.Latency-want) > 0.05*want+1 {
			t.Fatalf("%dx%d %dB buf=%d: simulated %0.2f vs model %0.2f",
				tc.k, tc.k, tc.line, tc.buf, res.Latency, want)
		}
	}
}

func TestRingBisectionBoundOrdering(t *testing.T) {
	p := Params{LineBytes: 32, MemLatency: 10, ReadProb: 0.7}
	// More children on the global ring tighten the per-PM bound.
	three := RingBisectionBound(topo.MustRingSpec(3, 3, 8), p, 1)
	five := RingBisectionBound(topo.MustRingSpec(5, 3, 8), p, 1)
	if five >= three {
		t.Fatalf("bound should tighten with more children: 3->%v 5->%v", three, five)
	}
	// A double-speed global ring doubles the bound.
	dbl := RingBisectionBound(topo.MustRingSpec(3, 3, 8), p, 2)
	if math.Abs(dbl-2*three) > 1e-12 {
		t.Fatalf("double speed bound %v, want %v", dbl, 2*three)
	}
	// Single rings are not globally bisection bound.
	if RingBisectionBound(topo.MustRingSpec(8), p, 1) != 1 {
		t.Fatal("single ring should return the no-bound sentinel")
	}
}

// The bisection bound must explain the paper's "three local rings"
// knee: at C=0.04 the offered per-PM remote rate (~0.038) is below
// the 2-child bound but above the bound once more second-level rings
// are attached at their saturating sizes.
func TestRingBoundExplainsSaturation(t *testing.T) {
	p := Params{LineBytes: 32, MemLatency: 10, ReadProb: 0.7}
	offered := 0.04 * (1 - 1.0/72)
	b3 := RingBisectionBound(topo.MustRingSpec(3, 3, 8), p, 1)
	if b3 > offered {
		t.Fatalf("3x3x8 should be past saturation at C=0.04: bound %v vs offered %v", b3, offered)
	}
	// The mesh bound at 121 nodes must be far looser than the
	// equivalent ring bound (the paper's scaling argument).
	mb := MeshBisectionBound(topo.MustMeshSpec(11), p)
	rb := RingBisectionBound(topo.MustRingSpec(5, 3, 8), p, 1)
	if mb <= rb {
		t.Fatalf("mesh bound %v should exceed ring bound %v at ~121 nodes", mb, rb)
	}
}

func TestMeshBisectionBoundShrinksWithSize(t *testing.T) {
	p := Params{LineBytes: 64, MemLatency: 10, ReadProb: 0.7}
	small := MeshBisectionBound(topo.MustMeshSpec(4), p)
	large := MeshBisectionBound(topo.MustMeshSpec(11), p)
	if large >= small {
		t.Fatalf("per-PM mesh bound should shrink with size: %v -> %v", small, large)
	}
	if MeshBisectionBound(topo.MustMeshSpec(1), p) != 1 {
		t.Fatal("1x1 mesh should return the no-bound sentinel")
	}
}

func TestAvgTransactionFlits(t *testing.T) {
	p := Params{LineBytes: 32, ReadProb: 1.0}
	// All reads on rings: 1 + 3 = 4 flits.
	if got := avgTransactionFlits(packet.RingSizing, p); got != 4 {
		t.Fatalf("read flits = %v", got)
	}
	p.ReadProb = 0
	// All writes: 3 + 1 = 4 flits.
	if got := avgTransactionFlits(packet.RingSizing, p); got != 4 {
		t.Fatalf("write flits = %v", got)
	}
}
