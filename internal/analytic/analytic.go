// Package analytic provides closed-form performance models for the
// two simulated networks: exact zero-load round-trip latency and
// bisection-bandwidth saturation bounds. The related work the paper
// cites (Hamacher & Jiang, ICPP'94) compares the same networks purely
// analytically; here the models serve as cross-validation anchors —
// tests drive the flit-level simulator at vanishing load and require
// it to agree with these formulas, and the saturation bounds explain
// where the simulated latency knees appear.
package analytic

import (
	"fmt"

	"ringmesh/internal/packet"
	"ringmesh/internal/rng"
	"ringmesh/internal/topo"
	"ringmesh/internal/workload"
)

// Params are the inputs common to both models.
type Params struct {
	// LineBytes is the cache line size.
	LineBytes int
	// MemLatency is the memory service time in cycles.
	MemLatency int
	// ReadProb is the probability a transaction is a read.
	ReadProb float64
	// MeshBufFlits is the mesh router buffer depth (0 = cl). Depth 1
	// halves a worm's streaming rate: with single-flit buffers and a
	// one-cycle credit loop each buffer accepts a flit only every
	// other cycle, which is the root of the paper's 1-flit-buffer
	// results.
	MeshBufFlits int
}

// ringRoundTrip returns the exact zero-load round-trip latency of one
// transaction between src and dst on the given hierarchy, matching
// the simulator's pipeline: the request tail arrives h_req+f_req-1
// cycles after issue, memory picks it up next cycle and serves for
// MemLatency, and the response tail lands h_resp+f_resp-1 cycles
// after injection.
func ringRoundTrip(spec topo.RingSpec, p Params, src, dst int, read bool) int {
	reqType, respType := packet.ReadRequest, packet.ReadResponse
	if !read {
		reqType, respType = packet.WriteRequest, packet.WriteResponse
	}
	fReq := packet.RingSizing.PacketFlits(reqType, p.LineBytes)
	fResp := packet.RingSizing.PacketFlits(respType, p.LineBytes)
	hReq := spec.RingHops(src, dst)
	hResp := spec.RingHops(dst, src)
	return hReq + fReq + hResp + fResp + p.MemLatency - 1
}

// RingZeroLoadLatency returns the expected zero-load round-trip
// latency under the M-MRP target distribution (remote accesses only,
// as measured by the simulator).
func RingZeroLoadLatency(spec topo.RingSpec, p Params, wl workload.MMRP) (float64, error) {
	pat, err := workload.NewRingLocality(spec.PMs(), wl.R)
	if err != nil {
		return 0, err
	}
	return expectedLatency(spec.PMs(), pat, func(src, dst int) float64 {
		return p.ReadProb*float64(ringRoundTrip(spec, p, src, dst, true)) +
			(1-p.ReadProb)*float64(ringRoundTrip(spec, p, src, dst, false))
	})
}

// meshRoundTrip is the mesh analogue. With buffers of two or more
// flits a worm streams at full rate: injection starts one cycle after
// issue and the tail arrives 1+h+f cycles in. With 1-flit buffers the
// one-cycle credit loop halves the streaming rate and delivery takes
// h+2f cycles (both validated against the flit-level simulator).
// Memory pickup adds one cycle before its fixed service time.
func meshRoundTrip(spec topo.MeshSpec, p Params, src, dst int, read bool) int {
	reqType, respType := packet.ReadRequest, packet.ReadResponse
	if !read {
		reqType, respType = packet.WriteRequest, packet.WriteResponse
	}
	fReq := packet.MeshSizing.PacketFlits(reqType, p.LineBytes)
	fResp := packet.MeshSizing.PacketFlits(respType, p.LineBytes)
	h := spec.HopDistance(src, dst)
	deliver := func(f int) int {
		if p.MeshBufFlits == 1 {
			return h + 2*f
		}
		return 1 + h + f
	}
	return deliver(fReq) + 1 + p.MemLatency + deliver(fResp)
}

// MeshZeroLoadLatency returns the expected zero-load round-trip
// latency under the M-MRP mesh locality distribution.
func MeshZeroLoadLatency(spec topo.MeshSpec, p Params, wl workload.MMRP) (float64, error) {
	pat, err := workload.NewMeshLocality(spec, wl.R)
	if err != nil {
		return 0, err
	}
	return expectedLatency(spec.PMs(), pat, func(src, dst int) float64 {
		return p.ReadProb*float64(meshRoundTrip(spec, p, src, dst, true)) +
			(1-p.ReadProb)*float64(meshRoundTrip(spec, p, src, dst, false))
	})
}

// expectedLatency averages lat(src,dst) over the pattern's remote
// target distribution by deterministic dense sampling (fixed seed, so
// the "analytic" value is itself reproducible; with thousands of
// draws per machine the sampling error is well under a cycle).
func expectedLatency(pms int, pat workload.Pattern, lat func(src, dst int) float64) (float64, error) {
	const draws = 2000
	r := rng.New(0xA11A11A)
	total, count := 0.0, 0
	for src := 0; src < pms; src++ {
		for i := 0; i < draws/pms+1; i++ {
			dst := pat.Target(src, r)
			if dst == src {
				continue // local accesses bypass the network
			}
			total += lat(src, dst)
			count++
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("analytic: no remote targets sampled")
	}
	return total / float64(count), nil
}

// RemoteFraction estimates the fraction of issued transactions that
// leave their source PM under the pattern's target distribution, by
// the same deterministic dense sampling expectedLatency uses (fixed
// seed, so the value is reproducible). Local accesses bypass the
// network entirely, so the offered network load per PM is C times
// this fraction — the quantity the bisection bounds cap.
func RemoteFraction(pms int, pat workload.Pattern) float64 {
	const draws = 2000
	r := rng.New(0xA11A11A)
	remote, total := 0, 0
	for src := 0; src < pms; src++ {
		for i := 0; i < draws/pms+1; i++ {
			if pat.Target(src, r) != src {
				remote++
			}
			total++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(remote) / float64(total)
}

// RingBisectionBound returns the highest sustainable per-PM remote
// transaction rate (transactions/cycle) imposed by the global ring of
// a hierarchy: the global ring moves GlobalSpeed flits per cycle per
// link, and under uniform traffic a fraction of all transactions'
// flits must traverse it.
func RingBisectionBound(spec topo.RingSpec, p Params, globalSpeed float64) float64 {
	if spec.NumLevels() < 2 {
		return 1 // no global ring: bounded elsewhere
	}
	pms := spec.PMs()
	sub := spec.SubtreeSize(1) // PMs per global-ring child
	branches := spec.Levels[0]
	// Probability a uniform-random remote transaction crosses between
	// two different children of the global ring.
	cross := float64((branches-1)*sub) / float64(pms-1)
	// Flits moved per transaction (request one way, response back).
	flits := avgTransactionFlits(packet.RingSizing, p)
	// Global ring capacity: one flit per link per cycle; `branches`
	// links total, each crossing transaction occupies on average
	// (branches+1)/2 of them per direction... conservatively use the
	// aggregate: capacity = branches * globalSpeed flit-cycles, and a
	// crossing transaction's flits traverse on average half the ring
	// per packet.
	avgLinks := float64(branches+1) / 2
	demandPerTx := cross * flits * avgLinks / 2
	if demandPerTx == 0 {
		return 1
	}
	capacity := float64(branches) * globalSpeed
	return capacity / demandPerTx / float64(pms)
}

// MeshBisectionBound returns the per-PM remote transaction rate bound
// from the mesh bisection: 2K directed links each way across the cut,
// and under uniform traffic half of all transactions cross it.
func MeshBisectionBound(spec topo.MeshSpec, p Params) float64 {
	k := spec.K
	if k < 2 {
		return 1
	}
	pms := float64(spec.PMs())
	// Under uniform traffic half of all transactions cross the
	// vertical bisection. The cut carries k directed links per
	// direction (one per row), and a crossing transaction sends half
	// its flits each way (request out, response back).
	cross := 0.5
	flits := avgTransactionFlits(packet.MeshSizing, p) / 2 // per direction
	capacityPerDirection := float64(k)
	bound := capacityPerDirection / (cross * flits)
	return bound / (pms / 2)
}

// avgTransactionFlits returns the expected total flits (request +
// response) of one transaction.
func avgTransactionFlits(s packet.Sizing, p Params) float64 {
	read := float64(s.PacketFlits(packet.ReadRequest, p.LineBytes) +
		s.PacketFlits(packet.ReadResponse, p.LineBytes))
	write := float64(s.PacketFlits(packet.WriteRequest, p.LineBytes) +
		s.PacketFlits(packet.WriteResponse, p.LineBytes))
	return p.ReadProb*read + (1-p.ReadProb)*write
}
