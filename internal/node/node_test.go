package node

import (
	"testing"

	"ringmesh/internal/packet"
	"ringmesh/internal/workload"
)

func testConfig() Config {
	return Config{
		Workload:  workload.MMRP{R: 1, C: 0.04, T: 4, ReadProb: 0.7},
		Pattern:   workload.Uniform{P: 4},
		Sizing:    packet.RingSizing,
		LineBytes: 64,
		Seed:      1,
	}
}

func mustPM(t *testing.T, id int, cfg Config, col *Collector) *PM {
	t.Helper()
	pm, err := NewPM(id, cfg, col)
	if err != nil {
		t.Fatal(err)
	}
	return pm
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Pattern = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil pattern accepted")
	}
	bad = good
	bad.LineBytes = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero line accepted")
	}
	bad = good
	bad.MemLatency = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative memory latency accepted")
	}
	bad = good
	bad.Workload.T = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("bad workload accepted")
	}
}

func TestMissGenerationRate(t *testing.T) {
	col := NewCollector(1)
	cfg := testConfig()
	cfg.Workload.T = 1 << 30 // never block
	pm := mustPM(t, 0, cfg, col)
	const cycles = 100000
	for now := int64(0); now < cycles; now++ {
		pm.Commit(now)
	}
	total := col.Issued + col.Local
	// Expect ~ C * cycles misses (geometric gaps with mean 25).
	want := 0.04 * cycles
	if float64(total) < 0.9*want || float64(total) > 1.1*want {
		t.Fatalf("misses = %d, want ~%v", total, want)
	}
	// About 1/4 of uniform targets on 4 PMs are local.
	frac := float64(col.Local) / float64(total)
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("local fraction = %v, want ~0.25", frac)
	}
}

func TestDeterministicGaps(t *testing.T) {
	col := NewCollector(1)
	cfg := testConfig()
	cfg.Workload.Deterministic = true
	cfg.Workload.T = 1 << 30
	pm := mustPM(t, 0, cfg, col)
	var missCycles []int64
	for now := int64(0); now < 200; now++ {
		before := col.Issued + col.Local
		pm.Commit(now)
		if col.Issued+col.Local > before {
			missCycles = append(missCycles, now)
		}
	}
	if len(missCycles) < 2 {
		t.Fatal("no misses generated")
	}
	for i := 1; i < len(missCycles); i++ {
		if missCycles[i]-missCycles[i-1] != 25 {
			t.Fatalf("deterministic gap = %d, want 25",
				missCycles[i]-missCycles[i-1])
		}
	}
}

func TestReadWriteMix(t *testing.T) {
	col := NewCollector(1)
	cfg := testConfig()
	cfg.Workload.T = 1 << 30
	cfg.Pattern = workload.Hotspot{P: 4, Hot: 3, Fraction: 1} // never local from PM 0
	pm := mustPM(t, 0, cfg, col)
	for now := int64(0); now < 200000; now++ {
		pm.Commit(now)
	}
	frac := float64(col.Reads) / float64(col.Reads+col.Writes)
	if frac < 0.65 || frac > 0.75 {
		t.Fatalf("read fraction = %v, want ~0.7", frac)
	}
}

func TestOutstandingWindowBlocks(t *testing.T) {
	col := NewCollector(1)
	cfg := testConfig()
	cfg.Workload.T = 2
	cfg.Pattern = workload.Hotspot{P: 4, Hot: 1, Fraction: 1}
	pm := mustPM(t, 0, cfg, col)
	for now := int64(0); now < 10000; now++ {
		pm.Commit(now)
		if pm.Outstanding() > 2 {
			t.Fatalf("outstanding = %d exceeds T=2", pm.Outstanding())
		}
	}
	if pm.Outstanding() != 2 {
		t.Fatalf("processor with no responses should saturate at T; got %d", pm.Outstanding())
	}
	if col.Issued != 2 {
		t.Fatalf("issued = %d, want 2", col.Issued)
	}
	// A response unblocks one slot.
	req, _ := pm.PendingRequest()
	resp := &packet.Packet{ID: 99, Type: packet.ReadResponse, Src: 1, Dst: 0, Issue: req.Issue, Flits: 5}
	pm.Deliver(resp, 50)
	if pm.Outstanding() != 1 {
		t.Fatalf("outstanding after response = %d", pm.Outstanding())
	}
	if col.Completed != 1 {
		t.Fatalf("completed = %d", col.Completed)
	}
}

func TestMemoryServiceProducesResponse(t *testing.T) {
	col := NewCollector(1)
	cfg := testConfig()
	cfg.MemLatency = 5
	pm := mustPM(t, 2, cfg, col)
	req := &packet.Packet{ID: 7, Type: packet.ReadRequest, Src: 0, Dst: 2, Issue: 100, Flits: 1}
	pm.Deliver(req, 110)
	if pm.QueuedInMemory() != 1 {
		t.Fatalf("memory queue = %d", pm.QueuedInMemory())
	}
	// Service takes 5 PM cycles: pick up on the first Commit, respond
	// after 5 more.
	var gotAt int64 = -1
	for now := int64(111); now < 130; now++ {
		pm.Commit(now)
		if _, ok := pm.PendingResponse(); ok && gotAt < 0 {
			gotAt = now
		}
	}
	if gotAt < 0 {
		t.Fatal("no response produced")
	}
	if gotAt-111 != 5 {
		t.Fatalf("response after %d cycles, want 5", gotAt-111)
	}
	resp := pm.PopPendingResponse()
	if resp.Type != packet.ReadResponse || resp.Dst != 0 || resp.Src != 2 {
		t.Fatalf("bad response %v", resp)
	}
	if resp.Issue != 100 {
		t.Fatalf("response must inherit Issue; got %d", resp.Issue)
	}
	if resp.Flits != packet.RingSizing.PacketFlits(packet.ReadResponse, 64) {
		t.Fatalf("response flits = %d", resp.Flits)
	}
}

func TestWriteGetsHeaderOnlyAck(t *testing.T) {
	col := NewCollector(1)
	cfg := testConfig()
	cfg.MemLatency = 1
	pm := mustPM(t, 1, cfg, col)
	req := &packet.Packet{ID: 8, Type: packet.WriteRequest, Src: 0, Dst: 1, Issue: 0,
		Flits: packet.RingSizing.PacketFlits(packet.WriteRequest, 64)}
	pm.Deliver(req, 0)
	for now := int64(1); now < 10; now++ {
		pm.Commit(now)
	}
	resp := pm.PopPendingResponse()
	if resp.Type != packet.WriteResponse {
		t.Fatalf("type = %v", resp.Type)
	}
	if resp.Flits != 1 {
		t.Fatalf("write ack should be 1 ring flit, got %d", resp.Flits)
	}
}

func TestMemoryFIFOOrder(t *testing.T) {
	col := NewCollector(1)
	cfg := testConfig()
	cfg.MemLatency = 2
	pm := mustPM(t, 1, cfg, col)
	a := &packet.Packet{ID: 1, Type: packet.ReadRequest, Src: 0, Dst: 1, Flits: 1}
	b := &packet.Packet{ID: 2, Type: packet.ReadRequest, Src: 2, Dst: 1, Flits: 1}
	pm.Deliver(a, 0)
	pm.Deliver(b, 0)
	var order []int
	for now := int64(1); now < 20; now++ {
		pm.Commit(now)
		for {
			if _, ok := pm.PendingResponse(); !ok {
				break
			}
			order = append(order, pm.PopPendingResponse().Dst)
		}
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 2 {
		t.Fatalf("service order = %v, want [0 2]", order)
	}
}

func TestDeliverWrongPMPanics(t *testing.T) {
	col := NewCollector(1)
	pm := mustPM(t, 0, testConfig(), col)
	defer func() {
		if recover() == nil {
			t.Fatal("misrouted packet accepted")
		}
	}()
	pm.Deliver(&packet.Packet{ID: 1, Type: packet.ReadRequest, Src: 1, Dst: 3, Flits: 1}, 0)
}

func TestCollectorLatencyNormalization(t *testing.T) {
	col := NewCollector(2) // double-speed: 2 ticks per PM cycle
	col.inFlight = 1
	col.completed(100) // 100 ticks = 50 PM cycles
	col.Latency.CloseBatch()
	col.inFlight = 1
	col.completed(100)
	col.Latency.CloseBatch()
	// First batch is discarded; second holds 50.
	if got := col.Latency.Mean(); got != 50 {
		t.Fatalf("normalized latency = %v, want 50", got)
	}
}

func TestCollectorInFlight(t *testing.T) {
	col := NewCollector(1)
	if col.InFlight() {
		t.Fatal("fresh collector reports in-flight")
	}
	col.issued(true)
	if !col.InFlight() || col.Outstanding() != 1 {
		t.Fatal("issued not tracked")
	}
	col.completed(10)
	if col.InFlight() {
		t.Fatal("completed not tracked")
	}
}

func TestInjectionQueuesFIFO(t *testing.T) {
	col := NewCollector(1)
	cfg := testConfig()
	cfg.Workload.T = 8
	cfg.Pattern = workload.Hotspot{P: 4, Hot: 2, Fraction: 1}
	pm := mustPM(t, 0, cfg, col)
	for now := int64(0); now < 1000 && col.Issued < 3; now++ {
		pm.Commit(now)
	}
	if col.Issued < 3 {
		t.Fatal("not enough requests generated")
	}
	var ids []uint64
	for {
		if _, ok := pm.PendingRequest(); !ok {
			break
		}
		ids = append(ids, pm.PopPendingRequest().ID)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatalf("pending requests out of order: %v", ids)
		}
	}
}
