// Package node models the processing modules (PMs) of the simulated
// multiprocessor: a processor that generates cache misses under the
// M-MRP workload model and a memory controller that turns request
// packets into response packets after a fixed service time.
//
// PMs are identical for both network types (paper Section 2.3: "the
// processor and memory modules are essentially the same as in the
// ring simulator"); only the network interface controller differs, so
// the NIC implementations live in internal/ring and internal/mesh and
// talk to the PM through the Injector/Deliverer interfaces defined
// here.
package node

import (
	"fmt"

	"ringmesh/internal/metrics"
	"ringmesh/internal/packet"
	"ringmesh/internal/rng"
	"ringmesh/internal/stats"
	"ringmesh/internal/trace"
	"ringmesh/internal/workload"
)

// Injector is the view a NIC has of its PM's outbound traffic. The
// NIC pulls: it peeks at the oldest pending packet of a class and pops
// it once it has accepted it into a network buffer. Responses and
// requests are exposed separately because both NIC designs prioritize
// responses at injection.
type Injector interface {
	// PendingResponse returns the oldest response awaiting injection.
	PendingResponse() (*packet.Packet, bool)
	// PopPendingResponse removes and returns it.
	PopPendingResponse() *packet.Packet
	// PendingRequest returns the oldest request awaiting injection.
	PendingRequest() (*packet.Packet, bool)
	// PopPendingRequest removes and returns it.
	PopPendingRequest() *packet.Packet
}

// Deliverer receives packets that exit the network at this PM.
type Deliverer interface {
	// Deliver hands over a completely received packet. Delivery never
	// blocks: the PM is a perfect sink (responses are consumed
	// immediately; requests join the memory queue). now is in engine
	// ticks.
	Deliver(p *packet.Packet, now int64)
}

// Collector aggregates the run's measurements across all PMs.
type Collector struct {
	// Latency accumulates round-trip access latencies in PM clock
	// cycles via the batch-means method.
	Latency *stats.BatchMeans
	// Hist optionally accumulates the latency distribution.
	Hist *stats.Histogram
	// LatHist, when non-nil, mirrors completion latencies into a
	// metrics histogram so /metrics exports the distribution as
	// Prometheus _bucket series. Observation-only, like Hist.
	LatHist *metrics.Histogram
	// TicksPerCycle converts engine ticks to PM cycles (2 when the
	// global ring is double-clocked, else 1).
	TicksPerCycle int64

	// Issued counts remote transactions injected; Completed counts
	// responses received; Local counts local accesses that bypassed
	// the network; Reads/Writes split Issued by kind.
	Issued, Completed, Local int64
	Reads, Writes            int64

	inFlight int64
	nextID   uint64

	// cells, when non-nil, switches the collector into sharded mode
	// for the parallel engine: every PM stages its measurement events
	// into a private per-PM cell instead of the shared fields above,
	// and DrainCells folds them back once per tick from the engine's
	// serial epilogue. Serial runs never allocate cells, so their
	// arithmetic is untouched.
	cells []cell
}

// cell is one PM's measurement staging slot in sharded mode. The
// integer counters are commutative deltas; lat holds the tick's
// completion latencies (at most one per tick in every built-in model:
// a PM receives at most one packet tail per tick), which must be
// folded into the order-dependent accumulators in serial delivery
// order.
type cell struct {
	issued, completed, local int64
	reads, writes            int64
	inFlight                 int64
	nextID                   uint64
	lat                      []int64
}

// NewCollector returns a collector using batch means that discard the
// first batch, per the paper's output-analysis method.
func NewCollector(ticksPerCycle int64) *Collector {
	if ticksPerCycle < 1 {
		ticksPerCycle = 1
	}
	return &Collector{
		Latency:       stats.NewBatchMeans(1),
		TicksPerCycle: ticksPerCycle,
	}
}

// InFlight reports whether any transaction is outstanding anywhere —
// the engine watchdog's liveness predicate.
func (c *Collector) InFlight() bool { return c.inFlight > 0 }

// Outstanding returns the number of transactions in flight.
func (c *Collector) Outstanding() int64 { return c.inFlight }

func (c *Collector) allocID() uint64 {
	c.nextID++
	return c.nextID
}

func (c *Collector) issued(read bool) {
	c.Issued++
	c.inFlight++
	if read {
		c.Reads++
	} else {
		c.Writes++
	}
}

func (c *Collector) completed(latencyTicks int64) {
	c.Completed++
	c.inFlight--
	c.observe(latencyTicks)
}

// observe feeds one completion latency (in ticks) to the accumulators.
func (c *Collector) observe(latencyTicks int64) {
	cycles := float64(latencyTicks) / float64(c.TicksPerCycle)
	c.Latency.Add(cycles)
	if c.Hist != nil {
		c.Hist.Add(cycles)
	}
	c.LatHist.Observe(cycles)
}

// ShardByPM switches the collector into sharded mode for n PMs (see
// the cells field). Call before the first tick; the parallel engine's
// epilogue must then call DrainCells every tick.
func (c *Collector) ShardByPM(n int) {
	c.cells = make([]cell, n)
	for i := range c.cells {
		c.cells[i].lat = make([]int64, 0, 2)
	}
}

// Sharded reports whether ShardByPM was called.
func (c *Collector) Sharded() bool { return c.cells != nil }

// DrainCells folds the per-PM cells into the shared aggregates. order
// lists PM ids in the order the serial engine observes same-tick
// completions, so the order-dependent Welford accumulation behind
// Latency and Hist reproduces the serial arithmetic bit for bit; the
// integer counters are commutative and fold in index order. Runs once
// per tick on the parallel engine's serial epilogue (worker 0, after
// the last commit barrier), which also makes InFlight safe for the
// watchdog that runs right after.
func (c *Collector) DrainCells(order []int) {
	for _, id := range order {
		cl := &c.cells[id]
		if len(cl.lat) == 0 {
			continue
		}
		for _, lt := range cl.lat {
			c.observe(lt)
		}
		cl.lat = cl.lat[:0]
	}
	for i := range c.cells {
		cl := &c.cells[i]
		c.Issued += cl.issued
		c.Completed += cl.completed
		c.Local += cl.local
		c.Reads += cl.reads
		c.Writes += cl.writes
		c.inFlight += cl.inFlight
		cl.issued, cl.completed, cl.local = 0, 0, 0
		cl.reads, cl.writes, cl.inFlight = 0, 0, 0
	}
}

// Config carries per-PM model parameters.
type Config struct {
	// Workload is the M-MRP attribute set (R is realized by Pattern).
	Workload workload.MMRP
	// Pattern selects reference targets.
	Pattern workload.Pattern
	// Sizing is the network's flit geometry (ring or mesh).
	Sizing packet.Sizing
	// LineBytes is the cache line size.
	LineBytes int
	// MemLatency is the memory controller service time per request in
	// PM cycles. The paper does not state its value; 10 cycles is the
	// package default (see DESIGN.md; an ablation bench verifies the
	// study's conclusions are insensitive to it).
	MemLatency int
	// Seed derives each PM's private random stream.
	Seed uint64
	// Tracer optionally records packet lifecycle events (nil-safe).
	Tracer *trace.Recorder
}

// DefaultMemLatency is the memory service time used when Config
// leaves MemLatency zero.
const DefaultMemLatency = 10

// Validate checks the configuration.
func (c Config) Validate() error {
	if err := c.Workload.Validate(); err != nil {
		return err
	}
	if c.Pattern == nil {
		return fmt.Errorf("node: nil workload pattern")
	}
	if c.LineBytes <= 0 {
		return fmt.Errorf("node: LineBytes = %d", c.LineBytes)
	}
	if c.MemLatency < 0 {
		return fmt.Errorf("node: MemLatency = %d", c.MemLatency)
	}
	return nil
}

// PM is one processing module: processor + local memory + the pending
// queues its NIC drains. It implements sim.Component (all state
// changes happen in Commit; see the engine's two-phase discipline) as
// well as Injector and Deliverer.
type PM struct {
	ID  int
	cfg Config
	col *Collector
	rnd *rng.Source

	// Processor state.
	gap         int // PM cycles until the next miss fires
	outstanding int
	// queuedMisses holds generation timestamps of misses awaiting a
	// free outstanding slot (open-loop mode only).
	queuedMisses []int64

	// Pending packets awaiting NIC pickup (unbounded; the bounded
	// buffers live in the NICs).
	pendingReq  []*packet.Packet
	pendingResp []*packet.Packet

	// Memory controller: FIFO of requests, one served at a time.
	memQ       []*packet.Packet
	memRemain  int
	memServing *packet.Packet

	memLatency int
}

// NewPM builds one processing module.
func NewPM(id int, cfg Config, col *Collector) (*PM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ml := cfg.MemLatency
	if ml == 0 {
		ml = DefaultMemLatency
	}
	pm := &PM{
		ID:         id,
		cfg:        cfg,
		col:        col,
		rnd:        rng.Derive(cfg.Seed, uint64(id)),
		memLatency: ml,
	}
	pm.gap = pm.sampleGap()
	return pm, nil
}

// The noteX helpers route the PM's measurement events either to the
// shared collector fields (serial mode) or to the PM's private cell
// (sharded mode, where the shared fields must not be written
// concurrently). Sharded packet ids carry the PM id in the high bits
// so per-PM sequences never collide; ids are observation-only (trace
// and forensics labels), so the different numbering cannot affect
// simulation results.

func (pm *PM) allocID() uint64 {
	if pm.col.cells != nil {
		cl := &pm.col.cells[pm.ID]
		cl.nextID++
		return uint64(pm.ID+1)<<40 | cl.nextID
	}
	return pm.col.allocID()
}

func (pm *PM) noteIssued(read bool) {
	if pm.col.cells != nil {
		cl := &pm.col.cells[pm.ID]
		cl.issued++
		cl.inFlight++
		if read {
			cl.reads++
		} else {
			cl.writes++
		}
		return
	}
	pm.col.issued(read)
}

func (pm *PM) noteLocal() {
	if pm.col.cells != nil {
		pm.col.cells[pm.ID].local++
		return
	}
	pm.col.Local++
}

func (pm *PM) noteCompleted(latencyTicks int64) {
	if pm.col.cells != nil {
		cl := &pm.col.cells[pm.ID]
		cl.completed++
		cl.inFlight--
		cl.lat = append(cl.lat, latencyTicks)
		return
	}
	pm.col.completed(latencyTicks)
}

// sampleGap draws the cycles until the next miss.
func (pm *PM) sampleGap() int {
	if pm.cfg.Workload.Deterministic {
		return int(1.0/pm.cfg.Workload.C + 0.5)
	}
	return pm.rnd.Geometric(pm.cfg.Workload.C) + 1
}

// Compute implements sim.Component. PMs stage nothing: all their
// state is private or append/pop-disjoint with the NICs, so the work
// happens in Commit.
func (pm *PM) Compute(now int64) {}

// Commit implements sim.Component: advance the memory controller and
// the processor by one PM cycle.
func (pm *PM) Commit(now int64) {
	pm.stepMemory(now)
	pm.stepProcessor(now)
}

func (pm *PM) stepMemory(now int64) {
	if pm.memServing != nil {
		pm.memRemain--
		if pm.memRemain > 0 {
			return
		}
		req := pm.memServing
		pm.memServing = nil
		resp := &packet.Packet{
			ID:    pm.allocID(),
			Type:  packet.ResponseFor(req.Type),
			Src:   pm.ID,
			Dst:   req.Src,
			Issue: req.Issue,
		}
		resp.Flits = pm.cfg.Sizing.PacketFlits(resp.Type, pm.cfg.LineBytes)
		pm.pendingResp = append(pm.pendingResp, resp)
	}
	if pm.memServing == nil && len(pm.memQ) > 0 {
		pm.memServing = pm.memQ[0]
		copy(pm.memQ, pm.memQ[1:])
		pm.memQ = pm.memQ[:len(pm.memQ)-1]
		pm.memRemain = pm.memLatency
	}
}

func (pm *PM) stepProcessor(now int64) {
	open := pm.cfg.Workload.OpenLoop
	if !open && pm.outstanding >= pm.cfg.Workload.T {
		// Closed loop: generation is suspended until a response
		// arrives.
		return
	}
	pm.gap--
	if pm.gap <= 0 {
		pm.gap = pm.sampleGap()
		if open {
			pm.queuedMisses = append(pm.queuedMisses, now)
		} else {
			pm.issueMiss(now)
		}
	}
	if open {
		for len(pm.queuedMisses) > 0 && pm.outstanding < pm.cfg.Workload.T {
			at := pm.queuedMisses[0]
			pm.queuedMisses = pm.queuedMisses[1:]
			pm.issueMiss(at)
		}
	}
}

// issueMiss generates one memory reference whose round-trip latency
// counts from genTime (the cycle the miss occurred).
func (pm *PM) issueMiss(genTime int64) {
	dst := pm.cfg.Pattern.Target(pm.ID, pm.rnd)
	if dst == pm.ID {
		// Local access: satisfied by the local memory without the
		// network (paper Section 2). Not counted in round-trip
		// latency and does not occupy an outstanding slot.
		pm.noteLocal()
		return
	}
	read := pm.rnd.Bernoulli(pm.cfg.Workload.ReadProb)
	typ := packet.ReadRequest
	if !read {
		typ = packet.WriteRequest
	}
	req := &packet.Packet{
		ID:    pm.allocID(),
		Type:  typ,
		Src:   pm.ID,
		Dst:   dst,
		Issue: genTime,
	}
	req.Flits = pm.cfg.Sizing.PacketFlits(typ, pm.cfg.LineBytes)
	pm.cfg.Tracer.Record(genTime, trace.Issue, req, fmt.Sprintf("pm%d", pm.ID))
	pm.pendingReq = append(pm.pendingReq, req)
	pm.outstanding++
	pm.noteIssued(read)
}

// Deliver implements Deliverer.
func (pm *PM) Deliver(p *packet.Packet, now int64) {
	if p.Dst != pm.ID {
		panic(fmt.Sprintf("node: PM %d received %s", pm.ID, p))
	}
	pm.cfg.Tracer.Record(now, trace.Deliver, p, fmt.Sprintf("pm%d", pm.ID))
	if p.Type.IsResponse() {
		pm.outstanding--
		if pm.outstanding < 0 {
			panic(fmt.Sprintf("node: PM %d outstanding underflow", pm.ID))
		}
		pm.noteCompleted(now - p.Issue)
		return
	}
	pm.memQ = append(pm.memQ, p)
}

// PendingResponse implements Injector.
func (pm *PM) PendingResponse() (*packet.Packet, bool) {
	if len(pm.pendingResp) == 0 {
		return nil, false
	}
	return pm.pendingResp[0], true
}

// PopPendingResponse implements Injector.
func (pm *PM) PopPendingResponse() *packet.Packet {
	p := pm.pendingResp[0]
	copy(pm.pendingResp, pm.pendingResp[1:])
	pm.pendingResp = pm.pendingResp[:len(pm.pendingResp)-1]
	return p
}

// PendingRequest implements Injector.
func (pm *PM) PendingRequest() (*packet.Packet, bool) {
	if len(pm.pendingReq) == 0 {
		return nil, false
	}
	return pm.pendingReq[0], true
}

// PopPendingRequest implements Injector.
func (pm *PM) PopPendingRequest() *packet.Packet {
	p := pm.pendingReq[0]
	copy(pm.pendingReq, pm.pendingReq[1:])
	pm.pendingReq = pm.pendingReq[:len(pm.pendingReq)-1]
	return p
}

// Outstanding returns the processor's current in-flight transaction
// count (for tests).
func (pm *PM) Outstanding() int { return pm.outstanding }

// QueuedInMemory returns the depth of the memory request queue
// (including the request in service), for tests and diagnostics.
func (pm *PM) QueuedInMemory() int {
	n := len(pm.memQ)
	if pm.memServing != nil {
		n++
	}
	return n
}
