// Package workload implements the paper's synthetic micro-benchmark
// driver: the Multiprocessor Memory Reference Pattern (M-MRP)
// generator (after Saavedra), plus a few classical traffic patterns
// used for extension studies.
//
// An M-MRP is a set of P uniprocessor reference streams, one per
// processor, each uniformly distributed over its own access region.
// Three attributes control it (paper Section 2.4):
//
//   - R, the access-region size as a fraction of the machine, controls
//     locality. A processor accesses its own PM plus the closest
//     ⌈R·(P−1)⌉ PMs — contiguous along the ring ordering for rings,
//     nearest-by-hop-count for meshes.
//   - C, the cache miss rate, controls offered load (0.04 in the
//     paper, i.e. a miss every 25 cycles on average).
//   - T, the number of outstanding transactions a processor may have
//     before blocking (models prefetching / multiple contexts).
//
// This package owns target selection (and the read/write coin); timing
// (C, T) lives with the processor model in internal/node.
package workload

import (
	"fmt"
	"sort"

	"ringmesh/internal/rng"
	"ringmesh/internal/topo"
)

// Pattern selects a destination PM for each reference issued by a
// source processor. Implementations must be safe for concurrent use by
// different sources only if they are stateless; all patterns here are
// immutable after construction.
type Pattern interface {
	// Target returns the destination PM for one reference from src.
	// The result may equal src (a local access that bypasses the
	// network).
	Target(src int, r *rng.Source) int
	// String describes the pattern for reports.
	String() string
}

// regionSize returns the number of remote PMs in an access region of
// fraction R on a machine of p PMs: ⌈R·(p−1)⌉ clamped to [0, p−1].
func regionSize(p int, r float64) int {
	if r <= 0 {
		return 0
	}
	if r >= 1 {
		return p - 1
	}
	n := int(r*float64(p-1) + 0.9999999)
	if n > p-1 {
		n = p - 1
	}
	return n
}

// RingLocality is the paper's locality model for hierarchical rings:
// processors are projected onto a line in ring (DFS) order and each
// accesses a contiguous region of ⌈R(P−1)/2⌉ PMs on either side of
// itself, as well as locally. The region wraps around so that it is
// symmetric for every processor (the natural reading for a ring).
type RingLocality struct {
	p    int
	half int
	r    float64
}

// NewRingLocality builds the ring access pattern for p PMs and region
// fraction r in (0, 1].
func NewRingLocality(p int, r float64) (*RingLocality, error) {
	if p < 1 {
		return nil, fmt.Errorf("workload: p = %d < 1", p)
	}
	if r <= 0 || r > 1 {
		return nil, fmt.Errorf("workload: R = %v outside (0,1]", r)
	}
	half := (regionSize(p, r) + 1) / 2
	return &RingLocality{p: p, half: half, r: r}, nil
}

// Target implements Pattern.
func (l *RingLocality) Target(src int, r *rng.Source) int {
	if l.p == 1 {
		return src
	}
	span := 2*l.half + 1
	if span >= l.p {
		// Region covers the whole machine: uniform over all PMs.
		return r.Intn(l.p)
	}
	off := r.Intn(span) - l.half
	d := (src + off) % l.p
	if d < 0 {
		d += l.p
	}
	return d
}

// String implements Pattern.
func (l *RingLocality) String() string {
	return fmt.Sprintf("ring-locality(R=%.2f, ±%d)", l.r, l.half)
}

// MeshLocality is the paper's locality model for meshes: the closest
// PMs are the ones fewest hops away, so the access region is the
// ⌈R(P−1)⌉ nearest PMs by Manhattan distance (ties broken by PM id)
// plus the local PM. Note the paper points out this model slightly
// favours meshes — it minimizes mesh hop counts by construction.
type MeshLocality struct {
	regions [][]int // per-src: region including src itself
	r       float64
}

// NewMeshLocality builds the mesh access pattern over mesh m with
// region fraction r in (0, 1].
func NewMeshLocality(m topo.MeshSpec, r float64) (*MeshLocality, error) {
	if r <= 0 || r > 1 {
		return nil, fmt.Errorf("workload: R = %v outside (0,1]", r)
	}
	p := m.PMs()
	n := regionSize(p, r)
	regions := make([][]int, p)
	for src := 0; src < p; src++ {
		others := make([]int, 0, p-1)
		for d := 0; d < p; d++ {
			if d != src {
				others = append(others, d)
			}
		}
		s := src
		sort.Slice(others, func(i, j int) bool {
			di, dj := m.HopDistance(s, others[i]), m.HopDistance(s, others[j])
			if di != dj {
				return di < dj
			}
			return others[i] < others[j]
		})
		region := make([]int, 0, n+1)
		region = append(region, src)
		region = append(region, others[:n]...)
		regions[src] = region
	}
	return &MeshLocality{regions: regions, r: r}, nil
}

// Target implements Pattern.
func (l *MeshLocality) Target(src int, r *rng.Source) int {
	region := l.regions[src]
	return region[r.Intn(len(region))]
}

// String implements Pattern.
func (l *MeshLocality) String() string {
	return fmt.Sprintf("mesh-locality(R=%.2f)", l.r)
}

// Uniform sends references uniformly over all PMs including the local
// one — identical to either locality model at R = 1.
type Uniform struct{ P int }

// Target implements Pattern.
func (u Uniform) Target(src int, r *rng.Source) int { return r.Intn(u.P) }

// String implements Pattern.
func (u Uniform) String() string { return "uniform" }

// Hotspot directs a fraction of references at a single hot PM and the
// rest uniformly — a classical stress pattern used in the extension
// benches (not in the paper's figures).
type Hotspot struct {
	P        int
	Hot      int
	Fraction float64
}

// Target implements Pattern.
func (h Hotspot) Target(src int, r *rng.Source) int {
	if r.Bernoulli(h.Fraction) {
		return h.Hot
	}
	return r.Intn(h.P)
}

// String implements Pattern.
func (h Hotspot) String() string {
	return fmt.Sprintf("hotspot(pm=%d, f=%.2f)", h.Hot, h.Fraction)
}

// Transpose maps PM (x, y) to (y, x) on a mesh — a permutation pattern
// with long dimension-crossing paths, used in extension benches.
type Transpose struct{ Mesh topo.MeshSpec }

// Target implements Pattern.
func (t Transpose) Target(src int, r *rng.Source) int {
	x, y := t.Mesh.Coord(src)
	return t.Mesh.ID(y, x)
}

// String implements Pattern.
func (t Transpose) String() string { return "transpose" }

// BitReverse maps each PM id to its bit-reversed id within the
// smallest covering power of two (ids that reverse out of range fall
// back to self). Another classical adversarial permutation.
type BitReverse struct{ P int }

// Target implements Pattern.
func (b BitReverse) Target(src int, r *rng.Source) int {
	bits := 0
	for 1<<bits < b.P {
		bits++
	}
	rev := 0
	for i := 0; i < bits; i++ {
		if src&(1<<i) != 0 {
			rev |= 1 << (bits - 1 - i)
		}
	}
	if rev >= b.P {
		return src
	}
	return rev
}

// String implements Pattern.
func (b BitReverse) String() string { return "bit-reverse" }

// MMRP bundles the paper's three workload attributes plus the
// read/write mix. It is pure configuration; the processor model
// consumes it.
type MMRP struct {
	// R is the access-region fraction in (0, 1].
	R float64
	// C is the per-cycle cache miss probability (0.04 in the paper).
	C float64
	// T is the outstanding-transaction window (1, 2 or 4 in the
	// paper).
	T int
	// ReadProb is the probability a miss is a read (0.7 in the
	// paper).
	ReadProb float64
	// Deterministic, when true, spaces misses exactly 1/C cycles
	// apart instead of sampling geometric gaps (ablation option).
	Deterministic bool
	// OpenLoop, when true, keeps generating misses even while the
	// processor is blocked on its T-window; excess misses queue at
	// the processor (unboundedly, so a run held far past saturation
	// grows memory with its length) and their latency counts from
	// generation time.
	// This is the strict reading of the paper's "the rate at which
	// requests are generated is independent of the number of
	// outstanding requests"; the default (closed-loop) pauses
	// generation while blocked, which reproduces the paper's clear
	// T-dependence at low loads. An ablation experiment compares the
	// two.
	OpenLoop bool
}

// Validate checks the attribute ranges.
func (w MMRP) Validate() error {
	if w.R <= 0 || w.R > 1 {
		return fmt.Errorf("workload: R = %v outside (0,1]", w.R)
	}
	if w.C <= 0 || w.C > 1 {
		return fmt.Errorf("workload: C = %v outside (0,1]", w.C)
	}
	if w.T < 1 {
		return fmt.Errorf("workload: T = %d < 1", w.T)
	}
	if w.ReadProb < 0 || w.ReadProb > 1 {
		return fmt.Errorf("workload: ReadProb = %v outside [0,1]", w.ReadProb)
	}
	return nil
}

// PaperDefaults returns the paper's baseline workload: R=1.0, C=0.04,
// T=4, 70% reads, geometric gaps.
func PaperDefaults() MMRP {
	return MMRP{R: 1.0, C: 0.04, T: 4, ReadProb: 0.7}
}
