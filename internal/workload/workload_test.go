package workload

import (
	"math"
	"testing"
	"testing/quick"

	"ringmesh/internal/rng"
	"ringmesh/internal/topo"
)

func TestRegionSize(t *testing.T) {
	cases := []struct {
		p    int
		r    float64
		want int
	}{
		{16, 1.0, 15},
		{16, 0.0, 0},
		{16, 0.2, 3},   // ceil(0.2*15)
		{121, 0.1, 12}, // ceil(0.1*120)
		{121, 0.3, 36},
		{4, 0.01, 1}, // tiny R still reaches one neighbour
	}
	for _, c := range cases {
		if got := regionSize(c.p, c.r); got != c.want {
			t.Errorf("regionSize(%d, %v) = %d, want %d", c.p, c.r, got, c.want)
		}
	}
}

func TestRingLocalityFullMachine(t *testing.T) {
	l, err := NewRingLocality(16, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	seen := map[int]bool{}
	for i := 0; i < 5000; i++ {
		d := l.Target(3, r)
		if d < 0 || d >= 16 {
			t.Fatalf("target %d out of range", d)
		}
		seen[d] = true
	}
	if len(seen) != 16 {
		t.Fatalf("R=1.0 should reach all 16 PMs, reached %d", len(seen))
	}
}

func TestRingLocalityRegionIsContiguous(t *testing.T) {
	p := 20
	l, err := NewRingLocality(p, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// half = ceil((ceil(0.2*19)+1)/2) = (4+1)/2 = 2
	r := rng.New(2)
	src := 0
	allowed := map[int]bool{18: true, 19: true, 0: true, 1: true, 2: true}
	for i := 0; i < 5000; i++ {
		d := l.Target(src, r)
		if !allowed[d] {
			t.Fatalf("target %d outside contiguous wrapped region", d)
		}
	}
}

func TestRingLocalityValidation(t *testing.T) {
	if _, err := NewRingLocality(0, 0.5); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := NewRingLocality(8, 0); err == nil {
		t.Fatal("R=0 accepted")
	}
	if _, err := NewRingLocality(8, 1.5); err == nil {
		t.Fatal("R>1 accepted")
	}
}

func TestRingLocalitySinglePM(t *testing.T) {
	l, err := NewRingLocality(1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if l.Target(0, rng.New(1)) != 0 {
		t.Fatal("single PM must target itself")
	}
}

func TestMeshLocalityNearest(t *testing.T) {
	m := topo.MustMeshSpec(4)
	l, err := NewMeshLocality(m, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	// region for each src: self + ceil(0.2*15)=3 nearest.
	r := rng.New(3)
	src := m.ID(1, 1) // PM 5: nearest are 1,4,6 at distance 1 (ids 1,4,6)
	allowed := map[int]bool{5: true, 1: true, 4: true, 6: true}
	for i := 0; i < 3000; i++ {
		d := l.Target(src, r)
		if !allowed[d] {
			t.Fatalf("target %d not among nearest of PM %d", d, src)
		}
	}
}

func TestMeshLocalityFull(t *testing.T) {
	m := topo.MustMeshSpec(3)
	l, err := NewMeshLocality(m, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	seen := map[int]bool{}
	for i := 0; i < 5000; i++ {
		seen[l.Target(4, r)] = true
	}
	if len(seen) != 9 {
		t.Fatalf("R=1.0 mesh should reach all PMs, reached %d", len(seen))
	}
}

func TestMeshLocalityValidation(t *testing.T) {
	if _, err := NewMeshLocality(topo.MustMeshSpec(2), 0); err == nil {
		t.Fatal("R=0 accepted")
	}
}

func TestUniformCoversAll(t *testing.T) {
	u := Uniform{P: 7}
	r := rng.New(5)
	counts := make([]int, 7)
	const n = 70000
	for i := 0; i < n; i++ {
		counts[u.Target(2, r)]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/7) > 0.08*n/7 {
			t.Fatalf("uniform bucket %d = %d", i, c)
		}
	}
}

func TestHotspot(t *testing.T) {
	h := Hotspot{P: 10, Hot: 3, Fraction: 0.5}
	r := rng.New(6)
	hot := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if h.Target(0, r) == 3 {
			hot++
		}
	}
	// 50% direct + 10% of the uniform remainder = 55%.
	frac := float64(hot) / n
	if math.Abs(frac-0.55) > 0.03 {
		t.Fatalf("hotspot fraction = %v", frac)
	}
}

func TestTranspose(t *testing.T) {
	m := topo.MustMeshSpec(3)
	tr := Transpose{Mesh: m}
	r := rng.New(7)
	if tr.Target(m.ID(2, 0), r) != m.ID(0, 2) {
		t.Fatal("transpose wrong")
	}
	if tr.Target(m.ID(1, 1), r) != m.ID(1, 1) {
		t.Fatal("diagonal should map to itself")
	}
}

func TestBitReverse(t *testing.T) {
	b := BitReverse{P: 8}
	r := rng.New(8)
	if b.Target(1, r) != 4 { // 001 -> 100
		t.Fatalf("bitrev(1) = %d", b.Target(1, r))
	}
	if b.Target(0, r) != 0 {
		t.Fatal("bitrev(0) != 0")
	}
	// Non-power-of-two: out-of-range reversals fall back to self.
	b = BitReverse{P: 6}
	if d := b.Target(5, r); d < 0 || d >= 6 {
		t.Fatalf("bitrev out of range: %d", d)
	}
}

func TestMMRPValidate(t *testing.T) {
	good := PaperDefaults()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MMRP{
		{R: 0, C: 0.04, T: 4, ReadProb: 0.7},
		{R: 1, C: 0, T: 4, ReadProb: 0.7},
		{R: 1, C: 0.04, T: 0, ReadProb: 0.7},
		{R: 1, C: 0.04, T: 4, ReadProb: 1.1},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestPaperDefaults(t *testing.T) {
	w := PaperDefaults()
	if w.R != 1.0 || w.C != 0.04 || w.T != 4 || w.ReadProb != 0.7 {
		t.Fatalf("paper defaults wrong: %+v", w)
	}
}

// Property: every pattern returns targets in [0, P) for arbitrary
// sources and seeds.
func TestQuickPatternsInRange(t *testing.T) {
	m := topo.MustMeshSpec(4)
	ring, _ := NewRingLocality(16, 0.3)
	mesh, _ := NewMeshLocality(m, 0.3)
	pats := []Pattern{ring, mesh, Uniform{P: 16},
		Hotspot{P: 16, Hot: 5, Fraction: 0.3},
		Transpose{Mesh: m}, BitReverse{P: 16}}
	f := func(seed uint64, srcRaw uint8) bool {
		src := int(srcRaw) % 16
		r := rng.New(seed)
		for _, p := range pats {
			for i := 0; i < 20; i++ {
				d := p.Target(src, r)
				if d < 0 || d >= 16 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ring and mesh locality regions have identical sizes for
// the same (P, R) up to the paper's rounding (ring region is
// 2*ceil((n+1)/2)+1 where n = ceil(R(P-1))), so the offered remote
// load is comparable across networks.
func TestQuickRegionComparable(t *testing.T) {
	f := func(rRaw uint8) bool {
		r := float64(rRaw%90+10) / 100 // 0.10 .. 0.99
		p := 49
		n := regionSize(p, r)
		ring, err := NewRingLocality(p, r)
		if err != nil {
			return false
		}
		ringSpan := 2*ring.half + 1
		return ringSpan >= n && ringSpan <= n+2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPatternStrings(t *testing.T) {
	m := topo.MustMeshSpec(2)
	ring, _ := NewRingLocality(4, 0.5)
	mesh, _ := NewMeshLocality(m, 0.5)
	for _, p := range []Pattern{ring, mesh, Uniform{P: 4},
		Hotspot{P: 4, Hot: 0, Fraction: 0.1}, Transpose{Mesh: m},
		BitReverse{P: 4}} {
		if p.String() == "" {
			t.Fatalf("%T has empty String()", p)
		}
	}
}
