// Package pool provides the two bounded-concurrency primitives the
// simulator's fan-out layers share: ForEach, a slice-shaped fan-out
// with stop-on-fatal scheduling (size sweeps, experiment point grids),
// and Workers, a channel-fed pool for long-lived queues (the serving
// daemon's job queue).
//
// Both primitives treat a worker count below 1 as 1 — serial
// execution — so callers can pass a zero value through unchanged.
// That contract is relied on by SweepOptions.Workers and exp.Spec.
package pool

import (
	"context"
	"sync"
)

// ForEach calls fn(i) for every i in [0, n) with at most workers
// calls running concurrently (workers < 1 means 1, i.e. serial). All
// non-nil errors are collected and returned in completion order.
//
// Scheduling stops early — indices not yet started are skipped — when
// ctx is done, or when fn returns an error for which fatal reports
// true (a nil fatal never stops). In-flight calls always finish; the
// collected errors include everything returned up to that point.
//
// The stop check deliberately happens after a worker slot is
// acquired: when a running call fails fatally and releases its slot,
// the next index sees the stop flag instead of starting one more
// doomed call.
func ForEach(ctx context.Context, workers, n int, fatal func(error) bool, fn func(i int) error) []error {
	if workers < 1 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		errs []error
		stop bool
	)
	for i := 0; i < n; i++ {
		i := i
		sem <- struct{}{}
		mu.Lock()
		stopped := stop
		mu.Unlock()
		if stopped || ctx.Err() != nil {
			<-sem
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			err := fn(i)
			if err == nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			errs = append(errs, err)
			if fatal != nil && fatal(err) {
				stop = true
			}
		}()
	}
	wg.Wait()
	return errs
}

// Workers starts n goroutines (n < 1 means 1) that each call fn for
// values received on jobs until the channel is closed and drained.
// The returned wait function blocks until every worker has exited;
// the caller closes jobs to begin the shutdown.
func Workers[T any](n int, jobs <-chan T, fn func(T)) (wait func()) {
	if n < 1 {
		n = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				fn(j)
			}
		}()
	}
	return wg.Wait
}
