package pool

import (
	"sync/atomic"
	"testing"
)

func TestGangRunsBodyOnEveryWorker(t *testing.T) {
	g := NewGang(4)
	defer g.Close()
	var seen [4]atomic.Bool
	g.Run(func(w int) { seen[w].Store(true) })
	for w := range seen {
		if !seen[w].Load() {
			t.Errorf("worker %d never ran", w)
		}
	}
}

// TestGangSyncIsABarrier checks the lockstep contract: no worker
// observes the post-barrier phase until every worker finished the
// pre-barrier phase.
func TestGangSyncIsABarrier(t *testing.T) {
	const workers, rounds = 4, 100
	g := NewGang(workers)
	defer g.Close()
	var before, violations atomic.Int32
	g.Run(func(w int) {
		for r := 0; r < rounds; r++ {
			before.Add(1)
			g.Sync()
			if before.Load() != int32((r+1)*workers) {
				violations.Add(1)
			}
			g.Sync()
		}
	})
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d barrier violations over %d rounds", n, rounds)
	}
}

func TestGangReusableAcrossRuns(t *testing.T) {
	g := NewGang(3)
	defer g.Close()
	var total atomic.Int32
	for i := 0; i < 10; i++ {
		g.Run(func(w int) { total.Add(1) })
	}
	if got := total.Load(); got != 30 {
		t.Fatalf("10 runs x 3 workers = %d body calls, want 30", got)
	}
}

// TestCapInner pins the oversubscription guard shared by sweeps,
// experiment grids, and the serving daemon: outer x CapInner(...)
// never exceeds the CPU budget, and the result is never below 1.
func TestCapInner(t *testing.T) {
	cases := []struct {
		cpus, outer, inner, want int
	}{
		{8, 2, 4, 4},   // fits exactly
		{8, 2, 8, 4},   // capped to cpus/outer
		{8, 4, 1, 1},   // modest ask passes through
		{4, 8, 4, 1},   // more outer tasks than cpus: inner collapses
		{1, 1, 16, 1},  // one cpu bounds everything
		{1, 4, 4, 1},   // never below 1 even when the division is 0
		{8, 0, 4, 4},   // outer < 1 treated as 1
		{0, 2, 4, 1},   // cpus < 1 treated as 1
		{8, 2, 0, 1},   // inner < 1 means serial
		{8, 2, -3, 1},  // negative inner means serial
		{16, 3, 10, 5}, // floor division
	}
	for _, tc := range cases {
		if got := CapInner(tc.cpus, tc.outer, tc.inner); got != tc.want {
			t.Errorf("CapInner(%d, %d, %d) = %d, want %d",
				tc.cpus, tc.outer, tc.inner, got, tc.want)
		}
	}
}
