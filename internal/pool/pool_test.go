package pool

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	var done [100]int32
	errs := ForEach(context.Background(), 8, len(done), nil, func(i int) error {
		atomic.AddInt32(&done[i], 1)
		return nil
	})
	if len(errs) != 0 {
		t.Fatalf("errs = %v", errs)
	}
	for i, d := range done {
		if d != 1 {
			t.Fatalf("index %d ran %d times", i, d)
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, max int32
	ForEach(context.Background(), workers, 50, nil, func(i int) error {
		c := atomic.AddInt32(&cur, 1)
		for {
			m := atomic.LoadInt32(&max)
			if c <= m || atomic.CompareAndSwapInt32(&max, m, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&cur, -1)
		return nil
	})
	if got := atomic.LoadInt32(&max); got > workers {
		t.Fatalf("observed %d concurrent calls, want <= %d", got, workers)
	}
}

// TestForEachZeroWorkersIsSerial pins the documented contract that a
// zero (or negative) worker count means serial execution — the
// SweepOptions{Workers: 0} semantics.
func TestForEachZeroWorkersIsSerial(t *testing.T) {
	for _, workers := range []int{0, -3} {
		var cur, max int32
		var order []int
		var mu sync.Mutex
		ForEach(context.Background(), workers, 20, nil, func(i int) error {
			c := atomic.AddInt32(&cur, 1)
			if c > atomic.LoadInt32(&max) {
				atomic.StoreInt32(&max, c)
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			atomic.AddInt32(&cur, -1)
			return nil
		})
		if max != 1 {
			t.Fatalf("workers=%d: observed %d concurrent calls, want 1", workers, max)
		}
		for i, got := range order {
			if got != i {
				t.Fatalf("workers=%d: serial execution out of order: %v", workers, order)
			}
		}
	}
}

func TestForEachFatalStopsScheduling(t *testing.T) {
	boom := errors.New("boom")
	var calls int32
	errs := ForEach(context.Background(), 1, 10, func(err error) bool { return errors.Is(err, boom) },
		func(i int) error {
			atomic.AddInt32(&calls, 1)
			if i == 2 {
				return boom
			}
			return nil
		})
	// Serial execution: indices 0..2 run, the fatal error at 2 stops
	// index 3 (and everything after) from being scheduled.
	if got := atomic.LoadInt32(&calls); got != 3 {
		t.Fatalf("fn ran %d times, want 3", got)
	}
	if len(errs) != 1 || !errors.Is(errs[0], boom) {
		t.Fatalf("errs = %v", errs)
	}
}

func TestForEachNonFatalErrorsKeepGoing(t *testing.T) {
	var calls int32
	errs := ForEach(context.Background(), 2, 10, func(error) bool { return false },
		func(i int) error {
			atomic.AddInt32(&calls, 1)
			return errors.New("transient")
		})
	if got := atomic.LoadInt32(&calls); got != 10 {
		t.Fatalf("fn ran %d times, want 10", got)
	}
	if len(errs) != 10 {
		t.Fatalf("collected %d errors, want 10", len(errs))
	}
}

func TestForEachContextCancelStopsScheduling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls int32
	ForEach(ctx, 1, 100, nil, func(i int) error {
		if atomic.AddInt32(&calls, 1) == 3 {
			cancel()
		}
		return nil
	})
	if got := atomic.LoadInt32(&calls); got != 3 {
		t.Fatalf("fn ran %d times after cancel, want 3", got)
	}
}

func TestWorkersDrainsQueue(t *testing.T) {
	jobs := make(chan int, 32)
	var sum int64
	wait := Workers(4, jobs, func(j int) { atomic.AddInt64(&sum, int64(j)) })
	want := int64(0)
	for i := 1; i <= 32; i++ {
		jobs <- i
		want += int64(i)
	}
	close(jobs)
	wait()
	if got := atomic.LoadInt64(&sum); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestWorkersZeroMeansOne(t *testing.T) {
	jobs := make(chan int)
	var cur, max int32
	wait := Workers(0, jobs, func(int) {
		c := atomic.AddInt32(&cur, 1)
		if c > atomic.LoadInt32(&max) {
			atomic.StoreInt32(&max, c)
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&cur, -1)
	})
	for i := 0; i < 8; i++ {
		jobs <- i
	}
	close(jobs)
	wait()
	if max != 1 {
		t.Fatalf("observed %d concurrent workers, want 1", max)
	}
}
