package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Gang is a reusable, fixed-size set of worker goroutines that execute
// a body in lockstep. It is the third concurrency primitive of this
// package, built for the parallel tick engine: unlike ForEach and
// Workers, which hand independent items to whichever worker is free, a
// Gang runs the *same* body on every worker and lets the body
// rendezvous at barriers (Sync), which is what a phased
// compute/commit-per-shard tick loop needs.
//
// The caller's goroutine is worker 0: Run executes body(0) inline and
// body(1..n-1) on the gang's goroutines, returning when all have
// finished. Between Run calls the extra goroutines park on a channel,
// so a gang amortizes goroutine startup across many Run invocations
// (the engine dispatches one Run per multi-thousand-tick chunk).
//
// A Gang must be Closed when no longer needed or its goroutines leak;
// Close is idempotent. Sync may only be called from inside a running
// body, and every worker must reach the same number of Sync calls —
// the lockstep discipline is the caller's responsibility.
type Gang struct {
	n      int
	body   []chan func(worker int)
	wg     sync.WaitGroup
	bar    barrier
	closed bool
}

// NewGang creates a gang of n workers (n < 1 means 1). It starts n-1
// goroutines; the caller supplies the nth by invoking Run.
func NewGang(n int) *Gang {
	if n < 1 {
		n = 1
	}
	g := &Gang{n: n}
	g.bar.n = int32(n)
	g.body = make([]chan func(int), n-1)
	for i := range g.body {
		ch := make(chan func(int))
		g.body[i] = ch
		w := i + 1
		go func() {
			for f := range ch {
				f(w)
				g.wg.Done()
			}
		}()
	}
	return g
}

// Workers returns the gang size.
func (g *Gang) Workers() int { return g.n }

// Run executes body on every worker — body(0) on the calling
// goroutine — and returns when all of them have finished.
func (g *Gang) Run(body func(worker int)) {
	g.wg.Add(g.n - 1)
	for _, ch := range g.body {
		ch <- body
	}
	body(0)
	g.wg.Wait()
}

// Sync blocks the calling worker until every worker in the gang has
// reached the barrier, then releases them all. The atomic generation
// handoff gives the race detector (and the memory model) a
// happens-before edge from everything written before the barrier to
// everything read after it.
func (g *Gang) Sync() { g.bar.wait() }

// SyncTimed is Sync returning how long this worker waited at the
// barrier — the observability variant the engine's opt-in phase
// timing uses. A long wait on one worker is the signature of shard
// imbalance: its gang-mates are still computing.
func (g *Gang) SyncTimed() time.Duration {
	t0 := time.Now()
	g.bar.wait()
	return time.Since(t0)
}

// Close releases the gang's goroutines. The gang must be idle (no Run
// in flight). Safe to call more than once.
func (g *Gang) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for _, ch := range g.body {
		close(ch)
	}
}

// barrier is a sense-reversing central barrier. Arrivals increment
// count; the last arrival resets it and bumps the generation, which
// releases the spinners. Waiters spin briefly and then yield, so the
// barrier stays cheap when workers arrive together (the common case on
// a machine with a core per worker) without starving anyone when the
// gang is oversubscribed.
type barrier struct {
	n     int32
	count atomic.Int32
	gen   atomic.Uint32
}

func (b *barrier) wait() {
	if b.n <= 1 {
		return
	}
	gen := b.gen.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.gen.Add(1)
		return
	}
	for spins := 0; b.gen.Load() == gen; spins++ {
		if spins > 32 {
			runtime.Gosched()
		}
	}
}

// CapInner bounds inner (per-task) parallelism so that outer
// concurrent tasks, each running inner workers, never oversubscribe a
// budget of cpus: the returned value is at most cpus/outer, and at
// least 1. Sweeps, experiment grids, and the serving daemon use it to
// split the machine between task-level and engine-level workers.
func CapInner(cpus, outer, inner int) int {
	if cpus < 1 {
		cpus = 1
	}
	if outer < 1 {
		outer = 1
	}
	if inner < 1 {
		return 1
	}
	if cap := cpus / outer; inner > cap {
		inner = cap
	}
	if inner < 1 {
		inner = 1
	}
	return inner
}
