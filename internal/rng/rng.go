// Package rng provides small, fast, deterministic pseudo-random number
// generators for the simulator.
//
// The simulator does not use math/rand: results must be bit-for-bit
// reproducible across Go releases so that regression tests can assert on
// exact simulation outcomes. The core generator is SplitMix64 (Steele,
// Lea, Flood 2014), which has a 64-bit state, passes BigCrush when used
// as a stream, and — crucially for our use — supports cheap, well-mixed
// stream derivation so every processing module gets an independent
// stream from a single experiment seed.
package rng

import "math"

// golden is the 64-bit golden-ratio increment used by SplitMix64.
const golden = 0x9E3779B97F4A7C15

// Source is a deterministic pseudo-random source. The zero value is a
// valid generator (seed 0); use New or Derive for seeded streams.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Derive returns an independent stream for the given lane (for example,
// one per processor). The lane index is mixed through the output
// function so that adjacent lanes are decorrelated.
func Derive(seed uint64, lane uint64) *Source {
	// Mix the lane through two rounds so lane 0 and lane 1 do not
	// produce overlapping subsequences of the parent stream.
	s := New(seed)
	base := s.Uint64()
	return New(mix(base + lane*golden))
}

// DeriveSeed returns a fresh seed for the given lane of a base seed,
// with the same decorrelation guarantees as Derive. Use it when the
// consumer wants a seed value rather than a Source — for example, a
// sweep retry that must re-run a point on an independent stream while
// staying a pure function of (base seed, lane).
func DeriveSeed(seed, lane uint64) uint64 {
	return mix(New(seed).Uint64() + lane*golden)
}

// mix is the SplitMix64 output function.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (s *Source) Uint64() uint64 {
	s.state += golden
	return mix(s.state)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	// 53 high-quality bits / 2^53.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method (unbiased).
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xFFFFFFFF
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo*bHi + (aLo*bLo)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += aHi * bLo
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Bernoulli returns true with probability p.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Geometric returns a sample from the geometric distribution with
// success probability p: the number of failures before the first
// success (support {0, 1, 2, ...}, mean (1-p)/p). It panics if p is not
// in (0, 1].
func (s *Source) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs p in (0,1]")
	}
	if p == 1 {
		return 0
	}
	// Inversion: floor(ln(U) / ln(1-p)) with U in (0,1].
	u := 1 - s.Float64() // (0, 1]
	g := math.Floor(math.Log(u) / math.Log(1-p))
	if g < 0 {
		return 0
	}
	if g > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(g)
}

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes xs in place.
func (s *Source) Shuffle(xs []int) {
	for i := len(xs) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
