package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	lanes := make(map[uint64]bool)
	for lane := uint64(0); lane < 64; lane++ {
		v := Derive(7, lane).Uint64()
		if lanes[v] {
			t.Fatalf("lane collision at lane %d", lane)
		}
		lanes[v] = true
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	s := New(5)
	for n := 1; n <= 17; n++ {
		for i := 0; i < 2000; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	s := New(6)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.07*want {
			t.Fatalf("bucket %d has %d, want ~%v", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestGeometricMean(t *testing.T) {
	s := New(9)
	p := 0.04
	const n = 100000
	sum := 0
	for i := 0; i < n; i++ {
		sum += s.Geometric(p)
	}
	mean := float64(sum) / n
	want := (1 - p) / p // 24
	if math.Abs(mean-want) > 0.05*want {
		t.Fatalf("Geometric(%v) mean = %v, want ~%v", p, mean, want)
	}
}

func TestGeometricOne(t *testing.T) {
	s := New(10)
	for i := 0; i < 100; i++ {
		if g := s.Geometric(1); g != 0 {
			t.Fatalf("Geometric(1) = %d, want 0", g)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestBernoulliEdges(t *testing.T) {
	s := New(12)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(13)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bernoulli(0.04) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.04) > 0.004 {
		t.Fatalf("Bernoulli(0.04) rate = %v", rate)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(14)
	for n := 0; n < 20; n++ {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	s := New(15)
	xs := []int{1, 2, 3, 4, 5, 6, 7}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	s.Shuffle(xs)
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed element sum: %d != %d", got, sum)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

// Property: Intn output is always within range for arbitrary seeds.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: derived lanes are reproducible.
func TestQuickDeriveDeterministic(t *testing.T) {
	f := func(seed, lane uint64) bool {
		return Derive(seed, lane).Uint64() == Derive(seed, lane).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
