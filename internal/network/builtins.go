package network

import (
	"fmt"

	"ringmesh/internal/fault"
	"ringmesh/internal/mesh"
	"ringmesh/internal/metrics"
	"ringmesh/internal/packet"
	"ringmesh/internal/ring"
	"ringmesh/internal/sim"
	"ringmesh/internal/topo"
	"ringmesh/internal/trace"
	"ringmesh/internal/workload"
)

// The two built-in models of the paper. These factories are the only
// place in the codebase that knows ring from mesh; everything above
// resolves topologies through the registry.
func init() {
	Register("ring", ringFactory)
	Register("mesh", meshFactory)
}

// hierNet is the shared surface of the wormhole and slotted ring
// models: everything Model requires except the stats snapshot, plus
// the per-level utilization the snapshot is built from and the
// optional capabilities (invariant checking, fault injection, stall
// forensics, parallel partitioning) both built-ins implement.
// Embedding the interface makes the wrapper advertise the
// capabilities too.
type hierNet interface {
	sim.Component
	BufferedFlits() int
	ResetUtilization()
	CheckInvariants() error
	ApplyFaultPlan(*fault.Plan) error
	BuildStallReport(now int64) *sim.StallReport
	SetTracer(*trace.Recorder)
	DescribeMetrics(*metrics.Registry)
	Partition() *sim.Partition
	UtilizationByLevel() []float64
}

// hierModel adapts a hierarchical network (per-level utilization) to
// the Model stats snapshot.
type hierModel struct{ hierNet }

func (m hierModel) Stats() Stats { return Stats{PerLevel: m.UtilizationByLevel()} }

// flatNet is the surface of a flat network reporting one aggregate
// link utilization (the mesh model).
type flatNet interface {
	sim.Component
	BufferedFlits() int
	ResetUtilization()
	CheckInvariants() error
	ApplyFaultPlan(*fault.Plan) error
	BuildStallReport(now int64) *sim.StallReport
	SetTracer(*trace.Recorder)
	DescribeMetrics(*metrics.Registry)
	Partition() *sim.Partition
	Utilization() float64
}

// flatModel adapts a flat network to the Model stats snapshot.
type flatModel struct{ flatNet }

func (m flatModel) Stats() Stats { return Stats{Link: m.Utilization()} }

func ringFactory(cfg Config) (*Plan, error) {
	spec, err := ringSpecFor(cfg)
	if err != nil {
		return nil, err
	}
	sw := ring.Wormhole
	if cfg.SlottedSwitching {
		sw = ring.Slotted
	}
	rc := ring.Config{
		Spec:              spec,
		LineBytes:         cfg.LineBytes,
		DoubleSpeedGlobal: cfg.DoubleSpeedGlobal,
		IRIQueueFlits:     cfg.IRIQueueFlits,
		Switching:         sw,
		UnsafeNoVC:        cfg.UnsafeNoVC,
	}
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	pms := spec.PMs()
	return &Plan{
		Topology:      spec.String(),
		PMs:           pms,
		TicksPerCycle: rc.TicksPerCycle(),
		Sizing:        packet.RingSizing,
		Locality: func(r float64) (workload.Pattern, error) {
			return workload.NewRingLocality(pms, r)
		},
		Description: fmt.Sprintf("ring %s cl=%dB (%s)", spec, rc.LineBytes, rc.Switching),
		Build: func(ports []Port, engine *sim.Engine) (Model, error) {
			pmPorts := make([]ring.PMPort, len(ports))
			for i, p := range ports {
				pmPorts[i] = p
			}
			if rc.Switching == ring.Slotted {
				sn, err := ring.NewSlotted(rc, pmPorts, engine)
				if err != nil {
					return nil, err
				}
				return hierModel{sn}, nil
			}
			wn, err := ring.New(rc, pmPorts, engine)
			if err != nil {
				return nil, err
			}
			return hierModel{wn}, nil
		},
	}, nil
}

// ringSpecFor resolves the hierarchy: parse Topology when given
// (cross-checking Nodes), otherwise derive the paper's Table 2 shape
// from Nodes.
func ringSpecFor(cfg Config) (topo.RingSpec, error) {
	if cfg.Topology != "" {
		spec, err := topo.ParseRingSpec(cfg.Topology)
		if err != nil {
			return topo.RingSpec{}, err
		}
		if cfg.Nodes > 0 && spec.PMs() != cfg.Nodes {
			return topo.RingSpec{}, fmt.Errorf(
				"network: ring topology %s has %d PMs but Nodes = %d",
				spec, spec.PMs(), cfg.Nodes)
		}
		return spec, nil
	}
	if cfg.Nodes > 0 {
		return RingTopologyFor(cfg.Nodes, cfg.LineBytes)
	}
	return topo.RingSpec{}, fmt.Errorf("network: ring needs Topology or Nodes")
}

func meshFactory(cfg Config) (*Plan, error) {
	nodes, err := meshNodesFor(cfg)
	if err != nil {
		return nil, err
	}
	mc := mesh.Config{
		Spec:        topo.MeshForPMs(nodes),
		LineBytes:   cfg.LineBytes,
		BufferFlits: cfg.BufferFlits,
	}
	if err := mc.Validate(); err != nil {
		return nil, err
	}
	return &Plan{
		Topology:      mc.Spec.String(),
		PMs:           nodes,
		TicksPerCycle: 1,
		Sizing:        packet.MeshSizing,
		Locality: func(r float64) (workload.Pattern, error) {
			return workload.NewMeshLocality(mc.Spec, r)
		},
		Description: fmt.Sprintf("mesh %s cl=%dB buf=%d", mc.Spec, mc.LineBytes, mc.BufferFlits),
		Build: func(ports []Port, engine *sim.Engine) (Model, error) {
			pmPorts := make([]mesh.PMPort, len(ports))
			for i, p := range ports {
				pmPorts[i] = p
			}
			net, err := mesh.New(mc, pmPorts, engine)
			if err != nil {
				return nil, err
			}
			return flatModel{net}, nil
		},
	}, nil
}

// meshNodesFor resolves the processor count from Nodes and/or a
// "KxK" topology string.
func meshNodesFor(cfg Config) (int, error) {
	nodes := cfg.Nodes
	if cfg.Topology != "" {
		spec, err := topo.ParseMeshSpec(cfg.Topology)
		if err != nil {
			return 0, err
		}
		if nodes > 0 && spec.PMs() != nodes {
			return 0, fmt.Errorf("network: mesh topology %s has %d PMs but Nodes = %d",
				spec, spec.PMs(), nodes)
		}
		nodes = spec.PMs()
	}
	if nodes <= 0 {
		return 0, fmt.Errorf("network: mesh needs Topology or Nodes")
	}
	if !topo.Square(nodes) {
		return 0, fmt.Errorf("network: mesh needs a square node count, got %d", nodes)
	}
	return nodes, nil
}

// RingTopologyFor returns the hierarchy the paper's Table 2 would use
// for the given PM count and cache line size: leaf rings hold at most
// the single-ring capacity for that line size (12/8/6/4 PMs for
// 16/32/64/128-byte lines, Section 3) and every internal ring carries
// at most three children (the bisection-bandwidth limit the paper
// derives). Among the admissible hierarchies it picks the one with
// the fewest levels, then the smallest average hop distance.
func RingTopologyFor(pms, lineBytes int) (topo.RingSpec, error) {
	cap, ok := SingleRingCapacity[lineBytes]
	if !ok {
		return topo.RingSpec{}, fmt.Errorf("network: unsupported line size %dB", lineBytes)
	}
	specs := topo.EnumerateRingSpecs(pms, 4, 3, cap)
	if len(specs) == 0 {
		return topo.RingSpec{}, fmt.Errorf("network: no admissible ring topology for %d PMs at %dB lines", pms, lineBytes)
	}
	best := specs[0]
	bestHops := best.AverageRingHops()
	for _, s := range specs[1:] {
		h := s.AverageRingHops()
		if s.NumLevels() < best.NumLevels() ||
			(s.NumLevels() == best.NumLevels() && h < bestHops) {
			best, bestHops = s, h
		}
	}
	return best, nil
}

// SingleRingCapacity is the paper's conservative single-ring node
// count per cache line size (Section 3, Figure 6): the largest ring
// that shows almost no degradation under R=1.0, C=0.04, T=4.
var SingleRingCapacity = map[int]int{16: 12, 32: 8, 64: 6, 128: 4}
