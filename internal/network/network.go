// Package network defines the topology-agnostic interconnect
// abstraction the rest of the simulator is built on: a Model
// interface every network implements, and a string-keyed registry of
// topology factories so that adding a new interconnect (a torus, a
// hybrid ring-mesh) is a one-package drop-in — register a factory and
// every layer above (system assembly, sweeps, experiments, command
// line tools) can drive it without modification.
//
// The split of responsibilities:
//
//   - A Factory resolves a Config (what the user asked for) into a
//     Plan (everything the assembly layer must know before the PMs
//     exist: node count, clocking, packet sizing, locality pattern).
//   - The Plan's Build hook then constructs the Model proper, wired
//     to the per-PM injection/delivery ports.
//   - The Model is a sim.Component plus the small measurement surface
//     the batch-means runner needs (buffered-flit accounting, a stats
//     snapshot, invariant checks).
//
// Packets enter a Model through the PM ports it was built with (the
// network pulls pending request/response packets during its commit
// phase — the paper's NIC injection-queue model) and leave through
// Port.Deliver.
package network

import (
	"fmt"
	"sort"
	"sync"

	"ringmesh/internal/fault"
	"ringmesh/internal/metrics"
	"ringmesh/internal/node"
	"ringmesh/internal/packet"
	"ringmesh/internal/sim"
	"ringmesh/internal/trace"
	"ringmesh/internal/workload"
)

// Config is the topology-agnostic network configuration. Each model
// interprets the fields it understands and ignores the rest (the same
// contract as a shared flag set), so one Config type can describe any
// registered topology.
type Config struct {
	// Topology is the model-specific shape in its canonical notation:
	// ring hierarchies use the paper's colon notation ("2:3:4"),
	// meshes accept "KxK". Empty means derive the shape from Nodes.
	Topology string
	// Nodes is the processor count, used when Topology is empty (and
	// cross-checked against it when both are set).
	Nodes int
	// LineBytes is the cache line size: 16, 32, 64 or 128.
	LineBytes int
	// BufferFlits is the router input buffer depth in flits (mesh
	// family; 0 selects a cache-line-sized buffer).
	BufferFlits int
	// DoubleSpeedGlobal clocks the global ring at twice the PM clock
	// (ring family, paper Section 6).
	DoubleSpeedGlobal bool
	// SlottedSwitching selects the Hector/NUMAchine slotted-ring
	// technique instead of wormhole switching (ring family).
	SlottedSwitching bool
	// IRIQueueFlits overrides the inter-ring interface queue depth in
	// flits (ring family; 0 means one cache-line packet, the paper's
	// value).
	IRIQueueFlits int
	// UnsafeNoVC disables the ring family's virtual channels and
	// bubble flow control (wormhole switching only), reproducing the
	// paper-era hierarchy deadlock the VC design removes. It exists to
	// exercise stall forensics against a genuine wait-for cycle and
	// for ablation studies; never set it in measurement runs.
	UnsafeNoVC bool
}

// Stats is a topology-agnostic snapshot of a model's utilization
// counters since the last ResetUtilization.
type Stats struct {
	// PerLevel is link utilization per hierarchy level in [0,1]
	// (index 0 = top/global level); nil for flat networks.
	PerLevel []float64
	// Link is the aggregate link utilization in [0,1] for flat
	// networks (zero when PerLevel is the meaningful view).
	Link float64
}

// Port is what a model needs from each processing module: a source of
// pending packets to inject and a sink for delivered ones.
type Port interface {
	node.Injector
	node.Deliverer
}

// Model is one interconnect: a synchronously clocked component that
// carries packets between the PM ports it was built with.
type Model interface {
	sim.Component
	// BufferedFlits reports the flits currently resident in the
	// network's buffers (its in-flight load), for liveness accounting
	// and conservation tests.
	BufferedFlits() int
	// Stats snapshots the utilization counters.
	Stats() Stats
	// ResetUtilization clears the counters (called at warmup end).
	ResetUtilization()
	// SetTracer attaches an optional packet-lifecycle recorder
	// (nil-safe).
	SetTracer(*trace.Recorder)
	// DescribeMetrics registers the model's instruments — link
	// utilization ratios, queue occupancy gauges, stall counters —
	// into reg (nil-safe: a nil registry leaves the model
	// uninstrumented at zero cost). Instrumentation is
	// observation-only: attaching a registry must not change any
	// simulation result.
	DescribeMetrics(reg *metrics.Registry)
}

// The optional model capabilities. A Model advertises each by
// implementing the interface; callers discover them with type
// assertions, so a third-party model participates in exactly the
// subsystems it supports and the Model contract stays minimal.

// InvariantChecker is the optional self-check capability: a model
// that can audit its internal invariants (buffer bounds, flow-control
// bookkeeping, deadlock-freedom preconditions) implements it, and the
// runner and test harnesses call it after every run (or every tick in
// property tests). All built-in models implement it.
type InvariantChecker interface {
	// CheckInvariants returns an error naming the first violated
	// internal invariant, or nil.
	CheckInvariants() error
}

// FaultInjector is the optional fault-injection capability: a model
// that can degrade itself on schedule accepts a fault.Plan before the
// run starts. Implementations must be deterministic — the same
// (plan, topology) pair always yields the same fault schedule — and
// an empty plan must leave results bit-identical to no plan at all.
type FaultInjector interface {
	// ApplyFaultPlan materializes and installs the plan's schedule.
	// Called once, after construction and before the first tick.
	ApplyFaultPlan(p *fault.Plan) error
}

// Partitioner is the optional parallel-execution capability: a model
// that can cut itself into ownership shards — groups of components
// such that no two shards commit to the same buffers (per-ring for the
// hierarchies, per-row for the mesh) — describes the cut as a
// sim.Partition, and the assembly layer runs the shards across the
// engine's worker gang. Partitions must be observation-equivalent:
// executing a model's partition at any worker count yields results
// bit-identical to the serial schedule (the golden fixed-seed tests
// pin this). A model may return nil to decline for a configuration it
// cannot shard; callers then stay on the serial path. A non-nil
// partition must hold at least two shards, and may rewire internal
// hand-off paths for sharded commit — so callers that receive one
// must drive the model through its shards, not the serial Commit.
type Partitioner interface {
	// Partition describes the model's ownership sharding, or nil.
	// Called once, after construction and any fault-plan installation,
	// before the first tick.
	Partition() *sim.Partition
}

// StallReporter is the optional forensics capability: a model that
// can explain a stall builds a structured snapshot of its blocked
// state when the engine watchdog trips (wired to sim.Engine.Diagnose
// by the assembly layer). Builders run on a frozen system, may be
// O(network size), and must not mutate model state.
type StallReporter interface {
	// BuildStallReport snapshots buffer occupancy, the wait-for graph
	// among blocked senders, and the oldest in-flight packets.
	BuildStallReport(now int64) *sim.StallReport
}

// Plan is a resolved network blueprint: everything the assembly layer
// needs to size, clock and wire a system before the PMs exist.
type Plan struct {
	// Name is the registry key that produced this plan.
	Name string
	// Topology is the canonical resolved shape (e.g. "3:3:8", "8x8").
	Topology string
	// PMs is the number of processing modules the network connects.
	PMs int
	// TicksPerCycle is engine ticks per PM clock cycle (>1 when part
	// of the network is clocked faster than the PMs).
	TicksPerCycle int64
	// Sizing is the packet sizing rule (flit width, header flits).
	Sizing packet.Sizing
	// Locality returns the M-MRP target sampler for access-region
	// fraction r over this topology's distance metric.
	Locality func(r float64) (workload.Pattern, error)
	// Description is a one-line human-readable summary.
	Description string
	// Build constructs the model attached to the given PM ports. The
	// caller registers the returned Model on the engine (period 1);
	// models with internally faster clocks use TicksPerCycle to slow
	// the rest of the system down instead.
	Build func(ports []Port, engine *sim.Engine) (Model, error)
}

// Factory resolves a Config into a Plan, validating it in the
// process.
type Factory func(cfg Config) (*Plan, error)

var (
	regMu     sync.RWMutex
	factories = map[string]Factory{}
)

// Register adds a topology factory under a name. It panics on an
// empty name, a nil factory, or a duplicate registration — all are
// programmer errors in an init chain, not runtime conditions.
func Register(name string, f Factory) {
	if name == "" {
		panic("network: Register with empty topology name")
	}
	if f == nil {
		panic(fmt.Sprintf("network: Register(%q) with nil factory", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := factories[name]; dup {
		panic(fmt.Sprintf("network: topology %q registered twice", name))
	}
	factories[name] = f
}

// New resolves a registered topology into a Plan.
func New(name string, cfg Config) (*Plan, error) {
	regMu.RLock()
	f, ok := factories[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("network: unknown topology %q (registered: %v)", name, Names())
	}
	plan, err := f(cfg)
	if err != nil {
		return nil, err
	}
	plan.Name = name
	return plan, nil
}

// Names lists the registered topology names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(factories))
	for name := range factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
