package network

import (
	"strings"
	"testing"

	"ringmesh/internal/packet"
	"ringmesh/internal/sim"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want it to contain %q", r, want)
		}
	}()
	fn()
}

func TestRegisterDuplicatePanics(t *testing.T) {
	// "ring" is registered by the built-in init chain.
	mustPanic(t, "registered twice", func() {
		Register("ring", func(Config) (*Plan, error) { return &Plan{}, nil })
	})
}

func TestRegisterRejectsBadArguments(t *testing.T) {
	mustPanic(t, "empty topology name", func() {
		Register("", func(Config) (*Plan, error) { return &Plan{}, nil })
	})
	mustPanic(t, "nil factory", func() {
		Register("torus", nil)
	})
}

func TestNewUnknownTopology(t *testing.T) {
	_, err := New("hypercube", Config{Nodes: 64, LineBytes: 32})
	if err == nil {
		t.Fatal("expected an error for an unregistered topology")
	}
	// The error must name the registered alternatives.
	for _, want := range []string{"hypercube", "ring", "mesh"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestNamesListsBuiltins(t *testing.T) {
	names := Names()
	if len(names) < 2 {
		t.Fatalf("Names() = %v, want at least ring and mesh", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() = %v, not sorted", names)
		}
	}
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	if !found["ring"] || !found["mesh"] {
		t.Fatalf("Names() = %v, missing a built-in", names)
	}
}

func TestRingPlanResolution(t *testing.T) {
	// Derivation from a node count follows the paper's Table 2.
	plan, err := New("ring", Config{Nodes: 72, LineBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Name != "ring" || plan.Topology != "3:3:8" || plan.PMs != 72 {
		t.Errorf("plan = %q %q %d PMs, want ring 3:3:8 72", plan.Name, plan.Topology, plan.PMs)
	}
	if plan.TicksPerCycle != 1 {
		t.Errorf("TicksPerCycle = %d, want 1", plan.TicksPerCycle)
	}

	// The double-speed global ring doubles the engine rate.
	fast, err := New("ring", Config{Topology: "3:3:8", LineBytes: 32, DoubleSpeedGlobal: true})
	if err != nil {
		t.Fatal(err)
	}
	if fast.TicksPerCycle != 2 {
		t.Errorf("double-speed TicksPerCycle = %d, want 2", fast.TicksPerCycle)
	}

	// Topology and Nodes are cross-checked when both are given.
	if _, err := New("ring", Config{Topology: "2:3:4", Nodes: 25, LineBytes: 32}); err == nil {
		t.Error("expected a PM-count mismatch error")
	}
	if _, err := New("ring", Config{LineBytes: 32}); err == nil {
		t.Error("expected an error with neither Topology nor Nodes")
	}
}

func TestMeshPlanResolution(t *testing.T) {
	plan, err := New("mesh", Config{Nodes: 64, LineBytes: 32, BufferFlits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Name != "mesh" || plan.Topology != "8x8" || plan.PMs != 64 {
		t.Errorf("plan = %q %q %d PMs, want mesh 8x8 64", plan.Name, plan.Topology, plan.PMs)
	}
	if plan.TicksPerCycle != 1 {
		t.Errorf("TicksPerCycle = %d, want 1", plan.TicksPerCycle)
	}

	// The "KxK" notation resolves and cross-checks.
	byName, err := New("mesh", Config{Topology: "8x8", LineBytes: 32})
	if err != nil {
		t.Fatal(err)
	}
	if byName.PMs != 64 {
		t.Errorf("8x8 resolved to %d PMs, want 64", byName.PMs)
	}
	if _, err := New("mesh", Config{Topology: "8x8", Nodes: 60, LineBytes: 32}); err == nil {
		t.Error("expected a PM-count mismatch error")
	}

	// Non-square node counts are rejected.
	if _, err := New("mesh", Config{Nodes: 15, LineBytes: 32}); err == nil {
		t.Error("expected a non-square error")
	}
}

// TestFactoriesIgnoreForeignFields checks the shared-flag-set
// contract: fields a model doesn't understand must not fail its
// resolution, so one Config can be built from a single command-line
// flag set.
func TestFactoriesIgnoreForeignFields(t *testing.T) {
	if _, err := New("ring", Config{Nodes: 24, LineBytes: 32, BufferFlits: 4}); err != nil {
		t.Errorf("ring rejected a mesh-only field: %v", err)
	}
	if _, err := New("mesh", Config{Nodes: 64, LineBytes: 32, DoubleSpeedGlobal: true, SlottedSwitching: true, IRIQueueFlits: 8}); err != nil {
		t.Errorf("mesh rejected ring-only fields: %v", err)
	}
}

// stubPort is a do-nothing PM port for building models in tests.
type stubPort struct{}

func (stubPort) PendingResponse() (*packet.Packet, bool) { return nil, false }
func (stubPort) PopPendingResponse() *packet.Packet      { panic("empty") }
func (stubPort) PendingRequest() (*packet.Packet, bool)  { return nil, false }
func (stubPort) PopPendingRequest() *packet.Packet       { panic("empty") }
func (stubPort) Deliver(*packet.Packet, int64)           {}

// TestBuiltinsAdvertiseCapabilities builds every registered built-in
// and asserts it implements the full optional-capability set —
// invariant checking, fault injection, stall forensics — and that a
// fresh network passes its own invariant audit. Third-party models
// may opt out of any of these; the built-ins may not.
func TestBuiltinsAdvertiseCapabilities(t *testing.T) {
	cfgs := map[string][]Config{
		"ring": {
			{Topology: "2:3:4", LineBytes: 32},
			{Topology: "2:3:4", LineBytes: 32, SlottedSwitching: true},
		},
		"mesh": {
			{Topology: "4x4", LineBytes: 32, BufferFlits: 4},
		},
	}
	for name, list := range cfgs {
		for _, cfg := range list {
			plan, err := New(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			engine := &sim.Engine{}
			ports := make([]Port, plan.PMs)
			for i := range ports {
				ports[i] = stubPort{}
			}
			model, err := plan.Build(ports, engine)
			if err != nil {
				t.Fatal(err)
			}
			desc := name + " " + plan.Topology
			ic, ok := model.(InvariantChecker)
			if !ok {
				t.Fatalf("%s does not implement InvariantChecker", desc)
			}
			if err := ic.CheckInvariants(); err != nil {
				t.Errorf("%s fresh network fails its own audit: %v", desc, err)
			}
			if _, ok := model.(FaultInjector); !ok {
				t.Errorf("%s does not implement FaultInjector", desc)
			}
			if _, ok := model.(StallReporter); !ok {
				t.Errorf("%s does not implement StallReporter", desc)
			}
		}
	}
}
