package metrics

import (
	"strings"
	"testing"

	"ringmesh/internal/stats"
)

// A nil registry hands out nil instruments and every call no-ops —
// the zero-cost-when-disabled contract.
func TestNilRegistryIsNoOp(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", Labels{})
	if c != nil {
		t.Fatal("nil registry returned a live counter")
	}
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter accumulated")
	}
	reg.Gauge("g", Labels{}, nil) // nil callback must not panic via nil registry
	reg.Ratio("r", Labels{})
	reg.Reset()
	if reg.Series() != nil {
		t.Fatal("nil registry has series")
	}
	if s := NewSampler(reg, 10, nil); s != nil {
		t.Fatal("sampler over nil registry")
	}
	var sp *Sampler
	sp.OnCycle(0, 0)
	sp.Reset()
	if sp.Keys() != nil || sp.Samples() != nil {
		t.Fatal("nil sampler returned data")
	}
	if err := sp.WriteCSV(nil); err != nil {
		t.Fatal(err)
	}
}

func TestLabelsKey(t *testing.T) {
	l := Labels{Link: "L0", Class: "req"}
	if got := l.String(); got != "{link=L0,class=req}" {
		t.Fatalf("labels = %q", got)
	}
	if got := (Labels{}).String(); got != "" {
		t.Fatalf("empty labels = %q", got)
	}
	reg := &Registry{}
	reg.Counter("stalls", l)
	if got := reg.Series()[0].Key(); got != "stalls{link=L0,class=req}" {
		t.Fatalf("key = %q", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate series")
		}
	}()
	reg := &Registry{}
	reg.Counter("x", Labels{Node: "a"})
	reg.Counter("x", Labels{Node: "a"})
}

func TestCounterGaugeRatioValues(t *testing.T) {
	reg := &Registry{}
	c := reg.Counter("events", Labels{})
	g := 3.5
	reg.Gauge("depth", Labels{}, func() float64 { return g })
	var u1, u2 stats.Utilization
	reg.Ratio("util", Labels{}, &u1, &u2)

	c.Add(7)
	u1.Busy(3)
	u1.Tick(4)
	u2.Tick(4) // merged: 3 busy / 8 capacity
	vals := map[string]float64{}
	for _, s := range reg.Series() {
		vals[s.Key()] = s.Value()
	}
	if vals["events"] != 7 || vals["depth"] != 3.5 || vals["util"] != 3.0/8.0 {
		t.Fatalf("values = %v", vals)
	}

	// Reset clears counters and ratio backings; gauges are untouched.
	reg.Reset()
	if c.Value() != 0 {
		t.Fatal("counter survived reset")
	}
	if b, cap := u1.Counts(); b != 0 || cap != 0 {
		t.Fatal("ratio backing survived reset")
	}
	g = 9
	for _, s := range reg.Series() {
		if s.Name == "depth" && s.Value() != 9 {
			t.Fatal("gauge not live after reset")
		}
	}
}

// The sampler records windowed values: counter deltas and per-window
// utilization, gauges instantaneously.
func TestSamplerWindows(t *testing.T) {
	reg := &Registry{}
	c := reg.Counter("events", Labels{})
	var u stats.Utilization
	reg.Ratio("util", Labels{}, &u)
	depth := 0.0
	reg.Gauge("depth", Labels{}, func() float64 { return depth })

	s := NewSampler(reg, 10, nil)
	if got := s.Keys(); len(got) != 3 {
		t.Fatalf("keys = %v", got)
	}
	for tick := int64(0); tick < 20; tick++ {
		c.Inc()
		u.Tick(1)
		if tick < 10 {
			u.Busy(1) // first window fully busy, second idle
		}
		depth = float64(tick)
		s.OnCycle(tick, 0)
	}
	rows := s.Samples()
	if len(rows) != 2 {
		t.Fatalf("%d samples, want 2", len(rows))
	}
	if rows[0].Tick != 9 || rows[1].Tick != 19 {
		t.Fatalf("ticks = %d, %d", rows[0].Tick, rows[1].Tick)
	}
	// events: 10 per window; util: 1.0 then 0.0; depth: instantaneous.
	if rows[0].Values[0] != 10 || rows[1].Values[0] != 10 {
		t.Fatalf("counter windows = %v, %v", rows[0].Values[0], rows[1].Values[0])
	}
	if rows[0].Values[1] != 1.0 || rows[1].Values[1] != 0.0 {
		t.Fatalf("util windows = %v, %v", rows[0].Values[1], rows[1].Values[1])
	}
	if rows[0].Values[2] != 9 || rows[1].Values[2] != 19 {
		t.Fatalf("gauge samples = %v, %v", rows[0].Values[2], rows[1].Values[2])
	}
}

// Reset drops rows and re-baselines deltas, so post-reset windows do
// not absorb pre-reset history (the warmup discard).
func TestSamplerReset(t *testing.T) {
	reg := &Registry{}
	c := reg.Counter("events", Labels{})
	s := NewSampler(reg, 5, nil)
	c.Add(100)
	s.OnCycle(4, 0)
	s.Reset()
	if len(s.Samples()) != 0 {
		t.Fatal("samples survived reset")
	}
	c.Add(3)
	s.OnCycle(9, 0)
	rows := s.Samples()
	if len(rows) != 1 || rows[0].Values[0] != 3 {
		t.Fatalf("post-reset window = %v, want [3]", rows)
	}
	// Registry.Reset zeroes the counter below the baseline; the next
	// window must difference against the reset state, not go negative
	// silently — the runner always resets both together.
	reg.Reset()
	s.Reset()
	c.Add(2)
	s.OnCycle(14, 0)
	rows = s.Samples()
	if len(rows) != 1 || rows[0].Values[0] != 2 {
		t.Fatalf("window after joint reset = %v, want [2]", rows)
	}
}

func TestSamplerFilter(t *testing.T) {
	reg := &Registry{}
	reg.Counter("keep", Labels{})
	reg.Counter("drop", Labels{})
	s := NewSampler(reg, 1, func(sr *Series) bool { return sr.Name == "keep" })
	if got := s.Keys(); len(got) != 1 || got[0] != "keep" {
		t.Fatalf("keys = %v", got)
	}
}

func TestExporters(t *testing.T) {
	reg := &Registry{}
	c := reg.Counter("turns", Labels{Node: "router0"})
	var u stats.Utilization
	reg.Ratio("link_util", Labels{Link: "L0"}, &u)
	c.Add(4)
	u.Busy(1)
	u.Tick(2)

	s := NewSampler(reg, 2, nil)
	c.Add(1)
	u.Busy(1)
	u.Tick(2)
	s.OnCycle(1, 0)

	var csv strings.Builder
	if err := s.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	wantCSV := "tick,turns{node=router0},link_util{link=L0}\n1,1,0.5\n"
	if csv.String() != wantCSV {
		t.Fatalf("csv:\n%s\nwant:\n%s", csv.String(), wantCSV)
	}

	var jsonl strings.Builder
	if err := s.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	wantJSON := `{"tick":1,"values":{"link_util{link=L0}":0.5,"turns{node=router0}":1}}` + "\n"
	if jsonl.String() != wantJSON {
		t.Fatalf("jsonl:\n%s\nwant:\n%s", jsonl.String(), wantJSON)
	}

	var text strings.Builder
	if err := reg.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	wantText := "# TYPE turns counter\n" +
		`turns{node="router0"} 5` + "\n" +
		"# TYPE link_util gauge\n" +
		`link_util{link="L0"} 0.5` + "\n"
	if text.String() != wantText {
		t.Fatalf("text:\n%s\nwant:\n%s", text.String(), wantText)
	}
}
