// Package metrics is the simulator's instrumentation subsystem: a
// registry of named, labelled series that every network model reports
// into, a cycle-driven sampler that turns the registry into in-memory
// time series, and machine-readable exporters (CSV, JSONL, a
// Prometheus-style text snapshot).
//
// The design follows the trace.Recorder pattern: recording is
// zero-cost when disabled. A nil *Registry hands out nil instruments,
// and every instrument method is nil-safe, so models instrument
// unconditionally without branching at call sites. Instrumentation is
// observation-only — attaching a registry must never change a
// simulation result bit-for-bit (the golden tests enforce this).
//
// Three instrument kinds cover the models' needs:
//
//   - Counter: a monotonically increasing event count (injection
//     stalls, e-cube turns). Owned and reset by the registry.
//   - Gauge: an instantaneous value read through a callback at sample
//     time (queue occupancy). Zero hot-path cost: nothing is recorded
//     until the sampler looks.
//   - Ratio: busy-over-capacity utilization backed by one or more
//     existing stats.Utilization counters (link utilization). The
//     models already maintain these for their end-of-run stats, so
//     registering them adds no new hot-path work.
//
// The measurement clock is warmup-aware: Registry.Reset (called by
// the core runner when the batch-means method discards its first
// batch) clears counters and ratio backings so exported series cover
// the measured interval only.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ringmesh/internal/stats"
)

// Labels is the small fixed label scheme keying a series. Empty
// fields are omitted from the rendered key. The scheme is deliberately
// closed (no free-form map): every model names its instruments with
// the same dimensions, so exported series are joinable across
// topologies.
type Labels struct {
	// Link names a physical channel or channel group ("L0" for the
	// global ring level, "east" for a mesh direction).
	Link string
	// Node names a network attachment ("nic3", "iri[0,24)", "router5").
	Node string
	// Queue names a buffer at the node ("up", "down", "input").
	Queue string
	// Class is the traffic class ("req" or "rsp").
	Class string
	// Family is the network family a served job targets ("ring",
	// "mesh"); a serving-layer dimension, empty on model instruments.
	Family string
	// Outcome is a served job's terminal state ("done", "failed");
	// a serving-layer dimension, empty on model instruments.
	Outcome string
	// Fidelity is the answer tier a served request used ("simulate",
	// "analytic", "auto"); a serving-layer dimension, empty on model
	// instruments.
	Fidelity string
}

// String renders the labels in {k=v,...} form with a fixed key order,
// or "" when all labels are empty.
func (l Labels) String() string {
	var parts []string
	add := func(k, v string) {
		if v != "" {
			parts = append(parts, k+"="+v)
		}
	}
	add("link", l.Link)
	add("node", l.Node)
	add("queue", l.Queue)
	add("class", l.Class)
	add("family", l.Family)
	add("outcome", l.Outcome)
	add("fidelity", l.Fidelity)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promString renders the labels in Prometheus exposition form
// ({k="v",...}), or "" when all labels are empty. extra appends
// additional pairs (the histogram exporter's "le" bound).
func (l Labels) promString(extra ...[2]string) string {
	var parts []string
	add := func(k, v string) {
		if v != "" {
			parts = append(parts, fmt.Sprintf("%s=%q", k, v))
		}
	}
	add("link", l.Link)
	add("node", l.Node)
	add("queue", l.Queue)
	add("class", l.Class)
	add("family", l.Family)
	add("outcome", l.Outcome)
	add("fidelity", l.Fidelity)
	for _, kv := range extra {
		add(kv[0], kv[1])
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Kind classifies a series.
type Kind uint8

const (
	// KindCounter is a monotonically increasing event count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value read at sample time.
	KindGauge
	// KindRatio is busy-over-capacity utilization in [0,1].
	KindRatio
	// KindHistogram is a bucketed value distribution.
	KindHistogram
)

// String names the kind (Prometheus type vocabulary: ratios and
// gauges both expose as gauges).
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge, KindRatio:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Counter is a monotonically increasing event count. The nil Counter
// (handed out by a nil Registry) ignores every call, so instrumented
// hot paths cost one pointer test when metrics are disabled. Counters
// are atomic, so concurrent jobs may share one (the serving daemon's
// cache and queue counters); the single-threaded simulation hot paths
// pay one uncontended atomic add.
type Counter struct{ v atomic.Int64 }

// Add records n events.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc records one event.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram is a concurrency-safe, bucketed value distribution: each
// observation lands in the first bucket whose upper bound is >= the
// value (one implicit +Inf bucket catches the rest), and a running sum
// and count ride along, so the exporter can render the Prometheus
// histogram triplet (_bucket/_sum/_count) and callers can estimate
// quantiles without retaining observations.
//
// Like Counter, the nil Histogram (handed out by a nil Registry)
// ignores every call, so instrumented paths cost one pointer test when
// metrics are disabled. All state is atomic: concurrent jobs in the
// serving daemon observe into one shared instrument. A concurrent
// snapshot is not a consistent cut (a racing Observe may be counted in
// the buckets but not yet in the sum); the drift is one observation
// and irrelevant for monitoring.
type Histogram struct {
	bounds []float64 // ascending upper bounds; +Inf bucket is implicit
	counts []atomic.Int64
	sum    atomic.Uint64 // float64 bits
	count  atomic.Int64
}

// ExpBuckets returns n exponentially growing bucket bounds:
// start, start*factor, ..., start*factor^(n-1) — the log-bucketed
// scheme latency distributions want (constant relative resolution).
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of observed values (0 for a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bounds returns the bucket upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns a snapshot of the per-bucket counts, one entry
// per bound plus the trailing +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) by locating the
// bucket holding the target rank and interpolating linearly inside it.
// Observations in the +Inf bucket report the last finite bound (the
// estimate saturates there; widen the buckets if that matters). Zero
// when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(n)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= target {
			if i >= len(h.bounds) { // +Inf bucket: saturate at the last bound
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (target - cum) / c
			return lo + frac*(h.bounds[i]-lo)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// reset clears all state (the registry's warmup-aware Reset).
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// Series is one named, labelled instrument registered in a Registry.
type Series struct {
	// Name is the metric name ("ring_link_util").
	Name string
	// Labels distinguishes series sharing a name.
	Labels Labels
	// Kind classifies the instrument.
	Kind Kind

	counter *Counter
	gauge   func() float64
	ratios  []*stats.Utilization
	hist    *Histogram
}

// Hist returns the series' histogram instrument (nil unless the series
// is KindHistogram) — the exporter reads buckets through it.
func (s *Series) Hist() *Histogram {
	if s.Kind != KindHistogram {
		return nil
	}
	return s.hist
}

// Key returns the unique series key: name plus rendered labels.
func (s *Series) Key() string { return s.Name + s.Labels.String() }

// Value returns the series' current cumulative value: the count for
// counters, the callback's value for gauges, merged busy/capacity for
// ratios.
func (s *Series) Value() float64 {
	switch s.Kind {
	case KindCounter:
		return float64(s.counter.Value())
	case KindGauge:
		return s.gauge()
	case KindHistogram:
		return float64(s.hist.Count())
	default:
		var u stats.Utilization
		for _, r := range s.ratios {
			u.Merge(r)
		}
		return u.Value()
	}
}

// raw returns the series' internal state as an integer pair for the
// sampler's windowed deltas: (count, 0) for counters, (busy, capacity)
// for ratios. Gauges have no accumulating state and return zeros.
func (s *Series) raw() (int64, int64) {
	switch s.Kind {
	case KindCounter:
		return s.counter.Value(), 0
	case KindHistogram:
		return s.hist.Count(), 0
	case KindRatio:
		var u stats.Utilization
		for _, r := range s.ratios {
			u.Merge(r)
		}
		return u.Counts()
	default:
		return 0, 0
	}
}

// Registry holds instruments in registration order. The nil Registry
// disables instrumentation: it hands out nil instruments and
// registers nothing.
//
// A Registry may be shared across goroutines: registration, lookup,
// reset and export serialize on an internal lock, and counters are
// atomic — the contract the serving daemon relies on when concurrent
// jobs report into one process-wide registry behind a single /metrics
// endpoint. The exception is Ratio series: their stats.Utilization
// backings stay owned by one single-threaded simulation, so a shared
// registry should hold counters and gauges (over atomics) only, and
// each simulated system keeps its own registry for ratio series as
// before.
type Registry struct {
	mu     sync.RWMutex
	series []*Series
	index  map[string]*Series
}

// register adds s, panicking on a duplicate key — duplicate
// instrument registration is a programmer error in a model's
// DescribeMetrics, not a runtime condition.
func (r *Registry) register(s *Series) {
	key := s.Key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.index == nil {
		r.index = map[string]*Series{}
	}
	if _, dup := r.index[key]; dup {
		panic(fmt.Sprintf("metrics: series %s registered twice", key))
	}
	r.index[key] = s
	r.series = append(r.series, s)
}

// Counter registers and returns a counter series. A nil registry
// returns a nil counter, whose methods all no-op.
func (r *Registry) Counter(name string, l Labels) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(&Series{Name: name, Labels: l, Kind: KindCounter, counter: c})
	return c
}

// Gauge registers a pull-based gauge series: f is invoked at sample
// and snapshot time only, so gauges add no hot-path cost. A nil
// registry registers nothing.
func (r *Registry) Gauge(name string, l Labels, f func() float64) {
	if r == nil {
		return
	}
	if f == nil {
		panic(fmt.Sprintf("metrics: Gauge(%s%s) with nil callback", name, l))
	}
	r.register(&Series{Name: name, Labels: l, Kind: KindGauge, gauge: f})
}

// Histogram registers and returns a histogram series with the given
// ascending bucket upper bounds (an overflow +Inf bucket is added
// implicitly). A nil registry returns a nil histogram, whose methods
// all no-op.
func (r *Registry) Histogram(name string, l Labels, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		panic(fmt.Sprintf("metrics: Histogram(%s%s) with no bounds", name, l))
	}
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("metrics: Histogram(%s%s) bounds not ascending", name, l))
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
	r.register(&Series{Name: name, Labels: l, Kind: KindHistogram, hist: h})
	return h
}

// Ratio registers a utilization series backed by the given
// stats.Utilization counters (their merged busy/capacity is the
// series value). The backings stay owned by the caller — typically a
// model's existing link counters — so registration adds no hot-path
// work. A nil registry registers nothing.
func (r *Registry) Ratio(name string, l Labels, backing ...*stats.Utilization) {
	if r == nil {
		return
	}
	if len(backing) == 0 {
		panic(fmt.Sprintf("metrics: Ratio(%s%s) with no backing", name, l))
	}
	r.register(&Series{Name: name, Labels: l, Kind: KindRatio, ratios: backing})
}

// Series returns the registered series in registration order (nil for
// a nil registry). The returned slice is a snapshot: registrations
// that race with the call land in later snapshots.
func (r *Registry) Series() []*Series {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.series == nil {
		return nil
	}
	out := make([]*Series, len(r.series))
	copy(out, r.series)
	return out
}

// Lookup returns the series with the given key.
func (r *Registry) Lookup(key string) (*Series, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.index[key]
	return s, ok
}

// Reset clears every counter and ratio backing — the warmup-aware
// reset: the core runner calls it when the batch-means method
// discards the first batch, so exported series cover the measured
// interval only. Gauges are instantaneous and have nothing to clear.
// Nil-safe.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	for _, s := range r.Series() {
		switch s.Kind {
		case KindCounter:
			s.counter.v.Store(0)
		case KindHistogram:
			s.hist.reset()
		case KindRatio:
			for _, u := range s.ratios {
				u.Reset()
			}
		}
	}
}
