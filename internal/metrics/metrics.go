// Package metrics is the simulator's instrumentation subsystem: a
// registry of named, labelled series that every network model reports
// into, a cycle-driven sampler that turns the registry into in-memory
// time series, and machine-readable exporters (CSV, JSONL, a
// Prometheus-style text snapshot).
//
// The design follows the trace.Recorder pattern: recording is
// zero-cost when disabled. A nil *Registry hands out nil instruments,
// and every instrument method is nil-safe, so models instrument
// unconditionally without branching at call sites. Instrumentation is
// observation-only — attaching a registry must never change a
// simulation result bit-for-bit (the golden tests enforce this).
//
// Three instrument kinds cover the models' needs:
//
//   - Counter: a monotonically increasing event count (injection
//     stalls, e-cube turns). Owned and reset by the registry.
//   - Gauge: an instantaneous value read through a callback at sample
//     time (queue occupancy). Zero hot-path cost: nothing is recorded
//     until the sampler looks.
//   - Ratio: busy-over-capacity utilization backed by one or more
//     existing stats.Utilization counters (link utilization). The
//     models already maintain these for their end-of-run stats, so
//     registering them adds no new hot-path work.
//
// The measurement clock is warmup-aware: Registry.Reset (called by
// the core runner when the batch-means method discards its first
// batch) clears counters and ratio backings so exported series cover
// the measured interval only.
package metrics

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"ringmesh/internal/stats"
)

// Labels is the small fixed label scheme keying a series. Empty
// fields are omitted from the rendered key. The scheme is deliberately
// closed (no free-form map): every model names its instruments with
// the same four dimensions, so exported series are joinable across
// topologies.
type Labels struct {
	// Link names a physical channel or channel group ("L0" for the
	// global ring level, "east" for a mesh direction).
	Link string
	// Node names a network attachment ("nic3", "iri[0,24)", "router5").
	Node string
	// Queue names a buffer at the node ("up", "down", "input").
	Queue string
	// Class is the traffic class ("req" or "rsp").
	Class string
}

// String renders the labels in {k=v,...} form with a fixed key order,
// or "" when all labels are empty.
func (l Labels) String() string {
	var parts []string
	add := func(k, v string) {
		if v != "" {
			parts = append(parts, k+"="+v)
		}
	}
	add("link", l.Link)
	add("node", l.Node)
	add("queue", l.Queue)
	add("class", l.Class)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// promString renders the labels in Prometheus exposition form
// ({k="v",...}), or "" when all labels are empty.
func (l Labels) promString() string {
	var parts []string
	add := func(k, v string) {
		if v != "" {
			parts = append(parts, fmt.Sprintf("%s=%q", k, v))
		}
	}
	add("link", l.Link)
	add("node", l.Node)
	add("queue", l.Queue)
	add("class", l.Class)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Kind classifies a series.
type Kind uint8

const (
	// KindCounter is a monotonically increasing event count.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value read at sample time.
	KindGauge
	// KindRatio is busy-over-capacity utilization in [0,1].
	KindRatio
)

// String names the kind (Prometheus type vocabulary: ratios and
// gauges both expose as gauges).
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge, KindRatio:
		return "gauge"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Counter is a monotonically increasing event count. The nil Counter
// (handed out by a nil Registry) ignores every call, so instrumented
// hot paths cost one pointer test when metrics are disabled. Counters
// are atomic, so concurrent jobs may share one (the serving daemon's
// cache and queue counters); the single-threaded simulation hot paths
// pay one uncontended atomic add.
type Counter struct{ v atomic.Int64 }

// Add records n events.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc records one event.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Series is one named, labelled instrument registered in a Registry.
type Series struct {
	// Name is the metric name ("ring_link_util").
	Name string
	// Labels distinguishes series sharing a name.
	Labels Labels
	// Kind classifies the instrument.
	Kind Kind

	counter *Counter
	gauge   func() float64
	ratios  []*stats.Utilization
}

// Key returns the unique series key: name plus rendered labels.
func (s *Series) Key() string { return s.Name + s.Labels.String() }

// Value returns the series' current cumulative value: the count for
// counters, the callback's value for gauges, merged busy/capacity for
// ratios.
func (s *Series) Value() float64 {
	switch s.Kind {
	case KindCounter:
		return float64(s.counter.Value())
	case KindGauge:
		return s.gauge()
	default:
		var u stats.Utilization
		for _, r := range s.ratios {
			u.Merge(r)
		}
		return u.Value()
	}
}

// raw returns the series' internal state as an integer pair for the
// sampler's windowed deltas: (count, 0) for counters, (busy, capacity)
// for ratios. Gauges have no accumulating state and return zeros.
func (s *Series) raw() (int64, int64) {
	switch s.Kind {
	case KindCounter:
		return s.counter.Value(), 0
	case KindRatio:
		var u stats.Utilization
		for _, r := range s.ratios {
			u.Merge(r)
		}
		return u.Counts()
	default:
		return 0, 0
	}
}

// Registry holds instruments in registration order. The nil Registry
// disables instrumentation: it hands out nil instruments and
// registers nothing.
//
// A Registry may be shared across goroutines: registration, lookup,
// reset and export serialize on an internal lock, and counters are
// atomic — the contract the serving daemon relies on when concurrent
// jobs report into one process-wide registry behind a single /metrics
// endpoint. The exception is Ratio series: their stats.Utilization
// backings stay owned by one single-threaded simulation, so a shared
// registry should hold counters and gauges (over atomics) only, and
// each simulated system keeps its own registry for ratio series as
// before.
type Registry struct {
	mu     sync.RWMutex
	series []*Series
	index  map[string]*Series
}

// register adds s, panicking on a duplicate key — duplicate
// instrument registration is a programmer error in a model's
// DescribeMetrics, not a runtime condition.
func (r *Registry) register(s *Series) {
	key := s.Key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.index == nil {
		r.index = map[string]*Series{}
	}
	if _, dup := r.index[key]; dup {
		panic(fmt.Sprintf("metrics: series %s registered twice", key))
	}
	r.index[key] = s
	r.series = append(r.series, s)
}

// Counter registers and returns a counter series. A nil registry
// returns a nil counter, whose methods all no-op.
func (r *Registry) Counter(name string, l Labels) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.register(&Series{Name: name, Labels: l, Kind: KindCounter, counter: c})
	return c
}

// Gauge registers a pull-based gauge series: f is invoked at sample
// and snapshot time only, so gauges add no hot-path cost. A nil
// registry registers nothing.
func (r *Registry) Gauge(name string, l Labels, f func() float64) {
	if r == nil {
		return
	}
	if f == nil {
		panic(fmt.Sprintf("metrics: Gauge(%s%s) with nil callback", name, l))
	}
	r.register(&Series{Name: name, Labels: l, Kind: KindGauge, gauge: f})
}

// Ratio registers a utilization series backed by the given
// stats.Utilization counters (their merged busy/capacity is the
// series value). The backings stay owned by the caller — typically a
// model's existing link counters — so registration adds no hot-path
// work. A nil registry registers nothing.
func (r *Registry) Ratio(name string, l Labels, backing ...*stats.Utilization) {
	if r == nil {
		return
	}
	if len(backing) == 0 {
		panic(fmt.Sprintf("metrics: Ratio(%s%s) with no backing", name, l))
	}
	r.register(&Series{Name: name, Labels: l, Kind: KindRatio, ratios: backing})
}

// Series returns the registered series in registration order (nil for
// a nil registry). The returned slice is a snapshot: registrations
// that race with the call land in later snapshots.
func (r *Registry) Series() []*Series {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.series == nil {
		return nil
	}
	out := make([]*Series, len(r.series))
	copy(out, r.series)
	return out
}

// Lookup returns the series with the given key.
func (r *Registry) Lookup(key string) (*Series, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.index[key]
	return s, ok
}

// Reset clears every counter and ratio backing — the warmup-aware
// reset: the core runner calls it when the batch-means method
// discards the first batch, so exported series cover the measured
// interval only. Gauges are instantaneous and have nothing to clear.
// Nil-safe.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	for _, s := range r.Series() {
		switch s.Kind {
		case KindCounter:
			s.counter.v.Store(0)
		case KindRatio:
			for _, u := range s.ratios {
				u.Reset()
			}
		}
	}
}
