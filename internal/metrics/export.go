package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV renders the sampler's time series as CSV: a header of
// "tick" plus one column per selected series key, then one row per
// sample. Nil-safe (writes nothing).
func (s *Sampler) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	header := append([]string{"tick"}, s.keys...)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	row := make([]string, 1+len(s.keys))
	for _, sm := range s.samples {
		row[0] = strconv.FormatInt(sm.Tick, 10)
		for i, v := range sm.Values {
			row[1+i] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL renders the sampler's time series as JSON Lines: one
// object per sample with the tick and a key→value map. Map keys are
// emitted sorted (encoding/json), so the output is deterministic.
// Nil-safe (writes nothing).
func (s *Sampler) WriteJSONL(w io.Writer) error {
	if s == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, sm := range s.samples {
		vals := make(map[string]float64, len(s.keys))
		for i, k := range s.keys {
			vals[k] = sm.Values[i]
		}
		if err := enc.Encode(struct {
			Tick   int64              `json:"tick"`
			Values map[string]float64 `json:"values"`
		}{Tick: sm.Tick, Values: vals}); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders a one-shot Prometheus-style text snapshot of
// every registered series' current cumulative value:
//
//	# TYPE ring_link_util gauge
//	ring_link_util{link="L0"} 0.58
//
// Series sharing a name are grouped under one TYPE comment, in
// registration order. Nil-safe (writes nothing), and safe to call
// concurrently with counter updates and registrations (it renders a
// snapshot of the series registered at entry).
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	lastName := ""
	for _, s := range r.Series() {
		if s.Name != lastName {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
			lastName = s.Name
		}
		if s.Kind == KindHistogram {
			if err := writeHistogram(w, s); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n",
			s.Name, s.Labels.promString(),
			strconv.FormatFloat(s.Value(), 'g', -1, 64)); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series in Prometheus exposition
// form: cumulative _bucket counts with "le" bounds (including +Inf),
// then _sum and _count.
func writeHistogram(w io.Writer, s *Series) error {
	h := s.Hist()
	counts := h.BucketCounts()
	bounds := h.Bounds()
	var cum int64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(bounds) {
			le = strconv.FormatFloat(bounds[i], 'g', -1, 64)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			s.Name, s.Labels.promString([2]string{"le", le}), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
		s.Name, s.Labels.promString(),
		strconv.FormatFloat(h.Sum(), 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n",
		s.Name, s.Labels.promString(), h.Count())
	return err
}
