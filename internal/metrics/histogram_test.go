package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(3) // must not panic
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil histogram not empty")
	}
	var r *Registry
	if r.Histogram("x", Labels{}, []float64{1}) != nil {
		t.Fatalf("nil registry returned non-nil histogram")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var r Registry
	h := r.Histogram("lat", Labels{}, []float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1, 1.5, 3, 7, 100} {
		h.Observe(v)
	}
	// 0.5 and 1 land in le=1 (SearchFloat64s: first bound >= v),
	// 1.5 in le=2, 3 in le=4, 7 in le=8, 100 overflows to +Inf.
	want := []int64{2, 1, 1, 1, 1}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 6 {
		t.Errorf("count %d, want 6", h.Count())
	}
	if math.Abs(h.Sum()-113) > 1e-9 {
		t.Errorf("sum %g, want 113", h.Sum())
	}
}

func TestHistogramQuantile(t *testing.T) {
	var r Registry
	h := r.Histogram("lat", Labels{}, ExpBuckets(1, 2, 10))
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty quantile not zero")
	}
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i % 100))
	}
	q50 := h.Quantile(0.5)
	// The exact median is ~50; the bucket scheme bounds the estimate
	// within the enclosing bucket [32, 64].
	if q50 < 32 || q50 > 64 {
		t.Errorf("q50 = %g, want within bucket [32, 64]", q50)
	}
	if q99, q50 := h.Quantile(0.99), h.Quantile(0.5); q99 < q50 {
		t.Errorf("quantiles not monotone: q99 %g < q50 %g", q99, q50)
	}
	// Values past the last bound saturate at that bound.
	h2 := r.Histogram("lat2", Labels{}, []float64{1, 2})
	h2.Observe(1000)
	if got := h2.Quantile(0.5); got != 2 {
		t.Errorf("overflow quantile %g, want saturated 2", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var r Registry
	h := r.Histogram("lat", Labels{}, ExpBuckets(1, 2, 8))
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%50) + 1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
	var total int64
	for _, c := range h.BucketCounts() {
		total += c
	}
	if total != workers*per {
		t.Fatalf("bucket total %d, want %d", total, workers*per)
	}
	wantSum := float64(workers) * (per / 50) * (50 * 51 / 2)
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("sum %g, want %g", h.Sum(), wantSum)
	}
}

func TestHistogramExport(t *testing.T) {
	var r Registry
	h := r.Histogram("run_seconds", Labels{Family: "mesh", Outcome: "done"}, []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE run_seconds histogram",
		`run_seconds_bucket{family="mesh",outcome="done",le="1"} 1`,
		`run_seconds_bucket{family="mesh",outcome="done",le="10"} 2`,
		`run_seconds_bucket{family="mesh",outcome="done",le="+Inf"} 3`,
		`run_seconds_sum{family="mesh",outcome="done"} 55.5`,
		`run_seconds_count{family="mesh",outcome="done"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q in:\n%s", want, out)
		}
	}
}

func TestHistogramReset(t *testing.T) {
	var r Registry
	h := r.Histogram("lat", Labels{}, []float64{1, 2})
	h.Observe(1.5)
	r.Reset()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("reset did not clear histogram: count=%d sum=%g", h.Count(), h.Sum())
	}
	for i, c := range h.BucketCounts() {
		if c != 0 {
			t.Fatalf("bucket %d not cleared", i)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(4, 2, 5)
	want := []float64{4, 8, 16, 32, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestHistogramSampler(t *testing.T) {
	var r Registry
	h := r.Histogram("lat", Labels{}, []float64{1, 2})
	s := NewSampler(&r, 10, nil)
	h.Observe(1)
	h.Observe(2)
	s.OnCycle(9, 0) // first boundary: windowed count delta = 2
	h.Observe(3)
	s.OnCycle(19, 0) // second boundary: delta = 1
	rows := s.Samples()
	if len(rows) != 2 {
		t.Fatalf("got %d samples, want 2", len(rows))
	}
	if rows[0].Values[0] != 2 || rows[1].Values[0] != 1 {
		t.Fatalf("windowed deltas = %g, %g; want 2, 1",
			rows[0].Values[0], rows[1].Values[0])
	}
}
