package metrics

import (
	"io"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRegistryConcurrentJobs exercises the sharing contract the
// serving daemon depends on: several job goroutines increment shared
// counters and read gauges while exporter goroutines snapshot and
// render the same registry, all concurrently (run under -race in CI).
// Ratio series are deliberately absent — their backings stay owned by
// one single-threaded simulation (see the Registry doc).
func TestRegistryConcurrentJobs(t *testing.T) {
	reg := &Registry{}
	hits := reg.Counter("test_cache_hits_total", Labels{})
	misses := reg.Counter("test_cache_misses_total", Labels{})
	var inflight atomic.Int64
	reg.Gauge("test_jobs_inflight", Labels{}, func() float64 { return float64(inflight.Load()) })

	const jobs, rounds = 4, 2000
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				inflight.Add(1)
				if i%2 == 0 {
					hits.Inc()
				} else {
					misses.Add(1)
				}
				inflight.Add(-1)
				// Jobs also register their own instruments mid-flight
				// (distinct keys per goroutine), racing the exporters.
				if i == rounds/2 {
					reg.Counter("test_job_private_total", Labels{Node: string(rune('a' + j))})
				}
			}
		}()
	}
	// Two exporters: the /metrics endpoint shape (WriteText) and a
	// sampler-shaped reader walking the snapshot by hand.
	for e := 0; e < 2; e++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := reg.WriteText(io.Discard); err != nil {
					t.Errorf("WriteText: %v", err)
					return
				}
				for _, s := range reg.Series() {
					_ = s.Value()
				}
			}
		}()
	}
	wg.Wait()

	if got := hits.Value() + misses.Value(); got != jobs*rounds {
		t.Fatalf("counted %d events, want %d", got, jobs*rounds)
	}
	if _, ok := reg.Lookup("test_cache_hits_total"); !ok {
		t.Fatalf("Lookup lost a series")
	}
	if got := len(reg.Series()); got != 3+jobs {
		t.Fatalf("registry holds %d series, want %d", got, 3+jobs)
	}
}

// TestRegistryConcurrentReset pins that the warmup reset may race
// with counter increments without corrupting the monotonic counts
// that follow (the serving daemon never resets its shared registry,
// but nothing should crash or race if a caller does).
func TestRegistryConcurrentReset(t *testing.T) {
	reg := &Registry{}
	c := reg.Counter("test_events_total", Labels{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			c.Inc()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			reg.Reset()
		}
	}()
	wg.Wait()
	if v := c.Value(); v < 0 || v > 5000 {
		t.Fatalf("counter = %d, want within [0,5000]", v)
	}
}
