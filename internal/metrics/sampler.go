package metrics

// Sample is one sampler row: the engine tick it was taken at and one
// value per selected series (aligned with Sampler.Keys).
type Sample struct {
	// Tick is the engine tick of the last cycle covered by this row.
	Tick int64
	// Values holds one value per selected series: windowed utilization
	// in [0,1] for ratios, the event count within the window for
	// counters (and the observation count for histograms), and the
	// instantaneous value for gauges.
	Values []float64
}

// Sampler snapshots selected registry series every Interval engine
// ticks into an in-memory time series. It attaches to the engine's
// per-tick observability hook (sim.Engine.OnCycle); the core runner
// wires and resets it so the collected rows cover the measured
// (post-warmup) interval only.
//
// Ratios and counters are recorded as windowed values — the change
// since the previous sample — because the instantaneous shape is what
// end-of-run aggregates hide: a saturating global ring shows up as a
// per-window utilization climbing to 1.0, not as a slowly drifting
// cumulative mean.
type Sampler struct {
	reg      *Registry
	interval int64
	selected []*Series
	keys     []string

	// prev holds each selected series' raw state at the previous
	// sample boundary (counter count or ratio busy/capacity).
	prevA, prevB []int64

	samples []Sample
}

// NewSampler selects the registry series accepted by filter (nil
// selects all) and samples them every interval ticks. It returns nil
// for a nil registry or a non-positive interval — and a nil *Sampler
// is safe to use everywhere, so callers wire it unconditionally.
func NewSampler(reg *Registry, interval int64, filter func(*Series) bool) *Sampler {
	if reg == nil || interval <= 0 {
		return nil
	}
	s := &Sampler{reg: reg, interval: interval}
	for _, sr := range reg.Series() {
		if filter == nil || filter(sr) {
			s.selected = append(s.selected, sr)
			s.keys = append(s.keys, sr.Key())
		}
	}
	s.prevA = make([]int64, len(s.selected))
	s.prevB = make([]int64, len(s.selected))
	s.rebase()
	return s
}

// Keys returns the selected series keys, aligned with Sample.Values.
func (s *Sampler) Keys() []string {
	if s == nil {
		return nil
	}
	return s.keys
}

// Samples returns the collected rows in time order.
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	return s.samples
}

// Interval returns the sampling interval in engine ticks.
func (s *Sampler) Interval() int64 {
	if s == nil {
		return 0
	}
	return s.interval
}

// OnCycle is the engine per-tick hook: it takes a sample once every
// Interval ticks. Assign it to sim.Engine.OnCycle (or call it from a
// composed hook). Nil-safe.
func (s *Sampler) OnCycle(now int64, moved uint64) {
	if s == nil {
		return
	}
	if (now+1)%s.interval != 0 {
		return
	}
	row := Sample{Tick: now, Values: make([]float64, len(s.selected))}
	for i, sr := range s.selected {
		switch sr.Kind {
		case KindGauge:
			row.Values[i] = sr.gauge()
		default:
			a, b := sr.raw()
			da, db := a-s.prevA[i], b-s.prevB[i]
			s.prevA[i], s.prevB[i] = a, b
			if sr.Kind == KindCounter || sr.Kind == KindHistogram {
				row.Values[i] = float64(da)
			} else if db > 0 {
				row.Values[i] = float64(da) / float64(db)
			}
		}
	}
	s.samples = append(s.samples, row)
}

// Reset discards the collected rows and re-baselines the windowed
// deltas against the series' current state — the warmup-aware reset,
// called together with Registry.Reset when the first batch is
// discarded. Nil-safe.
func (s *Sampler) Reset() {
	if s == nil {
		return
	}
	s.samples = nil
	s.rebase()
}

// rebase records the current raw state of every selected series as
// the delta baseline.
func (s *Sampler) rebase() {
	for i, sr := range s.selected {
		s.prevA[i], s.prevB[i] = sr.raw()
	}
}
